// Package wisedb is a workload management advisor for cloud databases — a
// from-scratch Go reproduction of "WiSeDB: A Learning-based Workload
// Management Advisor for Cloud Databases" (Marcus & Papaemmanouil,
// VLDB 2016).
//
// Given an application's query templates and a latency-based performance
// goal (an SLA), WiSeDB learns a decision-tree strategy from provably
// optimal schedules of small sample workloads. The strategy drives holistic
// workload management: how many VMs to rent (and of which type), which VM
// each query runs on, and the execution order within each VM — minimizing
// start-up fees plus processing fees plus SLA penalties.
//
// # Quickstart
//
//	templates := wisedb.DefaultTemplates(10)           // TPC-H-like, 2-6 min
//	vmTypes := wisedb.DefaultVMTypes(1)                // t2.medium pricing
//	env := wisedb.NewEnv(templates, vmTypes)
//	goal := wisedb.NewMaxLatency(15*time.Minute, templates, wisedb.DefaultPenaltyRate)
//
//	advisor, err := wisedb.NewAdvisor(env, wisedb.DefaultTrainConfig())
//	model, err := advisor.Train(goal)                  // offline, once
//	...
//	sched, err := model.ScheduleBatch(workload)        // runtime, any size
//	cost := sched.Cost(env, goal)                      // cents
//
// Models support adaptive re-training for stricter goals (Model.Adapt),
// exploration of performance/cost trade-offs (Advisor.Recommend), and
// non-preemptive online scheduling (NewOnlineScheduler).
//
// Models persist across restarts: SaveModel/LoadModel round-trip a trained
// model through a versioned, checksummed binary format with zero training
// searches on load, and a serving engine checkpoints every hot-swapped
// epoch to a crash-safe ModelStore (Registry().CheckpointTo) from which
// NewOnlineSchedulerFromStore warm-starts after a restart.
//
// Training solves its N sample workloads on a worker pool
// (TrainConfig.Parallelism, default all cores) and is bit-identical for
// every worker count; Advisor.TrainContext accepts a context for
// cancellation. A trained Model is immutable and safe for concurrent use —
// one Model can serve ScheduleBatch from many goroutines at once.
//
// The facade re-exports the library's internal packages; see DESIGN.md for
// the architecture and EXPERIMENTS.md for the paper-reproduction results.
package wisedb

import (
	"time"

	"wisedb/internal/chaos"
	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/scenario"
	"wisedb/internal/schedule"
	"wisedb/internal/server"
	"wisedb/internal/sla"
	"wisedb/internal/store"
	"wisedb/internal/wire"
	"wisedb/internal/workload"
)

// Core advisor types.
type (
	// Advisor generates workload-management models for one environment.
	Advisor = core.Advisor
	// Model is a trained workload-management strategy.
	Model = core.Model
	// TrainConfig tunes model generation (N samples of m queries).
	TrainConfig = core.TrainConfig
	// Strategy is a recommended service tier with a cost estimator.
	Strategy = core.Strategy
	// RecommendConfig tunes strategy recommendation.
	RecommendConfig = core.RecommendConfig
	// OnlineScheduler is the multi-tenant online serving engine.
	OnlineScheduler = core.OnlineScheduler
	// OnlineOptions tunes online scheduling and its optimizations.
	OnlineOptions = core.OnlineOptions
	// OnlineResult reports the outcome of one arrival stream.
	OnlineResult = core.OnlineResult
	// Outcome is one completed query of an online stream.
	Outcome = core.Outcome
	// Stream is one tenant's event-driven arrival stream.
	Stream = core.Stream
	// Clock supplies stream time (SimClock for virtual, WallClock for live).
	Clock = core.Clock
	// SimClock is a virtual clock advanced by its driver.
	SimClock = core.SimClock
	// WallClock reads real elapsed time for live serving.
	WallClock = core.WallClock
	// DriftOptions configures workload-drift detection and hot-swapping.
	DriftOptions = core.DriftOptions
	// ModelRegistry is the hot-swappable model lifecycle subsystem.
	ModelRegistry = core.ModelRegistry
	// ModelEpoch is one immutable serving generation of a model.
	ModelEpoch = core.ModelEpoch
	// RegistryStats snapshots a registry's lifecycle counters.
	RegistryStats = core.RegistryStats
	// RetrainFunc builds a replacement model for an observed arrival mix.
	RetrainFunc = core.RetrainFunc
	// Tenant is one tenant stream for sharded serving (RunTenants):
	// identity, registry tier, and arrival stream.
	Tenant = core.Tenant
	// TenantID places a tenant on the engine's consistent-hash ring.
	TenantID = core.TenantID
	// ScaleStats snapshots the engine's scale-out counters (shards,
	// migrations, registries, shared retrains, ω-map size).
	ScaleStats = core.ScaleStats
)

// Robustness and fault-injection types.
type (
	// FaultSpec configures deterministic VM failures and stragglers in
	// the cloud simulator; the zero value injects nothing.
	FaultSpec = cloud.FaultSpec
	// FaultPlan is a seeded fault plan a simulator draws VM fates from.
	FaultPlan = cloud.FaultPlan
	// RetryPolicy tunes the registry's retrain backoff, circuit breaker,
	// and bounded checkpoint retry.
	RetryPolicy = core.RetryPolicy
	// RobustnessStats snapshots the failure-path counters: backoff
	// suppressions, breaker state and transitions, checkpoint retries.
	RobustnessStats = core.RobustnessStats
	// ChaosSpec describes one seeded chaos scenario across the serving
	// stack's failure domains (VM faults, retrain failures, flaky
	// checkpoint writes, dropped/stalled connections).
	ChaosSpec = chaos.Spec
	// NetFaultSpec configures dropped and stalled connections at the
	// serving daemon's listener (ChaosSpec.Net + WrapListener).
	NetFaultSpec = chaos.NetFaultSpec
)

// Network serving types: the wisedb daemon and its client.
type (
	// ServerConfig configures the overload-safe serving daemon:
	// listener, HTTP sidecar, connection cap, timeouts, token-bucket
	// admission, default placement deadline, drain grace.
	ServerConfig = server.Config
	// Server is the TCP serving daemon (New/Start/Shutdown).
	Server = server.Server
	// ServerStats snapshots the daemon's ingress counters plus the
	// engine's ScaleStats.
	ServerStats = server.Stats
	// ClientOptions configures a daemon client connection.
	ClientOptions = server.Options
	// Client is one pipelined connection to the daemon — one tenant
	// stream (Send/Flush/ReadAck, or the synchronous Submit).
	Client = server.Client
	// ClientResult is a stream's final accounting over the wire.
	ClientResult = server.Result
	// WireQuery is one query reference inside a Submit frame.
	WireQuery = wire.Query
)

// Wire clock modes for ClientOptions.Clock: wall time (the server
// stamps arrivals) or virtual time (the client's arrival instants drive
// the stream clock — replay and load-generation mode).
const (
	ClockWall    = wire.ClockWall
	ClockVirtual = wire.ClockVirtual
)

// Durable model persistence types.
type (
	// ModelStore is a crash-safe on-disk directory of model epochs.
	ModelStore = store.ModelStore
	// Lineage records one persisted epoch's provenance (parent epoch,
	// install reason, trigger EMD, target mix, content hash).
	Lineage = store.Lineage
	// ModelInfo summarizes a model file without decoding its tree.
	ModelInfo = core.ModelInfo
)

// Typed decode errors of the model format (match with errors.Is).
var (
	// ErrBadMagic reports input that is not a WiSeDB model container.
	ErrBadMagic = store.ErrBadMagic
	// ErrVersion reports a container from an unsupported format version.
	ErrVersion = store.ErrVersion
	// ErrTruncated reports input shorter than its own structure claims.
	ErrTruncated = store.ErrTruncated
	// ErrCRC reports a section failing its checksum.
	ErrCRC = store.ErrCRC
	// ErrCorrupt reports structurally invalid section content.
	ErrCorrupt = store.ErrCorrupt
	// ErrEmptyStore reports a model store with no recoverable epochs.
	ErrEmptyStore = store.ErrEmpty
	// ErrInjected marks every fault the chaos harness injects.
	ErrInjected = chaos.ErrInjected
)

// ModelFormatVersion is the version of the model container format this
// build reads and writes.
const ModelFormatVersion = store.FormatVersion

// Workload model types.
type (
	// Template is a query template: instances share a latency profile.
	Template = workload.Template
	// Query is an instance of a template.
	Query = workload.Query
	// Workload is a multiset of queries to schedule.
	Workload = workload.Workload
	// Sampler draws random workloads from a template set.
	Sampler = workload.Sampler
)

// Cloud substrate types.
type (
	// VMType is a rentable VM configuration with its prices.
	VMType = cloud.VMType
	// Predictor estimates per-template latencies per VM type.
	Predictor = cloud.Predictor
	// PriceSchedule is a piecewise-constant time-varying price multiplier
	// over the VM fee structure (spot-style pricing); nil means flat.
	PriceSchedule = cloud.PriceSchedule
	// PriceStep is one segment of a PriceSchedule.
	PriceStep = cloud.PriceStep
)

// Scenario harness types: composable seeded arrival/mix/price scenarios
// replayed through the serving engine (see internal/scenario).
type (
	// ScenarioSpec is one named seeded scenario: tenants with arrival
	// and template-mix processes, plus an optional price schedule.
	ScenarioSpec = scenario.Spec
	// ScenarioTenant is one tenant inside a ScenarioSpec.
	ScenarioTenant = scenario.TenantSpec
	// ArrivalProcess generates seeded inter-arrival gaps (Poisson,
	// Pareto, Diurnal, FlashCrowd).
	ArrivalProcess = scenario.ArrivalProcess
	// MixProcess generates time-varying template weights (StaticMix,
	// DiurnalMix, ShiftMix).
	MixProcess = scenario.MixProcess
)

// Scheduling types.
type (
	// Env bundles templates, VM types, and the latency predictor.
	Env = schedule.Env
	// Schedule assigns queries to ordered VM queues.
	Schedule = schedule.Schedule
	// VM is one rented machine inside a schedule.
	VM = schedule.VM
)

// Performance goals (SLAs).
type (
	// Goal is a performance goal with its penalty function.
	Goal = sla.Goal
	// MaxLatency bounds the worst query latency in a workload.
	MaxLatency = sla.MaxLatency
	// PerQuery bounds each template's query latency separately.
	PerQuery = sla.PerQuery
	// Average bounds the mean query latency of a workload.
	Average = sla.Average
	// Percentile requires y% of queries to finish within a deadline.
	Percentile = sla.Percentile
	// QueryPerf is a per-query outcome goals are evaluated against.
	QueryPerf = sla.QueryPerf
)

// DefaultPenaltyRate is the paper's penalty rate: 1 cent per second of
// violation.
const DefaultPenaltyRate = sla.DefaultPenaltyRate

// Constructors re-exported from the internal packages.
var (
	// NewAdvisor returns an Advisor for an environment. A zero-value
	// TrainConfig trains at the default scale; invalid values are
	// reported as an error.
	NewAdvisor = core.NewAdvisor
	// MustNewAdvisor is NewAdvisor panicking on error, for statically
	// known-good configuration.
	MustNewAdvisor = core.MustNewAdvisor
	// DefaultTrainConfig is the experiment-scale training configuration.
	DefaultTrainConfig = core.DefaultTrainConfig
	// PaperTrainConfig is the paper's §7.1 scale (N=3000, m=18).
	PaperTrainConfig = core.PaperTrainConfig
	// DefaultRecommendConfig tunes Recommend like the paper's tiers.
	DefaultRecommendConfig = core.DefaultRecommendConfig
	// NewOnlineScheduler builds the serving engine over a base model.
	NewOnlineScheduler = core.NewOnlineScheduler
	// DefaultOnlineOptions enables both §6.3.1 optimizations.
	DefaultOnlineOptions = core.DefaultOnlineOptions
	// NewWallClock returns a live clock for event-driven streams.
	NewWallClock = core.NewWallClock
	// DriftRetrain is the default drift response: re-train toward the
	// observed arrival mix at the base model's scale.
	DriftRetrain = core.DriftRetrain
	// HashTenantID derives a well-spread TenantID from a tenant name.
	HashTenantID = core.HashTenantID
	// NewFaultPlan seeds a deterministic VM fault plan for a simulator.
	NewFaultPlan = cloud.NewFaultPlan
	// DefaultRetryPolicy is the registry's stock retry discipline:
	// exponential backoff with jitter plus a circuit breaker on retrains,
	// and a 3-attempt bounded checkpoint retry.
	DefaultRetryPolicy = core.DefaultRetryPolicy
	// FailFirstRetrains wraps a RetrainFunc so its first k calls fail
	// with ErrInjected — the chaos harness's retrain injector.
	FailFirstRetrains = chaos.FailFirstRetrains
	// FlakyPayloadWriter fails the first k model-store payload writes
	// with ErrInjected, then writes atomically.
	FlakyPayloadWriter = chaos.FlakyPayloadWriter
	// NewServer validates a config and returns an unstarted daemon.
	NewServer = server.New
	// DialServer connects a client to the daemon with jittered-backoff
	// retries.
	DialServer = server.Dial

	// SaveModel atomically writes a model's versioned binary encoding;
	// LoadModel reads one back, serving-ready with zero training
	// searches. EncodeModel/DecodeModel are the in-memory counterparts,
	// and InspectModel summarizes a file without decoding its tree.
	SaveModel    = core.SaveModelFile
	LoadModel    = core.LoadModelFile
	EncodeModel  = core.EncodeModel
	DecodeModel  = core.DecodeModel
	InspectModel = core.InspectModel
	// ModelSectionName renders a model-container section ID.
	ModelSectionName = core.SectionName
	// OpenModelStore opens (creating and crash-recovering as needed) a
	// durable model store directory.
	OpenModelStore = store.Open
	// NewOnlineSchedulerFromStore warm-starts a serving engine from a
	// model store's newest intact epoch.
	NewOnlineSchedulerFromStore = core.NewOnlineSchedulerFromStore

	// DefaultTemplates synthesizes the paper's TPC-H-like template set.
	DefaultTemplates = workload.DefaultTemplates
	// NewSampler returns a deterministic workload sampler.
	NewSampler = workload.NewSampler
	// SkewWeights interpolates template weights between uniform and a
	// point mass — the §7.5 skewed-workload generator.
	SkewWeights = workload.SkewWeights
	// FixedDelayArrivals builds an arrival schedule with a constant gap,
	// for Workload.WithArrivals and Tenant streams.
	FixedDelayArrivals = workload.FixedDelayArrivals

	// DefaultVMTypes returns EC2-like VM types (t2.medium, t2.small, ...).
	DefaultVMTypes = cloud.DefaultVMTypes
	// NewPriceSchedule builds a validated piecewise-constant price
	// schedule (first step at 0, positive multipliers, increasing starts).
	NewPriceSchedule = cloud.NewPriceSchedule
	// SpotPrices generates a seeded bounded random-walk price schedule —
	// the spot-market simulator behind the scenario harness.
	SpotPrices = cloud.Spot
	// ScenarioCatalog returns the committed seeded scenario specs
	// (Poisson, Pareto, diurnal, flash-crowd, priority tiers, spot
	// pricing, correlated mix shift) the scenario tests pin.
	ScenarioCatalog = scenario.Catalog

	// NewEnv builds an Env with the exact latency predictor.
	NewEnv = schedule.NewEnv
)

// NewMaxLatency builds a Max goal: no query may exceed deadline.
func NewMaxLatency(deadline time.Duration, templates []Template, rate float64) MaxLatency {
	return sla.NewMaxLatency(deadline, templates, rate)
}

// NewPerQuery builds a PerQuery goal: queries of each template must finish
// within multiplier × the template's latency.
func NewPerQuery(multiplier float64, templates []Template, rate float64) PerQuery {
	return sla.NewPerQuery(multiplier, templates, rate)
}

// NewAverage builds an Average goal: the workload's mean latency must not
// exceed deadline.
func NewAverage(deadline time.Duration, templates []Template, rate float64) Average {
	return sla.NewAverage(deadline, templates, rate)
}

// NewPercentile builds a Percentile goal: percent% of queries must finish
// within deadline.
func NewPercentile(percent float64, deadline time.Duration, templates []Template, rate float64) Percentile {
	return sla.NewPercentile(percent, deadline, templates, rate)
}
