module wisedb

go 1.24
