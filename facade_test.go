package wisedb_test

import (
	"testing"
	"time"

	"wisedb"
)

// The public facade must support the full documented quickstart flow.
func TestFacadeQuickstart(t *testing.T) {
	templates := wisedb.DefaultTemplates(4)
	env := wisedb.NewEnv(templates, wisedb.DefaultVMTypes(1))
	goal := wisedb.NewMaxLatency(15*time.Minute, templates, wisedb.DefaultPenaltyRate)

	cfg := wisedb.DefaultTrainConfig()
	cfg.NumSamples = 60
	cfg.SampleSize = 6
	advisor, err := wisedb.NewAdvisor(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := advisor.Train(goal)
	if err != nil {
		t.Fatal(err)
	}

	batch := wisedb.NewSampler(templates, 42).Uniform(50)
	sched, err := model.ScheduleBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(env, batch); err != nil {
		t.Fatal(err)
	}
	if cost := sched.Cost(env, goal); cost <= 0 {
		t.Fatalf("cost must be positive, got %f", cost)
	}

	// Adaptive modeling and online scheduling through the facade.
	stricter, err := model.Tighten(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if stricter.Goal.(wisedb.MaxLatency).Deadline >= goal.Deadline {
		t.Fatal("tightened deadline must shrink")
	}
	stream := batch.WithArrivals(make([]time.Duration, 50))
	res, err := wisedb.NewOnlineScheduler(model, wisedb.DefaultOnlineOptions()).Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Perf) != 50 {
		t.Fatalf("online run completed %d of 50 queries", len(res.Perf))
	}
}

// All four goal families must be constructible and evaluable through the
// facade.
func TestFacadeGoals(t *testing.T) {
	templates := wisedb.DefaultTemplates(3)
	goals := []wisedb.Goal{
		wisedb.NewMaxLatency(10*time.Minute, templates, 1),
		wisedb.NewPerQuery(3, templates, 1),
		wisedb.NewAverage(10*time.Minute, templates, 1),
		wisedb.NewPercentile(90, 10*time.Minute, templates, 1),
	}
	perf := []wisedb.QueryPerf{{TemplateID: 0, Latency: 5 * time.Minute}}
	for _, g := range goals {
		if p := g.Penalty(perf); p != 0 {
			t.Fatalf("%s: on-time query should have no penalty, got %f", g.Name(), p)
		}
	}
}
