package features

import (
	"math/rand"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

func setup(numTemplates, numTypes int) (*graph.Problem, *schedule.Env) {
	env := schedule.NewEnv(workload.DefaultTemplates(numTemplates), cloud.DefaultVMTypes(numTypes))
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	return graph.NewProblem(env, goal), env
}

func wl(env *schedule.Env, ids ...int) *workload.Workload {
	qs := make([]workload.Query, len(ids))
	for i, id := range ids {
		qs[i] = workload.Query{TemplateID: id, Tag: i}
	}
	return &workload.Workload{Templates: env.Templates, Queries: qs}
}

func TestVectorLenAndNames(t *testing.T) {
	if VectorLen(3) != 13 {
		t.Fatalf("want 13 features for 3 templates, got %d", VectorLen(3))
	}
	names := Names(2)
	want := []string{
		"wait-time",
		"proportion-of-T0", "supports-T0", "cost-of-T0", "have-T0",
		"proportion-of-T1", "supports-T1", "cost-of-T1", "have-T1",
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("name %d: want %q, got %q", i, want[i], names[i])
		}
	}
}

func TestStartVertexFeatures(t *testing.T) {
	p, env := setup(3, 1)
	v := Extract(p, p.Start(wl(env, 0, 2)))
	if v[0] != 0 {
		t.Fatal("wait-time at start must be 0")
	}
	for i := 0; i < 3; i++ {
		base := 1 + PerTemplate*i
		if v[base] != 0 {
			t.Fatal("proportions must be 0 with no VM")
		}
		if v[base+1] != 0 {
			t.Fatal("supports-X must be 0 with no VM")
		}
		if v[base+2] != Infinite {
			t.Fatal("cost-of-X must be Infinite with no VM")
		}
	}
	if v[1+PerTemplate*0+3] != 1 || v[1+PerTemplate*1+3] != 0 || v[1+PerTemplate*2+3] != 1 {
		t.Fatal("have-X must reflect unassigned instances")
	}
}

func TestFeaturesAfterPlacements(t *testing.T) {
	p, env := setup(2, 1)
	s := p.Start(wl(env, 0, 0, 0, 1))
	s = p.Apply(s, graph.Action{Kind: graph.Startup, VMType: 0})
	s = p.Apply(s, graph.Action{Kind: graph.Place, Template: 0})
	s = p.Apply(s, graph.Action{Kind: graph.Place, Template: 0})
	s = p.Apply(s, graph.Action{Kind: graph.Place, Template: 1})
	v := Extract(p, s)
	lat0, _ := env.Latency(0, 0)
	lat1, _ := env.Latency(1, 0)
	if want := (2*lat0 + lat1).Seconds(); v[0] != want {
		t.Fatalf("wait-time: want %g, got %g", want, v[0])
	}
	// proportion-of-T0 = 2/3, T1 = 1/3 (the paper's worked example form).
	if v[1] < 0.66 || v[1] > 0.67 {
		t.Fatalf("proportion-of-T0: want 2/3, got %g", v[1])
	}
	if v[1+PerTemplate] < 0.33 || v[1+PerTemplate] > 0.34 {
		t.Fatalf("proportion-of-T1: want 1/3, got %g", v[1+PerTemplate])
	}
	// supports on an open t2.medium VM.
	if v[2] != 1 || v[2+PerTemplate] != 1 {
		t.Fatal("supports must be 1")
	}
	// cost-of-X is finite and includes the running cost.
	if v[3] >= Infinite || v[3] <= 0 {
		t.Fatalf("cost-of-T0: got %g", v[3])
	}
	// have-T0 still 1, have-T1 exhausted.
	if v[4] != 1 || v[4+PerTemplate] != 0 {
		t.Fatalf("have flags wrong: %v", v)
	}
}

func TestCostOfXIncludesPenalty(t *testing.T) {
	p, env := setup(2, 1)
	p.Goal = sla.NewMaxLatency(env.Templates[0].BaseLatency, env.Templates, 1)
	s := p.Start(wl(env, 0, 1))
	s = p.Apply(s, graph.Action{Kind: graph.Startup, VMType: 0})
	v := Extract(p, s)
	lat1, _ := env.Latency(1, 0)
	vt := env.VMTypes[0]
	overage := (lat1 - env.Templates[0].BaseLatency).Seconds()
	want := vt.RunningCost(lat1) + overage
	got := v[1+PerTemplate+2]
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("cost-of-T1 with penalty: want %g, got %g", want, got)
	}
}

func TestCostOfXDefinedWithoutUnassignedInstances(t *testing.T) {
	// cost-of-X is defined even when no instance of X remains (§4.4);
	// only have-X reflects availability.
	p, env := setup(2, 1)
	s := p.Start(wl(env, 1))
	s = p.Apply(s, graph.Action{Kind: graph.Startup, VMType: 0})
	v := Extract(p, s)
	if v[3] >= Infinite {
		t.Fatal("cost-of-T0 must be finite on an open supporting VM")
	}
	if v[4] != 0 {
		t.Fatal("have-T0 must be 0")
	}
}

func TestUnsupportedTemplateFeatures(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(2), []cloud.VMType{
		{ID: 0, Name: "tiny", StartupCost: 0.08, RatePerHour: 2, SupportsHighRAM: false, HighRAMMultiplier: 1},
	})
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, 1)
	p := graph.NewProblem(env, goal)
	s := p.Start(wl(env, 0, 1))
	s = p.Apply(s, graph.Action{Kind: graph.Startup, VMType: 0})
	v := Extract(p, s)
	// Template 1 is high-RAM and unsupported on "tiny".
	if v[1+PerTemplate+1] != 0 {
		t.Fatal("supports-T1 must be 0 on a non-high-RAM type")
	}
	if v[1+PerTemplate+2] != Infinite {
		t.Fatal("cost-of-T1 must be Infinite when unsupported")
	}
	if v[2] != 1 {
		t.Fatal("supports-T0 must be 1")
	}
}

// Features must not depend on workload size: two states with identical open
// VM and availability flags but different unassigned counts produce
// identical vectors (§4.4's second requirement).
func TestFeaturesSizeIndependent(t *testing.T) {
	p, env := setup(2, 1)
	small := p.Start(wl(env, 0, 1))
	small = p.Apply(small, graph.Action{Kind: graph.Startup, VMType: 0})
	big := p.Start(wl(env, 0, 0, 0, 0, 0, 1, 1, 1))
	big = p.Apply(big, graph.Action{Kind: graph.Startup, VMType: 0})
	vs, vb := Extract(p, small), Extract(p, big)
	for i := range vs {
		if vs[i] != vb[i] {
			t.Fatalf("feature %d differs with workload size: %g vs %g", i, vs[i], vb[i])
		}
	}
}

// The incremental State must produce exactly Extract's vector at every step
// of randomized walks — same floats, bit for bit — for every goal family,
// including environments with unsupported (template, type) pairs.
func TestIncrementalStateMatchesExtract(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(4), cloud.DefaultVMTypes(2))
	goals := map[string]sla.Goal{
		"max":        sla.NewMaxLatency(10*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"perquery":   sla.NewPerQuery(2, env.Templates, sla.DefaultPenaltyRate),
		"average":    sla.NewAverage(8*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"percentile": sla.NewPercentile(80, 8*time.Minute, env.Templates, sla.DefaultPenaltyRate),
	}
	for name, goal := range goals {
		t.Run(name, func(t *testing.T) {
			p := graph.NewProblem(env, goal)
			p.NoSymmetryBreaking = true // as on the serving path
			rng := rand.New(rand.NewSource(17))
			fs := NewState(p)
			var buf []float64
			for trial := 0; trial < 15; trial++ {
				w := workload.NewSampler(env.Templates, int64(trial)).Uniform(8)
				s := p.Start(w)
				fs.Reset(s) // mid-walk attach: Reset must recount any vertex
				for !s.IsGoal() {
					buf = fs.AppendTo(buf[:0], s)
					ref := Extract(p, s)
					if len(buf) != len(ref) {
						t.Fatalf("vector length %d, Extract has %d", len(buf), len(ref))
					}
					for i := range ref {
						if buf[i] != ref[i] {
							t.Fatalf("feature %d: incremental %g, Extract %g", i, buf[i], ref[i])
						}
					}
					acts := p.Actions(s)
					a := acts[rng.Intn(len(acts))]
					s = p.Apply(s, a)
					fs.Apply(a)
				}
			}
		})
	}
}

// Steady-state incremental extraction must not allocate.
func TestIncrementalStateAllocationFree(t *testing.T) {
	p, env := setup(3, 2)
	fs := NewState(p)
	s := p.Start(wl(env, 0, 1, 2, 0))
	s = p.Apply(s, graph.Action{Kind: graph.Startup, VMType: 0})
	s = p.Apply(s, graph.Action{Kind: graph.Place, Template: 0})
	fs.Reset(s)
	buf := make([]float64, 0, VectorLen(3))
	allocs := testing.AllocsPerRun(100, func() {
		buf = fs.AppendTo(buf[:0], s)
	})
	if allocs > 0 {
		t.Fatalf("AppendTo allocated %g times per run", allocs)
	}
}
