// Package features extracts the training features of §4.4 from
// scheduling-graph vertices. Each decision on an optimal path becomes a
// (features, decision) training pair; the features deliberately exclude
// anything correlated with workload size so that models trained on small
// sample workloads generalize to arbitrarily large runtime workloads
// (§4.4's feature-selection requirements).
//
// The feature vector for a template set of size k is laid out as:
//
//	[0]          wait-time                (seconds)
//	[1+4i+0]     proportion-of-Ti         (fraction of open-VM queue)
//	[1+4i+1]     supports-Ti              (0/1)
//	[1+4i+2]     cost-of-Ti               (cents; Infinite if unplaceable)
//	[1+4i+3]     have-Ti                  (0/1)
package features

import (
	"fmt"
	"time"

	"wisedb/internal/graph"
)

// Infinite is the sentinel encoding an infinite cost-of-X: placing the
// template on the open VM is impossible (no VM, or the VM type cannot run
// it). A large finite value keeps decision-tree thresholds finite.
const Infinite = 1e12

// PerTemplate is the number of features emitted per template.
const PerTemplate = 4

// VectorLen returns the feature vector length for a template set of size k.
func VectorLen(k int) int { return 1 + PerTemplate*k }

// Names returns the feature names in vector order.
func Names(k int) []string {
	names := make([]string, 0, VectorLen(k))
	names = append(names, "wait-time")
	for i := 0; i < k; i++ {
		names = append(names,
			fmt.Sprintf("proportion-of-T%d", i),
			fmt.Sprintf("supports-T%d", i),
			fmt.Sprintf("cost-of-T%d", i),
			fmt.Sprintf("have-T%d", i),
		)
	}
	return names
}

// Extract computes the feature vector of a vertex (§4.4). All five paper
// features are included:
//
//   - wait-time: total execution time already queued on the open VM — the
//     wait a newly placed query would incur.
//   - proportion-of-X: fraction of the open VM's queue that is template X.
//   - supports-X: whether the open VM's type can run template X.
//   - cost-of-X: the weight of the placement edge for X (Eq. 2), Infinite
//     when no VM is open or the type cannot run X.
//   - have-X: whether an instance of X is still unassigned.
//
// Extract allocates a fresh vector and rescans the open queue; it is the
// reference form used by training, where each vertex is visited once. The
// serving loop, which visits a long chain of vertices, uses State instead.
func Extract(prob *graph.Problem, s *graph.State) []float64 {
	fs := NewState(prob)
	fs.Reset(s)
	return fs.AppendTo(make([]float64, 0, VectorLen(len(prob.Env.Templates))), s)
}

// State incrementally maintains the open-VM queue statistics Extract
// derives from a vertex — per-template queue counts and the queue total —
// so that a serving loop extracting features along a chain of states pays
// O(k) per step (k = number of templates) instead of O(queue + k), with
// zero allocations. Usage:
//
//	fs := NewState(prob)
//	fs.Reset(state)                      // once, from an arbitrary vertex
//	for !state.IsGoal() {
//		buf = fs.AppendTo(buf[:0], state)
//		... pick and apply an action ...
//		fs.Apply(act)                    // O(1) per placement
//	}
//
// A State is bound to the problem it was created for and is not safe for
// concurrent use; the serving scratch pool hands each goroutine its own.
type State struct {
	prob   *graph.Problem
	counts []int // open-VM queue count per template
	total  int   // len of the open-VM queue
	// lat and runCost snapshot the frozen Env tables in VM-type-major
	// layout ([v*k+t]), so the per-step loop reads one contiguous row per
	// open VM type with no sync.Once or bounds-check overhead and no
	// repeated cents-per-hour conversion. lat < 0 marks an unrunnable
	// (template, type) pair, as in the Env matrix.
	lat     []time.Duration
	runCost []float64
}

// NewState returns a State for the problem's template set.
func NewState(prob *graph.Problem) *State {
	k, nv := len(prob.Env.Templates), len(prob.Env.VMTypes)
	fs := &State{
		prob:    prob,
		counts:  make([]int, k),
		lat:     make([]time.Duration, nv*k),
		runCost: make([]float64, nv*k),
	}
	for v := 0; v < nv; v++ {
		for t := 0; t < k; t++ {
			lat, ok := prob.Env.Latency(t, v)
			if !ok {
				fs.lat[v*k+t] = -1
				continue
			}
			fs.lat[v*k+t] = lat
			fs.runCost[v*k+t] = prob.Env.VMTypes[v].RunningCost(lat)
		}
	}
	return fs
}

// NumTemplates returns the size of the template set the state is bound to.
func (fs *State) NumTemplates() int { return len(fs.counts) }

// Reset recounts the queue statistics from the vertex s.
func (fs *State) Reset(s *graph.State) {
	for i := range fs.counts {
		fs.counts[i] = 0
	}
	fs.total = len(s.OpenQueue)
	for _, t := range s.OpenQueue {
		fs.counts[t]++
	}
}

// Apply updates the queue statistics for an action that was just applied to
// the tracked state: a placement adds one query of its template to the open
// queue, a start-up empties it.
func (fs *State) Apply(a graph.Action) {
	switch a.Kind {
	case graph.Place:
		fs.counts[a.Template]++
		fs.total++
	case graph.Startup:
		for i := range fs.counts {
			fs.counts[i] = 0
		}
		fs.total = 0
	}
}

// AppendTo appends the feature vector of s to buf and returns the extended
// slice, equivalent to Extract(prob, s) but using the incrementally
// maintained queue statistics and the caller's buffer. s must be the state
// the statistics track.
func (fs *State) AppendTo(buf []float64, s *graph.State) []float64 {
	buf = append(buf, s.Wait.Seconds())
	k := len(fs.counts)
	var lat []time.Duration
	var runCost []float64
	penalty := 0.0
	if s.OpenType != graph.NoVM {
		lat = fs.lat[s.OpenType*k : (s.OpenType+1)*k]
		runCost = fs.runCost[s.OpenType*k : (s.OpenType+1)*k]
		penalty = s.Acc.Penalty() // hoisted out of placementCost's delta
	}
	for i := 0; i < k; i++ {
		proportion := 0.0
		if fs.total > 0 {
			proportion = float64(fs.counts[i]) / float64(fs.total)
		}
		supports, cost := 0.0, Infinite
		if lat != nil && lat[i] >= 0 {
			supports = 1
			// The Eq. 2 edge weight, with the same floating-point
			// grouping as graph.Problem.PlacementCost:
			// runCost + (peek − penalty).
			completion := s.Wait + lat[i]
			delta := s.Acc.PeekAdd(i, completion) - penalty
			if c := runCost[i] + delta; c < Infinite {
				cost = c
			}
		}
		have := 0.0
		if i < len(s.Unassigned) && s.Unassigned[i] > 0 {
			have = 1
		}
		buf = append(buf, proportion, supports, cost, have)
	}
	return buf
}
