// Package features extracts the training features of §4.4 from
// scheduling-graph vertices. Each decision on an optimal path becomes a
// (features, decision) training pair; the features deliberately exclude
// anything correlated with workload size so that models trained on small
// sample workloads generalize to arbitrarily large runtime workloads
// (§4.4's feature-selection requirements).
//
// The feature vector for a template set of size k is laid out as:
//
//	[0]          wait-time                (seconds)
//	[1+4i+0]     proportion-of-Ti         (fraction of open-VM queue)
//	[1+4i+1]     supports-Ti              (0/1)
//	[1+4i+2]     cost-of-Ti               (cents; Infinite if unplaceable)
//	[1+4i+3]     have-Ti                  (0/1)
package features

import (
	"fmt"
	"time"

	"wisedb/internal/graph"
)

// Infinite is the sentinel encoding an infinite cost-of-X: placing the
// template on the open VM is impossible (no VM, or the VM type cannot run
// it). A large finite value keeps decision-tree thresholds finite.
const Infinite = 1e12

// PerTemplate is the number of features emitted per template.
const PerTemplate = 4

// VectorLen returns the feature vector length for a template set of size k.
func VectorLen(k int) int { return 1 + PerTemplate*k }

// Names returns the feature names in vector order.
func Names(k int) []string {
	names := make([]string, 0, VectorLen(k))
	names = append(names, "wait-time")
	for i := 0; i < k; i++ {
		names = append(names,
			fmt.Sprintf("proportion-of-T%d", i),
			fmt.Sprintf("supports-T%d", i),
			fmt.Sprintf("cost-of-T%d", i),
			fmt.Sprintf("have-T%d", i),
		)
	}
	return names
}

// Extract computes the feature vector of a vertex (§4.4). All five paper
// features are included:
//
//   - wait-time: total execution time already queued on the open VM — the
//     wait a newly placed query would incur.
//   - proportion-of-X: fraction of the open VM's queue that is template X.
//   - supports-X: whether the open VM's type can run template X.
//   - cost-of-X: the weight of the placement edge for X (Eq. 2), Infinite
//     when no VM is open or the type cannot run X.
//   - have-X: whether an instance of X is still unassigned.
func Extract(prob *graph.Problem, s *graph.State) []float64 {
	k := len(prob.Env.Templates)
	v := make([]float64, VectorLen(k))
	v[0] = s.Wait.Seconds()

	queueTotal := len(s.OpenQueue)
	counts := make([]int, k)
	for _, t := range s.OpenQueue {
		counts[t]++
	}
	for i := 0; i < k; i++ {
		base := 1 + PerTemplate*i
		if queueTotal > 0 {
			v[base] = float64(counts[i]) / float64(queueTotal)
		}
		v[base+1] = 0
		v[base+2] = Infinite
		if s.OpenType != graph.NoVM {
			if lat, ok := prob.Env.Latency(i, s.OpenType); ok {
				v[base+1] = 1
				v[base+2] = placementCost(prob, s, i, lat)
			}
		}
		if i < len(s.Unassigned) && s.Unassigned[i] > 0 {
			v[base+3] = 1
		}
	}
	return v
}

// placementCost computes the Eq. 2 edge weight for placing template t on
// the open VM, without requiring an unassigned instance to exist (cost-of-X
// is defined for every supported template, §4.4).
func placementCost(prob *graph.Problem, s *graph.State, t int, lat time.Duration) float64 {
	vt := prob.Env.VMTypes[s.OpenType]
	completion := s.Wait + lat
	delta := s.Acc.PeekAdd(t, completion) - s.Acc.Penalty()
	c := vt.RunningCost(lat) + delta
	if c > Infinite {
		c = Infinite
	}
	return c
}
