// Package experiments regenerates every figure of the paper's evaluation
// (§7, Figs. 9-22). Each FigNN function reproduces one figure as a printable
// table; cmd/experiments exposes them as subcommands and bench_test.go wraps
// them in testing.B benchmarks.
//
// Scale: Full mode follows the paper's setup (§7.1) as closely as the
// simulator allows; Quick mode shrinks workload sizes and training so the
// whole suite runs in minutes. EXPERIMENTS.md records Full-mode results
// next to the paper's.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/graph"
	"wisedb/internal/heuristics"
	"wisedb/internal/schedule"
	"wisedb/internal/search"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// Config controls experiment scale and reporting.
type Config struct {
	// Quick shrinks workloads and training for fast benchmark runs.
	Quick bool
	// Seed drives all samplers.
	Seed int64
	// Parallelism is the training worker count; 0 selects GOMAXPROCS.
	// Trained models are identical for every value, so timings (Figs.
	// 14-16) are the only figures it affects.
	Parallelism int
	// ExpansionCap bounds the exact searches behind the "Optimal"
	// comparators (Figs. 9-13); 0 selects DefaultExpansionCap. Trials
	// whose optimality proof the cap interrupts fall back to the best
	// known upper bound and are counted in the tables' "capped" column.
	ExpansionCap int
	// Out receives the rendered tables; nil discards them.
	Out io.Writer

	modelCache map[string]*core.Model
}

// DefaultConfig returns the full-scale configuration.
func DefaultConfig(out io.Writer) *Config {
	return &Config{Seed: 1, Out: out, modelCache: map[string]*core.Model{}}
}

// QuickConfig returns the reduced-scale configuration used by benchmarks.
func QuickConfig(out io.Writer) *Config {
	return &Config{Quick: true, Seed: 1, Out: out, modelCache: map[string]*core.Model{}}
}

// pick returns full in full mode and quick in quick mode.
func (c *Config) pick(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// setup bundles the environment and goals of one experimental condition.
type setup struct {
	env   *schedule.Env
	goals []namedGoal
}

type namedGoal struct {
	name string
	goal sla.Goal
}

// newSetup builds the §7.1 environment: TPC-H-like templates, EC2-like VM
// types, and the four default performance goals (Max 15m, PerQuery 3x,
// Average 10m, Percentile 90%/10m).
func (c *Config) newSetup(numTemplates, numTypes int) *setup {
	templates := workload.DefaultTemplates(numTemplates)
	env := schedule.NewEnv(templates, cloud.DefaultVMTypes(numTypes))
	return &setup{env: env, goals: defaultGoals(templates)}
}

// goal returns the named goal from the setup.
func (s *setup) goal(name string) sla.Goal {
	for _, g := range s.goals {
		if g.name == name {
			return g.goal
		}
	}
	panic("experiments: unknown goal " + name)
}

func defaultGoals(templates []workload.Template) []namedGoal {
	return []namedGoal{
		{"PerQuery", sla.NewPerQuery(3, templates, sla.DefaultPenaltyRate)},
		{"Average", sla.NewAverage(10*time.Minute, templates, sla.DefaultPenaltyRate)},
		{"Max", sla.NewMaxLatency(15*time.Minute, templates, sla.DefaultPenaltyRate)},
		{"Percent", sla.NewPercentile(90, 10*time.Minute, templates, sla.DefaultPenaltyRate)},
	}
}

// trainConfig returns the training scale for the mode. Training runs on the
// parallel worker-pool path; Parallelism=0 uses every core.
func (c *Config) trainConfig() core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Seed = c.Seed
	cfg.Parallelism = c.Parallelism
	if c.Quick {
		cfg.NumSamples = 150
		cfg.SampleSize = 8
	} else {
		cfg.NumSamples = 800
		cfg.SampleSize = 12
	}
	return cfg
}

// model trains (or fetches from the per-run cache) a decision model for the
// goal in the given environment.
func (c *Config) model(env *schedule.Env, goal sla.Goal) (*core.Model, error) {
	key := fmt.Sprintf("%s|t%d|v%d|q%v", goal.Key(), len(env.Templates), len(env.VMTypes), c.Quick)
	if m, ok := c.modelCache[key]; ok {
		return m, nil
	}
	adv, err := core.NewAdvisor(env, c.trainConfig())
	if err != nil {
		return nil, err
	}
	m, err := adv.Train(goal)
	if err != nil {
		return nil, err
	}
	if c.modelCache == nil {
		c.modelCache = map[string]*core.Model{}
	}
	c.modelCache[key] = m
	return m, nil
}

// DefaultExpansionCap is the default bound on the exact search used as the
// "Optimal" comparator. Percentile goals at 30 queries can exceed it; the
// comparator then falls back to the best known upper bound and the trial
// counts as capped.
const DefaultExpansionCap = 600_000

// expansionCap returns the configured comparator search bound.
func (c *Config) expansionCap() int {
	if c.ExpansionCap > 0 {
		return c.ExpansionCap
	}
	return DefaultExpansionCap
}

// optimalCost returns the minimum schedule cost for the workload, seeding
// branch-and-bound with the best heuristic and model schedules. proven is
// false when the expansion cap interrupted the proof; the returned cost is
// then the best known upper bound.
func (c *Config) optimalCost(env *schedule.Env, goal sla.Goal, w *workload.Workload, extraSeeds ...float64) (cost float64, proven bool, err error) {
	seed := bestSeedCost(env, goal, w)
	for _, s := range extraSeeds {
		if s < seed {
			seed = s
		}
	}
	searcher, err := search.New(graph.NewProblem(env, goal))
	if err != nil {
		return 0, false, err
	}
	res, err := searcher.Solve(w, search.Options{MaxExpansions: c.expansionCap(), IncumbentCost: seed})
	switch {
	case err == search.ErrSeedIsOptimal:
		return seed, true, nil
	case err != nil:
		// Cap hit: the seed is the best known bound.
		return seed, false, nil
	default:
		return res.Cost, res.Optimal, nil
	}
}

// bestSeedCost returns the cheapest schedule any baseline heuristic finds.
func bestSeedCost(env *schedule.Env, goal sla.Goal, w *workload.Workload) float64 {
	best := heuristics.FFD(w, env, goal, 0).Cost(env, goal)
	if c := heuristics.FFI(w, env, goal, 0).Cost(env, goal); c < best {
		best = c
	}
	if c := heuristics.Pack9(w, env, goal, 0).Cost(env, goal); c < best {
		best = c
	}
	return best
}

// pct formats a percent-above-optimal value.
func pct(model, optimal float64) string {
	if optimal == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", (model/optimal-1)*100)
}

// cents formats a cent amount.
func cents(c float64) string { return fmt.Sprintf("%.2f¢", c) }
