package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"wisedb/internal/core"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/search"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// Fig18 reproduces Figure 18: online scheduling cost relative to a
// clairvoyant optimal for arrival delays of 0-1 second between queries. The
// paper reports WiSeDB within 10% of the optimal at every arrival rate.
//
// The comparator is the offline exact schedule of the full workload,
// replayed with each query held until its arrival (DESIGN.md §2): a
// clairvoyant scheduler could do no better than its cost.
func (c *Config) Fig18() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	size := c.pick(30, 10)
	delays := []time.Duration{0, 250 * time.Millisecond, 500 * time.Millisecond, 750 * time.Millisecond, time.Second}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 18: online scheduling vs optimal (%d queries, %% above optimal)", size),
		Header: []string{"goal", "0s", "0.25s", "0.5s", "0.75s", "1s"},
	}
	for _, g := range s.goals {
		base, err := c.model(s.env, g.goal)
		if err != nil {
			return nil, err
		}
		row := []string{g.name}
		for _, delay := range delays {
			sampler := workload.NewSampler(s.env.Templates, c.Seed+18)
			w := sampler.Uniform(size).WithArrivals(workload.FixedDelayArrivals(size, delay))
			opts := core.DefaultOnlineOptions()
			opts.Retrain = onlineRetrain(c)
			res, err := core.NewOnlineScheduler(base, opts).Run(w)
			if err != nil {
				return nil, err
			}
			opt, err := c.clairvoyantCost(s.env, g.goal, w)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(res.Cost, opt))
		}
		t.AddRow(row...)
	}
	t.Fprint(c.Out)
	return t, nil
}

// onlineRetrain returns the from-scratch training scale used for augmented
// online models.
func onlineRetrain(c *Config) core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.NumSamples = c.pick(150, 40)
	cfg.SampleSize = c.pick(8, 6)
	cfg.KeepTrainingData = false
	return cfg
}

// clairvoyantCost approximates the best any online scheduler could do: the
// offline exact schedule of the whole workload, planned against a goal
// tightened by the VM start-up delay (so the plan leaves slack for it, as a
// clairvoyant would) and replayed respecting arrival times and the delay
// under the original goal.
func (c *Config) clairvoyantCost(env *schedule.Env, goal sla.Goal, w *workload.Workload) (float64, error) {
	searcher, err := search.New(graph.NewProblem(env, delayAwareGoal(goal, env.VMTypes[0].StartupDelay)))
	if err != nil {
		return 0, err
	}
	res, err := searcher.Solve(w, search.Options{MaxExpansions: c.expansionCap()})
	var sched *schedule.Schedule
	switch {
	case err == nil:
		sched = res.Schedule()
		retagByTemplate(sched, w)
	default:
		return 0, err
	}
	arrival := map[int]time.Duration{}
	for _, q := range w.Queries {
		arrival[q.Tag] = q.Arrival
	}
	cost := 0.0
	var perf []sla.QueryPerf
	for _, vm := range sched.VMs {
		vt := env.VMTypes[vm.TypeID]
		cost += vt.StartupCost
		free := vt.StartupDelay
		for _, q := range vm.Queue {
			lat, ok := env.Latency(q.TemplateID, vm.TypeID)
			if !ok {
				lat = 1000 * time.Hour
			}
			start := free
			if a := arrival[q.Tag]; a > start {
				start = a
			}
			end := start + lat
			free = end
			cost += vt.RunningCost(lat)
			perf = append(perf, sla.QueryPerf{TemplateID: q.TemplateID, Latency: end - arrival[q.Tag]})
		}
	}
	return cost + goal.Penalty(perf), nil
}

// delayAwareGoal tightens a goal's deadlines by the VM start-up delay so
// that an offline plan leaves room for it.
func delayAwareGoal(g sla.Goal, delay time.Duration) sla.Goal {
	switch goal := g.(type) {
	case sla.MaxLatency:
		return goal.Shift(delay)
	case sla.PerQuery:
		return goal.Shift(delay)
	case sla.Average:
		goal.Deadline -= delay
		return goal
	case sla.Percentile:
		goal.Deadline -= delay
		return goal
	default:
		return g
	}
}

// retagByTemplate maps a freshly built schedule's placeholder tags to the
// workload's real tags, matching earliest arrivals to earliest queue
// positions within each template.
func retagByTemplate(s *schedule.Schedule, w *workload.Workload) {
	byTemplate := map[int][]int{}
	for _, q := range w.Queries { // queries sorted by arrival
		byTemplate[q.TemplateID] = append(byTemplate[q.TemplateID], q.Tag)
	}
	for vi := range s.VMs {
		for qi := range s.VMs[vi].Queue {
			tid := s.VMs[vi].Queue[qi].TemplateID
			if tags := byTemplate[tid]; len(tags) > 0 {
				s.VMs[vi].Queue[qi].Tag = tags[0]
				byTemplate[tid] = tags[1:]
			}
		}
	}
}

// Fig19 reproduces Figure 19: the average time a query waits for the
// advisor (model acquisition + tree parsing) during online scheduling,
// under each combination of the §6.3.1 optimizations. Arrivals follow the
// paper's process: inter-arrival gaps drawn from N(1/4s, 1/8s). The paper
// reports Shift+Reuse below one second for shiftable goals, and that both
// optimizations cut overhead dramatically versus retraining every arrival.
func (c *Config) Fig19() (*Table, error) {
	s := c.newSetup(c.pick(6, 4), 1)
	size := c.pick(30, 10)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 19: average online scheduling overhead per arrival (%d queries)", size),
		Header: []string{"goal", "Shift+Reuse", "Shift", "Reuse", "None"},
	}
	variants := []struct {
		name         string
		shift, reuse bool
	}{
		{"Shift+Reuse", true, true},
		{"Shift", true, false},
		{"Reuse", false, true},
		{"None", false, false},
	}
	for _, g := range s.goals {
		base, err := c.model(s.env, g.goal)
		if err != nil {
			return nil, err
		}
		row := []string{g.name}
		for _, v := range variants {
			rng := rand.New(rand.NewSource(c.Seed + 19))
			sampler := workload.NewSampler(s.env.Templates, c.Seed+19)
			w := sampler.Uniform(size).WithArrivals(
				workload.NormalArrivals(size, 250*time.Millisecond, 125*time.Millisecond, rng))
			opts := core.DefaultOnlineOptions()
			opts.Shift = v.shift
			opts.Reuse = v.reuse
			opts.Retrain = onlineRetrain(c)
			res, err := core.NewOnlineScheduler(base, opts).Run(w)
			if err != nil {
				return nil, err
			}
			avg := res.SchedulingTime / time.Duration(len(res.PerArrival))
			row = append(row, avg.Round(time.Microsecond).String())
		}
		t.AddRow(row...)
	}
	t.Note("Shift applies only to linearly shiftable goals (Max, PerQuery); Average and Percent fall back to Reuse behaviour (§6.3.1)")
	t.Fprint(c.Out)
	return t, nil
}
