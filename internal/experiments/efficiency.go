package experiments

import (
	"fmt"
	"time"

	"wisedb/internal/core"
	"wisedb/internal/workload"
)

// Fig14 reproduces Figure 14: offline training time vs the number of query
// templates (5/10/15/20), one series per goal. The paper reports up to ~2
// minutes in the most extreme cases and under 20 seconds in tame ones.
func (c *Config) Fig14() (*Table, error) {
	counts := []int{c.pick(5, 3), c.pick(10, 5), c.pick(15, 6), c.pick(20, 8)}
	t := &Table{
		Title: "Fig. 14: training time vs number of query templates",
		Header: []string{"goal",
			fmt.Sprintf("%d templates", counts[0]), fmt.Sprintf("%d templates", counts[1]),
			fmt.Sprintf("%d templates", counts[2]), fmt.Sprintf("%d templates", counts[3])},
	}
	for _, gname := range []string{"PerQuery", "Average", "Max", "Percent"} {
		row := []string{gname}
		for _, numTemplates := range counts {
			s := c.newSetup(numTemplates, 1)
			goal := s.goal(gname)
			adv, err := core.NewAdvisor(s.env, c.trainConfig())
			if err != nil {
				return nil, err
			}
			model, err := adv.Train(goal)
			if err != nil {
				return nil, err
			}
			row = append(row, model.TrainingTime.Round(time.Millisecond).String())
		}
		t.AddRow(row...)
	}
	t.Fprint(c.Out)
	return t, nil
}

// Fig15 reproduces Figure 15: training time vs the number of VM types
// (1/5/10) with 10 templates fixed.
func (c *Config) Fig15() (*Table, error) {
	counts := []int{1, c.pick(5, 2), c.pick(10, 3)}
	numTemplates := c.pick(10, 5)
	t := &Table{
		Title: fmt.Sprintf("Fig. 15: training time vs number of VM types (%d templates)", numTemplates),
		Header: []string{"goal", fmt.Sprintf("%d type", counts[0]),
			fmt.Sprintf("%d types", counts[1]), fmt.Sprintf("%d types", counts[2])},
	}
	for _, gname := range []string{"PerQuery", "Average", "Max", "Percent"} {
		row := []string{gname}
		for _, numTypes := range counts {
			s := c.newSetup(numTemplates, numTypes)
			goal := s.goal(gname)
			adv, err := core.NewAdvisor(s.env, c.trainConfig())
			if err != nil {
				return nil, err
			}
			model, err := adv.Train(goal)
			if err != nil {
				return nil, err
			}
			row = append(row, model.TrainingTime.Round(time.Millisecond).String())
		}
		t.AddRow(row...)
	}
	t.Fprint(c.Out)
	return t, nil
}

// Fig16 reproduces Figure 16: the time to adaptively re-train a model when
// the SLA is tightened by p% of its maximum strictness (§5, §7.3). The
// paper reports sub-second re-training for tightenings up to ~40%, growing
// as more training samples need new optimal schedules.
func (c *Config) Fig16() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	shifts := []float64{0.1, 0.2, 0.4, 0.6, 0.8}
	t := &Table{
		Title:  "Fig. 16: overhead of adaptive modeling (re-train time after SLA shift)",
		Header: []string{"goal", "10%", "20%", "40%", "60%", "80%"},
	}
	for _, g := range s.goals {
		base, err := c.model(s.env, g.goal)
		if err != nil {
			return nil, err
		}
		row := []string{g.name}
		for _, p := range shifts {
			adapted, err := base.Tighten(p)
			if err != nil {
				return nil, err
			}
			row = append(row, adapted.TrainingTime.Round(time.Millisecond).String())
		}
		t.AddRow(row...)
	}
	t.Note("each column adapts the original model independently; compare with the fresh training times of Fig. 14")
	t.Fprint(c.Out)
	return t, nil
}

// Fig17 reproduces Figure 17: batch scheduling time vs workload size
// (10K/20K/30K queries). The paper reports linear scaling and under 1.5s at
// 30K queries (the tree is parsed at most 2n times, O(h) per parse).
func (c *Config) Fig17() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	sizes := []int{c.pick(10000, 1000), c.pick(20000, 2000), c.pick(30000, 3000)}
	t := &Table{
		Title: "Fig. 17: batch scheduling overhead vs workload size",
		Header: []string{"goal", fmt.Sprintf("%d queries", sizes[0]),
			fmt.Sprintf("%d queries", sizes[1]), fmt.Sprintf("%d queries", sizes[2])},
	}
	for _, g := range s.goals {
		model, err := c.model(s.env, g.goal)
		if err != nil {
			return nil, err
		}
		row := []string{g.name}
		for _, size := range sizes {
			w := workload.NewSampler(s.env.Templates, c.Seed+17).Uniform(size)
			start := time.Now()
			if _, err := model.ScheduleBatch(w); err != nil {
				return nil, err
			}
			row = append(row, time.Since(start).Round(time.Millisecond).String())
		}
		t.AddRow(row...)
	}
	t.Fprint(c.Out)
	return t, nil
}
