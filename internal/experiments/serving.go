// Serving-at-scale experiments: the multi-tenant online engine under load.
// These go beyond the paper's single-stream Figs. 18-19 toward the ROADMAP
// north star — a serving engine for many concurrent tenant streams with
// drift-triggered model hot-swapping (§6's adaptive loop, productionized).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"wisedb/internal/core"
	"wisedb/internal/sla"
	"wisedb/internal/stats"
	"wisedb/internal/workload"
)

// ServeThroughput measures multi-tenant serving throughput: K concurrent
// fixed-seed tenant streams over the engine's shared worker pool, reporting
// total arrival throughput, speedup over the single-stream baseline, the
// p50/p99 per-arrival advisor latency, and the SLA violation rate. Arrival
// gaps exceed query latencies, so every arrival takes the steady-state
// fresh-batch path — this is the serving-machinery ceiling, not a model-
// acquisition benchmark (Fig. 19 covers that).
func (c *Config) ServeThroughput() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 2)
	goal := s.goal("Max").(sla.MaxLatency)
	base, err := c.model(s.env, goal)
	if err != nil {
		return nil, err
	}
	n := c.pick(300, 60)
	t := &Table{
		Title:  fmt.Sprintf("Serving throughput: K tenant streams x %d arrivals (steady-state path)", n),
		Header: []string{"streams", "arrivals/s", "speedup", "p50 advisor", "p99 advisor", "SLA viol."},
	}
	baseline := 0.0
	for _, k := range []int{1, 4, 16} {
		ws := make([]*workload.Workload, k)
		for i := range ws {
			w := workload.NewSampler(s.env.Templates, c.Seed+int64(i)*101).Uniform(n)
			ws[i] = w.WithArrivals(workload.FixedDelayArrivals(n, 7*time.Minute))
		}
		o := core.NewOnlineScheduler(base, core.DefaultOnlineOptions())
		if _, err := o.RunStreams(context.Background(), ws, 0); err != nil {
			return nil, err // warm the engine's stream pool and scratch
		}
		start := time.Now()
		results, err := o.RunStreams(context.Background(), ws, 0)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		perSec := float64(k*n) / elapsed.Seconds()
		if k == 1 {
			baseline = perSec
		}
		var advisor []float64
		violations, completed := 0, 0
		for _, res := range results {
			for _, d := range res.PerArrival {
				advisor = append(advisor, float64(d.Nanoseconds()))
			}
			for _, out := range res.Outcomes {
				completed++
				if out.End-out.Arrival > goal.Deadline {
					violations++
				}
			}
		}
		if completed != k*n {
			return nil, fmt.Errorf("experiments: %d streams completed %d of %d arrivals", k, completed, k*n)
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", perSec),
			fmt.Sprintf("%.2fx", perSec/baseline),
			durUS(stats.Percentile(advisor, 50)),
			durUS(stats.Percentile(advisor, 99)),
			fmt.Sprintf("%.1f%%", 100*float64(violations)/float64(completed)))
	}
	t.Note("fixed-seed streams; zero dropped arrivals checked per run; speedup tracks core count (see EXPERIMENTS.md for the recorded runner)")
	t.Fprint(c.Out)
	return t, nil
}

// durUS renders nanoseconds as rounded microseconds.
func durUS(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// ServeScaleOut measures the sharded scale-out engine: K tenant streams
// placed onto engine shards by consistent hashing on tenant ID (one shard
// per core, shard-local run queues and scratch, striped ω-map), swept from
// 1 to 10k concurrent streams. Each row also runs the unsharded baseline —
// one shard, single-stripe ω-map: the pre-scale-out engine — so the table
// is the before/after evidence for the striped-cache + sharding work.
// Arrival gaps exceed query latencies (steady-state fresh-batch path); the
// per-stream arrival count shrinks as K grows so every row does the same
// total work.
func (c *Config) ServeScaleOut() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 2)
	goal := s.goal("Max").(sla.MaxLatency)
	base, err := c.model(s.env, goal)
	if err != nil {
		return nil, err
	}
	counts := []int{1, 16, 64, 256, 1024, 10000}
	if c.Quick {
		counts = []int{1, 16, 64, 256, 1000}
	}
	totalArrivals := c.pick(40000, 8000)
	maxPerStream := c.pick(200, 40)

	t := &Table{
		Title:  fmt.Sprintf("Scale-out: K tenant streams, consistent-hash placement over %d shards (striped ω-map)", runtime.GOMAXPROCS(0)),
		Header: []string{"streams", "arrivals", "sharded arr/s", "speedup", "unsharded arr/s", "sharded/unsharded"},
	}
	run := func(tenants []core.Tenant, shards, cacheShards int) (float64, error) {
		opts := core.DefaultOnlineOptions()
		opts.Shards = shards
		opts.CacheShards = cacheShards
		o := core.NewOnlineScheduler(base, opts)
		if _, err := o.RunTenants(context.Background(), tenants); err != nil {
			return 0, err // warm shard pools and scratch
		}
		start := time.Now()
		results, err := o.RunTenants(context.Background(), tenants)
		if err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		arrivals := 0
		for _, res := range results {
			arrivals += len(res.Outcomes)
		}
		return float64(arrivals) / elapsed.Seconds(), nil
	}
	baseline := 0.0
	for _, k := range counts {
		n := totalArrivals / k
		if n > maxPerStream {
			n = maxPerStream
		}
		if n < 4 {
			n = 4
		}
		ws := make([]*workload.Workload, k)
		for i := range ws {
			w := workload.NewSampler(s.env.Templates, c.Seed+int64(i)*101).Uniform(n)
			ws[i] = w.WithArrivals(workload.FixedDelayArrivals(n, 7*time.Minute))
		}
		tenants := make([]core.Tenant, k)
		for i := range tenants {
			tenants[i] = core.Tenant{ID: core.HashTenantID(fmt.Sprintf("tenant-%05d", i)), Workload: ws[i]}
		}
		sharded, err := run(tenants, 0, 0)
		if err != nil {
			return nil, err
		}
		unsharded, err := run(tenants, 1, 1)
		if err != nil {
			return nil, err
		}
		if k == 1 {
			baseline = sharded
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", k*n),
			fmt.Sprintf("%.0f", sharded),
			fmt.Sprintf("%.2fx", sharded/baseline),
			fmt.Sprintf("%.0f", unsharded),
			fmt.Sprintf("%.2fx", sharded/unsharded))
	}
	t.Note("sharded = one shard per core + %d ω-map stripes; unsharded = 1 shard + single-lock ω-map (the pre-scale-out engine)", core.DefaultCacheShards)
	t.Note("fixed-seed tenants; speedup column is vs. this run's own 1-stream row; see EXPERIMENTS.md for the recorded runner")
	t.Fprint(c.Out)
	return t, nil
}

// ServeRecovery injects a template-mix shift into tenant streams and
// reports the drift-recovery trajectory: each stream starts on the uniform
// mix the base model was trained for, then flips to a 90%-skewed mix; the
// stream's detector crosses the EMD threshold, the registry retrains toward
// the observed mix (synchronously here, so the run is reproducible), and
// the adapted model is hot-swapped in. The table splits arrivals into the
// three phases around detection; the "stale epoch" column is the recovery
// lag — arrivals served by a model trained for a mix the arrivals no
// longer follow.
//
// The run happens twice: once with the default warm retrain (cross-epoch
// cache + sample replay, see core.DriftRetrain) and once forced cold
// (core.ColdDriftRetrain), and the closing note compares their retrain
// times — the two runs must agree on every scheduling outcome, since warm
// and cold retrains produce bit-identical models.
//
// Each tenant gets its own engine so every stream's detection is
// observable; on a shared engine the first tenant's swap recovers everyone
// (that path is pinned by TestHotSwapNoDroppedArrivals).
func (c *Config) ServeRecovery() (*Table, error) {
	s := c.newSetup(c.pick(8, 5), 1)
	goal := s.goal("Max").(sla.MaxLatency)
	base, err := c.model(s.env, goal)
	if err != nil {
		return nil, err
	}
	k := len(s.env.Templates)
	streams := c.pick(8, 4)
	uniform, skewed := c.pick(120, 40), c.pick(180, 60)
	gap := 7 * time.Minute

	opts := core.DefaultOnlineOptions()
	opts.Drift = core.DriftOptions{Window: c.pick(48, 24), Threshold: 1.2, Synchronous: true}

	type phase struct {
		name                string
		arrivals, violation int
		stale               int
		latency             time.Duration
		advisor             time.Duration
	}
	type modeResult struct {
		phases               []phase
		detectLag, completed int
		triggers, swaps      int64
		retrainMS            int64
		warmSamples, cold    int64
		hits, misses         int64
		lastMix              []float64
	}
	runMode := func(retrain core.RetrainFunc) (*modeResult, error) {
		r := &modeResult{phases: []phase{
			{name: "uniform mix (before shift)"},
			{name: "shifted mix, pre-detection"},
			{name: "shifted mix, post-swap"},
		}}
		for i := 0; i < streams; i++ {
			seed := c.Seed + int64(i)*131
			head := workload.NewSampler(s.env.Templates, seed).Uniform(uniform)
			tail := workload.NewSampler(s.env.Templates, seed+1).Weighted(skewed, workload.SkewWeights(k, 0.9, k-1))
			queries := append([]workload.Query(nil), head.Queries...)
			for _, q := range tail.Queries {
				q.Tag += uniform
				queries = append(queries, q)
			}
			w := &workload.Workload{Templates: s.env.Templates, Queries: queries}
			w = w.WithArrivals(workload.FixedDelayArrivals(uniform+skewed, gap))

			o := core.NewOnlineScheduler(base, opts)
			if retrain != nil {
				o.Registry().SetRetrain(retrain)
			}
			res, err := o.Run(w)
			if err != nil {
				return nil, err
			}
			if len(res.DriftTriggerArrivals) == 0 {
				return nil, fmt.Errorf("experiments: stream %d never detected the injected shift", i)
			}
			// Arrival gaps are distinct, so a query's tag is its arrival
			// index; the first trigger index splits "shifted, old model"
			// from "shifted, adapted model".
			trigger := res.DriftTriggerArrivals[0]
			r.detectLag += trigger - uniform
			phaseOf := func(idx int) int {
				switch {
				case idx < uniform:
					return 0
				case idx < trigger:
					return 1
				default:
					return 2
				}
			}
			// Recovery lag: phase 1's arrivals follow the shifted mix but
			// are served by the uniform-trained epoch.
			r.phases[1].stale += trigger - uniform
			for _, out := range res.Outcomes {
				r.completed++
				p := phaseOf(out.Tag)
				r.phases[p].arrivals++
				r.phases[p].latency += out.End - out.Arrival
				if out.End-out.Arrival > goal.Deadline {
					r.phases[p].violation++
				}
			}
			for idx, d := range res.PerArrival {
				r.phases[phaseOf(idx)].advisor += d
			}
			st := o.Registry().Stats()
			r.triggers += st.Triggers
			r.swaps += st.Swaps
			r.retrainMS += st.TotalRetrainMS
			r.warmSamples += st.WarmSamples
			r.cold += st.ColdSamples
			r.hits += st.RetrainCacheHits
			r.misses += st.RetrainCacheMisses
			r.lastMix = o.Registry().Current().Mix
		}
		total := streams * (uniform + skewed)
		if r.completed != total {
			return nil, fmt.Errorf("experiments: %d of %d arrivals completed across hot swaps", r.completed, total)
		}
		return r, nil
	}

	warm, err := runMode(nil) // default = warm DriftRetrain
	if err != nil {
		return nil, err
	}
	cold, err := runMode(core.ColdDriftRetrain)
	if err != nil {
		return nil, err
	}
	// Warm and cold retrains are pinned bit-identical, so both runs must
	// schedule every arrival the same way.
	for p := range warm.phases {
		if warm.phases[p].arrivals != cold.phases[p].arrivals || warm.phases[p].violation != cold.phases[p].violation {
			return nil, fmt.Errorf("experiments: warm and cold recovery diverged in phase %q", warm.phases[p].name)
		}
	}

	t := &Table{
		Title:  fmt.Sprintf("Shift recovery: %d streams, mix flips to 90%% skew at arrival %d (drift EMD + hot swap)", streams, uniform),
		Header: []string{"phase", "arrivals", "stale epoch", "SLA viol.", "avg latency", "avg advisor"},
	}
	for _, p := range warm.phases {
		if p.arrivals == 0 {
			t.AddRow(p.name, "0", "-", "-", "-", "-")
			continue
		}
		t.AddRow(p.name,
			fmt.Sprintf("%d", p.arrivals),
			fmt.Sprintf("%d", p.stale),
			fmt.Sprintf("%.1f%%", 100*float64(p.violation)/float64(p.arrivals)),
			(p.latency / time.Duration(p.arrivals)).Round(time.Second).String(),
			(p.advisor / time.Duration(p.arrivals)).Round(time.Microsecond).String())
	}
	t.Note("detection lag: %.1f arrivals after the shift on average (EMD window %d, threshold %.1f); stale-epoch column counts arrivals served before the swap landed",
		float64(warm.detectLag)/float64(streams), opts.Drift.Window, opts.Drift.Threshold)
	t.Note("%d retrains, %d hot swaps across %d streams; adapted models target %.0f%% mass on the skewed template",
		warm.triggers, warm.swaps, streams, 100*warm.lastMix[k-1])
	speedup := "-"
	if warm.retrainMS > 0 {
		speedup = fmt.Sprintf("%.1fx", float64(cold.retrainMS)/float64(warm.retrainMS))
	}
	hitRate := 0.0
	if warm.hits+warm.misses > 0 {
		hitRate = 100 * float64(warm.hits) / float64(warm.hits+warm.misses)
	}
	t.Note("warm retrain: %dms total (%d/%d samples replayed, %.0f%% cache hits) vs cold %dms — %s faster, identical outcomes in both runs",
		warm.retrainMS, warm.warmSamples, warm.warmSamples+warm.cold, hitRate, cold.retrainMS, speedup)
	t.Note("zero dropped or double-scheduled arrivals across the swap: %d/%d completed exactly once", warm.completed, streams*(uniform+skewed))
	t.Fprint(c.Out)
	return t, nil
}
