// Chaos experiment: the serving engine under deterministic fault injection.
// This is the robustness counterpart of ServeRecovery — instead of asking
// how fast the engine recovers from drift, it asks what the engine costs
// when the infrastructure itself misbehaves: VMs die mid-stream, retrains
// fail until the circuit breaker trips, and the epoch model can become
// unusable outright, forcing heuristic fallback and load shedding.
package experiments

import (
	"context"
	"fmt"
	"time"

	"wisedb/internal/chaos"
	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/sla"
	"wisedb/internal/stats"
	"wisedb/internal/workload"
)

// Chaos runs three scenarios over the same shifted tenant streams and
// reports the serving cost of each failure domain:
//
//   - baseline: no injection — the healthy engine, drift retrain succeeds.
//   - vm+retrain faults: every tenant's simulator kills VMs mid-stream and
//     the first retrains fail, tripping the circuit breaker; the engine
//     keeps serving the old epoch, re-admits killed work, and recovers
//     through the breaker's half-open probe.
//   - unusable model: the epoch model cannot schedule waited batches at all
//     (no retained training data), so every backlogged arrival degrades to
//     first-fit heuristic scheduling and arrivals above the backlog bound
//     are shed admission-control style.
func (c *Config) Chaos() (*Table, error) {
	s := c.newSetup(c.pick(8, 5), 1)
	goal := s.goal("Max").(sla.MaxLatency)
	base, err := c.model(s.env, goal)
	if err != nil {
		return nil, err
	}
	// The unusable-model scenario needs a base that fails the shift path:
	// trained without retained training data, Adapt has nothing to re-train
	// from and model acquisition errors on every waited batch.
	degCfg := c.trainConfig()
	degCfg.KeepTrainingData = false
	degAdv, err := core.NewAdvisor(s.env, degCfg)
	if err != nil {
		return nil, err
	}
	degBase, err := degAdv.Train(goal)
	if err != nil {
		return nil, err
	}

	k := len(s.env.Templates)
	streams := c.pick(8, 4)
	uniform, skewed := c.pick(96, 48), c.pick(160, 80)
	n := uniform + skewed
	// 45s gaps (well under query latencies) keep real backlogs on the
	// rented VMs, so a killed VM has work to re-admit and waited batches
	// exercise the shift path.
	gap := 45 * time.Second
	spec := chaos.Spec{
		Seed: c.Seed + 977,
		VM: cloud.FaultSpec{
			VMFailureRate: 0.4,
			VMMinLifetime: time.Minute,
			VMMaxLifetime: time.Duration(n) * gap,
		},
		RetrainFailures: 2,
	}

	makeTenants := func(inject bool) []core.Tenant {
		tenants := make([]core.Tenant, streams)
		for i := range tenants {
			seed := c.Seed + int64(i)*131
			head := workload.NewSampler(s.env.Templates, seed).Uniform(uniform)
			tail := workload.NewSampler(s.env.Templates, seed+1).Weighted(skewed, workload.SkewWeights(k, 0.9, k-1))
			queries := append([]workload.Query(nil), head.Queries...)
			for _, q := range tail.Queries {
				q.Tag += uniform
				queries = append(queries, q)
			}
			w := &workload.Workload{Templates: s.env.Templates, Queries: queries}
			tenants[i] = core.Tenant{
				ID:       core.HashTenantID(fmt.Sprintf("chaos-%05d", i)),
				Workload: w.WithArrivals(workload.FixedDelayArrivals(n, gap)),
			}
			if inject {
				tenants[i].Faults = spec.VMPlan(i)
			}
		}
		return tenants
	}

	type row struct {
		completed, shed, readmitted int
		degradedPct, violPct        float64
		p99                         time.Duration
		breaker                     string
	}
	run := func(model *core.Model, opts core.OnlineOptions, inject, injectRetrain bool) (row, error) {
		o := core.NewOnlineScheduler(model, opts)
		if injectRetrain {
			o.Registry().SetRetrain(spec.Retrain(core.DriftRetrain))
		}
		results, err := o.RunTenants(context.Background(), makeTenants(inject))
		if err != nil {
			return row{}, err
		}
		var r row
		var latencies []float64
		violations, degradedArrivals, arrivalEvents := 0, 0, 0
		for i, res := range results {
			seen := make(map[int]bool, n)
			for _, out := range res.Outcomes {
				if seen[out.Tag] {
					return row{}, fmt.Errorf("experiments: chaos stream %d completed tag %d twice", i, out.Tag)
				}
				seen[out.Tag] = true
				r.completed++
				lat := out.End - out.Arrival
				latencies = append(latencies, float64(lat))
				if lat > goal.Deadline {
					violations++
				}
			}
			if len(res.Outcomes)+res.ShedArrivals != n {
				return row{}, fmt.Errorf("experiments: chaos stream %d: %d completed + %d shed != %d arrivals",
					i, len(res.Outcomes), res.ShedArrivals, n)
			}
			r.shed += res.ShedArrivals
			r.readmitted += res.FaultReadmissions
			degradedArrivals += res.DegradedArrivals
			arrivalEvents += len(res.PerArrival)
		}
		r.violPct = 100 * float64(violations) / float64(r.completed)
		r.degradedPct = 100 * float64(degradedArrivals) / float64(arrivalEvents)
		r.p99 = time.Duration(stats.Percentile(latencies, 99)).Round(time.Second)
		rb := o.ScaleStats().Robustness
		r.breaker = fmt.Sprintf("%s (%d/%d)", rb.Breaker, rb.BreakerOpens, rb.BreakerCloses)
		return r, nil
	}

	driftOpts := core.DriftOptions{Window: c.pick(48, 24), Threshold: 1.2, Synchronous: true}
	baseOpts := core.DefaultOnlineOptions()
	baseOpts.Drift = driftOpts

	faultOpts := baseOpts
	faultOpts.Retry = core.RetryPolicy{BackoffBase: -1, BreakerThreshold: 2, BreakerCooldown: 2}
	faultOpts.Degrade = true

	degOpts := core.DefaultOnlineOptions()
	degOpts.Degrade = true
	degOpts.MaxBacklog = 6

	baseline, err := run(base, baseOpts, false, false)
	if err != nil {
		return nil, err
	}
	injected, err := run(base, faultOpts, true, true)
	if err != nil {
		return nil, err
	}
	degraded, err := run(degBase, degOpts, true, false)
	if err != nil {
		return nil, err
	}

	total := streams * n
	t := &Table{
		Title:  fmt.Sprintf("Chaos: %d streams x %d arrivals under fault injection (seed %d)", streams, n, spec.Seed),
		Header: []string{"scenario", "completed", "shed", "SLA viol.", "p99 latency", "degraded", "readmitted", "breaker (open/close)"},
	}
	addRow := func(name string, r row) {
		t.AddRow(name,
			fmt.Sprintf("%d/%d", r.completed, total),
			fmt.Sprintf("%.1f%%", 100*float64(r.shed)/float64(total)),
			fmt.Sprintf("%.1f%%", r.violPct),
			r.p99.String(),
			fmt.Sprintf("%.1f%%", r.degradedPct),
			fmt.Sprintf("%d", r.readmitted),
			r.breaker)
	}
	addRow("baseline (no injection)", baseline)
	addRow("vm+retrain faults", injected)
	addRow("unusable model (degraded)", degraded)
	t.Note("breaker timeline in the faulted run: %d injected retrain failures trip it open, %d cooldown triggers are rejected, the half-open probe retrains successfully and closes it",
		spec.RetrainFailures, faultOpts.Retry.BreakerCooldown)
	t.Note("every non-shed arrival completes exactly once in all scenarios (checked per stream); VM fault plans are per-tenant seeded, so reruns are bit-identical")
	t.Note("unusable-model row: the base retains no training data, so waited batches fall back to first-fit heuristic scheduling; arrivals above a %d-query backlog are shed",
		degOpts.MaxBacklog)
	t.Fprint(c.Out)
	return t, nil
}
