package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Every figure must produce a non-empty, well-formed table in quick mode.
// This is the integration test for the whole pipeline: training, batch and
// online scheduling, adaptive modeling, heuristics, and the exact optimum.
func TestAllFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickConfig(nil)
	figs := []struct {
		name string
		rows int
		run  func() (*Table, error)
	}{
		{"fig9", 4, cfg.Fig9},
		{"fig10", 4, cfg.Fig10},
		{"fig11", 4, cfg.Fig11},
		{"fig12", 4, cfg.Fig12},
		{"fig13", 4, cfg.Fig13},
		{"fig14", 4, cfg.Fig14},
		{"fig15", 4, cfg.Fig15},
		{"fig16", 4, cfg.Fig16},
		{"fig17", 4, cfg.Fig17},
		{"fig18", 4, cfg.Fig18},
		{"fig19", 4, cfg.Fig19},
		{"fig20", 4, cfg.Fig20},
		{"fig21", len(skewLevels), cfg.Fig21},
		{"fig22", 4, cfg.Fig22},
		{"serve", 3, cfg.ServeThroughput},
		{"recovery", 3, cfg.ServeRecovery},
	}
	for _, f := range figs {
		f := f
		t.Run(f.name, func(t *testing.T) {
			table, err := f.run()
			if err != nil {
				t.Fatal(err)
			}
			if len(table.Rows) != f.rows {
				t.Fatalf("want %d rows, got %d", f.rows, len(table.Rows))
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Fatalf("row %v has %d cells, header has %d", row, len(row), len(table.Header))
				}
				for _, cell := range row {
					if cell == "" {
						t.Fatalf("empty cell in row %v", row)
					}
				}
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		Title:  "demo",
		Header: []string{"a", "column"},
		Rows:   [][]string{{"x", "1"}, {"longer", "2"}},
	}
	table.Note("footnote %d", 7)
	var b strings.Builder
	table.Fprint(&b)
	out := b.String()
	for _, want := range []string{"== demo ==", "a       column", "longer  2", "note: footnote 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// The quick-mode effectiveness figures must stay in a sane band: the model
// should be within a factor of 2 of the (possibly bounded) optimal on quick
// scales. This is a regression tripwire for the scheduling pipeline, not a
// claim about the paper's 8%.
func TestFig9Sanity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickConfig(nil)
	table, err := cfg.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("bad percent cell %q", row[3])
		}
		if v > 100 {
			t.Fatalf("%s is %s above optimal; pipeline regression", row[0], row[3])
		}
	}
}
