package experiments

import (
	"fmt"

	"wisedb/internal/heuristics"
	"wisedb/internal/workload"
)

// cappedCell renders a "capped optimality proofs / total trials" table
// cell for the exact-comparator figures: trials whose proof the expansion
// cap interrupted fall back to the best known upper bound (the reported
// above-optimal percentages are then conservative).
func cappedCell(capped, total int) string {
	return fmt.Sprintf("%d/%d", capped, total)
}

// Fig9 reproduces Figure 9: the cost of WiSeDB schedules vs the optimal for
// workloads of 30 queries uniformly distributed over 10 templates, one bar
// per performance goal. The paper reports WiSeDB within 8% of optimal for
// all metrics.
func (c *Config) Fig9() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	size := c.pick(30, 12)
	trials := c.pick(3, 2)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 9: optimality for various performance metrics (%d queries)", size),
		Header: []string{"goal", "WiSeDB", "Optimal", "above-opt", "capped"},
	}
	sampler := workload.NewSampler(s.env.Templates, c.Seed+9)
	for _, g := range s.goals {
		model, err := c.model(s.env, g.goal)
		if err != nil {
			return nil, err
		}
		sumModel, sumOpt := 0.0, 0.0
		capped := 0
		for i := 0; i < trials; i++ {
			w := sampler.Uniform(size)
			sched, err := model.ScheduleBatch(w)
			if err != nil {
				return nil, err
			}
			mc := sched.Cost(s.env, g.goal)
			oc, ok, err := c.optimalCost(s.env, g.goal, w, mc)
			if err != nil {
				return nil, err
			}
			if !ok {
				capped++
			}
			sumModel += mc
			sumOpt += oc
		}
		row := []string{g.name, cents(sumModel / float64(trials)), cents(sumOpt / float64(trials)), pct(sumModel, sumOpt), cappedCell(capped, trials)}
		if capped > 0 {
			row[2] += "*"
			t.Note("*: expansion cap hit in %d/%d trials; Optimal is the best known upper bound, not a proven optimum", capped, trials)
		}
		t.AddRow(row...)
	}
	t.Fprint(c.Out)
	return t, nil
}

// Fig10 reproduces Figure 10: percent above optimal for workload sizes of
// 20, 25, and 30 queries. The paper reports WiSeDB consistently within 8%.
func (c *Config) Fig10() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	sizes := []int{c.pick(20, 8), c.pick(25, 10), c.pick(30, 12)}
	trials := c.pick(3, 2)
	t := &Table{
		Title:  "Fig. 10: optimality for varying workload sizes (% above optimal)",
		Header: []string{"goal", fmt.Sprintf("%d queries", sizes[0]), fmt.Sprintf("%d queries", sizes[1]), fmt.Sprintf("%d queries", sizes[2]), "capped"},
	}
	for _, g := range s.goals {
		model, err := c.model(s.env, g.goal)
		if err != nil {
			return nil, err
		}
		row := []string{g.name}
		capped, total := 0, 0
		for _, size := range sizes {
			sampler := workload.NewSampler(s.env.Templates, c.Seed+10+int64(size))
			sumModel, sumOpt := 0.0, 0.0
			for i := 0; i < trials; i++ {
				w := sampler.Uniform(size)
				sched, err := model.ScheduleBatch(w)
				if err != nil {
					return nil, err
				}
				mc := sched.Cost(s.env, g.goal)
				oc, ok, err := c.optimalCost(s.env, g.goal, w, mc)
				if err != nil {
					return nil, err
				}
				if !ok {
					capped++
				}
				total++
				sumModel += mc
				sumOpt += oc
			}
			row = append(row, pct(sumModel, sumOpt))
		}
		t.AddRow(append(row, cappedCell(capped, total))...)
	}
	t.Fprint(c.Out)
	return t, nil
}

// Fig11 reproduces Figure 11: percent above optimal as the performance goal
// is tightened or loosened (strictness factor −0.4 … 0.4). The paper finds
// strictness does not affect WiSeDB's effectiveness.
func (c *Config) Fig11() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	size := c.pick(30, 10)
	trials := c.pick(3, 2)
	factors := []float64{-0.4, -0.2, 0, 0.2, 0.4}
	t := &Table{
		Title:  "Fig. 11: optimality for varying constraints (% above optimal)",
		Header: []string{"goal", "-0.4", "-0.2", "0", "+0.2", "+0.4", "capped"},
	}
	for _, g := range s.goals {
		row := []string{g.name}
		capped, total := 0, 0
		for _, p := range factors {
			goal := g.goal.Tighten(p)
			model, err := c.model(s.env, goal)
			if err != nil {
				return nil, err
			}
			sampler := workload.NewSampler(s.env.Templates, c.Seed+11)
			sumModel, sumOpt := 0.0, 0.0
			for i := 0; i < trials; i++ {
				w := sampler.Uniform(size)
				sched, err := model.ScheduleBatch(w)
				if err != nil {
					return nil, err
				}
				mc := sched.Cost(s.env, goal)
				oc, ok, err := c.optimalCost(s.env, goal, w, mc)
				if err != nil {
					return nil, err
				}
				if !ok {
					capped++
				}
				total++
				sumModel += mc
				sumOpt += oc
			}
			row = append(row, pct(sumModel, sumOpt))
		}
		t.AddRow(append(row, cappedCell(capped, total))...)
	}
	t.Fprint(c.Out)
	return t, nil
}

// Fig12 reproduces Figure 12: cost with one vs two VM types against the
// respective optima. The paper reports within 6% of optimal on average and
// that more VM types never hurt.
func (c *Config) Fig12() (*Table, error) {
	size := c.pick(30, 10)
	trials := c.pick(3, 2)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 12: optimality for multiple VM types (%d queries)", size),
		Header: []string{"goal", "WiSeDB 1T", "Optimal 1T", "WiSeDB 2T", "Optimal 2T", "capped"},
	}
	for _, gname := range []string{"PerQuery", "Average", "Max", "Percent"} {
		row := []string{gname}
		capped, total := 0, 0
		for _, numTypes := range []int{1, 2} {
			s := c.newSetup(c.pick(10, 5), numTypes)
			goal := s.goal(gname)
			model, err := c.model(s.env, goal)
			if err != nil {
				return nil, err
			}
			sampler := workload.NewSampler(s.env.Templates, c.Seed+12)
			sumModel, sumOpt := 0.0, 0.0
			for i := 0; i < trials; i++ {
				w := sampler.Uniform(size)
				sched, err := model.ScheduleBatch(w)
				if err != nil {
					return nil, err
				}
				mc := sched.Cost(s.env, goal)
				oc, ok, err := c.optimalCost(s.env, goal, w, mc)
				if err != nil {
					return nil, err
				}
				if !ok {
					capped++
				}
				total++
				sumModel += mc
				sumOpt += oc
			}
			row = append(row, cents(sumModel/float64(trials)), cents(sumOpt/float64(trials)))
		}
		t.AddRow(append(row, cappedCell(capped, total))...)
	}
	t.Fprint(c.Out)
	return t, nil
}

// Fig13 reproduces Figure 13: WiSeDB vs the metric-specific heuristics FFD,
// FFI, and Pack9 on workloads of 5000 queries. The paper reports WiSeDB
// consistently cheapest; no single heuristic handles all goals.
func (c *Config) Fig13() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	size := c.pick(5000, 400)
	trials := c.pick(3, 2)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 13: comparison with metric-specific heuristics (%d queries, dollars)", size),
		Header: []string{"goal", "FFD", "FFI", "Pack9", "WiSeDB"},
	}
	for _, g := range s.goals {
		model, err := c.model(s.env, g.goal)
		if err != nil {
			return nil, err
		}
		sums := make([]float64, 4)
		sampler := workload.NewSampler(s.env.Templates, c.Seed+13)
		for i := 0; i < trials; i++ {
			w := sampler.Uniform(size)
			sums[0] += heuristics.FFD(w, s.env, g.goal, 0).Cost(s.env, g.goal)
			sums[1] += heuristics.FFI(w, s.env, g.goal, 0).Cost(s.env, g.goal)
			sums[2] += heuristics.Pack9(w, s.env, g.goal, 0).Cost(s.env, g.goal)
			sched, err := model.ScheduleBatch(w)
			if err != nil {
				return nil, err
			}
			sums[3] += sched.Cost(s.env, g.goal)
		}
		row := []string{g.name}
		for _, sum := range sums {
			row = append(row, fmt.Sprintf("$%.2f", sum/float64(trials)/100))
		}
		t.AddRow(row...)
	}
	t.Fprint(c.Out)
	return t, nil
}
