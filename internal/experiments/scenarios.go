// Scenario-harness experiment: the catalog of trace-driven arrival
// scenarios (Poisson, heavy-tailed, diurnal, flash-crowd, priority tiers,
// spot pricing, correlated mix shifts) replayed through the serving engine.
// Each row is one committed seeded scenario — the same specs the scenario
// package's bit-determinism tests pin — so the table doubles as the
// EXPERIMENTS.md record of how the engine behaves outside the uniform
// fixed-gap regime every earlier experiment measured.
package experiments

import (
	"context"
	"fmt"
	"time"

	"wisedb/internal/core"
	"wisedb/internal/scenario"
	"wisedb/internal/sla"
	"wisedb/internal/stats"
)

// Scenarios replays the scenario catalog: K tenant streams per scenario
// (gold/bronze tiers where the scenario calls for them, spot prices where
// armed), reporting arrival throughput, p99 advisor latency, SLA violation
// rate, shed arrivals, and total cost per scenario.
func (c *Config) Scenarios() (*Table, error) {
	s := c.newSetup(5, 2)
	tiers := map[string]time.Duration{
		"":       15 * time.Minute,
		"gold":   10 * time.Minute,
		"bronze": 25 * time.Minute,
	}
	models := map[string]*core.Model{}
	goals := map[string]sla.MaxLatency{}
	for tier, deadline := range tiers {
		goal := sla.NewMaxLatency(deadline, s.env.Templates, sla.DefaultPenaltyRate)
		m, err := c.model(s.env, goal)
		if err != nil {
			return nil, err
		}
		models[tier], goals[tier] = m, goal
	}

	n := c.pick(200, 48)
	gap := 5 * time.Minute
	t := &Table{
		Title:  fmt.Sprintf("Scenario harness: seeded arrival/mix/price scenarios x %d arrivals per tenant", n),
		Header: []string{"scenario", "tenants", "arrivals/s", "p99 advisor", "SLA viol.", "sheds", "cost"},
	}
	for _, spec := range scenario.Catalog(c.Seed+40, n, gap) {
		opts := core.DefaultOnlineOptions()
		opts.Prices = spec.Prices
		o := core.NewOnlineScheduler(models[""], opts)
		for _, tier := range []string{"gold", "bronze"} {
			if _, err := o.AddRegistry(tier, models[tier]); err != nil {
				return nil, err
			}
		}
		tenants := spec.Generate(s.env.Templates)
		start := time.Now()
		results, err := o.RunTenants(context.Background(), tenants)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
		}
		elapsed := time.Since(start)

		var advisor []float64
		arrivals, violations, completed, sheds := 0, 0, 0, 0
		cost := 0.0
		for i, res := range results {
			deadline := tiers[spec.Tenants[i].Registry]
			arrivals += len(res.PerArrival)
			sheds += res.ShedArrivals
			cost += res.Cost
			for _, d := range res.PerArrival {
				advisor = append(advisor, float64(d.Nanoseconds()))
			}
			for _, out := range res.Outcomes {
				completed++
				if out.End-out.Arrival > deadline {
					violations++
				}
			}
			if want := spec.Tenants[i].Queries - res.ShedArrivals; len(res.Outcomes) != want {
				return nil, fmt.Errorf("scenario %s tenant %s: %d completions, want %d",
					spec.Name, spec.Tenants[i].Name, len(res.Outcomes), want)
			}
		}
		t.AddRow(spec.Name,
			fmt.Sprintf("%d", len(tenants)),
			fmt.Sprintf("%.0f", float64(completed+sheds)/elapsed.Seconds()),
			durUS(stats.Percentile(advisor, 99)),
			fmt.Sprintf("%.1f%%", 100*float64(violations)/float64(completed)),
			fmt.Sprintf("%d", sheds),
			cents(cost))
	}
	t.Note("committed seeded specs (scenario.Catalog); every row is bit-deterministic at any Parallelism x Shards and replayed under -race in CI; gold=10m, bronze=25m, default=15m SLAs; spot row serves under a seeded price walk in [0.5x, 2.0x]")
	t.Fprint(c.Out)
	return t, nil
}
