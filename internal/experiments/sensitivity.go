package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/search"
	"wisedb/internal/sla"
	"wisedb/internal/stats"
	"wisedb/internal/workload"
)

// skewLevels maps the χ² axis of Figs. 20-21: each skew parameter yields
// workloads whose χ² confidence against uniformity spans 0..1.
var skewLevels = []float64{0, 0.2, 0.4, 0.6, 0.8, 0.97}

// Fig20 reproduces Figure 20: percent above optimal for workloads skewed
// toward one template, by χ² confidence. The paper reports less than 2%
// change even for χ² ≈ 1 (models are trained on uniform samples only).
func (c *Config) Fig20() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	size := c.pick(30, 10)
	trials := c.pick(3, 2)
	t := &Table{
		Title:  fmt.Sprintf("Fig. 20: sensitivity to skewed runtime workloads (%d queries, %% above optimal)", size),
		Header: append([]string{"goal"}, skewHeaders(s, size, trials, c.Seed)...),
	}
	for _, g := range s.goals {
		model, err := c.model(s.env, g.goal)
		if err != nil {
			return nil, err
		}
		row := []string{g.name}
		for _, skew := range skewLevels {
			sampler := workload.NewSampler(s.env.Templates, c.Seed+20)
			weights := workload.SkewWeights(len(s.env.Templates), skew, len(s.env.Templates)/2)
			sumModel, sumOpt := 0.0, 0.0
			for i := 0; i < trials; i++ {
				w := sampler.Weighted(size, weights)
				sched, err := model.ScheduleBatch(w)
				if err != nil {
					return nil, err
				}
				mc := sched.Cost(s.env, g.goal)
				oc, _, err := c.optimalCost(s.env, g.goal, w, mc)
				if err != nil {
					return nil, err
				}
				sumModel += mc
				sumOpt += oc
			}
			row = append(row, pct(sumModel, sumOpt))
		}
		t.AddRow(row...)
	}
	t.Fprint(c.Out)
	return t, nil
}

// skewHeaders renders each skew level as its measured χ² confidence, the
// quantity the paper plots on the x axis (§7.5).
func skewHeaders(s *setup, size, trials int, seed int64) []string {
	headers := make([]string, len(skewLevels))
	for i, skew := range skewLevels {
		sampler := workload.NewSampler(s.env.Templates, seed+20)
		weights := workload.SkewWeights(len(s.env.Templates), skew, len(s.env.Templates)/2)
		conf := 0.0
		for j := 0; j < trials; j++ {
			w := sampler.Weighted(size, weights)
			conf += stats.UniformChiSquareConfidence(w.Counts())
		}
		headers[i] = fmt.Sprintf("χ²=%.2f", conf/float64(trials))
	}
	return headers
}

// Fig21 reproduces Figure 21: the mean and range of schedule costs across
// many skewed workloads under the Max goal, for WiSeDB and the optimal.
// The paper reports a stable mean but growing variance with skew, with
// WiSeDB's variance tracking the optimal scheduler's.
func (c *Config) Fig21() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	size := c.pick(30, 10)
	workloads := c.pick(200, 20)
	goal := s.goal("Max")
	model, err := c.model(s.env, goal)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 21: workload skewness vs cost range (Max goal, %d workloads per level)", workloads),
		Header: []string{"skew", "WiSeDB mean", "WiSeDB min..max", "Optimal mean", "Optimal min..max"},
	}
	for _, skew := range skewLevels {
		sampler := workload.NewSampler(s.env.Templates, c.Seed+21)
		weights := workload.SkewWeights(len(s.env.Templates), skew, len(s.env.Templates)/2)
		var modelCosts, optCosts []float64
		for i := 0; i < workloads; i++ {
			w := sampler.Weighted(size, weights)
			sched, err := model.ScheduleBatch(w)
			if err != nil {
				return nil, err
			}
			mc := sched.Cost(s.env, goal)
			oc, _, err := c.optimalCost(s.env, goal, w, mc)
			if err != nil {
				return nil, err
			}
			modelCosts = append(modelCosts, mc)
			optCosts = append(optCosts, oc)
		}
		mMin, mMax := stats.MinMax(modelCosts)
		oMin, oMax := stats.MinMax(optCosts)
		t.AddRow(fmt.Sprintf("%.2f", skew),
			cents(stats.Mean(modelCosts)), fmt.Sprintf("%s..%s", cents(mMin), cents(mMax)),
			cents(stats.Mean(optCosts)), fmt.Sprintf("%s..%s", cents(oMin), cents(oMax)))
	}
	t.Fprint(c.Out)
	return t, nil
}

// Fig22 reproduces Figure 22: the effect of latency prediction error on
// schedule cost. Each query's observed latency is a noisy draw around its
// template's true latency (σ as a fraction of the true value); WiSeDB
// classifies the query to the template with the closest predicted latency
// (§6.2) and schedules by template identity, while true latencies drive the
// realized cost. The paper reports graceful behaviour below ~30% error and
// sharp degradation at 40% as template membership becomes ambiguous.
func (c *Config) Fig22() (*Table, error) {
	s := c.newSetup(c.pick(10, 5), 1)
	size := c.pick(30, 10)
	trials := c.pick(6, 6) // realization noise is large; average more runs
	sigmas := []float64{0.1, 0.2, 0.3, 0.4}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 22: optimality under latency prediction error (%d queries, %% above optimal)", size),
		Header: []string{"goal", "10%", "20%", "30%", "40%"},
	}
	for _, g := range s.goals {
		model, err := c.model(s.env, g.goal)
		if err != nil {
			return nil, err
		}
		row := []string{g.name}
		for _, sigma := range sigmas {
			rng := rand.New(rand.NewSource(c.Seed + 22))
			sampler := workload.NewSampler(s.env.Templates, c.Seed+22)
			sumModel, sumOpt := 0.0, 0.0
			for i := 0; i < trials; i++ {
				trueW := sampler.Uniform(size)
				misW, trueLat := misclassify(trueW, s.env, sigma, rng)
				sched, err := model.ScheduleBatch(misW)
				if err != nil {
					return nil, err
				}
				mc := realizedCost(sched, s.env, g.goal, trueLat)
				// The comparator plans from the same misclassified
				// view — realization noise hits both sides equally,
				// so the ratio isolates decision quality.
				oc, err := c.optimalUnderMisclassification(s.env, g.goal, misW, trueLat)
				if err != nil {
					return nil, err
				}
				sumModel += mc
				sumOpt += oc
			}
			row = append(row, pct(sumModel, sumOpt))
		}
		t.AddRow(row...)
	}
	t.Fprint(c.Out)
	return t, nil
}

// optimalUnderMisclassification computes the exact optimal schedule for the
// misclassified template view and prices it with true latencies: what a
// perfect scheduler with the same (erroneous) information would pay.
func (c *Config) optimalUnderMisclassification(env *schedule.Env, goal sla.Goal, misW *workload.Workload, trueLat map[int]time.Duration) (float64, error) {
	searcher, err := search.New(graph.NewProblem(env, goal))
	if err != nil {
		return 0, err
	}
	res, err := searcher.Solve(misW, search.Options{MaxExpansions: c.expansionCap()})
	if err != nil {
		return 0, err
	}
	sched := res.Schedule()
	retagByTemplate(sched, misW)
	return realizedCost(sched, env, goal, trueLat), nil
}

// misclassify returns a copy of the workload where each query has been
// re-assigned to the template whose latency is closest to a noisy
// observation of the query's true latency, plus the true latency per tag.
func misclassify(w *workload.Workload, env *schedule.Env, sigma float64, rng *rand.Rand) (*workload.Workload, map[int]time.Duration) {
	trueLat := map[int]time.Duration{}
	queries := make([]workload.Query, len(w.Queries))
	ref := env.VMTypes[0]
	for i, q := range w.Queries {
		actual := w.Templates[q.TemplateID].BaseLatency
		trueLat[q.Tag] = actual
		observed := cloud.SampleNoisyLatency(actual, sigma, rng)
		queries[i] = workload.Query{
			TemplateID: cloud.ClosestTemplate(observed, w.Templates, ref, env.Pred),
			Tag:        q.Tag,
		}
	}
	return &workload.Workload{Templates: w.Templates, Queries: queries}, trueLat
}

// realizedCost prices a schedule using each query's true latency rather
// than the latency of the (possibly wrong) template it was scheduled as.
func realizedCost(s *schedule.Schedule, env *schedule.Env, goal sla.Goal, trueLat map[int]time.Duration) float64 {
	cost := 0.0
	var perf []sla.QueryPerf
	for _, vm := range s.VMs {
		vt := env.VMTypes[vm.TypeID]
		cost += vt.StartupCost
		elapsed := time.Duration(0)
		for _, q := range vm.Queue {
			lat, ok := trueLat[q.Tag]
			if !ok {
				lat, _ = env.Latency(q.TemplateID, vm.TypeID)
			}
			cost += vt.RunningCost(lat)
			elapsed += lat
			perf = append(perf, sla.QueryPerf{TemplateID: q.TemplateID, Latency: elapsed})
		}
	}
	return cost + goal.Penalty(perf)
}
