package search

import (
	"math"
	"sort"
	"time"

	"wisedb/internal/graph"
	"wisedb/internal/sla"
)

// averageBound lower-bounds the future start-up fees plus the final penalty
// for the Average goal. Like packingBound, it exists to break the tie
// plateau where every penalty-free completion differs only in VM counts:
// without it A* must expand essentially every packing whose f omits the
// start-up fees the completion will inevitably pay.
//
// The bound relaxes the remaining problem to classical multiprocessor total
// completion time: with M parallel machines, the minimum achievable sum of
// completion times of the remaining queries is the round-robin SPT value
// Σ l_(i) × ⌈i/M⌉ over latencies sorted descending (each query's latency is
// relaxed to its fastest execution time, machine ready times to zero). With
// k new VMs (plus the open VM if one exists) the final average latency is
// then at least (sum + minSumC(M)) / nTotal, so
//
//	extra(k) = k × minStartup + rate × max(0, (sum+minSumC(M))/nTotal − D)
//
// never overestimates, and extra is unimodal in k (minSumC is convex
// decreasing), so a ternary search finds min_k extra(k).
//
// The descending latency vector is never materialized: it is a sequence of
// per-template runs (templates visited in precomputed descending minLat
// order, each contributing Unassigned[t] equal latencies), and the
// positional weights Σ⌊i/m⌋ over a run have a closed form — the bound
// evaluates in O(templates) per k with zero allocations.
func (s *Searcher) averageBound(st *graph.State, goal sla.Average, remaining int) float64 {
	nDone, sum, ok := sla.MeanState(st.Acc)
	if !ok {
		return 0
	}
	nTotal := nDone + remaining
	openVMs := 0
	if st.OpenType != graph.NoVM {
		openVMs = 1
	}
	kLow := 0
	if openVMs == 0 {
		kLow = 1
	}
	extra := func(k int) float64 {
		m := k + openVMs
		avg := (sum + s.roundRobinSumC(st, m)) / time.Duration(nTotal)
		cost := float64(k) * s.minStartup
		if avg > goal.Deadline {
			cost += (avg - goal.Deadline).Seconds() * goal.Rate
		}
		return cost
	}
	lo, hi := kLow, remaining
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if extra(m1) <= extra(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	best := math.Inf(1)
	for k := lo; k <= hi; k++ {
		if c := extra(k); c < best {
			best = c
		}
	}
	return best
}

// roundRobinSumC returns Σ l_(i) × (⌊i/m⌋+1) over the state's remaining
// execution latencies sorted descending — the round-robin SPT completion
// sum on m machines — without materializing the latency vector. Positions
// [pos, pos+c) all carry template t's fastest latency, so each template
// contributes l_t × (c + Σ_{i=pos}^{pos+c-1} ⌊i/m⌋) with the inner sum in
// closed form.
func (s *Searcher) roundRobinSumC(st *graph.State, m int) time.Duration {
	var sumC time.Duration
	pos := 0
	for _, t := range s.latOrderDesc {
		c := st.Unassigned[t]
		if c == 0 {
			continue
		}
		blocks := floorDivSum(pos+c, m) - floorDivSum(pos, m)
		sumC += s.minLat[t] * time.Duration(c+blocks)
		pos += c
	}
	return sumC
}

// floorDivSum returns Σ_{i=0}^{n-1} ⌊i/m⌋.
func floorDivSum(n, m int) int {
	q, r := n/m, n%m
	return m*q*(q-1)/2 + q*r
}

// initLatOrder precomputes template indices sorted by descending minimum
// latency, used by averageBound and percentileBound.
func (s *Searcher) initLatOrder() {
	s.latOrderDesc = make([]int, len(s.minLat))
	for i := range s.latOrderDesc {
		s.latOrderDesc[i] = i
	}
	sort.Slice(s.latOrderDesc, func(a, b int) bool {
		return s.minLat[s.latOrderDesc[a]] > s.minLat[s.latOrderDesc[b]]
	})
}

// percentileBound lower-bounds future start-up fees plus final penalty for
// the Percentile goal, breaking the same fee tie plateau averageBound does
// for Average.
//
// With nTotal final queries and rank = ⌈percent·nTotal⌉, a schedule incurs
// no penalty only if at most B = nTotal − rank queries exceed the deadline.
// Already a = |above| assigned queries exceed it, so at least
// q = remaining − (B − a) future queries must finish within the deadline.
// Their total work is at least W', the sum of the q smallest future
// execution latencies. With k new VMs (M machines total) and the open VM's
// residual room, fitting them within deadline+δ requires
// W' ≤ room0 + k·deadline + (M+1)·δ, so the percentile overage δ is at
// least (W' − room0 − k·deadline)/(M+1):
//
//	extra(k) = k × minStartup + rate × max(0, spill_k/(M+1))
//
// The bound takes the best k, which no completion can beat. Scratch (the
// big-item vector) is drawn from the search arena; steady state allocates
// nothing.
func (s *Searcher) percentileBound(ar *arena, st *graph.State, goal sla.Percentile, remaining int) float64 {
	below, above, ok := sla.PctState(st.Acc)
	if !ok {
		return 0
	}
	nTotal := below + len(above) + remaining
	rank := int((goal.Percent/100)*float64(nTotal) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > nTotal {
		rank = nTotal
	}
	budget := nTotal - rank - len(above) // future queries allowed over deadline
	mustFit := remaining
	if budget > 0 {
		mustFit -= budget
	}
	openVMs := 0
	room0 := time.Duration(0)
	if st.OpenType != graph.NoVM {
		openVMs = 1
		if goal.Deadline > st.Wait {
			room0 = goal.Deadline - st.Wait
		}
	}
	kLow := 1 - openVMs
	if mustFit <= 0 {
		return float64(kLow) * s.minStartup
	}
	// W': total work of the mustFit smallest future execution latencies.
	// latOrderDesc is descending, so take from the tail.
	var work time.Duration
	taken := 0
	for i := len(s.latOrderDesc) - 1; i >= 0 && taken < mustFit; i-- {
		t := s.latOrderDesc[i]
		c := st.Unassigned[t]
		if c > mustFit-taken {
			c = mustFit - taken
		}
		work += time.Duration(c) * s.minLat[t]
		taken += c
	}
	// Pigeonhole refinement: two must-fit items longer than half the
	// deadline cannot share a machine penalty-free. With fewer machines
	// than big items, the two smallest bigs bound the forced overage.
	ar.bigs = s.collectBigs(ar.bigs[:0], st, mustFit, goal.Deadline)
	bigs := ar.bigs
	openBig := 0
	if openVMs == 1 && len(bigs) > 0 && st.Wait+bigs[0] <= goal.Deadline {
		openBig = 1
	}
	best := math.Inf(1)
	for k := kLow; k <= remaining; k++ {
		m := k + openVMs
		cost := float64(k) * s.minStartup
		pen := 0.0
		if spill := work - room0 - time.Duration(k)*goal.Deadline; spill > 0 {
			pen = goal.Rate * (spill / time.Duration(m+1)).Seconds()
		}
		if len(bigs) >= 2 && len(bigs) > k+openBig {
			if over := bigs[0] + bigs[1] - goal.Deadline; over > 0 {
				if p := goal.Rate * over.Seconds(); p > pen {
					pen = p
				}
			}
		}
		cost += pen
		if cost > best {
			break // increasing past the optimum: fees dominate
		}
		best = cost
	}
	return best
}

// collectBigs appends, ascending, the execution latencies greater than half
// the deadline among the `mustFit` smallest future queries to buf.
func (s *Searcher) collectBigs(buf []time.Duration, st *graph.State, mustFit int, deadline time.Duration) []time.Duration {
	half := deadline / 2
	taken := 0
	for i := len(s.latOrderDesc) - 1; i >= 0 && taken < mustFit; i-- {
		t := s.latOrderDesc[i]
		c := st.Unassigned[t]
		if c > mustFit-taken {
			c = mustFit - taken
		}
		taken += c
		if s.minLat[t] > half {
			for j := 0; j < c; j++ {
				buf = append(buf, s.minLat[t])
			}
		}
	}
	return buf
}
