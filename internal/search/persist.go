package search

import "fmt"

// ClosedExport is the flat, serializable form of a Closed set: the interned
// signature bytes laid back to back with their offsets and lengths (id
// order), and the recorded best path cost per id. The hash table itself is
// not exported — signature hashing is seeded per process — so an import
// rebuilds it by re-interning.
type ClosedExport struct {
	Keys []byte
	Offs []uint32
	Lens []uint32
	G    []float64
}

// Export flattens the closed set. The returned slices are copies.
func (c *Closed) Export() ClosedExport {
	return ClosedExport{
		Keys: append([]byte(nil), c.Table.keys...),
		Offs: append([]uint32(nil), c.Table.offs...),
		Lens: append([]uint32(nil), c.Table.lens...),
		G:    append([]float64(nil), c.G...),
	}
}

// ClosedFromExport rebuilds a closed set by re-interning every exported
// signature in id order. It validates the export completely — consistent
// lengths, contiguous key layout, no duplicate signatures — so a decoder
// can feed it untrusted bytes: malformed exports yield an error, never a
// panic or a corrupted table.
func ClosedFromExport(e ClosedExport) (*Closed, error) {
	n := len(e.Offs)
	if len(e.Lens) != n || len(e.G) != n {
		return nil, fmt.Errorf("search: closed export has %d offsets, %d lengths, %d costs", n, len(e.Lens), len(e.G))
	}
	t := NewInternTable()
	pos := uint32(0)
	for i := 0; i < n; i++ {
		// Intern appends keys back to back, so a faithful export has
		// offs[i] exactly at the running total; anything else was not
		// produced by Export.
		if e.Offs[i] != pos || e.Lens[i] > uint32(len(e.Keys))-pos {
			return nil, fmt.Errorf("search: closed export key %d spans [%d,+%d) of %d key bytes", i, e.Offs[i], e.Lens[i], len(e.Keys))
		}
		sig := e.Keys[pos : pos+e.Lens[i]]
		id, fresh := t.Intern(sig)
		if !fresh || id != uint32(i) {
			return nil, fmt.Errorf("search: closed export has duplicate signature at id %d", i)
		}
		pos += e.Lens[i]
	}
	if pos != uint32(len(e.Keys)) {
		return nil, fmt.Errorf("search: closed export has %d trailing key bytes", uint32(len(e.Keys))-pos)
	}
	return &Closed{Table: t, G: append([]float64(nil), e.G...)}, nil
}
