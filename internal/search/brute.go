package search

import (
	"math"

	"wisedb/internal/graph"
	"wisedb/internal/workload"
)

// BruteForceCost exhaustively enumerates every path of the reduced
// scheduling graph and returns the minimum complete-schedule cost. It is
// exponential and intended only for cross-checking A* on tiny workloads in
// tests; maxQueries guards against accidental misuse.
const maxBruteForceQueries = 8

// BruteForceCost returns the exact optimal cost by exhaustive enumeration.
// It panics if the workload exceeds the brute-force size guard.
func BruteForceCost(prob *graph.Problem, w *workload.Workload) float64 {
	if len(w.Queries) > maxBruteForceQueries {
		panic("search: BruteForceCost workload too large")
	}
	best := math.Inf(1)
	var dfs func(s *graph.State, g float64)
	dfs = func(s *graph.State, g float64) {
		if s.IsGoal() {
			if g < best {
				best = g
			}
			return
		}
		for _, a := range prob.Actions(s) {
			var cost float64
			switch a.Kind {
			case graph.Startup:
				cost = prob.StartupCost(a.VMType)
			case graph.Place:
				c, ok := prob.PlacementCost(s, a.Template)
				if !ok {
					continue
				}
				cost = c
			}
			dfs(prob.Apply(s, a), g+cost)
		}
	}
	dfs(prob.Start(w), 0)
	return best
}
