package search

import (
	"math"
	"sync"
	"testing"

	"wisedb/internal/graph"
	"wisedb/internal/workload"
)

// Cross-goal equivalence property test: the optimized searcher — arena
// states, bucket frontier, transposition cache where applicable — must
// agree with exhaustive enumeration (BruteForceCost) on randomized small
// workloads for all four goal families. The cached goals run their
// workloads concurrently against one shared Searcher and cache (commit
// barriers between rounds, like the training pool), so `go test -race`
// also exercises the cache's locking.
func TestOptimizedSearchMatchesBruteForceAllGoals(t *testing.T) {
	env := testEnv(3, 2)
	for name, goal := range goalSet(env) {
		t.Run(name, func(t *testing.T) {
			prob := graph.NewProblem(env, goal)
			prob.NoSymmetryBreaking = true
			s, err := New(prob)
			if err != nil {
				t.Fatal(err)
			}
			cache := NewTranspositionCache()
			sampler := workload.NewSampler(env.Templates, 83)
			const rounds, perRound = 4, 6
			for round := 0; round < rounds; round++ {
				workloads := make([]*workload.Workload, perRound)
				want := make([]float64, perRound)
				for i := range workloads {
					workloads[i] = sampler.Uniform(5)
					want[i] = BruteForceCost(prob, workloads[i])
				}
				pending := make([]PendingSuffixes, perRound)
				var wg sync.WaitGroup
				for i := range workloads {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						res, err := s.Solve(workloads[i], Options{Cache: cache, Record: &pending[i]})
						if err != nil {
							t.Errorf("round %d workload %d: %v", round, i, err)
							return
						}
						if math.Abs(res.Cost-want[i]) > 1e-6 {
							t.Errorf("round %d workload %d: optimized %.9f, brute force %.9f", round, i, res.Cost, want[i])
						}
						if err := res.Schedule().Validate(env, workloads[i]); err != nil {
							t.Errorf("round %d workload %d: invalid schedule: %v", round, i, err)
						}
					}(i)
				}
				wg.Wait()
				// The deterministic barrier of the training pool.
				for i := range pending {
					cache.Commit(&pending[i])
				}
			}
		})
	}
}
