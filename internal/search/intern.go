package search

import (
	"bytes"
	"hash/maphash"
	"math"
)

// InternTable maps state signatures to dense uint32 ids. The search interns
// every generated state's signature exactly once and indexes its per-state
// bookkeeping (best-known path cost, open-list node) with the dense id, so
// the hot path never materializes a signature string for a state it has
// already seen.
//
// The table is open-addressed with linear probing over power-of-two slot
// arrays, and signature bytes live in one append-only byte arena — no
// per-entry allocations, and lookups run directly on the caller's scratch
// buffer. Reset is O(1): slots carry a generation stamp, and bumping the
// table's generation invalidates every slot at once, so a pooled search
// arena reuses its table without paying to clear it.
//
// A populated table is immutable once exported on a Result (via Closed) and
// safe for concurrent readers; Intern itself is not safe for concurrent use.
type InternTable struct {
	slots []islot
	mask  uint32
	gen   uint32
	// keys holds every interned signature back to back; offs/lens locate
	// id's bytes.
	keys []byte
	offs []uint32
	lens []uint32
}

// islot is one open-addressing slot: occupied in the current generation
// when gen matches the table's.
type islot struct {
	hash uint32
	id   uint32
	gen  uint32
}

const internMinSlots = 1024

// NewInternTable returns an empty table.
func NewInternTable() *InternTable {
	return &InternTable{
		slots: make([]islot, internMinSlots),
		mask:  internMinSlots - 1,
		gen:   1,
	}
}

// Len returns the number of interned signatures.
func (t *InternTable) Len() int { return len(t.offs) }

// sigSeed keys signature hashing for this process. Hash values decide only
// probe order and shard choice — ids are assigned in insertion order and
// shard placement is unobservable — so a per-process random seed does not
// affect determinism of search results.
var sigSeed = maphash.MakeSeed()

// hashSig hashes the signature bytes through the runtime-assisted maphash.
func hashSig(sig []byte) uint32 {
	h := maphash.Bytes(sigSeed, sig)
	return uint32(h ^ h>>32)
}

// key returns id's signature bytes.
func (t *InternTable) key(id uint32) []byte {
	off := t.offs[id]
	return t.keys[off : off+t.lens[id]]
}

// Intern returns the dense id of the signature, assigning the next free id
// (== Len() before the call) when the signature is new. fresh reports
// whether a new id was assigned. The byte slice is only copied when fresh.
func (t *InternTable) Intern(sig []byte) (id uint32, fresh bool) {
	if len(t.offs) >= len(t.slots)*3/4 {
		t.grow()
	}
	h := hashSig(sig)
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.gen != t.gen {
			id = uint32(len(t.offs))
			t.offs = append(t.offs, uint32(len(t.keys)))
			t.lens = append(t.lens, uint32(len(sig)))
			t.keys = append(t.keys, sig...)
			*s = islot{hash: h, id: id, gen: t.gen}
			return id, true
		}
		if s.hash == h && bytes.Equal(t.key(s.id), sig) {
			return s.id, false
		}
		i = (i + 1) & t.mask
	}
}

// Lookup returns the id of the signature without interning it.
func (t *InternTable) Lookup(sig []byte) (uint32, bool) {
	h := hashSig(sig)
	i := h & t.mask
	for {
		s := &t.slots[i]
		if s.gen != t.gen {
			return 0, false
		}
		if s.hash == h && bytes.Equal(t.key(s.id), sig) {
			return s.id, true
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the slot array, reinserting live entries with their stored
// hashes (no key bytes are re-hashed).
func (t *InternTable) grow() {
	t.slots = rehash(t.slots, 2*len(t.slots), t.gen)
	t.mask = uint32(len(t.slots) - 1)
}

// rehash redistributes the generation-live entries of slots into a fresh
// power-of-two array of the given size.
func rehash(slots []islot, size int, gen uint32) []islot {
	out := make([]islot, size)
	mask := uint32(size - 1)
	for _, s := range slots {
		if s.gen != gen {
			continue
		}
		i := s.hash & mask
		for out[i].gen == gen {
			i = (i + 1) & mask
		}
		out[i] = s
	}
	return out
}

// Reset empties the table in O(1), retaining its allocated capacity for
// reuse by a later search: bumping the generation stamp invalidates every
// slot at once.
func (t *InternTable) Reset() {
	t.gen++
	if t.gen == 0 {
		// Generation counter wrapped (once per 2^32 resets): stale slots
		// from generation 0 could read as live, so clear them.
		for i := range t.slots {
			t.slots[i] = islot{}
		}
		t.gen = 1
	}
	t.keys = t.keys[:0]
	t.offs = t.offs[:0]
	t.lens = t.lens[:0]
}

// Snapshot returns an immutable deep copy of the table, rehashed into the
// smallest slot array that holds its contents (the arena table it copies
// from may have grown much larger serving a bigger earlier search). Solve
// interns into a pooled arena table on the hot path and snapshots it once
// when the caller asked to keep the closed set.
func (t *InternTable) Snapshot() *InternTable {
	size := 64
	for size*3/4 <= len(t.offs) {
		size *= 2
	}
	return &InternTable{
		slots: rehash(t.slots, size, t.gen),
		mask:  uint32(size - 1),
		gen:   t.gen,
		keys:  append([]byte(nil), t.keys...),
		offs:  append([]uint32(nil), t.offs...),
		lens:  append([]uint32(nil), t.lens...),
	}
}

// Closed is the interned closed-set export of a completed search: the
// signature→id table plus the best path cost g(v) reached for each id.
// Entries whose states were generated but pruned before being recorded hold
// +Inf and report as absent. Adaptive modeling (§5) feeds a Closed back into
// a re-search of the same workload under a tightened goal.
type Closed struct {
	// Table interns the signatures of every state the search generated.
	Table *InternTable
	// G holds the best known path cost per dense id.
	G []float64
}

// Lookup returns the recorded best path cost for the signature.
func (c *Closed) Lookup(sig []byte) (float64, bool) {
	id, ok := c.Table.Lookup(sig)
	if !ok || math.IsInf(c.G[id], 1) {
		return 0, false
	}
	return c.G[id], true
}

// Len returns the number of states with a recorded path cost.
func (c *Closed) Len() int {
	n := 0
	for _, g := range c.G {
		if !math.IsInf(g, 1) {
			n++
		}
	}
	return n
}
