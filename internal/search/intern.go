package search

import "math"

// InternTable maps state signatures to dense uint32 ids. The search interns
// every generated state's signature exactly once and indexes its per-state
// bookkeeping (best-known path cost, open-list node) with the dense id, so
// the hot path never materializes a signature string for a state it has
// already seen: lookups run on the scratch signature buffer and only a fresh
// state's bytes are copied into the table.
//
// A populated table is immutable once exported on a Result (via Closed) and
// safe for concurrent readers; Intern itself is not safe for concurrent use.
type InternTable struct {
	ids map[string]uint32
}

// NewInternTable returns an empty table.
func NewInternTable() *InternTable {
	return &InternTable{ids: make(map[string]uint32)}
}

// Len returns the number of interned signatures.
func (t *InternTable) Len() int { return len(t.ids) }

// Intern returns the dense id of the signature, assigning the next free id
// (== Len() before the call) when the signature is new. fresh reports
// whether a new id was assigned. The byte slice is only copied when fresh.
func (t *InternTable) Intern(sig []byte) (id uint32, fresh bool) {
	if id, ok := t.ids[string(sig)]; ok {
		return id, false
	}
	id = uint32(len(t.ids))
	t.ids[string(sig)] = id
	return id, true
}

// Lookup returns the id of the signature without interning it.
func (t *InternTable) Lookup(sig []byte) (uint32, bool) {
	id, ok := t.ids[string(sig)]
	return id, ok
}

// Reset empties the table, retaining its allocated capacity for reuse by a
// later search.
func (t *InternTable) Reset() { clear(t.ids) }

// Closed is the interned closed-set export of a completed search: the
// signature→id table plus the best path cost g(v) reached for each id.
// Entries whose states were generated but pruned before being recorded hold
// +Inf and report as absent. Adaptive modeling (§5) feeds a Closed back into
// a re-search of the same workload under a tightened goal.
type Closed struct {
	// Table interns the signatures of every state the search generated.
	Table *InternTable
	// G holds the best known path cost per dense id.
	G []float64
}

// Lookup returns the recorded best path cost for the signature.
func (c *Closed) Lookup(sig []byte) (float64, bool) {
	id, ok := c.Table.Lookup(sig)
	if !ok || math.IsInf(c.G[id], 1) {
		return 0, false
	}
	return c.G[id], true
}

// Len returns the number of states with a recorded path cost.
func (c *Closed) Len() int {
	n := 0
	for _, g := range c.G {
		if !math.IsInf(g, 1) {
			n++
		}
	}
	return n
}
