package search

import (
	"fmt"
	"testing"
	"time"

	"wisedb/internal/graph"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// BenchmarkSolveExact measures the exact-optimum comparator configuration
// behind Figs. 9-13: the full reduced graph (symmetry breaking on), no
// cache, sizes near the paper's 30-query evaluation workloads scaled to
// bench time. Track it to keep the "Optimal" columns of the evaluation
// affordable and the proven-optimum rate under the expansion cap high.
func BenchmarkSolveExact(b *testing.B) {
	env := testEnv(10, 1)
	cases := []struct {
		name string
		goal sla.Goal
		m    int
	}{
		{"max/m=16", sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate), 16},
		{"percentile/m=12", sla.NewPercentile(90, 10*time.Minute, env.Templates, sla.DefaultPenaltyRate), 12},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			s, err := New(graph.NewProblem(env, tc.goal))
			if err != nil {
				b.Fatal(err)
			}
			w := workload.NewSampler(env.Templates, 29).Uniform(tc.m)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := s.Solve(w, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Expanded), "expansions/op")
				}
			}
		})
	}
}

// BenchmarkTranspositionHitRate measures the training-path configuration:
// a stream of distinct sample workloads solved against one shared
// transposition cache with a commit after every solve, as the sequential
// training fold does. The reported hit rate is lookups answered from the
// cache; ns/op is the amortized per-sample search cost with cross-sample
// reuse — compare against BenchmarkSolveTrainingSample (no cache) for the
// reuse payoff.
func BenchmarkTranspositionHitRate(b *testing.B) {
	env := testEnv(10, 1)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	prob := graph.NewProblem(env, goal)
	prob.NoSymmetryBreaking = true // as in training
	for _, m := range []int{8, 12} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			s, err := New(prob)
			if err != nil {
				b.Fatal(err)
			}
			const distinct = 64
			workloads := make([]*workload.Workload, distinct)
			for i := range workloads {
				workloads[i] = workload.NewSampler(env.Templates, int64(1000+i)).Uniform(m)
			}
			cache := NewTranspositionCache()
			var rec PendingSuffixes
			hits, lookups := 0, 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Solve(workloads[i%distinct], Options{KeepClosed: true, Cache: cache, Record: &rec})
				if err != nil {
					b.Fatal(err)
				}
				cache.Commit(&rec)
				hits += res.CacheHits
				lookups += res.CacheHits + res.CacheMisses
			}
			b.StopTimer()
			if lookups > 0 {
				b.ReportMetric(float64(hits)/float64(lookups), "hitrate")
			}
			b.ReportMetric(float64(cache.Len()), "entries")
		})
	}
}
