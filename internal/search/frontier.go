package search

import (
	"math"

	"wisedb/internal/graph"
)

// bucketFrontier is the search's open list: a bucket queue over quantized
// f-costs with an exact in-bucket order. The admissible bounds
// (packingBound, averageBound, percentileBound) deliberately flatten huge
// families of states onto near-identical f-values — the "tie plateaus" of
// the bounds documentation — and a single binary heap pays O(log n)
// comparisons per operation across the whole plateau. The frontier instead
// hashes each node to bucket ⌊(f − base) / quantum⌋ and keeps a small
// binary min-heap per bucket, ordered by the exact comparator
// (f, then remaining queries, as the global heap used): pops cost
// O(log bucketSize), and a monotone cursor skips drained buckets.
//
// Quantization never changes the pop order: equal f-values land in the same
// bucket (the index is a deterministic function of f), strictly smaller
// f-values land in the same or an earlier bucket, and within a bucket the
// exact comparator decides. The cursor moves backward when a push lands
// below it — branch-and-bound re-openings under the non-monotonic goals can
// legally decrease f — so the frontier does not rely on heuristic
// consistency. Indices above maxBucketIndex clamp into the last bucket,
// which degrades that bucket toward a plain heap but stays exact.
type bucketFrontier struct {
	base float64 // f origin of bucket 0
	inv  float64 // buckets per unit of f
	// canonical switches the in-bucket order from the legacy comparator to
	// the canonical one (eps-quantized f, then lexicographic action path) —
	// see nodeLessCanonical.
	canonical bool
	buckets   [][]*node
	// touched records each bucket index that went from empty to non-empty,
	// so release visits only buckets a search actually used (a bucket that
	// drains and refills appears twice; clearing is idempotent).
	touched []int32
	cursor  int // lowest possibly non-empty bucket
	size    int
}

// maxBucketIndex bounds the bucket array; higher f-values share the last
// bucket (exactly ordered by its in-bucket heap).
const maxBucketIndex = 1 << 12

// init readies the frontier for a fresh search. Buckets retained from a
// previous search (already emptied by release) keep their capacity.
func (q *bucketFrontier) init(base, quantum float64, canonical bool) {
	q.base = base
	q.inv = 1 / quantum
	q.canonical = canonical
	q.cursor = 0
	q.size = 0
}

// release empties every touched bucket, dropping node references so a
// pooled arena pins nothing, but keeps the bucket array and per-bucket
// capacity. The cost scales with the buckets a search actually used, not
// the bucket range.
func (q *bucketFrontier) release() {
	for _, idx := range q.touched {
		b := q.buckets[idx]
		for j := range b {
			b[j] = nil
		}
		q.buckets[idx] = b[:0]
	}
	q.touched = q.touched[:0]
	q.cursor = 0
	q.size = 0
}

func (q *bucketFrontier) index(f float64) int {
	idx := int((f - q.base) * q.inv)
	if idx < 0 {
		return 0
	}
	if idx > maxBucketIndex {
		return maxBucketIndex
	}
	return idx
}

// nodeLess is the exact legacy open-list order: f ascending, ties toward
// deeper states (fewer remaining queries) to reach goals sooner among equals.
func nodeLess(a, b *node) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	return a.remaining < b.remaining
}

// fineInv quantizes f-costs for the canonical pop order: two f-values are
// order-equal iff they fall in the same 1/fineInv-wide band. The band width
// equals eps, so float-summation noise (~1e-13) between semantically equal
// costs lands in one band while genuinely different costs land in different
// bands; within a band the lexicographic path order decides. See the
// canonical-search commentary in astar.go for why this makes the popped
// schedule a pure function of (problem, workload).
const fineInv = 1e9

// nodeLessCanonical orders the open list for canonical searches:
// eps-quantized f ascending, then lexicographically smallest action path
// first. Within the flat f-band of the admissible bounds this degenerates
// into a leftmost depth-first descent — each expanded node's first child is
// lexicographically smaller than every other open node — so the canonical
// (lex-least) optimal schedule is found without enumerating the band.
func nodeLessCanonical(a, b *node) bool {
	ba, bb := math.Floor(a.f*fineInv), math.Floor(b.f*fineInv)
	if ba != bb {
		return ba < bb
	}
	return pathCmp(a, b) < 0
}

// pathCmp compares the root-to-node action sequences of two open nodes
// lexicographically without materializing them: it recurses up the parent
// chains, aligning depths first, and compares edge actions on the way back
// down. A path that is a proper prefix of the other orders first.
func pathCmp(a, b *node) int {
	if a == b || (a.parent == nil && b.parent == nil) {
		return 0
	}
	if a.depth > b.depth {
		if c := pathCmp(a.parent, b); c != 0 {
			return c
		}
		return 1 // b's path is a proper prefix of a's
	}
	if b.depth > a.depth {
		if c := pathCmp(a, b.parent); c != 0 {
			return c
		}
		return -1
	}
	if c := pathCmp(a.parent, b.parent); c != 0 {
		return c
	}
	return actionCmp(a.act, b.act)
}

// actionCmp is the total order on edge actions that underlies every
// canonical tie-break: placements before start-ups, then by template, then
// by VM type. Any fixed total order works for correctness; placements-first
// makes the lex-least descent fill the open VM before renting another, so
// on the flat f-band of the packing bound the canonical path tracks a
// greedy packing and backtracks rarely. The order is stable across
// processes and releases because it reads only the action's fields.
func actionCmp(x, y graph.Action) int {
	if x.Kind != y.Kind {
		// Place orders before Startup.
		if x.Kind > y.Kind {
			return -1
		}
		return 1
	}
	if x.Template != y.Template {
		if x.Template < y.Template {
			return -1
		}
		return 1
	}
	if x.VMType != y.VMType {
		if x.VMType < y.VMType {
			return -1
		}
		return 1
	}
	return 0
}

// less dispatches to the order the frontier was initialized with.
func (q *bucketFrontier) less(a, b *node) bool {
	if q.canonical {
		return nodeLessCanonical(a, b)
	}
	return nodeLess(a, b)
}

func (q *bucketFrontier) push(n *node) {
	idx := q.index(n.f)
	for idx >= len(q.buckets) {
		q.buckets = append(q.buckets, nil)
	}
	if len(q.buckets[idx]) == 0 {
		q.touched = append(q.touched, int32(idx))
	}
	b := append(q.buckets[idx], n)
	// Sift up.
	i := len(b) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(b[i], b[p]) {
			break
		}
		b[i], b[p] = b[p], b[i]
		i = p
	}
	q.buckets[idx] = b
	if idx < q.cursor {
		q.cursor = idx
	}
	q.size++
}

// pop removes and returns the minimum node under nodeLess, or nil when the
// frontier is empty.
func (q *bucketFrontier) pop() *node {
	for q.cursor < len(q.buckets) && len(q.buckets[q.cursor]) == 0 {
		q.cursor++
	}
	if q.cursor >= len(q.buckets) {
		return nil
	}
	b := q.buckets[q.cursor]
	n := b[0]
	last := len(b) - 1
	b[0] = b[last]
	b[last] = nil
	b = b[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(b) && q.less(b[l], b[min]) {
			min = l
		}
		if r < len(b) && q.less(b[r], b[min]) {
			min = r
		}
		if min == i {
			break
		}
		b[i], b[min] = b[min], b[i]
		i = min
	}
	q.buckets[q.cursor] = b
	q.size--
	return n
}
