package search

import (
	"sync"
	"sync/atomic"

	"wisedb/internal/graph"
)

// TranspositionCache shares solved suffix subproblems across searches of
// one scheduling-graph Problem. Every state on an optimal path closes a
// suffix subproblem exactly — the path's tail is a minimum-cost completion
// of the state, by the splice argument: a cheaper completion would splice
// with the path's prefix into a schedule cheaper than the optimum. The
// state's canonical signature (graph.AppendSignature) determines every
// future edge weight by the Accumulator signature contract, so the solved
// suffix is valid for *any* search of the same Problem that reaches a state
// with the same signature — in particular for the other sample workloads of
// a training run, which all share one Problem and differ only in their
// start counts. A search that generates a cached state stitches the stored
// suffix instead of expanding the subtree.
//
// Soundness is restricted to monotonically increasing goals; Solve ignores
// the cache otherwise. Under refundable penalties (Average, Percentile) the
// accumulator signature embeds the full penalty-relevant history (count and
// latency sum, or the violation vector), so a cache key is only ever shared
// by states the per-search intern table already merges — cross-search hits
// require an identical penalty history and are vanishingly rare while every
// generated edge pays a lookup — and the Percentile search additionally
// prunes by Pareto dominance, whose ĝ comparisons assume every kept state
// may still refund penalty through future placements; a stitched suffix
// fixes those placements and breaks that assumption. The monotonic goals
// are exactly the history-free ones in practice (sla.PenaltyHistoryFree),
// whose states share the workload-independent key (unassigned counts,
// open-VM type, queued wait) that makes cross-sample reuse pay.
//
// Determinism: entries are merged with a canonical tie-break — lower cost
// wins, equal cost (within eps) resolves to the lexicographically least
// action suffix — so the cache contents after any set of Commits are
// independent of commit order. Worker pools additionally buffer writes in
// PendingSuffixes and Commit them at deterministic barriers (see
// core.Train), so every search observes a cache state that does not depend
// on goroutine scheduling.
//
// The cache is sharded and mutex-striped: lookups take a per-shard RLock on
// the hot path, Commits a per-shard write lock.
type TranspositionCache struct {
	shards [tcShards]tcShard
	hits   atomic.Int64
	misses atomic.Int64
}

const tcShards = 16

type tcShard struct {
	mu sync.RWMutex
	m  map[string]suffixEntry
}

// suffixEntry is a solved suffix subproblem: the minimum cost-to-go from
// any state with the key's signature, and the canonical optimal action
// suffix realizing it. The actions slice is immutable once stored.
type suffixEntry struct {
	cost    float64
	actions []graph.Action
}

// NewTranspositionCache returns an empty cache.
func NewTranspositionCache() *TranspositionCache {
	c := &TranspositionCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]suffixEntry)
	}
	return c
}

// shardOf hashes a signature (FNV-1a) onto its shard.
func shardOf(sig []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range sig {
		h = (h ^ uint32(b)) * 16777619
	}
	return h % tcShards
}

func shardOfString(sig string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(sig); i++ {
		h = (h ^ uint32(sig[i])) * 16777619
	}
	return h % tcShards
}

// lookup returns the solved suffix for the signature, if any. It does not
// allocate: the map is read through the scratch bytes directly.
func (c *TranspositionCache) lookup(sig []byte) (suffixEntry, bool) {
	s := &c.shards[shardOf(sig)]
	s.mu.RLock()
	e, ok := s.m[string(sig)]
	s.mu.RUnlock()
	return e, ok
}

// Len returns the number of cached suffix subproblems.
func (c *TranspositionCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// CacheStats aggregates a cache's lifetime counters.
type CacheStats struct {
	// Hits and Misses count lookup outcomes across every search that used
	// the cache.
	Hits, Misses int64
	// Entries is the current number of cached suffix subproblems.
	Entries int
}

// Stats returns the cache's aggregate counters.
func (c *TranspositionCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.Len()}
}

// PendingSuffixes buffers suffix records produced by searches until a
// Commit publishes them to a cache. Worker pools give each in-flight search
// its own buffer and Commit at a barrier, so that which entries a search
// can observe never depends on goroutine scheduling. A PendingSuffixes is
// owned by one search at a time; Commit empties it for reuse.
type PendingSuffixes struct {
	recs []suffixRecord
}

type suffixRecord struct {
	sig     string
	cost    float64
	actions []graph.Action
}

// Len returns the number of buffered records.
func (p *PendingSuffixes) Len() int { return len(p.recs) }

// add buffers one solved suffix. The actions slice must be immutable.
func (p *PendingSuffixes) add(sig []byte, cost float64, actions []graph.Action) {
	p.recs = append(p.recs, suffixRecord{sig: string(sig), cost: cost, actions: actions})
}

// Commit publishes the buffered records into the cache with the canonical
// merge and empties the buffer. Merging is commutative, associative, and
// idempotent — lower cost wins; equal costs keep the lexicographically
// least suffix — so the cache contents reached from any set of records are
// independent of Commit order and interleaving.
func (c *TranspositionCache) Commit(p *PendingSuffixes) {
	for _, r := range p.recs {
		s := &c.shards[shardOfString(r.sig)]
		s.mu.Lock()
		e, ok := s.m[r.sig]
		if !ok || r.cost < e.cost-eps || (r.cost <= e.cost+eps && lexLessActions(r.actions, e.actions)) {
			s.m[r.sig] = suffixEntry{cost: r.cost, actions: r.actions}
		}
		s.mu.Unlock()
	}
	p.recs = p.recs[:0]
}

// lexLessActions orders action sequences lexicographically by
// (Kind, Template, VMType), shorter prefix first. It is the canonical
// tie-break among equal-cost suffixes.
func lexLessActions(a, b []graph.Action) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			x, y := a[i], b[i]
			if x.Kind != y.Kind {
				return x.Kind < y.Kind
			}
			if x.Template != y.Template {
				return x.Template < y.Template
			}
			return x.VMType < y.VMType
		}
	}
	return len(a) < len(b)
}

// addCounters folds one search's lookup counters into the cache stats.
func (c *TranspositionCache) addCounters(hits, misses int) {
	if hits != 0 {
		c.hits.Add(int64(hits))
	}
	if misses != 0 {
		c.misses.Add(int64(misses))
	}
}
