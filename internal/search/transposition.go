package search

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"

	"wisedb/internal/graph"
)

// TranspositionCache shares solved suffix subproblems across searches of
// one scheduling-graph Problem. Every state on an optimal path closes a
// suffix subproblem exactly — the path's tail is a minimum-cost completion
// of the state, by the splice argument: a cheaper completion would splice
// with the path's prefix into a schedule cheaper than the optimum. The
// state's canonical signature (graph.AppendSignature) determines every
// future edge weight by the Accumulator signature contract, so the solved
// suffix is valid for *any* search of the same Problem that reaches a state
// with the same signature — in particular for the other sample workloads of
// a training run, which all share one Problem and differ only in their
// start counts. A search that generates a cached state stitches the stored
// suffix instead of expanding the subtree.
//
// Soundness is restricted to monotonically increasing goals; Solve ignores
// the cache otherwise. Under refundable penalties (Average, Percentile) the
// accumulator signature embeds the full penalty-relevant history (count and
// latency sum, or the violation vector), so a cache key is only ever shared
// by states the per-search intern table already merges — cross-search hits
// require an identical penalty history and are vanishingly rare while every
// generated edge pays a lookup — and the Percentile search additionally
// prunes by Pareto dominance, whose ĝ comparisons assume every kept state
// may still refund penalty through future placements; a stitched suffix
// fixes those placements and breaks that assumption. The monotonic goals
// are exactly the history-free ones in practice (sla.PenaltyHistoryFree),
// whose states share the workload-independent key (unassigned counts,
// open-VM type, queued wait) that makes cross-sample reuse pay.
//
// Determinism: entries are merged with a canonical tie-break — lower cost
// wins, equal cost (within eps) resolves to the lexicographically least
// action suffix — so the cache contents after any set of Commits are
// independent of commit order. Worker pools additionally buffer writes in
// PendingSuffixes and Commit them at deterministic barriers (see
// core.Train), so every search observes a cache state that does not depend
// on goroutine scheduling.
//
// The cache is sharded and mutex-striped: lookups take a per-shard RLock on
// the hot path, Commits a per-shard write lock.
type TranspositionCache struct {
	shards [tcShards]tcShard
	hits   atomic.Int64
	misses atomic.Int64
}

const tcShards = 16

type tcShard struct {
	mu sync.RWMutex
	m  map[string]suffixEntry
}

// suffixEntry is a solved suffix subproblem: the minimum cost-to-go from
// any state with the key's signature, and the canonical optimal action
// suffix realizing it. The actions slice is immutable once stored.
type suffixEntry struct {
	cost    float64
	actions []graph.Action
}

// NewTranspositionCache returns an empty cache.
func NewTranspositionCache() *TranspositionCache {
	c := &TranspositionCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]suffixEntry)
	}
	return c
}

// shardOf hashes a signature (FNV-1a) onto its shard.
func shardOf(sig []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range sig {
		h = (h ^ uint32(b)) * 16777619
	}
	return h % tcShards
}

func shardOfString(sig string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(sig); i++ {
		h = (h ^ uint32(sig[i])) * 16777619
	}
	return h % tcShards
}

// lookup returns the solved suffix for the signature, if any. It does not
// allocate: the map is read through the scratch bytes directly.
func (c *TranspositionCache) lookup(sig []byte) (suffixEntry, bool) {
	s := &c.shards[shardOf(sig)]
	s.mu.RLock()
	e, ok := s.m[string(sig)]
	s.mu.RUnlock()
	return e, ok
}

// Len returns the number of cached suffix subproblems.
func (c *TranspositionCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// CacheStats aggregates a cache's lifetime counters.
type CacheStats struct {
	// Hits and Misses count lookup outcomes across every search that used
	// the cache.
	Hits, Misses int64
	// Entries is the current number of cached suffix subproblems.
	Entries int
}

// Stats returns the cache's aggregate counters.
func (c *TranspositionCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: c.Len()}
}

// PendingSuffixes buffers suffix records produced by searches until a
// Commit publishes them to a cache. Worker pools give each in-flight search
// its own buffer and Commit at a barrier, so that which entries a search
// can observe never depends on goroutine scheduling. A PendingSuffixes is
// owned by one search at a time; Commit empties it for reuse.
type PendingSuffixes struct {
	recs []suffixRecord
}

type suffixRecord struct {
	sig     string
	cost    float64
	actions []graph.Action
}

// Len returns the number of buffered records.
func (p *PendingSuffixes) Len() int { return len(p.recs) }

// add buffers one solved suffix. The actions slice must be immutable.
func (p *PendingSuffixes) add(sig []byte, cost float64, actions []graph.Action) {
	p.recs = append(p.recs, suffixRecord{sig: string(sig), cost: cost, actions: actions})
}

// Commit publishes the buffered records into the cache with the canonical
// merge and empties the buffer. Merging is commutative, associative, and
// idempotent — lower cost wins; equal costs keep the lexicographically
// least suffix — so the cache contents reached from any set of records are
// independent of Commit order and interleaving.
func (c *TranspositionCache) Commit(p *PendingSuffixes) {
	for _, r := range p.recs {
		s := &c.shards[shardOfString(r.sig)]
		s.mu.Lock()
		e, ok := s.m[r.sig]
		if !ok || r.cost < e.cost-eps || (r.cost <= e.cost+eps && lexLessActions(r.actions, e.actions)) {
			s.m[r.sig] = suffixEntry{cost: r.cost, actions: r.actions}
		}
		s.mu.Unlock()
	}
	p.recs = p.recs[:0]
}

// lexLessActions orders action sequences lexicographically under actionCmp
// (the same total order the canonical search's tie-breaks use — the cache's
// kept suffix must be the one the canonical search would choose), shorter
// prefix first. It is the canonical tie-break among equal-cost suffixes.
func lexLessActions(a, b []graph.Action) bool {
	return lexCmpActions(a, b) < 0
}

// CacheEntry is one exported solved-suffix subproblem: the state signature
// it completes, the minimum cost-to-go, and the canonical optimal action
// suffix. Entries round-trip through Export/Import so a cache can travel
// across epochs and through checkpoints.
type CacheEntry struct {
	Sig     []byte
	Cost    float64
	Actions []graph.Action
}

// Export snapshots the cache's entries in signature order (a canonical,
// content-deterministic order: two caches with equal contents export equal
// slices regardless of commit history). If max > 0 at most max entries are
// returned, truncated from the sorted order — still deterministic, so a
// persisted cache is a pure function of the cache contents. The returned
// slices alias the cache's immutable internals and must not be mutated.
func (c *TranspositionCache) Export(max int) []CacheEntry {
	var out []CacheEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for sig, e := range s.m {
			out = append(out, CacheEntry{Sig: []byte(sig), Cost: e.cost, Actions: e.actions})
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Sig, out[j].Sig) < 0 })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Import merges exported entries into the cache with the same canonical
// merge Commit uses, so importing is commutative with concurrent Commits
// and idempotent. The entries' slices are retained; they must stay
// immutable.
func (c *TranspositionCache) Import(entries []CacheEntry) {
	for _, r := range entries {
		s := &c.shards[shardOf(r.Sig)]
		sig := string(r.Sig)
		s.mu.Lock()
		e, ok := s.m[sig]
		if !ok || r.Cost < e.cost-eps || (r.Cost <= e.cost+eps && lexLessActions(r.Actions, e.actions)) {
			s.m[sig] = suffixEntry{cost: r.Cost, actions: r.Actions}
		}
		s.mu.Unlock()
	}
}

// Clone returns an independent cache with the same entries. Entry slices
// are shared (immutable by contract); lifetime counters start at zero. A
// warm retrain clones the prior epoch's cache so its own commits never
// mutate the epoch snapshot it started from.
func (c *TranspositionCache) Clone() *TranspositionCache {
	n := NewTranspositionCache()
	for i := range c.shards {
		src, dst := &c.shards[i], &n.shards[i]
		src.mu.RLock()
		for sig, e := range src.m {
			dst.m[sig] = e
		}
		src.mu.RUnlock()
	}
	return n
}

// addCounters folds one search's lookup counters into the cache stats.
func (c *TranspositionCache) addCounters(hits, misses int) {
	if hits != 0 {
		c.hits.Add(int64(hits))
	}
	if misses != 0 {
		c.misses.Add(int64(misses))
	}
}
