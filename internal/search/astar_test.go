package search

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

func testEnv(numTemplates, numTypes int) *schedule.Env {
	return schedule.NewEnv(workload.DefaultTemplates(numTemplates), cloud.DefaultVMTypes(numTypes))
}

func goalSet(env *schedule.Env) map[string]sla.Goal {
	return map[string]sla.Goal{
		"max":        sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"perquery":   sla.NewPerQuery(3, env.Templates, sla.DefaultPenaltyRate),
		"average":    sla.NewAverage(10*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"percentile": sla.NewPercentile(90, 10*time.Minute, env.Templates, sla.DefaultPenaltyRate),
	}
}

func solve(t *testing.T, prob *graph.Problem, w *workload.Workload, opts Options) *Result {
	t.Helper()
	s, err := New(prob)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Solve(w, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

// A* must agree with exhaustive enumeration on tiny workloads for every
// goal family, including the non-monotonic ones with negative edges.
func TestAStarMatchesBruteForce(t *testing.T) {
	env := testEnv(3, 2)
	for name, goal := range goalSet(env) {
		t.Run(name, func(t *testing.T) {
			sampler := workload.NewSampler(env.Templates, 7)
			prob := graph.NewProblem(env, goal)
			for trial := 0; trial < 8; trial++ {
				w := sampler.Uniform(5)
				res := solve(t, prob, w, Options{})
				want := BruteForceCost(prob, w)
				if math.Abs(res.Cost-want) > 1e-6 {
					t.Fatalf("trial %d: A* cost %.6f, brute force %.6f (schedule %s)", trial, res.Cost, want, res.Schedule())
				}
			}
		})
	}
}

// The cost reported by the search must equal the Eq. 1 cost of the schedule
// it returns.
func TestSearchCostMatchesScheduleCost(t *testing.T) {
	env := testEnv(5, 2)
	for name, goal := range goalSet(env) {
		t.Run(name, func(t *testing.T) {
			sampler := workload.NewSampler(env.Templates, 11)
			prob := graph.NewProblem(env, goal)
			for trial := 0; trial < 5; trial++ {
				w := sampler.Uniform(8)
				res := solve(t, prob, w, Options{})
				sched := res.Schedule()
				if err := sched.Validate(env, w); err != nil {
					t.Fatalf("invalid schedule: %v", err)
				}
				if got := sched.Cost(env, goal); math.Abs(got-res.Cost) > 1e-6 {
					t.Fatalf("trial %d: search cost %.6f, schedule cost %.6f", trial, res.Cost, got)
				}
			}
		})
	}
}

// With tight deadlines, the optimal schedule must spread queries across VMs
// instead of paying penalties; with very loose deadlines it must consolidate
// onto a single VM to avoid start-up fees.
func TestSearchRespondsToDeadlineTightness(t *testing.T) {
	env := testEnv(2, 1)
	w := &workload.Workload{Templates: env.Templates, Queries: []workload.Query{
		{TemplateID: 1, Tag: 0}, {TemplateID: 1, Tag: 1}, {TemplateID: 1, Tag: 2},
	}}
	tight := sla.NewMaxLatency(env.Templates[1].BaseLatency, env.Templates, sla.DefaultPenaltyRate)
	res := solve(t, graph.NewProblem(env, tight), w, Options{})
	if got := len(res.Schedule().VMs); got != 3 {
		t.Fatalf("tight deadline: want 3 VMs, got %d (%s)", got, res.Schedule())
	}
	loose := sla.NewMaxLatency(24*time.Hour, env.Templates, sla.DefaultPenaltyRate)
	res = solve(t, graph.NewProblem(env, loose), w, Options{})
	if got := len(res.Schedule().VMs); got != 1 {
		t.Fatalf("loose deadline: want 1 VM, got %d (%s)", got, res.Schedule())
	}
}

// The paper's §3 worked example: three templates with latencies 4, 3, and 2
// minutes, two queries each, max total execution time below nine minutes.
// FFD needs 3 VMs, FFI needs 3 VMs, and the optimum packs
// {[T1,T2,T3], [T1,T2,T3]} into two VMs.
func TestSearchFindsSectionThreeCounterexample(t *testing.T) {
	templates := []workload.Template{
		{ID: 0, Name: "T1", BaseLatency: 4 * time.Minute},
		{ID: 1, Name: "T2", BaseLatency: 3 * time.Minute},
		{ID: 2, Name: "T3", BaseLatency: 2 * time.Minute},
	}
	env := schedule.NewEnv(templates, cloud.DefaultVMTypes(1))
	goal := sla.NewMaxLatency(9*time.Minute, templates, 100) // stiff penalty: effectively a hard deadline
	w := &workload.Workload{Templates: templates, Queries: []workload.Query{
		{TemplateID: 0, Tag: 0}, {TemplateID: 0, Tag: 1},
		{TemplateID: 1, Tag: 2}, {TemplateID: 1, Tag: 3},
		{TemplateID: 2, Tag: 4}, {TemplateID: 2, Tag: 5},
	}}
	res := solve(t, graph.NewProblem(env, goal), w, Options{})
	if got := len(res.Schedule().VMs); got != 2 {
		t.Fatalf("want the 2-VM optimum from §3, got %d VMs (%s)", got, res.Schedule())
	}
	if pen := res.Schedule().Penalty(env, goal); pen != 0 {
		t.Fatalf("optimal schedule should meet the 9m goal, penalty %.2f", pen)
	}
}

// Adaptive reuse (§5) must preserve optimality: re-searching under a
// tightened goal with the old search's heuristic reuse yields exactly the
// cost of a fresh search.
func TestAdaptiveReuseMatchesFreshSearch(t *testing.T) {
	env := testEnv(4, 1)
	for name, goal := range goalSet(env) {
		t.Run(name, func(t *testing.T) {
			sampler := workload.NewSampler(env.Templates, 3)
			prob := graph.NewProblem(env, goal)
			s, err := New(prob)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 6; trial++ {
				w := sampler.Uniform(7)
				old, err := s.Solve(w, Options{KeepClosed: true})
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range []float64{0.2, 0.5, 0.8} {
					tightened := goal.Tighten(p)
					tProb := graph.NewProblem(env, tightened)
					ts, err := New(tProb)
					if err != nil {
						t.Fatal(err)
					}
					fresh, err := ts.Solve(w, Options{})
					if err != nil {
						t.Fatal(err)
					}
					adaptive, err := ts.Solve(w, Options{Reuse: ReuseFrom(old)})
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(fresh.Cost-adaptive.Cost) > 1e-6 {
						t.Fatalf("trial %d p=%.1f: fresh %.6f, adaptive %.6f", trial, p, fresh.Cost, adaptive.Cost)
					}
					if adaptive.Expanded > fresh.Expanded {
						t.Logf("trial %d p=%.1f: adaptive expanded %d > fresh %d (allowed but unexpected)", trial, p, adaptive.Expanded, fresh.Expanded)
					}
				}
			}
		})
	}
}

// Regression: adaptive reuse must stay exact for non-monotonic goals. The
// Lemma 5.1 bound OldCost − g_old(v) is unsound when tightening can make an
// edge cheaper (refundable penalties: Average, Percentile) — the search must
// ignore reuse there rather than prune the optimum. Workload 4 of seed 3
// under Average tightened by 0.8 is a concrete input where applying the
// bound anyway returns 16.83¢ instead of the optimal 3.20¢.
func TestAdaptiveReuseSoundForRefundablePenalties(t *testing.T) {
	env := testEnv(4, 1)
	for _, name := range []string{"average", "percentile"} {
		goal := goalSet(env)[name]
		t.Run(name, func(t *testing.T) {
			sampler := workload.NewSampler(env.Templates, 3)
			var w *workload.Workload
			for i := 0; i < 4; i++ {
				w = sampler.Uniform(7)
			}
			s, err := New(graph.NewProblem(env, goal))
			if err != nil {
				t.Fatal(err)
			}
			old, err := s.Solve(w, Options{KeepClosed: true})
			if err != nil {
				t.Fatal(err)
			}
			ts, err := New(graph.NewProblem(env, goal.Tighten(0.8)))
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := ts.Solve(w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			adaptive, err := ts.Solve(w, Options{Reuse: ReuseFrom(old)})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fresh.Cost-adaptive.Cost) > 1e-6 {
				t.Fatalf("reuse changed the optimum under a refundable-penalty goal: fresh %.6f, adaptive %.6f", fresh.Cost, adaptive.Cost)
			}
		})
	}
}

// Tightening a goal can only increase the optimal cost (the formal core of
// Lemma 5.1).
func TestTighteningNeverDecreasesOptimalCost(t *testing.T) {
	env := testEnv(3, 1)
	for name, goal := range goalSet(env) {
		t.Run(name, func(t *testing.T) {
			sampler := workload.NewSampler(env.Templates, 13)
			for trial := 0; trial < 5; trial++ {
				w := sampler.Uniform(6)
				prev := -math.MaxFloat64
				for _, p := range []float64{-0.4, 0, 0.3, 0.6, 0.9} {
					g := goal.Tighten(p)
					res := solve(t, graph.NewProblem(env, g), w, Options{})
					if res.Cost < prev-1e-6 {
						t.Fatalf("trial %d: tightening to p=%.1f decreased cost %.6f -> %.6f", trial, p, prev, res.Cost)
					}
					prev = res.Cost
				}
			}
		})
	}
}

// The heuristic of Eq. 3 must never overestimate: the f-value of the start
// vertex is a lower bound on the optimal cost.
func TestHeuristicAdmissibleAtStart(t *testing.T) {
	env := testEnv(4, 2)
	for name, goal := range goalSet(env) {
		t.Run(name, func(t *testing.T) {
			sampler := workload.NewSampler(env.Templates, 5)
			prob := graph.NewProblem(env, goal)
			s, err := New(prob)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				w := sampler.Uniform(6)
				start := prob.Start(w)
				h := 0.0
				for tid, c := range start.Unassigned {
					mc, ok := env.CheapestLatencyCost(tid)
					if !ok {
						t.Fatal("template not runnable")
					}
					h += float64(c) * mc
				}
				res, err := s.Solve(w, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if h > res.Cost+1e-6 {
					t.Fatalf("trial %d: heuristic %.6f exceeds optimal %.6f", trial, h, res.Cost)
				}
			}
		})
	}
}

// Paths must obey the graph reductions: no start-up edge while the open VM
// is empty, and every placement targets the open VM by construction.
func TestOptimalPathObeysReductions(t *testing.T) {
	env := testEnv(4, 2)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	sampler := workload.NewSampler(env.Templates, 17)
	prob := graph.NewProblem(env, goal)
	for trial := 0; trial < 5; trial++ {
		w := sampler.Uniform(8)
		res := solve(t, prob, w, Options{})
		if res.Actions[0].Kind != graph.Startup {
			t.Fatal("first action must rent a VM")
		}
		for i := 1; i < len(res.Actions); i++ {
			if res.Actions[i].Kind == graph.Startup && res.Actions[i-1].Kind == graph.Startup {
				t.Fatalf("trial %d: consecutive start-up edges at %d", trial, i)
			}
		}
		if res.Actions[len(res.Actions)-1].Kind != graph.Place {
			t.Fatal("last action must place a query (no trailing empty VM)")
		}
	}
}

// Expansion limits must surface as non-optimal results, not wrong answers.
func TestExpansionLimit(t *testing.T) {
	env := testEnv(5, 1)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	sampler := workload.NewSampler(env.Templates, 29)
	w := sampler.Uniform(10)
	s, err := New(graph.NewProblem(env, goal))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(w, Options{MaxExpansions: 1}); err == nil {
		t.Fatal("want error when the limit fires before any schedule exists")
	}
	full, err := s.Solve(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Optimal {
		t.Fatal("unlimited search must report Optimal")
	}
}

// Larger workloads must still solve exactly and quickly enough for training:
// this guards against state-space blowups from signature regressions.
func TestSearchScalesToTrainingSize(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	env := testEnv(10, 1)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	sampler := workload.NewSampler(env.Templates, rand.Int63())
	s, err := New(graph.NewProblem(env, goal))
	if err != nil {
		t.Fatal(err)
	}
	w := sampler.Uniform(18)
	res, err := s.Solve(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Schedule().NumQueries() != 18 {
		t.Fatalf("want optimal complete schedule, got optimal=%v queries=%d", res.Optimal, res.Schedule().NumQueries())
	}
	t.Logf("m=18 search expanded %d states, cost %.2f¢, %d VMs", res.Expanded, res.Cost, len(res.Schedule().VMs))
}
