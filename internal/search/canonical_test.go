package search

import (
	"math/rand"
	"reflect"
	"testing"

	"wisedb/internal/graph"
	"wisedb/internal/workload"
)

// Monotonic, unseeded searches are canonical: the returned action sequence
// must be a pure function of (problem, workload), no matter what
// transposition cache or adaptive-reuse heuristic accelerated the search.
// This is the property the warm retrain path rests on — a retrain seeded
// with a prior epoch's cache and Closed sets must reproduce the cold
// retrain's model bit for bit.
func TestCanonicalInvariantToCacheAndReuse(t *testing.T) {
	env := testEnv(6, 2)
	goals := goalSet(env)
	for _, name := range []string{"max", "perquery"} {
		goal := goals[name]
		t.Run(name, func(t *testing.T) {
			prob := graph.NewProblem(env, goal)
			s, err := New(prob)
			if err != nil {
				t.Fatal(err)
			}
			sampler := workload.NewSampler(env.Templates, 23)
			workloads := make([]*workload.Workload, 8)
			for i := range workloads {
				workloads[i] = sampler.Uniform(4 + rand.New(rand.NewSource(int64(i))).Intn(8))
			}

			// Baseline: cold, cache-free solves.
			base := make([]*Result, len(workloads))
			for i, w := range workloads {
				r, err := s.Solve(w, Options{KeepClosed: true})
				if err != nil {
					t.Fatal(err)
				}
				base[i] = r
			}

			check := func(label string, i int, r *Result) {
				t.Helper()
				if !reflect.DeepEqual(r.Actions, base[i].Actions) {
					t.Fatalf("%s: workload %d actions diverged from the cold cache-free solve\ncold: %v\ngot:  %v", label, i, base[i].Actions, r.Actions)
				}
			}

			// A shared cache populated in workload order: later solves see
			// earlier suffixes yet must return identical actions.
			cache := NewTranspositionCache()
			var pend PendingSuffixes
			for i, w := range workloads {
				r, err := s.Solve(w, Options{Cache: cache, Record: &pend})
				if err != nil {
					t.Fatal(err)
				}
				cache.Commit(&pend)
				check("warming cache", i, r)
			}

			// A fully warmed cache, including each workload's own start
			// signature: solves stitch aggressively (often expanding
			// nothing) and still must return identical actions.
			for i, w := range workloads {
				r, err := s.Solve(w, Options{Cache: cache})
				if err != nil {
					t.Fatal(err)
				}
				check("warm cache", i, r)
			}

			// The cache after an Export/Import round trip (how it travels
			// across epochs and checkpoints).
			imported := NewTranspositionCache()
			imported.Import(cache.Export(0))
			for i, w := range workloads {
				r, err := s.Solve(w, Options{Cache: imported})
				if err != nil {
					t.Fatal(err)
				}
				check("imported cache", i, r)
			}

			// Adaptive reuse of each workload's own prior solve (the §5
			// replay a warm retrain uses for unchanged samples), alone and
			// combined with the warm cache.
			for i, w := range workloads {
				reuse := ReuseFrom(base[i])
				r, err := s.Solve(w, Options{Reuse: reuse})
				if err != nil {
					t.Fatal(err)
				}
				check("reuse", i, r)
				r, err = s.Solve(w, Options{Reuse: reuse, Cache: cache})
				if err != nil {
					t.Fatal(err)
				}
				check("reuse+cache", i, r)
			}
		})
	}
}

// Export must be a canonical snapshot: signature-sorted, stable across
// commit histories, and round-trippable through Import without change.
func TestCacheExportImportRoundTrip(t *testing.T) {
	env := testEnv(5, 2)
	goal := goalSet(env)["max"]
	prob := graph.NewProblem(env, goal)
	s, err := New(prob)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewTranspositionCache()
	var pend PendingSuffixes
	sampler := workload.NewSampler(env.Templates, 41)
	for i := 0; i < 6; i++ {
		if _, err := s.Solve(sampler.Uniform(6), Options{Cache: cache, Record: &pend}); err != nil {
			t.Fatal(err)
		}
		cache.Commit(&pend)
	}
	exp := cache.Export(0)
	if len(exp) == 0 {
		t.Fatal("no entries exported after six recorded solves")
	}
	for i := 1; i < len(exp); i++ {
		if string(exp[i-1].Sig) >= string(exp[i].Sig) {
			t.Fatalf("export not strictly signature-sorted at %d", i)
		}
	}
	imported := NewTranspositionCache()
	imported.Import(exp)
	if !reflect.DeepEqual(imported.Export(0), exp) {
		t.Fatal("Export -> Import -> Export is not the identity")
	}
	// Clone shares contents but not counters or future commits.
	clone := cache.Clone()
	if !reflect.DeepEqual(clone.Export(0), exp) {
		t.Fatal("Clone diverges from its source")
	}
	if got := clone.Stats(); got.Hits != 0 || got.Misses != 0 {
		t.Fatalf("Clone inherited counters: %+v", got)
	}
	// Truncated exports are prefixes of the full sorted export.
	if got := cache.Export(3); len(got) != 3 || !reflect.DeepEqual(got, exp[:3]) {
		t.Fatalf("Export(3) is not the 3-entry sorted prefix")
	}
}

// A non-monotonic goal must ignore canonical machinery entirely and still
// solve exactly (guard against the canonical path leaking into
// branch-and-bound).
func TestNonMonotonicUnaffectedByCanonicalPath(t *testing.T) {
	env := testEnv(4, 2)
	for _, name := range []string{"average", "percentile"} {
		goal := goalSet(env)[name]
		prob := graph.NewProblem(env, goal)
		sampler := workload.NewSampler(env.Templates, 9)
		for trial := 0; trial < 4; trial++ {
			w := sampler.Uniform(5)
			res := solve(t, prob, w, Options{})
			want := BruteForceCost(prob, w)
			if diff := res.Cost - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("%s trial %d: cost %.9f, brute force %.9f", name, trial, res.Cost, want)
			}
		}
	}
}
