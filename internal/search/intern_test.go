package search

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"wisedb/internal/graph"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// InternTable must assign dense ids in first-seen order, return stable ids
// on re-interning, and survive a Reset with capacity intact.
func TestInternTable(t *testing.T) {
	tab := NewInternTable()
	sigs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	for want, sig := range sigs {
		id, fresh := tab.Intern(sig)
		if !fresh || id != uint32(want) {
			t.Fatalf("Intern(%q) = (%d, %v), want (%d, true)", sig, id, fresh, want)
		}
	}
	if id, fresh := tab.Intern([]byte("bb")); fresh || id != 1 {
		t.Fatalf("re-Intern = (%d, %v), want (1, false)", id, fresh)
	}
	if _, ok := tab.Lookup([]byte("zz")); ok {
		t.Fatal("Lookup of unknown signature must miss")
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tab.Len())
	}
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", tab.Len())
	}
	if id, fresh := tab.Intern([]byte("ccc")); !fresh || id != 0 {
		t.Fatalf("Intern after Reset = (%d, %v), want (0, true)", id, fresh)
	}
}

// A Closed export must report exactly the recorded states and hide pruned
// (+Inf) ids.
func TestClosedLookup(t *testing.T) {
	tab := NewInternTable()
	tab.Intern([]byte("kept"))
	tab.Intern([]byte("pruned"))
	c := &Closed{Table: tab, G: []float64{7.5, math.Inf(1)}}
	if g, ok := c.Lookup([]byte("kept")); !ok || g != 7.5 {
		t.Fatalf("Lookup(kept) = (%v, %v), want (7.5, true)", g, ok)
	}
	if _, ok := c.Lookup([]byte("pruned")); ok {
		t.Fatal("pruned state must report as absent")
	}
	if c.Len() != 1 {
		t.Fatalf("Closed.Len = %d, want 1", c.Len())
	}
}

// One Searcher must serve many concurrent Solve calls (the training worker
// pool runs one per worker): run with -race, and every concurrent result
// must match its sequential counterpart exactly.
func TestConcurrentSolveSharedSearcher(t *testing.T) {
	env := testEnv(4, 2)
	for name, goal := range goalSet(env) {
		t.Run(name, func(t *testing.T) {
			prob := graph.NewProblem(env, goal)
			s, err := New(prob)
			if err != nil {
				t.Fatal(err)
			}
			const nWorkloads = 12
			sampler := workload.NewSampler(env.Templates, 61)
			workloads := make([]*workload.Workload, nWorkloads)
			want := make([]float64, nWorkloads)
			for i := range workloads {
				workloads[i] = sampler.Uniform(6)
				res, err := s.Solve(workloads[i], Options{})
				if err != nil {
					t.Fatal(err)
				}
				want[i] = res.Cost
			}
			var wg sync.WaitGroup
			for i := range workloads {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := s.Solve(workloads[i], Options{KeepClosed: true})
					if err != nil {
						t.Errorf("workload %d: %v", i, err)
						return
					}
					if math.Abs(res.Cost-want[i]) > 1e-9 {
						t.Errorf("workload %d: concurrent cost %f, sequential %f", i, res.Cost, want[i])
					}
					if res.Closed == nil || res.Closed.Len() == 0 {
						t.Errorf("workload %d: KeepClosed produced no closed set", i)
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

// Searches must stay exact across repeated Solve calls on one Searcher: the
// arena reuse between calls must not leak state from one search into the
// next (same workload re-solved interleaved with others must give the same
// cost every time).
func TestArenaReuseAcrossSearches(t *testing.T) {
	env := testEnv(3, 1)
	goal := sla.NewPercentile(90, 10*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	s, err := New(graph.NewProblem(env, goal))
	if err != nil {
		t.Fatal(err)
	}
	sampler := workload.NewSampler(env.Templates, 23)
	type run struct {
		w    *workload.Workload
		cost float64
	}
	var runs []run
	for i := 0; i < 6; i++ {
		w := sampler.Uniform(6)
		res, err := s.Solve(w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{w: w, cost: res.Cost})
	}
	for round := 0; round < 3; round++ {
		for i, r := range runs {
			res, err := s.Solve(r.w, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Cost-r.cost) > 1e-9 {
				t.Fatalf("round %d workload %d: cost drifted %f -> %f", round, i, r.cost, res.Cost)
			}
		}
	}
}

// The per-expansion allocation volume must stay bounded: interning plus
// arena reuse is the whole point of the refactor, so guard against the
// string-per-edge pattern creeping back in.
func TestSolveAllocationsBounded(t *testing.T) {
	env := testEnv(5, 1)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	s, err := New(graph.NewProblem(env, goal))
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewSampler(env.Templates, 3).Uniform(10)
	// Warm the arena pool, then measure steady-state searches.
	if _, err := s.Solve(w, Options{}); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Solve(w, Options{})
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Solve(w, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("%.0f allocs for %d expansions, path length %d", allocs, res.Expanded, len(res.Actions))
	// Steady-state expansion is allocation-free: states, nodes, signatures,
	// and frontier slots all come from the pooled arena, so the per-solve
	// allocations are proportional to the returned path (replaying each
	// step allocates the exact-accumulator state: the state struct, two
	// slices, and for some goals an accumulator box), never to the states
	// expanded. The budget is a path-proportional allowance plus a small
	// fixed overhead (Result, action/step slices); any per-expansion
	// allocation creeping back in blows it immediately.
	if budget := float64(5*len(res.Actions) + 16); allocs > budget {
		t.Errorf("%.0f allocations for a %d-step path; want <= %.0f (arena regression?)", allocs, len(res.Actions), budget)
	}
}

func BenchmarkSolveTrainingSample(b *testing.B) {
	env := testEnv(10, 1)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	prob := graph.NewProblem(env, goal)
	prob.NoSymmetryBreaking = true // as in training
	s, err := New(prob)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{8, 12} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			w := workload.NewSampler(env.Templates, 5).Uniform(m)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(w, Options{KeepClosed: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
