package search

import (
	"fmt"
	"testing"
)

// buildClosed interns n synthetic signatures with known costs.
func buildClosed(n int) *Closed {
	t := NewInternTable()
	g := make([]float64, n)
	for i := 0; i < n; i++ {
		sig := []byte(fmt.Sprintf("state-signature-%04d", i))
		t.Intern(sig)
		g[i] = float64(i) * 1.25
	}
	return &Closed{Table: t, G: g}
}

// Export/ClosedFromExport must preserve every (signature, g) pair.
func TestClosedExportRoundTrip(t *testing.T) {
	c := buildClosed(300)
	back, err := ClosedFromExport(c.Export())
	if err != nil {
		t.Fatal(err)
	}
	if back.Table.Len() != c.Table.Len() {
		t.Fatalf("table length %d after round trip, want %d", back.Table.Len(), c.Table.Len())
	}
	for i := 0; i < 300; i++ {
		sig := []byte(fmt.Sprintf("state-signature-%04d", i))
		g, ok := back.Lookup(sig)
		if !ok || g != float64(i)*1.25 {
			t.Fatalf("signature %d: got (%g,%v)", i, g, ok)
		}
	}
	if _, ok := back.Lookup([]byte("never-interned")); ok {
		t.Fatal("round-tripped table invents signatures")
	}
}

// Malformed exports — inconsistent lengths, non-contiguous keys, duplicate
// signatures — must error, never panic or build a broken table.
func TestClosedFromExportRejectsMalformed(t *testing.T) {
	good := buildClosed(5).Export()

	bad := good
	bad.G = bad.G[:3]
	if _, err := ClosedFromExport(bad); err == nil {
		t.Error("length mismatch accepted")
	}

	bad = buildClosed(5).Export()
	bad.Offs[2]++ // keys no longer contiguous
	if _, err := ClosedFromExport(bad); err == nil {
		t.Error("non-contiguous keys accepted")
	}

	bad = buildClosed(5).Export()
	bad.Keys = bad.Keys[:len(bad.Keys)-2] // truncated key bytes
	if _, err := ClosedFromExport(bad); err == nil {
		t.Error("truncated keys accepted")
	}

	// Duplicate signature: make entry 1's bytes equal entry 0's.
	c := NewInternTable()
	c.Intern([]byte("aa"))
	dup := ClosedExport{
		Keys: []byte("aaaa"),
		Offs: []uint32{0, 2},
		Lens: []uint32{2, 2},
		G:    []float64{1, 2},
	}
	if _, err := ClosedFromExport(dup); err == nil {
		t.Error("duplicate signatures accepted")
	}
}
