// Package search finds minimum-cost schedules: it runs A* over the
// scheduling graph (§4.3) with the admissible heuristic of Eq. 3 for
// monotonically increasing goals, an admissible penalty-corrected variant
// for non-monotonic goals, and the adaptive-A* heuristic reuse of §5 for
// re-solving a sample workload under a tightened goal (Lemma 5.1; applied
// to monotonic goals only — see Reuse for why it is unsound under
// refundable penalties).
//
// A* is complete and, with an admissible heuristic, exact — so this package
// also serves as the "Optimal" comparator of the paper's evaluation (§7.2).
//
// Non-monotonic goals (Average, Percentile) admit placement edges with
// negative weight: a short query can lower the mean or percentile penalty
// by more than it costs to process. The search therefore runs as
// best-first branch-and-bound: nodes are re-opened when a cheaper path is
// found, a goal's cost becomes an incumbent bound, and the search stops when
// the cheapest open f-value cannot beat the incumbent. For monotonic goals
// the heuristic is consistent and this degenerates to plain A*.
//
// Three engine-level optimizations keep the training-side searches fast
// (see DESIGN.md, "The search engine"): states and their slices are
// bump-allocated from a pooled graph.Arena, the open list is a monotone
// bucket queue over quantized f-costs (bucketFrontier), and solved suffix
// subproblems transfer between searches of one Problem through a
// TranspositionCache.
package search

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// Step is one decision along an optimal path: the vertex the decision was
// made at and the edge that was taken. Feature extraction consumes these
// (§4.4: each decision maps to features of its origin vertex).
type Step struct {
	State  *graph.State
	Action graph.Action
}

// Result is the outcome of a search.
type Result struct {
	// Cost is the total cost (Eq. 1) of the best complete schedule found.
	Cost float64
	// Actions is the edge sequence from the start vertex to the goal.
	Actions []graph.Action
	// Path pairs each decision with the vertex it was made at. The states
	// are materialized by replaying Actions from the start vertex, so
	// their accumulators are exact even where the search shared a static
	// accumulator internally (see graph.ApplyArena).
	Path []Step
	// Expanded counts vertex expansions (search effort).
	Expanded int
	// Optimal is false only if the expansion limit interrupted the
	// search before optimality was proven.
	Optimal bool
	// CacheHits and CacheMisses count transposition-cache lookups made by
	// this search (zero when no cache was used).
	CacheHits, CacheMisses int
	// Closed records, per interned state signature, the best path cost
	// with which the state was reached. Adaptive modeling (§5) feeds this
	// into the heuristic of a re-search under a tightened goal.
	Closed *Closed
}

// Schedule materializes the schedule the result's action path builds.
func (r *Result) Schedule() *schedule.Schedule { return graph.BuildSchedule(r.Actions) }

// Reuse is the information adaptive A* (§5) carries from a completed search
// to a re-search of the same workload under a stricter goal: the old optimal
// cost and the interned per-signature path costs.
// h'(v) = max(h(v), OldCost − g_old(v)) never overestimates under the
// stricter goal (Lemma 5.1) — provided every edge cost weakly increases
// under the tightening, which holds for monotonic goals only. Non-monotonic
// goals (Average, Percentile) refund accumulated penalty on later
// placements, so a tightened goal can make an edge cheaper, g_old(v) can
// exceed g_new(v), and the reuse bound would overestimate and prune the
// true optimum. The search therefore applies Reuse only to monotonic goals
// and silently ignores it otherwise.
type Reuse struct {
	// OldCost is cost(R, g): the optimal cost under the old goal.
	OldCost float64
	// Closed holds g_old(v) per interned signature.
	Closed *Closed
}

// Options tunes a search.
type Options struct {
	// MaxExpansions bounds search effort; 0 means unlimited. If the
	// limit interrupts the search, the best goal found so far (if any)
	// is returned with Optimal=false.
	MaxExpansions int
	// Reuse, when non-nil, strengthens the heuristic with adaptive-A*
	// information from a previous search of the same workload under a
	// looser goal.
	Reuse *Reuse
	// KeepClosed records Closed in the result (needed when the result
	// will later seed a Reuse). It costs memory proportional to the
	// number of distinct states seen.
	KeepClosed bool
	// IncumbentCost seeds branch-and-bound with a known achievable cost
	// (e.g. from a heuristic schedule); 0 means none. Nodes that cannot
	// beat it are pruned immediately. If the search finds nothing
	// cheaper, it reports ErrSeedIsOptimal: the seed schedule was
	// already optimal (within eps).
	IncumbentCost float64
	// Cache, when non-nil, consults (and prunes through) the
	// cross-search transposition cache: a generated state whose
	// signature has a solved suffix stitches the stored completion
	// instead of expanding the subtree. Ignored for non-monotonic goals
	// (see TranspositionCache). The cache must have been populated only
	// from searches of the same Problem.
	Cache *TranspositionCache
	// Record, when non-nil and the goal is monotonic, receives one
	// solved-suffix record per state on the returned optimal path (only
	// when optimality was proven). Publish them with
	// TranspositionCache.Commit; worker pools commit at deterministic
	// barriers.
	Record *PendingSuffixes
}

// ErrSeedIsOptimal is returned when branch-and-bound proves no schedule
// beats the seeded incumbent cost.
var ErrSeedIsOptimal = errors.New("search: seeded incumbent is optimal")

// ErrNoSchedule is returned when no complete schedule exists (e.g. a
// template no VM type can run).
var ErrNoSchedule = errors.New("search: no complete schedule exists")

const eps = 1e-9

// node is an entry of the open list. States are identified by the dense id
// their signature interns to, not by the signature string itself.
type node struct {
	state  *graph.State
	id     uint32
	g      float64
	f      float64
	parent *node
	act    graph.Action
	// remaining caches state.RemainingQueries() at node creation: the
	// open-frontier tie-break reads it on every comparison, and
	// recomputing the sum over Unassigned there dominates frontier
	// maintenance in the training hot loop.
	remaining int32
	// depth is the action-path length from the start vertex; pathCmp uses
	// it to align parent chains when comparing paths lexicographically.
	depth int32
	// stitch, when non-zero, marks a pseudo-goal created by a canonical
	// transposition-cache hit: arena.stitches[stitch-1] holds the cached
	// suffix completing this node's prefix, and f holds the full
	// completion cost. Pseudo-goals are never expanded; popping one ends
	// a canonical search exactly like popping a real goal.
	stitch int32
}

// Searcher solves scheduling problems. It precomputes the per-template
// cheapest processing costs used by the Eq. 3 heuristic.
//
// A Searcher is safe for concurrent use: all precomputed tables are
// read-only after New, and each Solve call draws its mutable scratch state
// (signature buffer, intern table, state/node arenas, open frontier) from a
// pool so that concurrent searches — the training worker pool runs one per
// worker — never share buffers.
type Searcher struct {
	prob         *graph.Problem
	minCost      []float64
	minLat       []time.Duration
	latOrderDesc []int
	minStartup   float64   // cheapest VM start-up fee, used by every bound
	arenas       sync.Pool // *arena
}

// New returns a Searcher for the problem. It returns an error if some
// template cannot run on any VM type (no complete schedule could exist).
func New(prob *graph.Problem) (*Searcher, error) {
	minCost := make([]float64, len(prob.Env.Templates))
	minLat := make([]time.Duration, len(prob.Env.Templates))
	for i := range prob.Env.Templates {
		c, ok := prob.Env.CheapestLatencyCost(i)
		if !ok {
			return nil, fmt.Errorf("%w: template %d runs on no VM type", ErrNoSchedule, i)
		}
		minCost[i] = c
		minLat[i], _ = prob.Env.FastestLatency(i)
	}
	minStartup := math.Inf(1)
	for _, vt := range prob.Env.VMTypes {
		if vt.StartupCost < minStartup {
			minStartup = vt.StartupCost
		}
	}
	s := &Searcher{prob: prob, minCost: minCost, minLat: minLat, minStartup: minStartup}
	s.arenas.New = func() any { return newArena() }
	s.initLatOrder()
	return s, nil
}

// nodeChunkSize is the bump-allocation granularity of a search arena's node
// blocks.
const nodeChunkSize = 1024

// arena is the per-search scratch state: one worker owns one arena for the
// duration of a Solve, so searches allocate signature bytes, states, nodes,
// and frontier slots from reused memory instead of churning the allocator
// per expanded edge.
type arena struct {
	sigBuf []byte
	table  *InternTable
	best   []*node // dense state id -> best known node
	open   bucketFrontier
	states graph.Arena    // bump-allocated successor states
	actBuf []graph.Action // per-expansion action scratch
	// cmpA/cmpB are materialization scratch for canonical tie-breaking:
	// two full action prefixes compared lexicographically.
	cmpA, cmpB []graph.Action
	// stitches holds the cached suffixes behind pseudo-goal nodes
	// (node.stitch indexes it, 1-based).
	stitches [][]graph.Action
	bigs     []time.Duration
	dom      *dominanceIndex // lazily built; Percentile searches only
	chunks   [][]node
	chunk    int // index of the chunk newNode bump-allocates from
	used     int // nodes used within that chunk
}

func newArena() *arena {
	return &arena{table: NewInternTable()}
}

// reset readies the arena for a fresh search, retaining all capacity.
func (a *arena) reset() {
	a.sigBuf = a.sigBuf[:0]
	a.best = a.best[:0]
	a.stitches = a.stitches[:0]
	a.chunk, a.used = 0, 0
	a.states.Reset()
	a.table.Reset()
	if a.dom != nil {
		a.dom.reset()
	}
}

// release drops every reference the finished search left in the arena —
// node states, parent chains, best/open entries — so an idle pooled arena
// does not pin the search graph in memory until its next use.
func (a *arena) release() {
	for i := 0; i <= a.chunk && i < len(a.chunks); i++ {
		c := a.chunks[i]
		n := nodeChunkSize
		if i == a.chunk {
			n = a.used
		}
		for j := 0; j < n; j++ {
			c[j] = node{}
		}
	}
	for i := range a.best {
		a.best[i] = nil
	}
	a.best = a.best[:0]
	for i := range a.stitches {
		a.stitches[i] = nil
	}
	a.stitches = a.stitches[:0]
	a.open.release()
	a.states.Release()
	if a.dom != nil {
		a.dom.release()
	}
	a.chunk, a.used = 0, 0
}

// newNode bump-allocates a zeroed node.
func (a *arena) newNode() *node {
	if a.chunk == len(a.chunks) {
		a.chunks = append(a.chunks, make([]node, nodeChunkSize))
	}
	n := &a.chunks[a.chunk][a.used]
	*n = node{}
	if a.used++; a.used == nodeChunkSize {
		a.chunk++
		a.used = 0
	}
	return n
}

// Problem returns the problem the searcher was built for.
func (s *Searcher) Problem() *graph.Problem { return s.prob }

// heuristic returns an admissible estimate of the cost-to-go from state st.
// For monotonic goals it is Eq. 3: the cheapest possible processing cost of
// every unassigned query. For non-monotonic goals the accumulated penalty
// may still be refunded by future placements, so the admissible form
// subtracts it (the final penalty is at least zero). Adaptive reuse takes
// the max with OldCost − g_old (Lemma 5.1). Scratch is drawn from ar.
func (s *Searcher) heuristic(ar *arena, st *graph.State, sig []byte, reuse *Reuse) float64 {
	h := 0.0
	remaining := 0
	var minFutureLat time.Duration
	for t, c := range st.Unassigned {
		h += float64(c) * s.minCost[t]
		remaining += c
		minFutureLat += time.Duration(c) * s.minLat[t]
	}
	if !s.prob.Goal.Monotonic() {
		// The accumulated penalty may be partially refunded by future
		// placements, but never below an admissible lower bound on
		// the final penalty.
		switch goal := s.prob.Goal.(type) {
		case sla.Average:
			if remaining > 0 {
				h += s.averageBound(st, goal, remaining) - st.Acc.Penalty()
			}
		case sla.Percentile:
			bound := sla.MinFinalPenalty(goal, st.Acc, remaining, minFutureLat)
			if remaining > 0 {
				if fees := s.percentileBound(ar, st, goal, remaining); fees > bound {
					bound = fees
				}
			}
			h += bound - st.Acc.Penalty()
		default:
			h += sla.MinFinalPenalty(s.prob.Goal, st.Acc, remaining, minFutureLat) - st.Acc.Penalty()
		}
	} else if remaining > 0 {
		h += s.packingBound(st, minFutureLat)
	}
	// Reuse is sound only for monotonic goals: non-monotonic penalties are
	// refundable, so a tightened goal can lower an edge's cost and
	// OldCost − g_old(v) would overestimate (see Reuse).
	if reuse != nil && s.prob.Goal.Monotonic() {
		if gOld, ok := reuse.Closed.Lookup(sig); ok {
			if adaptive := reuse.OldCost - gOld; adaptive > h {
				h = adaptive
			}
		}
	}
	return h
}

// packingBound lower-bounds the future start-up and penalty cost for
// monotonic goals by relaxing query granularity to divisible work. The open
// VM can absorb room−Wait more work penalty-free and each new VM absorbs
// `room`; work spilling past the absorbed room appears in the violation
// period of at least the last query of its VM, so for k additional VMs the
// future extra cost is at least
//
//	k × min-startup + rate × max(0, W − openRoom − k×room)
//
// where W is the minimum total future execution time. The bound takes the
// best k, which a completion is free to match but never beat.
func (s *Searcher) packingBound(st *graph.State, minFutureLat time.Duration) float64 {
	room, rate, ok := sla.FutureRoom(s.prob.Goal, st.Unassigned)
	if !ok || room <= 0 {
		return 0
	}
	openRoom := time.Duration(0)
	if st.OpenType != graph.NoVM && room > st.Wait {
		openRoom = room - st.Wait
	}
	kLow := 0.0
	spill := minFutureLat - openRoom
	if st.OpenType == graph.NoVM {
		// No VM is rented yet: at least one start-up fee is certain.
		spill = minFutureLat
		kLow = 1
	}
	if spill <= 0 && kLow == 0 {
		return 0
	}
	// The cost is convex in k, so the best k is kLow or one of the two
	// integers around the penalty-free crossover point.
	kCross := float64(spill) / float64(room)
	best := math.Inf(1)
	for _, k := range [3]float64{kLow, math.Floor(kCross), math.Ceil(kCross)} {
		if k < kLow {
			continue
		}
		cost := k * s.minStartup
		if residual := spill - time.Duration(k*float64(room)); residual > 0 {
			cost += rate * residual.Seconds()
		}
		if cost < best {
			best = cost
		}
	}
	return best
}

// solver holds the mutable state of one Solve call.
type solver struct {
	s     *Searcher
	ar    *arena
	table *InternTable
	reuse *Reuse

	cache     *TranspositionCache
	hits      int
	misses    int
	incumbent *node
	// stitched is the cached suffix completing the incumbent; nil when
	// the incumbent is a goal node reached by expansion.
	stitched      []graph.Action
	incumbentCost float64
	seeded        bool
	// canonical marks a search whose result must be a pure function of
	// (problem, workload) — invariant to transposition-cache contents,
	// adaptive-reuse heuristic strength, and worker parallelism. It holds
	// for every monotonic, unseeded search and is what lets a warm
	// retrain (cache and Closed sets carried over from a prior epoch)
	// reproduce a cold retrain bit-for-bit.
	//
	// The canonical schedule is the lexicographically least action
	// sequence (under actionCmp) among complete schedules whose total
	// cost lies in the minimal eps-quantization band. The search finds it
	// without enumerating the band: the open list pops in
	// (eps-banded f, lex path) order, transposition-cache hits become
	// pseudo-goal frontier nodes (carrying prefix + cached suffix at the
	// full completion cost) instead of incumbent adoptions, and the first
	// goal or pseudo-goal popped is the canonical schedule. The argument:
	// any prefix of the canonical schedule S has f within the band of S's
	// cost under every admissible heuristic, so it pops before any
	// lex-greater goal in that band; a cached suffix is itself the
	// canonical completion of its state (recorded from canonical paths,
	// merged lex-least in Commit), so a pseudo-goal either realizes S or
	// diverges from it in its visible prefix and pops after. Band-edge
	// float noise (~1e-13 across summation orders, vs the 1e-9 band) is
	// the only residual nondeterminism and is the same noise class the
	// eps tolerance already accepts everywhere else.
	//
	// Dedupe keeps the lex-least among eps-tied paths per state and
	// re-opens on replacement; since a lex-smaller prefix maps every
	// completion to a lex-smaller completion at the same cost, the
	// canonical schedule's prefixes are never evicted.
	canonical bool
}

// tieLess reports whether the candidate path (parent, act) is
// lexicographically smaller than open node b's path. Both paths reach the
// same state, so they are eps-tied in cost; the canonical search keeps the
// lex-least.
func (sv *solver) tieLess(parent *node, act graph.Action, b *node) bool {
	ar := sv.ar
	ar.cmpA = appendPathActions(ar.cmpA[:0], parent, act)
	ar.cmpB = appendPathActions(ar.cmpB[:0], b.parent, b.act)
	return lexCmpActions(ar.cmpA, ar.cmpB) < 0
}

// appendPathActions appends the root-to-edge action sequence of the path
// that ends with edge (parent, act); parent == nil denotes the start vertex
// (no edge at all, an empty path).
func appendPathActions(buf []graph.Action, parent *node, act graph.Action) []graph.Action {
	if parent == nil {
		return buf
	}
	start := len(buf)
	buf = append(buf, act)
	for n := parent; n.parent != nil; n = n.parent {
		buf = append(buf, n.act)
	}
	reverseActions(buf[start:])
	return buf
}

// lexCmpActions compares two action sequences lexicographically under
// actionCmp; a proper prefix orders first.
func lexCmpActions(a, b []graph.Action) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := actionCmp(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// consider processes one arrival at a state: interns its signature,
// deduplicates against the best-known node, applies dominance pruning,
// stitches a cached suffix, or pushes an open node. parent is nil for the
// start vertex.
func (sv *solver) consider(st *graph.State, parent *node, act graph.Action, g float64, remaining int32) {
	ar := sv.ar
	ar.sigBuf = sv.s.prob.AppendSignature(ar.sigBuf[:0], st)
	id, fresh := sv.table.Intern(ar.sigBuf)
	if fresh {
		ar.best = append(ar.best, nil)
	}
	if b := ar.best[id]; b != nil {
		if sv.canonical {
			// Keep the cheapest path; among eps-tied paths keep the
			// lexicographically least, re-opening the state so its
			// subtree re-derives with the smaller prefix (the cascade
			// terminates: the kept prefix strictly lex-decreases).
			if b.g < g-eps {
				return
			}
			if g >= b.g-eps && !sv.tieLess(parent, act, b) {
				return
			}
		} else if b.g <= g+eps {
			return
		}
	}
	if ar.dom != nil {
		if ar.dom.dominated(st, g) {
			return
		}
		ar.dom.insert(st, g)
	}
	depth := int32(0)
	if parent != nil {
		depth = parent.depth + 1
	}
	if sv.cache != nil {
		if e, ok := sv.cache.lookup(ar.sigBuf); ok {
			sv.hits++
			cn := ar.newNode()
			*cn = node{state: st, id: id, g: g, f: g + e.cost, parent: parent, act: act, remaining: remaining, depth: depth}
			if sv.canonical {
				// Push a pseudo-goal at the full completion cost
				// instead of adopting an incumbent: the pop order
				// decides canonically among all completions.
				ar.stitches = append(ar.stitches, e.actions)
				cn.stitch = int32(len(ar.stitches))
				ar.best[id] = cn
				ar.open.push(cn)
				return
			}
			ar.best[id] = cn
			// Strict improvement (beyond eps) keeps seeded-incumbent
			// semantics: a stitched completion merely matching the seed
			// must still report ErrSeedIsOptimal.
			if total := g + e.cost; total < sv.incumbentCost-eps {
				sv.incumbent, sv.incumbentCost, sv.stitched = cn, total, e.actions
			}
			return
		}
		sv.misses++
	}
	f := g + sv.s.heuristic(ar, st, ar.sigBuf, sv.reuse)
	if f >= sv.incumbentCost-eps {
		return // bound: cannot beat the incumbent
	}
	cn := ar.newNode()
	*cn = node{state: st, id: id, g: g, f: f, parent: parent, act: act, remaining: remaining, depth: depth}
	ar.best[id] = cn
	ar.open.push(cn)
}

// Solve finds a minimum-cost complete schedule for the workload. It is safe
// to call concurrently from multiple goroutines on one Searcher.
func (s *Searcher) Solve(w *workload.Workload, opts Options) (*Result, error) {
	if len(w.Templates) != len(s.prob.Env.Templates) {
		return nil, fmt.Errorf("search: workload has %d templates, problem expects %d", len(w.Templates), len(s.prob.Env.Templates))
	}
	ar := s.arenas.Get().(*arena)
	defer func() {
		ar.release()
		s.arenas.Put(ar)
	}()
	ar.reset()
	table := ar.table
	if _, isPct := s.prob.Goal.(sla.Percentile); isPct {
		if ar.dom == nil {
			ar.dom = newDominanceIndex()
		}
	} else {
		ar.dom = nil
	}
	monotonic := s.prob.Goal.Monotonic()
	sv := solver{s: s, ar: ar, table: table, reuse: opts.Reuse, incumbentCost: math.Inf(1)}
	if opts.Cache != nil && monotonic {
		// Sound for monotonic goals only; see TranspositionCache.
		sv.cache = opts.Cache
	}
	if opts.IncumbentCost > 0 {
		sv.incumbentCost = opts.IncumbentCost + eps
		sv.seeded = true
	}
	// Every monotonic, unseeded search is canonical (see solver.canonical):
	// its result is invariant to cache contents and heuristic strength.
	// Seeded searches keep the legacy incumbent-bound semantics so
	// ErrSeedIsOptimal still means "nothing strictly beats the seed".
	sv.canonical = monotonic && !sv.seeded
	// f-costs are in cents; a quantum of a fraction of the cheapest
	// start-up fee separates the packing plateaus the bounds create while
	// keeping the bucket count moderate.
	quantum := s.minStartup / 8
	if !(quantum > 1e-4) {
		quantum = 1e-4
	}
	ar.open.init(0, quantum, sv.canonical)

	start := s.prob.Start(w)
	sv.consider(start, nil, graph.Action{}, 0, int32(start.RemainingQueries()))

	expanded := 0
	optimal := true
	for {
		n := ar.open.pop()
		if n == nil {
			break
		}
		if sv.canonical {
			if ar.best[n.id] != n {
				continue // superseded by a cheaper or lex-smaller path
			}
			if n.stitch != 0 || n.state.IsGoal() {
				// First goal or pseudo-goal popped: by the canonical
				// pop order this is the lex-least schedule in the
				// minimal cost band, regardless of what the cache or
				// the heuristic contributed.
				sv.incumbent, sv.incumbentCost = n, n.f
				if n.stitch != 0 {
					sv.stitched = ar.stitches[n.stitch-1]
				}
				break
			}
		} else {
			if b := ar.best[n.id]; b != nil && b.g < n.g-eps {
				continue // stale entry superseded by a cheaper path
			}
			if n.f >= sv.incumbentCost-eps && (sv.incumbent != nil || sv.seeded) {
				// Nothing in the open list can beat the incumbent:
				// every other open node has f >= n.f, and f never
				// overestimates the cost of completions.
				break
			}
			if n.state.IsGoal() {
				if n.g < sv.incumbentCost {
					sv.incumbent, sv.incumbentCost, sv.stitched = n, n.g, nil
				}
				continue
			}
		}
		expanded++
		if opts.MaxExpansions > 0 && expanded > opts.MaxExpansions {
			optimal = false
			break
		}
		ar.actBuf = s.prob.AppendActions(ar.actBuf[:0], n.state)
		for _, a := range ar.actBuf {
			var cost float64
			switch a.Kind {
			case graph.Startup:
				cost = s.prob.StartupCost(a.VMType)
			case graph.Place:
				c, ok := s.prob.PlacementCost(n.state, a.Template)
				if !ok {
					continue
				}
				cost = c
			}
			child := s.prob.ApplyArena(&ar.states, n.state, a)
			remaining := n.remaining
			if a.Kind == graph.Place {
				remaining-- // a placement assigns exactly one query
			}
			sv.consider(child, n, a, n.g+cost, remaining)
		}
	}
	if sv.cache != nil {
		sv.cache.addCounters(sv.hits, sv.misses)
	}

	if sv.incumbent == nil {
		if !optimal {
			return nil, fmt.Errorf("search: expansion limit %d hit before any schedule was found", opts.MaxExpansions)
		}
		if sv.seeded {
			return nil, ErrSeedIsOptimal
		}
		return nil, ErrNoSchedule
	}

	// Assemble the action path: the parent chain up to the incumbent,
	// then the stitched cache suffix (if any).
	var actions []graph.Action
	for n := sv.incumbent; n.parent != nil; n = n.parent {
		actions = append(actions, n.act)
	}
	reverseActions(actions)
	actions = append(actions, sv.stitched...)

	res := &Result{
		Cost:        sv.incumbentCost,
		Actions:     actions,
		Expanded:    expanded,
		Optimal:     optimal,
		CacheHits:   sv.hits,
		CacheMisses: sv.misses,
	}
	if err := s.buildPath(res, w, opts); err != nil {
		return nil, err
	}
	if opts.KeepClosed {
		g := make([]float64, len(ar.best))
		for id, n := range ar.best {
			if n != nil {
				g[id] = n.g
			} else {
				g[id] = math.Inf(1)
			}
		}
		// The arena table is reused by the next search; the escaping
		// Closed gets its own immutable snapshot.
		res.Closed = &Closed{Table: table.Snapshot(), G: g}
	}
	return res, nil
}

// buildPath replays the result's actions from the start vertex with
// graph.Apply, materializing the Path steps with exact accumulators (the
// search's internal states may share a static accumulator and be stitched
// from cached suffixes). When opts.Record is set, the goal is monotonic,
// and optimality was proven, it also records every path state's solved
// suffix for later Commit into a transposition cache. The replayed edge
// costs double-check the stitched path; a mismatch against the search cost
// reports an error instead of a silently wrong schedule.
func (s *Searcher) buildPath(res *Result, w *workload.Workload, opts Options) error {
	record := opts.Record != nil && s.prob.Goal.Monotonic() && res.Optimal
	var recActions []graph.Action
	if record {
		// Records alias one private copy, never the caller-visible
		// Actions slice.
		recActions = append(make([]graph.Action, 0, len(res.Actions)), res.Actions...)
	}
	res.Path = make([]Step, 0, len(res.Actions))
	st := s.prob.Start(w)
	g := 0.0
	var edgeCosts []float64
	var sigs [][]byte
	if record {
		edgeCosts = make([]float64, len(res.Actions))
		sigs = make([][]byte, len(res.Actions))
	}
	for i, a := range res.Actions {
		res.Path = append(res.Path, Step{State: st, Action: a})
		if record {
			sigs[i] = s.prob.AppendSignature(nil, st)
		}
		var cost float64
		switch a.Kind {
		case graph.Startup:
			cost = s.prob.StartupCost(a.VMType)
		case graph.Place:
			c, ok := s.prob.PlacementCost(st, a.Template)
			if !ok {
				return fmt.Errorf("search: internal error: invalid placement of template %d while replaying the optimal path", a.Template)
			}
			cost = c
		}
		if record {
			edgeCosts[i] = cost
		}
		g += cost
		st = s.prob.Apply(st, a)
	}
	if !st.IsGoal() {
		return errors.New("search: internal error: replayed path does not reach a goal vertex")
	}
	if math.Abs(g-res.Cost) > 1e-6 {
		return fmt.Errorf("search: internal error: replayed path costs %.9f, search reported %.9f", g, res.Cost)
	}
	if record {
		// Suffix costs accumulate backward (cost_i = edge_i + cost_{i+1})
		// rather than as res.Cost − forward-prefix: the backward sum over a
		// given action suffix is the same float bit pattern no matter which
		// sample or epoch recorded it, so transposition caches built warm
		// and cold hold identical entries for shared signatures.
		suffix := 0.0
		for i := len(res.Actions) - 1; i >= 0; i-- {
			suffix += edgeCosts[i]
			opts.Record.add(sigs[i], suffix, recActions[i:])
		}
	}
	return nil
}

// Replay reconstructs the Result a previous search of w produced from its
// recorded action sequence, without searching: the actions are replayed
// from the start vertex exactly as buildPath replays a fresh search's
// incumbent, materializing the same Path steps and — via rec — the same
// transposition-cache suffix records (cache entries only ever come from
// returned optimal paths, so a replay regenerates precisely what the
// search would have recorded). cost is the original search's cost, cross-
// checked against the replayed edge sum; a mismatch (the actions were
// recorded under a different goal or environment) is an error, never a
// silently wrong schedule.
//
// Soundness rests on the canonical-search invariant: for monotonic goals,
// an unseeded search of the same (workload, goal, environment) returns the
// lexicographically least optimal schedule regardless of cache or reuse
// state — so the stored actions ARE today's search result, and warm
// retraining replays unchanged samples in O(path) instead of re-searching
// (see core's WarmTrain). The returned result carries no Closed set;
// callers that need reuse information forward the original search's.
func (s *Searcher) Replay(w *workload.Workload, actions []graph.Action, cost float64, rec *PendingSuffixes) (*Result, error) {
	if !s.prob.Goal.Monotonic() {
		return nil, errors.New("search: Replay requires a monotonic goal (non-monotonic searches are not canonical)")
	}
	res := &Result{
		Cost:    cost,
		Actions: append([]graph.Action(nil), actions...),
		Optimal: true,
	}
	if err := s.buildPath(res, w, Options{Record: rec}); err != nil {
		return nil, err
	}
	return res, nil
}

// ReuseFrom packages a completed search into the adaptive-A* reuse
// information for a re-search under a stricter goal (§5). The result must
// have been produced with KeepClosed set.
func ReuseFrom(r *Result) *Reuse {
	if r.Closed == nil {
		panic("search: ReuseFrom requires a result produced with KeepClosed")
	}
	return &Reuse{OldCost: r.Cost, Closed: r.Closed}
}

func reverseActions(a []graph.Action) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}
