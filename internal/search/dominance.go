package search

import (
	"encoding/binary"
	"time"

	"wisedb/internal/graph"
	"wisedb/internal/sla"
)

// dominanceIndex prunes Percentile-goal states by Pareto dominance.
//
// Consider two states that agree on the unassigned counts, the open VM's
// type and queued wait, and the canonical-ordering bound. They have the
// same number of assigned queries, so they differ only in how those
// latencies split into "below deadline" (count) and "above deadline"
// (sorted vector). State A dominates state B when A's violation vector,
// right-aligned against B's, is pointwise no larger:
//
//	len(A.above) <= len(B.above), and
//	A.above[i] <= B.above[i + len(B)-len(A)] for all i.
//
// Every completion of B then maps to a completion of A whose final
// percentile value — the (rank − below)-th smallest violation — is no
// larger: removing elements from a sorted multiset while shifting the index
// down never increases the selected order statistic. Fees and processing
// match exactly, so B can be dropped when A's path cost (net of the
// refundable penalty, see below) is no higher.
//
// Path costs are compared net of the state's current penalty (ĝ = g −
// p(state)): the accumulated percentile penalty is refundable by future
// placements, and two states with ordered violation vectors refund
// differently, so only the non-refundable processing+fee component is a
// sound basis for dominance.
//
// Keys are interned to dense ids (an InternTable, as the closed set uses)
// and buckets indexed by id, so steady-state lookups and inserts allocate
// nothing: only a fresh key's bytes are copied. An index is pooled with its
// search arena and reset between searches.
type dominanceIndex struct {
	table   *InternTable
	buckets [][]domEntry
	keyBuf  []byte // scratch reused across key computations
}

type domEntry struct {
	above []time.Duration
	gHat  float64
}

func newDominanceIndex() *dominanceIndex {
	return &dominanceIndex{table: NewInternTable()}
}

// reset readies the index for a fresh search, retaining capacity. Buckets
// of previously seen ids are emptied lazily as ids are re-assigned.
func (d *dominanceIndex) reset() {
	d.table.Reset()
	d.buckets = d.buckets[:0]
}

// release drops the violation-vector references held by the finished
// search so a pooled index pins nothing.
func (d *dominanceIndex) release() {
	full := d.buckets[:cap(d.buckets)]
	for i := range full {
		b := full[i][:cap(full[i])]
		for j := range b {
			b[j] = domEntry{}
		}
		full[i] = b[:0]
	}
	d.buckets = d.buckets[:0]
}

// key buckets states by everything except the violation split: unassigned
// counts (which fix the assigned count), open VM type and wait, and the
// canonical-ordering bound. The returned byte key aliases the index's
// scratch buffer and is valid until the next key call.
func (d *dominanceIndex) key(st *graph.State) ([]byte, []time.Duration, bool) {
	_, above, ok := sla.PctState(st.Acc)
	if !ok {
		return nil, nil, false
	}
	buf := d.keyBuf[:0]
	for _, c := range st.Unassigned {
		buf = binary.AppendVarint(buf, int64(c))
	}
	buf = binary.AppendVarint(buf, int64(st.OpenType))
	buf = binary.AppendVarint(buf, int64(st.Wait/time.Millisecond))
	buf = binary.AppendVarint(buf, int64(st.OrderingBound()))
	d.keyBuf = buf
	return buf, above, true
}

// dominatesRightAligned reports whether a (shorter or equal) pointwise
// dominates b when right-aligned.
func dominatesRightAligned(a, b []time.Duration) bool {
	if len(a) > len(b) {
		return false
	}
	shift := len(b) - len(a)
	for i := range a {
		if a[i] > b[i+shift] {
			return false
		}
	}
	return true
}

// dominated reports whether an already-indexed state dominates the given
// state at path cost g.
func (d *dominanceIndex) dominated(st *graph.State, g float64) bool {
	key, above, ok := d.key(st)
	if !ok {
		return false
	}
	id, found := d.table.Lookup(key)
	if !found || int(id) >= len(d.buckets) {
		return false
	}
	gHat := g - st.Acc.Penalty()
	for _, e := range d.buckets[id] {
		if e.gHat <= gHat+eps && dominatesRightAligned(e.above, above) {
			return true
		}
	}
	return false
}

// insert records the state, evicting entries it dominates to keep buckets
// small.
func (d *dominanceIndex) insert(st *graph.State, g float64) {
	key, above, ok := d.key(st)
	if !ok {
		return
	}
	id, fresh := d.table.Intern(key)
	if fresh {
		if int(id) < cap(d.buckets) {
			// Reclaim a bucket left over from a previous search.
			d.buckets = d.buckets[:id+1]
			d.buckets[id] = d.buckets[id][:0]
		} else {
			d.buckets = append(d.buckets, nil)
		}
	}
	gHat := g - st.Acc.Penalty()
	entries := d.buckets[id]
	kept := entries[:0]
	for _, e := range entries {
		if gHat <= e.gHat+eps && dominatesRightAligned(above, e.above) {
			continue // evict: new entry is at least as good everywhere
		}
		kept = append(kept, e)
	}
	d.buckets[id] = append(kept, domEntry{above: above, gHat: gHat})
}
