package search

import (
	"math"
	"testing"
	"time"

	"wisedb/internal/graph"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// Transposition-cache stitching must be exact: a searcher solving a stream
// of sample workloads with a shared cache (committed after every solve, as
// a sequential training run does) must return the same optimal cost as an
// uncached searcher, and the stitched action paths must build valid
// schedules whose Eq. 1 cost equals the reported cost.
func TestTranspositionCacheStitchExact(t *testing.T) {
	env := testEnv(5, 2)
	for _, name := range []string{"max", "perquery"} {
		goal := goalSet(env)[name]
		t.Run(name, func(t *testing.T) {
			prob := graph.NewProblem(env, goal)
			prob.NoSymmetryBreaking = true // as in training
			cached, err := New(prob)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := New(prob)
			if err != nil {
				t.Fatal(err)
			}
			cache := NewTranspositionCache()
			var rec PendingSuffixes
			sampler := workload.NewSampler(env.Templates, 71)
			hits := 0
			for trial := 0; trial < 40; trial++ {
				w := sampler.Uniform(7)
				got, err := cached.Solve(w, Options{Cache: cache, Record: &rec})
				if err != nil {
					t.Fatal(err)
				}
				cache.Commit(&rec)
				want, err := fresh.Solve(w, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got.Cost-want.Cost) > 1e-6 {
					t.Fatalf("trial %d: cached search %.9f, uncached %.9f", trial, got.Cost, want.Cost)
				}
				sched := got.Schedule()
				if err := sched.Validate(env, w); err != nil {
					t.Fatalf("trial %d: stitched schedule invalid: %v", trial, err)
				}
				if c := sched.Cost(env, goal); math.Abs(c-got.Cost) > 1e-6 {
					t.Fatalf("trial %d: stitched schedule costs %.9f, search reported %.9f", trial, c, got.Cost)
				}
				hits += got.CacheHits
			}
			if hits == 0 {
				t.Fatal("40 same-environment samples produced no cache hits; cross-sample reuse is broken")
			}
			if cache.Len() == 0 {
				t.Fatal("no suffixes were recorded")
			}
		})
	}
}

// The cache must be ignored for refundable-penalty goals (Average,
// Percentile). Why it is pinned off rather than supported: the suffix cost
// stored for a signature is only valid for states whose accumulator matches
// it exactly, and under refundable penalties the accumulator signature
// embeds the full penalty-relevant history (query count and latency sum,
// or the sorted violation vector) — so a cross-search hit would require an
// identical penalty history, which the per-search intern table already
// deduplicates, while every generated edge would pay a lookup. Worse, the
// Percentile search prunes by Pareto dominance, whose ĝ = g − p(state)
// comparisons assume kept states may still refund penalty through future
// placements; a stitched suffix fixes those placements and breaks the
// dominance argument. Solve therefore never consults or populates the
// cache for non-monotonic goals, and results must match the uncached
// search exactly.
func TestTranspositionCacheDisabledForRefundableGoals(t *testing.T) {
	env := testEnv(4, 1)
	for _, name := range []string{"average", "percentile"} {
		goal := goalSet(env)[name]
		t.Run(name, func(t *testing.T) {
			prob := graph.NewProblem(env, goal)
			prob.NoSymmetryBreaking = true
			s, err := New(prob)
			if err != nil {
				t.Fatal(err)
			}
			cache := NewTranspositionCache()
			var rec PendingSuffixes
			sampler := workload.NewSampler(env.Templates, 13)
			for trial := 0; trial < 6; trial++ {
				w := sampler.Uniform(6)
				res, err := s.Solve(w, Options{Cache: cache, Record: &rec})
				if err != nil {
					t.Fatal(err)
				}
				cache.Commit(&rec)
				if res.CacheHits != 0 || res.CacheMisses != 0 {
					t.Fatalf("trial %d: non-monotonic search consulted the cache (%d hits, %d misses)", trial, res.CacheHits, res.CacheMisses)
				}
				want, err := s.Solve(w, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(res.Cost-want.Cost) > 1e-9 {
					t.Fatalf("trial %d: cache changed a refundable-penalty optimum: %.9f vs %.9f", trial, res.Cost, want.Cost)
				}
			}
			if n := cache.Len(); n != 0 {
				t.Fatalf("non-monotonic searches recorded %d suffixes; want 0", n)
			}
		})
	}
}

// The canonical merge must be order-independent: committing equal-cost
// suffixes in either order leaves the lexicographically least one, and a
// cheaper suffix always wins.
func TestTranspositionCanonicalMerge(t *testing.T) {
	sig := []byte("state-key")
	a := []graph.Action{{Kind: graph.Place, Template: 0}, {Kind: graph.Place, Template: 2}}
	b := []graph.Action{{Kind: graph.Place, Template: 1}, {Kind: graph.Place, Template: 0}}
	for _, order := range [][2][]graph.Action{{a, b}, {b, a}} {
		cache := NewTranspositionCache()
		var rec PendingSuffixes
		rec.add(sig, 5.0, order[0])
		cache.Commit(&rec)
		rec.add(sig, 5.0, order[1])
		cache.Commit(&rec)
		e, ok := cache.lookup(sig)
		if !ok {
			t.Fatal("entry missing after commits")
		}
		if len(e.actions) != 2 || e.actions[0].Template != 0 {
			t.Fatalf("equal-cost merge kept %v; want the lexicographically least suffix (T0 first)", e.actions)
		}
	}
	cache := NewTranspositionCache()
	var rec PendingSuffixes
	rec.add(sig, 5.0, a)
	rec.add(sig, 3.0, b)
	cache.Commit(&rec)
	if e, _ := cache.lookup(sig); e.cost != 3.0 || e.actions[0].Template != 1 {
		t.Fatalf("cheaper suffix lost the merge: %+v", e)
	}
	if rec.Len() != 0 {
		t.Fatal("Commit must empty the pending buffer")
	}
}

// A search hitting the cache at the start vertex must return the stored
// optimum immediately, with zero expansions.
func TestTranspositionFullWorkloadHit(t *testing.T) {
	env := testEnv(4, 1)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	prob := graph.NewProblem(env, goal)
	prob.NoSymmetryBreaking = true
	s, err := New(prob)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewTranspositionCache()
	var rec PendingSuffixes
	w := workload.NewSampler(env.Templates, 3).Uniform(8)
	first, err := s.Solve(w, Options{Cache: cache, Record: &rec})
	if err != nil {
		t.Fatal(err)
	}
	cache.Commit(&rec)
	again, err := s.Solve(w, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if again.Expanded != 0 {
		t.Fatalf("re-solving a fully cached workload expanded %d states; want 0", again.Expanded)
	}
	if math.Abs(again.Cost-first.Cost) > 1e-9 {
		t.Fatalf("cached re-solve cost %.9f, original %.9f", again.Cost, first.Cost)
	}
	if err := again.Schedule().Validate(env, w); err != nil {
		t.Fatalf("stitched schedule invalid: %v", err)
	}
	stats := cache.Stats()
	if stats.Hits == 0 || stats.Entries == 0 {
		t.Fatalf("stats did not register the hit: %+v", stats)
	}
}
