package search

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"wisedb/internal/graph"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// The bucket frontier must pop in exactly the (f, remaining) order the
// binary heap it replaced used, for any quantum — quantization may only
// affect performance, never order — including pushes below the cursor
// (branch-and-bound re-openings) and f-values past the clamped last bucket.
func TestBucketFrontierExactOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, quantum := range []float64{1e-4, 0.01, 1, 1e6} {
		var q bucketFrontier
		q.init(0, quantum, false)
		var ref []*node
		push := func(n *node) {
			q.push(n)
			ref = append(ref, n)
		}
		// Interleave pushes and pops, with some pushes deliberately below
		// the current minimum (f shrinking over time).
		for wave := 0; wave < 6; wave++ {
			for i := 0; i < 200; i++ {
				f := float64(rng.Intn(50)) * 0.37 * float64(6-wave)
				push(&node{f: f, remaining: int32(rng.Intn(5))})
			}
			for i := 0; i < 120; i++ {
				n := q.pop()
				if n == nil {
					t.Fatalf("wave %d: frontier empty with %d reference nodes left", wave, len(ref))
				}
				sort.SliceStable(ref, func(a, b int) bool { return nodeLess(ref[a], ref[b]) })
				if n.f != ref[0].f || n.remaining != ref[0].remaining {
					t.Fatalf("wave %d pop %d: got (f=%v,r=%d), want (f=%v,r=%d)", wave, i, n.f, n.remaining, ref[0].f, ref[0].remaining)
				}
				ref = ref[1:]
			}
		}
		for q.pop() != nil {
		}
		if q.size != 0 {
			t.Fatalf("size %d after draining", q.size)
		}
	}
}

// The closed-form round-robin completion sum behind averageBound must match
// the materialized reference computation it replaced.
func TestRoundRobinSumCMatchesReference(t *testing.T) {
	env := testEnv(6, 2)
	goal := sla.NewAverage(10*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	prob := graph.NewProblem(env, goal)
	s, err := New(prob)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		st := prob.Start(workload.NewSampler(env.Templates, int64(trial)).Uniform(1 + rng.Intn(14)))
		// Reference: materialize the descending latency vector.
		var lats []time.Duration
		for _, tmpl := range s.latOrderDesc {
			for c := st.Unassigned[tmpl]; c > 0; c-- {
				lats = append(lats, s.minLat[tmpl])
			}
		}
		for m := 1; m <= len(lats)+1; m++ {
			var want time.Duration
			for i, l := range lats {
				want += time.Duration((i/m)+1) * l
			}
			if got := s.roundRobinSumC(st, m); got != want {
				t.Fatalf("trial %d m=%d: closed form %v, reference %v", trial, m, got, want)
			}
		}
	}
}
