package search

import (
	"math"
	"testing"
	"time"

	"wisedb/internal/graph"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// The canonical-VM-ordering symmetry reduction must be lossless: for every
// goal family, searching the constrained graph yields exactly the optimal
// cost of the unconstrained one.
func TestSymmetryBreakingLossless(t *testing.T) {
	env := testEnv(3, 2)
	for name, goal := range goalSet(env) {
		t.Run(name, func(t *testing.T) {
			sampler := workload.NewSampler(env.Templates, 97)
			for trial := 0; trial < 8; trial++ {
				w := sampler.Uniform(6)
				withSym := graph.NewProblem(env, goal)
				without := graph.NewProblem(env, goal)
				without.NoSymmetryBreaking = true
				a := solve(t, withSym, w, Options{})
				b := solve(t, without, w, Options{})
				if math.Abs(a.Cost-b.Cost) > 1e-6 {
					t.Fatalf("trial %d: canonical ordering changed the optimum: %.6f vs %.6f", trial, a.Cost, b.Cost)
				}
				if a.Expanded > b.Expanded {
					t.Logf("trial %d: symmetry breaking expanded more (%d > %d)", trial, a.Expanded, b.Expanded)
				}
			}
		})
	}
}

// Dominance pruning for percentile goals must also be lossless against
// brute force, including workloads that force violations.
func TestPercentileDominanceLossless(t *testing.T) {
	env := testEnv(3, 1)
	// Tight percentile goal: 60% of queries within the shortest template
	// latency, so most workloads must pay or spread out.
	goal := sla.NewPercentile(60, env.Templates[0].BaseLatency, env.Templates, sla.DefaultPenaltyRate)
	prob := graph.NewProblem(env, goal)
	sampler := workload.NewSampler(env.Templates, 41)
	for trial := 0; trial < 10; trial++ {
		w := sampler.Uniform(5)
		res := solve(t, prob, w, Options{})
		want := BruteForceCost(prob, w)
		if math.Abs(res.Cost-want) > 1e-6 {
			t.Fatalf("trial %d: A*+dominance %.6f, brute force %.6f", trial, res.Cost, want)
		}
	}
}

// Seeded branch-and-bound must prove seed optimality when the seed is the
// optimum, and beat it when it is not.
func TestIncumbentSeeding(t *testing.T) {
	env := testEnv(4, 1)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	prob := graph.NewProblem(env, goal)
	s, err := New(prob)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewSampler(env.Templates, 61).Uniform(8)
	exact, err := s.Solve(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Seed with the exact optimum: nothing beats it.
	if _, err := s.Solve(w, Options{IncumbentCost: exact.Cost}); err != ErrSeedIsOptimal {
		t.Fatalf("want ErrSeedIsOptimal, got %v", err)
	}
	// Seed with a loose bound: the search must find the optimum.
	res, err := s.Solve(w, Options{IncumbentCost: exact.Cost * 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-exact.Cost) > 1e-6 {
		t.Fatalf("seeded search found %.6f, want %.6f", res.Cost, exact.Cost)
	}
}

// The per-goal heuristic lower bounds must never exceed the true optimal
// cost when evaluated at the start vertex (full-path admissibility is
// implied by A* returning brute-force answers; this pins the bound helpers
// directly, including the VM-count terms).
func TestBoundsAdmissibleAtRoot(t *testing.T) {
	env := testEnv(4, 1)
	for name, goal := range goalSet(env) {
		t.Run(name, func(t *testing.T) {
			sampler := workload.NewSampler(env.Templates, 31)
			prob := graph.NewProblem(env, goal)
			s, err := New(prob)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				w := sampler.Uniform(6)
				start := prob.Start(w)
				h := s.heuristic(newArena(), start, []byte(prob.Signature(start)), nil)
				res, err := s.Solve(w, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if h > res.Cost+1e-6 {
					t.Fatalf("trial %d: root heuristic %.6f exceeds optimum %.6f", trial, h, res.Cost)
				}
			}
		})
	}
}

// Ablation: the packing bound must dramatically reduce expansions for
// monotonic goals at training sizes (this is what makes N=thousands of
// samples tractable). Guard against silent regressions.
func TestPackingBoundEffective(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	env := testEnv(10, 1)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	s, err := New(graph.NewProblem(env, goal))
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewSampler(env.Templates, 1).Uniform(18)
	res, err := s.Solve(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expanded > 50_000 {
		t.Fatalf("m=18 Max search expanded %d states; packing bound regression (expect a few thousand)", res.Expanded)
	}
}
