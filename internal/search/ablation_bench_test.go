package search

import (
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// Ablation benchmarks for the search-strengthening design choices in
// DESIGN.md: run with
//
//	go test -bench=Ablation ./internal/search -benchmem
//
// and compare pairs (with/without symmetry breaking, fresh vs adaptive).

func benchEnv(numTemplates int) *schedule.Env {
	return schedule.NewEnv(workload.DefaultTemplates(numTemplates), cloud.DefaultVMTypes(1))
}

func benchSolve(b *testing.B, prob *graph.Problem, m int) {
	b.Helper()
	s, err := New(prob)
	if err != nil {
		b.Fatal(err)
	}
	w := workload.NewSampler(prob.Env.Templates, 1).Uniform(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(w, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMaxSymmetry measures the training-size Max-goal search
// with the canonical VM ordering reduction on.
func BenchmarkAblationMaxSymmetry(b *testing.B) {
	env := benchEnv(10)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	benchSolve(b, graph.NewProblem(env, goal), 14)
}

// BenchmarkAblationMaxNoSymmetry is the same search without the reduction.
func BenchmarkAblationMaxNoSymmetry(b *testing.B) {
	env := benchEnv(10)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	prob := graph.NewProblem(env, goal)
	prob.NoSymmetryBreaking = true
	benchSolve(b, prob, 14)
}

// BenchmarkAblationPercentileSymmetry measures the Percentile search
// (dominance pruning + bounds) with symmetry breaking.
func BenchmarkAblationPercentileSymmetry(b *testing.B) {
	env := benchEnv(10)
	goal := sla.NewPercentile(90, 10*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	benchSolve(b, graph.NewProblem(env, goal), 14)
}

// BenchmarkAblationPercentileNoSymmetry is the same without symmetry
// breaking.
func BenchmarkAblationPercentileNoSymmetry(b *testing.B) {
	env := benchEnv(10)
	goal := sla.NewPercentile(90, 10*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	prob := graph.NewProblem(env, goal)
	prob.NoSymmetryBreaking = true
	benchSolve(b, prob, 14)
}

// BenchmarkAblationFreshSearch solves a tightened-goal instance from
// scratch; compare with BenchmarkAblationAdaptiveSearch for §5's reuse.
func BenchmarkAblationFreshSearch(b *testing.B) {
	env := benchEnv(10)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	tight := goal.Tighten(0.4)
	s, err := New(graph.NewProblem(env, tight))
	if err != nil {
		b.Fatal(err)
	}
	w := workload.NewSampler(env.Templates, 1).Uniform(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(w, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdaptiveSearch solves the same tightened instance with
// adaptive-A* reuse from the original goal's search.
func BenchmarkAblationAdaptiveSearch(b *testing.B) {
	env := benchEnv(10)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	w := workload.NewSampler(env.Templates, 1).Uniform(14)
	base, err := New(graph.NewProblem(env, goal))
	if err != nil {
		b.Fatal(err)
	}
	orig, err := base.Solve(w, Options{KeepClosed: true})
	if err != nil {
		b.Fatal(err)
	}
	reuse := ReuseFrom(orig)
	tight, err := New(graph.NewProblem(env, goal.Tighten(0.4)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tight.Solve(w, Options{Reuse: reuse}); err != nil {
			b.Fatal(err)
		}
	}
}
