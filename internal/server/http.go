package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"wisedb/internal/core"
)

// Stats is the daemon's observable state: ingress counters plus the
// engine's scale-out and robustness snapshot. Served as JSON on the
// sidecar's /stats.
type Stats struct {
	// State is "serving", "draining", or "stopped".
	State string `json:"state"`
	// Connection accounting: accepted ever, rejected at the cap,
	// currently open.
	AcceptedConns int64 `json:"accepted_conns"`
	RejectedConns int64 `json:"rejected_conns"`
	ActiveConns   int64 `json:"active_conns"`
	// Frames counts protocol frames read; ProtocolErrors counts
	// connections dropped for garbage.
	Frames         int64 `json:"frames"`
	ProtocolErrors int64 `json:"protocol_errors"`
	// Query accounting. Admitted were passed into the engine; Shed
	// were dropped by the token bucket before admission; Completed
	// finished through stream flush. After a full drain,
	// Admitted == Completed unless the engine itself shed under
	// degradation (that shed is in Scale.ShedArrivals).
	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Completed int64 `json:"completed"`
	// StreamsServed counts tenant streams opened over the daemon's life.
	StreamsServed int64 `json:"streams_served"`
	// Scale is the engine's ScaleStats snapshot (shards, ω-map,
	// degraded/shed/deadline counters, registry robustness).
	Scale core.ScaleStats `json:"scale"`
}

// Stats snapshots the daemon's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		AcceptedConns:  s.acceptedConns.Load(),
		RejectedConns:  s.rejectedConns.Load(),
		ActiveConns:    s.activeConns.Load(),
		Frames:         s.frames.Load(),
		ProtocolErrors: s.protocolErrors.Load(),
		Admitted:       s.admitted.Load(),
		Shed:           s.shed.Load(),
		Completed:      s.completed.Load(),
		StreamsServed:  s.streamsServed.Load(),
		Scale:          s.eng.ScaleStats(),
	}
	switch s.state.Load() {
	case stateServing:
		st.State = "serving"
	case stateDraining:
		st.State = "draining"
	case stateStopped:
		st.State = "stopped"
	default:
		st.State = "new"
	}
	return st
}

func (s *Server) startHTTP() error {
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		return fmt.Errorf("server: http listen %s: %w", s.cfg.HTTPAddr, err)
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Liveness: the process is up and responding, draining included.
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		// Readiness: accepting new work. Draining flips this first so
		// load balancers stop routing before connections start closing.
		if s.state.Load() != stateServing {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	})
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return nil
}

// HTTPAddr returns the sidecar's bound address, or nil if disabled.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// stopHTTP stops the sidecar after the drain completes — health stays
// observable while draining (/readyz flips to 503 the moment the drain
// starts).
func (s *Server) stopHTTP() {
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
}
