package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"wisedb/internal/core"
	"wisedb/internal/wire"
)

// Options configures a client connection.
type Options struct {
	// Registry names the server-side registry to bind the stream to
	// ("" = the default registry).
	Registry string
	// Tenant is an identifying label carried in the handshake.
	Tenant string
	// Clock selects wire.ClockWall (server stamps arrivals with real
	// time) or wire.ClockVirtual (Submit's arrival instant drives the
	// stream's virtual clock — replay and load-generation mode).
	Clock uint8
	// Retry is the jittered-backoff schedule for dial retries
	// (core/robust.go's policy; zero value = defaults).
	Retry core.RetryPolicy
	// DialAttempts bounds connection attempts (first try included).
	// Default 4.
	DialAttempts int
	// Timeout bounds each network operation. Default 30s.
	Timeout time.Duration
	// Seed feeds the deterministic retry jitter.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.DialAttempts <= 0 {
		o.DialAttempts = 4
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

// Result is a stream's final accounting as reported by the server.
type Result struct {
	Cost      float64
	Penalty   float64
	Completed uint32
	Shed      uint32
	VMs       uint32
	Epoch     uint64
	Draining  bool
}

// Client is one connection to the serving daemon — one tenant stream.
// It supports pipelining: Send queues Submit frames into a buffered
// writer, Flush pushes them out, ReadAck consumes acknowledgements;
// the load generator keeps a window of frames in flight to amortize
// syscalls. A Client is single-goroutine, like the stream it fronts.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
	out  []byte
	f    wire.Frame

	opts    Options
	seq     uint32
	pending int // Submit frames sent but not yet acked

	// Templates and MaxBatch echo the server's Welcome.
	Templates uint32
	MaxBatch  uint32
}

// Dial connects to the daemon with jittered-backoff retries: each
// failed attempt (refused, timed out, rejected at the connection cap)
// backs off per opts.Retry.RetryDelay before the next, so a thundering
// herd of restarting clients spreads itself out.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	var lastErr error
	for attempt := 0; attempt < opts.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(opts.Retry.RetryDelay(attempt, opts.Seed))
		}
		conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
		if err != nil {
			lastErr = err
			continue
		}
		c, err := handshake(conn, opts)
		if err != nil {
			conn.Close()
			lastErr = err
			if errors.Is(err, wire.ErrVersion) {
				break // a version mismatch will not heal by retrying
			}
			continue
		}
		return c, nil
	}
	return nil, fmt.Errorf("server: dial %s failed after %d attempts: %w", addr, opts.DialAttempts, lastErr)
}

func handshake(conn net.Conn, opts Options) (*Client, error) {
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
		buf:  make([]byte, 0, 4096),
		out:  make([]byte, 0, 4096),
		opts: opts,
	}
	hello, err := wire.AppendHello(c.out[:0], opts.Clock, opts.Registry, opts.Tenant)
	if err != nil {
		return nil, err
	}
	conn.SetWriteDeadline(time.Now().Add(opts.Timeout))
	if _, err := c.bw.Write(hello); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(opts.Timeout))
	if c.buf, err = wire.ReadFrame(c.br, c.buf, &c.f); err != nil {
		return nil, fmt.Errorf("welcome: %w", err)
	}
	switch c.f.Type {
	case wire.TypeWelcome:
		c.Templates = c.f.Templates
		c.MaxBatch = c.f.MaxBatch
		return c, nil
	case wire.TypeError:
		return nil, fmt.Errorf("server rejected connection: %s", c.f.Message)
	default:
		return nil, fmt.Errorf("expected Welcome, got frame type %d", c.f.Type)
	}
}

// Send queues one Submit frame (no flush): queries arriving at arrival
// (virtual clock mode; ignored in wall mode) with a placement deadline
// (0 = server default).
func (c *Client) Send(queries []wire.Query, arrival, deadline time.Duration) error {
	c.seq++
	frame, err := wire.AppendSubmit(c.out[:0], c.seq, arrival.Microseconds(), deadline.Microseconds(), queries)
	if err != nil {
		return err
	}
	// A full write buffer spills to the socket inside Write: keep the
	// deadline fresh so that spill cannot trip over a stale one.
	c.conn.SetWriteDeadline(time.Now().Add(c.opts.Timeout))
	if _, err := c.bw.Write(frame); err != nil {
		return err
	}
	c.pending++
	return nil
}

// Flush pushes queued frames to the server.
func (c *Client) Flush() error {
	c.conn.SetWriteDeadline(time.Now().Add(c.opts.Timeout))
	return c.bw.Flush()
}

// ReadAck consumes one acknowledgement: how many queries the server
// admitted and shed, and whether it is draining (the client should
// Finish soon).
func (c *Client) ReadAck() (accepted, shed int, draining bool, err error) {
	c.conn.SetReadDeadline(time.Now().Add(c.opts.Timeout))
	if c.buf, err = wire.ReadFrame(c.br, c.buf, &c.f); err != nil {
		return 0, 0, false, err
	}
	switch c.f.Type {
	case wire.TypeAck:
		c.pending--
		return int(c.f.Accepted), int(c.f.Shed), c.f.Draining, nil
	case wire.TypeError:
		return 0, 0, false, fmt.Errorf("server error: %s", c.f.Message)
	default:
		return 0, 0, false, fmt.Errorf("expected Ack, got frame type %d", c.f.Type)
	}
}

// Submit is the synchronous convenience: Send + Flush + ReadAck.
func (c *Client) Submit(queries []wire.Query, arrival, deadline time.Duration) (accepted, shed int, draining bool, err error) {
	if err := c.Send(queries, arrival, deadline); err != nil {
		return 0, 0, false, err
	}
	if err := c.Flush(); err != nil {
		return 0, 0, false, err
	}
	return c.ReadAck()
}

// Finish closes the stream: outstanding acks are drained, the Finish
// frame is sent, and the server's Result comes back. The connection is
// done afterwards (Close releases it).
func (c *Client) Finish() (Result, error) {
	frame := wire.AppendFinish(c.out[:0])
	if _, err := c.bw.Write(frame); err != nil {
		return Result{}, err
	}
	if err := c.Flush(); err != nil {
		return Result{}, err
	}
	for {
		c.conn.SetReadDeadline(time.Now().Add(c.opts.Timeout))
		var err error
		if c.buf, err = wire.ReadFrame(c.br, c.buf, &c.f); err != nil {
			return Result{}, err
		}
		switch c.f.Type {
		case wire.TypeAck:
			c.pending-- // a straggler ack from the pipeline window
		case wire.TypeResult:
			return Result{
				Cost:      c.f.Cost,
				Penalty:   c.f.Penalty,
				Completed: c.f.Completed,
				Shed:      c.f.ShedTotal,
				VMs:       c.f.VMs,
				Epoch:     c.f.Epoch,
				Draining:  c.f.Draining,
			}, nil
		case wire.TypeError:
			return Result{}, fmt.Errorf("server error: %s", c.f.Message)
		default:
			return Result{}, fmt.Errorf("expected Result, got frame type %d", c.f.Type)
		}
	}
}

// Pending returns the number of unacknowledged Submit frames.
func (c *Client) Pending() int { return c.pending }

// Close releases the connection.
func (c *Client) Close() error {
	err := c.conn.Close()
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
		return nil
	}
	return err
}
