// Package server is the wisedb network serving daemon: a TCP listener
// speaking internal/wire's length-prefixed framing on the hot arrival
// path, an HTTP sidecar for health and stats, and the robustness
// machinery every ingress needs — per-request deadlines propagated into
// placement, per-connection read/write timeouts, a max-connections
// cap, token-bucket admission control that sheds before admission, and
// a graceful SIGTERM drain that flushes in-flight streams exactly once
// and checkpoints every registry before exit.
//
// Each connection is one tenant stream (core.Stream): the handshake
// binds it to a registry, Submit frames become arrival events, and
// Finish (or drain, or disconnect) flushes it through Stream.Finish —
// so every admitted arrival completes exactly once no matter how the
// connection ends. The per-connection read loop reuses one frame, one
// read buffer, one query slice, and one write buffer, preserving the
// engine's 0 allocs/arrival invariant through the network decode path.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wisedb/internal/core"
	"wisedb/internal/wire"
	"wisedb/internal/workload"
)

// Config configures a Server. Engine is required; everything else has
// serviceable defaults.
type Config struct {
	// Engine is the serving engine connections submit into.
	Engine *core.OnlineScheduler
	// Addr is the TCP listen address (e.g. ":7070"). Ignored when
	// Listener is set.
	Addr string
	// Listener, when non-nil, is used instead of listening on Addr —
	// the seam tests and chaos fault injection wrap.
	Listener net.Listener
	// HTTPAddr is the sidecar's listen address for /healthz, /readyz,
	// and /stats. Empty disables the sidecar.
	HTTPAddr string
	// MaxConns caps concurrent connections; excess connections get an
	// Error frame and an immediate close. Default 1024.
	MaxConns int
	// ReadTimeout bounds the wait for each frame; an idle connection
	// past it is treated as gone (its stream is flushed). Default 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response flush. Default 10s.
	WriteTimeout time.Duration
	// AdmitRate is the token-bucket refill rate in queries/sec across
	// all connections; AdmitBurst the bucket depth (default: one
	// second of rate). 0 disables admission control.
	AdmitRate  float64
	AdmitBurst int
	// DefaultDeadline is the per-request placement deadline applied
	// when a Submit frame carries none. 0 means no deadline.
	DefaultDeadline time.Duration
	// DrainGrace bounds how long Shutdown waits for in-flight
	// connections before force-closing them (their admitted work is
	// still flushed). Default 10s. The context handed to Shutdown
	// caps it further.
	DrainGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 10 * time.Second
	}
	if c.AdmitRate > 0 && c.AdmitBurst <= 0 {
		c.AdmitBurst = int(c.AdmitRate)
		if c.AdmitBurst < 1 {
			c.AdmitBurst = 1
		}
	}
	return c
}

// Server states. The daemon moves serving → draining → stopped, once,
// in that order.
const (
	stateNew int32 = iota
	stateServing
	stateDraining
	stateStopped
)

// Server is the serving daemon. Create with New, start with Start,
// stop with Shutdown.
type Server struct {
	cfg    Config
	eng    *core.OnlineScheduler
	bucket *tokenBucket

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	state atomic.Int32
	done  chan struct{}

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup // accept loop + one per live connection

	// Ingress counters. Admitted counts queries passed into the
	// engine; Completed counts queries that finished through
	// Stream.Finish — at stopped state the two match unless the
	// engine itself shed (MaxBacklog under degradation).
	acceptedConns  atomic.Int64
	rejectedConns  atomic.Int64
	activeConns    atomic.Int64
	frames         atomic.Int64
	admitted       atomic.Int64
	shed           atomic.Int64
	completed      atomic.Int64
	streamsServed  atomic.Int64
	protocolErrors atomic.Int64
	drainErr       atomic.Pointer[error]
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.Addr == "" && cfg.Listener == nil {
		return nil, errors.New("server: Config.Addr or Config.Listener is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		eng:   cfg.Engine,
		conns: map[net.Conn]struct{}{},
		done:  make(chan struct{}),
	}
	if cfg.AdmitRate > 0 {
		s.bucket = newTokenBucket(cfg.AdmitRate, cfg.AdmitBurst)
	}
	return s, nil
}

// Start begins listening and accepting. It returns once the listeners
// are bound; serving proceeds on background goroutines until Shutdown.
func (s *Server) Start() error {
	if !s.state.CompareAndSwap(stateNew, stateServing) {
		return errors.New("server: already started")
	}
	ln := s.cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			s.state.Store(stateStopped)
			close(s.done)
			return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
		}
	}
	s.ln = ln
	if s.cfg.HTTPAddr != "" {
		if err := s.startHTTP(); err != nil {
			ln.Close()
			s.state.Store(stateStopped)
			close(s.done)
			return err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound TCP address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Done is closed when the server has fully stopped.
func (s *Server) Done() <-chan struct{} { return s.done }

func (s *Server) draining() bool { return s.state.Load() >= stateDraining }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.draining() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (e.g. EMFILE): brief pause, go on.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if s.activeConns.Load() >= int64(s.cfg.MaxConns) {
			s.rejectedConns.Add(1)
			c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			c.Write(wire.AppendError(nil, "server at max connections"))
			c.Close()
			continue
		}
		s.acceptedConns.Add(1)
		s.activeConns.Add(1)
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(c)
	}
}

// conn is the per-connection state: one stream, one set of reusable
// buffers. Everything here lives for the connection and is touched by
// its handler goroutine only.
type conn struct {
	c      net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	buf    []byte // wire read buffer
	out    []byte // wire write buffer
	f      wire.Frame
	qbuf   []workload.Query // decoded batch, converted for the engine
	stream *core.Stream
	clock  *core.SimClock // non-nil in virtual clock mode
	lastT  time.Duration  // last virtual instant (clamped monotonic)
}

// writeFrame queues an encoded frame and flushes if no further input
// is pending — batching acks under pipelining, never sitting on a
// response when the peer is waiting.
func (s *Server) writeFrame(cn *conn, frame []byte) error {
	if _, err := cn.bw.Write(frame); err != nil {
		return err
	}
	if cn.br.Buffered() == 0 {
		cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		return cn.bw.Flush()
	}
	return nil
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	cn := &conn{
		c:   c,
		br:  bufio.NewReaderSize(c, 64<<10),
		bw:  bufio.NewWriterSize(c, 64<<10),
		buf: make([]byte, 0, 4096),
		out: make([]byte, 0, 256),
	}
	defer func() {
		s.flushStream(cn)
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.activeConns.Add(-1)
		c.Close()
	}()
	if err := s.handshake(cn); err != nil {
		s.protocolErrors.Add(1)
		s.writeFrame(cn, wire.AppendError(cn.out[:0], err.Error()))
		cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		cn.bw.Flush()
		return
	}
	s.streamsServed.Add(1)
	s.serve(cn)
}

// handshake reads the Hello, opens the tenant stream, and answers with
// a Welcome.
func (s *Server) handshake(cn *conn) error {
	cn.c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	var err error
	cn.buf, err = wire.ReadFrame(cn.br, cn.buf, &cn.f)
	if err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	if cn.f.Type != wire.TypeHello {
		return fmt.Errorf("expected Hello, got frame type %d", cn.f.Type)
	}
	registry := cn.f.Registry
	if registry == "" {
		registry = core.DefaultRegistry
	}
	var clock core.Clock
	if cn.f.Clock == wire.ClockVirtual {
		cn.clock = &core.SimClock{}
		clock = cn.clock
	} else {
		clock = core.NewWallClock()
	}
	stream, err := s.eng.NewStreamOn(registry, clock)
	if err != nil {
		return err
	}
	cn.stream = stream
	return s.writeFrame(cn, wire.AppendWelcome(cn.out[:0], uint32(s.eng.Templates()), wire.MaxBatch))
}

// serve is the connection's frame loop. It exits on Finish, on any
// read/write error, and on drain (the drain nudge wakes blocked reads
// via an immediate read deadline); the deferred flushStream in handle
// guarantees the stream's admitted work completes exactly once on
// every one of those paths.
func (s *Server) serve(cn *conn) {
	for {
		cn.c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		var err error
		cn.buf, err = wire.ReadFrame(cn.br, cn.buf, &cn.f)
		if err != nil {
			// Drain, disconnect, timeout, or garbage: if the peer is
			// still there and draining, tell it before hanging up.
			if wireError(err) {
				s.protocolErrors.Add(1)
				s.writeFrame(cn, wire.AppendError(cn.out[:0], err.Error()))
			} else if s.draining() {
				res := s.finishStream(cn)
				s.writeFrame(cn, resultFrame(cn.out[:0], res, true))
			}
			cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			cn.bw.Flush()
			return
		}
		s.frames.Add(1)
		switch cn.f.Type {
		case wire.TypeSubmit:
			if err := s.handleSubmit(cn); err != nil {
				s.protocolErrors.Add(1)
				s.writeFrame(cn, wire.AppendError(cn.out[:0], err.Error()))
				cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				cn.bw.Flush()
				return
			}
		case wire.TypeFinish:
			res := s.finishStream(cn)
			s.writeFrame(cn, resultFrame(cn.out[:0], res, s.draining()))
			cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			cn.bw.Flush()
			return
		default:
			s.protocolErrors.Add(1)
			s.writeFrame(cn, wire.AppendError(cn.out[:0], fmt.Sprintf("unexpected frame type %d", cn.f.Type)))
			cn.c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			cn.bw.Flush()
			return
		}
	}
}

// handleSubmit admits what the token bucket allows, sheds the rest
// (newest last — the same newest-first-sheddable rule as the engine's
// MaxBacklog), submits with the request's placement deadline, and
// acks. This is the 0 allocs/arrival hot path: the query slice, the
// ack buffer, and the frame are all connection-owned and reused.
func (s *Server) handleSubmit(cn *conn) error {
	n := len(cn.f.Queries)
	admit := n
	if s.bucket != nil {
		admit = s.bucket.take(n)
	}
	shedN := n - admit
	if shedN > 0 {
		cn.stream.Shed(shedN)
		s.shed.Add(int64(shedN))
	}
	if admit > 0 {
		cn.qbuf = cn.qbuf[:0]
		for i := 0; i < admit; i++ {
			cn.qbuf = append(cn.qbuf, workload.Query{TemplateID: int(cn.f.Queries[i].Template), Tag: int(cn.f.Queries[i].Tag)})
		}
		if cn.clock != nil {
			t := time.Duration(cn.f.ArrivalMicros) * time.Microsecond
			if t < cn.lastT {
				t = cn.lastT // the stream clock is monotonic; clients may lag
			}
			cn.lastT = t
			cn.clock.Advance(t)
		}
		deadline := s.cfg.DefaultDeadline
		if cn.f.DeadlineMicros > 0 {
			deadline = time.Duration(cn.f.DeadlineMicros) * time.Microsecond
		}
		if err := cn.stream.SubmitDeadline(context.Background(), deadline, cn.qbuf...); err != nil {
			return fmt.Errorf("submit: %w", err)
		}
		s.admitted.Add(int64(admit))
	}
	return s.writeFrame(cn, wire.AppendAck(cn.out[:0], cn.f.Seq, uint16(admit), uint16(shedN), s.draining()))
}

// finishStream flushes the connection's stream exactly once and
// returns its result (nil if already flushed or never opened).
func (s *Server) finishStream(cn *conn) *core.OnlineResult {
	if cn.stream == nil {
		return nil
	}
	res := cn.stream.Finish()
	cn.stream.Close()
	cn.stream = nil
	s.completed.Add(int64(len(res.Outcomes)))
	return res
}

// flushStream is finishStream for abnormal exits: admitted work is
// completed and counted even when the connection died mid-stream.
func (s *Server) flushStream(cn *conn) {
	if cn.stream != nil {
		s.finishStream(cn)
	}
}

// resultFrame renders a stream result (nil allowed) as a Result frame.
func resultFrame(dst []byte, res *core.OnlineResult, draining bool) []byte {
	if res == nil {
		return wire.AppendResult(dst, 0, 0, 0, 0, 0, 0, draining)
	}
	return wire.AppendResult(dst, res.Cost, res.Penalty,
		uint32(len(res.Outcomes)), uint32(res.ShedArrivals), uint32(res.VMsRented),
		res.FinalEpoch, draining)
}

// wireError reports whether err is a protocol-level decode failure (as
// opposed to I/O: timeouts, resets, EOF).
func wireError(err error) bool {
	return errors.Is(err, wire.ErrTooLarge) || errors.Is(err, wire.ErrTruncated) ||
		errors.Is(err, wire.ErrCorrupt) || errors.Is(err, wire.ErrUnknownType) ||
		errors.Is(err, wire.ErrVersion)
}

// Shutdown drains the daemon: stop accepting, wake and finish every
// in-flight connection (flushing each stream's admitted work exactly
// once), checkpoint every registry via Drain, and stop the sidecar.
// ctx and Config.DrainGrace bound the wait for connections — past
// either, connections are force-closed, which still flushes their
// streams. Safe to call more than once; later calls wait for the
// first to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.state.CompareAndSwap(stateServing, stateDraining) {
		// Already draining (or stopped, or never started): wait it out.
		select {
		case <-s.done:
			if p := s.drainErr.Load(); p != nil {
				return *p
			}
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.ln.Close()
	s.nudgeConns()
	handlersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(handlersDone)
	}()
	grace := time.NewTimer(s.cfg.DrainGrace)
	defer grace.Stop()
	select {
	case <-handlersDone:
	case <-ctx.Done():
		s.closeConns()
		<-handlersDone
	case <-grace.C:
		s.closeConns()
		<-handlersDone
	}
	// Every stream is flushed; quiesce and durably checkpoint each
	// registry. A kill landing anywhere in here leaves the store at
	// its last two-rename commit — warm-startable by construction.
	var err error
	for _, name := range s.eng.RegistryNames() {
		if r := s.eng.RegistryNamed(name); r != nil {
			if e := r.Drain(); e != nil && err == nil {
				err = fmt.Errorf("server: drain registry %q: %w", name, e)
			}
		}
	}
	s.stopHTTP()
	if err != nil {
		s.drainErr.Store(&err)
	}
	s.state.Store(stateStopped)
	close(s.done)
	return err
}

// nudgeConns wakes every blocked read so handlers notice the drain.
func (s *Server) nudgeConns() {
	now := time.Now()
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}
