//go:build !race

package server

// raceEnabled: see race_on_test.go.
const raceEnabled = false
