package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"wisedb/internal/chaos"
	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/store"
	"wisedb/internal/wire"
	"wisedb/internal/workload"
)

// gap is the virtual arrival spacing that keeps the engine in true
// steady state: every query finishes before the next arrives, so
// batches stay size 1 and the allocation-free allFresh path runs.
const gap = 7 * time.Minute

var (
	baseOnce  sync.Once
	baseModel *core.Model
	baseErr   error
)

// testModel trains one small base model per test binary; every server
// test shares it (training dominates test wall-clock otherwise).
func testModel(t testing.TB) *core.Model {
	t.Helper()
	baseOnce.Do(func() {
		env := schedule.NewEnv(workload.DefaultTemplates(4), cloud.DefaultVMTypes(1))
		cfg := core.DefaultTrainConfig()
		cfg.NumSamples = 80
		cfg.SampleSize = 6
		cfg.Seed = 11
		baseModel, baseErr = core.MustNewAdvisor(env, cfg).
			Train(sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	})
	if baseErr != nil {
		t.Fatal(baseErr)
	}
	return baseModel
}

func testEngine(t testing.TB) *core.OnlineScheduler {
	t.Helper()
	return core.NewOnlineScheduler(testModel(t), core.DefaultOnlineOptions())
}

// startServer builds and starts a server on a loopback port, wiring a
// drain into test cleanup.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = testEngine(t)
	}
	if cfg.Addr == "" && cfg.Listener == nil {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func testClientOptions() Options {
	return Options{
		Clock:   wire.ClockVirtual,
		Timeout: 10 * time.Second,
		Retry:   core.RetryPolicy{CheckpointAttempts: 4, CheckpointBackoff: 2 * time.Millisecond},
	}
}

func TestRoundTrip(t *testing.T) {
	s := startServer(t, Config{})
	c, err := Dial(s.Addr().String(), testClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Templates != 4 || c.MaxBatch != wire.MaxBatch {
		t.Fatalf("welcome advertised templates=%d maxBatch=%d", c.Templates, c.MaxBatch)
	}
	q := []wire.Query{{}}
	for i := 0; i < 20; i++ {
		q[0] = wire.Query{Template: uint32(i % 4), Tag: uint32(i)}
		acc, shed, draining, err := c.Submit(q, time.Duration(i)*gap, 0)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if acc != 1 || shed != 0 || draining {
			t.Fatalf("submit %d: acc=%d shed=%d draining=%v", i, acc, shed, draining)
		}
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 20 || res.Shed != 0 {
		t.Fatalf("result completed=%d shed=%d, want 20/0", res.Completed, res.Shed)
	}
	if res.Cost <= 0 {
		t.Fatalf("served stream reports non-positive cost %v", res.Cost)
	}
	st := s.Stats()
	if st.Admitted != 20 || st.Completed != 20 || st.StreamsServed != 1 {
		t.Fatalf("stats admitted=%d completed=%d streams=%d", st.Admitted, st.Completed, st.StreamsServed)
	}
	if st.State != "serving" {
		t.Fatalf("state %q, want serving", st.State)
	}
}

func TestUnknownRegistryRejected(t *testing.T) {
	s := startServer(t, Config{})
	opts := testClientOptions()
	opts.Registry = "no-such-registry"
	opts.DialAttempts = 1
	if _, err := Dial(s.Addr().String(), opts); err == nil {
		t.Fatal("dial to unknown registry succeeded")
	}
}

func TestMaxConnsRejectsExcess(t *testing.T) {
	s := startServer(t, Config{MaxConns: 1})
	c1, err := Dial(s.Addr().String(), testClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	opts := testClientOptions()
	opts.DialAttempts = 1
	if _, err := Dial(s.Addr().String(), opts); err == nil || !strings.Contains(err.Error(), "max connections") {
		t.Fatalf("second dial past the cap: %v", err)
	}
	if got := s.Stats().RejectedConns; got != 1 {
		t.Fatalf("rejected_conns = %d, want 1", got)
	}
}

func TestAdmissionControlShedsBeforeEngine(t *testing.T) {
	s := startServer(t, Config{AdmitRate: 0.001, AdmitBurst: 5})
	c, err := Dial(s.Addr().String(), testClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := make([]wire.Query, 8)
	for i := range q {
		q[i] = wire.Query{Template: uint32(i % 4), Tag: uint32(i)}
	}
	acc, shed, _, err := c.Submit(q, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 5 || shed != 3 {
		t.Fatalf("burst of 8 into bucket of 5: acc=%d shed=%d", acc, shed)
	}
	res, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 5 || res.Shed != 3 {
		t.Fatalf("result completed=%d shed=%d, want 5/3", res.Completed, res.Shed)
	}
	st := s.Stats()
	if st.Admitted != 5 || st.Shed != 3 {
		t.Fatalf("stats admitted=%d shed=%d", st.Admitted, st.Shed)
	}
	// The network-level shed lands in the engine's ledger too — the
	// same counter MaxBacklog shedding uses.
	if st.Scale.ShedArrivals != 3 {
		t.Fatalf("engine ShedArrivals = %d, want 3", st.Scale.ShedArrivals)
	}
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(1000, 10)
	if got := b.take(4); got != 4 {
		t.Fatalf("take(4) from full bucket = %d", got)
	}
	if got := b.take(100); got < 6 {
		t.Fatalf("partial take = %d, want >= 6", got)
	}
	// A drained bucket refills at the configured rate.
	b.mu.Lock()
	b.tokens = 0
	b.last = time.Now().Add(-10 * time.Millisecond) // ≈10 tokens accrued
	b.mu.Unlock()
	if got := b.take(100); got < 5 {
		t.Fatalf("refilled take = %d, want >= 5", got)
	}
	// Refill never exceeds the burst.
	b.mu.Lock()
	b.tokens = 0
	b.last = time.Now().Add(-time.Hour)
	b.mu.Unlock()
	if got := b.take(1000); got > 10 {
		t.Fatalf("take after long idle = %d, burst is 10", got)
	}
}

func TestProtocolGarbageGetsTypedError(t *testing.T) {
	s := startServer(t, Config{})
	raw, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A well-framed body with an unknown type: the server must answer
	// with an Error frame, not hang up silently.
	raw.Write([]byte{2, 0, 0, 0, 99, 0})
	var f wire.Frame
	if _, err := wire.ReadFrame(bufio.NewReader(raw), nil, &f); err != nil {
		t.Fatalf("reading error frame: %v", err)
	}
	if f.Type != wire.TypeError {
		t.Fatalf("frame type %d, want Error", f.Type)
	}
	if got := s.Stats().ProtocolErrors; got == 0 {
		t.Fatal("protocol error not counted")
	}
}

func TestHTTPSidecar(t *testing.T) {
	s := startServer(t, Config{HTTPAddr: "127.0.0.1:0"})
	base := "http://" + s.HTTPAddr().String()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d", code)
	}
	_, body := get("/stats")
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/stats is not JSON: %v\n%s", err, body)
	}
	if st.State != "serving" {
		t.Fatalf("/stats state %q, want serving", st.State)
	}
	// Readiness flips the moment the drain starts — before connections
	// close — so load balancers stop routing first. Liveness holds.
	s.state.Store(stateDraining)
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", code)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", code)
	}
	s.state.Store(stateServing) // restore for the cleanup drain
}

// driveLoad runs n concurrent tenant clients that submit single-query
// frames with steady virtual spacing until the server errors them out
// (drain) or stop closes. Returns after every client exits.
func driveLoad(addr string, n int, stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				opts := testClientOptions()
				opts.Tenant = fmt.Sprintf("tenant-%d", w)
				opts.DialAttempts = 2
				c, err := Dial(addr, opts)
				if err != nil {
					return // listener gone: the drain has begun
				}
				q := []wire.Query{{}}
				for i := 0; i < 200; i++ {
					q[0] = wire.Query{Template: uint32(i % 4), Tag: uint32(i % 8)}
					_, _, draining, err := c.Submit(q, time.Duration(i)*gap, 0)
					if err != nil || draining {
						break
					}
				}
				c.Finish() // best-effort: the server may already be gone
				c.Close()
			}
		}(w)
	}
	return &wg
}

// waitStats polls the server's counters until cond holds or the
// deadline passes.
func waitStats(t *testing.T, s *Server, d time.Duration, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond(s.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("stats condition not reached in %v: %+v", d, s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainExactlyOnce is the SIGTERM-drain invariant under load (and
// under -race in CI): Shutdown mid-burst must flush every in-flight
// stream so each admitted arrival completes exactly once, checkpoint
// the registry, and leave the store warm-startable — a fresh engine
// built from it schedules a probe stream bit-identically to the
// original.
func TestDrainExactlyOnce(t *testing.T) {
	base := testModel(t)
	dir := t.TempDir()
	ms, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewOnlineScheduler(base, core.DefaultOnlineOptions())
	if err := eng.Registry().CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{Engine: eng, DrainGrace: 10 * time.Second})
	stop := make(chan struct{})
	wg := driveLoad(s.Addr().String(), 4, stop)

	// Let real load reach the engine, then pull the plug mid-burst.
	waitStats(t, s, 10*time.Second, func(st Stats) bool { return st.Admitted >= 40 })
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.State != "stopped" {
		t.Fatalf("state %q after drain", st.State)
	}
	if st.Admitted == 0 || st.Admitted != st.Completed {
		t.Fatalf("admitted %d != completed %d: arrivals lost or duplicated across the drain", st.Admitted, st.Completed)
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("Done() not closed after drain")
	}

	// The store warm-starts bit-identically: a reopened store serves the
	// same latest payload, and an engine built from it schedules a probe
	// stream exactly like the original engine.
	lin1, data1, err := ms.Latest()
	if err != nil {
		t.Fatal(err)
	}
	ms2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lin2, data2, err := ms2.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if lin1.Epoch != lin2.Epoch || !bytes.Equal(data1, data2) {
		t.Fatal("reopened store diverges from the drained store")
	}
	eng2, err := core.NewOnlineSchedulerFromStore(ms2, core.DefaultOnlineOptions())
	if err != nil {
		t.Fatal(err)
	}
	res1 := probeStream(t, eng)
	res2 := probeStream(t, eng2)
	if res1.Cost != res2.Cost || res1.Penalty != res2.Penalty ||
		len(res1.Outcomes) != len(res2.Outcomes) || res1.VMsRented != res2.VMsRented {
		t.Fatalf("warm-started engine diverges:\noriginal:   cost=%v penalty=%v outcomes=%d vms=%d\nwarm-start: cost=%v penalty=%v outcomes=%d vms=%d",
			res1.Cost, res1.Penalty, len(res1.Outcomes), res1.VMsRented,
			res2.Cost, res2.Penalty, len(res2.Outcomes), res2.VMsRented)
	}
}

// probeStream drives a fixed in-process arrival sequence and returns
// its result; two engines serving the same model must agree on it
// bit-for-bit.
func probeStream(t *testing.T, eng *core.OnlineScheduler) *core.OnlineResult {
	t.Helper()
	clk := &core.SimClock{}
	st := eng.NewStream(clk)
	for i := 0; i < 12; i++ {
		clk.Advance(time.Duration(i) * gap)
		q := workload.Query{TemplateID: i % 4, Tag: i}
		if err := st.Submit(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	res := st.Finish()
	st.Close()
	return res
}

// TestChaosAcceptance is the PR's chaos gate under one seed: stalled
// and dropped connections at the listener, overload shedding at the
// token bucket, and a SIGTERM drain mid-burst — with zero
// admitted-arrival loss, a clean exit, and a store that warm-starts
// and serves.
func TestChaosAcceptance(t *testing.T) {
	base := testModel(t)
	dir := t.TempDir()
	ms, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewOnlineScheduler(base, core.DefaultOnlineOptions())
	if err := eng.Registry().CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	spec := chaos.Spec{
		Seed: 1302,
		Net: chaos.NetFaultSpec{
			DropRate:  0.25,
			StallRate: 0.25,
			StallFor:  5 * time.Millisecond,
			MinBytes:  32,
			MaxBytes:  256,
		},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{
		Engine:       eng,
		Listener:     spec.WrapListener(ln),
		AdmitRate:    200,
		AdmitBurst:   20,
		ReadTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		DrainGrace:   10 * time.Second,
	})
	stop := make(chan struct{})
	wg := driveLoad(ln.Addr().String(), 6, stop)

	// Wait for the scenario to actually bite: load admitted, overload
	// shed, and enough connections for the fault fates to have fired.
	waitStats(t, s, 20*time.Second, func(st Stats) bool {
		return st.Admitted >= 100 && st.Shed > 0 && st.AcceptedConns >= 8
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain under chaos: %v", err)
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.Admitted != st.Completed {
		t.Fatalf("admitted %d != completed %d under chaos: admitted arrivals lost", st.Admitted, st.Completed)
	}
	if st.Shed == 0 {
		t.Fatal("overload never shed; the scenario did not exercise admission control")
	}
	// Dropped connections force reconnects: accepted connections must
	// exceed the tenant count for the fault fates to have fired.
	if st.AcceptedConns <= 6 {
		t.Fatalf("accepted_conns = %d: no connection faults fired", st.AcceptedConns)
	}

	// The drained store warm-starts and serves.
	ms2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := core.NewOnlineSchedulerFromStore(ms2, core.DefaultOnlineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res := probeStream(t, eng2); len(res.Outcomes) != 12 {
		t.Fatalf("warm-started engine completed %d of 12 probe arrivals", len(res.Outcomes))
	}
}

// nopConn is a net.Conn that discards writes; the allocation pin needs
// a conn for deadline calls only.
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)         { return 0, io.EOF }
func (nopConn) Write(p []byte) (int, error)        { return len(p), nil }
func (nopConn) Close() error                       { return nil }
func (nopConn) LocalAddr() net.Addr                { return nil }
func (nopConn) RemoteAddr() net.Addr               { return nil }
func (nopConn) SetDeadline(t time.Time) error      { return nil }
func (nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(t time.Time) error { return nil }

// TestNetArrivalSteadyStateAllocFree pins the engine's 0 allocs/arrival
// invariant through the network decode path: frame decode → admission →
// virtual clock advance → SubmitDeadline → ack encode, all on the
// connection's reused buffers. Mirrors core's
// TestOnlineArrivalSteadyStateAllocFree on the wire side.
func TestNetArrivalSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	eng := testEngine(t)
	s, err := New(Config{Engine: eng, Addr: "unused", AdmitRate: 1e9, AdmitBurst: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	clk := &core.SimClock{}
	stream, err := eng.NewStreamOn(core.DefaultRegistry, clk)
	if err != nil {
		t.Fatal(err)
	}
	stream.Reserve(300)
	src := bytes.NewReader(nil)
	cn := &conn{
		c:      nopConn{},
		br:     bufio.NewReaderSize(src, 64<<10),
		bw:     bufio.NewWriterSize(io.Discard, 64<<10),
		buf:    make([]byte, 0, 4096),
		out:    make([]byte, 0, 256),
		stream: stream,
		clock:  clk,
	}
	frameBuf := make([]byte, 0, 256)
	q := []wire.Query{{}}
	i := 0
	arrival := func() error {
		q[0] = wire.Query{Template: uint32(i % 4), Tag: uint32(i % 8)}
		frame, err := wire.AppendSubmit(frameBuf[:0], uint32(i+1), (time.Duration(i) * gap).Microseconds(), 0, q)
		if err != nil {
			return err
		}
		frameBuf = frame
		src.Reset(frame)
		cn.br.Reset(src)
		if cn.buf, err = wire.ReadFrame(cn.br, cn.buf, &cn.f); err != nil {
			return err
		}
		i++
		return s.handleSubmit(cn)
	}
	// Warm up past pool growth, tag-table growth, and the first VM
	// rentals; then every arrival must be allocation-free.
	for n := 0; n < 130; n++ {
		if err := arrival(); err != nil {
			t.Fatalf("warmup arrival %d: %v", n, err)
		}
	}
	allocs := testing.AllocsPerRun(60, func() {
		if err := arrival(); err != nil {
			t.Fatalf("measured arrival: %v", err)
		}
	})
	if allocs >= 1 {
		t.Fatalf("network arrival path allocates %.1f times per arrival, want 0", allocs)
	}
	res := stream.Finish()
	if len(res.Outcomes) != i {
		t.Fatalf("completed %d of %d arrivals", len(res.Outcomes), i)
	}
	stream.Close()
}
