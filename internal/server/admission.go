package server

import (
	"sync"
	"time"
)

// tokenBucket is the daemon's admission controller: a classic
// rate/burst bucket taken from on every Submit frame, *before* the
// engine sees the batch. Shedding here (instead of inside placement)
// keeps overload cost at the price of a decode — the advisor never
// spends a microsecond on work the server cannot afford — and the shed
// counters land in the same ledger as the engine's internal MaxBacklog
// shedding (OnlineResult.ShedArrivals, ScaleStats.ShedArrivals).
//
// The refill is lazy: tokens accrue on each take from the elapsed
// wall-clock time, so an idle bucket costs nothing. A mutex (not CAS)
// guards the two floats — the critical section is tens of nanoseconds,
// far below the per-frame syscall cost that bounds connection
// throughput, and it keeps partial takes (admit 3 of 5) exact.
type tokenBucket struct {
	rate  float64 // tokens per second
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst), // start full: admit the first burst
		last:   time.Now(),
	}
}

// take admits up to n queries, returning how many got tokens. The
// remainder is the caller's to shed. Partial admission sheds the
// newest queries of the batch — the same newest-first-sheddable rule
// the engine's MaxBacklog applies.
func (b *tokenBucket) take(n int) int {
	if n <= 0 {
		return 0
	}
	now := time.Now()
	b.mu.Lock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	admit := n
	if b.tokens < float64(n) {
		admit = int(b.tokens)
	}
	b.tokens -= float64(admit)
	b.mu.Unlock()
	return admit
}
