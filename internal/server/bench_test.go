package server

import (
	"context"
	"testing"
	"time"

	"wisedb/internal/wire"
)

// BenchmarkNetArrival measures the end-to-end network arrival path over
// loopback TCP: a pipelined client window of Submit frames against the
// daemon's pooled decode → admission → placement → ack loop. Compare
// with core's BenchmarkOnlineArrival for the network tax over the
// in-process ceiling.
func BenchmarkNetArrival(b *testing.B) {
	s, err := New(Config{Engine: testEngine(b), Addr: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	c, err := Dial(s.Addr().String(), testClientOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const window = 64
	q := []wire.Query{{}}
	drain := func(to int) {
		for c.Pending() > to {
			if _, _, _, err := c.ReadAck(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q[0] = wire.Query{Template: uint32(i % 4), Tag: uint32(i % 8)}
		if err := c.Send(q, time.Duration(i)*gap, 0); err != nil {
			b.Fatal(err)
		}
		if c.Pending() >= window {
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			drain(window / 2)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	drain(0)
	b.StopTimer()
	res, err := c.Finish()
	if err != nil {
		b.Fatal(err)
	}
	if int(res.Completed) != b.N {
		b.Fatalf("completed %d of %d arrivals", res.Completed, b.N)
	}
}
