package core

import (
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// buildState walks a problem through a sequence of actions.
func buildState(p *graph.Problem, w *workload.Workload, actions ...graph.Action) *graph.State {
	s := p.Start(w)
	for _, a := range actions {
		s = p.Apply(s, a)
	}
	return s
}

// The dominated-placement guard must override a placement whose cost
// strictly exceeds the fresh-VM alternative, and leave cheaper placements
// alone.
func TestGuardDominatedPlacement(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(2), cloud.DefaultVMTypes(1))
	// Deadline equal to the shortest template: stacking anything incurs
	// penalties that dwarf the 0.08¢ start-up fee.
	goal := sla.NewMaxLatency(env.Templates[0].BaseLatency, env.Templates, sla.DefaultPenaltyRate)
	m := &Model{Goal: goal, env: env, prob: runtimeProblem(env, goal)}
	w := &workload.Workload{Templates: env.Templates, Queries: []workload.Query{
		{TemplateID: 0, Tag: 0}, {TemplateID: 0, Tag: 1},
	}}
	s := buildState(m.prob, w,
		graph.Action{Kind: graph.Startup, VMType: 0},
		graph.Action{Kind: graph.Place, Template: 0})
	// Placing the second T0 behind the first misses the deadline by a
	// full template latency: the guard must turn it into a start-up.
	got := m.guardDominatedPlacement(s, graph.Action{Kind: graph.Place, Template: 0})
	if got.Kind != graph.Startup {
		t.Fatalf("dominated placement not overridden: %+v", got)
	}

	// With a loose goal, stacking saves the start-up fee and must pass
	// through untouched.
	loose := sla.NewMaxLatency(24*time.Hour, env.Templates, sla.DefaultPenaltyRate)
	ml := &Model{Goal: loose, env: env, prob: runtimeProblem(env, loose)}
	sl := buildState(ml.prob, w,
		graph.Action{Kind: graph.Startup, VMType: 0},
		graph.Action{Kind: graph.Place, Template: 0})
	got = ml.guardDominatedPlacement(sl, graph.Action{Kind: graph.Place, Template: 0})
	if got.Kind != graph.Place {
		t.Fatalf("beneficial stacking overridden: %+v", got)
	}
}

// The guard must never fire on an empty open VM (the fresh-VM alternative
// is identical) nor at the start vertex.
func TestGuardLeavesEmptyVMAlone(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(2), cloud.DefaultVMTypes(1))
	goal := sla.NewMaxLatency(time.Minute, env.Templates, sla.DefaultPenaltyRate)
	m := &Model{Goal: goal, env: env, prob: runtimeProblem(env, goal)}
	w := &workload.Workload{Templates: env.Templates, Queries: []workload.Query{{TemplateID: 0, Tag: 0}}}
	s := buildState(m.prob, w, graph.Action{Kind: graph.Startup, VMType: 0})
	act := graph.Action{Kind: graph.Place, Template: 0}
	if got := m.guardDominatedPlacement(s, act); got != act {
		t.Fatalf("guard fired on an empty VM: %+v", got)
	}
}

// repair must convert every invalid prediction into a valid action, for
// every reachable state shape.
func TestRepairAlwaysValid(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(2))
	goal := sla.NewPerQuery(3, env.Templates, sla.DefaultPenaltyRate)
	m := &Model{Goal: goal, env: env, prob: runtimeProblem(env, goal)}
	w := &workload.Workload{Templates: env.Templates, Queries: []workload.Query{
		{TemplateID: 0, Tag: 0}, {TemplateID: 2, Tag: 1},
	}}
	states := []*graph.State{
		m.prob.Start(w),
		buildState(m.prob, w, graph.Action{Kind: graph.Startup, VMType: 0}),
		buildState(m.prob, w,
			graph.Action{Kind: graph.Startup, VMType: 0},
			graph.Action{Kind: graph.Place, Template: 0}),
	}
	candidates := []graph.Action{
		{Kind: graph.Place, Template: 0},
		{Kind: graph.Place, Template: 1}, // never unassigned
		{Kind: graph.Place, Template: 2},
		{Kind: graph.Startup, VMType: 0},
		{Kind: graph.Startup, VMType: 1},
		{Kind: graph.Startup, VMType: 99}, // out of range
	}
	for si, s := range states {
		for _, cand := range candidates {
			got := m.repair(s, cand)
			switch got.Kind {
			case graph.Place:
				if !m.prob.CanPlace(s, got.Template) {
					t.Fatalf("state %d: repair(%+v) returned invalid placement %+v", si, cand, got)
				}
			case graph.Startup:
				if !s.CanStartup() {
					t.Fatalf("state %d: repair(%+v) returned invalid startup %+v", si, cand, got)
				}
			}
		}
	}
}

// retag must hand out each workload tag exactly once, matching templates.
func TestRetagSchedule(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(2), cloud.DefaultVMTypes(1))
	w := &workload.Workload{Templates: env.Templates, Queries: []workload.Query{
		{TemplateID: 0, Tag: 10}, {TemplateID: 1, Tag: 11}, {TemplateID: 0, Tag: 12},
	}}
	sched := &schedule.Schedule{VMs: []schedule.VM{
		{TypeID: 0, Queue: []schedule.Placed{{TemplateID: 1}, {TemplateID: 0}}},
		{TypeID: 0, Queue: []schedule.Placed{{TemplateID: 0}}},
	}}
	new(servingScratch).retag(sched, w)
	if err := sched.Validate(env, w); err != nil {
		t.Fatalf("retagged schedule invalid: %v", err)
	}
	if sched.VMs[0].Queue[0].Tag != 11 {
		t.Fatalf("template-1 query should carry tag 11, got %d", sched.VMs[0].Queue[0].Tag)
	}
}

// Scheduling the empty workload must yield an empty schedule.
func TestScheduleEmptyWorkload(t *testing.T) {
	adv := smallAdvisor(t, 3, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := m.ScheduleBatch(&workload.Workload{Templates: adv.Env().Templates})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.VMs) != 0 {
		t.Fatalf("empty workload produced %d VMs", len(sched.VMs))
	}
}

// Workloads heavily skewed to one template must still schedule completely
// and near-cheaply (§7.5: models are trained on uniform samples only).
func TestScheduleSkewedWorkload(t *testing.T) {
	adv := smallAdvisor(t, 5, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]workload.Query, 20)
	for i := range queries {
		queries[i] = workload.Query{TemplateID: 4, Tag: i} // single template
	}
	w := &workload.Workload{Templates: adv.Env().Templates, Queries: queries}
	sched, err := m.ScheduleBatch(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(adv.Env(), w); err != nil {
		t.Fatal(err)
	}
	if pen := sched.Penalty(adv.Env(), goal); pen > 60 {
		t.Fatalf("skewed workload penalty %f; model failed to spread the load (%s)", pen, sched)
	}
}
