package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// onlineBase trains a small shiftable-goal base model for the serving-engine
// tests.
func onlineBase(t testing.TB, numTemplates, numTypes int) *Model {
	t.Helper()
	env := schedule.NewEnv(workload.DefaultTemplates(numTemplates), cloud.DefaultVMTypes(numTypes))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 100
	cfg.SampleSize = 7
	cfg.Seed = 9
	m, err := MustNewAdvisor(env, cfg).Train(sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// tenantWorkloads builds k fixed-seed arrival streams of n queries each,
// with the given inter-arrival gap. Stream i is seeded by (seed, i), so the
// set is reproducible but the tenants differ.
func tenantWorkloads(templates []workload.Template, k, n int, gap time.Duration, seed int64) []*workload.Workload {
	ws := make([]*workload.Workload, k)
	for i := range ws {
		w := workload.NewSampler(templates, seed+int64(i)*101).Uniform(n)
		ws[i] = w.WithArrivals(workload.FixedDelayArrivals(n, gap))
	}
	return ws
}

// A cancelled context must abort an online run with ctx.Err() and release
// the stream — and with it every simulated VM the stream had rented
// (RunContext parity with TrainContext/AdaptContext/RecommendContext).
func TestOnlineRunContextCancel(t *testing.T) {
	base := onlineBase(t, 3, 1)
	o := NewOnlineScheduler(base, DefaultOnlineOptions())
	w := tenantWorkloads(base.Env().Templates, 1, 12, 20*time.Second, 5)[0]

	// Pre-cancelled: nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := o.RunContext(ctx, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: want context.Canceled, got %v", err)
	}
	if got := o.ActiveStreams(); got != 0 {
		t.Fatalf("cancelled stream not released: %d active", got)
	}

	// Cancelled mid-stream, from inside the third arrival's placement.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls := 0
	o.placeStarted = func(*OnlineResult) {
		calls++
		if calls == 3 {
			cancel2()
		}
	}
	res, err := o.RunContext(ctx2, w)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("mid-stream cancel: want (nil, context.Canceled), got (%v, %v)", res, err)
	}
	if got := o.ActiveStreams(); got != 0 {
		t.Fatalf("mid-stream cancelled stream not released: %d active", got)
	}
	o.placeStarted = nil

	// The engine stays serviceable after a cancellation.
	if _, err := o.Run(w); err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
	if got := o.ActiveStreams(); got != 0 {
		t.Fatalf("finished stream still counted active: %d", got)
	}
	cancel2()
}

// onlineResultFingerprint renders the deterministic fields of a result —
// everything except wall-clock timings.
func onlineResultFingerprint(res *OnlineResult) string {
	return fmt.Sprintf("cost=%.9f penalty=%.9f vms=%d arrivals=%d retrain=%d adapt=%d hits=%d drift=%d epoch=%d perf=%v",
		res.Cost, res.Penalty, res.VMsRented, len(res.PerArrival),
		res.Retrainings, res.Adaptations, res.CacheHits, res.DriftTriggers, res.FinalEpoch, res.Perf)
}

// A fixed-seed multi-stream run must produce identical per-stream results
// at any worker count (the serving-side analogue of the training
// determinism pin): stream schedules depend only on their own arrivals and
// deterministically built models, and the model counters are stream-local,
// so engine scheduling is unobservable. The 10s gaps put every stream on
// the shifted-model path, exercising the shared ω-map.
func TestMultiStreamDeterminism(t *testing.T) {
	base := onlineBase(t, 5, 2)
	ws := tenantWorkloads(base.Env().Templates, 8, 15, 10*time.Second, 77)
	var fingerprints [][]string
	for _, p := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		o := NewOnlineScheduler(base, DefaultOnlineOptions())
		results, err := o.RunStreams(context.Background(), ws, p)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		fps := make([]string, len(results))
		for i, res := range results {
			if res.Adaptations == 0 {
				t.Fatalf("parallelism %d stream %d: 10s gaps with minute-long queries must shift models", p, i)
			}
			fps[i] = onlineResultFingerprint(res)
		}
		fingerprints = append(fingerprints, fps)
	}
	for level := 1; level < len(fingerprints); level++ {
		for i := range ws {
			if fingerprints[level][i] != fingerprints[0][i] {
				t.Errorf("stream %d differs between parallelism levels:\nsequential: %s\nparallel:   %s",
					i, fingerprints[0][i], fingerprints[level][i])
			}
		}
	}
}

// shiftedStream builds a stream whose template mix flips mid-run: rounds of
// round-robin over all templates (exactly the uniform mix), then a pure run
// of the last template. Deterministic — no sampler noise around the
// detector's trigger point.
func shiftedStream(templates []workload.Template, uniform, skewed int, gap time.Duration) *workload.Workload {
	k := len(templates)
	queries := make([]workload.Query, 0, uniform+skewed)
	for i := 0; i < uniform; i++ {
		queries = append(queries, workload.Query{TemplateID: i % k, Tag: i})
	}
	for i := 0; i < skewed; i++ {
		queries = append(queries, workload.Query{TemplateID: k - 1, Tag: uniform + i})
	}
	w := &workload.Workload{Templates: templates, Queries: queries}
	return w.WithArrivals(workload.FixedDelayArrivals(uniform+skewed, gap))
}

// An injected template-mix shift must cross the EMD threshold and trigger
// exactly one adaptation (threshold 1.2 leaves the post-swap residue EMD —
// the window still holds pre-shift arrivals when the trigger fires — under
// the trigger level, so the detector goes quiet after the swap), and the
// swapped model must target the observed mix.
func TestDriftDetectorTriggersExactlyOnce(t *testing.T) {
	base := onlineBase(t, 5, 1)
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: 20, Threshold: 1.2, Synchronous: true}
	o := NewOnlineScheduler(base, opts)
	// 7m gaps keep each batch fresh: drift handling is isolated from the
	// wait-model machinery.
	w := shiftedStream(base.Env().Templates, 40, 60, 7*time.Minute)
	res, err := o.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.DriftTriggers != 1 {
		t.Fatalf("want exactly 1 drift trigger, got %d", res.DriftTriggers)
	}
	stats := o.Registry().Stats()
	if stats.Triggers != 1 || stats.Swaps != 1 || stats.Epoch != 1 || stats.Failures != 0 {
		t.Fatalf("registry: want 1 trigger/1 swap/epoch 1, got %+v", stats)
	}
	if res.FinalEpoch != 1 {
		t.Fatalf("stream finished on epoch %d, want 1", res.FinalEpoch)
	}
	if len(res.Perf) != 100 {
		t.Fatalf("dropped arrivals across the hot swap: %d of 100 completed", len(res.Perf))
	}
	// The adapted model targets the observed mix: mass concentrated on the
	// shifted-to template.
	mix := o.Registry().Current().Mix
	if last := mix[len(mix)-1]; last < 0.5 {
		t.Fatalf("swapped model's mix puts %.2f on the shifted-to template; want the majority", last)
	}
	// The swapped model retains training data, so the Shift optimization
	// keeps working against the new base.
	w2 := tenantWorkloads(base.Env().Templates, 1, 8, 10*time.Second, 3)[0]
	res2, err := o.Run(w2)
	if err != nil {
		t.Fatalf("shifted scheduling against the swapped base: %v", err)
	}
	if res2.Adaptations == 0 {
		t.Fatal("post-swap stream never adapted; Shift broke across the hot swap")
	}
}

// A synchronous drift retrain failure must never take the stream down: the
// old epoch keeps serving, every arrival completes, and the failure is
// recorded in both the stream's and the registry's counters.
func TestDriftRetrainFailureKeepsServing(t *testing.T) {
	base := onlineBase(t, 4, 1)
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: 16, Threshold: 0.8, Synchronous: true}
	o := NewOnlineScheduler(base, opts)
	boom := errors.New("retrain exploded")
	o.Registry().SetRetrain(func(context.Context, *ModelEpoch, []float64) (*Model, error) {
		return nil, boom
	})
	w := shiftedStream(base.Env().Templates, 32, 40, 7*time.Minute)
	res, err := o.Run(w)
	if err != nil {
		t.Fatalf("a failed retrain must not fail the stream, got %v", err)
	}
	if len(res.Perf) != 72 {
		t.Fatalf("%d of 72 arrivals completed across the failed retrain", len(res.Perf))
	}
	if res.DriftFailures == 0 {
		t.Fatal("the stream never recorded the retrain failure")
	}
	if res.FinalEpoch != 0 {
		t.Fatalf("stream finished on epoch %d; a failed retrain must keep epoch 0", res.FinalEpoch)
	}
	stats := o.Registry().Stats()
	if stats.Epoch != 0 || stats.Failures == 0 || !errors.Is(stats.LastErr, boom) {
		t.Fatalf("failed retrain must keep epoch 0 and record the failure, got %+v", stats)
	}
}

// A cancelled context during a synchronous drift retrain must still abort
// the stream — degradation absorbs model failures, never stop signals.
func TestDriftRetrainCancellationAbortsStream(t *testing.T) {
	base := onlineBase(t, 4, 1)
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: 16, Threshold: 0.8, Synchronous: true}
	opts.Degrade = true // even with degradation on
	o := NewOnlineScheduler(base, opts)
	ctx, cancel := context.WithCancel(context.Background())
	o.Registry().SetRetrain(func(ctx context.Context, _ *ModelEpoch, _ []float64) (*Model, error) {
		cancel()
		return nil, ctx.Err()
	})
	w := shiftedStream(base.Env().Templates, 32, 40, 7*time.Minute)
	if _, err := o.RunContext(ctx, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled to abort the stream, got %v", err)
	}
}

// Background hot-swapping under concurrent multi-stream load must never
// drop or double-schedule an in-flight arrival: every stream completes
// exactly its own queries, with exactly its own template counts. Run under
// -race in CI, this also pins the epoch/atomic.Pointer protocol.
func TestHotSwapNoDroppedArrivals(t *testing.T) {
	base := onlineBase(t, 5, 1)
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: 16, Threshold: 0.8} // background retrains
	o := NewOnlineScheduler(base, opts)
	const streams, uniform, skewed = 6, 24, 40
	ws := make([]*workload.Workload, streams)
	for i := range ws {
		ws[i] = shiftedStream(base.Env().Templates, uniform, skewed, 7*time.Minute)
	}
	results, err := o.RunStreams(context.Background(), ws, 0)
	if err != nil {
		t.Fatal(err)
	}
	o.Registry().Wait() // drain any in-flight background retrain
	for i, res := range results {
		if got, want := len(res.Perf), uniform+skewed; got != want {
			t.Fatalf("stream %d: %d of %d queries completed across hot swaps", i, got, want)
		}
		seen := make([]bool, uniform+skewed)
		for _, out := range res.Outcomes {
			if seen[out.Tag] {
				t.Fatalf("stream %d: query tag %d completed twice (double-scheduled across a hot swap)", i, out.Tag)
			}
			seen[out.Tag] = true
		}
		for tag, ok := range seen {
			if !ok {
				t.Fatalf("stream %d: query tag %d never completed (dropped across a hot swap)", i, tag)
			}
		}
	}
	stats := o.Registry().Stats()
	if stats.Failures > 0 {
		t.Fatalf("background retrain failed: %v", stats.LastErr)
	}
	if stats.Swaps == 0 {
		t.Error("mix shift across 6 streams never produced a hot swap")
	}
	t.Logf("registry: %d triggers, %d swaps, final epoch %d", stats.Triggers, stats.Swaps, stats.Epoch)
}

// A hot swap must evict derived models of superseded epochs from the
// shared ω-map: their keys can never be requested again, and keeping them
// would pin every old base model for the engine's lifetime.
func TestHotSwapEvictsSupersededDerivedModels(t *testing.T) {
	base := onlineBase(t, 3, 1)
	o := NewOnlineScheduler(base, DefaultOnlineOptions())
	s := o.NewStream(&SimClock{})
	epoch := o.Registry().Current()
	if _, err := s.shiftedModel(context.Background(), epoch, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if cached := o.cache.size(); cached != 1 {
		t.Fatalf("want 1 cached shifted model before the swap, got %d", cached)
	}
	o.Registry().Swap(base, nil)
	if cached := o.cache.size(); cached != 0 {
		t.Fatalf("superseded derived models survived the hot swap: %d entries", cached)
	}
}

// The registry must run at most one retrain at a time and swap epochs
// atomically.
func TestRegistrySingleFlight(t *testing.T) {
	base := onlineBase(t, 3, 1)
	r := NewModelRegistry(base)
	release := make(chan struct{})
	r.SetRetrain(func(context.Context, *ModelEpoch, []float64) (*Model, error) {
		<-release
		return base, nil
	})
	mix := base.TrainingMix()
	if !r.TriggerRetrain(context.Background(), mix) {
		t.Fatal("first trigger must start a retrain")
	}
	if r.TriggerRetrain(context.Background(), mix) {
		t.Fatal("second trigger must be rejected while one is in flight")
	}
	if err := r.RetrainNow(context.Background(), mix); !errors.Is(err, errRetrainInFlight) {
		t.Fatalf("synchronous retrain during an in-flight one: want errRetrainInFlight, got %v", err)
	}
	close(release)
	r.Wait()
	stats := r.Stats()
	if stats.Triggers != 1 || stats.Swaps != 1 || stats.Epoch != 1 {
		t.Fatalf("want 1 trigger/1 swap/epoch 1 after drain, got %+v", stats)
	}
}

// The clock-agnostic stream core must run against wall-clock time: live
// Submit calls timestamp events with real elapsed time and produce a
// complete, costed result.
func TestWallClockStream(t *testing.T) {
	base := onlineBase(t, 3, 1)
	o := NewOnlineScheduler(base, DefaultOnlineOptions())
	s := o.NewStream(NewWallClock())
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := s.Submit(ctx, workload.Query{TemplateID: i % 3, Tag: i}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if got := o.ActiveStreams(); got != 1 {
		t.Fatalf("one open stream, gauge reads %d", got)
	}
	res := s.Finish()
	if len(res.Perf) != 5 || res.Cost <= 0 {
		t.Fatalf("wall-clock stream: %d completions, cost %.2f", len(res.Perf), res.Cost)
	}
	if got := o.ActiveStreams(); got != 0 {
		t.Fatalf("finished stream still counted: %d", got)
	}
	if err := s.Submit(ctx, workload.Query{TemplateID: 0, Tag: 9}); err == nil {
		t.Fatal("Submit after Finish must error")
	}
}

// The steady-state per-arrival path of the serving engine must be
// allocation-free: with bookkeeping capacity reserved and the base model
// serving (fresh batches), an arrival performs zero heap allocations —
// revocation, drift observation, tree parsing, schedule materialization,
// and placement all run in reused storage. The bound of <1 alloc/arrival
// tolerates a rare sync.Pool refill after a GC; any real per-arrival
// allocation costs ≥1 and fails.
func TestOnlineArrivalSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	base := onlineBase(t, 5, 1)
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: 32} // drift observe is on the measured path
	o := NewOnlineScheduler(base, opts)
	clk := &SimClock{}
	s := o.NewStream(clk)
	s.Reserve(260)
	ctx := context.Background()
	k := len(base.Env().Templates)
	next := 0
	// 7m gaps: each query finishes before the next arrives, so batches
	// stay size 1 and the VM fleet stops growing — true steady state.
	submit := func() {
		clk.Advance(time.Duration(next) * 7 * time.Minute)
		if err := s.Submit(ctx, workload.Query{TemplateID: next % k, Tag: next}); err != nil {
			t.Fatal(err)
		}
		next++
	}
	for next < 130 {
		submit()
	}
	allocs := testing.AllocsPerRun(60, submit)
	t.Logf("%.3f allocs per arrival in steady state", allocs)
	if allocs >= 1 {
		t.Errorf("steady-state arrival allocates (%.2f allocs/arrival); want 0 (stream scratch regression?)", allocs)
	}
	s.Finish()
}

// A 16-stream fixed-seed load test must scale arrival throughput with the
// worker pool. The full ≥8× acceptance bar needs a many-core runner; on
// smaller machines the bar scales down, and below 4 cores only correctness
// is checked (same policy as the PR 1 training-speedup note — the dev box
// has 1 core, CI has more).
func TestMultiStreamThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := onlineBase(t, 5, 2)
	const streams, n = 16, 150
	ws := tenantWorkloads(base.Env().Templates, streams, n, 7*time.Minute, 321)

	run := func(k, parallelism int) time.Duration {
		o := NewOnlineScheduler(base, DefaultOnlineOptions())
		start := time.Now()
		results, err := o.RunStreams(context.Background(), ws[:k], parallelism)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if len(res.Perf) != n {
				t.Fatalf("stream %d completed %d of %d queries", i, len(res.Perf), n)
			}
		}
		return elapsed
	}
	run(1, 1) // warm model caches and pools
	single := run(1, 1)
	multi := run(streams, streams)
	thrSingle := float64(n) / single.Seconds()
	thrMulti := float64(streams*n) / multi.Seconds()
	speedup := thrMulti / thrSingle
	t.Logf("single-stream %.0f arrivals/s; %d streams %.0f arrivals/s; speedup %.1fx on %d cores",
		thrSingle, streams, thrMulti, speedup, runtime.GOMAXPROCS(0))

	procs := runtime.GOMAXPROCS(0)
	var want float64
	switch {
	case procs >= 10:
		want = 8
	case procs >= 4:
		want = float64(procs) / 2
	default:
		t.Skipf("%d cores: throughput-scaling assertion needs >= 4", procs)
	}
	if speedup < want {
		t.Errorf("16-stream speedup %.2fx below %.1fx on %d cores", speedup, want, procs)
	}
}
