package core

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// trainWithParallelism trains one model at the given worker count, all other
// configuration held fixed.
func trainWithParallelism(t *testing.T, parallelism int) *Model {
	t.Helper()
	env := schedule.NewEnv(workload.DefaultTemplates(5), cloud.DefaultVMTypes(2))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 80
	cfg.SampleSize = 7
	cfg.Seed = 42
	cfg.Parallelism = parallelism
	adv := MustNewAdvisor(env, cfg)
	m, err := adv.Train(sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Training must be bit-identical for every worker count: per-sample
// sub-seeds make sample i the same workload no matter which worker draws
// it, results fold into the training set in sample order, and the
// transposition cache (enabled by default here) publishes suffixes only at
// generation barriers, so which searches hit the cache is also independent
// of scheduling — pinned by comparing the hit counters, not just the trees.
func TestTrainParallelDeterminism(t *testing.T) {
	base := trainWithParallelism(t, 1)
	if base.TrainingCacheHits == 0 {
		t.Error("sequential training recorded no transposition-cache hits; cross-sample reuse is broken")
	}
	for _, p := range []int{4, runtime.GOMAXPROCS(0)} {
		m := trainWithParallelism(t, p)
		if m.TrainingRows != base.TrainingRows {
			t.Fatalf("parallelism %d: %d training rows, sequential built %d", p, m.TrainingRows, base.TrainingRows)
		}
		if got, want := m.Dump(), base.Dump(); got != want {
			t.Errorf("parallelism %d: tree differs from sequential run\nsequential:\n%s\nparallel:\n%s", p, want, got)
		}
		if m.TrainingCacheHits != base.TrainingCacheHits || m.TrainingCacheMisses != base.TrainingCacheMisses {
			t.Errorf("parallelism %d: cache counters (%d hits, %d misses) differ from sequential (%d, %d)",
				p, m.TrainingCacheHits, m.TrainingCacheMisses, base.TrainingCacheHits, base.TrainingCacheMisses)
		}
	}
}

// Disabling the transposition cache must still train successfully (it may
// pick different equal-cost optima, so only behavior, not tree identity, is
// compared) and must record zero cache traffic.
func TestTrainWithoutSearchCache(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(5), cloud.DefaultVMTypes(2))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 40
	cfg.SampleSize = 6
	cfg.Seed = 42
	cfg.DisableSearchCache = true
	adv := MustNewAdvisor(env, cfg)
	m, err := adv.Train(sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainingCacheHits != 0 || m.TrainingCacheMisses != 0 {
		t.Fatalf("cache disabled but counters report (%d, %d)", m.TrainingCacheHits, m.TrainingCacheMisses)
	}
	w := workload.NewSampler(env.Templates, 7).Uniform(30)
	sched, err := m.ScheduleBatch(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(env, w); err != nil {
		t.Fatal(err)
	}
}

// Adaptive re-training must also be deterministic across worker counts.
func TestAdaptParallelDeterminism(t *testing.T) {
	var dumps []string
	for _, p := range []int{1, 4} {
		m := trainWithParallelism(t, p)
		adapted, err := m.Tighten(0.3)
		if err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, adapted.Dump())
	}
	if dumps[0] != dumps[1] {
		t.Errorf("adapted tree differs between 1 and 4 workers\nworkers=1:\n%s\nworkers=4:\n%s", dumps[0], dumps[1])
	}
}

// One trained Model must serve batch scheduling from many goroutines at
// once: run with -race, every goroutine must produce the exact schedule the
// sequential call produces.
func TestModelConcurrentScheduling(t *testing.T) {
	m := trainWithParallelism(t, 0)
	sampler := workload.NewSampler(m.Env().Templates, 99)
	workloads := make([]*workload.Workload, 8)
	want := make([]string, len(workloads))
	for i := range workloads {
		workloads[i] = sampler.Uniform(30)
		sched, err := m.ScheduleBatch(workloads[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = sched.String()
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4*len(workloads))
	for round := 0; round < 4; round++ {
		for i := range workloads {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sched, err := m.ScheduleBatch(workloads[i])
				if err != nil {
					errs <- err
					return
				}
				if got := sched.String(); got != want[i] {
					t.Errorf("workload %d: concurrent schedule %s, sequential %s", i, got, want[i])
				}
				if err := sched.Validate(m.Env(), workloads[i]); err != nil {
					errs <- err
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// A canceled context must abort training with the context's error.
func TestTrainContextCancel(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(5), cloud.DefaultVMTypes(1))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 200
	cfg.SampleSize = 8
	adv := MustNewAdvisor(env, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	if _, err := adv.TrainContext(ctx, goal); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// NewAdvisor must reject bad configuration with errors, not panics, and
// fill a zero-value TrainConfig with usable defaults.
func TestNewAdvisorValidation(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(2), cloud.DefaultVMTypes(1))

	adv, err := NewAdvisor(env, TrainConfig{})
	if err != nil {
		t.Fatalf("zero-value TrainConfig must default-fill, got error: %v", err)
	}
	def := DefaultTrainConfig()
	if got := adv.Config(); got.NumSamples != def.NumSamples || got.SampleSize != def.SampleSize {
		t.Fatalf("zero-value config normalized to N=%d m=%d, want defaults N=%d m=%d",
			got.NumSamples, got.SampleSize, def.NumSamples, def.SampleSize)
	}

	if _, err := NewAdvisor(nil, DefaultTrainConfig()); err == nil {
		t.Fatal("want error for nil environment")
	}
	if _, err := NewAdvisor(env, TrainConfig{NumSamples: -1}); err == nil {
		t.Fatal("want error for negative NumSamples")
	}
	if _, err := NewAdvisor(env, TrainConfig{SampleSize: -2}); err == nil {
		t.Fatal("want error for negative SampleSize")
	}
	if _, err := NewAdvisor(env, TrainConfig{Parallelism: -1}); err == nil {
		t.Fatal("want error for negative Parallelism")
	}
	empty := &schedule.Env{}
	if _, err := NewAdvisor(empty, DefaultTrainConfig()); err == nil {
		t.Fatal("want error for an environment with no templates")
	}
}
