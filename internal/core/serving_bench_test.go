package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// benchModel trains one small model for the serving benchmarks. Training
// scale is deliberately modest — the benchmarks measure serving, not
// training — and fully deterministic so before/after runs compare the same
// tree.
func benchModel(b *testing.B) *Model {
	b.Helper()
	env := schedule.NewEnv(workload.DefaultTemplates(5), cloud.DefaultVMTypes(2))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 60
	cfg.SampleSize = 7
	cfg.Seed = 7
	adv := MustNewAdvisor(env, cfg)
	m, err := adv.Train(sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkScheduleBatch measures the model-serving hot path (§6.2, §7.4):
// one complete batch schedule per iteration, at the paper's "heavy traffic"
// sizes. Allocations per op are the serving-path regression signal — the
// pooled scratch should keep them O(1) amortized per query.
func BenchmarkScheduleBatch(b *testing.B) {
	m := benchModel(b)
	for _, n := range []int{10, 30, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			w := workload.NewSampler(m.Env().Templates, 11).Uniform(n)
			if _, err := m.ScheduleBatch(w); err != nil {
				b.Fatal(err) // warm the scratch pool before measuring
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.ScheduleBatch(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineArrival measures the per-arrival serving overhead of
// online scheduling (§6.3, Fig. 19's metric): a stream of arrivals each
// revoking and re-scheduling the unstarted backlog. WaitResolution is set
// above the stream length so every wait buckets to zero and each arrival
// serves from the base model — the benchmark isolates the arrival machinery
// (revocation, re-batching, tree parsing, placement) from model
// acquisition, which Fig. 16/19 benchmarks cover.
func BenchmarkOnlineArrival(b *testing.B) {
	m := benchModel(b)
	opts := DefaultOnlineOptions()
	opts.WaitResolution = time.Hour
	queries := workload.NewSampler(m.Env().Templates, 13).Uniform(40).Queries
	for i := range queries {
		queries[i].Arrival = time.Duration(i) * 5 * time.Second
	}
	w := &workload.Workload{Templates: m.Env().Templates, Queries: queries}
	b.ReportAllocs()
	b.ResetTimer()
	var arrivals int
	for i := 0; i < b.N; i++ {
		o := NewOnlineScheduler(m, opts)
		res, err := o.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		arrivals += len(res.PerArrival)
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(arrivals), "ns/arrival")
	}
}

// BenchmarkOnlineMultiStream measures the multi-tenant serving engine: K
// concurrent tenant streams over the shared worker pool, fresh-batch
// arrivals (the steady-state path). arrivals/sec is the headline throughput
// metric CI persists in BENCH_serving.json; the streams=1 case is the
// single-tenant baseline the 16-stream acceptance bar compares against.
func BenchmarkOnlineMultiStream(b *testing.B) {
	m := benchModel(b)
	const n = 60
	for _, streams := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			ws := make([]*workload.Workload, streams)
			for i := range ws {
				w := workload.NewSampler(m.Env().Templates, int64(17+i)).Uniform(n)
				ws[i] = w.WithArrivals(workload.FixedDelayArrivals(n, 7*time.Minute))
			}
			o := NewOnlineScheduler(m, DefaultOnlineOptions())
			if _, err := o.RunStreams(context.Background(), ws, 0); err != nil {
				b.Fatal(err) // warm pools before measuring
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.RunStreams(context.Background(), ws, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				perSec := float64(b.N*streams*n) / b.Elapsed().Seconds()
				b.ReportMetric(perSec, "arrivals/sec")
			}
		})
	}
}
