package core

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/heuristics"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/store"
	"wisedb/internal/workload"
)

// OnlineOptions tunes online scheduling (§6.3) and the serving engine built
// around it.
type OnlineOptions struct {
	// Reuse enables the model-reuse optimization (§6.3.1): models built
	// for a given pattern of query waits (the ω-map) are cached and
	// reused when the same pattern recurs. The cache is shared by every
	// stream of the engine, with duplicate builds suppressed — when two
	// tenants need the same model at once, exactly one builds it.
	Reuse bool
	// Shift enables the linear-shifting optimization (§6.3.1): for
	// shiftable goals (Max, PerQuery), a batch whose queries have waited
	// is scheduled by adaptively shifting the base model's goal instead
	// of training a model for augmented templates.
	Shift bool
	// WaitResolution buckets query waits when keying cached models and
	// building augmented templates; the paper observes two batches can
	// share a model when their ω differ by less than the latency
	// predictor's error. Default 1s.
	WaitResolution time.Duration
	// Retrain configures the from-scratch training used when neither
	// optimization applies. A zero value (NumSamples == 0) re-trains at
	// the base model's own scale — the paper's unoptimized baseline.
	Retrain TrainConfig
	// Drift configures workload-drift detection and model hot-swapping
	// (§6's adaptive loop). Disabled by default; see DriftOptions.
	Drift DriftOptions
	// CacheShards is the stripe count of the engine-wide ω-map. Zero
	// selects DefaultCacheShards; values are rounded up to a power of
	// two. One stripe reproduces the old single-lock cache — useful only
	// as a contention measurement baseline.
	CacheShards int
	// Shards is the number of engine shards for consistent-hash tenant
	// placement (RunTenants): worker-pool partitions with shard-local
	// run queues and stream scratch. Zero selects GOMAXPROCS. Streams
	// can be migrated between shards live (Rebalance) without dropping
	// or doubling in-flight arrivals.
	Shards int
	// Retry is the failure discipline applied to every registry the
	// engine hosts: retrain backoff + circuit breaker (measured in
	// drift-trigger attempts, so it stays deterministic under SimClock)
	// and bounded checkpoint retry. Zero fields take defaults; negative
	// fields disable. See RetryPolicy.
	Retry RetryPolicy
	// Degrade enables graceful degradation: an arrival whose model
	// acquisition or placement fails is scheduled by the first-fit
	// heuristic on the engine's fallback VM type instead of failing the
	// stream. Degraded mode is sticky per epoch — once a stream degrades
	// it stays on the heuristic until a new epoch installs (context
	// cancellation still aborts). Off by default: replay and analysis
	// callers usually want model-path errors surfaced, not absorbed.
	Degrade bool
	// MaxBacklog sheds load admission-control-style while degraded: when
	// an arrival event's batch (re-admitted backlog + new arrivals)
	// exceeds MaxBacklog, newly arrived queries beyond the bound are
	// dropped (never re-admitted work — a query admitted once completes
	// exactly once). 0 disables shedding. Only active in degraded mode.
	MaxBacklog int
	// Prices is an optional spot-style time-varying VM price schedule.
	// Every stream's simulator charges leases per the schedule (see
	// cloud.Sim.SetPrices), and the serving loop's dominated-placement
	// guard compares open-VM placement against fresh-VM rental at the
	// multiplier in effect at each arrival instant, so scheduling and
	// accounting see the same prices. Nil means flat base prices; a flat
	// all-1.0 schedule is bit-identical to nil.
	Prices *cloud.PriceSchedule
}

// DefaultOnlineOptions enables both optimizations and re-trains augmented
// models at the base model's scale when training from scratch is required.
// Drift detection stays off; enable it by setting Drift.Window.
func DefaultOnlineOptions() OnlineOptions {
	return OnlineOptions{
		Reuse:          true,
		Shift:          true,
		WaitResolution: time.Second,
	}
}

// OnlineResult reports the outcome of scheduling one arrival stream.
type OnlineResult struct {
	// Cost is the total monetary cost in cents: start-up fees,
	// processing fees, and the goal penalty over true query latencies
	// (completion − arrival).
	Cost float64
	// Penalty is the SLA penalty component of Cost.
	Penalty float64
	// Perf holds each query's true latency.
	Perf []sla.QueryPerf
	// VMsRented counts VMs provisioned over the stream.
	VMsRented int
	// SchedulingTime is the total advisor time across arrivals (model
	// acquisition + tree parsing) — the overhead Fig. 19 reports.
	SchedulingTime time.Duration
	// PerArrival holds the advisor time of each arrival event.
	PerArrival []time.Duration
	// Retrainings counts distinct augmented models this stream acquired
	// from scratch; Adaptations counts distinct models it acquired by
	// shifting; CacheHits counts re-acquisitions of a model the stream
	// had already used. The counters are stream-local — and therefore
	// deterministic for a fixed arrival sequence at any engine
	// concurrency — while the engine's shared ω-map dedups the actual
	// builds across streams underneath (see OnlineScheduler.CacheStats).
	Retrainings, Adaptations, CacheHits int
	// DriftTriggers counts drift retrains this stream started;
	// DriftTriggerArrivals records the arrival-event index of each (the
	// shift-recovery experiment reads detection latency off it).
	DriftTriggers        int
	DriftTriggerArrivals []int
	// DriftSuppressed counts drift triggers this stream's registry
	// swallowed (backoff window or open breaker); DriftFailures counts
	// synchronous retrains that failed while the stream kept serving its
	// current epoch.
	DriftSuppressed, DriftFailures int
	// DegradedArrivals counts arrival events scheduled by the first-fit
	// heuristic fallback; DegradedPlacements counts individual queries
	// rerouted to the fallback VM type after an unservable placement;
	// ShedArrivals counts newly arrived queries dropped by admission
	// control while degraded. FaultReadmissions counts queries re-admitted
	// to the batch after their VM failed (each re-admitted exactly once).
	DegradedArrivals, DegradedPlacements, ShedArrivals, FaultReadmissions int
	// DeadlineMisses counts arrival events whose per-event deadline
	// (Stream.SubmitDeadline) expired during model acquisition and were
	// served by the degraded path instead of waiting the deadline out.
	DeadlineMisses int
	// Outcomes records every completed query — tag, arrival, and
	// execution bounds — ordered by completion. Perf is its latency
	// projection; Outcomes is what throughput and recovery analyses
	// consume (per-tag exactly-once accounting across hot swaps).
	Outcomes []Outcome
	// FinalEpoch is the registry epoch serving when the stream finished
	// (0 = the base model was never swapped).
	FinalEpoch uint64
}

// Outcome is one completed query of an online stream.
type Outcome struct {
	// Tag and TemplateID identify the query.
	Tag, TemplateID int
	// Arrival is when the query was submitted; Start and End bound its
	// execution on the simulated VM. True latency is End − Arrival.
	Arrival, Start, End time.Duration
}

// augKey identifies a "new template" (§6.3): an original template plus a
// bucketed wait.
type augKey struct {
	template int
	wait     time.Duration
}

// OnlineScheduler is the multi-tenant online serving engine (§6.3,
// productionized): it owns the model lifecycle (one or more ModelRegistrys,
// each holding a hot-swappable serving epoch for one SLA goal / tenant
// tier), the shared striped ω-map of derived models, and consistent-hash
// tenant placement over engine shards. Each tenant stream — a Stream
// created by NewStream/NewStreamOn, or one run of Run/RunContext/
// RunStreams/RunTenants — carries its own simulator, arrival bookkeeping,
// and scratch, and is bound to one registry at open time, so any number of
// streams proceed concurrently with no serialization beyond the rare
// shared model build.
//
// An OnlineScheduler is safe for concurrent use.
type OnlineScheduler struct {
	opts OnlineOptions
	env  *schedule.Env
	goal sla.Goal

	registry *ModelRegistry // the default registry (DefaultRegistry)
	cache    modelCache
	pool     sync.Pool // *Stream
	active   atomic.Int64

	// regMu guards the named-registry table; lookups off the arrival path
	// only (streams bind at open time).
	regMu   sync.RWMutex
	regs    map[string]*ModelRegistry
	regList []*ModelRegistry // by id, for stats

	// share dedups drift retrains across registries: when two registries
	// converge on the same (goal, training config, mix), the second
	// reuses the first's model instead of duplicating the training
	// searches.
	share retrainShare

	// shards and ring implement consistent-hash tenant placement; see
	// shard.go. ring is swapped atomically by Rebalance, exactly like a
	// registry epoch: tenant tasks load it once per arrival event.
	shards     []engineShard
	ring       atomic.Pointer[hashRing]
	migrations atomic.Int64

	// retrainCtx governs background drift retrains: they outlive the
	// triggering stream so other tenants benefit from the swap.
	retrainCtx context.Context

	// fallbackType is the lowest-indexed VM type that can run every
	// template — the degraded path's placement target. −1 when no single
	// type supports the full template set (degradation then cannot
	// reroute and model-path errors surface as before).
	fallbackType int

	// Failure-path counters aggregated across streams (per-stream copies
	// live in each OnlineResult).
	degradedArrivals, degradedPlacements, shedArrivals, deadlineMisses atomic.Int64

	// placeStarted, when non-nil, is invoked at the top of every place;
	// tests use it to pin that simulator placement runs outside the timed
	// advisor window (§6.3's overhead metric excludes execution).
	placeStarted func(res *OnlineResult)
}

// DefaultRegistry is the name of the registry every engine starts with —
// the one NewStream, Run, and RunStreams bind to.
const DefaultRegistry = "default"

// NewOnlineScheduler returns a serving engine over the base model. The
// Shift optimization additionally requires the base model to retain
// training data (KeepTrainingData) and a shiftable goal.
func NewOnlineScheduler(base *Model, opts OnlineOptions) *OnlineScheduler {
	if opts.WaitResolution <= 0 {
		opts.WaitResolution = time.Second
	}
	if opts.Retrain.NumSamples == 0 {
		opts.Retrain = base.TrainingConfig
		opts.Retrain.KeepTrainingData = false
	}
	o := &OnlineScheduler{
		opts:       opts,
		env:        base.env,
		goal:       base.Goal,
		retrainCtx: context.Background(),
	}
	o.fallbackType = -1
	for ti := range o.env.VMTypes {
		supportsAll := true
		for tpl := range o.env.Templates {
			if _, ok := o.env.Latency(tpl, ti); !ok {
				supportsAll = false
				break
			}
		}
		if supportsAll {
			o.fallbackType = ti
			break
		}
	}
	o.cache.init(opts.CacheShards)
	o.share.init()
	o.initShards(opts.Shards)
	o.registry = o.attachRegistry(DefaultRegistry, NewModelRegistry(base))
	return o
}

// attachRegistry wires a registry into the engine: assigns its ω-map
// stripe id, points its swap notification at the striped cache, wraps its
// retrain in the cross-registry share, and records it under name.
func (o *OnlineScheduler) attachRegistry(name string, r *ModelRegistry) *ModelRegistry {
	o.regMu.Lock()
	defer o.regMu.Unlock()
	if o.regs == nil {
		o.regs = map[string]*ModelRegistry{}
	}
	id := uint32(len(o.regList))
	r.id = id
	r.SetRetryPolicy(o.opts.Retry)
	// A hot swap retires every derived model of this registry's older
	// epochs: their cache keys can never be requested again.
	r.onSwap = func(e *ModelEpoch) { o.cache.evictBefore(id, e.Epoch) }
	inner := r.retrain
	r.retrain = func(ctx context.Context, cur *ModelEpoch, mix []float64) (*Model, error) {
		return o.share.retrain(ctx, cur, mix, inner)
	}
	o.regs[name] = r
	o.regList = append(o.regList, r)
	return r
}

// AddRegistry adds a named model registry to the engine — one per SLA goal
// or tenant tier — serving base as its epoch 0 with its own drift-retrain
// lifecycle and (optionally, via ModelRegistry.CheckpointTo) its own
// checkpoint store. Streams bind to a registry at open time (NewStreamOn,
// RunOn, Tenant.Registry); the engine's ω-map and worker shards are shared
// across registries, and drift retrains that converge on the same (goal,
// mix) are built once and shared (see ScaleStats.SharedRetrains).
//
// The base model must be bound to an environment with the same template
// and VM-type counts as the engine's: streams of every registry place onto
// the same simulated fleet shapes. Call before serving begins.
func (o *OnlineScheduler) AddRegistry(name string, base *Model) (*ModelRegistry, error) {
	if name == "" {
		return nil, errors.New("core: AddRegistry requires a name")
	}
	if base == nil {
		return nil, errors.New("core: AddRegistry requires a base model")
	}
	if len(base.env.Templates) != len(o.env.Templates) || len(base.env.VMTypes) != len(o.env.VMTypes) {
		return nil, fmt.Errorf("core: registry %q: base model has %d templates x %d VM types, engine has %d x %d",
			name, len(base.env.Templates), len(base.env.VMTypes), len(o.env.Templates), len(o.env.VMTypes))
	}
	o.regMu.RLock()
	_, exists := o.regs[name]
	o.regMu.RUnlock()
	if exists {
		return nil, fmt.Errorf("core: registry %q already exists", name)
	}
	return o.attachRegistry(name, NewModelRegistry(base)), nil
}

// RegistryNamed returns the named registry, or nil if it does not exist.
func (o *OnlineScheduler) RegistryNamed(name string) *ModelRegistry {
	o.regMu.RLock()
	defer o.regMu.RUnlock()
	return o.regs[name]
}

// Registries returns the number of registries the engine hosts.
func (o *OnlineScheduler) Registries() int {
	o.regMu.RLock()
	defer o.regMu.RUnlock()
	return len(o.regList)
}

// RegistryNames returns the names of every registry the engine hosts,
// sorted. The serving daemon's drain walks this list to checkpoint each
// registry exactly once.
func (o *OnlineScheduler) RegistryNames() []string {
	o.regMu.RLock()
	names := make([]string, 0, len(o.regs))
	for name := range o.regs {
		names = append(names, name)
	}
	o.regMu.RUnlock()
	slices.Sort(names)
	return names
}

// NewOnlineSchedulerFromStore warm-starts a serving engine from a durable
// model store: the newest intact epoch is decoded and serves immediately —
// under its persisted epoch number and arrival mix, with zero training
// searches — exactly as it served before the restart. Attach the store
// back with Registry().CheckpointTo to keep checkpointing new epochs into
// it (the already-present epoch is not re-committed).
func NewOnlineSchedulerFromStore(ms *store.ModelStore, opts OnlineOptions) (*OnlineScheduler, error) {
	e, err := loadLatestEpoch(ms)
	if err != nil {
		return nil, err
	}
	o := NewOnlineScheduler(e.Model, opts)
	o.registry.installEpoch(e)
	return o, nil
}

// Templates returns the number of workload templates the engine's
// environment defines — the valid TemplateID range for arrivals.
func (o *OnlineScheduler) Templates() int { return len(o.env.Templates) }

// Registry returns the engine's default model lifecycle subsystem: the
// current serving epoch, hot-swap entry points, and retrain statistics.
// Named registries added with AddRegistry are reached via RegistryNamed.
func (o *OnlineScheduler) Registry() *ModelRegistry { return o.registry }

// ActiveStreams returns the number of streams currently open (acquired and
// neither finished nor cancelled).
func (o *OnlineScheduler) ActiveStreams() int64 { return o.active.Load() }

// CacheStats reports the shared ω-map's build counter: how many derived
// (shifted or augmented) models the engine actually trained, across all
// streams, registries, and epochs — aggregated over every cache stripe.
// Compare against the per-stream Adaptations and Retrainings counters to
// see cross-tenant deduplication at work.
func (o *OnlineScheduler) CacheStats() (builds int64) { return o.cache.builds.Load() }

// ScaleStats snapshots the engine's scale-out counters: sharding layout,
// live migrations, ω-map size and builds, and cross-registry retrain
// sharing.
type ScaleStats struct {
	// Shards is the engine's shard count; ActiveShards how many the
	// current placement ring spreads tenants over (Rebalance shrinks or
	// re-grows it).
	Shards, ActiveShards int
	// Migrations counts tenant streams handed between shards by a live
	// rebalance, each without dropping or doubling an arrival.
	Migrations int64
	// Registries is the number of model registries the engine hosts.
	Registries int
	// SharedRetrains counts drift retrains satisfied by another
	// registry's identical (goal, config, mix) build instead of a
	// duplicate training search.
	SharedRetrains int64
	// CacheBuilds and CacheEntries describe the striped ω-map: real
	// derived-model builds ever, and entries currently cached.
	CacheBuilds  int64
	CacheEntries int
	// DegradedArrivals, DegradedPlacements, and ShedArrivals aggregate
	// the failure-path counters across every stream the engine served.
	DegradedArrivals, DegradedPlacements, ShedArrivals int64
	// DeadlineMisses aggregates arrival events whose per-event deadline
	// expired during model acquisition (served degraded, not aborted).
	DeadlineMisses int64
	// TotalRetrainMS sums successful drift-retrain wall times across every
	// registry; LastRetrainMS is the slowest registry's most recent one.
	TotalRetrainMS, LastRetrainMS int64
	// WarmSamples/ColdSamples and RetrainCacheHits/Misses aggregate the
	// warm-retrain reuse counters (see RegistryStats) across every
	// registry.
	WarmSamples, ColdSamples             int64
	RetrainCacheHits, RetrainCacheMisses int64
	// Robustness aggregates every registry's retry-discipline counters;
	// its Breaker field reports the most degraded breaker position.
	Robustness RobustnessStats
}

// ScaleStats returns a consistent-enough snapshot for monitoring and tests.
func (o *OnlineScheduler) ScaleStats() ScaleStats {
	s := ScaleStats{
		Shards:         len(o.shards),
		Migrations:     o.migrations.Load(),
		Registries:     o.Registries(),
		SharedRetrains: o.share.shared.Load(),
		CacheBuilds:    o.cache.builds.Load(),
		CacheEntries:   o.cache.size(),
	}
	if r := o.ring.Load(); r != nil {
		s.ActiveShards = r.active
	}
	s.DegradedArrivals = o.degradedArrivals.Load()
	s.DegradedPlacements = o.degradedPlacements.Load()
	s.ShedArrivals = o.shedArrivals.Load()
	s.DeadlineMisses = o.deadlineMisses.Load()
	o.regMu.RLock()
	for _, r := range o.regList {
		rs := r.Stats()
		s.TotalRetrainMS += rs.TotalRetrainMS
		if rs.LastRetrainMS > s.LastRetrainMS {
			s.LastRetrainMS = rs.LastRetrainMS
		}
		s.WarmSamples += rs.WarmSamples
		s.ColdSamples += rs.ColdSamples
		s.RetrainCacheHits += rs.RetrainCacheHits
		s.RetrainCacheMisses += rs.RetrainCacheMisses
		s.Robustness.merge(rs.Robustness)
	}
	o.regMu.RUnlock()
	return s
}

// Run schedules the workload's queries at their recorded arrival times and
// simulates execution to completion. Many Run calls may proceed
// concurrently; each gets its own stream.
func (o *OnlineScheduler) Run(w *workload.Workload) (*OnlineResult, error) {
	return o.RunContext(context.Background(), w)
}

// RunContext is Run with cancellation: between arrival events (and inside
// any model acquisition) a cancelled ctx aborts the stream, releases its
// simulated VMs, and returns ctx.Err().
func (o *OnlineScheduler) RunContext(ctx context.Context, w *workload.Workload) (*OnlineResult, error) {
	return o.runOn(ctx, o.registry, w)
}

// RunOn is RunContext against a named registry: the stream binds to that
// registry's serving epochs (its goal, its drift lifecycle) for its whole
// life.
func (o *OnlineScheduler) RunOn(ctx context.Context, registry string, w *workload.Workload) (*OnlineResult, error) {
	r := o.RegistryNamed(registry)
	if r == nil {
		return nil, fmt.Errorf("core: unknown registry %q", registry)
	}
	return o.runOn(ctx, r, w)
}

// runOn replays one workload as a stream bound to reg.
func (o *OnlineScheduler) runOn(ctx context.Context, reg *ModelRegistry, w *workload.Workload) (*OnlineResult, error) {
	if len(w.Templates) != len(o.env.Templates) {
		return nil, fmt.Errorf("core: online workload has %d templates, model expects %d", len(w.Templates), len(o.env.Templates))
	}
	clk := &SimClock{}
	s := o.acquireStreamOn(reg, &o.pool, clk)
	defer o.releaseStream(s, &o.pool)
	s.Reserve(len(w.Queries))
	q := newArrivalQueue(w.Queries)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, batch, ok := q.next()
		if !ok {
			break
		}
		clk.Advance(t)
		if err := s.Submit(ctx, batch...); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// RunStreams schedules many independent tenant streams concurrently over a
// bounded worker pool (parallelism <= 0 selects GOMAXPROCS; the pool is the
// same engine training uses). Results are positional. Per-stream results
// are deterministic for any parallelism: each stream's schedule depends
// only on its own arrivals and the (deterministically built) models, and
// the stream-local counters never observe engine scheduling. The first
// stream error cancels the remaining streams.
func (o *OnlineScheduler) RunStreams(ctx context.Context, streams []*workload.Workload, parallelism int) ([]*OnlineResult, error) {
	results := make([]*OnlineResult, len(streams))
	err := forEach(ctx, parallelism, len(streams), func(i int) error {
		res, err := o.RunContext(ctx, streams[i])
		if err != nil {
			return fmt.Errorf("core: online stream %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunStreamsOn is RunStreams with every stream bound to the named registry.
// For mixed tiers — or for consistent-hash shard placement and live
// rebalancing — use RunTenants, which binds per tenant.
func (o *OnlineScheduler) RunStreamsOn(ctx context.Context, registry string, streams []*workload.Workload, parallelism int) ([]*OnlineResult, error) {
	r := o.RegistryNamed(registry)
	if r == nil {
		return nil, fmt.Errorf("core: unknown registry %q", registry)
	}
	results := make([]*OnlineResult, len(streams))
	err := forEach(ctx, parallelism, len(streams), func(i int) error {
		res, err := o.runOn(ctx, r, streams[i])
		if err != nil {
			return fmt.Errorf("core: online stream %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// NewStream opens an event-driven tenant stream against the engine's
// default registry: the caller submits arrivals as they happen
// (Stream.Submit timestamps each event with the clock) and closes with
// Stream.Finish. Use a SimClock the driver advances for virtual time, or a
// WallClock for live serving — the stream core is identical.
func (o *OnlineScheduler) NewStream(clock Clock) *Stream {
	return o.acquireStreamOn(o.registry, &o.pool, clock)
}

// NewStreamOn is NewStream bound to a named registry (one SLA goal /
// tenant tier): the stream serves from that registry's epochs and reports
// drift to it.
func (o *OnlineScheduler) NewStreamOn(registry string, clock Clock) (*Stream, error) {
	r := o.RegistryNamed(registry)
	if r == nil {
		return nil, fmt.Errorf("core: unknown registry %q", registry)
	}
	return o.acquireStreamOn(r, &o.pool, clock), nil
}

// tagState is the per-query bookkeeping of a stream, indexed by query tag.
// template is −1 for tags the stream has not seen.
type tagState struct {
	arrival  time.Duration
	template int32
}

// Stream is one tenant's arrival stream: per-stream simulator, per-query
// bookkeeping, drift detector, and scratch buffers. Streams of one engine
// share its registries and ω-map but nothing mutable, so they run
// concurrently without locks on the arrival path. Each stream is bound to
// one registry at open time — its SLA goal, serving epochs, and drift
// lifecycle come from that binding.
//
// A Stream is single-owner: one goroutine submits and finishes it (in
// sharded serving, ownership moves linearly between shard workers — never
// two at once). Query tags must be small non-negative integers
// (bookkeeping is indexed by tag); the samplers' dense 0..n−1 tags are
// ideal.
type Stream struct {
	eng   *OnlineScheduler
	reg   *ModelRegistry
	clock Clock
	sim   *cloud.Sim
	res   *OnlineResult
	drift *driftDetector
	tags  []tagState
	last  time.Duration // latest event time; Submit clamps to monotonic
	done  bool
	// driftEpoch is the registry epoch the drift detector last baselined
	// against. Any epoch install — a drift retrain, a manual swap, a
	// warm start from a checkpoint — changes the baseline mix, so the
	// detector's window (full of arrivals judged against the old mix)
	// must be rebaselined before it may trigger again; comparing a stale
	// window against a fresh mix produced spurious immediate retrains.
	driftEpoch uint64
	// degraded marks the stream as serving through the first-fit
	// heuristic fallback; degradedEpoch is the epoch it degraded under.
	// Degraded mode is sticky per epoch: the model path is retried only
	// when a new epoch installs, so a broken epoch cannot re-fail every
	// arrival.
	degraded      bool
	degradedEpoch uint64
	// eventDeadline, when non-zero, bounds the model acquisition of the
	// current arrival event (set per event by SubmitDeadline). It is a
	// budget, not a wall instant: each event gets its own window.
	eventDeadline time.Duration
	// priceMult is the spot price multiplier in effect at the current
	// arrival event (OnlineOptions.Prices.At of the event time; 1 under
	// flat prices). onArrival refreshes it once per event and the batch
	// scheduler's dominated-placement guard prices fees with it.
	priceMult float64

	// seenShifted/seenAug track which derived models this stream has
	// already acquired, making the CacheHits/Adaptations/Retrainings
	// counters stream-local and scheduling-independent.
	seenShifted map[shiftKey]struct{}
	seenAug     map[augModelKey]struct{}

	// Persistent scratch: the arrival loop re-batches, re-schedules, and
	// re-places on every event, and these buffers keep that machinery
	// allocation-free in steady state.
	batch    []int            // revoked + newly arrived tags
	queries  []workload.Query // batch rendered as workload queries
	wl       workload.Workload
	cands    [][]vmCandidate // per VM type, idle-soonest placement candidates
	candNext []int           // per VM type, cursor of the next unused candidate
	sched    *schedule.Schedule
	backing  []schedule.Placed
}

// vmCandidate is an active physical VM considered for an abstract VM slot.
type vmCandidate struct {
	vm   *cloud.SimVM
	free time.Duration
}

// acquireStreamOn draws a reset stream from the given scratch pool
// (engine-wide, or an engine shard's local pool) and binds it to reg for
// its whole life.
func (o *OnlineScheduler) acquireStreamOn(reg *ModelRegistry, pool *sync.Pool, clock Clock) *Stream {
	s, _ := pool.Get().(*Stream)
	if s == nil {
		s = &Stream{
			eng:         o,
			seenShifted: map[shiftKey]struct{}{},
			seenAug:     map[augModelKey]struct{}{},
		}
	}
	s.reg = reg
	s.clock = clock
	s.sim = cloud.NewSim()
	s.sim.SetPrices(o.opts.Prices)
	s.priceMult = 1
	s.res = &OnlineResult{}
	s.tags = s.tags[:0]
	s.last = 0
	s.done = false
	s.degraded = false
	s.degradedEpoch = 0
	s.eventDeadline = 0
	clear(s.seenShifted)
	clear(s.seenAug)
	if o.opts.Drift.enabled() {
		if s.drift == nil {
			s.drift = newDriftDetector(len(o.env.Templates), o.opts.Drift)
		} else {
			s.drift.reset()
		}
		s.driftEpoch = reg.Current().Epoch
	} else {
		s.drift = nil
	}
	o.active.Add(1)
	return s
}

// releaseStream returns a stream's scratch to a pool — the pool of
// whichever shard the stream last ran on, so scratch stays shard-local
// under sharded serving. The stream's result (if finished) stays valid —
// results are never pooled. A stream released before Finish counts as
// cancelled: its simulator, and with it every rented VM, is dropped.
func (o *OnlineScheduler) releaseStream(s *Stream, pool *sync.Pool) {
	if !s.done {
		o.active.Add(-1)
	}
	s.sim = nil
	s.res = nil
	s.clock = nil
	s.reg = nil
	pool.Put(s)
}

// Reserve preallocates the stream's bookkeeping for a run of n queries with
// tags in [0, n): with capacity in place, the steady-state arrival path
// performs zero allocations (pinned by TestOnlineArrivalSteadyStateAllocFree).
func (s *Stream) Reserve(n int) {
	if cap(s.tags) < n {
		tags := make([]tagState, len(s.tags), n)
		copy(tags, s.tags)
		s.tags = tags
	}
	if cap(s.res.PerArrival) < n {
		perArrival := make([]time.Duration, len(s.res.PerArrival), n)
		copy(perArrival, s.res.PerArrival)
		s.res.PerArrival = perArrival
	}
	if cap(s.batch) < n {
		s.batch = make([]int, 0, n)
	}
	if cap(s.queries) < n {
		s.queries = make([]workload.Query, 0, n)
	}
	if cap(s.backing) < n {
		s.backing = make([]schedule.Placed, 0, n)
	}
}

// ensureTag grows the tag table to cover tag, marking new slots unseen.
func (s *Stream) ensureTag(tag int) {
	for len(s.tags) <= tag {
		s.tags = append(s.tags, tagState{template: -1})
	}
}

// InjectFaults arms the stream's simulator with a deterministic fault plan
// (VM failures, stragglers — see cloud.NewFaultPlan). Call before the first
// Submit; fates are drawn per rented VM from the plan's seed, so the same
// arrivals under the same plan replay bit-identically.
func (s *Stream) InjectFaults(p *cloud.FaultPlan) { s.sim.SetFaults(p) }

// Submit delivers one arrival event — every query in arrived is stamped
// with the stream clock's current time and the unstarted backlog is
// re-scheduled (§6.3). ctx bounds any model acquisition the event needs.
// Submit is the clock-agnostic stream core: the workload replay drivers and
// live wall-clock serving both funnel through it.
func (s *Stream) Submit(ctx context.Context, arrived ...workload.Query) error {
	if s.done {
		return errors.New("core: Submit on a finished stream")
	}
	if len(arrived) == 0 {
		return nil
	}
	t := s.clock.Now()
	if t < s.last {
		t = s.last // wall clocks are monotonic; SimClock panics on rewind
	}
	s.last = t
	return s.onArrival(ctx, t, arrived)
}

// SubmitDeadline is Submit with a per-request placement deadline: if
// obtaining a model for this event (a shifted or augmented build) takes
// longer than d, the event is served by the degraded first-fit path
// instead of waiting the build out — the arrival is placed, late
// placement becomes the SLA penalty's problem, and the miss is counted
// (OnlineResult.DeadlineMisses). Requires OnlineOptions.Degrade and a
// viable fallback VM type; without them a missed deadline fails the
// stream exactly like any other model-path error.
//
// The deadline guards only model acquisition — the fresh-batch serving
// path never blocks, so a deadline adds nothing there (and costs
// nothing: the steady-state 0 allocs/arrival invariant holds because no
// context is derived on that path). d <= 0 means no deadline.
func (s *Stream) SubmitDeadline(ctx context.Context, d time.Duration, arrived ...workload.Query) error {
	s.eventDeadline = d
	err := s.Submit(ctx, arrived...)
	s.eventDeadline = 0
	return err
}

// Shed records n arrivals dropped by admission control before
// submission — the serving daemon's token bucket sheds on the socket,
// and the drop lands in the same counters the engine's internal
// MaxBacklog shedding uses (OnlineResult.ShedArrivals, engine-wide
// ScaleStats.ShedArrivals), so overload accounting is one ledger no
// matter which layer shed.
func (s *Stream) Shed(n int) {
	if n <= 0 || s.done {
		return
	}
	s.res.ShedArrivals += n
	s.eng.shedArrivals.Add(int64(n))
}

// Close returns the stream's scratch to the engine's pool. Call after
// Finish (the result stays valid — results are never pooled), or
// without Finish to cancel the stream and drop its simulated VMs. Use
// only for streams opened with NewStream/NewStreamOn; Run and the
// sharded drivers recycle their streams themselves.
func (s *Stream) Close() {
	s.eng.releaseStream(s, &s.eng.pool)
}

// Finish drains the stream's simulation and returns the final result: total
// cost, the goal's penalty over true latencies (completion − arrival), and
// the per-arrival advisor overhead. The stream cannot be used afterwards.
func (s *Stream) Finish() *OnlineResult {
	if s.done {
		return s.res
	}
	s.done = true
	s.eng.active.Add(-1)
	runs := s.sim.Finish()
	perf := make([]sla.QueryPerf, len(runs))
	outcomes := make([]Outcome, len(runs))
	for i, r := range runs {
		arrival := s.tags[r.Tag].arrival
		perf[i] = sla.QueryPerf{TemplateID: r.TemplateID, Latency: r.End - arrival}
		outcomes[i] = Outcome{Tag: r.Tag, TemplateID: r.TemplateID, Arrival: arrival, Start: r.Start, End: r.End}
	}
	res := s.res
	res.Perf = perf
	res.Outcomes = outcomes
	// The penalty is judged by the stream's own registry: each tier's
	// streams are scored against that tier's SLA goal.
	res.Penalty = s.reg.Current().Model.Goal.Penalty(perf)
	res.Cost = s.sim.ProvisioningCost() + res.Penalty
	res.FinalEpoch = s.reg.Current().Epoch
	return res
}

// onArrival handles one arrival event at time t (§6.3): observe the
// arrivals for drift, revoke unstarted queries, form the batch B_i, obtain
// a model for the waited queries, and re-schedule.
//
// Only model acquisition and tree parsing are timed — SchedulingTime and
// PerArrival are the advisor-overhead metric of Fig. 19, and mapping the
// schedule onto simulator VMs (place) stands in for the execution layer the
// paper does not charge to the advisor (§6.3). TestOnlineTimingExcludesPlacement
// pins placement outside the timed window.
func (s *Stream) onArrival(ctx context.Context, t time.Duration, arrived []workload.Query) error {
	k := len(s.eng.env.Templates)
	for _, q := range arrived {
		if q.Tag < 0 {
			return fmt.Errorf("core: online arrival with negative tag %d", q.Tag)
		}
		if q.TemplateID < 0 || q.TemplateID >= k {
			return fmt.Errorf("core: query tag %d references unknown template %d", q.Tag, q.TemplateID)
		}
	}
	// Load the serving epoch once per event: everything this arrival does
	// uses it, so a hot swap landing mid-event cannot split the batch
	// between two models. The spot price multiplier is likewise pinned at
	// the event instant (At is alloc-free; nil prices yield exactly 1).
	epoch := s.reg.Current()
	s.priceMult = s.eng.opts.Prices.At(t)
	if s.drift != nil {
		for _, q := range arrived {
			// Rebaseline on any epoch install, not just this stream's own
			// retrain-triggered swaps: a warm-started or cross-tenant
			// epoch changes the baseline mix, and judging the detector's
			// stale window against it would re-trigger drift immediately
			// (pinned by TestDriftRebaselinesOnAnyEpochInstall).
			if epoch.Epoch != s.driftEpoch {
				s.drift.reset()
				s.driftEpoch = epoch.Epoch
			}
			if emd, drifted := s.drift.observe(q.TemplateID, epoch.Mix); drifted {
				swapped, err := s.triggerDrift(ctx, emd)
				if err != nil {
					return err
				}
				// Every trigger attempt rebaselines the window — started,
				// suppressed, busy, or failed. A failed retrain that left
				// the window hot would re-fire on the very next arrival,
				// forever (the retrigger storm); cold-starting the window
				// makes the re-trigger cadence the detector's fill time,
				// on top of which the registry's backoff/breaker gate sits.
				s.drift.reset()
				if swapped {
					epoch = s.reg.Current()
				}
				s.driftEpoch = epoch.Epoch
			}
		}
	}
	for _, q := range arrived {
		s.ensureTag(q.Tag)
		s.tags[q.Tag] = tagState{arrival: t, template: int32(q.TemplateID)}
	}
	s.batch = s.batch[:0]
	for _, vm := range s.sim.VMs() {
		// A VM whose injected failure instant has passed surrenders its
		// killed in-flight run and unstarted queue for re-admission
		// (exactly once — CollectFailed is a no-op afterwards), then the
		// usual revocation sweep reclaims unstarted work from the living.
		n := len(s.batch)
		s.batch = vm.CollectFailed(t, s.batch)
		s.res.FaultReadmissions += len(s.batch) - n
		s.batch = vm.RevokeUnstartedInto(t, s.batch)
	}
	for _, q := range arrived {
		s.batch = append(s.batch, q.Tag)
	}
	// Admission control: while degraded, a batch beyond MaxBacklog sheds
	// its newest arrivals. Only queries arriving at this event are
	// sheddable — work admitted earlier (re-admitted or revoked) completes
	// exactly once, never silently vanishes mid-stream.
	if s.degraded && s.eng.opts.MaxBacklog > 0 {
		if over := len(s.batch) - s.eng.opts.MaxBacklog; over > 0 {
			if over > len(arrived) {
				over = len(arrived)
			}
			s.batch = s.batch[:len(s.batch)-over]
			s.res.ShedArrivals += over
			s.eng.shedArrivals.Add(int64(over))
		}
	}
	slices.Sort(s.batch)

	begin := time.Now()
	sched, err := s.scheduleEvent(ctx, epoch, t)
	elapsed := time.Since(begin)
	if err != nil {
		return err
	}
	s.res.SchedulingTime += elapsed
	s.res.PerArrival = append(s.res.PerArrival, elapsed)
	return s.place(t, sched)
}

// scheduleEvent obtains a schedule for the current batch: the model path
// when healthy, the first-fit heuristic fallback when degraded. A stream in
// degraded mode stays on the heuristic until a new epoch installs; a model
// path that errors under OnlineOptions.Degrade enters degraded mode instead
// of failing the stream (context cancellation still aborts — a cancelled
// stream must stop, not limp).
func (s *Stream) scheduleEvent(ctx context.Context, epoch *ModelEpoch, t time.Duration) (*schedule.Schedule, error) {
	if s.degraded {
		if epoch.Epoch == s.degradedEpoch {
			s.noteDegraded()
			return s.scheduleDegraded(epoch)
		}
		s.degraded = false // new epoch: give the model path another chance
	}
	sched, err := s.scheduleBatch(ctx, epoch, t, s.batch)
	if err == nil {
		return sched, nil
	}
	// The stream's own context going dead is the caller's stop signal:
	// abort, never limp. A context error with the stream context still
	// live is a per-event deadline (SubmitDeadline) expiring inside model
	// acquisition — an overload condition, handled exactly like any other
	// model-path failure: degrade if allowed.
	if !s.eng.opts.Degrade || s.eng.fallbackType < 0 || ctx.Err() != nil {
		return nil, err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.res.DeadlineMisses++
		s.eng.deadlineMisses.Add(1)
	}
	s.degraded, s.degradedEpoch = true, epoch.Epoch
	s.noteDegraded()
	return s.scheduleDegraded(epoch)
}

// noteDegraded records one arrival event served by the degraded path.
func (s *Stream) noteDegraded() {
	s.res.DegradedArrivals++
	s.eng.degradedArrivals.Add(1)
}

// scheduleDegraded schedules the batch with the first-fit heuristic on the
// engine's fallback VM type — no model, no training search, just the §4
// greedy baseline. Its placements are approximate but always servable, and
// the goal's penalty still judges the true latencies at Finish.
func (s *Stream) scheduleDegraded(epoch *ModelEpoch) (*schedule.Schedule, error) {
	ft := s.eng.fallbackType
	s.queries = s.queries[:0]
	for _, tag := range s.batch {
		s.queries = append(s.queries, workload.Query{TemplateID: int(s.tags[tag].template), Tag: tag})
	}
	s.wl = workload.Workload{Templates: s.eng.env.Templates, Queries: s.queries}
	goal := epoch.Model.Goal
	return heuristics.FirstFit(&s.wl, s.eng.env, goal, ft, heuristics.OrderFor(goal)), nil
}

// triggerDrift asks the registry to retrain toward the stream's observed
// mix; emd (the distance that crossed the threshold) rides into the new
// epoch's checkpoint lineage. In synchronous mode the swap has landed when
// it returns true; in background mode it returns false and the swap
// arrives at a later event.
func (s *Stream) triggerDrift(ctx context.Context, emd float64) (swapped bool, err error) {
	r := s.reg
	if s.eng.opts.Drift.Synchronous {
		err := r.retrainNow(ctx, s.drift.mix(), emd)
		switch {
		case err == nil:
			s.res.DriftTriggers++
			s.res.DriftTriggerArrivals = append(s.res.DriftTriggerArrivals, len(s.res.PerArrival))
			return true, nil
		case errors.Is(err, errRetrainInFlight):
			// Another stream's synchronous retrain is running; its swap
			// will serve us too.
			return false, nil
		case errors.Is(err, errRetrainSuppressed):
			// The registry's backoff window or breaker swallowed the
			// trigger; keep serving the current epoch.
			s.res.DriftSuppressed++
			return false, nil
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Cancellation is the caller's stop signal, not a model
			// failure: abort the stream.
			return false, err
		default:
			// The retrain failed. The current epoch keeps serving — a
			// broken retrain path must never take arrivals down with it.
			// The registry recorded the failure (Stats, backoff, breaker)
			// and this stream's window rebaselines on return.
			s.res.DriftFailures++
			return false, nil
		}
	}
	started, suppressed := r.triggerRetrain(s.eng.retrainCtx, s.drift.mix(), emd)
	switch {
	case started:
		s.res.DriftTriggers++
		s.res.DriftTriggerArrivals = append(s.res.DriftTriggerArrivals, len(s.res.PerArrival))
	case suppressed:
		s.res.DriftSuppressed++
	}
	return false, nil
}

// waitBucket floors a wait to the configured resolution.
func (s *Stream) waitBucket(w time.Duration) time.Duration {
	return w - w%s.eng.opts.WaitResolution
}

// scheduleBatch obtains a model appropriate for the batch's wait pattern
// and produces an abstract schedule whose Placed tags are real query tags.
func (s *Stream) scheduleBatch(ctx context.Context, epoch *ModelEpoch, t time.Duration, batch []int) (*schedule.Schedule, error) {
	maxWait := time.Duration(0)
	allFresh := true
	for _, tag := range batch {
		w := s.waitBucket(t - s.tags[tag].arrival)
		if w > 0 {
			allFresh = false
		}
		if w > maxWait {
			maxWait = w
		}
	}
	if !allFresh && s.eventDeadline > 0 {
		// The per-event deadline bounds only the slow path — model
		// acquisition for waited batches. The fresh path below never
		// derives a context, keeping it allocation-free.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.eventDeadline)
		defer cancel()
	}
	switch {
	case allFresh:
		return s.scheduleWith(epoch.Model, batch)
	case s.eng.opts.Shift && epoch.Model.Goal.Shiftable():
		m, err := s.shiftedModel(ctx, epoch, maxWait)
		if err != nil {
			return nil, err
		}
		return s.scheduleWith(m, batch)
	default:
		return s.scheduleAugmented(ctx, epoch, t, batch)
	}
}

// shiftedModel returns a model for the goal shifted by w, adapting the
// epoch's model (§5). With Reuse on, the engine-wide ω-map dedups builds
// across streams (exactly one stream adapts; the rest wait for the entry),
// while the stream-local counters record whether *this* stream had used the
// model before.
func (s *Stream) shiftedModel(ctx context.Context, epoch *ModelEpoch, w time.Duration) (*Model, error) {
	if !s.eng.opts.Reuse {
		m, err := epoch.Model.ShiftedModelContext(ctx, w)
		if err != nil {
			return nil, err
		}
		s.res.Adaptations++
		return m, nil
	}
	key := shiftKey{reg: s.reg.id, epoch: epoch.Epoch, wait: w}
	m, err := getOrBuild(&s.eng.cache, shiftedMap, key, key.hash(), ctx, func() (*Model, error) {
		return epoch.Model.ShiftedModelContext(ctx, w)
	})
	if err != nil {
		return nil, err
	}
	if _, ok := s.seenShifted[key]; ok {
		s.res.CacheHits++
	} else {
		s.seenShifted[key] = struct{}{}
		s.res.Adaptations++
	}
	return m, nil
}

// scheduleAugmented builds the "new template" specification of §6.3: each
// distinct (template, wait) pair among waited queries becomes an extra
// template whose latency is inflated by the wait, a model is trained for
// the augmented specification (or fetched from the ω-map when Reuse is on),
// and the batch is scheduled against it.
func (s *Stream) scheduleAugmented(ctx context.Context, epoch *ModelEpoch, t time.Duration, batch []int) (*schedule.Schedule, error) {
	base := epoch.Model.env.Templates
	augID := map[augKey]int{}
	templates := append([]workload.Template(nil), base...)
	queryTemplate := make([]int, len(batch)) // batch index -> (augmented) template ID
	var keyParts []string
	for i, tag := range batch {
		orig := int(s.tags[tag].template)
		w := s.waitBucket(t - s.tags[tag].arrival)
		if w == 0 {
			queryTemplate[i] = orig
			continue
		}
		k := augKey{template: orig, wait: w}
		id, ok := augID[k]
		if !ok {
			id = len(templates)
			augID[k] = id
			ot := base[orig]
			templates = append(templates, workload.Template{
				ID:          id,
				Name:        fmt.Sprintf("%s+%s", ot.Name, w),
				BaseLatency: ot.BaseLatency + w,
				HighRAM:     ot.HighRAM,
			})
			keyParts = append(keyParts, fmt.Sprintf("%d@%d", orig, w/s.eng.opts.WaitResolution))
		}
		queryTemplate[i] = id
	}

	sort.Strings(keyParts)
	build := func() (*Model, error) {
		env := &schedule.Env{Templates: templates, VMTypes: epoch.Model.env.VMTypes, Pred: epoch.Model.env.Pred}
		goal, err := augmentGoal(epoch.Model.Goal, base, augID)
		if err != nil {
			return nil, err
		}
		adv, err := NewAdvisor(env, s.eng.opts.Retrain)
		if err != nil {
			return nil, fmt.Errorf("core: online augmented model: %w", err)
		}
		return adv.TrainContext(ctx, goal)
	}
	var m *Model
	var err error
	if s.eng.opts.Reuse {
		key := augModelKey{reg: s.reg.id, epoch: epoch.Epoch, key: strings.Join(keyParts, ",")}
		m, err = getOrBuild(&s.eng.cache, augmentedMap, key, key.hash(), ctx, build)
		if err != nil {
			return nil, err
		}
		if _, ok := s.seenAug[key]; ok {
			s.res.CacheHits++
		} else {
			s.seenAug[key] = struct{}{}
			s.res.Retrainings++
		}
	} else {
		m, err = build()
		if err != nil {
			return nil, err
		}
		s.res.Retrainings++
	}

	s.queries = s.queries[:0]
	for i, tag := range batch {
		s.queries = append(s.queries, workload.Query{TemplateID: queryTemplate[i], Tag: tag})
	}
	s.wl = workload.Workload{Templates: m.env.Templates, Queries: s.queries}
	sched, backing, err := m.scheduleBatchInto(&s.wl, s.sched, s.backing, s.priceMult)
	if err != nil {
		return nil, err
	}
	s.sched, s.backing = sched, backing
	return sched, nil
}

// augmentGoal extends a goal to cover augmented templates. Workload-level
// goals (Max, Average, Percentile) apply unchanged — the inflated latency
// feeds straight into their penalty. PerQuery goals give each augmented
// template the deadline of the template it derives from: a query that has
// waited w and then takes (queue + execution) time q has true latency
// w + q, and comparing the inflated-latency completion to the original
// deadline computes exactly that.
func augmentGoal(g sla.Goal, base []workload.Template, augID map[augKey]int) (sla.Goal, error) {
	pq, ok := g.(sla.PerQuery)
	if !ok {
		return g, nil
	}
	// Order augmented IDs densely after the base templates.
	type entry struct {
		id   int
		orig int
		wait time.Duration
	}
	entries := make([]entry, 0, len(augID))
	for k, id := range augID {
		entries = append(entries, entry{id: id, orig: k.template, wait: k.wait})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	for _, e := range entries {
		if e.id != len(pq.Deadlines) {
			return nil, fmt.Errorf("core: augmented template IDs not dense: got %d, want %d", e.id, len(pq.Deadlines))
		}
		pq = pq.WithExtraTemplate(pq.Deadline(e.orig), base[e.orig].BaseLatency+e.wait)
	}
	return pq, nil
}

// scheduleWith runs the model's batch scheduler over real query tags using
// the original template of each query, reusing the stream's schedule
// skeleton.
func (s *Stream) scheduleWith(m *Model, batch []int) (*schedule.Schedule, error) {
	s.queries = s.queries[:0]
	for _, tag := range batch {
		s.queries = append(s.queries, workload.Query{TemplateID: int(s.tags[tag].template), Tag: tag})
	}
	s.wl = workload.Workload{Templates: m.env.Templates, Queries: s.queries}
	sched, backing, err := m.scheduleBatchInto(&s.wl, s.sched, s.backing, s.priceMult)
	if err != nil {
		return nil, err
	}
	s.sched, s.backing = sched, backing
	return sched, nil
}

// place maps the abstract VMs of a schedule onto physical simulator VMs:
// abstract VM j of type i goes to the free-soonest active physical VM of
// type i with no queued work, renting a new VM otherwise (DESIGN.md §2,
// "online scheduling interpretation"). Queries are enqueued with their true
// execution latency on the physical VM's type.
//
// It returns an error if a query's template cannot run on its assigned VM
// type: the batch scheduler only emits supported placements, so an
// unservable (template, VM type) pair here is a bug upstream — reported
// loudly instead of being absorbed as an absurd simulated latency.
func (s *Stream) place(t time.Duration, sched *schedule.Schedule) error {
	if h := s.eng.placeStarted; h != nil {
		h(s.res)
	}
	numTypes := len(s.eng.env.VMTypes)
	if cap(s.cands) < numTypes {
		s.cands = make([][]vmCandidate, numTypes)
		s.candNext = make([]int, numTypes)
	}
	s.cands = s.cands[:numTypes]
	s.candNext = s.candNext[:numTypes]
	for ti := range s.cands {
		s.cands[ti] = s.cands[ti][:0]
		s.candNext[ti] = 0
	}
	for _, vm := range s.sim.VMs() {
		if vm.Failed() {
			continue // a dead VM takes no new work
		}
		s.cands[vm.Type.ID] = append(s.cands[vm.Type.ID], vmCandidate{vm: vm, free: vm.NextFree(t)})
	}
	for ti := range s.cands {
		slices.SortFunc(s.cands[ti], func(a, b vmCandidate) int {
			return cmp.Compare(a.free, b.free)
		})
	}
	for _, avm := range sched.VMs {
		var target *cloud.SimVM
		// Consume candidates through a cursor, not by reslicing: an
		// advanced slice header would abandon the front of the pooled
		// backing array on every arrival and force periodic regrowth.
		if next := s.candNext[avm.TypeID]; next < len(s.cands[avm.TypeID]) {
			target = s.cands[avm.TypeID][next].vm
			s.candNext[avm.TypeID]++
		} else {
			target = s.sim.Rent(s.eng.env.VMTypes[avm.TypeID], t)
			s.res.VMsRented++
		}
		for _, q := range avm.Queue {
			orig := int(s.tags[q.Tag].template)
			lat, ok := s.eng.env.Latency(orig, target.Type.ID)
			if !ok {
				// Under Degrade, reroute the unservable query to the
				// fallback VM type instead of failing the stream: partial
				// placements of this event have already been enqueued, so
				// absorbing the error here is the only exactly-once option.
				if ft := s.eng.fallbackType; s.eng.opts.Degrade && ft >= 0 {
					if flat, fok := s.eng.env.Latency(orig, ft); fok {
						s.rerouteFallback(ft, t).Enqueue(q.Tag, orig, t, flat)
						s.res.DegradedPlacements++
						s.eng.degradedPlacements.Add(1)
						continue
					}
				}
				return fmt.Errorf("core: online placement: template %d (query tag %d) cannot run on VM type %d", orig, q.Tag, target.Type.ID)
			}
			target.Enqueue(q.Tag, orig, t, lat)
		}
	}
	return nil
}

// rerouteFallback returns an active VM of the fallback type for a rerouted
// query — the free-soonest unconsumed candidate if one exists, a fresh rent
// otherwise. A freshly rented VM joins the candidate list so later reroutes
// (and later abstract VMs of that type) share it instead of renting again.
func (s *Stream) rerouteFallback(ft int, t time.Duration) *cloud.SimVM {
	if next := s.candNext[ft]; next < len(s.cands[ft]) {
		return s.cands[ft][next].vm
	}
	vm := s.sim.Rent(s.eng.env.VMTypes[ft], t)
	s.res.VMsRented++
	s.cands[ft] = append(s.cands[ft], vmCandidate{vm: vm, free: vm.ReadyAt})
	return vm
}

// shiftKey identifies a shifted model in the engine's ω-map: derived models
// are keyed by the registry (reg) and epoch of their base, so models
// adapted from a superseded epoch — or from another registry's identically
// numbered epoch — are never served in the wrong place.
type shiftKey struct {
	reg   uint32
	epoch uint64
	wait  time.Duration
}

// augModelKey identifies an augmented-template model in the ω-map.
type augModelKey struct {
	reg   uint32
	epoch uint64
	key   string // sorted "template@waitBucket" pairs
}

// mix64 is the SplitMix64 finalizer: a cheap, high-quality 64-bit mixer the
// cache uses to spread keys over its stripes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash folds the key into a stripe selector. Allocation-free — it runs on
// every derived-model lookup.
func (k shiftKey) hash() uint64 {
	return mix64(uint64(k.reg)<<48 ^ k.epoch<<20 ^ uint64(k.wait))
}

// hash folds the augmented key — FNV-1a over the ω-pattern string, mixed
// with the registry and epoch.
func (k augModelKey) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.key); i++ {
		h ^= uint64(k.key[i])
		h *= prime64
	}
	return mix64(h ^ uint64(k.reg)<<48 ^ k.epoch<<20)
}

// modelEntry is one ω-map slot. The builder closes done when the model (or
// error) is in place; concurrent requesters wait on it — duplicate
// suppression across tenants.
type modelEntry struct {
	done chan struct{}
	m    *Model
	err  error
}

// cacheShard is one mutex stripe of the ω-map: its own lock, its own maps.
// Lookups, inserts, and eviction for a key touch only the key's shard, so
// unrelated derived-model traffic never serializes.
type cacheShard struct {
	mu        sync.Mutex
	shifted   map[shiftKey]*modelEntry
	augmented map[augModelKey]*modelEntry
}

// DefaultCacheShards is the ω-map stripe count when OnlineOptions.CacheShards
// is zero: enough stripes that even 10k concurrent streams rarely collide on
// a lock, at a memory cost of a few empty maps.
const DefaultCacheShards = 64

// modelCache is the engine-wide ω-map (§6.3.1) shared by every stream,
// striped over power-of-two cacheShard stripes so derived-model lookups
// from many streams do not serialize on one lock. builds counts real model
// builds across all stripes (CacheStats aggregates nothing else — the
// stripes are an implementation detail of the lock, not of the contents).
type modelCache struct {
	shards []cacheShard
	mask   uint64
	builds atomic.Int64
}

// init sizes the stripe array. shards is rounded up to a power of two;
// shards <= 0 selects DefaultCacheShards. shards == 1 degenerates to the
// old single-lock ω-map — kept reachable as the measurement baseline for
// the striped-vs-global contention numbers in EXPERIMENTS.md.
func (c *modelCache) init(shards int) {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c.shards = make([]cacheShard, n)
	c.mask = uint64(n - 1)
	for i := range c.shards {
		c.shards[i].shifted = map[shiftKey]*modelEntry{}
		c.shards[i].augmented = map[augModelKey]*modelEntry{}
	}
}

// shard returns the stripe owning a key hash.
func (c *modelCache) shard(hash uint64) *cacheShard { return &c.shards[hash&c.mask] }

// size reports the total number of cached derived models across stripes.
func (c *modelCache) size() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.shifted) + len(s.augmented)
		s.mu.Unlock()
	}
	return n
}

// evictBefore drops every entry derived from reg's epochs older than epoch.
// Called on each hot swap: superseded derived models can never be served
// again (cache keys embed registry and epoch), and without eviction a
// long-running engine would pin every old base model — and its retained
// training data — for its whole lifetime. Eviction is per-stripe: each
// stripe is locked, scanned, and released independently, so a hot swap
// never stalls lookups on unrelated stripes (and other registries' entries
// are untouched). Streams still mid-event on the old epoch hold their
// entries directly, so eviction never invalidates an in-flight use.
func (c *modelCache) evictBefore(reg uint32, epoch uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k := range s.shifted {
			if k.reg == reg && k.epoch < epoch {
				delete(s.shifted, k)
			}
		}
		for k := range s.augmented {
			if k.reg == reg && k.epoch < epoch {
				delete(s.augmented, k)
			}
		}
		s.mu.Unlock()
	}
}

// shiftedMap and augmentedMap select a stripe's map for the generic
// getOrBuild; declared as named functions so the call sites pass a static
// function value — no closure allocation on the lookup path.
func shiftedMap(s *cacheShard) map[shiftKey]*modelEntry      { return s.shifted }
func augmentedMap(s *cacheShard) map[augModelKey]*modelEntry { return s.augmented }

// getOrBuild returns the cached model for key, building it at most once at
// a time across concurrent requesters. Only the key's stripe is locked —
// and only around the map probe, never across a build — so concurrent
// lookups of unrelated keys proceed in parallel. A failed build (including
// a cancelled one) is evicted, and waiting requesters do not adopt the
// failure — another tenant's cancelled context must not abort a healthy
// stream — they retry, becoming the builder themselves or waiting on a
// newer build. A builder always returns its own outcome, and a requester
// whose own ctx expires returns its ctx error without waiting out a build.
func getOrBuild[K comparable](c *modelCache, pick func(*cacheShard) map[K]*modelEntry, key K, hash uint64, ctx context.Context, build func() (*Model, error)) (*Model, error) {
	s := c.shard(hash)
	m := pick(s)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		e, ok := m[key]
		if !ok {
			e = &modelEntry{done: make(chan struct{})}
			m[key] = e
			s.mu.Unlock()
			c.builds.Add(1)
			e.m, e.err = build()
			if e.err != nil {
				s.mu.Lock()
				// Evict only our own entry: a pruned-and-replaced slot
				// belongs to a newer build.
				if cur, ok := m[key]; ok && cur == e {
					delete(m, key)
				}
				s.mu.Unlock()
			}
			close(e.done)
			return e.m, e.err
		}
		s.mu.Unlock()
		select {
		case <-e.done:
			if e.err == nil {
				return e.m, nil
			}
			// The builder failed (perhaps its ctx was cancelled); retry.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
