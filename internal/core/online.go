package core

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// OnlineOptions tunes online scheduling (§6.3).
type OnlineOptions struct {
	// Reuse enables the model-reuse optimization (§6.3.1): models built
	// for a given pattern of query waits (the ω-map) are cached and
	// reused when the same pattern recurs.
	Reuse bool
	// Shift enables the linear-shifting optimization (§6.3.1): for
	// shiftable goals (Max, PerQuery), a batch whose queries have waited
	// is scheduled by adaptively shifting the base model's goal instead
	// of training a model for augmented templates.
	Shift bool
	// WaitResolution buckets query waits when keying cached models and
	// building augmented templates; the paper observes two batches can
	// share a model when their ω differ by less than the latency
	// predictor's error. Default 1s.
	WaitResolution time.Duration
	// Retrain configures the from-scratch training used when neither
	// optimization applies. A zero value (NumSamples == 0) re-trains at
	// the base model's own scale — the paper's unoptimized baseline.
	Retrain TrainConfig
}

// DefaultOnlineOptions enables both optimizations and re-trains augmented
// models at the base model's scale when training from scratch is required.
func DefaultOnlineOptions() OnlineOptions {
	return OnlineOptions{
		Reuse:          true,
		Shift:          true,
		WaitResolution: time.Second,
	}
}

// OnlineResult reports the outcome of scheduling an arrival stream.
type OnlineResult struct {
	// Cost is the total monetary cost in cents: start-up fees,
	// processing fees, and the goal penalty over true query latencies
	// (completion − arrival).
	Cost float64
	// Penalty is the SLA penalty component of Cost.
	Penalty float64
	// Perf holds each query's true latency.
	Perf []sla.QueryPerf
	// VMsRented counts VMs provisioned over the stream.
	VMsRented int
	// SchedulingTime is the total advisor time across arrivals (model
	// acquisition + tree parsing) — the overhead Fig. 19 reports.
	SchedulingTime time.Duration
	// PerArrival holds the advisor time of each arrival event.
	PerArrival []time.Duration
	// Retrainings counts models built from scratch; Adaptations counts
	// models derived by shifting; CacheHits counts ω-map reuses.
	Retrainings, Adaptations, CacheHits int
}

// augKey identifies a "new template" (§6.3): an original template plus a
// bucketed wait.
type augKey struct {
	template int
	wait     time.Duration
}

// OnlineScheduler schedules queries one at a time (§6.3) using a base model
// and an execution simulator: each arrival re-batches every query that has
// not started executing, inflates waited queries' latencies as "new
// templates" (or shifts the goal, when enabled), obtains a model for the
// augmented specification, and re-schedules the batch.
//
// An OnlineScheduler is safe for concurrent use: Run serializes whole
// streams behind a mutex (the simulator and model caches are stateful), and
// the base Model it wraps may simultaneously serve batch scheduling from
// other goroutines. For concurrent independent streams, give each its own
// OnlineScheduler over one shared base Model.
type OnlineScheduler struct {
	base *Model
	opts OnlineOptions

	mu        sync.Mutex // guards everything below
	sim       *cloud.Sim
	arrival   map[int]time.Duration // query tag -> arrival time
	template  map[int]int           // query tag -> original template
	shiftedBy map[time.Duration]*Model
	augmented map[string]*Model
	res       *OnlineResult

	// Persistent per-stream scratch: the arrival loop re-batches and
	// re-places on every event, and these buffers keep that machinery
	// allocation-free in steady state instead of rebuilding maps and
	// candidate sets from scratch each arrival.
	batch    []int            // revoked + newly arrived tags
	queries  []workload.Query // batch rendered as workload queries
	wl       workload.Workload
	cands    [][]vmCandidate // per VM type, idle-soonest placement candidates
	candNext []int           // per VM type, cursor of the next unused candidate

	// placeStarted, when non-nil, is invoked at the top of place; tests
	// use it to pin that simulator placement runs outside the timed
	// advisor window (§6.3's overhead metric excludes execution).
	placeStarted func()
}

// vmCandidate is an active physical VM considered for an abstract VM slot.
type vmCandidate struct {
	vm   *cloud.SimVM
	free time.Duration
}

// NewOnlineScheduler returns a scheduler driven by the base model. The
// Shift optimization additionally requires the base model to retain
// training data (KeepTrainingData) and a shiftable goal.
func NewOnlineScheduler(base *Model, opts OnlineOptions) *OnlineScheduler {
	if opts.WaitResolution <= 0 {
		opts.WaitResolution = time.Second
	}
	if opts.Retrain.NumSamples == 0 {
		opts.Retrain = base.TrainingConfig
		opts.Retrain.KeepTrainingData = false
	}
	return &OnlineScheduler{
		base:      base,
		opts:      opts,
		sim:       cloud.NewSim(),
		arrival:   map[int]time.Duration{},
		template:  map[int]int{},
		shiftedBy: map[time.Duration]*Model{},
		augmented: map[string]*Model{},
		res:       &OnlineResult{},
	}
}

// Run schedules the workload's queries at their arrival times and simulates
// execution to completion. Concurrent Run calls are serialized.
func (o *OnlineScheduler) Run(w *workload.Workload) (*OnlineResult, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(w.Templates) != len(o.base.env.Templates) {
		return nil, fmt.Errorf("core: online workload has %d templates, model expects %d", len(w.Templates), len(o.base.env.Templates))
	}
	queries := append([]workload.Query(nil), w.Queries...)
	sort.SliceStable(queries, func(i, j int) bool { return queries[i].Arrival < queries[j].Arrival })
	for i := 0; i < len(queries); {
		// Queries arriving at the same instant form one batch event.
		t := queries[i].Arrival
		var arrived []workload.Query
		for i < len(queries) && queries[i].Arrival == t {
			arrived = append(arrived, queries[i])
			i++
		}
		if err := o.onArrival(t, arrived); err != nil {
			return nil, err
		}
	}
	o.finish()
	return o.res, nil
}

// onArrival handles one arrival event at time t (§6.3): revoke unstarted
// queries, form the batch B_i, obtain a model for the waited queries, and
// re-schedule.
//
// Only model acquisition and tree parsing are timed — SchedulingTime and
// PerArrival are the advisor-overhead metric of Fig. 19, and mapping the
// schedule onto simulator VMs (place) stands in for the execution layer the
// paper does not charge to the advisor (§6.3). TestOnlineTimingExcludesPlacement
// pins placement outside the timed window.
func (o *OnlineScheduler) onArrival(t time.Duration, arrived []workload.Query) error {
	for _, q := range arrived {
		o.arrival[q.Tag] = t
		o.template[q.Tag] = q.TemplateID
	}
	o.batch = o.batch[:0]
	for _, vm := range o.sim.VMs() {
		o.batch = vm.RevokeUnstartedInto(t, o.batch)
	}
	for _, q := range arrived {
		o.batch = append(o.batch, q.Tag)
	}
	slices.Sort(o.batch)

	begin := time.Now()
	sched, err := o.scheduleBatch(t, o.batch)
	elapsed := time.Since(begin)
	if err != nil {
		return err
	}
	o.res.SchedulingTime += elapsed
	o.res.PerArrival = append(o.res.PerArrival, elapsed)
	return o.place(t, sched)
}

// waitBucket floors a wait to the configured resolution.
func (o *OnlineScheduler) waitBucket(w time.Duration) time.Duration {
	return w - w%o.opts.WaitResolution
}

// scheduleBatch obtains a model appropriate for the batch's wait pattern
// and produces an abstract schedule whose Placed tags are real query tags.
func (o *OnlineScheduler) scheduleBatch(t time.Duration, batch []int) (*schedule.Schedule, error) {
	maxWait := time.Duration(0)
	allFresh := true
	for _, tag := range batch {
		w := o.waitBucket(t - o.arrival[tag])
		if w > 0 {
			allFresh = false
		}
		if w > maxWait {
			maxWait = w
		}
	}
	switch {
	case allFresh:
		return o.scheduleWith(o.base, batch)
	case o.opts.Shift && o.base.Goal.Shiftable():
		m, err := o.shiftedModel(maxWait)
		if err != nil {
			return nil, err
		}
		return o.scheduleWith(m, batch)
	default:
		return o.scheduleAugmented(t, batch)
	}
}

// shiftedModel returns a model for the goal shifted by w, adapting the base
// model (§5) and caching by bucket when Reuse is on.
func (o *OnlineScheduler) shiftedModel(w time.Duration) (*Model, error) {
	if o.opts.Reuse {
		if m, ok := o.shiftedBy[w]; ok {
			o.res.CacheHits++
			return m, nil
		}
	}
	m, err := o.base.ShiftedModel(w)
	if err != nil {
		return nil, err
	}
	o.res.Adaptations++
	if o.opts.Reuse {
		o.shiftedBy[w] = m
	}
	return m, nil
}

// scheduleAugmented builds the "new template" specification of §6.3: each
// distinct (template, wait) pair among waited queries becomes an extra
// template whose latency is inflated by the wait, a model is trained for
// the augmented specification (or fetched from the ω-map when Reuse is on),
// and the batch is scheduled against it.
func (o *OnlineScheduler) scheduleAugmented(t time.Duration, batch []int) (*schedule.Schedule, error) {
	base := o.base.env.Templates
	augID := map[augKey]int{}
	templates := append([]workload.Template(nil), base...)
	queryTemplate := make([]int, len(batch)) // batch index -> (augmented) template ID
	var keyParts []string
	for i, tag := range batch {
		orig := o.template[tag]
		w := o.waitBucket(t - o.arrival[tag])
		if w == 0 {
			queryTemplate[i] = orig
			continue
		}
		k := augKey{template: orig, wait: w}
		id, ok := augID[k]
		if !ok {
			id = len(templates)
			augID[k] = id
			ot := base[orig]
			templates = append(templates, workload.Template{
				ID:          id,
				Name:        fmt.Sprintf("%s+%s", ot.Name, w),
				BaseLatency: ot.BaseLatency + w,
				HighRAM:     ot.HighRAM,
			})
			keyParts = append(keyParts, fmt.Sprintf("%d@%d", orig, w/o.opts.WaitResolution))
		}
		queryTemplate[i] = id
	}

	sort.Strings(keyParts)
	cacheKey := strings.Join(keyParts, ",")
	var m *Model
	if o.opts.Reuse {
		if cached, ok := o.augmented[cacheKey]; ok {
			o.res.CacheHits++
			m = cached
		}
	}
	if m == nil {
		env := &schedule.Env{Templates: templates, VMTypes: o.base.env.VMTypes, Pred: o.base.env.Pred}
		goal, err := augmentGoal(o.base.Goal, base, augID)
		if err != nil {
			return nil, err
		}
		adv, err := NewAdvisor(env, o.opts.Retrain)
		if err != nil {
			return nil, fmt.Errorf("core: online augmented model: %w", err)
		}
		m, err = adv.Train(goal)
		if err != nil {
			return nil, err
		}
		o.res.Retrainings++
		if o.opts.Reuse {
			o.augmented[cacheKey] = m
		}
	}

	counts := make([]workload.Query, len(batch))
	for i, tag := range batch {
		counts[i] = workload.Query{TemplateID: queryTemplate[i], Tag: tag}
	}
	w := &workload.Workload{Templates: m.env.Templates, Queries: counts}
	return m.ScheduleBatch(w)
}

// augmentGoal extends a goal to cover augmented templates. Workload-level
// goals (Max, Average, Percentile) apply unchanged — the inflated latency
// feeds straight into their penalty. PerQuery goals give each augmented
// template the deadline of the template it derives from: a query that has
// waited w and then takes (queue + execution) time q has true latency
// w + q, and comparing the inflated-latency completion to the original
// deadline computes exactly that.
func augmentGoal(g sla.Goal, base []workload.Template, augID map[augKey]int) (sla.Goal, error) {
	pq, ok := g.(sla.PerQuery)
	if !ok {
		return g, nil
	}
	// Order augmented IDs densely after the base templates.
	type entry struct {
		id   int
		orig int
		wait time.Duration
	}
	entries := make([]entry, 0, len(augID))
	for k, id := range augID {
		entries = append(entries, entry{id: id, orig: k.template, wait: k.wait})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	for _, e := range entries {
		if e.id != len(pq.Deadlines) {
			return nil, fmt.Errorf("core: augmented template IDs not dense: got %d, want %d", e.id, len(pq.Deadlines))
		}
		pq = pq.WithExtraTemplate(pq.Deadline(e.orig), base[e.orig].BaseLatency+e.wait)
	}
	return pq, nil
}

// scheduleWith runs the model's batch scheduler over real query tags using
// the original template of each query.
func (o *OnlineScheduler) scheduleWith(m *Model, batch []int) (*schedule.Schedule, error) {
	o.queries = o.queries[:0]
	for _, tag := range batch {
		o.queries = append(o.queries, workload.Query{TemplateID: o.template[tag], Tag: tag})
	}
	o.wl = workload.Workload{Templates: m.env.Templates, Queries: o.queries}
	return m.ScheduleBatch(&o.wl)
}

// place maps the abstract VMs of a schedule onto physical simulator VMs:
// abstract VM j of type i goes to the free-soonest active physical VM of
// type i with no queued work, renting a new VM otherwise (DESIGN.md §2,
// "online scheduling interpretation"). Queries are enqueued with their true
// execution latency on the physical VM's type.
//
// It returns an error if a query's template cannot run on its assigned VM
// type: the batch scheduler only emits supported placements, so an
// unservable (template, VM type) pair here is a bug upstream — reported
// loudly instead of being absorbed as an absurd simulated latency.
func (o *OnlineScheduler) place(t time.Duration, sched *schedule.Schedule) error {
	if o.placeStarted != nil {
		o.placeStarted()
	}
	numTypes := len(o.base.env.VMTypes)
	if cap(o.cands) < numTypes {
		o.cands = make([][]vmCandidate, numTypes)
		o.candNext = make([]int, numTypes)
	}
	o.cands = o.cands[:numTypes]
	o.candNext = o.candNext[:numTypes]
	for ti := range o.cands {
		o.cands[ti] = o.cands[ti][:0]
		o.candNext[ti] = 0
	}
	for _, vm := range o.sim.VMs() {
		o.cands[vm.Type.ID] = append(o.cands[vm.Type.ID], vmCandidate{vm: vm, free: vm.NextFree(t)})
	}
	for ti := range o.cands {
		slices.SortFunc(o.cands[ti], func(a, b vmCandidate) int {
			return cmp.Compare(a.free, b.free)
		})
	}
	for _, avm := range sched.VMs {
		var target *cloud.SimVM
		// Consume candidates through a cursor, not by reslicing: an
		// advanced slice header would abandon the front of the pooled
		// backing array on every arrival and force periodic regrowth.
		if next := o.candNext[avm.TypeID]; next < len(o.cands[avm.TypeID]) {
			target = o.cands[avm.TypeID][next].vm
			o.candNext[avm.TypeID]++
		} else {
			target = o.sim.Rent(o.base.env.VMTypes[avm.TypeID], t)
			o.res.VMsRented++
		}
		for _, q := range avm.Queue {
			orig := o.template[q.Tag]
			lat, ok := o.base.env.Latency(orig, target.Type.ID)
			if !ok {
				return fmt.Errorf("core: online placement: template %d (query tag %d) cannot run on VM type %d", orig, q.Tag, target.Type.ID)
			}
			target.Enqueue(q.Tag, orig, lat)
		}
	}
	return nil
}

// finish drains the simulation and computes the final cost: provisioning
// from the simulator plus the goal's penalty over true latencies
// (completion − arrival).
func (o *OnlineScheduler) finish() {
	runs := o.sim.Finish()
	perf := make([]sla.QueryPerf, len(runs))
	for i, r := range runs {
		perf[i] = sla.QueryPerf{TemplateID: r.TemplateID, Latency: r.End - o.arrival[r.Tag]}
	}
	o.res.Perf = perf
	o.res.Penalty = o.base.Goal.Penalty(perf)
	o.res.Cost = o.sim.ProvisioningCost() + o.res.Penalty
}
