package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"wisedb/internal/search"
)

// forEach runs fn(i) for every i in [0, n) across a pool of worker
// goroutines. It is the execution engine behind training, adaptive
// re-training, and strategy profiling: each index is an independent unit of
// work (one sample workload's exact search), so the pool hands out indices
// from an atomic counter and workers write results into caller-owned,
// per-index slots — no locks on the hot path, and the caller folds results
// in index order afterwards so the outcome is identical for any worker
// count.
//
// workers <= 0 selects runtime.GOMAXPROCS(0). The first error cancels the
// remaining work and is returned; a canceled ctx surfaces as its ctx.Err().
func forEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline fast path: no goroutines, same semantics.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// spawnWorkers starts one goroutine per worker index and returns the group
// to wait on. Unlike forEach — which hands out independent work items from
// a counter — each worker here is a long-lived loop with an identity: the
// sharded serving layer runs one worker per engine shard, each draining its
// own shard's run queue (see RunTenants).
func spawnWorkers(n int, fn func(worker int)) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			fn(w)
		}()
	}
	return &wg
}

// searchCacheGeneration is the epoch size of the transposition-cache
// barrier: sample searches run in generations of this many indices, and a
// generation's solved suffixes are committed to the shared cache only at
// the barrier after it completes. Every search therefore observes exactly
// the commits of strictly earlier generations — a pure function of the
// training inputs — so trained models stay bit-identical at any
// Parallelism even though equal-cost optima may be stitched from cached
// suffixes. The constant is deliberately independent of the worker count.
const searchCacheGeneration = 32

// solveSamples runs run(i) for every sample index on the worker pool,
// inserting deterministic commit barriers when a transposition cache is in
// play. With cache == nil it degenerates to one forEach over all indices.
func solveSamples(ctx context.Context, workers, n int, cache *search.TranspositionCache,
	run func(i int, cache *search.TranspositionCache, rec *search.PendingSuffixes) error) error {
	return solveSamplesFold(ctx, workers, n, cache, run, nil)
}

// solveSamplesFold is solveSamples with a pipelined fold stage: after each
// generation's commit barrier, the completed index range [lo, hi) is handed
// to fold on a dedicated goroutine, so folding generation k (building the
// decision-tree dataset, harvesting counters) overlaps the searches of
// generation k+1. Ranges arrive in index order and fold runs
// single-threaded, so any fold that appends per index in range order
// produces exactly the sequence a post-hoc loop over [0, n) would — the
// pipelining is invisible to the result. The channel hand-off
// happens-before each fold call, so fold may freely read the per-index
// slots the workers wrote. solveSamplesFold returns only after the fold
// goroutine has drained (on error, remaining ranges are discarded).
func solveSamplesFold(ctx context.Context, workers, n int, cache *search.TranspositionCache,
	run func(i int, cache *search.TranspositionCache, rec *search.PendingSuffixes) error,
	fold func(lo, hi int) error) error {
	var (
		ranges   chan [2]int
		foldDone chan error
	)
	emit := func(lo, hi int) {
		if ranges != nil && hi > lo {
			ranges <- [2]int{lo, hi}
		}
	}
	// finish closes the pipeline and joins the fold goroutine; the run
	// error wins over a fold error (it happened first).
	finish := func(err error) error {
		if ranges == nil {
			return err
		}
		close(ranges)
		foldErr := <-foldDone
		if err == nil {
			err = foldErr
		}
		return err
	}
	if fold != nil {
		ranges = make(chan [2]int, 8)
		foldDone = make(chan error, 1)
		go func() {
			var err error
			for r := range ranges {
				if err == nil {
					err = fold(r[0], r[1])
				}
				// After a fold error, keep draining so emit never blocks.
			}
			foldDone <- err
		}()
	}

	if cache == nil {
		// No barriers to pipeline against: one pool pass, one fold.
		err := forEach(ctx, workers, n, func(i int) error { return run(i, nil, nil) })
		if err == nil {
			emit(0, n)
		}
		return finish(err)
	}
	gen := searchCacheGeneration
	if gen > n {
		gen = n
	}
	pending := make([]search.PendingSuffixes, gen)
	for base := 0; base < n; base += gen {
		g := gen
		if base+g > n {
			g = n - base
		}
		first := base
		if err := forEach(ctx, workers, g, func(j int) error {
			return run(first+j, cache, &pending[j])
		}); err != nil {
			return finish(err)
		}
		// Commit order is irrelevant (the merge is commutative); doing it
		// at the barrier, single-threaded, is what keeps the visible cache
		// state independent of goroutine scheduling.
		for j := 0; j < g; j++ {
			cache.Commit(&pending[j])
		}
		emit(base, base+g)
	}
	return finish(nil)
}

// deriveSeed mixes a per-sample sub-seed out of the training seed and the
// sample index with a SplitMix64 finalizer. Every sample workload is drawn
// from its own deterministic sub-stream, so sample i is the same workload no
// matter which worker draws it — training results are bit-identical for any
// Parallelism.
func deriveSeed(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
