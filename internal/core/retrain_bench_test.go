package core

import (
	"context"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// retrainScenarios are the two drift magnitudes a registry retrains
// across, at paper scale (N=500 samples of m=12 queries, the
// DefaultTrainConfig the experiments run with):
//
//   - steady: the common case after the first recovery — the detector
//     rebaselines on every swap, so successive retrains chase small mix
//     motion. Most per-query inverse-CDF draws are unchanged, so most
//     samples replay warm.
//   - jump: a large shift (toward 60% mass on one template). Nearly every
//     sample redraws differently, so the warm path degrades toward the
//     cold cost — this is the warm path's worst case, not its pitch.
var retrainScenarios = []struct {
	name      string
	prior, to []float64
}{
	{"steady", []float64{0.3, 0.25, 0.2, 0.15, 0.1}, []float64{0.31, 0.24, 0.21, 0.14, 0.1}},
	{"jump", []float64{0.2, 0.2, 0.2, 0.2, 0.2}, []float64{0.1, 0.1, 0.1, 0.1, 0.6}},
}

// benchRetrainEpoch trains the serving epoch a drift retrain replaces.
func benchRetrainEpoch(b *testing.B, prior []float64) *ModelEpoch {
	b.Helper()
	env := schedule.NewEnv(workload.DefaultTemplates(5), cloud.DefaultVMTypes(2))
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	cfg := DefaultTrainConfig()
	cfg.Seed = 17
	cfg.KeepTrainingData = true
	cfg.SampleWeights = prior
	base, err := MustNewAdvisor(env, cfg).Train(goal)
	if err != nil {
		b.Fatal(err)
	}
	return &ModelEpoch{Model: base, Epoch: 1, Mix: base.TrainingMix()}
}

// BenchmarkColdRetrain measures the pre-warm-path drift response: every
// sample solved from scratch against an empty transposition cache. This is
// the baseline the warm path is compared to; both produce bit-identical
// models.
func BenchmarkColdRetrain(b *testing.B) {
	for _, sc := range retrainScenarios {
		b.Run(sc.name, func(b *testing.B) {
			cur := benchRetrainEpoch(b, sc.prior)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ColdDriftRetrain(ctx, cur, sc.to); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWarmRetrain measures the default drift response: cross-epoch
// cache seeding plus sample-level replay (see WarmTrain). The reported
// warm_samples and cache_hit_rate metrics show where the speedup over
// BenchmarkColdRetrain comes from.
func BenchmarkWarmRetrain(b *testing.B) {
	for _, sc := range retrainScenarios {
		b.Run(sc.name, func(b *testing.B) {
			cur := benchRetrainEpoch(b, sc.prior)
			ctx := context.Background()
			var last *Model
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := DriftRetrain(ctx, cur, sc.to)
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.StopTimer()
			if last != nil {
				b.ReportMetric(float64(last.WarmSamples), "warm_samples")
				if total := last.TrainingCacheHits + last.TrainingCacheMisses; total > 0 {
					b.ReportMetric(float64(last.TrainingCacheHits)/float64(total), "cache_hit_rate")
				}
			}
		})
	}
}
