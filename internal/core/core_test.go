package core

import (
	"context"
	"math"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/search"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// smallAdvisor returns an advisor with a reduced but meaningful training
// scale, fast enough for unit tests.
func smallAdvisor(t *testing.T, numTemplates, numTypes int) *Advisor {
	t.Helper()
	env := schedule.NewEnv(workload.DefaultTemplates(numTemplates), cloud.DefaultVMTypes(numTypes))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 120
	cfg.SampleSize = 8
	return MustNewAdvisor(env, cfg)
}

func testGoals(env *schedule.Env) map[string]sla.Goal {
	return map[string]sla.Goal{
		"max":        sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"perquery":   sla.NewPerQuery(3, env.Templates, sla.DefaultPenaltyRate),
		"average":    sla.NewAverage(10*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"percentile": sla.NewPercentile(90, 10*time.Minute, env.Templates, sla.DefaultPenaltyRate),
	}
}

// The learned model must schedule workloads near-optimally: the paper
// reports within 8% of optimal across metrics (Fig. 9). With our reduced
// training scale we accept a wider margin but still require closeness.
func TestModelNearOptimal(t *testing.T) {
	adv := smallAdvisor(t, 5, 1)
	for name, goal := range testGoals(adv.Env()) {
		t.Run(name, func(t *testing.T) {
			sampler := workload.NewSampler(adv.Env().Templates, 777)
			model, err := adv.Train(goal)
			if err != nil {
				t.Fatal(err)
			}
			searcher, err := search.New(graph.NewProblem(adv.Env(), goal))
			if err != nil {
				t.Fatal(err)
			}
			totalModel, totalOpt := 0.0, 0.0
			for trial := 0; trial < 5; trial++ {
				w := sampler.Uniform(14)
				sched, err := model.ScheduleBatch(w)
				if err != nil {
					t.Fatal(err)
				}
				if err := sched.Validate(adv.Env(), w); err != nil {
					t.Fatalf("invalid schedule: %v", err)
				}
				opt, err := searcher.Solve(w, search.Options{})
				if err != nil {
					t.Fatal(err)
				}
				got := sched.Cost(adv.Env(), goal)
				if got < opt.Cost-1e-6 {
					t.Fatalf("model beat the optimum: %f < %f", got, opt.Cost)
				}
				totalModel += got
				totalOpt += opt.Cost
			}
			ratio := totalModel / totalOpt
			t.Logf("model/optimal cost ratio: %.3f", ratio)
			if ratio > 1.35 {
				t.Fatalf("model is %.1f%% above optimal; want < 35%%", (ratio-1)*100)
			}
		})
	}
}

// Scheduling a large batch must be fast and linear-ish (§7.4: 30K queries
// in under 1.5s; the complexity is O(h·n)).
func TestBatchSchedulingScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	adv := smallAdvisor(t, 5, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	model, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	sampler := workload.NewSampler(adv.Env().Templates, 5)
	w := sampler.Uniform(30000)
	start := time.Now()
	sched, err := model.ScheduleBatch(w)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := sched.Validate(adv.Env(), w); err != nil {
		t.Fatal(err)
	}
	t.Logf("scheduled 30000 queries in %s across %d VMs", elapsed, len(sched.VMs))
	if elapsed > 10*time.Second {
		t.Fatalf("batch scheduling too slow: %s", elapsed)
	}
}

// Adaptive modeling must be cheaper than fresh training and produce a model
// bound to the tightened goal.
func TestAdaptFasterThanFresh(t *testing.T) {
	adv := smallAdvisor(t, 5, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	base, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := base.Tighten(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if adapted.Goal.(sla.MaxLatency).Deadline >= goal.Deadline {
		t.Fatal("tightened goal should have a smaller deadline")
	}
	fresh, err := adv.Train(adapted.Goal)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adapt=%s fresh=%s", adapted.TrainingTime, fresh.TrainingTime)
	// At this tiny training scale both are a few milliseconds and subject
	// to scheduler noise; adaptive re-training must at least not be
	// substantially slower. The Fig. 16 harness measures the real
	// speedup at experiment scale.
	if adapted.TrainingTime > 2*fresh.TrainingTime+10*time.Millisecond {
		t.Errorf("adaptive re-training (%s) much slower than fresh training (%s)", adapted.TrainingTime, fresh.TrainingTime)
	}
	// The adapted model must still schedule correctly.
	w := workload.NewSampler(adv.Env().Templates, 2).Uniform(10)
	sched, err := adapted.ScheduleBatch(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(adv.Env(), w); err != nil {
		t.Fatal(err)
	}
}

// Adapt must refuse models without retained training data.
func TestAdaptRequiresTrainingData(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(1))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 20
	cfg.SampleSize = 5
	cfg.KeepTrainingData = false
	adv := MustNewAdvisor(env, cfg)
	m, err := adv.Train(sla.NewMaxLatency(15*time.Minute, env.Templates, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tighten(0.2); err == nil {
		t.Fatal("want error adapting a model without training data")
	}
}

// Strategy recommendation must return k strategies ordered loosest to
// strictest, with cost estimates that increase with workload size.
func TestRecommend(t *testing.T) {
	adv := smallAdvisor(t, 4, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	cfg := DefaultRecommendConfig()
	cfg.K = 3
	cfg.CandidateCount = 5
	cfg.ProfileWorkloadSize = 60
	strategies, err := adv.Recommend(goal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(strategies) != 3 {
		t.Fatalf("want 3 strategies, got %d", len(strategies))
	}
	prevDeadline := time.Duration(math.MaxInt64)
	for i, s := range strategies {
		d := s.Model.Goal.(sla.MaxLatency).Deadline
		if d > prevDeadline {
			t.Fatalf("strategy %d looser than its predecessor", i)
		}
		prevDeadline = d
		small := s.EstimateCost([]int{1, 1, 1, 1})
		large := s.EstimateCost([]int{10, 10, 10, 10})
		if small <= 0 || large <= small {
			t.Fatalf("strategy %d: cost estimates not increasing: %f, %f", i, small, large)
		}
	}
}

// Online scheduling must execute every query exactly once, with correct
// accounting, under every optimization combination.
func TestOnlineSchedulesEveryQuery(t *testing.T) {
	adv := smallAdvisor(t, 3, 1)
	goal := sla.NewPerQuery(3, adv.Env().Templates, sla.DefaultPenaltyRate)
	base, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	sampler := workload.NewSampler(adv.Env().Templates, 21)
	w := sampler.Uniform(12)
	arrivals := workload.FixedDelayArrivals(12, 20*time.Second)
	w = w.WithArrivals(arrivals)
	for _, opt := range []struct {
		name         string
		reuse, shift bool
	}{
		{"none", false, false},
		{"reuse", true, false},
		{"shift", false, true},
		{"shift+reuse", true, true},
	} {
		t.Run(opt.name, func(t *testing.T) {
			opts := DefaultOnlineOptions()
			opts.Reuse = opt.reuse
			opts.Shift = opt.shift
			opts.Retrain.NumSamples = 30
			opts.Retrain.SampleSize = 6
			sched := NewOnlineScheduler(base, opts)
			res, err := sched.Run(w)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Perf) != 12 {
				t.Fatalf("want 12 completed queries, got %d", len(res.Perf))
			}
			if res.Cost <= 0 {
				t.Fatalf("cost must be positive, got %f", res.Cost)
			}
			if res.VMsRented == 0 {
				t.Fatal("no VMs rented")
			}
			t.Logf("%s: cost=%.2f¢ rented=%d retrain=%d adapt=%d hits=%d overhead=%s",
				opt.name, res.Cost, res.VMsRented, res.Retrainings, res.Adaptations, res.CacheHits, res.SchedulingTime)
		})
	}
}

// The Shift optimization must avoid from-scratch retraining entirely for
// shiftable goals.
func TestOnlineShiftAvoidsRetraining(t *testing.T) {
	adv := smallAdvisor(t, 3, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	base, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	sampler := workload.NewSampler(adv.Env().Templates, 31)
	w := sampler.Uniform(15).WithArrivals(workload.FixedDelayArrivals(15, 10*time.Second))

	opts := DefaultOnlineOptions()
	opts.Shift = true
	opts.Reuse = true
	res, err := NewOnlineScheduler(base, opts).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retrainings != 0 {
		t.Fatalf("shift enabled: want 0 from-scratch retrainings, got %d", res.Retrainings)
	}
	if res.Adaptations == 0 {
		t.Fatal("10s gaps with minute-long queries must require shifted models")
	}
}

// The ω-map (§6.3.1) must return cached models when the same wait pattern
// recurs, both for shifted and for augmented-template models.
func TestOnlineModelReuseCache(t *testing.T) {
	adv := smallAdvisor(t, 3, 1)
	maxGoal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	base, err := adv.Train(maxGoal)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOnlineOptions()
	opts.Retrain.NumSamples = 20
	opts.Retrain.SampleSize = 5
	o := NewOnlineScheduler(base, opts)
	s := o.NewStream(&SimClock{})
	epoch := o.Registry().Current()
	ctx := context.Background()
	m1, err := s.shiftedModel(ctx, epoch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.shiftedModel(ctx, epoch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("identical wait buckets must reuse the shifted model")
	}
	if s.res.CacheHits != 1 || s.res.Adaptations != 1 {
		t.Fatalf("want 1 adaptation + 1 hit, got %d/%d", s.res.Adaptations, s.res.CacheHits)
	}

	// A second stream of the same engine acquiring the same key must not
	// rebuild the model (shared ω-map, one build), while its own counters
	// record a first acquisition.
	s2 := o.NewStream(&SimClock{})
	m3, err := s2.shiftedModel(ctx, epoch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m3 != m1 {
		t.Fatal("streams of one engine must share the ω-map")
	}
	if s2.res.Adaptations != 1 || s2.res.CacheHits != 0 {
		t.Fatalf("second stream: want 1 adaptation + 0 hits, got %d/%d", s2.res.Adaptations, s2.res.CacheHits)
	}
	if got := o.CacheStats(); got != 1 {
		t.Fatalf("engine built %d shifted models, want 1 (duplicate suppression)", got)
	}

	// Augmented-model cache: same (template, wait) pattern on a
	// non-shiftable goal must hit the ω-map.
	avgAdv := smallAdvisor(t, 3, 1)
	avgGoal := sla.NewAverage(10*time.Minute, avgAdv.Env().Templates, sla.DefaultPenaltyRate)
	avgBase, err := avgAdv.Train(avgGoal)
	if err != nil {
		t.Fatal(err)
	}
	oa := NewOnlineScheduler(avgBase, opts)
	sa := oa.NewStream(&SimClock{})
	sa.ensureTag(0)
	sa.tags[0] = tagState{arrival: 0, template: 1}
	aEpoch := oa.Registry().Current()
	if _, err := sa.scheduleAugmented(ctx, aEpoch, 30*time.Second, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.scheduleAugmented(ctx, aEpoch, 30*time.Second, []int{0}); err != nil {
		t.Fatal(err)
	}
	if sa.res.Retrainings != 1 || sa.res.CacheHits != 1 {
		t.Fatalf("want 1 retraining + 1 hit, got %d/%d", sa.res.Retrainings, sa.res.CacheHits)
	}
}

// A batch arriving all at once through the online path must cost the same
// as the batch scheduler run directly (single event, no waits).
func TestOnlineDegeneratesToBatch(t *testing.T) {
	adv := smallAdvisor(t, 3, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	base, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	sampler := workload.NewSampler(adv.Env().Templates, 41)
	w := sampler.Uniform(10) // all arrivals zero
	res, err := NewOnlineScheduler(base, DefaultOnlineOptions()).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := base.ScheduleBatch(w)
	if err != nil {
		t.Fatal(err)
	}
	// The simulator adds VM start-up delay to query latencies, so costs
	// differ by at most the extra penalty from that delay; provisioning
	// must match exactly.
	wantProv := sched.ProvisioningCost(adv.Env())
	gotProv := res.Cost - res.Penalty
	if math.Abs(wantProv-gotProv) > 1e-6 {
		t.Fatalf("provisioning: batch %.6f, online %.6f", wantProv, gotProv)
	}
}

// Model dumps must render every action name.
func TestModelDump(t *testing.T) {
	adv := smallAdvisor(t, 3, 2)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	dump := m.Dump()
	if dump == "" {
		t.Fatal("empty dump")
	}
	t.Logf("model height=%d nodes=%d\n%s", m.Tree.Height(), m.Tree.NumNodes(), dump)
}
