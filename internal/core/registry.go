package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wisedb/internal/store"
)

// ModelEpoch is one immutable generation of a serving model: the model, a
// monotonically increasing epoch number, and the normalized template-arrival
// mix the model was trained to serve. Streams load the current epoch once
// per arrival event; everything inside an epoch is read-only, so a loaded
// epoch stays valid for the whole event even if a swap lands mid-arrival.
type ModelEpoch struct {
	// Model is the serving model of this epoch.
	Model *Model
	// Epoch numbers generations from 0 (the base model). Derived-model
	// caches key by it, so models shifted or augmented from a superseded
	// base are never served after a swap.
	Epoch uint64
	// Mix is the normalized template distribution the model targets. The
	// per-stream drift detectors compare live arrival histograms against
	// it — after a swap the detectors automatically re-baseline to the new
	// epoch's mix.
	Mix []float64
	// Hash is the model's content hash when already known — epochs
	// installed from a checkpoint store carry the hash their lineage
	// recorded, sparing CheckpointTo a full re-encode on re-attach.
	// Zero for freshly trained epochs (computed when checkpointed).
	Hash uint64
}

// RetrainFunc builds a replacement model for the observed arrival mix. cur
// is the epoch that was current when the retrain was triggered.
type RetrainFunc func(ctx context.Context, cur *ModelEpoch, mix []float64) (*Model, error)

// ModelRegistry is the model lifecycle subsystem of the online engine
// (§6's adaptive-modeling loop, productionized): it holds the current
// serving epoch behind an atomic pointer, runs at most one drift retrain at
// a time, and hot-swaps the result in without stalling arrivals. Streams
// observe the swap at their next arrival event; in-flight events keep the
// epoch they loaded, so no arrival is ever dropped or scheduled twice.
//
// A ModelRegistry is safe for concurrent use.
type ModelRegistry struct {
	cur     atomic.Pointer[ModelEpoch]
	retrain RetrainFunc
	// id is the engine-assigned registry index. The engine's shared ω-map
	// embeds it in every derived-model key, so two registries' epoch
	// numbers never collide in the striped cache. Zero for a standalone
	// registry and for an engine's default registry.
	id uint32
	// onSwap, when non-nil, runs after each epoch installation (under the
	// swap lock). The serving engine uses it to evict derived models of
	// superseded epochs from its ω-map.
	onSwap func(*ModelEpoch)

	// inFlight gates the single retrain slot; wg lets tests and shutdown
	// drain a background retrain (and any background checkpoint).
	inFlight atomic.Bool
	wg       sync.WaitGroup
	swapMu   sync.Mutex // serializes epoch increments

	// ckpt, when non-nil, is the durable model store every installed
	// epoch is checkpointed to (see CheckpointTo). Guarded by swapMu.
	ckpt *store.ModelStore

	triggers, swaps, failures atomic.Int64
	lastErr                   atomic.Pointer[error]

	checkpoints, checkpointFailures atomic.Int64
	lastCkptErr                     atomic.Pointer[error]

	// Retry discipline (see robust.go): policy, breaker position, backoff
	// window, and the deterministic jitter cursor, all guarded by robustMu.
	robustMu       sync.Mutex
	policy         RetryPolicy
	breaker        breakerState
	breakerBudget  int
	consecFailures int
	suppress       int
	jitterN        uint64

	backoffSuppressed, breakerRejected atomic.Int64
	breakerOpens, breakerCloses        atomic.Int64
	checkpointRetries                  atomic.Int64

	// Retrain cost and warm-reuse accounting (see WarmTrain): per-retrain
	// wall time and the warm/cold sample and cache-hit split of the last
	// successful retrain, plus running totals.
	lastRetrainMS, retrainMSTotal        atomic.Int64
	warmSamplesTotal, coldSamplesTotal   atomic.Int64
	retrainCacheHits, retrainCacheMisses atomic.Int64
}

// NewModelRegistry returns a registry serving base as epoch 0, with the
// default drift response: re-train at the base model's own scale with
// sample workloads drawn from the observed mix (see DriftRetrain).
func NewModelRegistry(base *Model) *ModelRegistry {
	if base == nil {
		panic("core: NewModelRegistry requires a base model")
	}
	r := &ModelRegistry{retrain: DriftRetrain, policy: DefaultRetryPolicy()}
	r.cur.Store(&ModelEpoch{Model: base, Epoch: 0, Mix: base.TrainingMix()})
	return r
}

// SetRetrain replaces the drift response. Call before serving begins.
func (r *ModelRegistry) SetRetrain(f RetrainFunc) { r.retrain = f }

// Current returns the serving epoch. It never returns nil and never
// allocates — it is on the per-arrival hot path.
func (r *ModelRegistry) Current() *ModelEpoch { return r.cur.Load() }

// Swap installs m as the next epoch and returns its number. mix is the
// arrival mix the model targets; nil uses the model's own training mix.
func (r *ModelRegistry) Swap(m *Model, mix []float64) uint64 {
	return r.install(m, mix, store.Lineage{Reason: "manual"})
}

// install is the single epoch-installation path: it assigns the next epoch
// number, publishes the epoch, notifies onSwap (derived-model cache
// eviction), and — when a checkpoint store is attached — commits the epoch
// durably in the background, off every arrival path. lin carries the
// install's provenance (reason, trigger EMD); epoch numbers, parent, mix,
// and model hash are filled here.
func (r *ModelRegistry) install(m *Model, mix []float64, lin store.Lineage) uint64 {
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	if mix == nil {
		mix = m.TrainingMix()
	}
	prev := r.cur.Load()
	next := &ModelEpoch{Model: m, Epoch: prev.Epoch + 1, Mix: mix}
	r.cur.Store(next)
	r.swaps.Add(1)
	if r.onSwap != nil {
		r.onSwap(next)
	}
	if r.ckpt != nil {
		lin.Epoch = next.Epoch
		lin.Parent = prev.Epoch
		lin.Mix = mix
		r.wg.Add(1)
		go func(ms *store.ModelStore) {
			defer r.wg.Done()
			r.commitCheckpoint(ms, next, lin)
		}(r.ckpt)
	}
	return next.Epoch
}

// commitCheckpoint encodes and durably commits one epoch, retrying
// transient store faults per the retry policy. Failures are recorded in
// Stats and never disturb serving: the in-memory epoch keeps serving, and
// the store keeps its previous committed state.
func (r *ModelRegistry) commitCheckpoint(ms *store.ModelStore, e *ModelEpoch, lin store.Lineage) {
	data, hash, err := encodeModel(e.Model)
	if err == nil {
		lin.ModelHash = hash
		err = r.commitWithRetry(ms, data, lin)
	}
	if err != nil {
		r.checkpointFailures.Add(1)
		r.lastCkptErr.Store(&err)
		return
	}
	r.checkpoints.Add(1)
}

// commitWithRetry attempts a durable commit up to the policy's attempt
// bound, backing off (doubling, wall-clock — this never runs on an arrival
// path) between attempts. A store.Commit that fails leaves the store's
// previous committed state intact and its manifest untouched, so a retry is
// a clean re-commit, not a repair.
func (r *ModelRegistry) commitWithRetry(ms *store.ModelStore, data []byte, lin store.Lineage) error {
	p := r.retryPolicy()
	var err error
	for attempt := 0; attempt < p.CheckpointAttempts; attempt++ {
		if attempt > 0 {
			r.checkpointRetries.Add(1)
			if p.CheckpointBackoff > 0 {
				time.Sleep(p.RetryDelay(attempt, uint64(p.JitterSeed)))
			}
		}
		if err = ms.Commit(data, lin); err == nil {
			return nil
		}
	}
	return err
}

// CheckpointTo attaches a durable model store: the current epoch is
// committed synchronously (so "train, then serve with checkpointing"
// persists the base model before the first arrival), and every subsequent
// epoch install is committed by a background goroutine — the checkpoint
// never runs on an arrival path, preserving the serving engine's
// steady-state zero-allocation guarantee.
//
// The store must continue this registry's lineage. A registry warm-started
// from ms attaches cleanly (its current epoch is already committed and is
// not re-committed). A store whose newest epoch is ahead of — or holds a
// different model at — the registry's current epoch demonstrably belongs
// to another serving lineage and is refused, rather than silently
// colliding every future epoch number with the store's history. A store
// strictly *behind* the registry cannot be audited the same way (the
// registry's earlier epochs were never durably recorded anywhere) and is
// assumed to be this lineage's own older history — e.g. checkpointing
// attached late after a warm start — so the current epoch is committed on
// top of it; attach a foreign directory in that state and its manifest
// will interleave two histories.
func (r *ModelRegistry) CheckpointTo(ms *store.ModelStore) error {
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	cur := r.cur.Load()
	if latest, ok := ms.LatestEpoch(); ok && latest >= cur.Epoch {
		if latest > cur.Epoch {
			return fmt.Errorf("core: checkpoint store %s is at epoch %d, ahead of this registry's epoch %d — warm-start from it or use a fresh directory", ms.Dir(), latest, cur.Epoch)
		}
		hash := cur.Hash
		if hash == 0 {
			// Identity unknown (the epoch was not installed from a
			// store): pay one encode to establish it.
			var err error
			if _, hash, err = encodeModel(cur.Model); err != nil {
				return fmt.Errorf("core: checkpoint epoch %d: %w", cur.Epoch, err)
			}
		}
		entries := ms.Entries()
		if stored := entries[len(entries)-1]; stored.ModelHash != hash {
			return fmt.Errorf("core: checkpoint store %s already holds a different model at epoch %d (hash %016x, serving %016x) — it records another serving lineage", ms.Dir(), cur.Epoch, stored.ModelHash, hash)
		}
		r.ckpt = ms // warm-started from this store: current epoch already durable
		return nil
	}
	data, hash, err := encodeModel(cur.Model)
	if err != nil {
		return fmt.Errorf("core: checkpoint epoch %d: %w", cur.Epoch, err)
	}
	reason := "base"
	parent := cur.Epoch
	if cur.Epoch > 0 {
		reason = "manual"
		parent = cur.Epoch - 1
	}
	lin := store.Lineage{Epoch: cur.Epoch, Parent: parent, Reason: reason, Mix: cur.Mix, ModelHash: hash}
	if err := r.commitWithRetry(ms, data, lin); err != nil {
		return err
	}
	r.ckpt = ms
	r.checkpoints.Add(1)
	return nil
}

// loadLatestEpoch decodes a store's newest intact epoch into a serving
// epoch: the model under its persisted epoch number and arrival mix.
func loadLatestEpoch(ms *store.ModelStore) (*ModelEpoch, error) {
	lin, data, err := ms.Latest()
	if err != nil {
		return nil, fmt.Errorf("core: warm start: %w", err)
	}
	m, err := DecodeModel(data)
	if err != nil {
		return nil, fmt.Errorf("core: warm start epoch %d: %w", lin.Epoch, err)
	}
	mix := lin.Mix
	if len(mix) != len(m.env.Templates) {
		mix = m.TrainingMix()
	}
	return &ModelEpoch{Model: m, Epoch: lin.Epoch, Mix: mix, Hash: lin.ModelHash}, nil
}

// installEpoch publishes a warm-started epoch wholesale — persisted epoch
// number included — through the same notification path as a hot swap.
func (r *ModelRegistry) installEpoch(e *ModelEpoch) {
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	r.cur.Store(e)
	if r.onSwap != nil {
		r.onSwap(e)
	}
}

// WarmStart replaces the registry's serving state with the store's newest
// intact epoch: the decoded model starts serving under its persisted epoch
// number and arrival mix, so lineage continues across the restart and no
// training search runs. Streams observe the install like any hot swap —
// and rebaseline their drift detectors against the restored mix rather
// than re-triggering against a stale one (see the per-stream epoch
// tracking in onArrival). The installed epoch is returned.
func (r *ModelRegistry) WarmStart(ms *store.ModelStore) (*ModelEpoch, error) {
	e, err := loadLatestEpoch(ms)
	if err != nil {
		return nil, err
	}
	r.installEpoch(e)
	return e, nil
}

// TriggerRetrain starts a background retrain toward mix unless one is
// already in flight, and reports whether this call started it. On success
// the result is hot-swapped in; on failure the current epoch keeps serving
// and the error is retained in Stats. The retrain runs under ctx — pass a
// context that outlives the triggering arrival (the engine passes its
// background context, not the stream's, so a finishing stream does not
// abort a retrain other streams will benefit from).
func (r *ModelRegistry) TriggerRetrain(ctx context.Context, mix []float64) bool {
	started, _ := r.triggerRetrain(ctx, mix, 0)
	return started
}

// triggerRetrain is TriggerRetrain also carrying the EMD observed at the
// drift trigger, recorded in the resulting epoch's checkpoint lineage. It
// reports whether this call started a retrain, and — when it did not —
// whether the retry discipline suppressed it (as opposed to one already
// being in flight).
func (r *ModelRegistry) triggerRetrain(ctx context.Context, mix []float64, emd float64) (started, suppressed bool) {
	if !r.admitTrigger() {
		return false, true
	}
	if !r.inFlight.CompareAndSwap(false, true) {
		return false, false
	}
	r.triggers.Add(1)
	cur := r.Current()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer r.inFlight.Store(false)
		r.runRetrain(ctx, cur, mix, emd)
	}()
	return true, false
}

// errRetrainInFlight reports that RetrainNow found another retrain running;
// callers treat it as "someone else is already handling this drift".
var errRetrainInFlight = errors.New("core: a drift retrain is already in flight")

// RetrainNow is TriggerRetrain running synchronously: the swap (or failure)
// has happened by the time it returns. Streams configured with
// DriftOptions.Synchronous use it so drift recovery is deterministic.
func (r *ModelRegistry) RetrainNow(ctx context.Context, mix []float64) error {
	return r.retrainNow(ctx, mix, 0)
}

// retrainNow is RetrainNow also carrying the trigger EMD for lineage. It
// returns errRetrainSuppressed when the retry discipline swallowed the
// trigger without attempting a retrain.
func (r *ModelRegistry) retrainNow(ctx context.Context, mix []float64, emd float64) error {
	if !r.admitTrigger() {
		return errRetrainSuppressed
	}
	if !r.inFlight.CompareAndSwap(false, true) {
		return errRetrainInFlight
	}
	defer r.inFlight.Store(false)
	r.triggers.Add(1)
	return r.runRetrain(ctx, r.Current(), mix, emd)
}

// runRetrain builds the replacement model and swaps it in, feeding the
// outcome back into the breaker/backoff state either way. The retrain's
// wall time and warm-reuse split are recorded in the registry counters and
// in the installed epoch's checkpoint lineage, so drift-recovery cost is
// observable live (Stats, the daemon's /stats) and post-hoc (wisedb
// inspect's lineage table).
func (r *ModelRegistry) runRetrain(ctx context.Context, cur *ModelEpoch, mix []float64, emd float64) error {
	start := time.Now()
	m, err := r.retrain(ctx, cur, mix)
	r.noteRetrainResult(err)
	if err != nil {
		r.failures.Add(1)
		r.lastErr.Store(&err)
		return err
	}
	elapsedMS := time.Since(start).Milliseconds()
	r.lastRetrainMS.Store(elapsedMS)
	r.retrainMSTotal.Add(elapsedMS)
	r.warmSamplesTotal.Add(int64(m.WarmSamples))
	r.coldSamplesTotal.Add(int64(m.ColdSamples))
	r.retrainCacheHits.Add(int64(m.TrainingCacheHits))
	r.retrainCacheMisses.Add(int64(m.TrainingCacheMisses))
	r.install(m, mix, store.Lineage{
		Reason: "drift", EMD: emd,
		RetrainMS:   elapsedMS,
		WarmSamples: m.WarmSamples, ColdSamples: m.ColdSamples,
		CacheHits: int64(m.TrainingCacheHits), CacheMisses: int64(m.TrainingCacheMisses),
	})
	return nil
}

// Wait blocks until any background retrain (swap included) and any
// background checkpoint commit have completed.
func (r *ModelRegistry) Wait() { r.wg.Wait() }

// Drain quiesces the registry for shutdown: background retrains and
// checkpoint commits are waited out, and if an attached store is still
// behind the serving epoch (a background commit exhausted its retries
// during a fault), one final synchronous commit is attempted. After
// Drain returns nil, the attached store warm-starts into exactly the
// epoch that was serving; with no store attached Drain is just Wait.
func (r *ModelRegistry) Drain() error {
	r.wg.Wait()
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	ms := r.ckpt
	if ms == nil {
		return nil
	}
	cur := r.cur.Load()
	if latest, ok := ms.LatestEpoch(); ok && latest >= cur.Epoch {
		return nil
	}
	data, hash, err := encodeModel(cur.Model)
	if err != nil {
		return fmt.Errorf("core: drain epoch %d: %w", cur.Epoch, err)
	}
	parent := cur.Epoch
	if cur.Epoch > 0 {
		parent = cur.Epoch - 1
	}
	lin := store.Lineage{Epoch: cur.Epoch, Parent: parent, Reason: "drain", Mix: cur.Mix, ModelHash: hash}
	if err := r.commitWithRetry(ms, data, lin); err != nil {
		r.checkpointFailures.Add(1)
		return fmt.Errorf("core: drain epoch %d: %w", cur.Epoch, err)
	}
	r.checkpoints.Add(1)
	return nil
}

// RegistryStats is a snapshot of the registry's lifecycle counters.
type RegistryStats struct {
	// Epoch is the current serving generation (0 = base model).
	Epoch uint64
	// Triggers counts retrains started (background and synchronous);
	// Swaps counts models installed; Failures counts retrains that
	// errored without swapping.
	Triggers, Swaps, Failures int64
	// InFlight reports whether a background retrain is running.
	InFlight bool
	// LastErr is the most recent retrain failure, nil if none.
	LastErr error
	// Checkpoints counts epochs durably committed to the attached model
	// store; CheckpointFailures counts commits that errored (serving is
	// never disturbed by one — see CheckpointTo).
	Checkpoints, CheckpointFailures int64
	// LastCheckpointErr is the most recent checkpoint failure, nil if
	// none.
	LastCheckpointErr error
	// LastRetrainMS is the wall time of the most recent successful drift
	// retrain in milliseconds; TotalRetrainMS sums all successful
	// retrains. Failed retrains record neither.
	LastRetrainMS, TotalRetrainMS int64
	// WarmSamples and ColdSamples split the training samples of all
	// successful retrains into warm replays (prior-epoch search reused,
	// see WarmTrain) and fresh solves. RetrainCacheHits/Misses total the
	// cross-epoch transposition-cache outcomes of those retrains —
	// together they quantify how much drift recovery the warm path
	// avoided recomputing.
	WarmSamples, ColdSamples             int64
	RetrainCacheHits, RetrainCacheMisses int64
	// Robustness is the failure-path discipline's state: backoff and
	// breaker counters, breaker position, checkpoint retries.
	Robustness RobustnessStats
}

// Stats returns a consistent-enough snapshot for monitoring and tests.
func (r *ModelRegistry) Stats() RegistryStats {
	s := RegistryStats{
		Epoch:              r.Current().Epoch,
		Triggers:           r.triggers.Load(),
		Swaps:              r.swaps.Load(),
		Failures:           r.failures.Load(),
		InFlight:           r.inFlight.Load(),
		Checkpoints:        r.checkpoints.Load(),
		CheckpointFailures: r.checkpointFailures.Load(),
		LastRetrainMS:      r.lastRetrainMS.Load(),
		TotalRetrainMS:     r.retrainMSTotal.Load(),
		WarmSamples:        r.warmSamplesTotal.Load(),
		ColdSamples:        r.coldSamplesTotal.Load(),
		RetrainCacheHits:   r.retrainCacheHits.Load(),
		RetrainCacheMisses: r.retrainCacheMisses.Load(),
		Robustness:         r.Robustness(),
	}
	if p := r.lastErr.Load(); p != nil {
		s.LastErr = *p
	}
	if p := r.lastCkptErr.Load(); p != nil {
		s.LastCheckpointErr = *p
	}
	return s
}

// DriftRetrain is the default drift response: re-train a model for the same
// goal at the base model's own scale, drawing sample workloads from the
// observed arrival mix instead of the uniform distribution. The new model
// retains training data so the linear-shifting optimization keeps working
// against it after the swap.
//
// The retrain is warm (see WarmTrain): it re-seeds from the superseded
// epoch's transposition cache and replays unchanged sample searches, which
// cuts drift-recovery latency without changing the result — the warm model
// is bit-identical in serving content to a cold retrain. Goals or configs
// the warm path cannot serve soundly fall back to a cold Train inside
// WarmTrainContext.
func DriftRetrain(ctx context.Context, cur *ModelEpoch, mix []float64) (*Model, error) {
	adv, err := driftAdvisor(cur, mix)
	if err != nil {
		return nil, err
	}
	return adv.WarmTrainContext(ctx, cur.Model.Goal, cur.Model)
}

// ColdDriftRetrain is DriftRetrain without warm reuse: every sample is
// solved from scratch with an empty transposition cache. It exists as the
// ablation baseline — install it with SetRetrain to measure what the warm
// path saves (the recovery experiment and BenchmarkColdRetrain do); the
// models it produces are bit-identical to DriftRetrain's.
func ColdDriftRetrain(ctx context.Context, cur *ModelEpoch, mix []float64) (*Model, error) {
	adv, err := driftAdvisor(cur, mix)
	if err != nil {
		return nil, err
	}
	return adv.TrainContext(ctx, cur.Model.Goal)
}

// driftAdvisor builds the retraining advisor both drift responses share:
// the base model's own configuration and environment, retargeted at the
// observed mix.
func driftAdvisor(cur *ModelEpoch, mix []float64) (*Advisor, error) {
	base := cur.Model
	cfg := base.TrainingConfig
	cfg.SampleWeights = mix
	cfg.KeepTrainingData = true
	return NewAdvisor(base.env, cfg)
}
