package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ModelEpoch is one immutable generation of a serving model: the model, a
// monotonically increasing epoch number, and the normalized template-arrival
// mix the model was trained to serve. Streams load the current epoch once
// per arrival event; everything inside an epoch is read-only, so a loaded
// epoch stays valid for the whole event even if a swap lands mid-arrival.
type ModelEpoch struct {
	// Model is the serving model of this epoch.
	Model *Model
	// Epoch numbers generations from 0 (the base model). Derived-model
	// caches key by it, so models shifted or augmented from a superseded
	// base are never served after a swap.
	Epoch uint64
	// Mix is the normalized template distribution the model targets. The
	// per-stream drift detectors compare live arrival histograms against
	// it — after a swap the detectors automatically re-baseline to the new
	// epoch's mix.
	Mix []float64
}

// RetrainFunc builds a replacement model for the observed arrival mix. cur
// is the epoch that was current when the retrain was triggered.
type RetrainFunc func(ctx context.Context, cur *ModelEpoch, mix []float64) (*Model, error)

// ModelRegistry is the model lifecycle subsystem of the online engine
// (§6's adaptive-modeling loop, productionized): it holds the current
// serving epoch behind an atomic pointer, runs at most one drift retrain at
// a time, and hot-swaps the result in without stalling arrivals. Streams
// observe the swap at their next arrival event; in-flight events keep the
// epoch they loaded, so no arrival is ever dropped or scheduled twice.
//
// A ModelRegistry is safe for concurrent use.
type ModelRegistry struct {
	cur     atomic.Pointer[ModelEpoch]
	retrain RetrainFunc
	// onSwap, when non-nil, runs after each epoch installation (under the
	// swap lock). The serving engine uses it to evict derived models of
	// superseded epochs from its ω-map.
	onSwap func(*ModelEpoch)

	// inFlight gates the single retrain slot; wg lets tests and shutdown
	// drain a background retrain.
	inFlight atomic.Bool
	wg       sync.WaitGroup
	swapMu   sync.Mutex // serializes epoch increments

	triggers, swaps, failures atomic.Int64
	lastErr                   atomic.Pointer[error]
}

// NewModelRegistry returns a registry serving base as epoch 0, with the
// default drift response: re-train at the base model's own scale with
// sample workloads drawn from the observed mix (see DriftRetrain).
func NewModelRegistry(base *Model) *ModelRegistry {
	if base == nil {
		panic("core: NewModelRegistry requires a base model")
	}
	r := &ModelRegistry{retrain: DriftRetrain}
	r.cur.Store(&ModelEpoch{Model: base, Epoch: 0, Mix: base.TrainingMix()})
	return r
}

// SetRetrain replaces the drift response. Call before serving begins.
func (r *ModelRegistry) SetRetrain(f RetrainFunc) { r.retrain = f }

// Current returns the serving epoch. It never returns nil and never
// allocates — it is on the per-arrival hot path.
func (r *ModelRegistry) Current() *ModelEpoch { return r.cur.Load() }

// Swap installs m as the next epoch and returns its number. mix is the
// arrival mix the model targets; nil uses the model's own training mix.
func (r *ModelRegistry) Swap(m *Model, mix []float64) uint64 {
	r.swapMu.Lock()
	defer r.swapMu.Unlock()
	if mix == nil {
		mix = m.TrainingMix()
	}
	next := &ModelEpoch{Model: m, Epoch: r.cur.Load().Epoch + 1, Mix: mix}
	r.cur.Store(next)
	r.swaps.Add(1)
	if r.onSwap != nil {
		r.onSwap(next)
	}
	return next.Epoch
}

// TriggerRetrain starts a background retrain toward mix unless one is
// already in flight, and reports whether this call started it. On success
// the result is hot-swapped in; on failure the current epoch keeps serving
// and the error is retained in Stats. The retrain runs under ctx — pass a
// context that outlives the triggering arrival (the engine passes its
// background context, not the stream's, so a finishing stream does not
// abort a retrain other streams will benefit from).
func (r *ModelRegistry) TriggerRetrain(ctx context.Context, mix []float64) bool {
	if !r.inFlight.CompareAndSwap(false, true) {
		return false
	}
	r.triggers.Add(1)
	cur := r.Current()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer r.inFlight.Store(false)
		r.runRetrain(ctx, cur, mix)
	}()
	return true
}

// errRetrainInFlight reports that RetrainNow found another retrain running;
// callers treat it as "someone else is already handling this drift".
var errRetrainInFlight = errors.New("core: a drift retrain is already in flight")

// RetrainNow is TriggerRetrain running synchronously: the swap (or failure)
// has happened by the time it returns. Streams configured with
// DriftOptions.Synchronous use it so drift recovery is deterministic.
func (r *ModelRegistry) RetrainNow(ctx context.Context, mix []float64) error {
	if !r.inFlight.CompareAndSwap(false, true) {
		return errRetrainInFlight
	}
	defer r.inFlight.Store(false)
	r.triggers.Add(1)
	return r.runRetrain(ctx, r.Current(), mix)
}

// runRetrain builds the replacement model and swaps it in.
func (r *ModelRegistry) runRetrain(ctx context.Context, cur *ModelEpoch, mix []float64) error {
	m, err := r.retrain(ctx, cur, mix)
	if err != nil {
		r.failures.Add(1)
		r.lastErr.Store(&err)
		return err
	}
	r.Swap(m, mix)
	return nil
}

// Wait blocks until any background retrain has completed (swap included).
func (r *ModelRegistry) Wait() { r.wg.Wait() }

// RegistryStats is a snapshot of the registry's lifecycle counters.
type RegistryStats struct {
	// Epoch is the current serving generation (0 = base model).
	Epoch uint64
	// Triggers counts retrains started (background and synchronous);
	// Swaps counts models installed; Failures counts retrains that
	// errored without swapping.
	Triggers, Swaps, Failures int64
	// InFlight reports whether a background retrain is running.
	InFlight bool
	// LastErr is the most recent retrain failure, nil if none.
	LastErr error
}

// Stats returns a consistent-enough snapshot for monitoring and tests.
func (r *ModelRegistry) Stats() RegistryStats {
	s := RegistryStats{
		Epoch:    r.Current().Epoch,
		Triggers: r.triggers.Load(),
		Swaps:    r.swaps.Load(),
		Failures: r.failures.Load(),
		InFlight: r.inFlight.Load(),
	}
	if p := r.lastErr.Load(); p != nil {
		s.LastErr = *p
	}
	return s
}

// DriftRetrain is the default drift response: re-train a model for the same
// goal at the base model's own scale, drawing sample workloads from the
// observed arrival mix instead of the uniform distribution. The new model
// retains training data so the linear-shifting optimization keeps working
// against it after the swap.
func DriftRetrain(ctx context.Context, cur *ModelEpoch, mix []float64) (*Model, error) {
	base := cur.Model
	cfg := base.TrainingConfig
	cfg.SampleWeights = mix
	cfg.KeepTrainingData = true
	adv, err := NewAdvisor(base.env, cfg)
	if err != nil {
		return nil, err
	}
	return adv.TrainContext(ctx, base.Goal)
}
