package core

import (
	"wisedb/internal/stats"
)

// DriftOptions configures per-stream workload-drift detection (§6: the
// advisor must keep performing as the workload shifts). Each stream
// maintains a sliding histogram of its recent arrivals' templates; when the
// Earth Mover's Distance between that histogram and the serving epoch's
// training mix crosses Threshold, the stream asks the engine's registry for
// a retrain toward the observed mix, and the result is hot-swapped in.
type DriftOptions struct {
	// Window is the number of recent arrivals in the sliding histogram.
	// Zero disables drift detection (the default).
	Window int
	// Threshold is the EMD trigger level, in template-index units (see
	// stats.EMDHist; templates are ordered by base latency). Zero selects
	// DefaultDriftThreshold.
	Threshold float64
	// MinArrivals is the number of arrivals a stream must observe before
	// it may trigger — a cold histogram is all noise. Zero selects Window.
	MinArrivals int
	// StableWindow, when positive, requires drift to be confirmed by a
	// second, slower histogram over the last StableWindow arrivals before
	// a retrain triggers: both the fast Window and the stable window must
	// exceed Threshold against the epoch mix. This is the periodicity
	// defense — a diurnal mix whose period fits inside StableWindow
	// averages out in the slow histogram and never retrains (the day/night
	// cycle is not drift, the long-run mix is unchanged), while a genuine
	// sustained shift fills the slow histogram too and still triggers,
	// with detection latency stretched toward StableWindow arrivals.
	// Values below Window are rounded up to Window; zero (the default)
	// disables confirmation and preserves fast-trigger behavior.
	StableWindow int
	// Synchronous retrains inline during the triggering arrival (the swap
	// is visible to the very next scheduling decision) instead of in the
	// background. Deterministic, at the price of stalling that one
	// arrival; experiments and determinism tests use it.
	Synchronous bool
}

// DefaultDriftThreshold is the EMD trigger level when DriftOptions.Threshold
// is zero: half a template-index of mass displacement, comfortably above
// sampling noise for windows of a few dozen arrivals yet crossed quickly by
// real mix shifts.
const DefaultDriftThreshold = 0.5

// enabled reports whether drift detection is on.
func (d DriftOptions) enabled() bool { return d.Window > 0 }

// normalized fills zero-valued fields with defaults.
func (d DriftOptions) normalized() DriftOptions {
	if d.Threshold == 0 {
		d.Threshold = DefaultDriftThreshold
	}
	if d.MinArrivals == 0 {
		d.MinArrivals = d.Window
	}
	if d.StableWindow > 0 && d.StableWindow < d.Window {
		d.StableWindow = d.Window
	}
	return d
}

// driftDetector is the per-stream sliding template-arrival histogram. All
// methods are allocation-free except mix — observe runs on the per-arrival
// hot path.
type driftDetector struct {
	opts driftRuntimeOpts
	ring []int32   // last Window template IDs, circular
	hist []float64 // counts over templates; sums to min(seen, Window)
	head int       // next ring slot to overwrite
	seen int       // total arrivals observed

	// Stable-window confirmation state (nil/empty when StableWindow is
	// off): a second, slower ring whose histogram must also drift before
	// a trigger fires.
	stableRing []int32
	stableHist []float64
	stableHead int
}

// driftRuntimeOpts is DriftOptions after normalization.
type driftRuntimeOpts struct {
	window      int
	threshold   float64
	minArrivals int
	stable      int
}

// newDriftDetector returns a detector over k templates, or nil when
// detection is disabled.
func newDriftDetector(k int, opts DriftOptions) *driftDetector {
	if !opts.enabled() {
		return nil
	}
	o := opts.normalized()
	d := &driftDetector{
		opts: driftRuntimeOpts{window: o.Window, threshold: o.Threshold, minArrivals: o.MinArrivals, stable: o.StableWindow},
		ring: make([]int32, o.Window),
		hist: make([]float64, k),
	}
	if o.StableWindow > 0 {
		d.stableRing = make([]int32, o.StableWindow)
		d.stableHist = make([]float64, k)
	}
	return d
}

// reset clears the detector for stream reuse.
func (d *driftDetector) reset() {
	for i := range d.hist {
		d.hist[i] = 0
	}
	d.head = 0
	d.seen = 0
	for i := range d.stableHist {
		d.stableHist[i] = 0
	}
	d.stableHead = 0
}

// observe records an arrival's template, then compares the sliding
// histogram against baseline (the serving epoch's training mix): it returns
// the current EMD and whether it crosses the trigger threshold. Once the
// serving mix catches up with the arrivals — after a hot swap — the EMD
// falls back under the threshold and the detector goes quiet on its own.
//
// With StableWindow armed, a fast-window excursion alone does not trigger:
// the slow histogram must drift past the threshold too, and must be warm
// (StableWindow arrivals observed) — a periodic mix fills the slow window
// with its time average and never confirms, which is what stops a diurnal
// cycle from retraining every half-period.
func (d *driftDetector) observe(tpl int, baseline []float64) (emd float64, drifted bool) {
	if d.seen >= d.opts.window {
		d.hist[d.ring[d.head]]--
	}
	d.ring[d.head] = int32(tpl)
	d.hist[tpl]++
	d.head++
	if d.head == d.opts.window {
		d.head = 0
	}
	if d.opts.stable > 0 {
		if d.seen >= d.opts.stable {
			d.stableHist[d.stableRing[d.stableHead]]--
		}
		d.stableRing[d.stableHead] = int32(tpl)
		d.stableHist[tpl]++
		d.stableHead++
		if d.stableHead == d.opts.stable {
			d.stableHead = 0
		}
	}
	d.seen++
	emd = stats.EMDHist(d.hist, baseline)
	drifted = d.seen >= d.opts.minArrivals && emd > d.opts.threshold
	if drifted && d.opts.stable > 0 {
		drifted = d.seen >= d.opts.stable && stats.EMDHist(d.stableHist, baseline) > d.opts.threshold
	}
	return emd, drifted
}

// mix returns the normalized observed histogram — the target distribution a
// drift retrain trains toward. With StableWindow armed the confirmed slow
// histogram is the target: it estimates the sustained mix, not the
// excursion that happened to cross last. Called only on trigger, so it may
// allocate.
func (d *driftDetector) mix() []float64 {
	if d.opts.stable > 0 {
		return normalizedMix(d.stableHist, len(d.stableHist))
	}
	return normalizedMix(d.hist, len(d.hist))
}
