package core

import (
	"wisedb/internal/stats"
)

// DriftOptions configures per-stream workload-drift detection (§6: the
// advisor must keep performing as the workload shifts). Each stream
// maintains a sliding histogram of its recent arrivals' templates; when the
// Earth Mover's Distance between that histogram and the serving epoch's
// training mix crosses Threshold, the stream asks the engine's registry for
// a retrain toward the observed mix, and the result is hot-swapped in.
type DriftOptions struct {
	// Window is the number of recent arrivals in the sliding histogram.
	// Zero disables drift detection (the default).
	Window int
	// Threshold is the EMD trigger level, in template-index units (see
	// stats.EMDHist; templates are ordered by base latency). Zero selects
	// DefaultDriftThreshold.
	Threshold float64
	// MinArrivals is the number of arrivals a stream must observe before
	// it may trigger — a cold histogram is all noise. Zero selects Window.
	MinArrivals int
	// Synchronous retrains inline during the triggering arrival (the swap
	// is visible to the very next scheduling decision) instead of in the
	// background. Deterministic, at the price of stalling that one
	// arrival; experiments and determinism tests use it.
	Synchronous bool
}

// DefaultDriftThreshold is the EMD trigger level when DriftOptions.Threshold
// is zero: half a template-index of mass displacement, comfortably above
// sampling noise for windows of a few dozen arrivals yet crossed quickly by
// real mix shifts.
const DefaultDriftThreshold = 0.5

// enabled reports whether drift detection is on.
func (d DriftOptions) enabled() bool { return d.Window > 0 }

// normalized fills zero-valued fields with defaults.
func (d DriftOptions) normalized() DriftOptions {
	if d.Threshold == 0 {
		d.Threshold = DefaultDriftThreshold
	}
	if d.MinArrivals == 0 {
		d.MinArrivals = d.Window
	}
	return d
}

// driftDetector is the per-stream sliding template-arrival histogram. All
// methods are allocation-free except mix — observe runs on the per-arrival
// hot path.
type driftDetector struct {
	opts driftRuntimeOpts
	ring []int32   // last Window template IDs, circular
	hist []float64 // counts over templates; sums to min(seen, Window)
	head int       // next ring slot to overwrite
	seen int       // total arrivals observed
}

// driftRuntimeOpts is DriftOptions after normalization.
type driftRuntimeOpts struct {
	window      int
	threshold   float64
	minArrivals int
}

// newDriftDetector returns a detector over k templates, or nil when
// detection is disabled.
func newDriftDetector(k int, opts DriftOptions) *driftDetector {
	if !opts.enabled() {
		return nil
	}
	o := opts.normalized()
	return &driftDetector{
		opts: driftRuntimeOpts{window: o.Window, threshold: o.Threshold, minArrivals: o.MinArrivals},
		ring: make([]int32, o.Window),
		hist: make([]float64, k),
	}
}

// reset clears the detector for stream reuse.
func (d *driftDetector) reset() {
	for i := range d.hist {
		d.hist[i] = 0
	}
	d.head = 0
	d.seen = 0
}

// observe records an arrival's template, then compares the sliding
// histogram against baseline (the serving epoch's training mix): it returns
// the current EMD and whether it crosses the trigger threshold. Once the
// serving mix catches up with the arrivals — after a hot swap — the EMD
// falls back under the threshold and the detector goes quiet on its own.
func (d *driftDetector) observe(tpl int, baseline []float64) (emd float64, drifted bool) {
	if d.seen >= d.opts.window {
		d.hist[d.ring[d.head]]--
	}
	d.ring[d.head] = int32(tpl)
	d.hist[tpl]++
	d.head++
	if d.head == d.opts.window {
		d.head = 0
	}
	d.seen++
	emd = stats.EMDHist(d.hist, baseline)
	return emd, d.seen >= d.opts.minArrivals && emd > d.opts.threshold
}

// mix returns the normalized observed histogram — the target distribution a
// drift retrain trains toward. Called only on trigger, so it may allocate.
func (d *driftDetector) mix() []float64 {
	return normalizedMix(d.hist, len(d.hist))
}
