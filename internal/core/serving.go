package core

import (
	"math"
	"time"

	"wisedb/internal/dt"
	"wisedb/internal/features"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// servingTables holds the read-only, precomputed serving form of a model:
// the decision tree flattened for pointer-chase-free inference, and the
// fresh-VM cost table the dominated-placement guard consults on every
// placement step. Built once per model (train, adapt, or first use) and
// shared by every concurrent ScheduleBatch call.
type servingTables struct {
	compiled *dt.CompiledTree
	// fresh[t*numTypes+v] is the goal-independent cost of serving one
	// query of template t on a fresh VM of type v — start-up fee plus
	// processing fee — and freshLat its completion time there; +Inf / 0
	// when type v cannot run t.
	fresh    []float64
	freshLat []time.Duration
	numTypes int
}

// servingTables returns the model's serving tables, building them on first
// use. Train and adapt call it eagerly so serving never pays the build.
func (m *Model) servingTables() *servingTables {
	m.serveOnce.Do(func() {
		env := m.env
		k, nv := len(env.Templates), len(env.VMTypes)
		t := &servingTables{
			fresh:    make([]float64, k*nv),
			freshLat: make([]time.Duration, k*nv),
			numTypes: nv,
		}
		for tpl := 0; tpl < k; tpl++ {
			for v := 0; v < nv; v++ {
				lat, ok := env.Latency(tpl, v)
				if !ok {
					t.fresh[tpl*nv+v] = math.Inf(1)
					continue
				}
				vt := env.VMTypes[v]
				t.fresh[tpl*nv+v] = vt.StartupCost + vt.RunningCost(lat)
				t.freshLat[tpl*nv+v] = lat
			}
		}
		if m.Tree != nil {
			t.compiled = m.Tree.Compile()
		}
		m.serve = t
	})
	return m.serve
}

// CompiledTree returns the flat serving form of the model's decision tree
// (compiled at training time), or nil for a model without a tree.
func (m *Model) CompiledTree() *dt.CompiledTree { return m.servingTables().compiled }

// servingScratch is the per-call mutable state of ScheduleBatch, drawn from
// the model's sync.Pool so that concurrent batch scheduling from many
// goroutines allocates O(1) amortized per query: the walked state, the
// penalty tracker, the incremental feature extractor, and the feature /
// action / retag buffers are all reused across calls.
type servingScratch struct {
	state   graph.State
	tracker *sla.Tracker
	fs      *features.State
	feat    []float64
	actions []graph.Action
	// Retag buffers: tags holds the workload's query tags grouped by
	// template (a counting sort), next[t] the cursor of the first unhanded
	// tag of template t, and start[t] the group boundaries.
	tags  []int
	next  []int
	start []int
}

// getScratch draws a scratch from the pool, constructing one bound to the
// model's goal and problem when the pool is empty.
func (m *Model) getScratch() *servingScratch {
	if sc, ok := m.scratch.Get().(*servingScratch); ok {
		return sc
	}
	return &servingScratch{
		tracker: sla.NewTracker(m.Goal),
		fs:      features.NewState(m.prob),
	}
}

// putScratch returns a scratch to the pool.
func (m *Model) putScratch(sc *servingScratch) { m.scratch.Put(sc) }

// resetState readies the scratch's walked state as the start vertex for w,
// reusing the backing arrays.
func (sc *servingScratch) resetState(w *workload.Workload, k int) {
	st := &sc.state
	st.Unassigned = resizeInts(st.Unassigned, k)
	for _, q := range w.Queries {
		st.Unassigned[q.TemplateID]++
	}
	st.OpenType = graph.NoVM
	st.OpenQueue = st.OpenQueue[:0]
	st.Wait = 0
	sc.tracker.Reset()
	st.Acc = sc.tracker
	st.PrevFirst = graph.Unconstrained
	sc.fs.Reset(st)
	sc.actions = sc.actions[:0]
}

// retag rewrites the placeholder tags produced by BuildSchedule with the
// workload's real query tags, matching instances template by template in
// workload order. It is the scratch-buffered replacement for the per-call
// map the serving path used to build: a counting sort over the scratch's
// integer buffers, zero allocations in steady state.
func (sc *servingScratch) retag(s *schedule.Schedule, w *workload.Workload) {
	k := len(w.Templates)
	sc.start = resizeInts(sc.start, k+1)
	for _, q := range w.Queries {
		sc.start[q.TemplateID+1]++
	}
	for t := 0; t < k; t++ {
		sc.start[t+1] += sc.start[t]
	}
	sc.next = resizeInts(sc.next, k)
	copy(sc.next, sc.start[:k])
	sc.tags = resizeInts(sc.tags, len(w.Queries))
	for _, q := range w.Queries {
		sc.tags[sc.next[q.TemplateID]] = q.Tag
		sc.next[q.TemplateID]++
	}
	copy(sc.next, sc.start[:k])
	for vi := range s.VMs {
		for qi := range s.VMs[vi].Queue {
			t := s.VMs[vi].Queue[qi].TemplateID
			if t < 0 || t >= k || sc.next[t] >= sc.start[t+1] {
				continue // schedule/workload mismatch surfaces in Validate
			}
			s.VMs[vi].Queue[qi].Tag = sc.tags[sc.next[t]]
			sc.next[t]++
		}
	}
}

// buildScheduleInto materializes an action walk into an exactly-sized
// Schedule: one allocation for the VM list and one backing array shared by
// every queue (capacity-capped sub-slices, so appending to one queue can
// never clobber a neighbor). It is graph.BuildSchedule minus the
// incremental growth — the growslice traffic of the generic builder
// dominated the serving profile once the walk itself stopped allocating.
// Tags are left zero; retag overwrites them with the workload's.
//
// A non-nil dst and a sufficiently large backing are recycled instead of
// allocated: the online stream core consumes each schedule before asking
// for the next, so its steady-state arrival path reuses one schedule
// skeleton for the whole stream. Passing nil/nil allocates fresh storage.
func buildScheduleInto(dst *schedule.Schedule, backing []schedule.Placed, actions []graph.Action, numQueries int) (*schedule.Schedule, []schedule.Placed) {
	numVMs := 0
	for _, a := range actions {
		if a.Kind == graph.Startup {
			numVMs++
		}
	}
	s := dst
	if s == nil {
		s = &schedule.Schedule{}
	}
	if cap(s.VMs) < numVMs {
		s.VMs = make([]schedule.VM, 0, numVMs)
	} else {
		s.VMs = s.VMs[:0]
	}
	if cap(backing) < numQueries {
		backing = make([]schedule.Placed, 0, numQueries)
	} else {
		backing = backing[:0]
	}
	segStart := 0
	closeOpen := func() {
		if len(s.VMs) > 0 {
			s.VMs[len(s.VMs)-1].Queue = backing[segStart:len(backing):len(backing)]
		}
		segStart = len(backing)
	}
	for _, a := range actions {
		switch a.Kind {
		case graph.Startup:
			closeOpen()
			s.VMs = append(s.VMs, schedule.VM{TypeID: a.VMType})
		case graph.Place:
			if len(s.VMs) == 0 {
				panic("core: placement before any start-up action")
			}
			backing = append(backing, schedule.Placed{TemplateID: a.Template})
		}
	}
	closeOpen()
	return s, backing
}

// resizeInts returns s with length n and every element zeroed, reusing the
// backing array when it is large enough.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
