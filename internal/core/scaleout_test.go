package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wisedb/internal/workload"
)

// The placement ring must spread tenants evenly and move only the departed
// shard's tenants on a rebalance: ring(7) is ring(8) minus shard 7's
// vnodes, so any tenant whose owner changed must have been on shard 7.
func TestHashRingPlacement(t *testing.T) {
	const shards, tenants = 8, 4096
	r8 := newHashRing(shards)
	ids := make([]TenantID, tenants)
	counts := make([]int, shards)
	for i := range ids {
		ids[i] = HashTenantID(fmt.Sprintf("tenant-%d", i))
		sh := r8.shardOf(ids[i])
		if sh < 0 || sh >= shards {
			t.Fatalf("tenant %d placed on shard %d of %d", i, sh, shards)
		}
		counts[sh]++
	}
	mean := tenants / shards
	for sh, c := range counts {
		if c < mean/2 || c > 2*mean {
			t.Errorf("shard %d owns %d tenants; want within [%d, %d] of the %d mean (counts %v)",
				sh, c, mean/2, 2*mean, mean, counts)
		}
	}

	r7 := newHashRing(7)
	moved := 0
	for i, id := range ids {
		a, b := r8.shardOf(id), r7.shardOf(id)
		if b >= 7 {
			t.Fatalf("tenant %d placed on drained shard %d", i, b)
		}
		if a != b {
			moved++
			if a != 7 {
				t.Fatalf("tenant %d moved %d -> %d although shard %d survived the rebalance", i, a, b, a)
			}
		}
	}
	if moved == 0 || moved > tenants/4 {
		t.Errorf("rebalance 8 -> 7 moved %d of %d tenants; want roughly 1/8", moved, tenants)
	}

	// Determinism: the ring is a pure function of the shard count.
	again := newHashRing(shards)
	for _, id := range ids {
		if r8.shardOf(id) != again.shardOf(id) {
			t.Fatal("identical ring parameters produced different placements")
		}
	}
}

// scaleTenants builds k tenants over fixed-seed workloads, binding every
// other tenant to the named second registry (if any).
func scaleTenants(templates []workload.Template, k, n int, gap time.Duration, seed int64, second string) []Tenant {
	ws := tenantWorkloads(templates, k, n, gap, seed)
	tenants := make([]Tenant, k)
	for i := range tenants {
		tenants[i] = Tenant{ID: HashTenantID(fmt.Sprintf("tenant-%03d", i)), Workload: ws[i]}
		if second != "" && i%2 == 1 {
			tenants[i].Registry = second
		}
	}
	return tenants
}

// Per-tenant results must be bit-identical for every shard count and every
// ω-map stripe count, with streams spread over two registries — the
// sharded-serving extension of TestMultiStreamDeterminism. The 10s gaps put
// every stream on the shifted-model path, so the striped cache and the
// registry-scoped keys are both load-bearing here.
func TestRunTenantsDeterministicAcrossShardCounts(t *testing.T) {
	base := onlineBase(t, 5, 2)
	const streams, n = 12, 15
	configs := []struct{ shards, cacheShards int }{
		{1, 1}, // single worker, single-lock ω-map: the old engine
		{4, 4},
		{runtime.GOMAXPROCS(0), 0}, // default stripes
	}
	var fingerprints [][]string
	for _, cfg := range configs {
		opts := DefaultOnlineOptions()
		opts.Shards = cfg.shards
		opts.CacheShards = cfg.cacheShards
		o := NewOnlineScheduler(base, opts)
		if _, err := o.AddRegistry("premium", base); err != nil {
			t.Fatal(err)
		}
		tenants := scaleTenants(base.Env().Templates, streams, n, 10*time.Second, 77, "premium")
		results, err := o.RunTenants(context.Background(), tenants)
		if err != nil {
			t.Fatalf("shards=%d cacheShards=%d: %v", cfg.shards, cfg.cacheShards, err)
		}
		if got := o.ActiveStreams(); got != 0 {
			t.Fatalf("shards=%d: %d streams still active after RunTenants", cfg.shards, got)
		}
		fps := make([]string, len(results))
		for i, res := range results {
			if res.Adaptations == 0 {
				t.Fatalf("shards=%d tenant %d: 10s gaps must put arrivals on the shifted-model path", cfg.shards, i)
			}
			fps[i] = onlineResultFingerprint(res)
		}
		fingerprints = append(fingerprints, fps)
	}
	for level := 1; level < len(fingerprints); level++ {
		for i := range fingerprints[0] {
			if fingerprints[level][i] != fingerprints[0][i] {
				t.Errorf("tenant %d differs between shard configs:\nbaseline: %s\nsharded:  %s",
					i, fingerprints[0][i], fingerprints[level][i])
			}
		}
	}
}

// A live rebalance mid-run must migrate tenants between shards without
// dropping or doubling an arrival — and without changing any tenant's
// result: migration hands the stream linearly between workers at an event
// boundary, so the outcome is bit-identical to an undisturbed run.
func TestRunTenantsRebalanceMigratesExactlyOnce(t *testing.T) {
	base := onlineBase(t, 5, 2)
	const streams, n = 48, 30
	opts := DefaultOnlineOptions()
	opts.Shards = 4

	// Reference run, no rebalance.
	ref := NewOnlineScheduler(base, opts)
	tenants := scaleTenants(base.Env().Templates, streams, n, 10*time.Second, 55, "")
	want, err := ref.RunTenants(context.Background(), tenants)
	if err != nil {
		t.Fatal(err)
	}

	o := NewOnlineScheduler(base, opts)
	var places atomic.Int64
	var shrink, regrow sync.Once
	o.placeStarted = func(*OnlineResult) {
		switch c := places.Add(1); {
		case c == 100:
			shrink.Do(func() {
				if err := o.Rebalance(2); err != nil {
					t.Error(err)
				}
			})
		case c == 400:
			regrow.Do(func() {
				if err := o.Rebalance(4); err != nil {
					t.Error(err)
				}
			})
		}
	}
	got, err := o.RunTenants(context.Background(), tenants)
	if err != nil {
		t.Fatal(err)
	}
	o.placeStarted = nil
	for i, res := range got {
		seen := make([]bool, n)
		for _, out := range res.Outcomes {
			if seen[out.Tag] {
				t.Fatalf("tenant %d: query tag %d completed twice across a migration", i, out.Tag)
			}
			seen[out.Tag] = true
		}
		for tag, ok := range seen {
			if !ok {
				t.Fatalf("tenant %d: query tag %d dropped across a migration", i, tag)
			}
		}
		if a, b := onlineResultFingerprint(res), onlineResultFingerprint(want[i]); a != b {
			t.Errorf("tenant %d result changed under rebalance:\nundisturbed: %s\nrebalanced:  %s", i, b, a)
		}
	}
	stats := o.ScaleStats()
	if stats.Migrations == 0 {
		t.Error("shrinking 4 shards to 2 mid-run migrated no tenants")
	}
	if stats.ActiveShards != 4 {
		t.Errorf("final ring spans %d shards, want 4", stats.ActiveShards)
	}
	if got := o.ActiveStreams(); got != 0 {
		t.Fatalf("%d streams still active after a rebalanced run", got)
	}
	t.Logf("%d migrations across shrink+regrow, results bit-identical", stats.Migrations)
}

// Many concurrent streams hammering the same hot ω-map keys across repeated
// hot swaps: per-stripe singleflight must dedup builds, eviction must not
// disturb in-flight acquisitions, and every stream must complete every
// arrival exactly once. Run under -race this is the striped-cache
// correctness hammer.
func TestShardedCacheHotKeyHammerAcrossSwap(t *testing.T) {
	base := onlineBase(t, 3, 1)
	o := NewOnlineScheduler(base, DefaultOnlineOptions())
	const streams, n = 16, 40
	// One seed: every stream replays the identical arrival pattern, so all
	// of them want the same shifted-model keys at the same time.
	ws := make([]*workload.Workload, streams)
	for i := range ws {
		w := workload.NewSampler(base.Env().Templates, 99).Uniform(n)
		ws[i] = w.WithArrivals(workload.FixedDelayArrivals(n, 10*time.Second))
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; i < 5; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				o.Registry().Swap(base, nil)
			}
		}
	}()
	results, err := o.RunStreams(context.Background(), ws, streams)
	close(stop)
	swapper.Wait()
	if err != nil {
		t.Fatal(err)
	}

	acquisitions := 0
	for i, res := range results {
		seen := make([]bool, n)
		for _, out := range res.Outcomes {
			if seen[out.Tag] {
				t.Fatalf("stream %d: tag %d completed twice across a swap", i, out.Tag)
			}
			seen[out.Tag] = true
		}
		if len(res.Outcomes) != n {
			t.Fatalf("stream %d completed %d of %d arrivals", i, len(res.Outcomes), n)
		}
		acquisitions += res.Adaptations + res.CacheHits
	}
	builds := o.CacheStats()
	if builds == 0 {
		t.Fatal("no derived models were built")
	}
	if int(builds) > acquisitions {
		t.Errorf("%d builds exceed %d acquisitions: singleflight dedup broken", builds, acquisitions)
	}
	t.Logf("%d streams, %d acquisitions, %d deduped builds across 5 hot swaps", streams, acquisitions, builds)
}

// Two registries converging on the same (goal, config, mix) must share one
// retrain: the second registry's drift trigger reuses the first's model
// instead of duplicating the training search.
func TestSharedRetrainAcrossRegistries(t *testing.T) {
	base := onlineBase(t, 5, 1)
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: 20, Threshold: 1.2, Synchronous: true}
	o := NewOnlineScheduler(base, opts)
	premium, err := o.AddRegistry("premium", base)
	if err != nil {
		t.Fatal(err)
	}
	w := shiftedStream(base.Env().Templates, 40, 60, 7*time.Minute)
	if _, err := o.RunContext(context.Background(), w); err != nil {
		t.Fatal(err)
	}
	if _, err := o.RunOn(context.Background(), "premium", w); err != nil {
		t.Fatal(err)
	}
	defStats, preStats := o.Registry().Stats(), premium.Stats()
	if defStats.Swaps != 1 || preStats.Swaps != 1 {
		t.Fatalf("want one swap per registry, got default=%d premium=%d", defStats.Swaps, preStats.Swaps)
	}
	stats := o.ScaleStats()
	if stats.SharedRetrains != 1 {
		t.Fatalf("want 1 shared retrain, got %d", stats.SharedRetrains)
	}
	if stats.Registries != 2 {
		t.Fatalf("want 2 registries, got %d", stats.Registries)
	}
	if o.Registry().Current().Model != premium.Current().Model {
		t.Error("identical (goal, config, mix) retrains produced distinct models")
	}
	if o.Registry().Current() == premium.Current() {
		t.Error("registries must own their epochs even when sharing a model")
	}
}

// Registry and tenant validation must fail loudly, before any stream runs.
func TestRunTenantsValidation(t *testing.T) {
	base := onlineBase(t, 3, 1)
	o := NewOnlineScheduler(base, DefaultOnlineOptions())
	w := tenantWorkloads(base.Env().Templates, 1, 4, time.Minute, 3)[0]

	if _, err := o.RunTenants(context.Background(), []Tenant{{ID: 1, Registry: "nope", Workload: w}}); err == nil {
		t.Error("unknown registry must fail")
	}
	if _, err := o.RunTenants(context.Background(), []Tenant{{ID: 1}}); err == nil {
		t.Error("nil workload must fail")
	}
	bad := &workload.Workload{Templates: w.Templates[:2], Queries: w.Queries}
	if _, err := o.RunTenants(context.Background(), []Tenant{{ID: 1, Workload: bad}}); err == nil {
		t.Error("template-count mismatch must fail")
	}
	if res, err := o.RunTenants(context.Background(), nil); err != nil || res != nil {
		t.Errorf("empty tenant set: want (nil, nil), got (%v, %v)", res, err)
	}

	if _, err := o.AddRegistry("", base); err == nil {
		t.Error("empty registry name must fail")
	}
	if _, err := o.AddRegistry("tier", nil); err == nil {
		t.Error("nil base model must fail")
	}
	if _, err := o.AddRegistry(DefaultRegistry, base); err == nil {
		t.Error("duplicate registry name must fail")
	}
	other := onlineBase(t, 4, 1)
	if _, err := o.AddRegistry("tier", other); err == nil {
		t.Error("template-count mismatch against the engine env must fail")
	}
	if o.RegistryNamed("never") != nil {
		t.Error("unknown registry lookup must return nil")
	}
}

// A cancelled context must abort RunTenants, reclaim every in-flight
// stream, and leave the engine serviceable.
func TestRunTenantsContextCancel(t *testing.T) {
	base := onlineBase(t, 3, 1)
	opts := DefaultOnlineOptions()
	opts.Shards = 2
	o := NewOnlineScheduler(base, opts)
	tenants := scaleTenants(base.Env().Templates, 8, 20, time.Minute, 9, "")

	ctx, cancel := context.WithCancel(context.Background())
	var places atomic.Int64
	o.placeStarted = func(*OnlineResult) {
		if places.Add(1) == 10 {
			cancel()
		}
	}
	if _, err := o.RunTenants(ctx, tenants); err == nil {
		t.Fatal("cancelled RunTenants must return an error")
	}
	o.placeStarted = nil
	if got := o.ActiveStreams(); got != 0 {
		t.Fatalf("cancelled run leaked %d active streams", got)
	}
	if _, err := o.RunTenants(context.Background(), tenants); err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
	cancel()
}

// 1000 tenants through the sharded engine: a scaled-down smoke of the 10k
// serving mode (cmd/wisedb -streams drives the full size). Every arrival
// completes exactly once and scratch is reclaimed.
func TestRunTenantsAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base := onlineBase(t, 3, 1)
	const streams, n = 1000, 4
	o := NewOnlineScheduler(base, DefaultOnlineOptions())
	tenants := scaleTenants(base.Env().Templates, streams, n, 7*time.Minute, 123, "")
	results, err := o.RunTenants(context.Background(), tenants)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if len(res.Outcomes) != n {
			t.Fatalf("tenant %d completed %d of %d arrivals", i, len(res.Outcomes), n)
		}
	}
	if got := o.ActiveStreams(); got != 0 {
		t.Fatalf("%d streams still active", got)
	}
}

// Sharded serving must scale tenant throughput with cores: the same 64
// tenants served by one shard vs. a shard per core. Core-scaled bar per the
// TestMultiStreamThroughputScales precedent; the recorded scale-out numbers
// live in EXPERIMENTS.md.
func TestTenantThroughputScalesWithShards(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("%d cores: shard-scaling assertion needs >= 4", procs)
	}
	base := onlineBase(t, 5, 2)
	const streams, n = 64, 60
	tenants := scaleTenants(base.Env().Templates, streams, n, 7*time.Minute, 321, "")

	run := func(shards int) time.Duration {
		opts := DefaultOnlineOptions()
		opts.Shards = shards
		o := NewOnlineScheduler(base, opts)
		if _, err := o.RunTenants(context.Background(), tenants); err != nil {
			t.Fatal(err) // warm pools before measuring
		}
		start := time.Now()
		results, err := o.RunTenants(context.Background(), tenants)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if len(res.Perf) != n {
				t.Fatalf("tenant %d completed %d of %d queries", i, len(res.Perf), n)
			}
		}
		return elapsed
	}
	single := run(1)
	sharded := run(0) // one shard per core
	speedup := single.Seconds() / sharded.Seconds()
	t.Logf("%d tenants: 1 shard %s, %d shards %s, speedup %.1fx", streams, single, procs, sharded, speedup)

	var want float64
	if procs >= 10 {
		want = 8
	} else {
		want = float64(procs) / 2
	}
	if speedup < want {
		t.Errorf("%d-shard speedup %.2fx below %.1fx on %d cores", procs, speedup, want, procs)
	}
}
