// Package core implements the WiSeDB advisor itself: decision-model
// generation (§4), adaptive modeling (§5), strategy recommendation (§6.1),
// batch scheduling (§6.2), and online scheduling with the model-reuse and
// linear-shifting optimizations (§6.3).
//
// Model generation solves N independent sample workloads exactly; the
// advisor runs those searches on a worker pool (TrainConfig.Parallelism)
// with one deterministic sub-seed per sample, so a trained model is
// bit-identical for any worker count. A trained Model is immutable and safe
// for concurrent use: many goroutines may call ScheduleBatch on one Model.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wisedb/internal/dt"
	"wisedb/internal/features"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/search"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// TrainConfig tunes decision-model generation (§4.2: N sample workloads of
// m queries each).
type TrainConfig struct {
	// NumSamples is N, the number of random sample workloads. The paper
	// uses 3000; a few hundred suffice for the relative results and are
	// the default here (see DESIGN.md's scaling note). Zero selects the
	// default.
	NumSamples int
	// SampleSize is m, the queries per sample workload. The paper uses
	// 18. It must stay small enough for exact search to be fast. Zero
	// selects the default.
	SampleSize int
	// Seed makes sampling deterministic: sample i is drawn from a
	// sub-seed derived from (Seed, i), so the same Seed yields the same
	// model at every Parallelism.
	Seed int64
	// SampleWeights, when non-nil, draws sample-workload queries from the
	// weighted template distribution instead of the uniform one (§4.2 uses
	// uniform direct sampling; drift-adapted models are re-trained on the
	// observed arrival mix). Must have one non-negative weight per
	// template with a positive sum.
	SampleWeights []float64
	// Parallelism is the number of worker goroutines solving sample
	// workloads concurrently; 0 selects runtime.GOMAXPROCS(0). Results
	// are identical for every value.
	Parallelism int
	// Tree configures the decision-tree learner.
	Tree dt.Config
	// MaxExpansions bounds per-sample search effort (0 = unlimited).
	MaxExpansions int
	// KeepTrainingData retains each sample's workload and search data on
	// the model so that adaptive modeling (§5) can re-train cheaply.
	KeepTrainingData bool
	// DisableSearchCache turns off the cross-sample transposition cache
	// that Train/Adapt share across their worker pool (see
	// search.TranspositionCache). The cache applies to monotonic goals
	// only and never changes solution costs; disabling it is for
	// measurement and debugging.
	DisableSearchCache bool
}

// normalized returns the config with zero values replaced by defaults.
func (cfg TrainConfig) normalized() TrainConfig {
	def := DefaultTrainConfig()
	if cfg.NumSamples == 0 {
		cfg.NumSamples = def.NumSamples
	}
	if cfg.SampleSize == 0 {
		cfg.SampleSize = def.SampleSize
	}
	if cfg.Tree == (dt.Config{}) {
		cfg.Tree = def.Tree
	}
	return cfg
}

// validate reports the first problem that would make training misbehave.
func (cfg TrainConfig) validate() error {
	switch {
	case cfg.NumSamples < 0:
		return fmt.Errorf("core: TrainConfig.NumSamples must be positive, got %d", cfg.NumSamples)
	case cfg.SampleSize < 0:
		return fmt.Errorf("core: TrainConfig.SampleSize must be positive, got %d", cfg.SampleSize)
	case cfg.Parallelism < 0:
		return fmt.Errorf("core: TrainConfig.Parallelism must be >= 0, got %d", cfg.Parallelism)
	case cfg.MaxExpansions < 0:
		return fmt.Errorf("core: TrainConfig.MaxExpansions must be >= 0, got %d", cfg.MaxExpansions)
	}
	return nil
}

// DefaultTrainConfig returns the configuration used by the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		NumSamples:       500,
		SampleSize:       12,
		Seed:             1,
		Tree:             dt.DefaultConfig(),
		KeepTrainingData: true,
	}
}

// PaperTrainConfig returns the paper's §7.1 training scale (N=3000, m=18).
func PaperTrainConfig() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 3000
	cfg.SampleSize = 18
	return cfg
}

// Advisor generates workload-management models for one application
// environment (template set + VM types + latency predictor). An Advisor is
// safe for concurrent use.
type Advisor struct {
	env *schedule.Env
	cfg TrainConfig
}

// NewAdvisor returns an Advisor for the environment. Zero-valued fields of
// cfg are filled with defaults (a zero-value TrainConfig trains at the
// default scale); invalid values — negative counts, a nil or empty
// environment — are reported as an error rather than a panic.
func NewAdvisor(env *schedule.Env, cfg TrainConfig) (*Advisor, error) {
	if env == nil {
		return nil, errors.New("core: NewAdvisor requires a non-nil environment")
	}
	if len(env.Templates) == 0 {
		return nil, errors.New("core: NewAdvisor requires at least one template")
	}
	if len(env.VMTypes) == 0 {
		return nil, errors.New("core: NewAdvisor requires at least one VM type")
	}
	cfg = cfg.normalized()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.SampleWeights != nil {
		if len(cfg.SampleWeights) != len(env.Templates) {
			return nil, fmt.Errorf("core: TrainConfig.SampleWeights has %d weights for %d templates", len(cfg.SampleWeights), len(env.Templates))
		}
		total := 0.0
		for i, w := range cfg.SampleWeights {
			if w < 0 {
				return nil, fmt.Errorf("core: TrainConfig.SampleWeights[%d] is negative (%g)", i, w)
			}
			total += w
		}
		if total <= 0 {
			return nil, errors.New("core: TrainConfig.SampleWeights must have a positive sum")
		}
	}
	return &Advisor{env: env, cfg: cfg}, nil
}

// MustNewAdvisor is NewAdvisor panicking on error, for examples and tests
// with statically known-good configuration.
func MustNewAdvisor(env *schedule.Env, cfg TrainConfig) *Advisor {
	a, err := NewAdvisor(env, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Env returns the advisor's environment.
func (a *Advisor) Env() *schedule.Env { return a.env }

// Config returns the advisor's training configuration (normalized).
func (a *Advisor) Config() TrainConfig { return a.cfg }

// trainSample retains one sample workload and its search byproducts for
// adaptive re-training.
type trainSample struct {
	w     *workload.Workload
	reuse *search.Reuse
	// actions is the sample's exact optimal schedule — the canonical
	// search result for (w, goal, env). A warm retrain replays it
	// verbatim for samples whose draw is unchanged, skipping the search
	// entirely (see WarmTrain). Nil for samples decoded from v1 files,
	// which fall back to reuse-assisted re-search.
	actions []graph.Action
	// variates holds the unit variates the sample's weighted draw
	// consumed, one per query. A warm retrain with the same seed and
	// sample size rebins them under the drifted mix
	// (workload.WeightedFromVariates) instead of reconstructing and
	// reseeding a sampler per sample. Nil for uniform draws and v1 files.
	variates []float64
}

// Model is a trained workload-management strategy (§4.5): a decision tree
// over the §4.4 features whose leaves are scheduling actions. A model is
// bound to the goal and environment it was trained for.
//
// A Model is immutable after training and safe for concurrent use:
// ScheduleBatch, Adapt, and the read accessors may be called from many
// goroutines at once.
type Model struct {
	// Goal is the performance goal the model was trained for.
	Goal sla.Goal
	// Tree is the learned decision tree.
	Tree *dt.Tree
	// TrainingTime is the wall time spent generating the model.
	TrainingTime time.Duration
	// TrainingRows is the number of (features, decision) pairs trained on.
	TrainingRows int
	// TrainingConfig records the scale the model was trained at; online
	// scheduling re-trains augmented models at the same scale unless
	// overridden.
	TrainingConfig TrainConfig
	// TrainingCacheHits and TrainingCacheMisses aggregate the
	// transposition-cache lookups of the sample searches that built this
	// model (both zero when the cache was disabled or inapplicable).
	TrainingCacheHits, TrainingCacheMisses int
	// WarmSamples and ColdSamples split the training run's sample
	// workloads into warm replays (reused from a prior epoch by
	// WarmRetrain) and fresh exact solves. A cold Train reports all
	// samples cold.
	WarmSamples, ColdSamples int

	env     *schedule.Env
	prob    *graph.Problem
	samples []trainSample
	// searchCache is the training run's transposition cache (nil when
	// disabled or inapplicable): the solved suffix subproblems of the
	// sample searches. WarmRetrain seeds the next epoch's searches from
	// it, and persistence snapshots it so warm-started registries retrain
	// warm. Immutable after training, like the rest of the model.
	searchCache *search.TranspositionCache
	// trainingMix is the normalized template distribution the sample
	// workloads were drawn from: uniform unless the model was trained with
	// SampleWeights (drift-adapted models target the observed arrival
	// mix). The drift detector compares live arrival histograms against
	// it. Nil for directly constructed models (tests); TrainingMix()
	// falls back to uniform.
	trainingMix []float64

	// serveOnce builds serve, the precomputed serving tables (compiled
	// tree + fresh-VM cost matrix); Train/Adapt build them eagerly,
	// directly constructed models (tests) fall back to first use.
	serveOnce sync.Once
	serve     *servingTables
	// scratch pools per-call serving state for ScheduleBatch, so
	// concurrent batch scheduling allocates O(1) amortized per query.
	scratch sync.Pool // *servingScratch
}

// Env returns the environment the model is bound to.
func (m *Model) Env() *schedule.Env { return m.env }

// TrainingMix returns a copy of the normalized template distribution the
// model's sample workloads were drawn from — the arrival mix it was built to
// serve. Models trained without SampleWeights (and directly constructed
// ones) report the uniform distribution.
func (m *Model) TrainingMix() []float64 {
	if m.trainingMix != nil {
		return append([]float64(nil), m.trainingMix...)
	}
	return uniformMix(len(m.env.Templates))
}

// uniformMix returns the uniform distribution over k templates.
func uniformMix(k int) []float64 {
	mix := make([]float64, k)
	for i := range mix {
		mix[i] = 1 / float64(k)
	}
	return mix
}

// normalizedMix returns weights scaled to sum to 1, or the uniform mix for
// nil weights.
func normalizedMix(weights []float64, k int) []float64 {
	if weights == nil {
		return uniformMix(k)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	mix := make([]float64, len(weights))
	for i, w := range weights {
		mix[i] = w / total
	}
	return mix
}

// Train generates a decision model for the goal (§4): it samples N random
// workloads of m queries, solves each exactly on the scheduling graph,
// extracts the §4.4 features from every decision on every optimal path, and
// fits a decision tree. The N searches run on the configured worker pool.
func (a *Advisor) Train(goal sla.Goal) (*Model, error) {
	return a.TrainContext(context.Background(), goal)
}

// sampleSolution is one worker's output: the sample workload and its
// exactly solved search result, buffered per index so the fold into the
// training set happens in sample order regardless of completion order.
type sampleSolution struct {
	w        *workload.Workload
	res      *search.Result
	variates []float64
}

// TrainContext is Train with cancellation: ctx aborts the remaining sample
// searches and returns ctx.Err().
func (a *Advisor) TrainContext(ctx context.Context, goal sla.Goal) (*Model, error) {
	// The transposition cache is scoped to this call: suffix optima are
	// goal-specific, and a per-call cache keeps sequences of Train/Adapt
	// calls deterministic regardless of what ran before them. (A warm
	// retrain instead clones the prior epoch's cache — see WarmTrain —
	// which the canonical-search invariant makes equally deterministic.)
	var cache *search.TranspositionCache
	if !a.cfg.DisableSearchCache && goal.Monotonic() {
		cache = search.NewTranspositionCache()
	}
	return a.trainPipeline(ctx, goal, cache, nil)
}

// trainPipeline is the sample-generation / exact-search / dataset-fold /
// tree-fit pipeline shared by cold training and warm retraining. The N
// sample searches run on the worker pool; solved generations stream into
// the decision-tree dataset through solveSamplesFold's pipelined fold, so
// dataset building overlaps the remaining searches instead of waiting for
// all of them. ws, when non-nil, carries the prior epoch's retained
// searches (the warm path): a sample whose draw is unchanged replays its
// stored action path verbatim in O(path) instead of searching, falling
// back to a §5 reuse-assisted re-search when no path was retained (v1
// files) and to a cold solve when the replay rejects. Canonical search
// (see search's solver) makes the stored path exactly what today's search
// would return, and replay regenerates the same Path steps and cache
// records buildPath would — so the trained model is bit-identical whether
// samples replay warm or solve cold, at any Parallelism.
func (a *Advisor) trainPipeline(ctx context.Context, goal sla.Goal, cache *search.TranspositionCache, ws *warmSource) (*Model, error) {
	start := time.Now()
	prob := graph.NewProblem(a.env, goal)
	// The canonical-VM-ordering reduction fragments state merging more
	// than it prunes at training sample sizes (see the ablation
	// benchmarks in internal/search), so the training searches run
	// without it.
	prob.NoSymmetryBreaking = true
	searcher, err := search.New(prob)
	if err != nil {
		return nil, fmt.Errorf("core: training: %w", err)
	}

	solutions := make([]sampleSolution, a.cfg.NumSamples)
	warmed := make([]bool, a.cfg.NumSamples)
	priors := make([]*trainSample, a.cfg.NumSamples)
	numLabels := len(a.env.Templates) + len(a.env.VMTypes)
	ds := &dt.Dataset{FeatureNames: features.Names(len(a.env.Templates)), NumLabels: numLabels}
	fs := features.NewState(prob)
	var samples []trainSample
	cacheHits, cacheMisses, warm := 0, 0, 0
	fold := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			sol := solutions[i]
			addPathToDataset(ds, fs, sol.res.Path)
			cacheHits += sol.res.CacheHits
			cacheMisses += sol.res.CacheMisses
			if warmed[i] {
				warm++
			}
			if a.cfg.KeepTrainingData {
				ts := trainSample{w: sol.w, actions: sol.res.Actions, variates: sol.variates}
				if sol.res.Closed != nil {
					ts.reuse = search.ReuseFrom(sol.res)
				} else if p := priors[i]; p != nil {
					// Replayed sample: no search ran, so no Closed set was
					// built. The prior epoch's reuse is still exact for this
					// (workload, goal) and Closed sets are immutable, so the
					// next epoch inherits it unchanged.
					ts.reuse = p.reuse
				}
				samples = append(samples, ts)
			}
			solutions[i] = sampleSolution{} // folded; free the search result early
		}
		return nil
	}
	err = solveSamplesFold(ctx, a.cfg.Parallelism, a.cfg.NumSamples, cache,
		func(i int, cache *search.TranspositionCache, rec *search.PendingSuffixes) error {
			var prior *trainSample
			if ws != nil && i < len(ws.samples) {
				prior = &ws.samples[i]
			}
			var w *workload.Workload
			var variates []float64
			switch {
			case a.cfg.SampleWeights != nil && ws != nil && ws.useVariates &&
				prior != nil && len(prior.variates) == a.cfg.SampleSize:
				// Same seed and size: the prior epoch's variates ARE this
				// epoch's draws — rebin them under the drifted mix instead
				// of reconstructing (and expensively reseeding) a sampler.
				variates = prior.variates
				w = workload.WeightedFromVariates(a.env.Templates, variates, a.cfg.SampleWeights)
			case a.cfg.SampleWeights != nil:
				sampler := workload.NewSampler(a.env.Templates, deriveSeed(a.cfg.Seed, i))
				w, variates = sampler.WeightedVariates(a.cfg.SampleSize, a.cfg.SampleWeights)
			default:
				sampler := workload.NewSampler(a.env.Templates, deriveSeed(a.cfg.Seed, i))
				w = sampler.Uniform(a.cfg.SampleSize)
			}
			if prior != nil && (prior.reuse == nil || !sameQueries(w, prior.w)) {
				prior = nil
			}
			var res *search.Result
			if prior != nil && len(prior.actions) > 0 {
				// Unchanged draw with a retained path: replay it instead of
				// searching. buildPath validates the walk (goal reached,
				// cost matches) before recording anything, so a rejected
				// replay — a stale or corrupted prior — leaves the cache
				// untouched and the sample simply solves cold below.
				r, rErr := searcher.Replay(w, prior.actions, prior.reuse.OldCost, rec)
				if rErr == nil {
					res = r
				} else {
					prior = nil
				}
			}
			warmed[i] = prior != nil
			priors[i] = prior
			if res == nil {
				var reuse *search.Reuse
				if prior != nil {
					// Retained sample without a stored path (decoded from a
					// v1 file): re-search with the §5 adaptive-A* bound,
					// which collapses the search to a near-replay.
					reuse = prior.reuse
				}
				var err error
				res, err = searcher.Solve(w, search.Options{
					MaxExpansions: a.cfg.MaxExpansions,
					KeepClosed:    a.cfg.KeepTrainingData,
					Cache:         cache,
					Record:        rec,
					Reuse:         reuse,
				})
				if err != nil {
					return fmt.Errorf("core: training sample %d: %w", i, err)
				}
			}
			solutions[i] = sampleSolution{w: w, res: res, variates: variates}
			return nil
		}, fold)
	if err != nil {
		return nil, err
	}

	tree := dt.Train(ds, a.cfg.Tree)
	m := &Model{
		Goal:              goal,
		Tree:              tree,
		TrainingTime:      time.Since(start),
		TrainingRows:      ds.Len(),
		TrainingConfig:    a.cfg,
		TrainingCacheHits: cacheHits, TrainingCacheMisses: cacheMisses,
		WarmSamples: warm,
		ColdSamples: a.cfg.NumSamples - warm,
		env:         a.env,
		prob:        runtimeProblem(a.env, goal),
		samples:     samples,
		searchCache: cache,
		trainingMix: normalizedMix(a.cfg.SampleWeights, len(a.env.Templates)),
	}
	m.servingTables() // compile the serving form at train time
	return m, nil
}

// runtimeProblem returns the graph problem the batch scheduler navigates.
// The search's canonical-VM-ordering reduction is disabled at runtime: the
// scheduler follows the tree greedily rather than searching, and the
// ordering constraint could otherwise dead-end a state (an empty open VM
// whose remaining templates are all above the bound).
func runtimeProblem(env *schedule.Env, goal sla.Goal) *graph.Problem {
	prob := graph.NewProblem(env, goal)
	prob.NoSymmetryBreaking = true
	return prob
}

// addPathToDataset converts each decision on an optimal path into a
// (features, action-label) training instance, ingested as one batch per
// path (dt.Ingest is defined as Add row by row, so batching changes
// nothing about the dataset). The caller-owned feature state is reused
// across paths; each row still gets its own vector, which the dataset
// retains.
func addPathToDataset(ds *dt.Dataset, fs *features.State, path []search.Step) {
	k := fs.NumTemplates()
	x := make([][]float64, 0, len(path))
	y := make([]int, 0, len(path))
	for _, step := range path {
		fs.Reset(step.State)
		x = append(x, fs.AppendTo(make([]float64, 0, features.VectorLen(k)), step.State))
		y = append(y, step.Action.Label(k))
	}
	ds.Ingest(x, y)
}

// ActionName renders an action label for model dumps.
func (m *Model) ActionName(label int) string {
	a := graph.ActionFromLabel(label, len(m.env.Templates))
	if a.Kind == graph.Place {
		return fmt.Sprintf("assign-T%d", a.Template)
	}
	return fmt.Sprintf("new-VM-%s", m.env.VMTypes[a.VMType].Name)
}

// Dump renders the decision tree in the style of the paper's Figure 6.
func (m *Model) Dump() string { return m.Tree.Dump(m.ActionName) }
