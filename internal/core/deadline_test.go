package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"wisedb/internal/sla"
	"wisedb/internal/store"
	"wisedb/internal/workload"
)

// deadlineTestStream trains a small model and opens a stream with a
// backlog guaranteed to contain waited queries: six arrivals at t=0
// (more than the schedule starts at once), then the clock advances so
// the next event's batch mixes waited and fresh work — the path that
// needs model acquisition, which is what a deadline bounds.
func deadlineTestStream(t *testing.T, opts OnlineOptions) (*OnlineScheduler, *Stream, *SimClock) {
	t.Helper()
	adv := smallAdvisor(t, 4, 2)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOnlineScheduler(m, opts)
	clk := &SimClock{}
	s := o.NewStream(clk)
	qs := make([]workload.Query, 6)
	for i := range qs {
		qs[i] = workload.Query{TemplateID: i % 4, Tag: i}
	}
	if err := s.Submit(context.Background(), qs...); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Second)
	return o, s, clk
}

// A per-event deadline expiring during model acquisition must degrade
// the event to the heuristic path — the arrival is placed and the
// stream keeps serving — never abort the stream the way caller
// cancellation does.
func TestSubmitDeadlineDegradesNotAborts(t *testing.T) {
	o, s, _ := deadlineTestStream(t, OnlineOptions{Reuse: true, Degrade: true})
	err := s.SubmitDeadline(context.Background(), time.Nanosecond, workload.Query{TemplateID: 1, Tag: 6})
	if err != nil {
		t.Fatalf("deadline expiry must degrade, not fail the stream: %v", err)
	}
	res := s.Finish()
	if res.DeadlineMisses != 1 {
		t.Errorf("DeadlineMisses = %d, want 1", res.DeadlineMisses)
	}
	if res.DegradedArrivals == 0 {
		t.Error("missed deadline did not route through the degraded path")
	}
	if len(res.Outcomes) != 7 {
		t.Errorf("completed %d queries, want all 7 exactly once", len(res.Outcomes))
	}
	s.Close()
	if got := o.ScaleStats().DeadlineMisses; got != 1 {
		t.Errorf("engine DeadlineMisses = %d, want 1", got)
	}
}

// Without Degrade there is no graceful response to a missed deadline:
// the expiry surfaces as an error, like any other model-path failure.
func TestSubmitDeadlineWithoutDegradeFails(t *testing.T) {
	_, s, _ := deadlineTestStream(t, OnlineOptions{Reuse: true})
	err := s.SubmitDeadline(context.Background(), time.Nanosecond, workload.Query{TemplateID: 1, Tag: 6})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	s.Close()
}

// The caller's own context going dead is a stop signal, not an overload
// condition: it aborts even with Degrade on.
func TestSubmitCancelledContextAborts(t *testing.T) {
	_, s, _ := deadlineTestStream(t, OnlineOptions{Reuse: true, Degrade: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Submit(ctx, workload.Query{TemplateID: 1, Tag: 6})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	s.Close()
}

// Shed folds pre-admission drops (the daemon's token bucket) into the
// same ledger as the engine's internal backlog shedding.
func TestStreamShedCounters(t *testing.T) {
	adv := smallAdvisor(t, 3, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOnlineScheduler(m, OnlineOptions{})
	s := o.NewStream(&SimClock{})
	s.Shed(3)
	s.Shed(0)
	s.Shed(-1)
	res := s.Finish()
	s.Close()
	if res.ShedArrivals != 3 {
		t.Errorf("ShedArrivals = %d, want 3", res.ShedArrivals)
	}
	if got := o.ScaleStats().ShedArrivals; got != 3 {
		t.Errorf("engine ShedArrivals = %d, want 3", got)
	}
}

// RetryDelay is deterministic for a seed, doubles per attempt, and its
// jitter stays within half the base delay.
func TestRetryDelaySchedule(t *testing.T) {
	p := RetryPolicy{CheckpointBackoff: 10 * time.Millisecond}
	for attempt := 1; attempt <= 5; attempt++ {
		base := p.normalized().CheckpointBackoff << (attempt - 1)
		d := p.RetryDelay(attempt, 42)
		if d < base || d >= base+base/2+1 {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d, base, base+base/2)
		}
		if again := p.RetryDelay(attempt, 42); again != d {
			t.Errorf("attempt %d: nondeterministic delay %v vs %v", attempt, d, again)
		}
	}
	if p.RetryDelay(3, 1) == p.RetryDelay(3, 2) {
		t.Log("distinct seeds drew equal jitter (possible, just unlikely)")
	}
	if d := p.RetryDelay(64, 7); d > 45*time.Second {
		t.Errorf("delay cap breached: %v", d)
	}
}

// Drain's final commit catches a store that background checkpointing
// left behind (every in-fault retry exhausted): after Drain the store
// holds the serving epoch and warm-starts into it.
func TestRegistryDrainCommitsLaggingStore(t *testing.T) {
	adv := smallAdvisor(t, 3, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := NewModelRegistry(m)
	r.SetRetryPolicy(RetryPolicy{CheckpointAttempts: 1, CheckpointBackoff: time.Millisecond})
	if err := r.CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	// Break the store, install an epoch (its background commit fails),
	// then heal the store: only Drain's final commit can catch it up.
	broken := errors.New("injected payload fault")
	ms.SetPayloadWriter(func(string, []byte) error { return broken })
	r.Swap(m, nil)
	r.Wait()
	if latest, _ := ms.LatestEpoch(); latest != 0 {
		t.Fatalf("store advanced to %d through a broken writer", latest)
	}
	ms.SetPayloadWriter(nil)
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if latest, ok := ms.LatestEpoch(); !ok || latest != 1 {
		t.Fatalf("store at epoch %d after drain, want 1", latest)
	}
	// And a drain against a caught-up store is a no-op.
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, data, err := ms.Latest(); err != nil || len(data) == 0 {
		t.Fatalf("drained store unreadable: %v", err)
	}
}
