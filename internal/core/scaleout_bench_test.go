package core

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// BenchmarkShardedCacheContention measures the ω-map's lock cost under
// parallel hot-key traffic: every worker loops over the same 64 hot keys,
// so stripes=1 (the old single-mutex cache) serializes on one lock while
// stripes=64 spreads the same traffic over independent stripes. The
// ns/op gap is the headline scale-out number CI persists in
// BENCH_scaleout.json; EXPERIMENTS.md records the mutex-profile
// before/after on the reference runner.
func BenchmarkShardedCacheContention(b *testing.B) {
	m := benchModel(b)
	for _, stripes := range []int{1, 64} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			var c modelCache
			c.init(stripes)
			keys := make([]shiftKey, 64)
			for i := range keys {
				keys[i] = shiftKey{epoch: 0, wait: time.Duration(i) * time.Second}
				if _, err := getOrBuild(&c, shiftedMap, keys[i], keys[i].hash(), context.Background(),
					func() (*Model, error) { return m, nil }); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := keys[i&63]
					i++
					if _, err := getOrBuild(&c, shiftedMap, k, k.hash(), context.Background(), nil); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkOnlineMultiTenant measures the sharded serving engine end to
// end: K tenants placed by consistent hashing over engine shards, half
// bound to a second registry, fresh-batch arrivals (the steady-state
// path). shards=1 is the unsharded baseline the scale-out acceptance bar
// compares against; shards=0 runs one shard per core. arrivals/sec is the
// metric CI persists in BENCH_scaleout.json.
func BenchmarkOnlineMultiTenant(b *testing.B) {
	m := benchModel(b)
	const n = 30
	for _, streams := range []int{64, 256} {
		for _, shards := range []int{1, 0} {
			name := fmt.Sprintf("streams=%d/shards=percore", streams)
			if shards == 1 {
				name = fmt.Sprintf("streams=%d/shards=1", streams)
			}
			b.Run(name, func(b *testing.B) {
				opts := DefaultOnlineOptions()
				opts.Shards = shards
				o := NewOnlineScheduler(m, opts)
				if _, err := o.AddRegistry("premium", m); err != nil {
					b.Fatal(err)
				}
				tenants := scaleTenants(m.Env().Templates, streams, n, 7*time.Minute, 17, "premium")
				if _, err := o.RunTenants(context.Background(), tenants); err != nil {
					b.Fatal(err) // warm shard pools before measuring
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := o.RunTenants(context.Background(), tenants); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if b.N > 0 {
					perSec := float64(b.N*streams*n) / b.Elapsed().Seconds()
					b.ReportMetric(perSec, "arrivals/sec")
				}
			})
		}
	}
}
