// Cross-registry retrain sharing: when one engine hosts several model
// registries (one per SLA goal / tenant tier), independent drift detectors
// can converge on the same retrain — same goal, same training
// configuration, same observed mix. The searches are deterministic, so the
// second registry would burn an identical training search to reproduce a
// model that already exists. retrainShare memoizes retrain builds across an
// engine's registries: the first registry builds, later identical requests
// reuse the model (models are immutable and safe for concurrent serving),
// and ScaleStats.SharedRetrains counts the searches saved.
package core

import (
	"context"
	"math"
	"reflect"
	"slices"
	"sync"
	"sync/atomic"

	"wisedb/internal/schedule"
	"wisedb/internal/sla"
)

// shareLimit bounds the completed-build memo. Entries are only a pointer to
// an already-live model, so the bound is about map hygiene on very
// long-lived engines, not memory pressure; in-flight builds are never
// evicted.
const shareLimit = 128

// shareEntry is one memoized retrain build. done is closed once m/err are
// in place; concurrent identical requests wait on it (the same
// build-once discipline as the ω-map's modelEntry). The witness fields
// record exactly the inputs that determine a drift retrain's output — a
// hash hit must also match the witness before the build may be shared,
// because silently serving tier A's model to tier B on a hash collision
// would be unsound. Collisions fall back to an unshared build instead.
type shareEntry struct {
	env  *schedule.Env
	goal sla.Goal
	cfg  TrainConfig
	mix  []float64

	done chan struct{}
	m    *Model
	err  error
}

// matches reports whether a retrain for (cur, mix) would rebuild exactly
// this entry's model. Runs on the retrain path (seconds of training behind
// it), so reflect.DeepEqual's cost is irrelevant.
func (e *shareEntry) matches(cur *ModelEpoch, mix []float64) bool {
	m := cur.Model
	return e.env == m.env &&
		slices.Equal(e.mix, mix) &&
		reflect.DeepEqual(e.cfg, shareCfg(m.TrainingConfig)) &&
		reflect.DeepEqual(e.goal, m.Goal)
}

// shareCfg normalizes a training config down to the fields that influence a
// drift retrain's output: DriftRetrain overwrites SampleWeights with the
// target mix and forces KeepTrainingData on, Parallelism never changes
// results (training is bit-identical at any worker count), and the search
// cache never changes solution costs.
func shareCfg(cfg TrainConfig) TrainConfig {
	cfg.SampleWeights = nil
	cfg.KeepTrainingData = true
	cfg.Parallelism = 0
	cfg.DisableSearchCache = false
	return cfg
}

// shareKey hashes the retrain inputs for the memo lookup. It is only an
// accelerator: collisions are resolved by shareEntry.matches, never by
// trust.
func shareKey(cur *ModelEpoch, mix []float64) uint64 {
	m := cur.Model
	h := uint64(14695981039346656037)
	key := m.Goal.Key()
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	cfg := m.TrainingConfig
	h = mix64(h ^ uint64(cfg.NumSamples)<<32 ^ uint64(cfg.SampleSize))
	h = mix64(h ^ uint64(cfg.Seed))
	h = mix64(h ^ uint64(cfg.MaxExpansions)<<16 ^ uint64(cfg.Tree.MinLeaf)<<8 ^ uint64(cfg.Tree.MaxDepth))
	h = mix64(h ^ math.Float64bits(cfg.Tree.PruneConfidence))
	if cfg.Tree.Prune {
		h = mix64(h ^ 1)
	}
	for _, w := range mix {
		h = mix64(h ^ math.Float64bits(w))
	}
	return h
}

// retrainShare memoizes drift-retrain builds across an engine's registries.
// The engine wraps every attached registry's RetrainFunc through retrain.
type retrainShare struct {
	mu      sync.Mutex
	entries map[uint64]*shareEntry
	shared  atomic.Int64
}

func (s *retrainShare) init() { s.entries = make(map[uint64]*shareEntry) }

// retrain returns the memoized model for (cur, mix) or builds it with inner
// at most once across concurrent identical requests. Failures (including
// one registry's context cancellation) are never memoized: the failing
// entry removes itself and waiters retry, becoming the builder themselves.
// The lock is held only around map probes, never across a training search.
func (s *retrainShare) retrain(ctx context.Context, cur *ModelEpoch, mix []float64, inner RetrainFunc) (*Model, error) {
	key := shareKey(cur, mix)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		e, ok := s.entries[key]
		if ok && !e.matches(cur, mix) {
			// Hash collision between two distinct retrain inputs: build
			// unshared rather than evict the resident entry.
			s.mu.Unlock()
			return inner(ctx, cur, mix)
		}
		if !ok {
			e = &shareEntry{
				env:  cur.Model.env,
				goal: cur.Model.Goal,
				cfg:  shareCfg(cur.Model.TrainingConfig),
				mix:  slices.Clone(mix),
				done: make(chan struct{}),
			}
			if len(s.entries) >= shareLimit {
				s.evictDoneLocked()
			}
			s.entries[key] = e
			s.mu.Unlock()
			e.m, e.err = inner(ctx, cur, mix)
			if e.err != nil {
				s.mu.Lock()
				if cur, ok := s.entries[key]; ok && cur == e {
					delete(s.entries, key)
				}
				s.mu.Unlock()
			}
			close(e.done)
			return e.m, e.err
		}
		s.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err == nil {
			s.shared.Add(1)
			return e.m, nil
		}
		// The build we waited on failed and removed itself; retry.
	}
}

// evictDoneLocked trims completed entries to keep the memo bounded.
// In-flight builds are never evicted — a waiter holds their entry pointer.
func (s *retrainShare) evictDoneLocked() {
	for k, e := range s.entries {
		select {
		case <-e.done:
			delete(s.entries, k)
			if len(s.entries) < shareLimit {
				return
			}
		default:
		}
	}
}
