package core

import (
	"bytes"
	"context"

	"wisedb/internal/search"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// Warm retraining: a drift retrain that reuses the prior epoch's search
// products instead of solving every sample workload from scratch. Three
// layers compose, each individually sound and jointly bit-transparent —
// the warm model's serving content is identical to the cold retrain's (see
// DESIGN.md, "Warm retrain"):
//
//  1. Cross-epoch transposition cache. The prior epoch's cache holds solved
//     suffix subproblems keyed by workload-independent signatures (for
//     monotonic goals: unassigned counts, open-VM type, queued wait), so
//     its entries stay exact under the new arrival mix — only the sample
//     *starts* change, never the suffix optima. The warm train clones the
//     snapshot (the epoch stays immutable) and seeds its worker pool with
//     it.
//  2. Sample-level path replay. Sample i's workload is drawn from the same
//     deterministic sub-seed at every epoch; a per-query inverse-CDF draw
//     changes only where the mix shift moved a bin boundary across the
//     query's variate. Samples whose draw is unchanged skip the search
//     entirely: the prior epoch's stored optimal path is replayed in
//     O(path) (search.Replay), regenerating the identical training steps
//     and cache records the search would have produced. Samples retained
//     without a stored path (v1 checkpoints) re-solve with the prior
//     search's adaptive-A* reuse (§5: h' = max(h, C* − g_old), exact for
//     the same goal), which collapses the search to a near-replay.
//  3. Pipelined tree build. Solved generations stream into the
//     decision-tree dataset at the worker pool's commit barriers
//     (solveSamplesFold), overlapping dataset construction with the
//     remaining searches.
//
// Soundness rests on the canonical-search invariant (search's solver):
// monotonic, unseeded searches return the lexicographically least optimal
// schedule regardless of cache contents or heuristic strength, so every
// layer accelerates without steering. Non-monotonic goals (Average,
// Percentile) have none of these properties — their caches are unsound
// across searches and reuse can prune the optimum — so they fall back to a
// cold train, explicitly counted in Model.ColdSamples.

// WarmTrain trains a model for the advisor's configuration (typically the
// drifted arrival mix in SampleWeights), warm-started from prior — the
// epoch being replaced. When the (goal, environment, config) combination
// supports warm reuse, the prior epoch's transposition cache and retained
// sample searches accelerate training; otherwise this is exactly Train.
// Either way the returned model is bit-identical in serving content to a
// cold Train of the same configuration, at any Parallelism.
func (a *Advisor) WarmTrain(goal sla.Goal, prior *Model) (*Model, error) {
	return a.WarmTrainContext(context.Background(), goal, prior)
}

// WarmTrainContext is WarmTrain with cancellation.
func (a *Advisor) WarmTrainContext(ctx context.Context, goal sla.Goal, prior *Model) (*Model, error) {
	if !a.warmEligible(goal, prior) {
		return a.TrainContext(ctx, goal)
	}
	cache := search.NewTranspositionCache()
	if prior.searchCache != nil {
		// Clone, do not share: the warm train commits its own suffix
		// records as it runs, and the prior epoch may still be serving
		// (and being checkpointed) concurrently.
		cache = prior.searchCache.Clone()
	}
	return a.trainPipeline(ctx, goal, cache, &warmSource{
		samples: prior.samples,
		useVariates: prior.TrainingConfig.Seed == a.cfg.Seed &&
			prior.TrainingConfig.SampleSize == a.cfg.SampleSize,
	})
}

// warmEligible gates the warm path. Every condition guards a soundness or
// determinism requirement:
//
//   - monotonic goal: the transposition cache and §5 reuse are only sound
//     there, and only monotonic searches are canonical;
//   - cache enabled, no expansion cap: a capped search can return a
//     non-optimal schedule, which is not a pure function of the inputs;
//   - same goal: cache entries and Closed costs are goal-specific (equal
//     goals make the reuse bound exact rather than merely admissible);
//   - same environment object: the prior epoch's searches priced edges on
//     this exact latency matrix (DriftRetrain always retrains on the
//     serving model's own env);
//   - something to reuse: a prior with neither cache nor retained samples
//     warms nothing.
func (a *Advisor) warmEligible(goal sla.Goal, prior *Model) bool {
	return prior != nil &&
		goal.Monotonic() &&
		!a.cfg.DisableSearchCache &&
		a.cfg.MaxExpansions == 0 &&
		prior.env == a.env &&
		goalsEqual(goal, prior.Goal) &&
		(prior.searchCache != nil || len(prior.samples) > 0)
}

// goalsEqual compares goals by their canonical persisted encoding — the
// goal families carry slices (PerQuery), so == would panic; the encoding
// compares every parameter exactly.
func goalsEqual(a, b sla.Goal) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	pa, errA := encodeGoal(a)
	pb, errB := encodeGoal(b)
	return errA == nil && errB == nil && bytes.Equal(pa, pb)
}

// warmSource carries the prior epoch's retained searches into
// trainPipeline. useVariates reports that the prior epoch drew its
// samples with this configuration's seed and sample size, so its stored
// per-sample variates reproduce this epoch's draws exactly and the
// samplers need not be reconstructed.
type warmSource struct {
	samples     []trainSample
	useVariates bool
}

// sameQueries reports whether two sample workloads drew exactly the same
// query sequence (template and tag per position) — the condition for
// replaying the prior epoch's search of the sample.
func sameQueries(a, b *workload.Workload) bool {
	if b == nil || len(a.Queries) != len(b.Queries) {
		return false
	}
	for i, q := range a.Queries {
		if b.Queries[i] != q {
			return false
		}
	}
	return true
}
