package core

import (
	"context"
	"fmt"
	"math"

	"wisedb/internal/sla"
	"wisedb/internal/stats"
	"wisedb/internal/workload"
)

// Strategy is one recommended workload-execution strategy (§6.1): a decision
// model plus a per-template cost profile that parameterizes the strategy's
// cost-estimation function. Applications pick the strategy whose
// performance/cost trade-off suits them and call EstimateCost with the
// template mix of an anticipated workload.
type Strategy struct {
	// Model executes workloads under this strategy's performance goal.
	Model *Model
	// AvgTemplateCost is the average cost in cents of one query of each
	// template under this strategy, measured on a large random sample
	// workload. It drives EstimateCost and the EMD-based tier selection.
	AvgTemplateCost []float64
}

// EstimateCost predicts the cost in cents of executing a workload with the
// given number of instances per template (§6.1: "a cost estimation function
// that takes as a parameter the number of instances per query template").
func (s *Strategy) EstimateCost(countsPerTemplate []int) float64 {
	total := 0.0
	for t, c := range countsPerTemplate {
		if t < len(s.AvgTemplateCost) {
			total += float64(c) * s.AvgTemplateCost[t]
		}
	}
	return total
}

// RecommendConfig tunes strategy recommendation.
type RecommendConfig struct {
	// K is the number of strategies to present (§6.1's k).
	K int
	// CandidateCount is the length n of the candidate goal sequence
	// R_1..R_n; the application goal sits at its median.
	CandidateCount int
	// MaxTighten and MaxLoosen bound the strictness range explored, as
	// tightening fractions (§7.3 formula); the candidates interpolate
	// between −MaxLoosen and +MaxTighten.
	MaxTighten, MaxLoosen float64
	// ProfileWorkloadSize is the size of the random workload used to
	// measure per-template average costs.
	ProfileWorkloadSize int
	// Seed drives the profiling workload sampler.
	Seed int64
}

// DefaultRecommendConfig mirrors the paper's setup: a handful of tiers
// spanning looser-to-stricter goals around the application's.
func DefaultRecommendConfig() RecommendConfig {
	return RecommendConfig{
		K:                   3,
		CandidateCount:      7,
		MaxTighten:          0.6,
		MaxLoosen:           0.6,
		ProfileWorkloadSize: 200,
		Seed:                99,
	}
}

// Recommend generates k alternative strategies around the application's
// goal (§6.1): it builds a sequence of performance goals in increasing
// strictness with the application's goal as the median, trains the loosest
// fresh and adapts it step by step to each stricter goal (§5), profiles the
// average per-template cost of each resulting model on a large random
// workload, and prunes the sequence by repeatedly dropping the goal whose
// per-template cost profile is closest (by Earth Mover's Distance) to its
// predecessor's, until k remain.
//
// Each tier's training and adaptation searches run on the advisor's worker
// pool, and the per-tier cost profiles are computed concurrently.
func (a *Advisor) Recommend(goal sla.Goal, cfg RecommendConfig) ([]*Strategy, error) {
	return a.RecommendContext(context.Background(), goal, cfg)
}

// RecommendContext is Recommend with cancellation.
func (a *Advisor) RecommendContext(ctx context.Context, goal sla.Goal, cfg RecommendConfig) ([]*Strategy, error) {
	if cfg.K <= 0 || cfg.CandidateCount < cfg.K {
		return nil, fmt.Errorf("core: Recommend requires 0 < K <= CandidateCount, got K=%d n=%d", cfg.K, cfg.CandidateCount)
	}
	// Candidate tightening fractions relative to the application's goal,
	// loosest first so each successive goal is stricter and adaptive
	// re-training applies (§5 considers only stricter goals; "one can
	// start with a substantially loose performance goal and restrict it
	// incrementally").
	fractions := make([]float64, cfg.CandidateCount)
	for i := range fractions {
		frac := 0.0
		if cfg.CandidateCount > 1 {
			frac = float64(i) / float64(cfg.CandidateCount-1)
		}
		fractions[i] = -cfg.MaxLoosen + frac*(cfg.MaxLoosen+cfg.MaxTighten)
	}

	// Train the loosest candidate fresh, then adapt forward. Adapting
	// from the previous candidate needs its training data, which Adapt
	// retains.
	loosest := goal.Tighten(fractions[0])
	prev, err := a.TrainContext(ctx, loosest)
	if err != nil {
		return nil, err
	}
	models := []*Model{prev}
	for _, p := range fractions[1:] {
		next, err := prev.AdaptContext(ctx, goal.Tighten(p))
		if err != nil {
			return nil, err
		}
		models = append(models, next)
		prev = next
	}

	// Profile each model's average per-template cost on one shared
	// random workload (§6.1: no workload execution needed — the cost
	// model prices the schedule). Profiles are independent per tier, so
	// they run on the worker pool too.
	sampler := workload.NewSampler(a.env.Templates, cfg.Seed)
	profileW := sampler.Uniform(cfg.ProfileWorkloadSize)
	strategies := make([]*Strategy, len(models))
	err = forEach(ctx, a.cfg.Parallelism, len(models), func(i int) error {
		profile, err := templateCostProfile(models[i], profileW)
		if err != nil {
			return err
		}
		strategies[i] = &Strategy{Model: models[i], AvgTemplateCost: profile}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Prune: repeatedly remove the successor of the closest adjacent
	// pair under EMD until k tiers remain (§6.1).
	for len(strategies) > cfg.K {
		minIdx, minDist := -1, math.Inf(1)
		for i := 0; i+1 < len(strategies); i++ {
			d := stats.EMD1D(strategies[i].AvgTemplateCost, strategies[i+1].AvgTemplateCost)
			if d < minDist {
				minDist = d
				minIdx = i
			}
		}
		strategies = append(strategies[:minIdx+1], strategies[minIdx+2:]...)
	}
	return strategies, nil
}

// templateCostProfile schedules the profiling workload with the model and
// attributes the schedule's total cost to templates: each query carries its
// own processing cost plus an equal share of its VM's start-up fee, and the
// penalty is split evenly across all queries. The result is the average
// cost per query of each template.
func templateCostProfile(m *Model, w *workload.Workload) ([]float64, error) {
	sched, err := m.ScheduleBatch(w)
	if err != nil {
		return nil, err
	}
	k := len(m.env.Templates)
	costs := make([]float64, k)
	counts := make([]int, k)
	n := sched.NumQueries()
	penaltyShare := 0.0
	if n > 0 {
		penaltyShare = sched.Penalty(m.env, m.Goal) / float64(n)
	}
	for _, vm := range sched.VMs {
		vt := m.env.VMTypes[vm.TypeID]
		startShare := vt.StartupCost / float64(len(vm.Queue))
		for _, q := range vm.Queue {
			lat, ok := m.env.Latency(q.TemplateID, vm.TypeID)
			if !ok {
				continue
			}
			costs[q.TemplateID] += vt.RunningCost(lat) + startShare + penaltyShare
			counts[q.TemplateID]++
		}
	}
	for t := range costs {
		if counts[t] > 0 {
			costs[t] /= float64(counts[t])
		}
	}
	return costs, nil
}
