package core

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// warmTrainConfig is the shared scale for warm-retrain tests: big enough
// that the transposition cache and sample replay both engage, small enough
// for unit-test time.
func warmTrainConfig() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 48
	cfg.SampleSize = 6
	cfg.Seed = 11
	cfg.KeepTrainingData = true
	return cfg
}

// contentHash returns the model's parallelism-independent content hash.
func contentHash(t *testing.T, m *Model) uint64 {
	t.Helper()
	_, hash, err := encodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	return hash
}

// The warm-retrain identity pin: for every goal family, a warm retrain
// must produce a model whose serving content is bit-identical to a cold
// retrain of the same configuration — at any parallelism. Monotonic goals
// take the warm path (cache + replay); Average and Percentile must fall
// back to cold, which satisfies the identity trivially but must still be
// counted as cold.
func TestWarmRetrainMatchesCold(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(4), cloud.DefaultVMTypes(2))
	cfg := warmTrainConfig()
	mix := []float64{0.5, 0.3, 0.1, 0.1}
	ctx := context.Background()
	for name, goal := range testGoals(env) {
		t.Run(name, func(t *testing.T) {
			base, err := MustNewAdvisor(env, cfg).Train(goal)
			if err != nil {
				t.Fatal(err)
			}
			driftCfg := cfg
			driftCfg.SampleWeights = mix
			driftCfg.Parallelism = 1
			cold, err := MustNewAdvisor(env, driftCfg).TrainContext(ctx, goal)
			if err != nil {
				t.Fatal(err)
			}
			coldHash := contentHash(t, cold)
			for _, p := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				pcfg := driftCfg
				pcfg.Parallelism = p
				warm, err := MustNewAdvisor(env, pcfg).WarmTrainContext(ctx, goal, base)
				if err != nil {
					t.Fatal(err)
				}
				if got := contentHash(t, warm); got != coldHash {
					t.Fatalf("P=%d: warm retrain content hash %016x, cold %016x", p, got, coldHash)
				}
				if warm.Dump() != cold.Dump() {
					t.Fatalf("P=%d: warm and cold trees differ", p)
				}
				if warm.WarmSamples+warm.ColdSamples != cfg.NumSamples {
					t.Fatalf("P=%d: warm/cold split %d+%d != %d samples",
						p, warm.WarmSamples, warm.ColdSamples, cfg.NumSamples)
				}
				if !goal.Monotonic() && warm.WarmSamples != 0 {
					t.Fatalf("P=%d: non-monotonic goal replayed %d samples warm", p, warm.WarmSamples)
				}
			}
		})
	}
}

// Between two nearby weighted mixes — the shape of successive drift
// retrains — most per-query inverse-CDF draws are unchanged, so the warm
// path must actually replay samples, not just stay correct.
func TestWarmRetrainReplaysUnchangedSamples(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(4), cloud.DefaultVMTypes(2))
	goal := sla.NewMaxLatency(15*60e9, env.Templates, sla.DefaultPenaltyRate)
	cfg := warmTrainConfig()
	cfg.SampleWeights = []float64{0.4, 0.3, 0.2, 0.1}
	prior, err := MustNewAdvisor(env, cfg).Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	next := cfg
	next.SampleWeights = []float64{0.42, 0.28, 0.2, 0.1}
	warm, err := MustNewAdvisor(env, next).WarmTrainContext(context.Background(), goal, prior)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmSamples == 0 {
		t.Fatal("no samples replayed warm between adjacent mixes")
	}
	cold, err := MustNewAdvisor(env, next).Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	if contentHash(t, warm) != contentHash(t, cold) {
		t.Fatal("warm retrain with sample replay diverged from cold")
	}
	t.Logf("replayed %d/%d samples warm", warm.WarmSamples, cfg.NumSamples)
}

// The transposition cache must survive the checkpoint round trip intact —
// a warm-started registry retrains warm from the decoded snapshot — and a
// model loaded through an advisor (which re-binds it to the advisor's live
// environment) must stay warm-eligible.
func TestWarmCacheSurvivesCheckpoint(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(2))
	goal := sla.NewMaxLatency(15*60e9, env.Templates, sla.DefaultPenaltyRate)
	cfg := warmTrainConfig()
	adv := MustNewAdvisor(env, cfg)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	if m.searchCache == nil || m.searchCache.Len() == 0 {
		t.Fatal("trained model carries no search cache")
	}
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := decodeModel(data, env)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.searchCache == nil {
		t.Fatal("decoded model lost its search cache")
	}
	want := m.searchCache.Export(maxPersistedCacheEntries)
	got := loaded.searchCache.Export(maxPersistedCacheEntries)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cache snapshot changed across the round trip: %d entries in, %d out", len(want), len(got))
	}
	if !adv.warmEligible(goal, loaded) {
		t.Fatal("model loaded from a checkpoint is not warm-eligible")
	}
	warm, err := adv.WarmTrainContext(context.Background(), goal, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if contentHash(t, warm) != contentHash(t, m) {
		t.Fatal("warm retrain from the decoded model diverged")
	}
}

// Warm retrains racing hot swaps, concurrent stats reads, and each other:
// run with -race this pins that the warm path shares no mutable state with
// the serving epoch it warms from. (The registry admits one retrain at a
// time; rejected and suppressed triggers are part of the contract.)
func TestWarmRetrainDuringHotSwaps(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(2))
	goal := sla.NewMaxLatency(15*60e9, env.Templates, sla.DefaultPenaltyRate)
	cfg := warmTrainConfig()
	cfg.NumSamples = 16
	cfg.SampleSize = 5
	base, err := MustNewAdvisor(env, cfg).Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	r := NewModelRegistry(base)
	ctx := context.Background()

	// One deterministic success first, so counter assertions can't race a
	// fully suppressed hammer.
	if err := r.RetrainNow(ctx, []float64{0.6, 0.3, 0.1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(k)))
			for i := 0; i < 4; i++ {
				mix := []float64{0.2 + 0.6*rng.Float64(), 0.2, 0.2}
				total := mix[0] + mix[1] + mix[2]
				for j := range mix {
					mix[j] /= total
				}
				// In-flight and suppressed triggers are expected under
				// contention; real retrain failures are not.
				if err := r.RetrainNow(ctx, mix); err != nil &&
					err != errRetrainInFlight && err != errRetrainSuppressed {
					t.Error(err)
					return
				}
			}
		}(k)
	}
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Swap(base, nil)
				_ = r.Current().Model
				_ = r.Stats()
			}
		}()
	}
	wg.Wait()
	r.Wait()
	s := r.Stats()
	if s.Swaps == 0 || s.WarmSamples+s.ColdSamples == 0 {
		t.Fatalf("hammer recorded nothing: %+v", s)
	}
	if s.TotalRetrainMS < 0 || s.LastRetrainMS < 0 {
		t.Fatalf("negative retrain timing: %+v", s)
	}
}
