package core

import (
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// The serving path must stay allocation-light: at most one allocation per
// query amortized in steady state (the issue's acceptance bound; the
// remaining allocations are the returned Schedule itself). Guards against
// per-step feature vectors, state copies, or retag maps creeping back in.
func TestScheduleBatchAllocationsBounded(t *testing.T) {
	adv := smallAdvisor(t, 5, 2)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewSampler(adv.Env().Templates, 23).Uniform(40)
	// Warm the scratch pool, then measure steady state.
	for i := 0; i < 2; i++ {
		if _, err := m.ScheduleBatch(w); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := m.ScheduleBatch(w); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("%.0f allocs for %d queries (%.2f per query)", allocs, len(w.Queries), allocs/float64(len(w.Queries)))
	if allocs > float64(len(w.Queries)) {
		t.Errorf("%.0f allocations for a %d-query batch; want <= 1 per query (serving scratch regression?)", allocs, len(w.Queries))
	}
}

// A trained model must expose its compiled tree, and the compiled form must
// agree with the node tree on real serving feature vectors.
func TestModelCompilesAtTrainTime(t *testing.T) {
	adv := smallAdvisor(t, 3, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	compiled := m.CompiledTree()
	if compiled == nil {
		t.Fatal("trained model has no compiled tree")
	}
	if got, want := compiled.NumNodes(), m.Tree.NumNodes(); got != want {
		t.Fatalf("compiled tree has %d nodes, source tree %d", got, want)
	}
	adapted, err := m.Tighten(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if adapted.CompiledTree() == nil {
		t.Fatal("adapted model has no compiled tree")
	}
}

// SchedulingTime / PerArrival report advisor overhead only (§6.3, the
// Fig. 19 metric): simulator placement must run outside the timed window.
// The pin: by the time place starts for arrival i, PerArrival must already
// hold arrival i's measurement.
func TestOnlineTimingExcludesPlacement(t *testing.T) {
	adv := smallAdvisor(t, 3, 1)
	goal := sla.NewMaxLatency(15*time.Minute, adv.Env().Templates, sla.DefaultPenaltyRate)
	m, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOnlineScheduler(m, DefaultOnlineOptions())
	placeCalls := 0
	o.placeStarted = func(res *OnlineResult) {
		placeCalls++
		if got := len(res.PerArrival); got != placeCalls {
			t.Errorf("place for arrival %d started with %d PerArrival entries recorded; timing must close before placement", placeCalls, got)
		}
	}
	w := &workload.Workload{Templates: adv.Env().Templates, Queries: []workload.Query{
		{TemplateID: 0, Tag: 0, Arrival: 0},
		{TemplateID: 1, Tag: 1, Arrival: 30 * time.Second},
		{TemplateID: 2, Tag: 2, Arrival: 60 * time.Second},
	}}
	res, err := o.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if placeCalls != 3 || len(res.PerArrival) != 3 {
		t.Fatalf("3 arrivals: place ran %d times, %d PerArrival entries", placeCalls, len(res.PerArrival))
	}
	var sum time.Duration
	for _, d := range res.PerArrival {
		sum += d
	}
	if sum != res.SchedulingTime {
		t.Fatalf("SchedulingTime %s != sum of PerArrival %s", res.SchedulingTime, sum)
	}
}

// An unservable (template, VM type) pair during online placement is a bug
// upstream and must surface as an error, not a 1000-hour simulated query.
func TestOnlinePlaceRejectsUnservablePair(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(2), []cloud.VMType{
		{ID: 0, Name: "tiny", StartupCost: 0.08, RatePerHour: 2, SupportsHighRAM: false, HighRAMMultiplier: 1},
	})
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	m := &Model{Goal: goal, env: env, prob: runtimeProblem(env, goal)}
	o := NewOnlineScheduler(m, DefaultOnlineOptions())
	// Template 1 is high-RAM: "tiny" cannot run it. Hand place a schedule
	// that claims otherwise.
	s := o.NewStream(&SimClock{})
	s.ensureTag(7)
	s.tags[7] = tagState{template: 1}
	sched := &schedule.Schedule{VMs: []schedule.VM{
		{TypeID: 0, Queue: []schedule.Placed{{TemplateID: 1, Tag: 7}}},
	}}
	if err := s.place(0, sched); err == nil {
		t.Fatal("place accepted an unservable (template, VM type) pair")
	}
}
