package core

import (
	"context"
	"testing"
	"time"

	"wisedb/internal/workload"
)

// Regression tests flushed out by the scenario harness (trace-driven
// arrivals): the arrival queue's sorted-input fast path against ties, its
// copy path against genuinely out-of-order burst traces, the drift
// detector against periodic diurnal mixes, and MaxBacklog shedding plus
// admission-control accounting under flash-crowd bursts.

// The already-sorted fast path must serve ties in place: a non-decreasing
// trace with same-instant runs is NOT copied (10k tenant queues depend on
// that), and each tie group comes out as one batch event preserving
// submission order.
func TestArrivalQueueSortedTiesInPlace(t *testing.T) {
	queries := []workload.Query{
		{Tag: 0, Arrival: 0},
		{Tag: 1, Arrival: 10 * time.Second},
		{Tag: 2, Arrival: 10 * time.Second},
		{Tag: 3, Arrival: 10 * time.Second},
		{Tag: 4, Arrival: 25 * time.Second},
		{Tag: 5, Arrival: 25 * time.Second},
	}
	q := newArrivalQueue(queries)
	if &q.queries[0] != &queries[0] {
		t.Fatal("sorted input with ties was copied; the fast path must serve it in place")
	}
	wantBatches := [][]int{{0}, {1, 2, 3}, {4, 5}}
	wantTimes := []time.Duration{0, 10 * time.Second, 25 * time.Second}
	for i, want := range wantBatches {
		at, batch, ok := q.next()
		if !ok {
			t.Fatalf("queue drained after %d of %d events", i, len(wantBatches))
		}
		if at != wantTimes[i] {
			t.Fatalf("event %d at %s, want %s", i, at, wantTimes[i])
		}
		if len(batch) != len(want) {
			t.Fatalf("event %d batched %d queries, want %d", i, len(batch), len(want))
		}
		for j, tag := range want {
			if batch[j].Tag != tag {
				t.Fatalf("event %d position %d: tag %d, want %d (tie submission order lost)", i, j, batch[j].Tag, tag)
			}
		}
	}
	if _, _, ok := q.next(); ok {
		t.Fatal("queue yielded an event past the trace end")
	}
}

// An out-of-order trace — the flash-crowd shape, burst spikes appended
// after later base arrivals — must be copied (the caller's workload stays
// untouched), stably sorted, and served in time order with burst ties
// keeping their submission order.
func TestArrivalQueueUnsortedBurstTrace(t *testing.T) {
	// Base arrivals up to 5m, then a burst of three at 30s: inversions
	// AND ties, exactly what FlashCrowd generators emit.
	queries := []workload.Query{
		{Tag: 0, Arrival: 0},
		{Tag: 1, Arrival: 2 * time.Minute},
		{Tag: 2, Arrival: 5 * time.Minute},
		{Tag: 3, Arrival: 30 * time.Second},
		{Tag: 4, Arrival: 30 * time.Second},
		{Tag: 5, Arrival: 30 * time.Second},
	}
	orig := append([]workload.Query(nil), queries...)
	q := newArrivalQueue(queries)
	for i := range queries {
		if queries[i] != orig[i] {
			t.Fatal("newArrivalQueue reordered the caller's slice; unsorted input must be copied")
		}
	}
	var gotTags []int
	var gotTimes []time.Duration
	last := time.Duration(-1)
	for {
		at, batch, ok := q.next()
		if !ok {
			break
		}
		if at <= last {
			t.Fatalf("event at %s after event at %s; events must strictly advance", at, last)
		}
		last = at
		for _, query := range batch {
			gotTags = append(gotTags, query.Tag)
			gotTimes = append(gotTimes, at)
		}
	}
	wantTags := []int{0, 3, 4, 5, 1, 2}
	if len(gotTags) != len(wantTags) {
		t.Fatalf("served %d queries, want %d", len(gotTags), len(wantTags))
	}
	for i := range wantTags {
		if gotTags[i] != wantTags[i] {
			t.Fatalf("serve order %v, want %v (burst ties must keep submission order)", gotTags, wantTags)
		}
	}
}

// diurnalTrace builds a deterministic periodic mix over 4 templates: each
// period is half "day" (templates 0 and 1 alternating) and half "night"
// (templates 2 and 3). The time-averaged mix over any whole period is
// exactly uniform — the long-run workload never changes, only its phase.
func diurnalTrace(templates []workload.Template, periods, halfPeriod int, gap time.Duration) *workload.Workload {
	var queries []workload.Query
	tag := 0
	add := func(tpl int) {
		queries = append(queries, workload.Query{TemplateID: tpl, Tag: tag, Arrival: time.Duration(tag) * gap})
		tag++
	}
	for p := 0; p < periods; p++ {
		for i := 0; i < halfPeriod; i++ {
			add(i % 2) // day: templates {0, 1}
		}
		for i := 0; i < halfPeriod; i++ {
			add(2 + i%2) // night: templates {2, 3}
		}
	}
	return &workload.Workload{Templates: templates, Queries: queries}
}

// newDiurnalEngine builds an engine whose drift retrain is a stub epoch
// install (the storm being measured is trigger cadence, not training cost).
func newDiurnalEngine(base *Model, drift DriftOptions) *OnlineScheduler {
	opts := DefaultOnlineOptions()
	opts.Drift = drift
	opts.Drift.Synchronous = true
	o := NewOnlineScheduler(base, opts)
	o.Registry().SetRetrain(func(_ context.Context, cur *ModelEpoch, _ []float64) (*Model, error) {
		return cur.Model, nil
	})
	return o
}

// A periodic diurnal mix must NOT retrain every cycle. The first run pins
// the failure mode this satellite flushed out: with only the fast window,
// each phase flip looks like drift against the last phase's freshly
// installed mix, so the detector ping-pongs retrains forever — the
// long-run mix never changed. StableWindow spanning one period is the fix:
// the slow histogram holds the time average, which matches the baseline,
// and no cycle ever confirms.
func TestDiurnalMixDoesNotRetriggerDrift(t *testing.T) {
	base := onlineBase(t, 4, 1)
	const halfPeriod, periods = 32, 4
	w := diurnalTrace(base.Env().Templates, periods, halfPeriod, 7*time.Minute)

	// Unconfirmed fast window: the retrigger ping-pong, pinned so the
	// failure mode stays documented. Each phase flip retrains toward the
	// new phase's mix, which the next flip then drifts from.
	storm := newDiurnalEngine(base, DriftOptions{Window: 16})
	res, err := storm.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.DriftTriggers < periods {
		t.Fatalf("expected the unconfirmed detector to retrain every phase flip (>= %d over %d periods), got %d — if this improved, update the pin",
			periods, periods, res.DriftTriggers)
	}

	// StableWindow = one full period: the slow histogram averages the
	// cycle out and the stream never retrains.
	calm := newDiurnalEngine(base, DriftOptions{Window: 16, StableWindow: 2 * halfPeriod})
	res, err = calm.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.DriftTriggers != 0 {
		t.Fatalf("diurnal mix with StableWindow spanning the period retrained %d times; want 0", res.DriftTriggers)
	}
	if res.FinalEpoch != 0 {
		t.Fatalf("diurnal mix installed epoch %d; the serving model must not churn on a periodic mix", res.FinalEpoch)
	}
}

// StableWindow must not blind the detector to genuine drift: a sustained
// mix shift fills the slow histogram too and still triggers (with
// detection latency stretched toward the stable window, the documented
// price of periodicity immunity).
func TestStableWindowStillCatchesSustainedShift(t *testing.T) {
	base := onlineBase(t, 4, 1)
	templates := base.Env().Templates
	var queries []workload.Query
	for i := 0; i < 64; i++ { // uniform warmup: matches the training mix
		queries = append(queries, workload.Query{TemplateID: i % 4, Tag: i, Arrival: time.Duration(i) * 7 * time.Minute})
	}
	for i := 64; i < 256; i++ { // sustained shift onto templates {2, 3}
		queries = append(queries, workload.Query{TemplateID: 2 + i%2, Tag: i, Arrival: time.Duration(i) * 7 * time.Minute})
	}
	w := &workload.Workload{Templates: templates, Queries: queries}
	o := newDiurnalEngine(base, DriftOptions{Window: 16, StableWindow: 64})
	res, err := o.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.DriftTriggers == 0 {
		t.Fatal("sustained shift never triggered with StableWindow armed; confirmation must delay detection, not disable it")
	}
}

// flashCrowdTrace builds repeated same-instant bursts: burst b of size
// burstSize lands at b*every, with templates round-robin.
func flashCrowdTrace(templates []workload.Template, bursts, burstSize int, every time.Duration) *workload.Workload {
	k := len(templates)
	var queries []workload.Query
	tag := 0
	for b := 0; b < bursts; b++ {
		for i := 0; i < burstSize; i++ {
			queries = append(queries, workload.Query{TemplateID: tag % k, Tag: tag, Arrival: time.Duration(b) * every})
			tag++
		}
	}
	return &workload.Workload{Templates: templates, Queries: queries}
}

// Flash-crowd bursts against MaxBacklog shedding: shed counts are a pure
// function of the trace (identical across reruns and across tenants
// running the same trace through the sharded engine), sheds only ever hit
// newly arrived queries, and every admitted arrival completes exactly
// once. This is the degraded-path analogue of the scenario suite's
// healthy-path exactly-once pin.
func TestFlashCrowdShedDeterministic(t *testing.T) {
	base := degradedBase(t, 4, 1)
	// Burst 1 takes the fresh model path; burst 2's revoked backlog has
	// waited, the shift path fails (no retained training data), and the
	// stream degrades; bursts 3+ shed above MaxBacklog.
	w := flashCrowdTrace(base.Env().Templates, 5, 10, 30*time.Second)
	n := len(w.Queries)

	run := func() *OnlineResult {
		opts := DefaultOnlineOptions()
		opts.Degrade = true
		opts.MaxBacklog = 4
		o := NewOnlineScheduler(base, opts)
		res, err := o.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	if first.ShedArrivals == 0 {
		t.Fatal("flash-crowd bursts above MaxBacklog 4 must shed")
	}
	if first.DegradedArrivals == 0 {
		t.Fatal("the failing shift path must degrade the stream")
	}
	for rerun := 0; rerun < 2; rerun++ {
		again := run()
		if a, b := onlineResultFingerprint(first), onlineResultFingerprint(again); a != b {
			t.Fatalf("rerun %d diverged:\nfirst: %s\nagain: %s", rerun, a, b)
		}
	}

	// Exactly-once under shedding: completions + sheds account for every
	// generated query, with no tag finishing twice.
	if got, want := len(first.Outcomes), n-first.ShedArrivals; got != want {
		t.Fatalf("%d completions, want %d (%d generated - %d shed)", got, want, n, first.ShedArrivals)
	}
	seen := make([]bool, n)
	for _, out := range first.Outcomes {
		if seen[out.Tag] {
			t.Fatalf("tag %d completed twice", out.Tag)
		}
		seen[out.Tag] = true
	}

	// Two tenants replaying the identical trace through the sharded
	// engine shed identically — per-tenant shed counts are deterministic
	// at any placement.
	opts := DefaultOnlineOptions()
	opts.Degrade = true
	opts.MaxBacklog = 4
	opts.Shards = 4
	o := NewOnlineScheduler(base, opts)
	tenants := []Tenant{
		{ID: HashTenantID("crowd-a"), Workload: w},
		{ID: HashTenantID("crowd-b"), Workload: w},
	}
	results, err := o.RunTenants(context.Background(), tenants)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if a, b := onlineResultFingerprint(res), onlineResultFingerprint(first); a != b {
			t.Errorf("tenant %d diverged from the single-stream run:\ntenant: %s\nsingle: %s", i, a, b)
		}
	}
	if ss := o.ScaleStats(); ss.ShedArrivals != 2*int64(first.ShedArrivals) {
		t.Fatalf("engine ledger %d != 2 x %d per-tenant sheds", ss.ShedArrivals, first.ShedArrivals)
	}
}

// Socket-level admission (the daemon's token bucket calling Stream.Shed)
// and the engine's internal MaxBacklog shedding land in one ledger: a
// deterministic fixed-budget admission driver replaying a flash crowd must
// account for every query as completed-exactly-once or shed, with the
// stream counter and the engine aggregate agreeing.
func TestAdmissionShedSingleLedger(t *testing.T) {
	base := onlineBase(t, 4, 1)
	w := flashCrowdTrace(base.Env().Templates, 4, 6, 7*time.Minute)
	o := NewOnlineScheduler(base, DefaultOnlineOptions())
	clk := &SimClock{}
	s := o.NewStream(clk)
	ctx := context.Background()

	// Fixed admission budget per burst instant — the token bucket's
	// rate/burst behavior under simulated time: 4 tokens per event.
	const budget = 4
	admitted := 0
	q := newArrivalQueue(w.Queries)
	for {
		at, batch, ok := q.next()
		if !ok {
			break
		}
		clk.Advance(at)
		take := len(batch)
		if take > budget {
			s.Shed(take - budget)
			take = budget
		}
		if err := s.Submit(ctx, batch[:take]...); err != nil {
			t.Fatal(err)
		}
		admitted += take
	}
	res := s.Finish()
	wantShed := len(w.Queries) - admitted
	if res.ShedArrivals != wantShed {
		t.Fatalf("stream ledger %d shed, want %d", res.ShedArrivals, wantShed)
	}
	if len(res.Outcomes) != admitted {
		t.Fatalf("%d completions, want %d admitted", len(res.Outcomes), admitted)
	}
	seen := map[int]bool{}
	for _, out := range res.Outcomes {
		if seen[out.Tag] {
			t.Fatalf("tag %d completed twice", out.Tag)
		}
		seen[out.Tag] = true
	}
	if ss := o.ScaleStats(); ss.ShedArrivals != int64(wantShed) {
		t.Fatalf("engine ledger %d != %d stream sheds", ss.ShedArrivals, wantShed)
	}
	s.Close()
}
