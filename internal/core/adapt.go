package core

import (
	"context"
	"fmt"
	"time"

	"wisedb/internal/dt"
	"wisedb/internal/features"
	"wisedb/internal/graph"
	"wisedb/internal/search"
	"wisedb/internal/sla"
)

// Adapt re-trains the model for a stricter goal with minimal work (§5):
// instead of sampling and searching from scratch, it re-solves the model's
// retained sample workloads on the same scheduling graphs with updated edge
// weights, using the adaptive-A* heuristic h'(v) = max(h(v), C* − g_old(v))
// built from each sample's previous search (Lemma 5.1 proves h' admissible
// when the new goal is stricter and the goal is monotonic; for Average and
// Percentile goals the search ignores the reuse information and re-solves
// exactly, so adaptation stays correct but gains no heuristic speedup). The
// model must have been trained with KeepTrainingData. The re-searches run
// on the same worker pool as Train (TrainingConfig.Parallelism) and the
// result is identical for any worker count.
//
// The returned model itself retains training data, so a chain of
// progressively stricter goals — as built by strategy recommendation — can
// adapt step by step.
func (m *Model) Adapt(goal sla.Goal) (*Model, error) {
	return m.AdaptContext(context.Background(), goal)
}

// AdaptContext is Adapt with cancellation.
func (m *Model) AdaptContext(ctx context.Context, goal sla.Goal) (*Model, error) {
	return m.adapt(ctx, goal, true)
}

// adapt implements Adapt; keep controls whether the new model retains its
// own training data (needed to adapt it further, skipped by one-shot
// shifts).
func (m *Model) adapt(ctx context.Context, goal sla.Goal, keep bool) (*Model, error) {
	if len(m.samples) == 0 {
		return nil, fmt.Errorf("core: Adapt requires a model trained with KeepTrainingData")
	}
	start := time.Now()
	prob := graph.NewProblem(m.env, goal)
	prob.NoSymmetryBreaking = true // as in Train: faster at sample sizes
	searcher, err := search.New(prob)
	if err != nil {
		return nil, fmt.Errorf("core: adapt: %w", err)
	}

	// Like Train, adaptation shares a per-call transposition cache across
	// its worker pool: the new goal changes every suffix optimum, so the
	// cache never outlives the call.
	var cache *search.TranspositionCache
	if !m.TrainingConfig.DisableSearchCache && goal.Monotonic() {
		cache = search.NewTranspositionCache()
	}
	solutions := make([]*search.Result, len(m.samples))
	err = solveSamples(ctx, m.TrainingConfig.Parallelism, len(m.samples), cache,
		func(i int, cache *search.TranspositionCache, rec *search.PendingSuffixes) error {
			s := m.samples[i]
			res, err := searcher.Solve(s.w, search.Options{Reuse: s.reuse, KeepClosed: keep, Cache: cache, Record: rec})
			if err != nil {
				return fmt.Errorf("core: adapt sample %d: %w", i, err)
			}
			solutions[i] = res
			return nil
		})
	if err != nil {
		return nil, err
	}

	numLabels := len(m.env.Templates) + len(m.env.VMTypes)
	ds := &dt.Dataset{FeatureNames: features.Names(len(m.env.Templates)), NumLabels: numLabels}
	fs := features.NewState(prob)
	var samples []trainSample
	cacheHits, cacheMisses := 0, 0
	for i, res := range solutions {
		addPathToDataset(ds, fs, res.Path)
		cacheHits += res.CacheHits
		cacheMisses += res.CacheMisses
		if keep {
			samples = append(samples, trainSample{w: m.samples[i].w, reuse: search.ReuseFrom(res)})
		}
	}
	tree := dt.Train(ds, m.TrainingConfig.Tree)
	adapted := &Model{
		Goal:              goal,
		Tree:              tree,
		TrainingTime:      time.Since(start),
		TrainingRows:      ds.Len(),
		TrainingConfig:    m.TrainingConfig,
		TrainingCacheHits: cacheHits, TrainingCacheMisses: cacheMisses,
		// Adaptation re-solves every retained sample (the goal changed, so no
		// prior solution is reusable as-is); the §5 heuristic reuse is an
		// accelerant, not a replay, hence all samples count as cold.
		ColdSamples: len(m.samples),
		env:         m.env,
		prob:        runtimeProblem(m.env, goal),
		samples:     samples,
		searchCache: cache,
		// Adaptation re-solves the same sample workloads, so the adapted
		// model serves the same arrival mix.
		trainingMix: m.trainingMix,
	}
	adapted.servingTables() // compile the serving form at adapt time
	return adapted, nil
}

// Tighten adapts the model to its own goal tightened by fraction p (§7.3's
// tightening formula).
func (m *Model) Tighten(p float64) (*Model, error) {
	if p < 0 {
		return nil, fmt.Errorf("core: Tighten(p=%g): adaptive re-training requires a stricter goal; train a fresh model for looser ones", p)
	}
	return m.Adapt(m.Goal.Tighten(p))
}

// ShiftedModel adapts the model to its goal linearly shifted by wait d
// (§6.3's linear-shifting optimization, valid for shiftable goals only:
// scheduling queries that have waited d equals scheduling fresh queries
// under a goal tightened by d).
func (m *Model) ShiftedModel(d time.Duration) (*Model, error) {
	return m.ShiftedModelContext(context.Background(), d)
}

// ShiftedModelContext is ShiftedModel with cancellation: online streams
// thread their run context through model acquisition so a cancelled stream
// does not leave an adaptation running.
func (m *Model) ShiftedModelContext(ctx context.Context, d time.Duration) (*Model, error) {
	if !m.Goal.Shiftable() {
		return nil, fmt.Errorf("core: goal %s is not linearly shiftable", m.Goal.Name())
	}
	if d == 0 {
		return m, nil
	}
	return m.adapt(ctx, m.Goal.Shift(d), false)
}
