package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/features"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/store"
	"wisedb/internal/workload"
)

// persistGoals builds one goal per SLA family for a template set.
func persistGoals(templates []workload.Template) map[string]sla.Goal {
	return map[string]sla.Goal{
		"max":        sla.NewMaxLatency(15*time.Minute, templates, sla.DefaultPenaltyRate),
		"perquery":   sla.NewPerQuery(3, templates, sla.DefaultPenaltyRate),
		"average":    sla.NewAverage(10*time.Minute, templates, sla.DefaultPenaltyRate),
		"percentile": sla.NewPercentile(90, 10*time.Minute, templates, sla.DefaultPenaltyRate),
	}
}

// scheduleFingerprint renders the decision-relevant content of a schedule.
func scheduleFingerprint(s *schedule.Schedule) string {
	var b bytes.Buffer
	for _, vm := range s.VMs {
		fmt.Fprintf(&b, "vm%d:", vm.TypeID)
		for _, q := range vm.Queue {
			fmt.Fprintf(&b, " %d/%d", q.TemplateID, q.Tag)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Load(Save(m)) must be bit-identical for every SLA goal family: identical
// re-encoding, identical tree dump, identical compiled-tree predictions on
// 10k random feature vectors, and identical batch schedules — with loads
// and scheduling running concurrently (the test runs under -race in CI).
// For shiftable goals the round trip also pins the retained training data:
// a model shifted after loading must equal a model shifted before saving.
func TestModelRoundTripAllGoalFamilies(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(5), cloud.DefaultVMTypes(2))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 40
	cfg.SampleSize = 5
	cfg.Seed = 17
	adv := MustNewAdvisor(env, cfg)

	for name, goal := range persistGoals(env.Templates) {
		t.Run(name, func(t *testing.T) {
			m, err := adv.Train(goal)
			if err != nil {
				t.Fatal(err)
			}
			data, err := EncodeModel(m)
			if err != nil {
				t.Fatal(err)
			}

			// Concurrent loads: every goroutine decodes its own copy and
			// schedules against it while the others do the same.
			const loaders = 4
			loaded := make([]*Model, loaders)
			var wg sync.WaitGroup
			for i := 0; i < loaders; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					lm, err := DecodeModel(data)
					if err != nil {
						t.Errorf("loader %d: %v", i, err)
						return
					}
					w := workload.NewSampler(lm.Env().Templates, int64(100+i)).Uniform(30)
					if _, err := lm.ScheduleBatch(w); err != nil {
						t.Errorf("loader %d: %v", i, err)
					}
					loaded[i] = lm
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			lm := loaded[0]

			// Re-encoding the loaded model reproduces the bytes exactly.
			data2, err := EncodeModel(lm)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatal("encode(load(encode(m))) differs from encode(m)")
			}
			if got, want := lm.Dump(), m.Dump(); got != want {
				t.Fatalf("tree dump differs after round trip:\n%s\nvs\n%s", got, want)
			}

			// Compiled-tree predictions on 10k random feature vectors.
			rng := rand.New(rand.NewSource(99))
			dims := features.VectorLen(len(env.Templates))
			x := make([]float64, dims)
			for i := 0; i < 10000; i++ {
				for j := range x {
					x[j] = rng.Float64() * 20
				}
				if lm.CompiledTree().Predict(x) != m.CompiledTree().Predict(x) {
					t.Fatalf("compiled predictions diverge on vector %d", i)
				}
			}

			// Batch schedules are identical on random workloads.
			for trial := 0; trial < 5; trial++ {
				w := workload.NewSampler(env.Templates, int64(trial)*7).Uniform(40)
				s1, err1 := m.ScheduleBatch(w)
				s2, err2 := lm.ScheduleBatch(w)
				if err1 != nil || err2 != nil {
					t.Fatalf("ScheduleBatch: %v, %v", err1, err2)
				}
				if scheduleFingerprint(s1) != scheduleFingerprint(s2) {
					t.Fatalf("trial %d: schedules diverge after round trip", trial)
				}
			}

			// Shiftable goals: adaptation from persisted training data is
			// bit-identical to adaptation from live training data.
			if goal.Shiftable() {
				s1, err1 := m.ShiftedModel(30 * time.Second)
				s2, err2 := lm.ShiftedModel(30 * time.Second)
				if err1 != nil || err2 != nil {
					t.Fatalf("ShiftedModel: %v, %v", err1, err2)
				}
				if s1.Dump() != s2.Dump() {
					t.Fatal("shifted models diverge: persisted training data is not faithful")
				}
			}
		})
	}
}

// Advisor.LoadModel must bind a matching model to the advisor's own live
// environment (pointer-identical Env), and leave a foreign model on its
// reconstructed one.
func TestAdvisorLoadModelRebindsEnv(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(4), cloud.DefaultVMTypes(1))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 30
	cfg.SampleSize = 5
	adv := MustNewAdvisor(env, cfg)
	m, err := adv.Train(sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.wsdb"
	if err := adv.SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	lm, err := adv.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Env() != env {
		t.Fatal("LoadModel did not rebind a matching model to the advisor's environment")
	}

	// A different environment (one fewer template) must not adopt it.
	otherEnv := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(1))
	otherAdv := MustNewAdvisor(otherEnv, cfg)
	lm2, err := otherAdv.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if lm2.Env() == otherEnv {
		t.Fatal("LoadModel bound a model to a mismatched environment")
	}
	if got, want := len(lm2.Env().Templates), 4; got != want {
		t.Fatalf("reconstructed environment has %d templates, want %d", got, want)
	}
}

// A model trained against a custom (non-table) predictor must round-trip
// through the persisted latency matrix: the loaded model schedules
// identically even though the predictor itself cannot be serialized.
func TestModelRoundTripCustomPredictor(t *testing.T) {
	templates := workload.DefaultTemplates(4)
	vmTypes := cloud.DefaultVMTypes(2)
	env := &schedule.Env{
		Templates: templates,
		VMTypes:   vmTypes,
		Pred:      cloud.NewNoisyPredictor(cloud.TablePredictor{}, 0.2, 7),
	}
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 30
	cfg.SampleSize = 5
	m, err := MustNewAdvisor(env, cfg).Train(sla.NewMaxLatency(15*time.Minute, templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := DecodeModel(data)
	if err != nil {
		t.Fatal(err)
	}
	// The reconstructed environment replays the noisy matrix exactly.
	for ti := range templates {
		for vi := range vmTypes {
			l1, ok1 := m.Env().Latency(ti, vi)
			l2, ok2 := lm.Env().Latency(ti, vi)
			if ok1 != ok2 || l1 != l2 {
				t.Fatalf("latency (%d,%d) diverges: (%v,%v) vs (%v,%v)", ti, vi, l1, ok1, l2, ok2)
			}
		}
	}
	w := workload.NewSampler(templates, 5).Uniform(30)
	s1, _ := m.ScheduleBatch(w)
	s2, _ := lm.ScheduleBatch(w)
	if scheduleFingerprint(s1) != scheduleFingerprint(s2) {
		t.Fatal("schedules diverge for a custom-predictor model")
	}
}

// Corrupting an encoded model anywhere must yield a typed store error —
// never a panic, never a silently wrong model.
func TestDecodeModelTypedErrors(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(1))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 20
	cfg.SampleSize = 4
	m, err := MustNewAdvisor(env, cfg).Train(sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}

	typed := func(err error) bool {
		return errors.Is(err, store.ErrBadMagic) || errors.Is(err, store.ErrVersion) ||
			errors.Is(err, store.ErrTruncated) || errors.Is(err, store.ErrCRC) ||
			errors.Is(err, store.ErrCorrupt)
	}

	if _, err := DecodeModel([]byte("not a model")); !errors.Is(err, store.ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	for _, n := range []int{0, 3, 11, 12, 40, len(data) / 2, len(data) - 1} {
		if _, err := DecodeModel(data[:n]); err == nil || !typed(err) {
			t.Fatalf("truncation to %d bytes: got %v", n, err)
		}
	}
	// Flip one byte at a sample of positions; every damage must surface
	// as a typed error or decode to a model that re-encodes differently
	// (CRC catches payload damage; the content hash catches table-level
	// recombination).
	for pos := 0; pos < len(data); pos += 97 {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x55
		lm, err := DecodeModel(bad)
		if err != nil {
			if !typed(err) {
				t.Fatalf("flip at %d: untyped error %v", pos, err)
			}
			continue
		}
		if _, err := EncodeModel(lm); err != nil {
			t.Fatalf("flip at %d: decoded model cannot re-encode: %v", pos, err)
		}
	}
}

// Splicing one model's training-data section into another's container —
// every section individually CRC-intact — must fail the content-hash
// check: a foreign closed set would silently change post-restart Shift
// results.
func TestDecodeModelRejectsSplicedTrainData(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(1))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 20
	cfg.SampleSize = 4
	adv := MustNewAdvisor(env, cfg)
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	mA, err := adv.Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	cfgB := cfg
	cfgB.Seed = 99
	mB, err := MustNewAdvisor(env, cfgB).Train(goal)
	if err != nil {
		t.Fatal(err)
	}
	dataA, _ := EncodeModel(mA)
	dataB, _ := EncodeModel(mB)
	cA, _ := store.ParseContainer(dataA)
	cB, _ := store.ParseContainer(dataB)
	trainB, _ := cB.MustSection(secTrain)
	var spliced store.Builder
	for _, s := range cA.Sections() {
		p := trainB
		if s.ID != secTrain {
			p, _ = cA.MustSection(s.ID)
		}
		spliced.AddSection(s.ID, p)
	}
	if _, err := DecodeModel(spliced.Bytes()); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("spliced traindata section must fail the content hash, got %v", err)
	}
}

// Models that cannot round-trip must refuse to encode rather than persist
// a lie.
func TestEncodeModelRejectsUnsupported(t *testing.T) {
	if _, err := EncodeModel(nil); err == nil {
		t.Fatal("nil model must not encode")
	}
	if _, err := EncodeModel(&Model{}); err == nil {
		t.Fatal("environment-less model must not encode")
	}
}
