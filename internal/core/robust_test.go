package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/store"
	"wisedb/internal/workload"
)

// degradedBase trains a base model WITHOUT retained training data: with
// Shift enabled, any batch holding waited queries fails model acquisition
// ("Adapt requires a model trained with KeepTrainingData"), which is the
// deterministic model-unusable fault the degradation tests ride on.
func degradedBase(t testing.TB, numTemplates, numTypes int) *Model {
	t.Helper()
	env := schedule.NewEnv(workload.DefaultTemplates(numTemplates), cloud.DefaultVMTypes(numTypes))
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 100
	cfg.SampleSize = 7
	cfg.Seed = 9
	cfg.KeepTrainingData = false
	m, err := MustNewAdvisor(env, cfg).Train(sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A permanently failing RetrainFunc must not storm: every trigger attempt
// rebaselines the detector window (so re-triggers are paced by the window's
// fill time), backoff suppresses triggers between failures, and the breaker
// eventually rejects them outright. The regression this pins: the old code
// kept the window hot after a failure, so drift re-fired on every single
// subsequent arrival.
func TestFailedRetrainDoesNotStorm(t *testing.T) {
	base := onlineBase(t, 4, 1)
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: 16, Threshold: 0.8, Synchronous: true}
	o := NewOnlineScheduler(base, opts)
	boom := errors.New("retrain permanently broken")
	o.Registry().SetRetrain(func(context.Context, *ModelEpoch, []float64) (*Model, error) {
		return nil, boom
	})
	const uniform, skewed = 32, 400
	w := shiftedStream(base.Env().Templates, uniform, skewed, 7*time.Minute)
	res, err := o.Run(w)
	if err != nil {
		t.Fatalf("a failing retrain path must not fail the stream: %v", err)
	}
	if got := len(res.Perf); got != uniform+skewed {
		t.Fatalf("%d of %d arrivals completed", got, uniform+skewed)
	}
	// 400 skewed arrivals with a 16-arrival window allow at most 25 trigger
	// attempts; backoff and the breaker swallow most of those. Without the
	// rebaseline fix the skewed run re-triggers on every arrival (~400).
	attempts := res.DriftFailures + res.DriftSuppressed
	if attempts == 0 {
		t.Fatal("the drifted stream never attempted a retrain")
	}
	if attempts > 30 {
		t.Fatalf("retrigger storm: %d trigger attempts (%d failures, %d suppressed)",
			attempts, res.DriftFailures, res.DriftSuppressed)
	}
	stats := o.Registry().Stats()
	if stats.Failures > 6 {
		t.Fatalf("%d retrains actually ran against a permanently failing path; backoff/breaker must bound this", stats.Failures)
	}
	if stats.Epoch != 0 || stats.Swaps != 0 {
		t.Fatalf("no swap can come from a failing retrain, got %+v", stats)
	}
	rb := stats.Robustness
	if rb.Breaker != "open" || rb.BreakerOpens == 0 {
		t.Fatalf("the breaker must be open after sustained failures, got %+v", rb)
	}
	if rb.BackoffSuppressed == 0 {
		t.Fatalf("backoff never suppressed a trigger, got %+v", rb)
	}
}

// A tripped breaker must recover through a half-open probe: cooldown
// triggers are rejected, the probe runs, and its success closes the breaker
// and swaps the model in.
func TestBreakerRecoversThroughProbe(t *testing.T) {
	base := onlineBase(t, 4, 1)
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: 16, Threshold: 0.8, Synchronous: true}
	opts.Retry = RetryPolicy{BackoffBase: -1, BreakerThreshold: 2, BreakerCooldown: 2}
	o := NewOnlineScheduler(base, opts)
	var calls atomic.Int64
	o.Registry().SetRetrain(func(ctx context.Context, cur *ModelEpoch, mix []float64) (*Model, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("injected retrain failure")
		}
		return DriftRetrain(ctx, cur, mix)
	})
	// Enough skewed arrivals for 5+ trigger attempts at a 16-arrival
	// window: fail, fail (breaker opens), 2 rejected, probe succeeds.
	w := shiftedStream(base.Env().Templates, 32, 120, 7*time.Minute)
	res, err := o.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	stats := o.Registry().Stats()
	rb := stats.Robustness
	if rb.Breaker != "closed" || rb.BreakerOpens != 1 || rb.BreakerCloses != 1 {
		t.Fatalf("want breaker closed after 1 open/1 close, got %+v", rb)
	}
	if rb.BreakerRejected != 2 {
		t.Fatalf("want exactly the cooldown's 2 rejected triggers, got %+v", rb)
	}
	if stats.Swaps != 1 || stats.Epoch != 1 || res.FinalEpoch != 1 {
		t.Fatalf("the successful probe must have swapped epoch 1 in, got %+v (stream epoch %d)", stats, res.FinalEpoch)
	}
	if res.DriftFailures != 2 {
		t.Fatalf("want the 2 injected failures on the stream, got %d", res.DriftFailures)
	}
}

// A transient checkpoint fault must be retried off the arrival path until
// the commit lands; the retry is visible in RobustnessStats.
func TestCheckpointRetryCommitsOnTransientFault(t *testing.T) {
	base := onlineBase(t, 3, 1)
	r := NewModelRegistry(base)
	r.SetRetryPolicy(RetryPolicy{CheckpointAttempts: 3, CheckpointBackoff: time.Millisecond})
	ms, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	var failures atomic.Int64
	failures.Store(1) // fail exactly the first payload write after attach
	ms.SetPayloadWriter(func(path string, data []byte) error {
		if failures.Add(-1) >= 0 {
			return errors.New("injected transient write fault")
		}
		return store.WriteFileAtomic(path, data)
	})
	r.Swap(base, nil)
	r.Wait()
	stats := r.Stats()
	if stats.Checkpoints != 2 || stats.CheckpointFailures != 0 {
		t.Fatalf("want 2 committed checkpoints and 0 failures after retry, got %+v", stats)
	}
	if stats.Robustness.CheckpointRetries != 1 {
		t.Fatalf("want exactly 1 checkpoint retry, got %+v", stats.Robustness)
	}
	if latest, ok := ms.LatestEpoch(); !ok || latest != 1 {
		t.Fatalf("store's newest epoch = %d (%v), want 1", latest, ok)
	}
}

// A permanent checkpoint fault must exhaust the bounded retries, record one
// failure, and leave serving untouched.
func TestCheckpointPermanentFaultBounded(t *testing.T) {
	base := onlineBase(t, 3, 1)
	r := NewModelRegistry(base)
	r.SetRetryPolicy(RetryPolicy{CheckpointAttempts: 3, CheckpointBackoff: time.Millisecond})
	ms, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	ms.SetPayloadWriter(func(string, []byte) error { return boom })
	r.Swap(base, nil)
	r.Wait()
	stats := r.Stats()
	if stats.Checkpoints != 1 || stats.CheckpointFailures != 1 {
		t.Fatalf("want 1 checkpoint (base) and 1 bounded failure, got %+v", stats)
	}
	if stats.Robustness.CheckpointRetries != 2 {
		t.Fatalf("3 attempts = 2 retries, got %+v", stats.Robustness)
	}
	if !errors.Is(stats.LastCheckpointErr, boom) {
		t.Fatalf("LastCheckpointErr = %v, want the injected fault", stats.LastCheckpointErr)
	}
	if r.Current().Epoch != 1 {
		t.Fatalf("serving must be undisturbed at epoch 1, got %d", r.Current().Epoch)
	}
	if latest, ok := ms.LatestEpoch(); !ok || latest != 0 {
		t.Fatalf("store must keep its last good epoch 0, got %d (%v)", latest, ok)
	}
}

// When the epoch's model is unusable (here: the shift path needs training
// data the model does not retain), a Degrade-enabled stream falls back to
// first-fit heuristic scheduling and completes every arrival; with Degrade
// off the same fault fails the stream, as before.
func TestDegradedFallbackKeepsServing(t *testing.T) {
	base := degradedBase(t, 4, 1)
	w := tenantWorkloads(base.Env().Templates, 1, 24, 10*time.Second, 3)[0]

	strict := NewOnlineScheduler(base, DefaultOnlineOptions())
	if _, err := strict.Run(w); err == nil {
		t.Fatal("without Degrade, the unusable shift path must fail the stream")
	}

	opts := DefaultOnlineOptions()
	opts.Degrade = true
	o := NewOnlineScheduler(base, opts)
	res, err := o.Run(w)
	if err != nil {
		t.Fatalf("degraded stream failed: %v", err)
	}
	if len(res.Perf) != 24 {
		t.Fatalf("%d of 24 arrivals completed through degradation", len(res.Perf))
	}
	if res.DegradedArrivals == 0 {
		t.Fatal("the fallback path never engaged")
	}
	seen := make([]bool, 24)
	for _, out := range res.Outcomes {
		if seen[out.Tag] {
			t.Fatalf("tag %d completed twice through the degraded path", out.Tag)
		}
		seen[out.Tag] = true
	}
	ss := o.ScaleStats()
	if ss.DegradedArrivals != int64(res.DegradedArrivals) {
		t.Fatalf("engine aggregate %d != stream %d degraded arrivals", ss.DegradedArrivals, res.DegradedArrivals)
	}
}

// A degraded stream recovers to the model path when a new epoch installs:
// degraded mode is sticky per epoch, not forever.
func TestDegradedModeClearsOnNewEpoch(t *testing.T) {
	bad := degradedBase(t, 4, 1)
	good := onlineBase(t, 4, 1)
	opts := DefaultOnlineOptions()
	opts.Degrade = true
	o := NewOnlineScheduler(bad, opts)
	clk := &SimClock{}
	s := o.NewStream(clk)
	ctx := context.Background()
	submit := func(at time.Duration, tag, tpl int) {
		t.Helper()
		clk.Advance(at)
		if err := s.Submit(ctx, workload.Query{TemplateID: tpl, Tag: tag}); err != nil {
			t.Fatalf("tag %d: %v", tag, err)
		}
	}
	// Two quick arrivals leave an unstarted query behind; the third event
	// re-schedules it with a wait, the shift path fails, the stream degrades.
	submit(0, 0, 0)
	submit(time.Second, 1, 1)
	submit(10*time.Second, 2, 2)
	if s.res.DegradedArrivals == 0 {
		t.Fatal("stream did not degrade on the unusable shift path")
	}
	// A good epoch installs: the next waited batch must use the model path.
	o.Registry().Swap(good, nil)
	before := s.res.DegradedArrivals
	submit(20*time.Second, 3, 3)
	submit(30*time.Second, 4, 0)
	if s.res.DegradedArrivals != before {
		t.Fatalf("stream stayed degraded after a good epoch installed (%d -> %d degraded arrivals)",
			before, s.res.DegradedArrivals)
	}
	if s.res.Adaptations == 0 {
		t.Fatal("post-swap waited batch never used the shift path")
	}
	res := s.Finish()
	if len(res.Perf) != 5 {
		t.Fatalf("%d of 5 arrivals completed across degrade/recover", len(res.Perf))
	}
}

// While degraded, arrivals beyond MaxBacklog are shed admission-control
// style: only newly arrived queries are dropped (work admitted once always
// completes), every non-shed arrival completes exactly once, and the shed
// count is visible on stream and engine.
func TestDegradedShedsAboveBacklog(t *testing.T) {
	base := degradedBase(t, 4, 1)
	opts := DefaultOnlineOptions()
	opts.Degrade = true
	opts.MaxBacklog = 4
	o := NewOnlineScheduler(base, opts)

	// Burst arrivals: 12 at t=0 (fresh, model path OK), 10 at t=30s (the
	// revoked backlog has waited -> degrade; shedding is not yet active at
	// the moment of admission), 10 at t=60s (degraded now: shed above 4).
	k := len(base.Env().Templates)
	var queries []workload.Query
	tag := 0
	addBurst := func(n int, at time.Duration) {
		for i := 0; i < n; i++ {
			queries = append(queries, workload.Query{TemplateID: tag % k, Tag: tag, Arrival: at})
			tag++
		}
	}
	addBurst(12, 0)
	addBurst(10, 30*time.Second)
	addBurst(10, 60*time.Second)
	w := &workload.Workload{Templates: base.Env().Templates, Queries: queries}

	res, err := o.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShedArrivals == 0 {
		t.Fatal("the third burst must shed above MaxBacklog 4")
	}
	if res.ShedArrivals > 10 {
		t.Fatalf("only newly arrived queries are sheddable, got %d > 10", res.ShedArrivals)
	}
	if got, want := len(res.Outcomes), 32-res.ShedArrivals; got != want {
		t.Fatalf("%d completions, want %d (32 admitted - %d shed)", got, want, res.ShedArrivals)
	}
	seen := map[int]bool{}
	for _, out := range res.Outcomes {
		if seen[out.Tag] {
			t.Fatalf("tag %d completed twice", out.Tag)
		}
		seen[out.Tag] = true
	}
	if ss := o.ScaleStats(); ss.ShedArrivals != int64(res.ShedArrivals) {
		t.Fatalf("engine aggregate %d != stream %d shed arrivals", ss.ShedArrivals, res.ShedArrivals)
	}
}

// An unservable (template, VM type) placement reroutes to the fallback type
// under Degrade instead of failing the stream.
func TestPlacementReroutesToFallback(t *testing.T) {
	templates := []workload.Template{
		{ID: 0, Name: "small", BaseLatency: 2 * time.Minute},
		{ID: 1, Name: "big", BaseLatency: 3 * time.Minute, HighRAM: true},
	}
	types := cloud.DefaultVMTypes(2)
	types[1].SupportsHighRAM = false // type 1 cannot run template 1
	env := schedule.NewEnv(templates, types)
	cfg := DefaultTrainConfig()
	cfg.NumSamples = 40
	cfg.SampleSize = 5
	cfg.Seed = 11
	base, err := MustNewAdvisor(env, cfg).Train(sla.NewMaxLatency(15*time.Minute, templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}

	run := func(degrade bool) (*Stream, error) {
		opts := DefaultOnlineOptions()
		opts.Degrade = degrade
		o := NewOnlineScheduler(base, opts)
		if o.fallbackType != 0 {
			t.Fatalf("fallback type = %d, want 0 (the type supporting every template)", o.fallbackType)
		}
		s := o.NewStream(&SimClock{})
		s.ensureTag(0)
		s.tags[0] = tagState{arrival: 0, template: 1}
		// A hand-crafted schedule with the unservable pair: template 1 on
		// VM type 1. The batch scheduler never emits this; the test drives
		// the placement-error path directly.
		bad := &schedule.Schedule{VMs: []schedule.VM{{TypeID: 1, Queue: []schedule.Placed{{TemplateID: 1, Tag: 0}}}}}
		return s, s.place(0, bad)
	}

	if _, err := run(false); err == nil {
		t.Fatal("without Degrade, the unservable pair must error")
	}
	s, err := run(true)
	if err != nil {
		t.Fatalf("Degrade must absorb the unservable pair, got %v", err)
	}
	if s.res.DegradedPlacements != 1 {
		t.Fatalf("DegradedPlacements = %d, want 1", s.res.DegradedPlacements)
	}
	res := s.Finish()
	if len(res.Outcomes) != 1 || res.Outcomes[0].Tag != 0 {
		t.Fatalf("the rerouted query must complete exactly once, got %v", res.Outcomes)
	}
}

// Fault-injected VM failures mid-stream: every re-admitted query completes
// exactly once, failed VMs take no further work, and the whole run is
// bit-deterministic for a fixed chaos seed.
func TestVMFaultsReadmitExactlyOnceDeterministic(t *testing.T) {
	base := onlineBase(t, 4, 1)
	spec := cloud.FaultSpec{
		VMFailureRate: 0.6,
		VMMinLifetime: time.Minute,
		VMMaxLifetime: 20 * time.Minute,
	}
	const n = 60
	w := tenantWorkloads(base.Env().Templates, 1, n, 15*time.Second, 21)[0]
	runOnce := func() (*OnlineResult, string) {
		o := NewOnlineScheduler(base, DefaultOnlineOptions())
		clk := &SimClock{}
		s := o.NewStream(clk)
		s.InjectFaults(cloud.NewFaultPlan(99, spec))
		s.Reserve(n)
		q := newArrivalQueue(w.Queries)
		for {
			at, batch, ok := q.next()
			if !ok {
				break
			}
			clk.Advance(at)
			if err := s.Submit(context.Background(), batch...); err != nil {
				t.Fatal(err)
			}
		}
		res := s.Finish()
		return res, fmt.Sprintf("%s readmit=%d outcomes=%v", onlineResultFingerprint(res), res.FaultReadmissions, res.Outcomes)
	}
	res, fp1 := runOnce()
	if res.FaultReadmissions == 0 {
		t.Fatal("a 60% failure rate over this stream must kill at least one VM with work on it")
	}
	seen := make([]bool, n)
	for _, out := range res.Outcomes {
		if seen[out.Tag] {
			t.Fatalf("tag %d completed twice after VM-failure re-admission", out.Tag)
		}
		seen[out.Tag] = true
	}
	for tag, ok := range seen {
		if !ok {
			t.Fatalf("tag %d lost to a VM failure (never re-admitted)", tag)
		}
	}
	if _, fp2 := runOnce(); fp1 != fp2 {
		t.Fatalf("chaos run not bit-deterministic under a fixed seed:\nrun 1: %s\nrun 2: %s", fp1, fp2)
	}
}

// Tenant.Faults plumbs a per-tenant fault plan through sharded serving, and
// per-tenant results stay bit-identical across shard counts even with
// injection on.
func TestRunTenantsWithFaultsDeterministic(t *testing.T) {
	base := onlineBase(t, 4, 2)
	spec := cloud.FaultSpec{VMFailureRate: 0.5, VMMinLifetime: time.Minute, VMMaxLifetime: 10 * time.Minute}
	ws := tenantWorkloads(base.Env().Templates, 4, 20, 15*time.Second, 13)
	build := func() []Tenant {
		tenants := make([]Tenant, len(ws))
		for i := range ws {
			tenants[i] = Tenant{
				ID:       TenantID(i + 1),
				Workload: ws[i],
				Faults:   cloud.NewFaultPlan(int64(1000+i), spec),
			}
		}
		return tenants
	}
	var fps [][]string
	for _, shards := range []int{1, 4} {
		opts := DefaultOnlineOptions()
		opts.Shards = shards
		o := NewOnlineScheduler(base, opts)
		results, err := o.RunTenants(context.Background(), build())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		fp := make([]string, len(results))
		for i, res := range results {
			fp[i] = fmt.Sprintf("%s readmit=%d", onlineResultFingerprint(res), res.FaultReadmissions)
		}
		fps = append(fps, fp)
	}
	for i := range ws {
		if fps[0][i] != fps[1][i] {
			t.Errorf("tenant %d differs across shard counts:\n1 shard:  %s\n4 shards: %s", i, fps[0][i], fps[1][i])
		}
	}
}

// BenchmarkDegradedArrival measures the per-arrival cost of the degraded
// serving path: the epoch's model is unusable (no retained training data for
// the shift path), so after the first waited batch every arrival schedules
// through the first-fit heuristic fallback. CI persists this next to
// BenchmarkOnlineArrival in BENCH_chaos.json — the fallback must stay the
// same order of magnitude as the model path, or degradation is not graceful.
func BenchmarkDegradedArrival(b *testing.B) {
	base := degradedBase(b, 5, 2)
	opts := DefaultOnlineOptions()
	opts.Degrade = true
	queries := workload.NewSampler(base.Env().Templates, 13).Uniform(40).Queries
	for i := range queries {
		queries[i].Arrival = time.Duration(i) * 5 * time.Second
	}
	w := &workload.Workload{Templates: base.Env().Templates, Queries: queries}
	b.ReportAllocs()
	b.ResetTimer()
	var arrivals, degraded int
	for i := 0; i < b.N; i++ {
		o := NewOnlineScheduler(base, opts)
		res, err := o.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		arrivals += len(res.PerArrival)
		degraded += res.DegradedArrivals
	}
	b.StopTimer()
	if degraded == 0 {
		b.Fatal("the degraded path never engaged; the benchmark is measuring the model path")
	}
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(arrivals), "ns/arrival")
	}
}
