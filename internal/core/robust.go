package core

import (
	"errors"
	"time"
)

// RetryPolicy is the failure discipline of a registry's retrain and
// checkpoint lifecycle. Retrain backoff and the circuit breaker are measured
// in drift-trigger attempts, not wall time: streams run on virtual clocks
// (SimClock) whose times are incomparable to the wall, and counting
// suppressed triggers keeps the whole discipline bit-deterministic under
// simulation. Checkpoint retry runs on background goroutines off every
// arrival path, so its backoff may (and does) sleep real time.
//
// The zero value of every field selects its default; negative disables the
// corresponding mechanism.
type RetryPolicy struct {
	// BackoffBase is how many subsequent drift triggers are suppressed
	// after the first consecutive retrain failure. Each further failure
	// doubles the suppression window up to BackoffMax, plus deterministic
	// jitter of up to half the window. Default 1; negative disables
	// backoff.
	BackoffBase int
	// BackoffMax caps the suppression window. Default 16.
	BackoffMax int
	// JitterSeed seeds the deterministic jitter sequence. The default (0)
	// is a valid seed; two registries with equal seeds and equal failure
	// histories draw identical jitter.
	JitterSeed int64
	// BreakerThreshold consecutive retrain failures trip the circuit
	// breaker. While open, drift triggers are rejected outright (no
	// retrain starts, the detector rebaselines) until BreakerCooldown
	// triggers have been rejected; the next trigger then runs as a
	// half-open probe whose outcome closes or re-opens the breaker.
	// Default 4; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how many triggers an open breaker swallows before
	// admitting a probe. Default 32.
	BreakerCooldown int
	// CheckpointAttempts bounds how many times one epoch's durable commit
	// is attempted (first try included). Default 3; values < 1 mean 1.
	CheckpointAttempts int
	// CheckpointBackoff is the delay before the first checkpoint retry,
	// doubling per further attempt. Default 50ms.
	CheckpointBackoff time.Duration
}

// DefaultRetryPolicy returns the policy used when none is configured.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		BackoffBase:        1,
		BackoffMax:         16,
		BreakerThreshold:   4,
		BreakerCooldown:    32,
		CheckpointAttempts: 3,
		CheckpointBackoff:  50 * time.Millisecond,
	}
}

// normalized fills zero fields with defaults, leaving negative (disabled)
// values alone.
func (p RetryPolicy) normalized() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.BackoffBase == 0 {
		p.BackoffBase = d.BackoffBase
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = d.BackoffMax
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = d.BreakerThreshold
	}
	if p.BreakerCooldown == 0 {
		p.BreakerCooldown = d.BreakerCooldown
	}
	if p.CheckpointAttempts < 1 {
		p.CheckpointAttempts = d.CheckpointAttempts
	}
	if p.CheckpointBackoff == 0 {
		p.CheckpointBackoff = d.CheckpointBackoff
	}
	return p
}

// RetryDelay returns the wall-clock delay before retry number attempt
// (attempt ≥ 1 — the delay after the attempt'th failure): the policy's
// CheckpointBackoff doubling per attempt, capped at 30s, plus a
// deterministic jitter in [0, delay/2) drawn from seed, so a fleet of
// clients retrying the same outage spreads out instead of reconverging
// in lockstep. The registry's checkpoint retries and the network
// client's dial retries share this one schedule.
func (p RetryPolicy) RetryDelay(attempt int, seed uint64) time.Duration {
	p = p.normalized()
	if attempt < 1 {
		attempt = 1
	}
	const maxDelay = 30 * time.Second
	d := p.CheckpointBackoff
	for i := 1; i < attempt && d < maxDelay; i++ {
		d <<= 1
	}
	if d > maxDelay {
		d = maxDelay
	}
	if half := d / 2; half > 0 {
		j := mix64(seed ^ uint64(attempt)*0x9e3779b97f4a7c15)
		d += time.Duration(j % uint64(half))
	}
	return d
}

// breakerState is the retrain circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (b breakerState) String() string {
	switch b {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// RobustnessStats is a snapshot of a registry's failure-path counters.
type RobustnessStats struct {
	// BackoffSuppressed counts drift triggers swallowed by exponential
	// backoff after retrain failures; BreakerRejected counts triggers
	// rejected by an open (or probing) breaker.
	BackoffSuppressed, BreakerRejected int64
	// BreakerOpens and BreakerCloses count breaker state transitions.
	BreakerOpens, BreakerCloses int64
	// Breaker is the breaker's current position: "closed", "open", or
	// "half-open".
	Breaker string
	// ConsecutiveFailures is the current run of retrain failures without
	// an intervening success.
	ConsecutiveFailures int
	// CheckpointRetries counts durable-commit attempts beyond each
	// epoch's first.
	CheckpointRetries int64
}

// merge folds another registry's robustness counters into s, keeping the
// most degraded breaker position (open > half-open > closed).
func (s *RobustnessStats) merge(o RobustnessStats) {
	s.BackoffSuppressed += o.BackoffSuppressed
	s.BreakerRejected += o.BreakerRejected
	s.BreakerOpens += o.BreakerOpens
	s.BreakerCloses += o.BreakerCloses
	s.ConsecutiveFailures += o.ConsecutiveFailures
	s.CheckpointRetries += o.CheckpointRetries
	rank := func(b string) int {
		switch b {
		case "open":
			return 2
		case "half-open":
			return 1
		}
		return 0
	}
	if s.Breaker == "" || rank(o.Breaker) > rank(s.Breaker) {
		s.Breaker = o.Breaker
	}
}

// errRetrainSuppressed reports that the retry discipline swallowed a drift
// trigger (backoff window or open breaker). The current epoch keeps serving;
// the stream rebaselines its detector and moves on.
var errRetrainSuppressed = errors.New("core: drift retrain suppressed by backoff/breaker")

// SetRetryPolicy replaces the registry's retry discipline. Zero fields take
// defaults, negative fields disable. Call before serving begins; the
// engine's AddRegistry applies OnlineOptions.Retry through this.
func (r *ModelRegistry) SetRetryPolicy(p RetryPolicy) {
	r.robustMu.Lock()
	defer r.robustMu.Unlock()
	r.policy = p.normalized()
}

// retryPolicy returns the active (normalized) policy.
func (r *ModelRegistry) retryPolicy() RetryPolicy {
	r.robustMu.Lock()
	defer r.robustMu.Unlock()
	return r.policy
}

// jitterLocked draws the next deterministic jitter value in [0, n).
// Callers hold robustMu.
func (r *ModelRegistry) jitterLocked(n int) int {
	if n <= 1 {
		return 0
	}
	h := mix64(uint64(r.policy.JitterSeed) ^ (r.jitterN + 0x7f4a7c15))
	r.jitterN++
	return int(h % uint64(n))
}

// admitTrigger is the gate every drift trigger passes before a retrain may
// start. It returns false when the trigger must be swallowed — the breaker
// is open and cooling down, a half-open probe is already underway, or a
// backoff window is active. Swallowed triggers still rebaseline the
// stream's drift detector (the stream does that after every trigger
// attempt), so a failing retrain path cannot storm.
func (r *ModelRegistry) admitTrigger() bool {
	r.robustMu.Lock()
	defer r.robustMu.Unlock()
	switch r.breaker {
	case breakerOpen:
		if r.breakerBudget > 0 {
			r.breakerBudget--
			r.breakerRejected.Add(1)
			return false
		}
		// Cooldown spent: admit this trigger as the half-open probe.
		r.breaker = breakerHalfOpen
		return true
	case breakerHalfOpen:
		r.breakerRejected.Add(1)
		return false
	}
	if r.suppress > 0 {
		r.suppress--
		r.backoffSuppressed.Add(1)
		return false
	}
	return true
}

// noteRetrainResult feeds a finished retrain's outcome back into the
// breaker and backoff state. Success resets everything (and closes the
// breaker if it was probing); failure escalates the backoff window and, at
// the threshold, trips the breaker.
func (r *ModelRegistry) noteRetrainResult(err error) {
	r.robustMu.Lock()
	defer r.robustMu.Unlock()
	if err == nil {
		if r.breaker != breakerClosed {
			r.breaker = breakerClosed
			r.breakerCloses.Add(1)
		}
		r.consecFailures = 0
		r.suppress = 0
		return
	}
	r.consecFailures++
	tripped := r.breaker == breakerHalfOpen ||
		(r.policy.BreakerThreshold > 0 && r.consecFailures >= r.policy.BreakerThreshold)
	if tripped {
		r.breaker = breakerOpen
		r.breakerOpens.Add(1)
		r.breakerBudget = r.policy.BreakerCooldown + r.jitterLocked(r.policy.BreakerCooldown/4+1)
		return
	}
	if r.policy.BackoffBase < 0 {
		return
	}
	window := r.policy.BackoffBase
	for i := 1; i < r.consecFailures && window < r.policy.BackoffMax; i++ {
		window <<= 1
	}
	if window > r.policy.BackoffMax {
		window = r.policy.BackoffMax
	}
	r.suppress = window + r.jitterLocked(window/2+1)
}

// Robustness returns a snapshot of the registry's failure-path counters.
func (r *ModelRegistry) Robustness() RobustnessStats {
	r.robustMu.Lock()
	breaker := r.breaker.String()
	consec := r.consecFailures
	r.robustMu.Unlock()
	return RobustnessStats{
		BackoffSuppressed:   r.backoffSuppressed.Load(),
		BreakerRejected:     r.breakerRejected.Load(),
		BreakerOpens:        r.breakerOpens.Load(),
		BreakerCloses:       r.breakerCloses.Load(),
		Breaker:             breaker,
		ConsecutiveFailures: consec,
		CheckpointRetries:   r.checkpointRetries.Load(),
	}
}
