package core

import (
	"fmt"
	"math"

	"wisedb/internal/features"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/workload"
)

// ScheduleBatch produces a complete schedule for a batch workload by
// repeatedly parsing the decision tree (§4.5's worked example, §6.2): at
// each step the model maps the current vertex's features to an action,
// which is applied to reach the next vertex, until every query is assigned.
//
// A learned tree can emit an action that is invalid at the current vertex
// (e.g. new-VM while the open VM is empty, or assign-X with no X
// unassigned). These are repaired deterministically toward the behavior the
// tree approximates: an invalid placement falls back to the cheapest valid
// placement edge, and an invalid start-up becomes the cheapest placement
// (or vice versa when nothing is placeable). Repairs guarantee progress, so
// scheduling terminates after at most 2n+1 steps (§7.4's complexity
// argument: the tree is parsed at most 2n times, O(h) per parse).
//
// The loop is the compiled serving hot path: per-call scratch (walked
// state, penalty tracker, feature buffer, action and retag buffers) comes
// from a pool on the model, features are maintained incrementally (O(k) per
// step instead of O(queue+k)), inference runs on the flat compiled tree,
// and the state advances in place — so a schedule of n queries costs O(n·k)
// time and O(1) amortized allocations per query, at any number of
// concurrent callers.
func (m *Model) ScheduleBatch(w *workload.Workload) (*schedule.Schedule, error) {
	sched, _, err := m.scheduleBatchInto(w, nil, nil, 1)
	return sched, err
}

// scheduleBatchInto is ScheduleBatch writing into caller-owned storage: dst
// (the schedule skeleton) and backing (the array shared by every VM queue)
// are recycled when their capacity suffices, so a caller that consumes each
// schedule before requesting the next — the online stream core does, it
// maps the schedule onto simulator VMs immediately — pays zero steady-state
// allocations per call. Nil dst/backing allocate fresh storage, which is
// exactly ScheduleBatch. The returned backing must be passed back in on the
// next call.
//
// priceMult is the VM price multiplier in effect at the event being
// scheduled (cloud.PriceSchedule.At of the arrival instant; 1 for flat
// prices). It scales the monetary side of the dominated-placement guard —
// start-up and processing fees — while SLA penalty deltas stay unscaled, so
// the fresh-VM comparison stays coherent with what Sim's lease accounting
// will actually charge. At 1 the guard arithmetic is bit-identical to the
// unpriced path.
func (m *Model) scheduleBatchInto(w *workload.Workload, dst *schedule.Schedule, backing []schedule.Placed, priceMult float64) (*schedule.Schedule, []schedule.Placed, error) {
	k := len(m.env.Templates)
	if len(w.Templates) != k {
		return nil, backing, fmt.Errorf("core: workload has %d templates, model expects %d", len(w.Templates), k)
	}
	for _, q := range w.Queries {
		if q.TemplateID < 0 || q.TemplateID >= k {
			return nil, backing, fmt.Errorf("core: query tag %d references unknown template %d", q.Tag, q.TemplateID)
		}
	}
	tables := m.servingTables()
	sc := m.getScratch()
	defer m.putScratch(sc)
	sc.resetState(w, k)
	state := &sc.state
	maxSteps := 2*len(w.Queries) + 1
	for steps := 0; !state.IsGoal(); steps++ {
		if steps > maxSteps {
			return nil, backing, fmt.Errorf("core: scheduler failed to make progress after %d steps", steps)
		}
		sc.feat = sc.fs.AppendTo(sc.feat[:0], state)
		act := graph.ActionFromLabel(tables.compiled.Predict(sc.feat), k)
		act = m.repair(state, act)
		if act.Kind == graph.Place && state.CanStartup() && len(state.OpenQueue) > 0 {
			// The feature vector already holds act's Eq. 2 placement
			// cost (cost-of-X is bit-identical to PlacementCost);
			// recompute only if the feature was clamped at Infinite.
			cur := sc.feat[1+features.PerTemplate*act.Template+2]
			if cur >= features.Infinite {
				cur, _ = m.prob.PlacementCost(state, act.Template)
			}
			if priceMult != 1 {
				// Re-price the open-VM placement: PlacementCost is
				// f_r·l + penalty delta, and only the f_r component
				// scales with the spot multiplier.
				lat, _ := m.env.Latency(act.Template, state.OpenType)
				cur += (priceMult - 1) * m.env.VMTypes[state.OpenType].RunningCost(lat)
			}
			act = m.guardWithCost(state, act, cur, priceMult)
		}
		m.prob.ApplyInPlace(state, act)
		sc.fs.Apply(act)
		sc.actions = append(sc.actions, act)
	}
	sched, backing := buildScheduleInto(dst, backing, sc.actions, len(w.Queries))
	sc.retag(sched, w)
	return sched, backing, nil
}

// repair coerces a predicted action into a valid one. Valid predictions
// pass through untouched.
func (m *Model) repair(s *graph.State, act graph.Action) graph.Action {
	switch act.Kind {
	case graph.Place:
		if m.prob.CanPlace(s, act.Template) {
			return act
		}
	case graph.Startup:
		if s.CanStartup() && act.VMType >= 0 && act.VMType < len(m.env.VMTypes) && m.typeUsable(s, act.VMType) {
			return act
		}
	}
	// Prefer the cheapest valid placement edge: it mirrors the greedy
	// behavior the tree approximates and always makes progress.
	if t, ok := m.cheapestPlacement(s); ok {
		return graph.Action{Kind: graph.Place, Template: t}
	}
	// Nothing placeable: rent the VM type that can serve an unassigned
	// query most cheaply.
	if vt, ok := m.bestStartupType(s); ok {
		return graph.Action{Kind: graph.Startup, VMType: vt}
	}
	// Unreachable for schedulable workloads: every template runs on some
	// VM type (checked at training time).
	panic("core: no valid action available")
}

// guardDominatedPlacement overrides a placement that is strictly dominated
// by renting a fresh VM for the same query. For every supported goal,
// placing a query on an empty VM yields a completion time — and hence a
// penalty delta — no larger than placing it behind queued work, so whenever
//
//	cost(place on open VM) > min over types [f_s + f_r·l + fresh penalty delta]
//
// the tree's choice cannot be part of any rational schedule and is replaced
// by the corresponding start-up action. This breaks the "absorbing leaf"
// failure mode where a rare misprediction keeps piling queries onto one VM,
// compounding penalties on every subsequent step; correct placements are
// never overridden because their cost is at most the fresh-VM alternative
// (queue consolidation is exactly how schedules avoid start-up fees).
func (m *Model) guardDominatedPlacement(s *graph.State, act graph.Action) graph.Action {
	if act.Kind != graph.Place || !s.CanStartup() || len(s.OpenQueue) == 0 {
		return act
	}
	cur, ok := m.prob.PlacementCost(s, act.Template)
	if !ok {
		return act
	}
	return m.guardWithCost(s, act, cur, 1)
}

// guardWithCost is guardDominatedPlacement once the placement's Eq. 2 cost
// is known; the serving loop reads cur out of the feature vector it just
// extracted instead of recomputing it. priceMult scales the fee side of the
// fresh-VM alternative (both f_s and f_r live in tables.fresh); the caller
// must have scaled cur's fee component to match. 1·fees is bit-exact fees,
// so flat prices reproduce the historical guard decisions.
func (m *Model) guardWithCost(s *graph.State, act graph.Action, cur, priceMult float64) graph.Action {
	// Fresh-VM fees come from the precomputed serving table; only the
	// goal-dependent penalty delta is evaluated per candidate type.
	tables := m.servingTables()
	penalty := s.Acc.Penalty()
	bestType, bestCost := -1, math.Inf(1)
	for v := 0; v < tables.numTypes; v++ {
		fees := tables.fresh[act.Template*tables.numTypes+v]
		if math.IsInf(fees, 1) {
			continue
		}
		lat := tables.freshLat[act.Template*tables.numTypes+v]
		fresh := priceMult*fees + s.Acc.PeekAdd(act.Template, lat) - penalty
		if fresh < bestCost {
			bestType, bestCost = v, fresh
		}
	}
	if bestType >= 0 && bestCost < cur-1e-9 {
		return graph.Action{Kind: graph.Startup, VMType: bestType}
	}
	return act
}

// typeUsable reports whether renting VM type vt could serve any unassigned
// query.
func (m *Model) typeUsable(s *graph.State, vt int) bool {
	for t, c := range s.Unassigned {
		if c == 0 {
			continue
		}
		if _, ok := m.env.Latency(t, vt); ok {
			return true
		}
	}
	return false
}

// cheapestPlacement returns the unassigned template with the lowest
// placement-edge weight on the open VM.
func (m *Model) cheapestPlacement(s *graph.State) (template int, ok bool) {
	best := math.Inf(1)
	for t := range s.Unassigned {
		c, valid := m.prob.PlacementCost(s, t)
		if valid && c < best {
			best = c
			template = t
			ok = true
		}
	}
	return template, ok
}

// bestStartupType returns the VM type minimizing start-up fee plus the
// cheapest processing cost of any unassigned query it supports.
func (m *Model) bestStartupType(s *graph.State) (vt int, ok bool) {
	if !s.CanStartup() {
		return 0, false
	}
	best := math.Inf(1)
	for _, v := range m.env.VMTypes {
		cheapest := math.Inf(1)
		for t, c := range s.Unassigned {
			if c == 0 {
				continue
			}
			lat, valid := m.env.Latency(t, v.ID)
			if !valid {
				continue
			}
			if rc := v.RunningCost(lat); rc < cheapest {
				cheapest = rc
			}
		}
		if math.IsInf(cheapest, 1) {
			continue
		}
		if total := v.StartupCost + cheapest; total < best {
			best = total
			vt = v.ID
			ok = true
		}
	}
	return vt, ok
}
