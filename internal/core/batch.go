package core

import (
	"fmt"
	"math"

	"wisedb/internal/features"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/workload"
)

// ScheduleBatch produces a complete schedule for a batch workload by
// repeatedly parsing the decision tree (§4.5's worked example, §6.2): at
// each step the model maps the current vertex's features to an action,
// which is applied to reach the next vertex, until every query is assigned.
//
// A learned tree can emit an action that is invalid at the current vertex
// (e.g. new-VM while the open VM is empty, or assign-X with no X
// unassigned). These are repaired deterministically toward the behavior the
// tree approximates: an invalid placement falls back to the cheapest valid
// placement edge, and an invalid start-up becomes the cheapest placement
// (or vice versa when nothing is placeable). Repairs guarantee progress, so
// scheduling terminates after at most 2n+1 steps (§7.4's complexity
// argument: the tree is parsed at most 2n times, O(h) per parse).
func (m *Model) ScheduleBatch(w *workload.Workload) (*schedule.Schedule, error) {
	if len(w.Templates) != len(m.env.Templates) {
		return nil, fmt.Errorf("core: workload has %d templates, model expects %d", len(w.Templates), len(m.env.Templates))
	}
	state := m.prob.Start(w)
	k := len(m.env.Templates)
	var actions []graph.Action
	maxSteps := 2*len(w.Queries) + 1
	for steps := 0; !state.IsGoal(); steps++ {
		if steps > maxSteps {
			return nil, fmt.Errorf("core: scheduler failed to make progress after %d steps", steps)
		}
		act := graph.ActionFromLabel(m.Tree.Predict(features.Extract(m.prob, state)), k)
		act = m.repair(state, act)
		act = m.guardDominatedPlacement(state, act)
		state = m.prob.Apply(state, act)
		actions = append(actions, act)
	}
	sched := graph.BuildSchedule(actions)
	retagSchedule(sched, w)
	return sched, nil
}

// repair coerces a predicted action into a valid one. Valid predictions
// pass through untouched.
func (m *Model) repair(s *graph.State, act graph.Action) graph.Action {
	switch act.Kind {
	case graph.Place:
		if m.prob.CanPlace(s, act.Template) {
			return act
		}
	case graph.Startup:
		if s.CanStartup() && act.VMType >= 0 && act.VMType < len(m.env.VMTypes) && m.typeUsable(s, act.VMType) {
			return act
		}
	}
	// Prefer the cheapest valid placement edge: it mirrors the greedy
	// behavior the tree approximates and always makes progress.
	if t, ok := m.cheapestPlacement(s); ok {
		return graph.Action{Kind: graph.Place, Template: t}
	}
	// Nothing placeable: rent the VM type that can serve an unassigned
	// query most cheaply.
	if vt, ok := m.bestStartupType(s); ok {
		return graph.Action{Kind: graph.Startup, VMType: vt}
	}
	// Unreachable for schedulable workloads: every template runs on some
	// VM type (checked at training time).
	panic("core: no valid action available")
}

// guardDominatedPlacement overrides a placement that is strictly dominated
// by renting a fresh VM for the same query. For every supported goal,
// placing a query on an empty VM yields a completion time — and hence a
// penalty delta — no larger than placing it behind queued work, so whenever
//
//	cost(place on open VM) > min over types [f_s + f_r·l + fresh penalty delta]
//
// the tree's choice cannot be part of any rational schedule and is replaced
// by the corresponding start-up action. This breaks the "absorbing leaf"
// failure mode where a rare misprediction keeps piling queries onto one VM,
// compounding penalties on every subsequent step; correct placements are
// never overridden because their cost is at most the fresh-VM alternative
// (queue consolidation is exactly how schedules avoid start-up fees).
func (m *Model) guardDominatedPlacement(s *graph.State, act graph.Action) graph.Action {
	if act.Kind != graph.Place || !s.CanStartup() || len(s.OpenQueue) == 0 {
		return act
	}
	cur, ok := m.prob.PlacementCost(s, act.Template)
	if !ok {
		return act
	}
	bestType, bestCost := -1, math.Inf(1)
	for _, vt := range m.env.VMTypes {
		lat, ok := m.env.Latency(act.Template, vt.ID)
		if !ok {
			continue
		}
		fresh := vt.StartupCost + vt.RunningCost(lat) +
			s.Acc.PeekAdd(act.Template, lat) - s.Acc.Penalty()
		if fresh < bestCost {
			bestType, bestCost = vt.ID, fresh
		}
	}
	if bestType >= 0 && bestCost < cur-1e-9 {
		return graph.Action{Kind: graph.Startup, VMType: bestType}
	}
	return act
}

// typeUsable reports whether renting VM type vt could serve any unassigned
// query.
func (m *Model) typeUsable(s *graph.State, vt int) bool {
	for t, c := range s.Unassigned {
		if c == 0 {
			continue
		}
		if _, ok := m.env.Latency(t, vt); ok {
			return true
		}
	}
	return false
}

// cheapestPlacement returns the unassigned template with the lowest
// placement-edge weight on the open VM.
func (m *Model) cheapestPlacement(s *graph.State) (template int, ok bool) {
	best := math.Inf(1)
	for t := range s.Unassigned {
		c, valid := m.prob.PlacementCost(s, t)
		if valid && c < best {
			best = c
			template = t
			ok = true
		}
	}
	return template, ok
}

// bestStartupType returns the VM type minimizing start-up fee plus the
// cheapest processing cost of any unassigned query it supports.
func (m *Model) bestStartupType(s *graph.State) (vt int, ok bool) {
	if !s.CanStartup() {
		return 0, false
	}
	best := math.Inf(1)
	for _, v := range m.env.VMTypes {
		cheapest := math.Inf(1)
		for t, c := range s.Unassigned {
			if c == 0 {
				continue
			}
			lat, valid := m.env.Latency(t, v.ID)
			if !valid {
				continue
			}
			if rc := v.RunningCost(lat); rc < cheapest {
				cheapest = rc
			}
		}
		if math.IsInf(cheapest, 1) {
			continue
		}
		if total := v.StartupCost + cheapest; total < best {
			best = total
			vt = v.ID
			ok = true
		}
	}
	return vt, ok
}

// retagSchedule rewrites the placeholder tags produced by BuildSchedule
// with the workload's real query tags, matching instances template by
// template in workload order.
func retagSchedule(s *schedule.Schedule, w *workload.Workload) {
	byTemplate := map[int][]int{}
	for _, q := range w.Queries {
		byTemplate[q.TemplateID] = append(byTemplate[q.TemplateID], q.Tag)
	}
	for vi := range s.VMs {
		for qi := range s.VMs[vi].Queue {
			t := s.VMs[vi].Queue[qi].TemplateID
			tags := byTemplate[t]
			if len(tags) == 0 {
				continue // schedule/workload mismatch surfaces in Validate
			}
			s.VMs[vi].Queue[qi].Tag = tags[0]
			byTemplate[t] = tags[1:]
		}
	}
}
