package core

import (
	"fmt"
	"sort"
	"time"

	"wisedb/internal/workload"
)

// Clock supplies the current time of one arrival stream as an offset from
// the stream's start. The online engine is clock-agnostic: the same stream
// core runs against virtual time (SimClock, driven by a workload's recorded
// arrival instants) and against wall-clock time (WallClock, for live
// serving), so simulated experiments and the event-driven serving mode
// exercise identical scheduling code.
type Clock interface {
	Now() time.Duration
}

// SimClock is a virtual clock advanced explicitly by its driver. The
// workload replay drivers (Run, RunStreams) advance it to each arrival
// event's timestamp before handing the event to the stream core.
//
// A SimClock is owned by a single stream and is not safe for concurrent use.
type SimClock struct {
	t time.Duration
}

// Now returns the virtual time.
func (c *SimClock) Now() time.Duration { return c.t }

// Advance moves the clock to t. Time is monotonic: rewinding panics, since
// a stream that observed a later time has already committed scheduling
// decisions against it.
func (c *SimClock) Advance(t time.Duration) {
	if t < c.t {
		panic(fmt.Sprintf("core: SimClock rewound from %s to %s", c.t, t))
	}
	c.t = t
}

// WallClock reads real elapsed time since its creation. Streams driven by
// live arrivals (Stream.Submit under a WallClock) timestamp each event with
// it.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a clock whose zero instant is now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns the elapsed wall time since the clock was created.
func (c *WallClock) Now() time.Duration { return time.Since(c.start) }

// arrivalQueue is the event queue of a replayed workload: it yields the
// queries of a time-sorted stream one scheduling event at a time, grouping
// queries that arrive at the same instant into a single batch event (§6.3
// re-schedules once per arrival instant, not once per query).
type arrivalQueue struct {
	queries []workload.Query // sorted by arrival
	i       int
}

// newArrivalQueue wraps the queries in arrival order. Queries already
// sorted by arrival — every workload generator emits them that way — are
// served in place with no copy, which matters when sharded serving builds
// 10k tenant queues; an unsorted stream is copied (keeping the caller's
// workload untouched) and stably sorted, so same-instant queries keep their
// submission order either way.
func newArrivalQueue(queries []workload.Query) *arrivalQueue {
	if sort.SliceIsSorted(queries, func(i, j int) bool { return queries[i].Arrival < queries[j].Arrival }) {
		return &arrivalQueue{queries: queries}
	}
	qs := append([]workload.Query(nil), queries...)
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Arrival < qs[j].Arrival })
	return &arrivalQueue{queries: qs}
}

// next pops the next arrival event: the batch of all queries arriving at the
// earliest remaining instant. ok is false when the queue is drained. The
// returned slice aliases the queue's storage and is valid until the next
// call.
func (q *arrivalQueue) next() (t time.Duration, batch []workload.Query, ok bool) {
	if q.i >= len(q.queries) {
		return 0, nil, false
	}
	start := q.i
	t = q.queries[start].Arrival
	for q.i < len(q.queries) && q.queries[q.i].Arrival == t {
		q.i++
	}
	return t, q.queries[start:q.i], true
}
