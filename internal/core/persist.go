package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/dt"
	"wisedb/internal/features"
	"wisedb/internal/graph"
	"wisedb/internal/schedule"
	"wisedb/internal/search"
	"wisedb/internal/sla"
	"wisedb/internal/store"
	"wisedb/internal/workload"
)

// Model persistence: the codec between a trained *Model and the
// self-describing container format of internal/store. A model file is a
// store container whose sections are:
//
//	secMeta      training provenance: config (seed, N, m, tree config,
//	             sample weights), wall time, row count, cache counters,
//	             and the parallelism-independent content hash
//	secGoal      the SLA goal spec (family tag + its parameters)
//	secEnv       the environment: template table, VM types, and the
//	             frozen template×VM-type latency matrix
//	secMix       the normalized training arrival mix (optional)
//	secTree      the decision tree, preorder-flattened with its feature
//	             names, label domain, and pruning counts
//	secTrain     retained training data (optional): each sample workload
//	             plus its adaptive-A* closed set, so Shift/Adapt produce
//	             bit-identical models after a warm start
//	secCache     the transposition cache's solved suffix subproblems
//	             (optional, format v2+): a canonical signature-sorted
//	             snapshot, so a warm-started registry retrains warm
//
// Every section is independently checksummed, so `wisedb inspect` reads
// provenance, goal, and mix without paying for — or trusting — the tree
// and training-data sections. Decoding is hardened: every count is bounds-
// checked against the bytes present before allocation, and corrupt input
// yields a typed store error (ErrBadMagic / ErrVersion / ErrTruncated /
// ErrCRC / ErrCorrupt), never a panic.
//
// The content hash is FNV-1a(64) over the goal, env, mix, and tree section
// payloads — everything that determines serving behavior, nothing that
// records how training was scheduled or accelerated — so two models trained
// at different Parallelism (bit-identical by the training determinism pin)
// hash equal, a warm retrain hashes equal to the cold retrain it must
// reproduce (their Closed exploration sets legitimately differ; their trees
// cannot), and the hash audits model identity across checkpoints and
// restarts. The auxiliary hash covers the training-data and cache payloads,
// preserving v1's cross-section tampering check for the sections the
// content hash no longer sees. Format v1 files carry a single hash over all
// five payloads; the decoder verifies whichever rule matches the container
// version.
const (
	secMeta  uint32 = 1
	secGoal  uint32 = 2
	secEnv   uint32 = 3
	secMix   uint32 = 4
	secTree  uint32 = 5
	secTrain uint32 = 6
	secCache uint32 = 7
)

// maxPersistedCacheEntries caps the cache section: Export truncates to the
// signature-sorted prefix, so the persisted snapshot stays a pure function
// of the cache contents while bounding checkpoint size (an entry is tens of
// bytes; the cap keeps the section low single-digit MB at worst).
const maxPersistedCacheEntries = 1 << 16

// Goal family tags of secGoal.
const (
	goalTagMax        uint8 = 1
	goalTagPerQuery   uint8 = 2
	goalTagAverage    uint8 = 3
	goalTagPercentile uint8 = 4
)

// EncodeModel serializes a model into the versioned container format. The
// encoding is canonical and timestamp-free: encoding the same model twice
// — or a model and its loaded round trip — yields identical bytes (the
// golden-file test in internal/store pins this for format v1).
func EncodeModel(m *Model) ([]byte, error) {
	data, _, err := encodeModel(m)
	return data, err
}

// encodeModel is EncodeModel also returning the content hash, which the
// registry records in checkpoint lineage.
func encodeModel(m *Model) ([]byte, uint64, error) {
	if m == nil || m.env == nil {
		return nil, 0, errors.New("core: EncodeModel requires a model bound to an environment")
	}
	if m.Tree == nil {
		return nil, 0, errors.New("core: EncodeModel requires a model with a decision tree")
	}
	goalPayload, err := encodeGoal(m.Goal)
	if err != nil {
		return nil, 0, err
	}
	envPayload := encodeEnv(m.env)
	mixPayload := encodeMix(m.trainingMix)
	treePayload, err := encodeTree(m.Tree)
	if err != nil {
		return nil, 0, err
	}
	var trainPayload []byte
	if len(m.samples) > 0 {
		if trainPayload, err = encodeTrainData(m.samples); err != nil {
			return nil, 0, err
		}
	}
	var cachePayload []byte
	if m.searchCache != nil {
		if entries := m.searchCache.Export(maxPersistedCacheEntries); len(entries) > 0 {
			cachePayload = encodeCacheData(entries)
		}
	}

	// Content hash: serving behavior only. Training data and the search
	// cache are covered by the auxiliary hash — see the codec comment.
	h := fnv.New64a()
	h.Write(goalPayload)
	h.Write(envPayload)
	h.Write(mixPayload)
	h.Write(treePayload)
	hash := h.Sum64()
	ah := fnv.New64a()
	ah.Write(trainPayload) // nil when absent: hashes as absent
	ah.Write(cachePayload)
	auxHash := ah.Sum64()

	var b store.Builder
	b.AddSection(secMeta, encodeMeta(m, hash, auxHash))
	b.AddSection(secGoal, goalPayload)
	b.AddSection(secEnv, envPayload)
	b.AddSection(secMix, mixPayload)
	b.AddSection(secTree, treePayload)
	if trainPayload != nil {
		b.AddSection(secTrain, trainPayload)
	}
	if cachePayload != nil {
		b.AddSection(secCache, cachePayload)
	}
	return b.Bytes(), hash, nil
}

// DecodeModel reconstructs a model from its encoded form: the goal,
// environment (with latency matrix verification, see decodeEnv), training
// mix, decision tree, and — when present — the retained training data. The
// serving tables are compiled before returning, so the loaded model serves
// its first batch with zero training searches and no lazy build.
func DecodeModel(data []byte) (*Model, error) {
	return decodeModel(data, nil)
}

// decodeModel implements DecodeModel; a non-nil env whose fingerprint
// matches the stored environment is adopted in place of a reconstructed
// one, so Advisor.LoadModel binds loaded models to the advisor's live
// environment (and its real Predictor).
func decodeModel(data []byte, env *schedule.Env) (*Model, error) {
	c, err := store.ParseContainer(data)
	if err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}

	// Read (and CRC-verify) each section's payload exactly once.
	metaPayload, err := c.MustSection(secMeta)
	if err != nil {
		return nil, err
	}
	goalPayload, err := c.MustSection(secGoal)
	if err != nil {
		return nil, err
	}
	envPayload, err := c.MustSection(secEnv)
	if err != nil {
		return nil, err
	}
	mixPayload, err := c.MustSection(secMix)
	if err != nil {
		return nil, err
	}
	treePayload, err := c.MustSection(secTree)
	if err != nil {
		return nil, err
	}
	trainPayload, hasTrain, err := c.Section(secTrain)
	if err != nil {
		return nil, err
	}
	cachePayload, hasCache, err := c.Section(secCache)
	if err != nil {
		return nil, err
	}
	if hasCache && c.Version() < 2 {
		return nil, fmt.Errorf("%w: v1 container carries a cache section", store.ErrCorrupt)
	}

	meta, err := decodeMeta(metaPayload, c.Version())
	if err != nil {
		return nil, err
	}
	// Recompute the recorded hashes over the stored section payloads and
	// compare before decoding anything expensive: a mismatch means the
	// sections were recombined or rewritten (each is individually
	// CRC-intact, so this catches cross-section tampering CRCs cannot,
	// e.g. a foreign traindata section that would silently change
	// post-restart Shift results). v1 recorded a single hash over all
	// payloads; v2 splits serving content from the auxiliary sections.
	h := fnv.New64a()
	h.Write(goalPayload)
	h.Write(envPayload)
	h.Write(mixPayload)
	h.Write(treePayload)
	if c.Version() < 2 {
		h.Write(trainPayload)
		if got := h.Sum64(); got != meta.hash {
			return nil, fmt.Errorf("%w: content hash %016x does not match recorded %016x", store.ErrCorrupt, got, meta.hash)
		}
	} else {
		if got := h.Sum64(); got != meta.hash {
			return nil, fmt.Errorf("%w: content hash %016x does not match recorded %016x", store.ErrCorrupt, got, meta.hash)
		}
		ah := fnv.New64a()
		ah.Write(trainPayload)
		ah.Write(cachePayload)
		if got := ah.Sum64(); got != meta.auxHash {
			return nil, fmt.Errorf("%w: auxiliary hash %016x does not match recorded %016x", store.ErrCorrupt, got, meta.auxHash)
		}
	}

	goal, err := decodeGoal(goalPayload)
	if err != nil {
		return nil, err
	}
	stored, err := decodeEnv(envPayload)
	if err != nil {
		return nil, err
	}
	if env == nil || !stored.matches(env) {
		env = stored.build()
	}
	k, nv := len(env.Templates), len(env.VMTypes)
	mix, err := decodeMix(mixPayload)
	if err != nil {
		return nil, err
	}
	if mix != nil && len(mix) != k {
		return nil, fmt.Errorf("%w: training mix has %d weights for %d templates", store.ErrCorrupt, len(mix), k)
	}
	tree, err := decodeTree(treePayload)
	if err != nil {
		return nil, err
	}
	if tree.NumLabels != k+nv {
		return nil, fmt.Errorf("%w: tree has %d labels, environment needs %d", store.ErrCorrupt, tree.NumLabels, k+nv)
	}
	if want := features.VectorLen(k); len(tree.FeatureNames) != want {
		return nil, fmt.Errorf("%w: tree has %d features, environment needs %d", store.ErrCorrupt, len(tree.FeatureNames), want)
	}
	if err := validateGoal(goal, k); err != nil {
		return nil, err
	}

	m := &Model{
		Goal:                goal,
		Tree:                tree,
		TrainingTime:        meta.trainingTime,
		TrainingRows:        meta.trainingRows,
		TrainingConfig:      meta.config,
		TrainingCacheHits:   meta.cacheHits,
		TrainingCacheMisses: meta.cacheMisses,
		WarmSamples:         meta.warmSamples,
		ColdSamples:         meta.coldSamples,
		env:                 env,
		prob:                runtimeProblem(env, goal),
		trainingMix:         mix,
	}
	if hasTrain {
		samples, tErr := decodeTrainData(trainPayload, env, c.Version())
		if tErr != nil {
			return nil, tErr
		}
		m.samples = samples
	}
	if hasCache {
		entries, cErr := decodeCacheData(cachePayload, env)
		if cErr != nil {
			return nil, cErr
		}
		cache := search.NewTranspositionCache()
		cache.Import(entries)
		m.searchCache = cache
	}
	m.servingTables() // compile the serving form at load time, like Train
	return m, nil
}

// readSection reads and decodes one required section.
func readSection[T any](c *store.Container, id uint32, decode func([]byte) (T, error)) (T, error) {
	var zero T
	p, err := c.MustSection(id)
	if err != nil {
		return zero, err
	}
	v, err := decode(p)
	if err != nil {
		return zero, err
	}
	return v, nil
}

// SaveModelFile atomically writes the model's encoded form at path.
func SaveModelFile(path string, m *Model) error {
	data, err := EncodeModel(m)
	if err != nil {
		return err
	}
	if err := store.WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// LoadModelFile reads and decodes a model file. The environment is
// reconstructed from the stored template table, VM types, and latency
// matrix, so the model serves exactly as it did when saved.
func LoadModelFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	return DecodeModel(data)
}

// SaveModel writes a model trained by (or compatible with) this advisor at
// path — the facade's durable counterpart to Train.
func (a *Advisor) SaveModel(path string, m *Model) error {
	return SaveModelFile(path, m)
}

// LoadModel reads a model file and binds it to the advisor's environment
// when the stored environment matches it exactly (same templates, VM
// types, and latency matrix): the loaded model then shares the advisor's
// live Env — and its Predictor, which online scheduling consults when
// building augmented templates. A model saved from a different environment
// is returned bound to its own reconstructed environment.
func (a *Advisor) LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	return decodeModel(data, a.env)
}

// ---- meta section ----

// modelMeta is the decoded secMeta payload.
type modelMeta struct {
	trainingTime             time.Duration
	trainingRows             int
	cacheHits, cacheMisses   int
	config                   TrainConfig
	hash                     uint64
	auxHash                  uint64
	warmSamples, coldSamples int
}

func encodeMeta(m *Model, hash, auxHash uint64) []byte {
	var e store.Enc
	e.U64(hash)
	e.Duration(m.TrainingTime)
	e.Int(m.TrainingRows)
	e.Int(m.TrainingCacheHits)
	e.Int(m.TrainingCacheMisses)
	cfg := m.TrainingConfig
	e.Int(cfg.NumSamples)
	e.Int(cfg.SampleSize)
	e.I64(cfg.Seed)
	e.Int(cfg.Parallelism)
	e.Int(cfg.MaxExpansions)
	e.Bool(cfg.KeepTrainingData)
	e.Bool(cfg.DisableSearchCache)
	e.Int(cfg.Tree.MinLeaf)
	e.Int(cfg.Tree.MaxDepth)
	e.Bool(cfg.Tree.Prune)
	e.F64(cfg.Tree.PruneConfidence)
	e.Bool(cfg.SampleWeights != nil)
	if cfg.SampleWeights != nil {
		e.Int(len(cfg.SampleWeights))
		for _, w := range cfg.SampleWeights {
			e.F64(w)
		}
	}
	// v2 tail: auxiliary hash and the warm/cold sample split.
	e.U64(auxHash)
	e.Int(m.WarmSamples)
	e.Int(m.ColdSamples)
	return e.Bytes()
}

// decodeMeta decodes a secMeta payload; version is the container's format
// version (v1 payloads end before the v2 tail fields).
func decodeMeta(p []byte, version uint16) (modelMeta, error) {
	d := store.NewDec(p)
	var m modelMeta
	m.hash = d.U64()
	m.trainingTime = d.Duration()
	m.trainingRows = d.Int()
	m.cacheHits = d.Int()
	m.cacheMisses = d.Int()
	m.config.NumSamples = d.Int()
	m.config.SampleSize = d.Int()
	m.config.Seed = d.I64()
	m.config.Parallelism = d.Int()
	m.config.MaxExpansions = d.Int()
	m.config.KeepTrainingData = d.Bool()
	m.config.DisableSearchCache = d.Bool()
	m.config.Tree.MinLeaf = d.Int()
	m.config.Tree.MaxDepth = d.Int()
	m.config.Tree.Prune = d.Bool()
	m.config.Tree.PruneConfidence = d.F64()
	if d.Bool() {
		n := d.Count(8)
		if d.Err() == nil {
			m.config.SampleWeights = make([]float64, n)
			for i := range m.config.SampleWeights {
				m.config.SampleWeights[i] = d.F64()
			}
		}
	}
	if version >= 2 {
		m.auxHash = d.U64()
		m.warmSamples = d.Int()
		m.coldSamples = d.Int()
	}
	return m, d.Done()
}

// ---- goal section ----

func encodeGoal(g sla.Goal) ([]byte, error) {
	var e store.Enc
	switch g := g.(type) {
	case sla.MaxLatency:
		e.U8(goalTagMax)
		e.Duration(g.Deadline)
		e.Duration(g.Strictest)
		e.F64(g.Rate)
	case sla.PerQuery:
		e.U8(goalTagPerQuery)
		e.Int(len(g.Deadlines))
		for _, dl := range g.Deadlines {
			e.Duration(dl)
		}
		e.Int(len(g.Strictest))
		for _, st := range g.Strictest {
			e.Duration(st)
		}
		e.F64(g.Rate)
	case sla.Average:
		e.U8(goalTagAverage)
		e.Duration(g.Deadline)
		e.Duration(g.Strictest)
		e.F64(g.Rate)
	case sla.Percentile:
		e.U8(goalTagPercentile)
		e.F64(g.Percent)
		e.Duration(g.Deadline)
		e.Duration(g.Strictest)
		e.F64(g.Rate)
	default:
		return nil, fmt.Errorf("core: cannot persist goal family %T (want MaxLatency, PerQuery, Average, or Percentile)", g)
	}
	return e.Bytes(), nil
}

func decodeGoal(p []byte) (sla.Goal, error) {
	d := store.NewDec(p)
	var g sla.Goal
	switch tag := d.U8(); tag {
	case goalTagMax:
		g = sla.MaxLatency{Deadline: d.Duration(), Strictest: d.Duration(), Rate: d.F64()}
	case goalTagPerQuery:
		pq := sla.PerQuery{}
		n := d.Count(8)
		if d.Err() == nil {
			pq.Deadlines = make([]time.Duration, n)
			for i := range pq.Deadlines {
				pq.Deadlines[i] = d.Duration()
			}
		}
		n = d.Count(8)
		if d.Err() == nil {
			pq.Strictest = make([]time.Duration, n)
			for i := range pq.Strictest {
				pq.Strictest[i] = d.Duration()
			}
		}
		pq.Rate = d.F64()
		if len(pq.Deadlines) != len(pq.Strictest) {
			return nil, fmt.Errorf("%w: PerQuery goal has %d deadlines, %d strictest", store.ErrCorrupt, len(pq.Deadlines), len(pq.Strictest))
		}
		g = pq
	case goalTagAverage:
		g = sla.Average{Deadline: d.Duration(), Strictest: d.Duration(), Rate: d.F64()}
	case goalTagPercentile:
		pct := sla.Percentile{Percent: d.F64(), Deadline: d.Duration(), Strictest: d.Duration(), Rate: d.F64()}
		if d.Err() == nil && (pct.Percent <= 0 || pct.Percent > 100 || math.IsNaN(pct.Percent)) {
			return nil, fmt.Errorf("%w: Percentile goal with percent %g", store.ErrCorrupt, pct.Percent)
		}
		g = pct
	default:
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, fmt.Errorf("%w: unknown goal family tag %d", store.ErrCorrupt, tag)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return g, nil
}

// validateGoal rejects goal parameters that would misbehave at serving
// time against a k-template environment.
func validateGoal(g sla.Goal, k int) error {
	if pq, ok := g.(sla.PerQuery); ok && len(pq.Deadlines) != k {
		return fmt.Errorf("%w: PerQuery goal has %d deadlines for %d templates", store.ErrCorrupt, len(pq.Deadlines), k)
	}
	rate := 0.0
	switch g := g.(type) {
	case sla.MaxLatency:
		rate = g.Rate
	case sla.PerQuery:
		rate = g.Rate
	case sla.Average:
		rate = g.Rate
	case sla.Percentile:
		rate = g.Rate
	}
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
		return fmt.Errorf("%w: goal penalty rate %g", store.ErrCorrupt, rate)
	}
	return nil
}

// ---- env section ----

// storedEnv is the decoded secEnv payload: the template and VM-type tables
// plus the frozen latency matrix (row-major template×type, −1 = cannot
// run).
type storedEnv struct {
	templates []workload.Template
	vmTypes   []cloud.VMType
	lat       []time.Duration
}

func encodeEnv(env *schedule.Env) []byte {
	var e store.Enc
	e.Int(len(env.Templates))
	for _, t := range env.Templates {
		e.String(t.Name)
		e.Duration(t.BaseLatency)
		e.Bool(t.HighRAM)
	}
	e.Int(len(env.VMTypes))
	for _, v := range env.VMTypes {
		e.String(v.Name)
		e.F64(v.StartupCost)
		e.F64(v.RatePerHour)
		e.Duration(v.StartupDelay)
		e.F64(v.HighRAMMultiplier)
		e.Bool(v.SupportsHighRAM)
	}
	for t := range env.Templates {
		for v := range env.VMTypes {
			if lat, ok := env.Latency(t, v); ok {
				e.Duration(lat)
			} else {
				e.Duration(-1)
			}
		}
	}
	return e.Bytes()
}

func decodeEnv(p []byte) (*storedEnv, error) {
	d := store.NewDec(p)
	se := &storedEnv{}
	nT := d.Count(13) // name prefix + latency + highram, minimum 13 bytes
	if d.Err() == nil {
		se.templates = make([]workload.Template, nT)
		for i := range se.templates {
			se.templates[i] = workload.Template{
				ID:          i,
				Name:        d.String(),
				BaseLatency: d.Duration(),
				HighRAM:     d.Bool(),
			}
			if d.Err() == nil && se.templates[i].BaseLatency <= 0 {
				return nil, fmt.Errorf("%w: template %d has non-positive latency", store.ErrCorrupt, i)
			}
		}
	}
	nV := d.Count(37)
	if d.Err() == nil {
		se.vmTypes = make([]cloud.VMType, nV)
		for i := range se.vmTypes {
			se.vmTypes[i] = cloud.VMType{
				ID:                i,
				Name:              d.String(),
				StartupCost:       d.F64(),
				RatePerHour:       d.F64(),
				StartupDelay:      d.Duration(),
				HighRAMMultiplier: d.F64(),
				SupportsHighRAM:   d.Bool(),
			}
		}
	}
	if d.Err() == nil {
		if nT == 0 || nV == 0 {
			return nil, fmt.Errorf("%w: environment with %d templates, %d VM types", store.ErrCorrupt, nT, nV)
		}
		// 64-bit arithmetic: nT and nV are each payload-bounded, but
		// their product could wrap a 32-bit int past this check.
		if int64(nT)*int64(nV) > int64(d.Remaining())/8 {
			return nil, fmt.Errorf("%w: latency matrix needs %dx%d entries, payload has %d bytes", store.ErrTruncated, nT, nV, d.Remaining())
		}
		se.lat = make([]time.Duration, nT*nV)
		for i := range se.lat {
			lat := d.Duration()
			if d.Err() == nil && lat <= 0 && lat != -1 {
				return nil, fmt.Errorf("%w: latency matrix entry %d is %d", store.ErrCorrupt, i, lat)
			}
			se.lat[i] = lat
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return se, nil
}

// matches reports whether env has exactly the stored templates, VM types,
// and latency matrix.
func (se *storedEnv) matches(env *schedule.Env) bool {
	if env == nil || len(env.Templates) != len(se.templates) || len(env.VMTypes) != len(se.vmTypes) {
		return false
	}
	for i, t := range se.templates {
		if env.Templates[i] != t {
			return false
		}
	}
	for i, v := range se.vmTypes {
		if env.VMTypes[i] != v {
			return false
		}
	}
	for t := range se.templates {
		for v := range se.vmTypes {
			lat, ok := env.Latency(t, v)
			stored := se.lat[t*len(se.vmTypes)+v]
			if ok != (stored >= 0) || (ok && lat != stored) {
				return false
			}
		}
	}
	return true
}

// build reconstructs a serving environment. When the standard table
// predictor reproduces the stored matrix exactly — every model trained
// against NewEnv does — the rebuilt Env uses it, so derived (augmented-
// template) models behave identically after a restart. Otherwise the model
// was trained against a custom predictor; the stored matrix itself then
// serves the persisted templates, with the table predictor as the fallback
// for augmented templates the matrix cannot know.
func (se *storedEnv) build() *schedule.Env {
	exact := schedule.NewEnv(se.templates, se.vmTypes)
	if se.matches(exact) {
		return exact
	}
	return &schedule.Env{
		Templates: se.templates,
		VMTypes:   se.vmTypes,
		Pred: &matrixPredictor{
			numTemplates: len(se.templates),
			numTypes:     len(se.vmTypes),
			lat:          se.lat,
		},
	}
}

// matrixPredictor replays a persisted latency matrix for the templates it
// covers and falls back to the exact table predictor for templates outside
// it (the augmented "template + wait" specifications of §6.3, whose
// latencies derive from their inflated BaseLatency).
//
// The fallback is an approximation: the original custom predictor's view
// of an augmented template is unknowable from the matrix alone, so for
// custom-predictor models the warm-start bit-determinism guarantee covers
// fresh and shifted batches but not augmented-template retrains — those
// reproduce the table predictor's latencies instead of the custom
// predictor's. Models trained against the standard table predictor (every
// NewEnv environment) are recognized in build and reproduce exactly
// everywhere. Use Advisor.LoadModel to rebind a custom-predictor model to
// its live environment when the predictor is available in-process.
type matrixPredictor struct {
	numTemplates, numTypes int
	lat                    []time.Duration
}

// Latency implements cloud.Predictor.
func (p *matrixPredictor) Latency(t workload.Template, v cloud.VMType) (time.Duration, bool) {
	if t.ID >= 0 && t.ID < p.numTemplates && v.ID >= 0 && v.ID < p.numTypes {
		lat := p.lat[t.ID*p.numTypes+v.ID]
		if lat < 0 {
			return 0, false
		}
		return lat, true
	}
	return cloud.TablePredictor{}.Latency(t, v)
}

// ---- mix section ----

func encodeMix(mix []float64) []byte {
	var e store.Enc
	e.Bool(mix != nil)
	if mix != nil {
		e.Int(len(mix))
		for _, w := range mix {
			e.F64(w)
		}
	}
	return e.Bytes()
}

func decodeMix(p []byte) ([]float64, error) {
	d := store.NewDec(p)
	var mix []float64
	if d.Bool() {
		n := d.Count(8)
		if d.Err() == nil {
			mix = make([]float64, n)
			for i := range mix {
				mix[i] = d.F64()
				if d.Err() == nil && (math.IsNaN(mix[i]) || math.IsInf(mix[i], 0) || mix[i] < 0) {
					return nil, fmt.Errorf("%w: training mix weight %g", store.ErrCorrupt, mix[i])
				}
			}
		}
	}
	return mix, d.Done()
}

// ---- tree section ----

func encodeTree(t *dt.Tree) ([]byte, error) {
	var e store.Enc
	e.Int(t.NumLabels)
	e.Int(len(t.FeatureNames))
	for _, n := range t.FeatureNames {
		e.String(n)
	}
	nodes := t.Export()
	e.Int(len(nodes))
	for _, n := range nodes {
		e.Bool(n.Leaf)
		e.U32(uint32(n.Label))
		e.U32(uint32(n.Feature))
		e.F64(n.Threshold)
		e.U32(uint32(n.N))
		e.U32(uint32(n.Errs))
	}
	return e.Bytes(), nil
}

func decodeTree(p []byte) (*dt.Tree, error) {
	d := store.NewDec(p)
	numLabels := d.Int()
	nNames := d.Count(4)
	var names []string
	if d.Err() == nil {
		if numLabels <= 0 || numLabels > 1<<20 {
			return nil, fmt.Errorf("%w: tree label domain %d", store.ErrCorrupt, numLabels)
		}
		names = make([]string, nNames)
		for i := range names {
			names[i] = d.String()
		}
	}
	nNodes := d.Count(25) // flags + label + feature + threshold + n + errs
	var nodes []dt.FlatTreeNode
	if d.Err() == nil {
		nodes = make([]dt.FlatTreeNode, nNodes)
		for i := range nodes {
			nodes[i] = dt.FlatTreeNode{
				Leaf:      d.Bool(),
				Label:     int32(d.U32()),
				Feature:   int32(d.U32()),
				Threshold: d.F64(),
				N:         int32(d.U32()),
				Errs:      int32(d.U32()),
			}
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	tree, err := dt.TreeFromExport(nodes, names, numLabels)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", store.ErrCorrupt, err)
	}
	return tree, nil
}

// ---- training-data section ----

func encodeTrainData(samples []trainSample) ([]byte, error) {
	var e store.Enc
	e.Int(len(samples))
	for _, s := range samples {
		e.Int(len(s.w.Queries))
		for _, q := range s.w.Queries {
			e.U32(uint32(q.TemplateID))
			e.U32(uint32(q.Tag))
		}
		e.Bool(s.reuse != nil)
		if s.reuse != nil {
			e.F64(s.reuse.OldCost)
			ce := s.reuse.Closed.Export()
			e.Bytes32(ce.Keys)
			e.Int(len(ce.Offs))
			for _, off := range ce.Offs {
				e.U32(off)
			}
			for _, l := range ce.Lens {
				e.U32(l)
			}
			for _, g := range ce.G {
				e.F64(g)
			}
		}
		// v2 appends the sample's solved action path, so a registry
		// restored from a checkpoint replays unchanged samples instead of
		// re-searching them (v1 files decode without paths and fall back
		// to reuse-assisted re-search), and the weighted draw's unit
		// variates, so a restored warm retrain rebins the stored draws
		// instead of reseeding 500 samplers.
		e.Int(len(s.actions))
		for _, a := range s.actions {
			e.U8(uint8(a.Kind))
			e.U32(uint32(int32(a.Template)))
			e.U32(uint32(int32(a.VMType)))
		}
		e.Int(len(s.variates))
		for _, v := range s.variates {
			e.F64(v)
		}
	}
	return e.Bytes(), nil
}

func decodeTrainData(p []byte, env *schedule.Env, version uint16) ([]trainSample, error) {
	d := store.NewDec(p)
	k, nv := len(env.Templates), len(env.VMTypes)
	n := d.Count(9) // per sample: query count + reuse flag at minimum
	if d.Err() != nil {
		return nil, d.Err()
	}
	samples := make([]trainSample, 0, n)
	for i := 0; i < n; i++ {
		nq := d.Count(8)
		if d.Err() != nil {
			return nil, d.Err()
		}
		queries := make([]workload.Query, nq)
		for j := range queries {
			queries[j] = workload.Query{TemplateID: int(d.U32()), Tag: int(d.U32())}
			if d.Err() == nil && (queries[j].TemplateID < 0 || queries[j].TemplateID >= k) {
				return nil, fmt.Errorf("%w: sample %d query %d references template %d of %d", store.ErrCorrupt, i, j, queries[j].TemplateID, k)
			}
		}
		s := trainSample{w: &workload.Workload{Templates: env.Templates, Queries: queries}}
		if d.Bool() {
			oldCost := d.F64()
			ce := search.ClosedExport{Keys: d.Bytes32()}
			nc := d.Count(16) // off + len + g
			if d.Err() != nil {
				return nil, d.Err()
			}
			ce.Offs = make([]uint32, nc)
			for j := range ce.Offs {
				ce.Offs[j] = d.U32()
			}
			ce.Lens = make([]uint32, nc)
			for j := range ce.Lens {
				ce.Lens[j] = d.U32()
			}
			ce.G = make([]float64, nc)
			for j := range ce.G {
				ce.G[j] = d.F64()
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			closed, err := search.ClosedFromExport(ce)
			if err != nil {
				return nil, fmt.Errorf("%w: sample %d: %v", store.ErrCorrupt, i, err)
			}
			s.reuse = &search.Reuse{OldCost: oldCost, Closed: closed}
		}
		if version >= 2 {
			na := d.Count(9)
			if d.Err() != nil {
				return nil, d.Err()
			}
			if na > 0 {
				s.actions = make([]graph.Action, na)
				for j := range s.actions {
					a := graph.Action{
						Kind:     graph.ActionKind(d.U8()),
						Template: int(int32(d.U32())),
						VMType:   int(int32(d.U32())),
					}
					if d.Err() != nil {
						return nil, d.Err()
					}
					switch a.Kind {
					case graph.Place:
						if a.Template < 0 || a.Template >= k {
							return nil, fmt.Errorf("%w: sample %d action %d places template %d of %d", store.ErrCorrupt, i, j, a.Template, k)
						}
					case graph.Startup:
						if a.VMType < 0 || a.VMType >= nv {
							return nil, fmt.Errorf("%w: sample %d action %d starts VM type %d of %d", store.ErrCorrupt, i, j, a.VMType, nv)
						}
					default:
						return nil, fmt.Errorf("%w: sample %d action %d has kind %d", store.ErrCorrupt, i, j, a.Kind)
					}
					s.actions[j] = a
				}
			}
			nu := d.Count(8)
			if d.Err() != nil {
				return nil, d.Err()
			}
			if nu > 0 {
				s.variates = make([]float64, nu)
				for j := range s.variates {
					v := d.F64()
					if d.Err() == nil && (math.IsNaN(v) || v < 0 || v >= 1) {
						return nil, fmt.Errorf("%w: sample %d variate %d is %g, want [0,1)", store.ErrCorrupt, i, j, v)
					}
					s.variates[j] = v
				}
			}
		}
		samples = append(samples, s)
	}
	return samples, d.Done()
}

// ---- transposition-cache section ----

// encodeCacheData serializes an Export snapshot. Entries are already in
// canonical signature order, so the payload is a pure function of the cache
// contents — encoding the same cache twice yields identical bytes, which the
// canonical-encoding property of EncodeModel depends on.
func encodeCacheData(entries []search.CacheEntry) []byte {
	var e store.Enc
	e.Int(len(entries))
	for _, ce := range entries {
		e.Bytes32(ce.Sig)
		e.F64(ce.Cost)
		e.Int(len(ce.Actions))
		for _, a := range ce.Actions {
			e.U8(uint8(a.Kind))
			e.U32(uint32(int32(a.Template)))
			e.U32(uint32(int32(a.VMType)))
		}
	}
	return e.Bytes()
}

func decodeCacheData(p []byte, env *schedule.Env) ([]search.CacheEntry, error) {
	d := store.NewDec(p)
	k, nv := len(env.Templates), len(env.VMTypes)
	n := d.Count(21) // per entry: sig prefix + cost + action count at minimum
	if d.Err() != nil {
		return nil, d.Err()
	}
	entries := make([]search.CacheEntry, 0, n)
	for i := 0; i < n; i++ {
		ce := search.CacheEntry{Sig: d.Bytes32(), Cost: d.F64()}
		na := d.Count(9)
		if d.Err() != nil {
			return nil, d.Err()
		}
		ce.Actions = make([]graph.Action, na)
		for j := range ce.Actions {
			a := graph.Action{
				Kind:     graph.ActionKind(d.U8()),
				Template: int(int32(d.U32())),
				VMType:   int(int32(d.U32())),
			}
			if d.Err() != nil {
				return nil, d.Err()
			}
			switch a.Kind {
			case graph.Place:
				if a.Template < 0 || a.Template >= k {
					return nil, fmt.Errorf("%w: cache entry %d places template %d of %d", store.ErrCorrupt, i, a.Template, k)
				}
			case graph.Startup:
				if a.VMType < 0 || a.VMType >= nv {
					return nil, fmt.Errorf("%w: cache entry %d starts VM type %d of %d", store.ErrCorrupt, i, a.VMType, nv)
				}
			default:
				return nil, fmt.Errorf("%w: cache entry %d has action kind %d", store.ErrCorrupt, i, a.Kind)
			}
			ce.Actions[j] = a
		}
		if math.IsNaN(ce.Cost) || math.IsInf(ce.Cost, 0) || ce.Cost < 0 {
			return nil, fmt.Errorf("%w: cache entry %d has cost %g", store.ErrCorrupt, i, ce.Cost)
		}
		entries = append(entries, ce)
	}
	return entries, d.Done()
}

// SectionName renders a model-container section ID for inspection output.
func SectionName(id uint32) string {
	switch id {
	case secMeta:
		return "meta"
	case secGoal:
		return "goal"
	case secEnv:
		return "env"
	case secMix:
		return "mix"
	case secTree:
		return "tree"
	case secTrain:
		return "traindata"
	case secCache:
		return "cache"
	default:
		return fmt.Sprintf("section-%d", id)
	}
}

// ---- inspection ----

// ModelInfo summarizes a model file from its cheap sections only — the
// tree and training-data payloads are sized but never decoded (nor
// checksummed), which is what lets `wisedb inspect` describe a large model
// in microseconds.
type ModelInfo struct {
	// FormatVersion is the container version the file was written with
	// (the reader accepts store.MinFormatVersion..store.FormatVersion).
	FormatVersion uint16
	// Sections lists every section with its size and checksum.
	Sections []store.SectionInfo
	// Hash is the parallelism-independent model content hash.
	Hash uint64
	// TrainingTime, TrainingRows, and the cache counters mirror the
	// model's provenance fields.
	TrainingTime           time.Duration
	TrainingRows           int
	CacheHits, CacheMisses int
	// Config is the recorded training configuration.
	Config TrainConfig
	// Goal is the reconstructed SLA goal.
	Goal sla.Goal
	// Templates and VMTypes are the environment tables.
	Templates []workload.Template
	VMTypes   []cloud.VMType
	// Mix is the training arrival mix (nil means uniform).
	Mix []float64
	// HasTrainingData reports whether the model retains its samples.
	HasTrainingData bool
	// HasSearchCache reports whether the model carries a persisted
	// transposition-cache snapshot (format v2+).
	HasSearchCache bool
	// AuxHash is the auxiliary hash over the training-data and cache
	// sections (zero for v1 files, whose Hash covers everything).
	AuxHash uint64
	// WarmSamples and ColdSamples split the training run's samples into
	// warm replays and fresh solves (both zero for cold-trained models).
	WarmSamples, ColdSamples int
}

// InspectModel reads a model's provenance, goal, environment, and mix
// without touching the tree or training-data sections.
func InspectModel(data []byte) (*ModelInfo, error) {
	c, err := store.ParseContainer(data)
	if err != nil {
		return nil, fmt.Errorf("core: inspect model: %w", err)
	}
	meta, err := readSection(c, secMeta, func(p []byte) (modelMeta, error) {
		return decodeMeta(p, c.Version())
	})
	if err != nil {
		return nil, err
	}
	goal, err := readSection(c, secGoal, decodeGoal)
	if err != nil {
		return nil, err
	}
	se, err := readSection(c, secEnv, decodeEnv)
	if err != nil {
		return nil, err
	}
	mix, err := readSection(c, secMix, decodeMix)
	if err != nil {
		return nil, err
	}
	info := &ModelInfo{
		FormatVersion: c.Version(),
		Sections:      c.Sections(),
		Hash:          meta.hash,
		AuxHash:       meta.auxHash,
		TrainingTime:  meta.trainingTime,
		TrainingRows:  meta.trainingRows,
		CacheHits:     meta.cacheHits,
		CacheMisses:   meta.cacheMisses,
		WarmSamples:   meta.warmSamples,
		ColdSamples:   meta.coldSamples,
		Config:        meta.config,
		Goal:          goal,
		Templates:     se.templates,
		VMTypes:       se.vmTypes,
		Mix:           mix,
	}
	for _, s := range c.Sections() {
		switch s.ID {
		case secTrain:
			info.HasTrainingData = true
		case secCache:
			info.HasSearchCache = true
		}
	}
	return info, nil
}
