// Consistent-hash tenant placement: the scale-out layer of the serving
// engine. Tenants are placed onto engine shards — worker-pool partitions
// with shard-local run queues and stream scratch — by consistent hashing on
// tenant ID, so placement is stable, spreads evenly, and moves only a
// 1/shards fraction of tenants when the shard set changes. The placement
// ring is immutable and published through an atomic pointer, exactly the
// model-epoch hot-swap pattern: workers load it once per arrival event, a
// Rebalance takes effect at event boundaries, and a migrating tenant's
// stream state is handed linearly from the old owner to the new one through
// a run queue — never two owners at once, never a dropped or doubled
// arrival.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"wisedb/internal/cloud"
	"wisedb/internal/workload"
)

// TenantID identifies a tenant for consistent-hash placement. IDs may be
// arbitrary 64-bit values (database keys, counters); HashTenantID derives
// one from a name.
type TenantID uint64

// HashTenantID derives a TenantID from a tenant name: FNV-1a finalized by
// SplitMix64, so even short sequential names spread uniformly on the ring.
func HashTenantID(name string) TenantID {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return TenantID(mix64(h))
}

// Tenant is one tenant stream for sharded serving (RunTenants): an identity
// that drives placement, a registry binding (the tenant's SLA tier), and
// the arrival stream to replay.
type Tenant struct {
	// ID places the tenant on the ring. Tenants of one RunTenants call
	// must have distinct IDs.
	ID TenantID
	// Registry names the model registry the tenant's stream binds to; ""
	// binds to DefaultRegistry.
	Registry string
	// Workload is the tenant's arrival stream.
	Workload *workload.Workload
	// Faults, when non-nil, arms the tenant's simulator with a
	// deterministic fault plan (VM failures, stragglers) before serving
	// begins. Faults are per-tenant: each tenant's draws are keyed by its
	// own simulator's rent sequence, so results stay bit-deterministic at
	// any shard count or rebalance timing.
	Faults *cloud.FaultPlan
}

// ringVnodes is the number of virtual nodes per shard on the placement
// ring — enough that tenant load spreads within a few percent of even
// while keeping ring construction and lookup cheap.
const ringVnodes = 64

// hashRing is an immutable consistent-hash ring over the first `active`
// engine shards. shardOf is a binary search over the sorted vnode
// positions; the parallel hashes/shards slices keep the search cache-dense.
type hashRing struct {
	hashes []uint64 // sorted vnode positions
	shards []int    // shards[i] owns the arc ending at hashes[i]
	active int
}

// newHashRing builds the ring for the first active shards. Construction is
// deterministic, so every engine (and every Rebalance back to the same
// count) produces the identical placement.
func newHashRing(active int) *hashRing {
	type point struct {
		hash  uint64
		shard int
	}
	points := make([]point, 0, active*ringVnodes)
	for s := 0; s < active; s++ {
		for v := 0; v < ringVnodes; v++ {
			points = append(points, point{hash: mix64(uint64(s)<<20 | uint64(v)), shard: s})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].hash < points[j].hash })
	r := &hashRing{
		hashes: make([]uint64, len(points)),
		shards: make([]int, len(points)),
		active: active,
	}
	for i, p := range points {
		r.hashes[i] = p.hash
		r.shards[i] = p.shard
	}
	return r
}

// shardOf returns the shard owning a tenant: the first vnode clockwise of
// the tenant's hash, wrapping at the top of the ring.
func (r *hashRing) shardOf(id TenantID) int {
	h := mix64(uint64(id))
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.shards[i]
}

// engineShard is one worker-pool partition of the sharded serving layer.
// Its scratch pool is shard-local: a tenant's stream scratch is recycled by
// the worker that used it, staying warm in that worker's cache instead of
// bouncing through one engine-wide pool at 10k streams.
type engineShard struct {
	pool sync.Pool // *Stream
}

// initShards sizes the shard set and publishes the initial placement ring.
// n <= 0 selects GOMAXPROCS — one shard per core, the worker-pool shape
// under which near-linear scaling is measured.
func (o *OnlineScheduler) initShards(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	o.shards = make([]engineShard, n)
	o.ring.Store(newHashRing(n))
}

// Rebalance republishes the placement ring over the first active shards
// (1 <= active <= the engine's shard count). It is safe during serving:
// workers observe the new ring at their next arrival event and hand every
// tenant that moved to its new owner, exactly once (see ScaleStats'
// Migrations counter). Shrinking drains tenants off the trailing shards;
// re-growing spreads them back — consistent hashing moves only the tenants
// whose arcs changed hands.
func (o *OnlineScheduler) Rebalance(active int) error {
	if active < 1 || active > len(o.shards) {
		return fmt.Errorf("core: Rebalance(%d): engine has %d shards", active, len(o.shards))
	}
	o.ring.Store(newHashRing(active))
	return nil
}

// tenantSlot is one tenant's serving state as it moves between shard
// workers: the stream, its clock, and the arrival cursor. Ownership is
// linear — exactly one worker holds a slot at any instant, and a migration
// hands the slot to the new owner through that shard's run queue (a
// happens-before edge). The stream is therefore always single-owner,
// in-flight arrivals are never split or replayed across a migration, and
// per-tenant results are bit-identical whatever the shard count or
// rebalance timing.
type tenantSlot struct {
	idx    int // position in RunTenants' input/result slices
	id     TenantID
	reg    *ModelRegistry
	w      *workload.Workload
	faults *cloud.FaultPlan
	sh     int // shard last driving this slot

	// Lazily initialized by the first owning worker, so 10k tenants'
	// arrival queues are built in parallel across shards, not serially at
	// submit time.
	clk *SimClock
	q   *arrivalQueue
	s   *Stream
}

// tenantRun is the shared state of one RunTenants invocation: per-shard run
// queues — buffered to the tenant count, so a hand-off can never block on a
// busy receiver — plus result slots and completion/failure plumbing.
// Concurrent RunTenants calls each get their own tenantRun; they share only
// the engine's ring, shards, and caches.
type tenantRun struct {
	queues  []chan *tenantSlot
	results []*OnlineResult
	pending atomic.Int64
	done    chan struct{}
	cancel  context.CancelFunc
	errOnce sync.Once
	err     error
}

// fail records the first error and cancels the run.
func (r *tenantRun) fail(err error) {
	r.errOnce.Do(func() {
		r.err = err
		r.cancel()
	})
}

// finish records one tenant's result and closes done when it was the last.
func (r *tenantRun) finish(idx int, res *OnlineResult) {
	r.results[idx] = res
	if r.pending.Add(-1) == 0 {
		close(r.done)
	}
}

// RunTenants serves many tenant streams over the engine's shards: each
// tenant is placed by consistent hashing on its ID, bound to its registry
// (its SLA tier), and driven to completion by the owning shard's worker —
// with live migration between shards when Rebalance republishes the ring
// mid-run. Results are positional and bit-deterministic for any shard
// count, rebalance timing, or concurrent engine load: a stream's schedule
// depends only on its own arrivals and the deterministically built models.
// The first stream error cancels the run.
//
// This is the scale-out counterpart of RunStreams: same per-stream
// semantics, but placement, scratch locality, and worker count are
// organized for 10k+ concurrent tenants.
func (o *OnlineScheduler) RunTenants(ctx context.Context, tenants []Tenant) ([]*OnlineResult, error) {
	if len(tenants) == 0 {
		return nil, nil
	}
	slots := make([]tenantSlot, len(tenants))
	for i, t := range tenants {
		name := t.Registry
		if name == "" {
			name = DefaultRegistry
		}
		reg := o.RegistryNamed(name)
		if reg == nil {
			return nil, fmt.Errorf("core: tenant %d (id %016x): unknown registry %q", i, uint64(t.ID), name)
		}
		if t.Workload == nil {
			return nil, fmt.Errorf("core: tenant %d (id %016x): nil workload", i, uint64(t.ID))
		}
		if len(t.Workload.Templates) != len(o.env.Templates) {
			return nil, fmt.Errorf("core: tenant %d (id %016x): workload has %d templates, engine expects %d",
				i, uint64(t.ID), len(t.Workload.Templates), len(o.env.Templates))
		}
		slots[i] = tenantSlot{idx: i, id: t.ID, reg: reg, w: t.Workload, faults: t.Faults}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	run := &tenantRun{
		queues:  make([]chan *tenantSlot, len(o.shards)),
		results: make([]*OnlineResult, len(tenants)),
		done:    make(chan struct{}),
		cancel:  cancel,
	}
	run.pending.Store(int64(len(tenants)))
	for i := range run.queues {
		run.queues[i] = make(chan *tenantSlot, len(tenants))
	}
	ring := o.ring.Load()
	for i := range slots {
		run.queues[ring.shardOf(slots[i].id)] <- &slots[i]
	}
	wg := spawnWorkers(len(o.shards), func(sh int) {
		for {
			select {
			case <-run.done:
				return
			case <-ctx.Done():
				return
			case slot := <-run.queues[sh]:
				o.driveSlot(ctx, run, slot, sh)
			}
		}
	})
	wg.Wait()
	// Cancellation can leave slots parked in queues or mid-stream. The
	// workers have exited, so the slots are exclusively ours: return their
	// scratch so ActiveStreams stays truthful.
	for i := range slots {
		if s := slots[i].s; s != nil && run.results[slots[i].idx] == nil {
			o.releaseStream(s, &o.shards[slots[i].sh].pool)
		}
	}
	if run.err != nil {
		return nil, run.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return run.results, nil
}

// driveSlot advances one tenant stream on shard sh until the stream
// completes, migrates away, or the run fails. The placement ring is
// re-loaded once per arrival event — the same load-once discipline as the
// serving epoch — so a Rebalance takes effect exactly at an event boundary:
// the holding worker forwards the slot to its new owner and never touches
// it again.
func (o *OnlineScheduler) driveSlot(ctx context.Context, run *tenantRun, slot *tenantSlot, sh int) {
	if slot.s == nil {
		slot.clk = &SimClock{}
		slot.q = newArrivalQueue(slot.w.Queries)
		slot.s = o.acquireStreamOn(slot.reg, &o.shards[sh].pool, slot.clk)
		if slot.faults != nil {
			slot.s.InjectFaults(slot.faults)
		}
		slot.s.Reserve(len(slot.w.Queries))
	}
	slot.sh = sh
	for {
		if ctx.Err() != nil {
			return // RunTenants reclaims the slot's stream after workers exit
		}
		if owner := o.ring.Load().shardOf(slot.id); owner != sh {
			o.migrations.Add(1)
			run.queues[owner] <- slot // buffered to tenant count: never blocks
			return
		}
		t, batch, ok := slot.q.next()
		if !ok {
			res := slot.s.Finish()
			o.releaseStream(slot.s, &o.shards[sh].pool)
			slot.s = nil
			run.finish(slot.idx, res)
			return
		}
		slot.clk.Advance(t)
		if err := slot.s.Submit(ctx, batch...); err != nil {
			run.fail(fmt.Errorf("core: tenant %d (id %016x): %w", slot.idx, uint64(slot.id), err))
			return
		}
	}
}
