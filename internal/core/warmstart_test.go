package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"wisedb/internal/store"
	"wisedb/internal/workload"
)

// driftServeOptions enables synchronous drift handling so checkpoint tests
// are deterministic.
func driftServeOptions(window int) OnlineOptions {
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: window, Threshold: 1.2, Synchronous: true}
	return opts
}

// A serving engine warm-started from a checkpoint must schedule a given
// arrival stream bit-identically to the engine that wrote the checkpoint:
// same schedules, same costs, same stream-local counters, same epoch. The
// stream uses 10s gaps so the shifted-model path runs — which exercises
// the persisted training data, not just the persisted tree.
func TestWarmStartBitDeterministic(t *testing.T) {
	base := onlineBase(t, 4, 1)
	dir := t.TempDir()
	ms, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := driftServeOptions(20)
	eng1 := NewOnlineScheduler(base, opts)
	if err := eng1.Registry().CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	// Drive one drifted stream: the synchronous retrain installs epoch 1,
	// which the registry checkpoints in the background.
	if _, err := eng1.Run(shiftedStream(base.Env().Templates, 30, 50, 7*time.Minute)); err != nil {
		t.Fatal(err)
	}
	eng1.Registry().Wait()
	stats := eng1.Registry().Stats()
	if stats.Epoch != 1 {
		t.Fatalf("drifted stream should land on epoch 1, got %d", stats.Epoch)
	}
	if stats.Checkpoints != 2 || stats.CheckpointFailures != 0 {
		t.Fatalf("want base + epoch-1 checkpoints, got %+v", stats)
	}

	// The probe stream both engines must schedule identically.
	probe := tenantWorkloads(base.Env().Templates, 1, 12, 10*time.Second, 44)[0]
	res1, err := eng1.Run(probe)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Adaptations == 0 {
		t.Fatal("probe stream never took the shifted-model path; the test would not exercise persisted training data")
	}

	// "Restart": a fresh engine built only from the store.
	eng2, err := NewOnlineSchedulerFromStore(ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.Registry().Current().Epoch; got != 1 {
		t.Fatalf("warm-started engine serves epoch %d, want 1", got)
	}
	res2, err := eng2.Run(probe)
	if err != nil {
		t.Fatal(err)
	}
	if fp1, fp2 := onlineResultFingerprint(res1), onlineResultFingerprint(res2); fp1 != fp2 {
		t.Fatalf("warm-started engine diverges from the original:\noriginal:    %s\nwarm-start:  %s", fp1, fp2)
	}
}

// A checkpoint killed mid-write must not disturb serving — every arrival
// of every stream still completes exactly once across the hot swap — and a
// store reopened afterwards (the restart after a crash) must fall back to
// the last good epoch, from which a new engine warm-starts and serves a
// resumed arrival stream with no dropped or double-scheduled queries. This
// extends PR 4's hot-swap invariant across the persistence boundary.
func TestCheckpointCrashMidWriteFallsBackToLastGoodEpoch(t *testing.T) {
	base := onlineBase(t, 5, 1)
	dir := t.TempDir()
	ms, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng1 := NewOnlineScheduler(base, driftServeOptions(20))
	if err := eng1.Registry().CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	// Every later commit dies mid-write: half the payload lands, then the
	// writer is "killed".
	ms.SetPayloadWriter(func(path string, data []byte) error {
		store.WriteFileAtomic(path, data[:len(data)/2])
		return errors.New("killed mid-write")
	})

	const uniform, skewed = 30, 50
	w := shiftedStream(base.Env().Templates, uniform, skewed, 7*time.Minute)
	res, err := eng1.Run(w)
	if err != nil {
		t.Fatalf("a checkpoint failure must never fail serving: %v", err)
	}
	eng1.Registry().Wait()
	if got, want := len(res.Perf), uniform+skewed; got != want {
		t.Fatalf("%d of %d arrivals completed across the failed checkpoint", got, want)
	}
	stats := eng1.Registry().Stats()
	if stats.Epoch != 1 || stats.Swaps != 1 {
		t.Fatalf("drift swap must land despite checkpoint failure: %+v", stats)
	}
	if stats.CheckpointFailures == 0 || stats.LastCheckpointErr == nil {
		t.Fatalf("checkpoint failure must be recorded: %+v", stats)
	}

	// Restart: reopen the store. The torn epoch-1 file was never
	// acknowledged by the manifest, so recovery sweeps it and the last
	// good epoch is the base checkpoint.
	ms2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lin, _, err := ms2.Latest()
	if err != nil || lin.Epoch != 0 {
		t.Fatalf("want fallback to epoch 0, got epoch %d err %v", lin.Epoch, err)
	}
	eng2, err := NewOnlineSchedulerFromStore(ms2, driftServeOptions(20))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Registry().CheckpointTo(ms2); err != nil {
		t.Fatal(err)
	}
	// Resume: the unprocessed tail of the arrival stream replays against
	// the warm-started engine. Its drift handling starts from a clean
	// baseline, re-detects the still-shifted mix, swaps, and checkpoints
	// the new epoch — this time durably.
	resume := shiftedStream(base.Env().Templates, uniform, skewed, 7*time.Minute)
	res2, err := eng2.Run(resume)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Registry().Wait()
	if got, want := len(res2.Perf), uniform+skewed; got != want {
		t.Fatalf("resumed stream completed %d of %d arrivals", got, want)
	}
	seen := make([]bool, uniform+skewed)
	for _, out := range res2.Outcomes {
		if seen[out.Tag] {
			t.Fatalf("resumed stream double-scheduled tag %d", out.Tag)
		}
		seen[out.Tag] = true
	}
	for tag, ok := range seen {
		if !ok {
			t.Fatalf("resumed stream dropped tag %d", tag)
		}
	}
	if latest, ok := ms2.LatestEpoch(); !ok || latest != 1 {
		t.Fatalf("resumed engine's drift swap was not durably checkpointed: latest %d ok %v", latest, ok)
	}
}

// Checkpoint lineage must record the full audit trail: the base commit,
// then a drift-triggered commit carrying parent epoch, trigger EMD, and
// the observed mix.
func TestCheckpointLineage(t *testing.T) {
	base := onlineBase(t, 5, 1)
	ms, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewOnlineScheduler(base, driftServeOptions(20))
	if err := eng.Registry().CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(shiftedStream(base.Env().Templates, 30, 50, 7*time.Minute)); err != nil {
		t.Fatal(err)
	}
	eng.Registry().Wait()
	entries := ms.Entries()
	if len(entries) != 2 {
		t.Fatalf("want 2 lineage entries, got %d", len(entries))
	}
	b, d := entries[0], entries[1]
	if b.Epoch != 0 || b.Reason != "base" || b.ModelHash == 0 {
		t.Fatalf("base lineage: %+v", b)
	}
	if d.Epoch != 1 || d.Parent != 0 || d.Reason != "drift" || d.EMD <= 1.2 {
		t.Fatalf("drift lineage: %+v", d)
	}
	if len(d.Mix) != 5 || d.Mix[4] < 0.5 {
		t.Fatalf("drift lineage mix does not target the shifted template: %v", d.Mix)
	}
	if b.ModelHash == d.ModelHash {
		t.Fatal("base and drift-retrained models hash identically")
	}
}

// Regression test for the warm-start drift bug: a stream whose detector
// window was filled against one epoch must NOT trigger a retrain the
// moment a different-mix epoch is installed (warm start of an old epoch,
// or a cross-tenant swap) — the stale window says nothing about the new
// baseline. The detector must rebaseline on any epoch install and re-earn
// MinArrivals before it may trigger.
func TestDriftRebaselinesOnAnyEpochInstall(t *testing.T) {
	base := onlineBase(t, 5, 1)
	opts := DefaultOnlineOptions()
	opts.Drift = DriftOptions{Window: 16, Threshold: 0.5, Synchronous: true}
	eng := NewOnlineScheduler(base, opts)
	// Any retrain in this test is spurious: the arrival mix never changes.
	eng.Registry().SetRetrain(func(context.Context, *ModelEpoch, []float64) (*Model, error) {
		return nil, errors.New("spurious drift retrain")
	})

	clk := &SimClock{}
	s := eng.NewStream(clk)
	k := len(base.Env().Templates)
	next := 0
	submit := func() {
		clk.Advance(time.Duration(next) * 7 * time.Minute)
		if err := s.Submit(context.Background(), workload.Query{TemplateID: next % k, Tag: next}); err != nil {
			t.Fatalf("arrival %d: %v", next, err)
		}
		next++
	}
	// Fill the window with uniform arrivals against the uniform epoch-0
	// mix: no drift, detector warmed up past MinArrivals.
	for next < 24 {
		submit()
	}
	// Install an epoch targeting a very different mix (the warm-start /
	// cross-tenant scenario: same model, stale skewed mix).
	skew := make([]float64, k)
	skew[k-1] = 1
	eng.Registry().Swap(base, skew)
	// A handful more uniform arrivals — fewer than the window — must not
	// trigger: the detector rebaselined on the install, so its window no
	// longer claims 24 uniform arrivals were observed against skew.
	for next < 24+8 {
		submit()
	}
	res := s.Finish()
	if res.DriftTriggers != 0 {
		t.Fatalf("stale-window drift fired %d retrains after an epoch install (rebaseline regression)", res.DriftTriggers)
	}
	if stats := eng.Registry().Stats(); stats.Triggers != 0 || stats.Failures != 0 {
		t.Fatalf("registry saw spurious retrains: %+v", stats)
	}
}

// CheckpointTo must refuse a store that records another serving lineage —
// one whose newest epoch is ahead of the registry, or holds a different
// model at the registry's current epoch — instead of silently skipping
// the base commit and then colliding every future epoch number with the
// store's history.
func TestCheckpointToRefusesForeignLineage(t *testing.T) {
	base1 := onlineBase(t, 3, 1)
	base2 := onlineBase(t, 3, 2) // different environment -> different model

	// A store already ahead (epoch 1) of a fresh registry (epoch 0).
	ms, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewModelRegistry(base1)
	if err := r1.CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	r1.Swap(base1, nil)
	r1.Wait()
	if latest, _ := ms.LatestEpoch(); latest != 1 {
		t.Fatalf("setup: store at epoch %d, want 1", latest)
	}
	if err := NewModelRegistry(base1).CheckpointTo(ms); err == nil {
		t.Fatal("attaching a store that is ahead of the registry must be refused")
	}

	// A store holding a different model at the registry's current epoch.
	ms2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := NewModelRegistry(base1).CheckpointTo(ms2); err != nil {
		t.Fatal(err)
	}
	if err := NewModelRegistry(base2).CheckpointTo(ms2); err == nil {
		t.Fatal("attaching a store holding a different epoch-0 model must be refused")
	}
	// The matching registry still attaches cleanly (warm-start pattern).
	r3 := NewModelRegistry(base1)
	if err := r3.CheckpointTo(ms2); err != nil {
		t.Fatalf("re-attaching the store's own lineage must succeed: %v", err)
	}
}

// WarmStart on an empty store must fail loudly rather than serve nothing.
func TestWarmStartEmptyStore(t *testing.T) {
	ms, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOnlineSchedulerFromStore(ms, DefaultOnlineOptions()); !errors.Is(err, store.ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	base := onlineBase(t, 3, 1)
	r := NewModelRegistry(base)
	if _, err := r.WarmStart(ms); !errors.Is(err, store.ErrEmpty) {
		t.Fatalf("registry warm start on empty store: want ErrEmpty, got %v", err)
	}
}

// ModelRegistry.WarmStart must install the stored epoch wholesale —
// number, mix, and model — and evict derived models of the superseded
// epoch from the engine's ω-map like any other install.
func TestRegistryWarmStartInstallsStoredEpoch(t *testing.T) {
	base := onlineBase(t, 4, 1)
	ms, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := NewModelRegistry(base)
	if err := r.CheckpointTo(ms); err != nil {
		t.Fatal(err)
	}
	r.Swap(base, nil)
	r.Wait() // drain the background checkpoint of epoch 1

	eng := NewOnlineScheduler(base, DefaultOnlineOptions())
	s := eng.NewStream(&SimClock{})
	if _, err := s.shiftedModel(context.Background(), eng.Registry().Current(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	ep, err := eng.Registry().WarmStart(ms)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Epoch != 1 {
		t.Fatalf("warm start installed epoch %d, want 1", ep.Epoch)
	}
	if cached := eng.cache.size(); cached != 0 {
		t.Fatalf("warm start left %d superseded derived models cached", cached)
	}
}
