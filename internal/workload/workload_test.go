package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultTemplates(t *testing.T) {
	ts := DefaultTemplates(10)
	if len(ts) != 10 {
		t.Fatalf("want 10 templates, got %d", len(ts))
	}
	if ts[0].BaseLatency != 2*time.Minute || ts[9].BaseLatency != 6*time.Minute {
		t.Fatalf("latency range should span 2-6 minutes, got %s..%s", ts[0].BaseLatency, ts[9].BaseLatency)
	}
	var sum time.Duration
	for i, tpl := range ts {
		if tpl.ID != i {
			t.Fatalf("template %d has ID %d", i, tpl.ID)
		}
		if i > 0 && tpl.BaseLatency <= ts[i-1].BaseLatency {
			t.Fatal("latencies must increase")
		}
		sum += tpl.BaseLatency
	}
	if mean := sum / 10; mean != 4*time.Minute {
		t.Fatalf("mean latency should be 4 minutes (§7.1), got %s", mean)
	}
	low := 0
	for _, tpl := range ts {
		if !tpl.HighRAM {
			low++
		}
	}
	if low != 5 {
		t.Fatalf("want 5 low-RAM templates, got %d", low)
	}
}

func TestDefaultTemplatesSingle(t *testing.T) {
	ts := DefaultTemplates(1)
	if len(ts) != 1 || ts[0].BaseLatency != 2*time.Minute {
		t.Fatalf("unexpected single-template set: %v", ts)
	}
}

func TestUniformSampling(t *testing.T) {
	ts := DefaultTemplates(4)
	s := NewSampler(ts, 42)
	counts := make([]int, 4)
	const n = 40000
	w := s.Uniform(n)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		counts[q.TemplateID]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.23 || frac > 0.27 {
			t.Fatalf("template %d frequency %f, want ~0.25", i, frac)
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	ts := DefaultTemplates(5)
	a := NewSampler(ts, 7).Uniform(100)
	b := NewSampler(ts, 7).Uniform(100)
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatal("same seed must give same workload")
		}
	}
}

func TestWeightedSampling(t *testing.T) {
	ts := DefaultTemplates(3)
	s := NewSampler(ts, 5)
	w := s.Weighted(10000, []float64{0, 0, 1})
	for _, q := range w.Queries {
		if q.TemplateID != 2 {
			t.Fatalf("zero-weight template %d sampled", q.TemplateID)
		}
	}
}

func TestSkewWeights(t *testing.T) {
	uniform := SkewWeights(4, 0, 0)
	for _, w := range uniform {
		if w != 0.25 {
			t.Fatalf("skew=0 must be uniform, got %v", uniform)
		}
	}
	point := SkewWeights(4, 1, 2)
	if point[2] != 1 {
		t.Fatalf("skew=1 must be a point mass, got %v", point)
	}
	// Property: weights always sum to 1 and are non-negative.
	f := func(skewRaw uint8, favRaw uint8) bool {
		skew := float64(skewRaw) / 255
		fav := int(favRaw) % 4
		ws := SkewWeights(4, skew, fav)
		sum := 0.0
		for _, w := range ws {
			if w < 0 {
				return false
			}
			sum += w
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounts(t *testing.T) {
	ts := DefaultTemplates(3)
	w := &Workload{Templates: ts, Queries: []Query{
		{TemplateID: 0}, {TemplateID: 2}, {TemplateID: 2},
	}}
	c := w.Counts()
	if c[0] != 1 || c[1] != 0 || c[2] != 2 {
		t.Fatalf("bad counts %v", c)
	}
}

func TestValidateRejectsBadTemplates(t *testing.T) {
	ts := DefaultTemplates(2)
	w := &Workload{Templates: ts, Queries: []Query{{TemplateID: 5}}}
	if err := w.Validate(); err == nil {
		t.Fatal("want error for out-of-range template")
	}
	bad := &Workload{Templates: []Template{{ID: 1, Name: "x", BaseLatency: time.Minute}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for non-dense template IDs")
	}
}

func TestWithArrivalsSorts(t *testing.T) {
	ts := DefaultTemplates(2)
	w := &Workload{Templates: ts, Queries: []Query{
		{TemplateID: 0, Tag: 0}, {TemplateID: 1, Tag: 1}, {TemplateID: 0, Tag: 2},
	}}
	out := w.WithArrivals([]time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second})
	for i := 1; i < len(out.Queries); i++ {
		if out.Queries[i].Arrival < out.Queries[i-1].Arrival {
			t.Fatal("arrivals not sorted")
		}
	}
	if out.Queries[0].Tag != 1 {
		t.Fatalf("earliest arrival should be tag 1, got %d", out.Queries[0].Tag)
	}
	// Original untouched.
	if w.Queries[0].Arrival != 0 {
		t.Fatal("WithArrivals must not mutate the receiver")
	}
}

func TestFixedDelayArrivals(t *testing.T) {
	a := FixedDelayArrivals(4, time.Second)
	want := []time.Duration{0, time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("at %d: want %s, got %s", i, want[i], a[i])
		}
	}
}

func TestNormalArrivalsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NormalArrivals(100, 250*time.Millisecond, 125*time.Millisecond, rng)
	if a[0] != 0 {
		t.Fatal("first arrival must be 0")
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("arrivals must be non-decreasing")
		}
	}
}

// WithArrivals must be a stable sort: queries arriving at the same instant
// keep their index order, so the tag composition of each same-instant batch
// event is deterministic. The old insertion sort happened to be stable but
// was O(n²) on out-of-order flash-crowd traces; this pins the tie contract
// the replacement must keep.
func TestWithArrivalsStableTies(t *testing.T) {
	templates := DefaultTemplates(3)
	n := 60
	queries := make([]Query, n)
	arrivals := make([]time.Duration, n)
	for i := range queries {
		queries[i] = Query{TemplateID: i % 3, Tag: i}
		// Three interleaved burst instants plus a reversed tail: ties at
		// every instant, inversions throughout.
		arrivals[i] = time.Duration(2-i%3) * time.Minute
	}
	w := &Workload{Templates: templates, Queries: queries}
	out := w.WithArrivals(arrivals)
	// Non-decreasing, and within each instant the original index order.
	lastArrival, lastTag := time.Duration(-1), -1
	for _, q := range out.Queries {
		if q.Arrival < lastArrival {
			t.Fatalf("arrivals out of order: %s after %s", q.Arrival, lastArrival)
		}
		if q.Arrival == lastArrival && q.Tag < lastTag {
			t.Fatalf("tie at %s broke index order: tag %d after %d", q.Arrival, q.Tag, lastTag)
		}
		if q.Arrival != lastArrival {
			lastTag = -1
		}
		lastArrival, lastTag = q.Arrival, q.Tag
	}
	// Bit-determinism: two identical calls agree exactly.
	again := w.WithArrivals(arrivals)
	for i := range out.Queries {
		if out.Queries[i] != again.Queries[i] {
			t.Fatalf("WithArrivals not deterministic at %d: %+v vs %+v", i, out.Queries[i], again.Queries[i])
		}
	}
}

// A fully reversed trace — the worst case for the old O(n²) insertion sort —
// sorts correctly at flash-crowd scale.
func TestWithArrivalsReversedTrace(t *testing.T) {
	templates := DefaultTemplates(2)
	n := 20000
	queries := make([]Query, n)
	arrivals := make([]time.Duration, n)
	for i := range queries {
		queries[i] = Query{TemplateID: i % 2, Tag: i}
		arrivals[i] = time.Duration(n-i) * time.Millisecond
	}
	w := &Workload{Templates: templates, Queries: queries}
	out := w.WithArrivals(arrivals)
	for i, q := range out.Queries {
		if want := time.Duration(i+1) * time.Millisecond; q.Arrival != want {
			t.Fatalf("at %d: arrival %s, want %s", i, q.Arrival, want)
		}
		if q.Tag != n-1-i {
			t.Fatalf("at %d: tag %d, want %d", i, q.Tag, n-1-i)
		}
	}
}
