package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Sampler draws random workloads from a template set. WiSeDB trains on
// uniform direct samples of the templates (§4.2): uniform sampling produces
// both balanced and unbalanced mixes, which is what lets the learned model
// handle skewed runtime workloads (§7.5).
type Sampler struct {
	templates []Template
	rng       *rand.Rand
}

// NewSampler returns a sampler over the given template set seeded
// deterministically. The sampler is not safe for concurrent use.
func NewSampler(templates []Template, seed int64) *Sampler {
	if len(templates) == 0 {
		panic("workload: NewSampler requires at least one template")
	}
	return &Sampler{
		templates: templates,
		rng:       rand.New(rand.NewSource(seed)),
	}
}

// Uniform draws a workload of m queries with template IDs sampled uniformly
// at random (uniform direct sampling, §4.2).
func (s *Sampler) Uniform(m int) *Workload {
	queries := make([]Query, m)
	for i := range queries {
		queries[i] = Query{TemplateID: s.rng.Intn(len(s.templates)), Tag: i}
	}
	return &Workload{Templates: s.templates, Queries: queries}
}

// Weighted draws a workload of m queries where template i is drawn with
// probability proportional to weights[i]. It is used to produce skewed
// runtime workloads (§7.5).
func (s *Sampler) Weighted(m int, weights []float64) *Workload {
	w, _ := s.WeightedVariates(m, weights)
	return w
}

// WeightedVariates is Weighted, additionally returning the unit variates
// consumed — one per query, in query order. The draw is a pure function of
// (variates, weights): WeightedFromVariates rebins the same variates under
// different weights without reconstructing the sampler, which is how a
// warm retrain re-draws every sample workload under a drifted mix without
// paying 500 rand-source seedings (see core's WarmTrain).
func (s *Sampler) WeightedVariates(m int, weights []float64) (*Workload, []float64) {
	if len(weights) != len(s.templates) {
		panic(fmt.Sprintf("workload: Weighted got %d weights for %d templates", len(weights), len(s.templates)))
	}
	variates := make([]float64, m)
	for i := range variates {
		variates[i] = s.rng.Float64()
	}
	return WeightedFromVariates(s.templates, variates, weights), variates
}

// WeightedFromVariates maps unit variates to a workload under weights with
// exactly the inverse-CDF walk Weighted uses: variate i drawn by one
// sampler produces the identical query Weighted would have drawn at
// position i under the same weights.
func WeightedFromVariates(templates []Template, variates, weights []float64) *Workload {
	if len(weights) != len(templates) {
		panic(fmt.Sprintf("workload: Weighted got %d weights for %d templates", len(weights), len(templates)))
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("workload: Weighted requires non-negative weights")
		}
		total += w
	}
	if total <= 0 {
		panic("workload: Weighted requires a positive weight sum")
	}
	queries := make([]Query, len(variates))
	for i, u := range variates {
		r := u * total
		id := len(weights) - 1
		for j, w := range weights {
			if r < w {
				id = j
				break
			}
			r -= w
		}
		queries[i] = Query{TemplateID: id, Tag: i}
	}
	return &Workload{Templates: templates, Queries: queries}
}

// SkewWeights returns a template weight vector that interpolates between the
// uniform distribution (skew=0) and a point mass on a single template
// (skew=1). Together with ChiSquareStatistic this reproduces the skewness
// axis of Figs. 20 and 21.
func SkewWeights(n int, skew float64, favorite int) []float64 {
	if skew < 0 || skew > 1 {
		panic("workload: skew must be in [0,1]")
	}
	if favorite < 0 || favorite >= n {
		panic("workload: favorite template out of range")
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = (1 - skew) / float64(n)
	}
	weights[favorite] += skew
	return weights
}

// WithArrivals returns a copy of w whose queries arrive at the given times.
// Queries are matched to arrival times by index; len(arrivals) must equal
// the workload size. The result is sorted by arrival time; queries arriving
// at the same instant keep their index order (the sort is stable), so the
// tag composition of each same-instant batch event is deterministic.
func (w *Workload) WithArrivals(arrivals []time.Duration) *Workload {
	if len(arrivals) != len(w.Queries) {
		panic(fmt.Sprintf("workload: WithArrivals got %d arrival times for %d queries", len(arrivals), len(w.Queries)))
	}
	queries := make([]Query, len(w.Queries))
	copy(queries, w.Queries)
	for i := range queries {
		queries[i].Arrival = arrivals[i]
	}
	sort.SliceStable(queries, func(i, j int) bool { return queries[i].Arrival < queries[j].Arrival })
	return &Workload{Templates: w.Templates, Queries: queries}
}

// FixedDelayArrivals returns arrival times spaced delay apart: query i
// arrives at i*delay. Used by the online-scheduling experiment (Fig. 18).
func FixedDelayArrivals(n int, delay time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i) * delay
	}
	return out
}

// NormalArrivals returns arrival times whose inter-arrival gaps are drawn
// from a normal distribution with the given mean and standard deviation,
// truncated at zero (Fig. 19 uses mean 1/4s, stddev 1/8s).
func NormalArrivals(n int, mean, stddev time.Duration, rng *rand.Rand) []time.Duration {
	out := make([]time.Duration, n)
	t := time.Duration(0)
	for i := range out {
		gap := time.Duration(rng.NormFloat64()*float64(stddev) + float64(mean))
		if gap < 0 {
			gap = 0
		}
		if i > 0 {
			t += gap
		}
		out[i] = t
	}
	return out
}
