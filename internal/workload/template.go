// Package workload defines query templates, queries, and workloads, and
// provides the workload sampling machinery WiSeDB trains on (§2, §4.2 of the
// paper), including skewed-workload generation controlled by a χ² statistic
// (§7.5).
//
// WiSeDB is agnostic to the SQL text of a template: a template is identified
// with its latency profile across VM types ("queries with identical latency
// can be treated as instances of the same template", §2). Templates here
// therefore carry a name, a base latency, and an optional resource footprint
// used by the cloud substrate to derive per-VM-type latencies.
package workload

import (
	"fmt"
	"time"
)

// Template is a query template (§2): a parameterized query whose instances
// share a latency profile. BaseLatency is the latency on the reference VM
// type (the paper's t2.medium). HighRAM marks templates whose working set
// does not fit in a small instance's memory; the cloud substrate slows these
// down on cheaper VM types (§7.2, "Multiple VM Types").
type Template struct {
	// ID is the index of the template within its template set. IDs are
	// dense: a template set with k templates uses IDs 0..k-1.
	ID int
	// Name is a human-readable label, e.g. "TPC-H Q6".
	Name string
	// BaseLatency is the execution latency of instances of this template
	// on the reference VM type, when executed in isolation.
	BaseLatency time.Duration
	// HighRAM indicates the template needs a large-memory VM to run at
	// full speed.
	HighRAM bool
}

// String implements fmt.Stringer.
func (t Template) String() string {
	return fmt.Sprintf("%s(id=%d,lat=%s)", t.Name, t.ID, t.BaseLatency)
}

// Query is an instance of a template (§2). The Tag distinguishes instances
// of the same template within a workload; it has no semantic meaning.
type Query struct {
	// TemplateID is the ID of the template this query instantiates.
	TemplateID int
	// Tag is a per-workload unique identifier for the query instance.
	Tag int
	// Arrival is the submission time of the query relative to the start
	// of the workload. It is zero for batch workloads and set by the
	// arrival process for online workloads (§6.3).
	Arrival time.Duration
}

// Workload is a multiset of queries drawn from a template set (§3,
// Q = {q1^x, q2^y, ...}).
type Workload struct {
	// Templates is the template set T the queries are drawn from.
	Templates []Template
	// Queries are the instances to schedule.
	Queries []Query
}

// Counts returns the number of queries of each template, indexed by
// template ID.
func (w *Workload) Counts() []int {
	counts := make([]int, len(w.Templates))
	for _, q := range w.Queries {
		counts[q.TemplateID]++
	}
	return counts
}

// Size returns the number of queries in the workload.
func (w *Workload) Size() int { return len(w.Queries) }

// Validate checks that every query references a template in the set and
// that template IDs are dense and self-consistent.
func (w *Workload) Validate() error {
	for i, t := range w.Templates {
		if t.ID != i {
			return fmt.Errorf("workload: template %q has ID %d but is at index %d", t.Name, t.ID, i)
		}
		if t.BaseLatency <= 0 {
			return fmt.Errorf("workload: template %q has non-positive latency %s", t.Name, t.BaseLatency)
		}
	}
	for _, q := range w.Queries {
		if q.TemplateID < 0 || q.TemplateID >= len(w.Templates) {
			return fmt.Errorf("workload: query tag %d references unknown template %d", q.Tag, q.TemplateID)
		}
	}
	return nil
}

// DefaultTemplates returns a template set emulating the paper's experimental
// workload (§7.1): TPC-H templates 1-10 with latencies evenly spaced between
// 2 and 6 minutes (mean 4 minutes). The first half are low-RAM templates
// that run at full speed on small instances (§7.2).
func DefaultTemplates(n int) []Template {
	if n <= 0 {
		panic("workload: DefaultTemplates requires n > 0")
	}
	ts := make([]Template, n)
	lo, hi := 2*time.Minute, 6*time.Minute
	for i := range ts {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		lat := lo + time.Duration(frac*float64(hi-lo))
		ts[i] = Template{
			ID:          i,
			Name:        fmt.Sprintf("TPC-H Q%d", i+1),
			BaseLatency: lat.Round(time.Second),
			HighRAM:     i >= (n+1)/2,
		}
	}
	return ts
}
