package schedule

import (
	"math"
	"strings"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

func env() *Env {
	return NewEnv(workload.DefaultTemplates(5), cloud.DefaultVMTypes(2))
}

func TestPerfComputesQueueWaits(t *testing.T) {
	e := env()
	s := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{
		{TemplateID: 0, Tag: 0}, // 2m
		{TemplateID: 4, Tag: 1}, // 6m
	}}}}
	perf := s.Perf(e)
	if perf[0].Latency != 2*time.Minute {
		t.Fatalf("first query latency: want 2m, got %s", perf[0].Latency)
	}
	if perf[1].Latency != 8*time.Minute {
		t.Fatalf("second query waits for the first: want 8m, got %s", perf[1].Latency)
	}
}

func TestCostMatchesEquationOne(t *testing.T) {
	e := env()
	goal := sla.NewMaxLatency(15*time.Minute, e.Templates, 1)
	s := &Schedule{VMs: []VM{
		{TypeID: 0, Queue: []Placed{{TemplateID: 0, Tag: 0}}},
		{TypeID: 0, Queue: []Placed{{TemplateID: 4, Tag: 1}}},
	}}
	vt := e.VMTypes[0]
	want := 2*vt.StartupCost + vt.RunningCost(2*time.Minute) + vt.RunningCost(6*time.Minute)
	if got := s.Cost(e, goal); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Eq.1 cost: want %g, got %g", want, got)
	}
}

func TestCostIncludesPenalty(t *testing.T) {
	e := env()
	goal := sla.NewMaxLatency(5*time.Minute, e.Templates, 1)
	s := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{{TemplateID: 4, Tag: 0}}}}}
	// 6m latency vs 5m deadline: 60s violation at 1¢/s.
	if pen := s.Penalty(e, goal); pen != 60 {
		t.Fatalf("want 60, got %g", pen)
	}
	if cost := s.Cost(e, goal); cost <= 60 {
		t.Fatalf("cost must include provisioning on top of penalty, got %g", cost)
	}
}

func TestHighRAMLatencyOnSmallType(t *testing.T) {
	e := env()
	// Template 4 is high-RAM; type 1 is t2.small with a slowdown factor.
	lat, ok := e.Latency(4, 1)
	if !ok {
		t.Fatal("t2.small supports high-RAM templates (slower)")
	}
	want := time.Duration(e.VMTypes[1].HighRAMMultiplier * float64(6*time.Minute))
	if lat != want {
		t.Fatalf("high-RAM on small: want %s, got %s", want, lat)
	}
}

func TestCheapestLatencyCost(t *testing.T) {
	e := env()
	// Low-RAM template 0 runs at equal speed on both; small is cheaper.
	c, ok := e.CheapestLatencyCost(0)
	if !ok {
		t.Fatal("template 0 must be runnable")
	}
	want := e.VMTypes[1].RunningCost(2 * time.Minute)
	if math.Abs(c-want) > 1e-12 {
		t.Fatalf("want small-instance cost %g, got %g", want, c)
	}
}

func TestValidate(t *testing.T) {
	e := env()
	w := &workload.Workload{Templates: e.Templates, Queries: []workload.Query{
		{TemplateID: 0, Tag: 0}, {TemplateID: 1, Tag: 1},
	}}
	good := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{
		{TemplateID: 0, Tag: 0}, {TemplateID: 1, Tag: 1},
	}}}}
	if err := good.Validate(e, w); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	empty := &Schedule{VMs: []VM{{TypeID: 0}}}
	if err := empty.Validate(e, nil); err == nil {
		t.Fatal("empty VM must be rejected")
	}
	dup := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{
		{TemplateID: 0, Tag: 0}, {TemplateID: 0, Tag: 0},
	}}}}
	if err := dup.Validate(e, w); err == nil {
		t.Fatal("duplicate tag must be rejected")
	}
	badType := &Schedule{VMs: []VM{{TypeID: 9, Queue: []Placed{{TemplateID: 0, Tag: 0}}}}}
	if err := badType.Validate(e, nil); err == nil {
		t.Fatal("unknown VM type must be rejected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{{TemplateID: 0, Tag: 0}}}}}
	c := s.Clone()
	c.VMs[0].Queue[0].TemplateID = 3
	if s.VMs[0].Queue[0].TemplateID != 0 {
		t.Fatal("Clone must not share queue storage")
	}
}

func TestStringRendering(t *testing.T) {
	s := &Schedule{VMs: []VM{
		{TypeID: 0, Queue: []Placed{{TemplateID: 1}, {TemplateID: 0}}},
		{TypeID: 1, Queue: []Placed{{TemplateID: 2}}},
	}}
	out := s.String()
	if !strings.Contains(out, "vm0=[T1,T0]") || !strings.Contains(out, "vm1=[T2]") {
		t.Fatalf("unexpected rendering %q", out)
	}
}
