package schedule

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

func env() *Env {
	return NewEnv(workload.DefaultTemplates(5), cloud.DefaultVMTypes(2))
}

func TestPerfComputesQueueWaits(t *testing.T) {
	e := env()
	s := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{
		{TemplateID: 0, Tag: 0}, // 2m
		{TemplateID: 4, Tag: 1}, // 6m
	}}}}
	perf := s.Perf(e)
	if perf[0].Latency != 2*time.Minute {
		t.Fatalf("first query latency: want 2m, got %s", perf[0].Latency)
	}
	if perf[1].Latency != 8*time.Minute {
		t.Fatalf("second query waits for the first: want 8m, got %s", perf[1].Latency)
	}
}

func TestCostMatchesEquationOne(t *testing.T) {
	e := env()
	goal := sla.NewMaxLatency(15*time.Minute, e.Templates, 1)
	s := &Schedule{VMs: []VM{
		{TypeID: 0, Queue: []Placed{{TemplateID: 0, Tag: 0}}},
		{TypeID: 0, Queue: []Placed{{TemplateID: 4, Tag: 1}}},
	}}
	vt := e.VMTypes[0]
	want := 2*vt.StartupCost + vt.RunningCost(2*time.Minute) + vt.RunningCost(6*time.Minute)
	if got := s.Cost(e, goal); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Eq.1 cost: want %g, got %g", want, got)
	}
}

func TestCostIncludesPenalty(t *testing.T) {
	e := env()
	goal := sla.NewMaxLatency(5*time.Minute, e.Templates, 1)
	s := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{{TemplateID: 4, Tag: 0}}}}}
	// 6m latency vs 5m deadline: 60s violation at 1¢/s.
	if pen := s.Penalty(e, goal); pen != 60 {
		t.Fatalf("want 60, got %g", pen)
	}
	if cost := s.Cost(e, goal); cost <= 60 {
		t.Fatalf("cost must include provisioning on top of penalty, got %g", cost)
	}
}

func TestHighRAMLatencyOnSmallType(t *testing.T) {
	e := env()
	// Template 4 is high-RAM; type 1 is t2.small with a slowdown factor.
	lat, ok := e.Latency(4, 1)
	if !ok {
		t.Fatal("t2.small supports high-RAM templates (slower)")
	}
	want := time.Duration(e.VMTypes[1].HighRAMMultiplier * float64(6*time.Minute))
	if lat != want {
		t.Fatalf("high-RAM on small: want %s, got %s", want, lat)
	}
}

func TestCheapestLatencyCost(t *testing.T) {
	e := env()
	// Low-RAM template 0 runs at equal speed on both; small is cheaper.
	c, ok := e.CheapestLatencyCost(0)
	if !ok {
		t.Fatal("template 0 must be runnable")
	}
	want := e.VMTypes[1].RunningCost(2 * time.Minute)
	if math.Abs(c-want) > 1e-12 {
		t.Fatalf("want small-instance cost %g, got %g", want, c)
	}
}

func TestValidate(t *testing.T) {
	e := env()
	w := &workload.Workload{Templates: e.Templates, Queries: []workload.Query{
		{TemplateID: 0, Tag: 0}, {TemplateID: 1, Tag: 1},
	}}
	good := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{
		{TemplateID: 0, Tag: 0}, {TemplateID: 1, Tag: 1},
	}}}}
	if err := good.Validate(e, w); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	empty := &Schedule{VMs: []VM{{TypeID: 0}}}
	if err := empty.Validate(e, nil); err == nil {
		t.Fatal("empty VM must be rejected")
	}
	dup := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{
		{TemplateID: 0, Tag: 0}, {TemplateID: 0, Tag: 0},
	}}}}
	if err := dup.Validate(e, w); err == nil {
		t.Fatal("duplicate tag must be rejected")
	}
	badType := &Schedule{VMs: []VM{{TypeID: 9, Queue: []Placed{{TemplateID: 0, Tag: 0}}}}}
	if err := badType.Validate(e, nil); err == nil {
		t.Fatal("unknown VM type must be rejected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := &Schedule{VMs: []VM{{TypeID: 0, Queue: []Placed{{TemplateID: 0, Tag: 0}}}}}
	c := s.Clone()
	c.VMs[0].Queue[0].TemplateID = 3
	if s.VMs[0].Queue[0].TemplateID != 0 {
		t.Fatal("Clone must not share queue storage")
	}
}

func TestStringRendering(t *testing.T) {
	s := &Schedule{VMs: []VM{
		{TypeID: 0, Queue: []Placed{{TemplateID: 1}, {TemplateID: 0}}},
		{TypeID: 1, Queue: []Placed{{TemplateID: 2}}},
	}}
	out := s.String()
	if !strings.Contains(out, "vm0=[T1,T0]") || !strings.Contains(out, "vm1=[T2]") {
		t.Fatalf("unexpected rendering %q", out)
	}
}

// The frozen latency matrix must agree entry-for-entry with the predictor it
// was built from, including the cannot-run cases and the Eq. 3 minima.
func TestEnvFrozenMatrixMatchesPredictor(t *testing.T) {
	e := env()
	for ti := range e.Templates {
		for vi := range e.VMTypes {
			gotLat, gotOK := e.Latency(ti, vi)
			wantLat, wantOK := e.Pred.Latency(e.Templates[ti], e.VMTypes[vi])
			if gotOK != wantOK || gotLat != wantLat {
				t.Fatalf("Latency(%d,%d) = (%s,%v), predictor says (%s,%v)", ti, vi, gotLat, gotOK, wantLat, wantOK)
			}
		}
		cheap, ok := e.CheapestLatencyCost(ti)
		if !ok {
			t.Fatalf("template %d: no cheapest cost", ti)
		}
		want := math.Inf(1)
		fastest := time.Duration(0)
		for vi, vt := range e.VMTypes {
			if lat, ok := e.Pred.Latency(e.Templates[ti], e.VMTypes[vi]); ok {
				if c := vt.RunningCost(lat); c < want {
					want = c
				}
				if fastest == 0 || lat < fastest {
					fastest = lat
				}
			}
		}
		if math.Abs(cheap-want) > 1e-12 {
			t.Fatalf("template %d: cheapest %f, want %f", ti, cheap, want)
		}
		if got, ok := e.FastestLatency(ti); !ok || got != fastest {
			t.Fatalf("template %d: fastest (%s,%v), want (%s,true)", ti, got, ok, fastest)
		}
	}
	if _, ok := e.Latency(-1, 0); ok {
		t.Fatal("out-of-range template must miss")
	}
	if _, ok := e.Latency(0, len(e.VMTypes)); ok {
		t.Fatal("out-of-range VM type must miss")
	}
}

// A struct-literal Env (no NewEnv) must freeze lazily and safely under
// concurrent first use: run with -race.
func TestEnvLazyFreezeConcurrent(t *testing.T) {
	e := &Env{
		Templates: workload.DefaultTemplates(4),
		VMTypes:   cloud.DefaultVMTypes(2),
		Pred:      cloud.TablePredictor{},
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range e.Templates {
				for vi := range e.VMTypes {
					got, ok := e.Latency(ti, vi)
					want, wantOK := cloud.TablePredictor{}.Latency(e.Templates[ti], e.VMTypes[vi])
					if ok != wantOK || got != want {
						t.Errorf("Latency(%d,%d) = (%s,%v), want (%s,%v)", ti, vi, got, ok, want, wantOK)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
