// Package schedule defines workload schedules and the paper's cost model.
// A schedule S is a list of VMs, each holding an ordered queue of queries
// (§3). Its total monetary cost under a performance goal R is
//
//	cost(R,S) = Σ_vm [ f_s + Σ_q f_r × l(q) ] + p(R,S)      (Eq. 1)
//
// i.e. per-VM start-up fees, per-query processing fees, and SLA penalties.
package schedule

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// Env bundles the static context a schedule is evaluated against: the
// template set, the available VM types, and the latency predictor.
//
// An Env is immutable once in use and safe for concurrent use: the first
// latency query freezes the predictor's template×VM-type table into a
// flat matrix, and every later lookup — including the per-edge lookups of
// many concurrent A* searches — is served from that matrix without touching
// the Predictor again. Do not modify Templates, VMTypes, or Pred after the
// Env has been handed to a searcher, model, or scheduler.
type Env struct {
	Templates []workload.Template
	VMTypes   []cloud.VMType
	Pred      cloud.Predictor

	// The once-frozen prediction tables. lat is the template×VM-type
	// latency matrix, flattened row-major; a negative entry means the
	// type cannot run the template. cheapest and fastest hold the Eq. 3
	// per-template minima over VM types (processing cost and latency);
	// cheapest is +Inf and fastest 0 for templates no type can run.
	once     sync.Once
	lat      []time.Duration
	cheapest []float64
	fastest  []time.Duration
}

// NewEnv returns an Env using the exact latency table predictor.
func NewEnv(templates []workload.Template, vmTypes []cloud.VMType) *Env {
	e := &Env{Templates: templates, VMTypes: vmTypes, Pred: cloud.TablePredictor{}}
	e.freeze()
	return e
}

// freeze materializes the latency matrix and the per-template minima. It
// runs at most once; Envs built by NewEnv freeze eagerly, Envs assembled as
// struct literals freeze on first lookup. Predicted latencies are clamped
// to a minimum of 1ns: the matrix encodes "cannot run" as a negative entry
// and "no runnable type" as a zero fastest latency, so a predictor
// reporting a non-positive latency with ok=true would otherwise corrupt
// both sentinels (no real predictor estimates a query at zero time).
func (e *Env) freeze() {
	e.once.Do(func() {
		nT, nV := len(e.Templates), len(e.VMTypes)
		e.lat = make([]time.Duration, nT*nV)
		e.cheapest = make([]float64, nT)
		e.fastest = make([]time.Duration, nT)
		for t := range e.Templates {
			e.cheapest[t] = math.Inf(1)
			for v := range e.VMTypes {
				lat, ok := e.Pred.Latency(e.Templates[t], e.VMTypes[v])
				if !ok {
					e.lat[t*nV+v] = -1
					continue
				}
				if lat < time.Nanosecond {
					lat = time.Nanosecond
				}
				e.lat[t*nV+v] = lat
				if c := e.VMTypes[v].RunningCost(lat); c < e.cheapest[t] {
					e.cheapest[t] = c
				}
				if e.fastest[t] == 0 || lat < e.fastest[t] {
					e.fastest[t] = lat
				}
			}
		}
	})
}

// Latency returns the predicted latency of template templateID on VM type
// typeID; ok is false if the type cannot run the template.
func (e *Env) Latency(templateID, typeID int) (time.Duration, bool) {
	if templateID < 0 || templateID >= len(e.Templates) || typeID < 0 || typeID >= len(e.VMTypes) {
		return 0, false
	}
	e.freeze()
	lat := e.lat[templateID*len(e.VMTypes)+typeID]
	if lat < 0 {
		return 0, false
	}
	return lat, true
}

// CheapestLatencyCost returns the minimum over VM types of
// f_r × l(template, type) — the cheapest possible processing cost for one
// instance of the template. It is the per-query term of the A* heuristic
// (Eq. 3). ok is false if no type can run the template.
func (e *Env) CheapestLatencyCost(templateID int) (float64, bool) {
	if templateID < 0 || templateID >= len(e.Templates) {
		return 0, false
	}
	e.freeze()
	c := e.cheapest[templateID]
	if math.IsInf(c, 1) {
		return 0, false
	}
	return c, true
}

// FastestLatency returns the minimum latency of the template over all VM
// types that can run it; ok is false if no type can.
func (e *Env) FastestLatency(templateID int) (time.Duration, bool) {
	if templateID < 0 || templateID >= len(e.Templates) {
		return 0, false
	}
	e.freeze()
	if e.fastest[templateID] == 0 {
		return 0, false
	}
	return e.fastest[templateID], true
}

// Placed is a query placed in a VM queue.
type Placed struct {
	// TemplateID is the query's template.
	TemplateID int
	// Tag is the query's per-workload identifier.
	Tag int
}

// VM is a rented virtual machine with its ordered processing queue (§3:
// vm_i = [q_1, q_2, ...], processed in that order).
type VM struct {
	// TypeID indexes Env.VMTypes.
	TypeID int
	// Queue holds the queries in execution order.
	Queue []Placed
}

// Schedule is a complete or partial assignment of a workload to VMs.
type Schedule struct {
	VMs []VM
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{VMs: make([]VM, len(s.VMs))}
	for i, vm := range s.VMs {
		out.VMs[i] = VM{TypeID: vm.TypeID, Queue: append([]Placed(nil), vm.Queue...)}
	}
	return out
}

// NumQueries returns the number of queries placed in the schedule.
func (s *Schedule) NumQueries() int {
	n := 0
	for _, vm := range s.VMs {
		n += len(vm.Queue)
	}
	return n
}

// String renders the schedule in the paper's notation, e.g.
// {vm0=[T1,T0], vm0=[T2]}.
func (s *Schedule) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, vm := range s.VMs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "vm%d=[", vm.TypeID)
		for j, q := range vm.Queue {
			if j > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "T%d", q.TemplateID)
		}
		b.WriteString("]")
	}
	b.WriteString("}")
	return b.String()
}

// Perf computes the per-query outcomes of the schedule under env: each
// query's latency is its queue wait plus its own execution time, since
// queries run in isolation and in order (§3, Fig. 3). Queries on VM types
// that cannot run them are reported with a very large latency so that
// penalties surface the mistake rather than hiding it.
func (s *Schedule) Perf(env *Env) []sla.QueryPerf {
	perf := make([]sla.QueryPerf, 0, s.NumQueries())
	for _, vm := range s.VMs {
		elapsed := time.Duration(0)
		for _, q := range vm.Queue {
			lat, ok := env.Latency(q.TemplateID, vm.TypeID)
			if !ok {
				lat = 1000 * time.Hour
			}
			elapsed += lat
			perf = append(perf, sla.QueryPerf{TemplateID: q.TemplateID, Latency: elapsed})
		}
	}
	return perf
}

// ProvisioningCost returns the Eq. 1 cost excluding penalties: start-up fees
// plus processing fees, in cents.
func (s *Schedule) ProvisioningCost(env *Env) float64 {
	total := 0.0
	for _, vm := range s.VMs {
		vt := env.VMTypes[vm.TypeID]
		total += vt.StartupCost
		for _, q := range vm.Queue {
			lat, ok := env.Latency(q.TemplateID, vm.TypeID)
			if !ok {
				lat = 1000 * time.Hour
			}
			total += vt.RunningCost(lat)
		}
	}
	return total
}

// Cost returns the total monetary cost cost(R,S) in cents (Eq. 1).
func (s *Schedule) Cost(env *Env, goal sla.Goal) float64 {
	return s.ProvisioningCost(env) + goal.Penalty(s.Perf(env))
}

// Penalty returns p(R,S) in cents for the schedule.
func (s *Schedule) Penalty(env *Env, goal sla.Goal) float64 {
	return goal.Penalty(s.Perf(env))
}

// Validate checks structural invariants: known VM types, known templates,
// no empty VMs (an optimal schedule never pays a start-up fee for an unused
// VM), and that the schedule places exactly the queries of w (by tag) when
// w is non-nil.
func (s *Schedule) Validate(env *Env, w *workload.Workload) error {
	seen := map[int]int{}
	for i, vm := range s.VMs {
		if vm.TypeID < 0 || vm.TypeID >= len(env.VMTypes) {
			return fmt.Errorf("schedule: vm %d has unknown type %d", i, vm.TypeID)
		}
		if len(vm.Queue) == 0 {
			return fmt.Errorf("schedule: vm %d is empty", i)
		}
		for _, q := range vm.Queue {
			if q.TemplateID < 0 || q.TemplateID >= len(env.Templates) {
				return fmt.Errorf("schedule: query tag %d has unknown template %d", q.Tag, q.TemplateID)
			}
			seen[q.Tag]++
		}
	}
	if w != nil {
		if s.NumQueries() != len(w.Queries) {
			return fmt.Errorf("schedule: has %d queries, workload has %d", s.NumQueries(), len(w.Queries))
		}
		for _, q := range w.Queries {
			if seen[q.Tag] != 1 {
				return fmt.Errorf("schedule: query tag %d placed %d times", q.Tag, seen[q.Tag])
			}
		}
	}
	return nil
}
