package graph

import (
	"math"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

func testProblem(numTemplates, numTypes int) (*Problem, *schedule.Env) {
	env := schedule.NewEnv(workload.DefaultTemplates(numTemplates), cloud.DefaultVMTypes(numTypes))
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	return NewProblem(env, goal), env
}

func wl(env *schedule.Env, templateIDs ...int) *workload.Workload {
	qs := make([]workload.Query, len(templateIDs))
	for i, t := range templateIDs {
		qs[i] = workload.Query{TemplateID: t, Tag: i}
	}
	return &workload.Workload{Templates: env.Templates, Queries: qs}
}

func TestStartVertex(t *testing.T) {
	p, env := testProblem(3, 1)
	s := p.Start(wl(env, 0, 0, 2))
	if s.OpenType != NoVM || s.Wait != 0 {
		t.Fatal("start vertex must have no VM")
	}
	if s.Unassigned[0] != 2 || s.Unassigned[1] != 0 || s.Unassigned[2] != 1 {
		t.Fatalf("bad unassigned counts %v", s.Unassigned)
	}
	if s.IsGoal() {
		t.Fatal("start with queries is not a goal")
	}
	if !p.Start(wl(env)).IsGoal() {
		t.Fatal("empty workload start is a goal")
	}
}

func TestStartupOnlyFromUsefulStates(t *testing.T) {
	p, env := testProblem(2, 1)
	s := p.Start(wl(env, 0, 1))
	if !s.CanStartup() {
		t.Fatal("start vertex must allow renting the first VM")
	}
	s = p.Apply(s, Action{Kind: Startup, VMType: 0})
	if s.CanStartup() {
		t.Fatal("reduction 1: no start-up while the open VM is empty")
	}
	s = p.Apply(s, Action{Kind: Place, Template: 0})
	if !s.CanStartup() {
		t.Fatal("start-up allowed once the open VM has work")
	}
}

func TestPlacementRequiresOpenVMAndAvailability(t *testing.T) {
	p, env := testProblem(2, 1)
	s := p.Start(wl(env, 0))
	if p.CanPlace(s, 0) {
		t.Fatal("cannot place without a VM")
	}
	s = p.Apply(s, Action{Kind: Startup, VMType: 0})
	if !p.CanPlace(s, 0) {
		t.Fatal("placement must be allowed")
	}
	if p.CanPlace(s, 1) {
		t.Fatal("template 1 has no unassigned instances")
	}
	s = p.Apply(s, Action{Kind: Place, Template: 0})
	if p.CanPlace(s, 0) {
		t.Fatal("no instances left")
	}
	if !s.IsGoal() {
		t.Fatal("all queries assigned: goal")
	}
}

func TestPlacementCostMatchesEquationTwo(t *testing.T) {
	p, env := testProblem(2, 1)
	// Tight deadline so penalties appear: deadline = shortest latency.
	p.Goal = sla.NewMaxLatency(env.Templates[0].BaseLatency, env.Templates, 1)
	s := p.Start(wl(env, 0, 1))
	s = p.Apply(s, Action{Kind: Startup, VMType: 0})
	vt := env.VMTypes[0]
	lat0, _ := env.Latency(0, 0)
	c, ok := p.PlacementCost(s, 0)
	if !ok || math.Abs(c-vt.RunningCost(lat0)) > 1e-12 {
		t.Fatalf("penalty-free placement: want %g, got %g", vt.RunningCost(lat0), c)
	}
	// Template 1 exceeds the deadline by its extra latency.
	lat1, _ := env.Latency(1, 0)
	wantPen := (lat1 - env.Templates[0].BaseLatency).Seconds()
	c1, _ := p.PlacementCost(s, 1)
	if math.Abs(c1-(vt.RunningCost(lat1)+wantPen)) > 1e-9 {
		t.Fatalf("violating placement: want %g, got %g", vt.RunningCost(lat1)+wantPen, c1)
	}
}

func TestWaitAccumulates(t *testing.T) {
	p, env := testProblem(3, 1)
	s := p.Start(wl(env, 0, 1, 2))
	s = p.Apply(s, Action{Kind: Startup, VMType: 0})
	s = p.Apply(s, Action{Kind: Place, Template: 2})
	lat2, _ := env.Latency(2, 0)
	if s.Wait != lat2 {
		t.Fatalf("wait after one placement: want %s, got %s", lat2, s.Wait)
	}
	s = p.Apply(s, Action{Kind: Place, Template: 0})
	lat0, _ := env.Latency(0, 0)
	if s.Wait != lat2+lat0 {
		t.Fatalf("wait must accumulate: want %s, got %s", lat2+lat0, s.Wait)
	}
	// A new VM resets the wait.
	s = p.Apply(s, Action{Kind: Startup, VMType: 0})
	if s.Wait != 0 {
		t.Fatal("new VM must have zero wait")
	}
}

func TestSignatureMergesEquivalentStates(t *testing.T) {
	p, env := testProblem(2, 1)
	// Two orders of placing T0 then T1 vs T1 then T0 yield different
	// queue compositions but identical (wait, unassigned) - for a
	// decomposable goal their signatures must match so the search merges
	// them.
	w := wl(env, 0, 0, 0, 1, 1)
	// Same first query (the canonical-ordering bound), different order of
	// the rest.
	a := p.Start(w)
	a = p.Apply(a, Action{Kind: Startup, VMType: 0})
	a = p.Apply(a, Action{Kind: Place, Template: 0})
	a = p.Apply(a, Action{Kind: Place, Template: 0})
	a = p.Apply(a, Action{Kind: Place, Template: 1})
	b := p.Start(w)
	b = p.Apply(b, Action{Kind: Startup, VMType: 0})
	b = p.Apply(b, Action{Kind: Place, Template: 0})
	b = p.Apply(b, Action{Kind: Place, Template: 1})
	b = p.Apply(b, Action{Kind: Place, Template: 0})
	if p.Signature(a) != p.Signature(b) {
		t.Fatal("order-independent states must share a signature (decomposable goal)")
	}
	// Different unassigned counts must not merge.
	c := p.Apply(a, Action{Kind: Place, Template: 0})
	if p.Signature(c) == p.Signature(a) {
		t.Fatal("states with different unassigned counts merged")
	}
	// With symmetry breaking off, even different first queries merge
	// (they have identical futures then).
	p2, _ := testProblem(2, 1)
	p2.NoSymmetryBreaking = true
	x := p2.Start(w)
	x = p2.Apply(x, Action{Kind: Startup, VMType: 0})
	x = p2.Apply(x, Action{Kind: Place, Template: 0})
	x = p2.Apply(x, Action{Kind: Place, Template: 1})
	y := p2.Start(w)
	y = p2.Apply(y, Action{Kind: Startup, VMType: 0})
	y = p2.Apply(y, Action{Kind: Place, Template: 1})
	y = p2.Apply(y, Action{Kind: Place, Template: 0})
	if p2.Signature(x) != p2.Signature(y) {
		t.Fatal("without symmetry breaking, first-query order must not split states")
	}
}

func TestActionsDeterministicOrder(t *testing.T) {
	p, env := testProblem(3, 2)
	s := p.Start(wl(env, 0, 1, 2))
	acts := p.Actions(s)
	// No VM yet: only start-up edges, one per usable type.
	if len(acts) != 2 || acts[0].Kind != Startup || acts[1].Kind != Startup {
		t.Fatalf("start vertex actions: %v", acts)
	}
	s = p.Apply(s, acts[0])
	acts = p.Actions(s)
	// Open empty VM: placements only.
	for _, a := range acts {
		if a.Kind != Place {
			t.Fatalf("empty open VM must not offer start-up, got %v", acts)
		}
	}
}

func TestBuildSchedule(t *testing.T) {
	sched := BuildSchedule([]Action{
		{Kind: Startup, VMType: 0},
		{Kind: Place, Template: 2},
		{Kind: Place, Template: 0},
		{Kind: Startup, VMType: 1},
		{Kind: Place, Template: 1},
	})
	if len(sched.VMs) != 2 {
		t.Fatalf("want 2 VMs, got %d", len(sched.VMs))
	}
	if sched.VMs[0].Queue[0].TemplateID != 2 || sched.VMs[0].Queue[1].TemplateID != 0 {
		t.Fatalf("bad first VM queue %v", sched.VMs[0].Queue)
	}
	if sched.VMs[1].TypeID != 1 || sched.VMs[1].Queue[0].TemplateID != 1 {
		t.Fatalf("bad second VM %v", sched.VMs[1])
	}
}

func TestActionLabelRoundTrip(t *testing.T) {
	const numTemplates = 7
	for label := 0; label < numTemplates+3; label++ {
		a := ActionFromLabel(label, numTemplates)
		if got := a.Label(numTemplates); got != label {
			t.Fatalf("label %d round-tripped to %d", label, got)
		}
	}
}

func TestSymmetryBreakingCanonicalOrder(t *testing.T) {
	p, env := testProblem(3, 1)
	s := p.Start(wl(env, 0, 1, 2))
	s = p.Apply(s, Action{Kind: Startup, VMType: 0})
	s = p.Apply(s, Action{Kind: Place, Template: 1})
	s = p.Apply(s, Action{Kind: Startup, VMType: 0})
	// The previous VM started with template 1: the next VM may open with
	// templates <= 1 only.
	if p.CanPlace(s, 2) {
		t.Fatal("canonical ordering must forbid opening with a larger template")
	}
	if !p.CanPlace(s, 0) {
		t.Fatal("smaller template must be allowed")
	}
	// After the first placement the constraint lifts within the VM.
	s = p.Apply(s, Action{Kind: Place, Template: 0})
	if !p.CanPlace(s, 2) {
		t.Fatal("constraint applies only to the first query of a VM")
	}
	// Disabling symmetry breaking lifts the constraint.
	p.NoSymmetryBreaking = true
	s2 := p.Start(wl(env, 0, 1, 2))
	s2 = p.Apply(s2, Action{Kind: Startup, VMType: 0})
	s2 = p.Apply(s2, Action{Kind: Place, Template: 1})
	s2 = p.Apply(s2, Action{Kind: Startup, VMType: 0})
	if !p.CanPlace(s2, 2) {
		t.Fatal("NoSymmetryBreaking must lift the canonical order")
	}
}
