package graph

import (
	"math/rand"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// ApplyInPlace must reach exactly the state Apply allocates, field by field
// and signature by signature, over randomized valid walks — for every goal
// family and with the symmetry reduction both on and off.
func TestApplyInPlaceMatchesApply(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(4), cloud.DefaultVMTypes(2))
	goals := map[string]sla.Goal{
		"max":        sla.NewMaxLatency(10*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"perquery":   sla.NewPerQuery(2, env.Templates, sla.DefaultPenaltyRate),
		"average":    sla.NewAverage(8*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"percentile": sla.NewPercentile(80, 8*time.Minute, env.Templates, sla.DefaultPenaltyRate),
	}
	for name, goal := range goals {
		for _, noSym := range []bool{false, true} {
			t.Run(name, func(t *testing.T) {
				p := NewProblem(env, goal)
				p.NoSymmetryBreaking = noSym
				rng := rand.New(rand.NewSource(21))
				for trial := 0; trial < 20; trial++ {
					w := workload.NewSampler(env.Templates, int64(trial)).Uniform(8)
					ref := p.Start(w)
					inPlace := p.Start(w)
					for !ref.IsGoal() {
						acts := p.Actions(ref)
						if len(acts) == 0 {
							// A random walk can dead-end under the
							// canonical-ordering reduction (an empty open
							// VM whose remaining templates all exceed the
							// bound); the search abandons such branches.
							if !noSym {
								break
							}
							t.Fatal("dead end with symmetry breaking off")
						}
						a := acts[rng.Intn(len(acts))]
						ref = p.Apply(ref, a)
						p.ApplyInPlace(inPlace, a)
						compareStates(t, p, ref, inPlace)
					}
				}
			})
		}
	}
}

func compareStates(t *testing.T, p *Problem, want, got *State) {
	t.Helper()
	if len(want.Unassigned) != len(got.Unassigned) {
		t.Fatalf("Unassigned length %d vs %d", len(got.Unassigned), len(want.Unassigned))
	}
	for i := range want.Unassigned {
		if want.Unassigned[i] != got.Unassigned[i] {
			t.Fatalf("Unassigned[%d]: %d vs %d", i, got.Unassigned[i], want.Unassigned[i])
		}
	}
	if want.OpenType != got.OpenType {
		t.Fatalf("OpenType: %d vs %d", got.OpenType, want.OpenType)
	}
	if len(want.OpenQueue) != len(got.OpenQueue) {
		t.Fatalf("OpenQueue length %d vs %d", len(got.OpenQueue), len(want.OpenQueue))
	}
	for i := range want.OpenQueue {
		if want.OpenQueue[i] != got.OpenQueue[i] {
			t.Fatalf("OpenQueue[%d]: %d vs %d", i, got.OpenQueue[i], want.OpenQueue[i])
		}
	}
	if want.Wait != got.Wait {
		t.Fatalf("Wait: %s vs %s", got.Wait, want.Wait)
	}
	if want.PrevFirst != got.PrevFirst {
		t.Fatalf("PrevFirst: %d vs %d", got.PrevFirst, want.PrevFirst)
	}
	if w, g := want.Acc.Penalty(), got.Acc.Penalty(); w != g {
		t.Fatalf("Acc.Penalty: %g vs %g", g, w)
	}
	if w, g := p.Signature(want), p.Signature(got); w != g {
		t.Fatalf("Signature: %q vs %q", g, w)
	}
}

// ApplyInPlace must reject the same invalid actions Apply rejects.
func TestApplyInPlacePanicsOnInvalid(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(2), cloud.DefaultVMTypes(1))
	goal := sla.NewMaxLatency(10*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	p := NewProblem(env, goal)
	w := &workload.Workload{Templates: env.Templates, Queries: []workload.Query{{TemplateID: 0}}}
	s := p.Start(w)
	mustPanic(t, "placement with no open VM", func() {
		p.ApplyInPlace(s, Action{Kind: Place, Template: 0})
	})
	mustPanic(t, "unknown VM type", func() {
		p.ApplyInPlace(s, Action{Kind: Startup, VMType: 99})
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", what)
		}
	}()
	fn()
}
