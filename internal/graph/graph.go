// Package graph defines WiSeDB's scheduling graph (§4.3): a weighted DAG
// whose vertices are partial schedules plus remaining queries, and whose
// edges are workload-management actions — renting a VM (start-up edge) or
// placing a query on the most recently rented VM (placement edge). The
// weight of a path from the start vertex to a goal vertex equals the total
// cost (Eq. 1) of the goal vertex's complete schedule, so minimum-cost
// scheduling reduces to shortest path.
//
// Both of the paper's reductions are applied:
//
//  1. a start-up edge exists only when the open (most recent) VM is
//     non-empty, so no path provisions a VM it never uses; and
//  2. placement edges target only the open VM, so each combination of VM
//     types and query orderings is reachable by exactly one path
//     (Lemma 4.1 shows no optimal goal vertex is lost).
//
// Additionally, queries of the same template are interchangeable (§4.3), so
// vertices track per-template unassigned counts rather than query
// identities, and at most one placement edge exists per template.
package graph

import (
	"encoding/binary"
	"sync"
	"time"

	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// ActionKind discriminates the two edge types of the scheduling graph.
type ActionKind int

const (
	// Startup rents a new VM (start-up edge).
	Startup ActionKind = iota
	// Place assigns one query of a template to the open VM
	// (placement edge).
	Place
)

// Action is a workload-management decision: one edge of the scheduling
// graph, and also the label space of the decision-tree model (§4.4: "the
// domain of possible decisions is equal to the sum of the number of query
// templates and the number of VM types").
type Action struct {
	Kind ActionKind
	// VMType is the type to rent when Kind == Startup.
	VMType int
	// Template is the template to place when Kind == Place.
	Template int
}

// Label returns a dense integer encoding of the action for use as a
// classifier label: placements map to [0, |T|) and start-ups to
// [|T|, |T|+|V|).
func (a Action) Label(numTemplates int) int {
	if a.Kind == Place {
		return a.Template
	}
	return numTemplates + a.VMType
}

// ActionFromLabel inverts Label.
func ActionFromLabel(label, numTemplates int) Action {
	if label < numTemplates {
		return Action{Kind: Place, Template: label}
	}
	return Action{Kind: Startup, VMType: label - numTemplates}
}

// NoVM marks a state whose schedule has no VM yet (the start vertex).
const NoVM = -1

// State is a vertex of the scheduling graph. Only the information that can
// influence future costs (plus the open VM's queue, needed for feature
// extraction) is retained: frozen VMs are fully accounted for in the path
// cost and are reconstructed from the action path when needed.
type State struct {
	// Unassigned holds the remaining query count per template (v_u).
	Unassigned []int
	// OpenType is the VM type of the most recently rented VM, or NoVM.
	OpenType int
	// OpenQueue is the template sequence queued on the open VM.
	OpenQueue []int
	// Wait is the total execution time queued on the open VM: the time a
	// newly placed query would wait before starting (§4.4, feature 1).
	Wait time.Duration
	// Acc tracks the penalty of the schedule so far.
	Acc sla.Accumulator
	// PrevFirst is the template of the first query on the previously
	// closed VM, or Unconstrained. It implements a symmetry reduction
	// beyond the paper's two: VM-level permutations of a schedule have
	// identical cost (fees, processing, and penalties all depend only on
	// the multiset of VM queues), so the graph only admits schedules
	// whose VMs are ordered by non-increasing first-query template. At
	// least one canonical ordering exists for every schedule, so no goal
	// cost is lost.
	PrevFirst int
}

// Unconstrained is the PrevFirst value when any template may start the
// open VM.
const Unconstrained = 1 << 30

// Problem bundles everything that defines a scheduling-graph instance: the
// environment (templates, VM types, predictor) and the performance goal.
type Problem struct {
	Env  *schedule.Env
	Goal sla.Goal
	// NoSymmetryBreaking disables the canonical VM ordering reduction.
	// Tests use it to verify the reduction is lossless; production
	// searches leave it off.
	NoSymmetryBreaking bool

	// histOnce/histFree lazily cache sla.PenaltyHistoryFree(Goal) for the
	// ApplyArena fast path (works for struct-literal Problems too).
	histOnce sync.Once
	histFree bool
}

// NewProblem constructs a Problem.
func NewProblem(env *schedule.Env, goal sla.Goal) *Problem {
	return &Problem{Env: env, Goal: goal}
}

// Start returns the start vertex for a workload: all queries unassigned, no
// VM rented.
func (p *Problem) Start(w *workload.Workload) *State {
	return &State{
		Unassigned: w.Counts(),
		OpenType:   NoVM,
		Acc:        sla.NewAccumulator(p.Goal),
		PrevFirst:  Unconstrained,
	}
}

// IsGoal reports whether the state is a goal vertex (no unassigned queries).
func (s *State) IsGoal() bool {
	for _, c := range s.Unassigned {
		if c != 0 {
			return false
		}
	}
	return true
}

// RemainingQueries returns the number of unassigned queries.
func (s *State) RemainingQueries() int {
	n := 0
	for _, c := range s.Unassigned {
		n += c
	}
	return n
}

// CanStartup reports whether a start-up edge may leave this state: the open
// VM must be non-empty (reduction 1) — or absent — and work must remain.
func (s *State) CanStartup() bool {
	if s.IsGoal() {
		return false
	}
	return s.OpenType == NoVM || len(s.OpenQueue) > 0
}

// CanPlace reports whether a placement edge for the template may leave this
// state: an instance must be unassigned and the open VM must support the
// template.
func (p *Problem) CanPlace(s *State, template int) bool {
	if template < 0 || template >= len(s.Unassigned) || s.Unassigned[template] == 0 || s.OpenType == NoVM {
		return false
	}
	if !p.NoSymmetryBreaking && len(s.OpenQueue) == 0 && template > s.PrevFirst {
		return false // canonical VM ordering (see State.PrevFirst)
	}
	_, ok := p.Env.Latency(template, s.OpenType)
	return ok
}

// StartupCost returns the weight of the start-up edge for VM type vt.
func (p *Problem) StartupCost(vt int) float64 {
	return p.Env.VMTypes[vt].StartupCost
}

// PlacementCost returns the weight of the placement edge for the template
// out of state s (Eq. 2): processing cost f_r × l plus the penalty delta.
// ok is false if the edge does not exist.
func (p *Problem) PlacementCost(s *State, template int) (cost float64, ok bool) {
	if !p.CanPlace(s, template) {
		return 0, false
	}
	lat, _ := p.Env.Latency(template, s.OpenType)
	vt := p.Env.VMTypes[s.OpenType]
	completion := s.Wait + lat
	delta := s.Acc.PeekAdd(template, completion) - s.Acc.Penalty()
	return vt.RunningCost(lat) + delta, true
}

// Apply returns the successor state reached by taking the action from s.
// It panics if the action is invalid; use CanStartup/CanPlace first.
func (p *Problem) Apply(s *State, a Action) *State {
	switch a.Kind {
	case Startup:
		if !s.CanStartup() {
			panic("graph: invalid start-up edge")
		}
		if a.VMType < 0 || a.VMType >= len(p.Env.VMTypes) {
			panic("graph: unknown VM type")
		}
		prevFirst := s.PrevFirst
		if len(s.OpenQueue) > 0 {
			prevFirst = s.OpenQueue[0]
		}
		return &State{
			Unassigned: s.Unassigned,
			OpenType:   a.VMType,
			OpenQueue:  nil,
			Wait:       0,
			Acc:        s.Acc,
			PrevFirst:  prevFirst,
		}
	case Place:
		if !p.CanPlace(s, a.Template) {
			panic("graph: invalid placement edge")
		}
		lat, _ := p.Env.Latency(a.Template, s.OpenType)
		unassigned := make([]int, len(s.Unassigned))
		copy(unassigned, s.Unassigned)
		unassigned[a.Template]--
		queue := make([]int, len(s.OpenQueue)+1)
		copy(queue, s.OpenQueue)
		queue[len(s.OpenQueue)] = a.Template
		completion := s.Wait + lat
		return &State{
			Unassigned: unassigned,
			OpenType:   s.OpenType,
			OpenQueue:  queue,
			Wait:       completion,
			Acc:        s.Acc.Add(a.Template, completion),
			PrevFirst:  s.PrevFirst,
		}
	default:
		panic("graph: unknown action kind")
	}
}

// ApplyInPlace is Apply for states the caller exclusively owns: it mutates
// s to the successor instead of allocating one, reusing the Unassigned and
// OpenQueue backing arrays across the whole walk. The serving path threads
// one pooled state through a schedule's entire action sequence this way —
// O(1) amortized per action, zero allocations once the slices have grown —
// whereas the search, which branches states, must use Apply. The successor
// is identical to Apply's in every field; note that s.Acc is advanced via
// Accumulator.Add, which allocates per placement unless s.Acc is a mutable
// accumulator such as *sla.Tracker.
func (p *Problem) ApplyInPlace(s *State, a Action) {
	switch a.Kind {
	case Startup:
		if !s.CanStartup() {
			panic("graph: invalid start-up edge")
		}
		if a.VMType < 0 || a.VMType >= len(p.Env.VMTypes) {
			panic("graph: unknown VM type")
		}
		if len(s.OpenQueue) > 0 {
			s.PrevFirst = s.OpenQueue[0]
		}
		s.OpenType = a.VMType
		s.OpenQueue = s.OpenQueue[:0]
		s.Wait = 0
	case Place:
		if !p.CanPlace(s, a.Template) {
			panic("graph: invalid placement edge")
		}
		lat, _ := p.Env.Latency(a.Template, s.OpenType)
		s.Unassigned[a.Template]--
		s.OpenQueue = append(s.OpenQueue, a.Template)
		completion := s.Wait + lat
		s.Wait = completion
		s.Acc = s.Acc.Add(a.Template, completion)
	default:
		panic("graph: unknown action kind")
	}
}

// Actions returns the out-edges of s in a deterministic order: placement
// edges by template ID, then start-up edges by VM type. A start-up edge for
// type vt is offered only if vt can run at least one unassigned template
// (renting a VM nothing can use is never optimal and never reaches a goal
// with the reductions in force).
func (p *Problem) Actions(s *State) []Action {
	return p.AppendActions(nil, s)
}

// AppendActions appends the out-edges of s to buf in the same deterministic
// order as Actions and returns the extended slice. It is the
// allocation-free form used on the search hot path: the caller reuses one
// scratch buffer per expansion.
func (p *Problem) AppendActions(buf []Action, s *State) []Action {
	for t := range s.Unassigned {
		if p.CanPlace(s, t) {
			buf = append(buf, Action{Kind: Place, Template: t})
		}
	}
	if s.CanStartup() {
		for _, vt := range p.Env.VMTypes {
			usable := false
			for t, c := range s.Unassigned {
				if c == 0 {
					continue
				}
				if _, ok := p.Env.Latency(t, vt.ID); ok {
					usable = true
					break
				}
			}
			if usable {
				buf = append(buf, Action{Kind: Startup, VMType: vt.ID})
			}
		}
	}
	return buf
}

// Signature returns a canonical byte-string key identifying all state that
// can influence future costs: unassigned counts, open VM type, queued wait
// time, the canonical-ordering bound (when the symmetry reduction is
// active), and the goal-specific penalty summary. Two states with equal
// signatures have identical reachable futures, so the search keeps only the
// cheapest. The open queue's composition is deliberately excluded: future
// placement costs depend on it only through Wait, Acc, and the ordering
// bound.
func (p *Problem) Signature(s *State) string {
	return string(p.AppendSignature(make([]byte, 0, 8*len(s.Unassigned)+16), s))
}

// AppendSignature appends the state's Signature bytes to buf and returns the
// extended slice. It is the allocation-free form used on the search hot
// path: callers reuse one scratch buffer per search and intern the bytes
// into dense ids instead of materializing a string per expanded edge.
func (p *Problem) AppendSignature(buf []byte, s *State) []byte {
	for _, c := range s.Unassigned {
		buf = binary.AppendVarint(buf, int64(c))
	}
	buf = binary.AppendVarint(buf, int64(s.OpenType))
	buf = binary.AppendVarint(buf, int64(s.Wait/time.Millisecond))
	if !p.NoSymmetryBreaking {
		buf = binary.AppendVarint(buf, int64(s.OrderingBound()))
	}
	return s.Acc.AppendSignature(buf)
}

// orderingBound returns the template bound the canonical VM ordering
// imposes on reachable futures: the open VM's first query once one is
// placed (it becomes the next VM's PrevFirst), or PrevFirst while the open
// VM is empty. It is the only ordering state a signature must retain.
func (s *State) OrderingBound() int {
	if len(s.OpenQueue) > 0 {
		return s.OpenQueue[0]
	}
	return s.PrevFirst
}

// BuildSchedule replays an action path from the start vertex into a
// concrete Schedule.
func BuildSchedule(actions []Action) *schedule.Schedule {
	s := &schedule.Schedule{}
	tag := 0
	for _, a := range actions {
		switch a.Kind {
		case Startup:
			s.VMs = append(s.VMs, schedule.VM{TypeID: a.VMType})
		case Place:
			if len(s.VMs) == 0 {
				panic("graph: placement before any start-up action")
			}
			vm := &s.VMs[len(s.VMs)-1]
			vm.Queue = append(vm.Queue, schedule.Placed{TemplateID: a.Template, Tag: tag})
			tag++
		}
	}
	return s
}
