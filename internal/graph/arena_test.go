package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// arenaGoals returns one goal per accumulator class: history-free
// (ApplyArena shares the accumulator) and history-bearing (ApplyArena must
// advance it like Apply).
func arenaGoals(env *schedule.Env) map[string]sla.Goal {
	return map[string]sla.Goal{
		"max":        sla.NewMaxLatency(12*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"perquery":   sla.NewPerQuery(2, env.Templates, sla.DefaultPenaltyRate),
		"average":    sla.NewAverage(8*time.Minute, env.Templates, sla.DefaultPenaltyRate),
		"percentile": sla.NewPercentile(80, 8*time.Minute, env.Templates, sla.DefaultPenaltyRate),
	}
}

// ApplyArena must agree with Apply on every observable the search derives
// from a state: signature, goal test, action set, placement costs of the
// successors, and — for history-bearing goals — the accumulator itself.
// For history-free goals the shared accumulator makes Penalty() stale by
// design; the penalty-relevant part of edge weights telescopes, which is
// exactly what the placement-cost comparison verifies.
func TestApplyArenaMatchesApply(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(4), cloud.DefaultVMTypes(2))
	for name, goal := range arenaGoals(env) {
		for _, noSym := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/sym=%v", name, !noSym), func(t *testing.T) {
				prob := NewProblem(env, goal)
				prob.NoSymmetryBreaking = noSym
				ref := NewProblem(env, goal)
				ref.NoSymmetryBreaking = noSym
				var ar Arena
				rng := rand.New(rand.NewSource(7))
				sampler := workload.NewSampler(env.Templates, 19)
				for trial := 0; trial < 20; trial++ {
					ar.Reset()
					w := sampler.Uniform(6)
					a := prob.Start(w)
					b := ref.Start(w)
					for step := 0; !b.IsGoal(); step++ {
						actsA := prob.Actions(a)
						actsB := ref.Actions(b)
						if len(actsA) != len(actsB) {
							t.Fatalf("trial %d step %d: %d actions vs %d", trial, step, len(actsA), len(actsB))
						}
						for i := range actsA {
							if actsA[i] != actsB[i] {
								t.Fatalf("trial %d step %d: action %d differs: %+v vs %+v", trial, step, i, actsA[i], actsB[i])
							}
						}
						for _, act := range actsA {
							if act.Kind != Place {
								continue
							}
							ca, oka := prob.PlacementCost(a, act.Template)
							cb, okb := ref.PlacementCost(b, act.Template)
							if oka != okb || ca != cb {
								t.Fatalf("trial %d step %d: placement cost T%d: (%v,%v) vs (%v,%v)", trial, step, act.Template, ca, oka, cb, okb)
							}
						}
						if got, want := prob.Signature(a), ref.Signature(b); got != want {
							t.Fatalf("trial %d step %d: signature %q vs %q", trial, step, got, want)
						}
						if len(actsA) == 0 {
							// The canonical-ordering reduction can dead-end
							// a random walk (both problems agree it does).
							break
						}
						act := actsA[rng.Intn(len(actsA))]
						a = prob.ApplyArena(&ar, a, act)
						b = ref.Apply(b, act)
						if a.IsGoal() != b.IsGoal() || a.Wait != b.Wait || a.OpenType != b.OpenType || a.PrevFirst != b.PrevFirst {
							t.Fatalf("trial %d step %d: state fields diverge: %+v vs %+v", trial, step, a, b)
						}
						if !sla.PenaltyHistoryFree(goal) && a.Acc.Penalty() != b.Acc.Penalty() {
							t.Fatalf("trial %d step %d: accumulator penalty %v vs %v", trial, step, a.Acc.Penalty(), b.Acc.Penalty())
						}
					}
				}
			})
		}
	}
}

// Parent states must stay intact when ApplyArena branches several children
// off one state (the search expands every out-edge of a node).
func TestApplyArenaBranchingPreservesParent(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(1))
	goal := sla.NewMaxLatency(10*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	prob := NewProblem(env, goal)
	prob.NoSymmetryBreaking = true
	var ar Arena
	w := workload.NewSampler(env.Templates, 5).Uniform(5)
	s := prob.Start(w)
	s = prob.ApplyArena(&ar, s, Action{Kind: Startup, VMType: 0})
	s = prob.ApplyArena(&ar, s, Action{Kind: Place, Template: s.firstUnassigned()})
	sig := prob.Signature(s)
	var children []*State
	for _, act := range prob.Actions(s) {
		children = append(children, prob.ApplyArena(&ar, s, act))
	}
	if got := prob.Signature(s); got != sig {
		t.Fatalf("parent signature changed after branching: %q -> %q", sig, got)
	}
	for i, c := range children {
		if c == s {
			t.Fatalf("child %d aliases its parent", i)
		}
	}
}

// firstUnassigned returns a template with remaining instances (test helper).
func (s *State) firstUnassigned() int {
	for t, c := range s.Unassigned {
		if c > 0 {
			return t
		}
	}
	return -1
}

// AppendActions must reuse the caller's buffer and match Actions exactly.
func TestAppendActionsReusesBuffer(t *testing.T) {
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(2))
	goal := sla.NewMaxLatency(10*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	prob := NewProblem(env, goal)
	w := workload.NewSampler(env.Templates, 11).Uniform(6)
	s := prob.Start(w)
	buf := make([]Action, 0, 16)
	for step := 0; !s.IsGoal(); step++ {
		buf = prob.AppendActions(buf[:0], s)
		ref := prob.Actions(s)
		if len(buf) != len(ref) {
			t.Fatalf("step %d: AppendActions %d actions, Actions %d", step, len(buf), len(ref))
		}
		for i := range ref {
			if buf[i] != ref[i] {
				t.Fatalf("step %d: action %d differs", step, i)
			}
		}
		s = prob.Apply(s, ref[0])
	}
}
