package graph

import (
	"wisedb/internal/sla"
)

// Arena bump-allocates States and their backing int slices for a search
// that generates many short-lived branching states. All allocations live
// until Reset; a search resets the arena between runs and Release()s it
// before parking it in a pool so idle arenas pin nothing.
//
// An Arena is owned by exactly one search at a time and is not safe for
// concurrent use.
type Arena struct {
	stateChunks [][]State
	chunk, used int

	slabs     [][]int
	slab, off int
}

const (
	stateChunkSize = 512
	intSlabSize    = 4096
)

// Reset rewinds the arena, retaining all allocated capacity. States handed
// out before the call must no longer be used.
func (a *Arena) Reset() {
	a.chunk, a.used = 0, 0
	a.slab, a.off = 0, 0
}

// Release zeroes every State the arena handed out since its last Reset, so
// that a pooled idle arena does not pin accumulators or slice backing
// arrays, then rewinds. The int slabs hold no pointers and are kept as-is.
func (a *Arena) Release() {
	for i := 0; i <= a.chunk && i < len(a.stateChunks); i++ {
		c := a.stateChunks[i]
		n := stateChunkSize
		if i == a.chunk {
			n = a.used
		}
		for j := 0; j < n; j++ {
			c[j] = State{}
		}
	}
	a.Reset()
}

// newState bump-allocates a State.
func (a *Arena) newState() *State {
	if a.chunk == len(a.stateChunks) {
		a.stateChunks = append(a.stateChunks, make([]State, stateChunkSize))
	}
	s := &a.stateChunks[a.chunk][a.used]
	if a.used++; a.used == stateChunkSize {
		a.chunk++
		a.used = 0
	}
	return s
}

// ints carves a full-capacity slice of n ints from the arena slabs. The
// caller must overwrite every element.
func (a *Arena) ints(n int) []int {
	if n > intSlabSize {
		return make([]int, n)
	}
	if a.slab < len(a.slabs) && a.off+n > intSlabSize {
		a.slab++
		a.off = 0
	}
	if a.slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]int, intSlabSize))
		a.off = 0
	}
	s := a.slabs[a.slab][a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// ApplyArena is Apply for branching searches: the successor State and its
// Unassigned/OpenQueue backing arrays are drawn from the arena instead of
// the heap, so an expansion-heavy search allocates nothing per edge once
// the arena has grown. Successors are identical to Apply's in every field,
// with one deliberate exception: for penalty-history-free goals
// (sla.PenaltyHistoryFree) the accumulator is shared unchanged from the
// parent rather than advanced. Every quantity a search derives from a
// state — edge weights (PeekAdd − Penalty telescopes for history-free
// goals), signatures (history-free accumulators append no bytes), goal
// tests, action sets — is unaffected; only Acc.Penalty() itself goes stale,
// so arena states must not escape to consumers that read absolute
// penalties. Callers exporting a path replay it with Apply.
func (p *Problem) ApplyArena(ar *Arena, s *State, a Action) *State {
	switch a.Kind {
	case Startup:
		if !s.CanStartup() {
			panic("graph: invalid start-up edge")
		}
		if a.VMType < 0 || a.VMType >= len(p.Env.VMTypes) {
			panic("graph: unknown VM type")
		}
		prevFirst := s.PrevFirst
		if len(s.OpenQueue) > 0 {
			prevFirst = s.OpenQueue[0]
		}
		child := ar.newState()
		*child = State{
			Unassigned: s.Unassigned,
			OpenType:   a.VMType,
			OpenQueue:  nil,
			Wait:       0,
			Acc:        s.Acc,
			PrevFirst:  prevFirst,
		}
		return child
	case Place:
		if !p.CanPlace(s, a.Template) {
			panic("graph: invalid placement edge")
		}
		lat, _ := p.Env.Latency(a.Template, s.OpenType)
		unassigned := ar.ints(len(s.Unassigned))
		copy(unassigned, s.Unassigned)
		unassigned[a.Template]--
		queue := ar.ints(len(s.OpenQueue) + 1)
		copy(queue, s.OpenQueue)
		queue[len(s.OpenQueue)] = a.Template
		completion := s.Wait + lat
		acc := s.Acc
		if !p.historyFree() {
			acc = s.Acc.Add(a.Template, completion)
		}
		child := ar.newState()
		*child = State{
			Unassigned: unassigned,
			OpenType:   s.OpenType,
			OpenQueue:  queue,
			Wait:       completion,
			Acc:        acc,
			PrevFirst:  s.PrevFirst,
		}
		return child
	default:
		panic("graph: unknown action kind")
	}
}

// historyFree caches sla.PenaltyHistoryFree(p.Goal) on first use.
func (p *Problem) historyFree() bool {
	p.histOnce.Do(func() { p.histFree = sla.PenaltyHistoryFree(p.Goal) })
	return p.histFree
}
