package cloud

import (
	"math"
	"testing"
	"time"
)

func flatType() VMType {
	return VMType{ID: 0, Name: "flat", StartupCost: 10, RatePerHour: 60, HighRAMMultiplier: 1, SupportsHighRAM: true}
}

func TestPriceScheduleAt(t *testing.T) {
	p := NewPriceSchedule(
		PriceStep{Start: 0, Multiplier: 1},
		PriceStep{Start: time.Hour, Multiplier: 3},
		PriceStep{Start: 2 * time.Hour, Multiplier: 0.5},
	)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1}, {30 * time.Minute, 1}, {time.Hour, 3}, {90 * time.Minute, 3},
		{2 * time.Hour, 0.5}, {100 * time.Hour, 0.5},
	}
	for _, c := range cases {
		if got := p.At(c.at); got != c.want {
			t.Fatalf("At(%s) = %g, want %g", c.at, got, c.want)
		}
	}
	var nilSched *PriceSchedule
	if got := nilSched.At(time.Hour); got != 1 {
		t.Fatalf("nil schedule At = %g, want 1", got)
	}
	if got := nilSched.EffectiveHours(0, 90*time.Minute); got != 1.5 {
		t.Fatalf("nil schedule EffectiveHours = %g, want 1.5", got)
	}
}

func TestPriceScheduleEffectiveHours(t *testing.T) {
	p := NewPriceSchedule(
		PriceStep{Start: 0, Multiplier: 1},
		PriceStep{Start: time.Hour, Multiplier: 2},
		PriceStep{Start: 3 * time.Hour, Multiplier: 4},
	)
	cases := []struct {
		start, end time.Duration
		want       float64
	}{
		{0, time.Hour, 1},                                // single segment
		{30 * time.Minute, 90 * time.Minute, 1.5},        // spans one step: 0.5×1 + 0.5×2
		{0, 4 * time.Hour, 9},                            // 1×1 + 2×2 + 1×4
		{2 * time.Hour, 2*time.Hour + 30*time.Minute, 1}, // inside segment 2
		{5 * time.Hour, 6 * time.Hour, 4},                // past the last step
		{time.Hour, time.Hour, 0},                        // empty interval
	}
	for _, c := range cases {
		if got := p.EffectiveHours(c.start, c.end); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("EffectiveHours(%s, %s) = %g, want %g", c.start, c.end, got, c.want)
		}
	}
}

// The satellite regression: a VM leased across a price step must be charged
// per the schedule in effect over each part of its lease. Snapshotting the
// price at rent time — the natural bug — would charge the whole run at the
// cheap multiplier the VM was rented under.
func TestSimChargesLeaseAcrossPriceSteps(t *testing.T) {
	vt := flatType() // 60¢/hr, 10¢ start-up, zero startup delay
	p := NewPriceSchedule(
		PriceStep{Start: 0, Multiplier: 1},
		PriceStep{Start: time.Hour, Multiplier: 3},
	)
	s := NewSim()
	s.SetPrices(p)
	vm := s.Rent(vt, 30*time.Minute)
	vm.Enqueue(0, 0, 30*time.Minute, time.Hour) // runs [30m, 90m): half cheap, half 3x
	s.Finish()

	// start-up at t=30m (mult 1) + 60¢/hr × (0.5h×1 + 0.5h×3) = 10 + 120.
	want := 10.0 + 60*(0.5+1.5)
	got := s.ProvisioningCost()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("lease across price step charged %g¢, want %g¢ (snapshot-at-rent would be %g¢)",
			got, want, 10.0+60*1.0)
	}
}

// The start-up fee is charged at the rent instant's multiplier, and a flat
// all-1.0 schedule reproduces the unpriced accounting bit-exactly.
func TestSimPriceAccountingEdges(t *testing.T) {
	vt := flatType()
	build := func(p *PriceSchedule) *Sim {
		s := NewSim()
		s.SetPrices(p)
		vm := s.Rent(vt, 2*time.Hour) // rented in the expensive window
		vm.Enqueue(0, 0, 2*time.Hour, 30*time.Minute)
		s.Finish()
		return s
	}
	spike := NewPriceSchedule(
		PriceStep{Start: 0, Multiplier: 1},
		PriceStep{Start: time.Hour, Multiplier: 5},
	)
	got := build(spike).ProvisioningCost()
	want := 10.0*5 + 60*0.5*5
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("expensive-window rent charged %g¢, want %g¢", got, want)
	}

	flat := NewPriceSchedule(PriceStep{Start: 0, Multiplier: 1})
	if a, b := build(flat).ProvisioningCost(), build(nil).ProvisioningCost(); a != b {
		t.Fatalf("all-1.0 schedule %g¢ != unpriced %g¢", a, b)
	}
}

// Spot paths are pure functions of their inputs, stay in bounds, and hold
// their last multiplier forever.
func TestSpotDeterministicAndBounded(t *testing.T) {
	a := Spot(7, time.Hour, 48, 0.5, 2.0)
	b := Spot(7, time.Hour, 48, 0.5, 2.0)
	sa, sb := a.Steps(), b.Steps()
	if len(sa) != 48 {
		t.Fatalf("want 48 steps, got %d", len(sa))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same-seed spot paths diverge at step %d: %+v vs %+v", i, sa[i], sb[i])
		}
		if sa[i].Multiplier < 0.5 || sa[i].Multiplier > 2.0 {
			t.Fatalf("step %d multiplier %g out of [0.5, 2.0]", i, sa[i].Multiplier)
		}
		if sa[i].Start != time.Duration(i)*time.Hour {
			t.Fatalf("step %d starts at %s, want %s", i, sa[i].Start, time.Duration(i)*time.Hour)
		}
	}
	if c := Spot(8, time.Hour, 48, 0.5, 2.0).Steps(); c[10] == sa[10] && c[20] == sa[20] && c[30] == sa[30] {
		t.Fatal("different seeds should draw different paths")
	}
	if last, beyond := a.At(47*time.Hour), a.At(1000*time.Hour); last != beyond {
		t.Fatalf("final multiplier must hold forever: %g vs %g", last, beyond)
	}
}

// EffectiveHours is allocation-free: it sits on cost paths called once per
// VM per accounting pass, and the serving engine's price lookups must not
// break the 0 allocs/arrival pin.
func TestPriceLookupsAllocFree(t *testing.T) {
	p := Spot(3, time.Hour, 24, 0.5, 2.0)
	allocs := testing.AllocsPerRun(100, func() {
		_ = p.At(13 * time.Hour)
		_ = p.EffectiveHours(90*time.Minute, 7*time.Hour)
	})
	if allocs != 0 {
		t.Fatalf("price lookups allocate %.1f/op, want 0", allocs)
	}
}
