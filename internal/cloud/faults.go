package cloud

import "time"

// FaultSpec describes the fault mix a simulator injects. The zero value
// injects nothing.
type FaultSpec struct {
	// VMFailureRate is the probability that a rented VM fails at some point
	// during the simulation. A failed VM stops accepting work, keeps the
	// runs it completed before the failure instant, and loses the run that
	// was in progress plus its unstarted queue (CollectFailed reports the
	// affected tags so the caller can re-admit them).
	VMFailureRate float64
	// VMMinLifetime and VMMaxLifetime bound how long a doomed VM lives
	// after it is rented. The exact lifetime is drawn uniformly between
	// them from the plan's seed.
	VMMinLifetime, VMMaxLifetime time.Duration
	// StragglerRate is the probability that a rented VM is a straggler:
	// every query enqueued on it takes StragglerSlowdown times its true
	// latency. A VM can be both a straggler and doomed to fail.
	StragglerRate float64
	// StragglerSlowdown multiplies execution latency on straggler VMs.
	// Values <= 1 disable straggling even when StragglerRate draws hit.
	StragglerSlowdown float64
}

// Enabled reports whether the spec can inject anything at all.
func (f FaultSpec) Enabled() bool {
	return (f.VMFailureRate > 0 && f.VMMaxLifetime > 0) ||
		(f.StragglerRate > 0 && f.StragglerSlowdown > 1)
}

// FaultPlan is a deterministic schedule of VM faults. Every draw is keyed by
// the VM's rent index (the n-th Rent call on the owning Sim), not by a
// sequential RNG, so two simulations that rent VMs in the same order see
// bit-identical faults regardless of what else they interleave. Plans are
// cheap; build one per Sim.
type FaultPlan struct {
	seed uint64
	spec FaultSpec
}

// NewFaultPlan returns a plan drawing from seed. A nil plan (or one built
// from a zero FaultSpec) injects nothing.
func NewFaultPlan(seed int64, spec FaultSpec) *FaultPlan {
	return &FaultPlan{seed: uint64(seed), spec: spec}
}

// splitmix64 is the SplitMix64 finalizer; it turns a structured key into a
// well-mixed 64-bit value. Same construction as the core package's mix64.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// draw returns the fault assignment for the VM rented at rentIndex:
// failAfter > 0 means the VM dies that long after being rented; slow > 1
// means every enqueued query is stretched by that factor.
func (p *FaultPlan) draw(rentIndex int) (failAfter time.Duration, slow float64) {
	if p == nil || !p.spec.Enabled() {
		return 0, 0
	}
	base := splitmix64(p.seed ^ uint64(rentIndex)*0x9e3779b97f4a7c15)
	if p.spec.VMFailureRate > 0 && p.spec.VMMaxLifetime > 0 && unit(base) < p.spec.VMFailureRate {
		lo, hi := p.spec.VMMinLifetime, p.spec.VMMaxLifetime
		if lo < 0 {
			lo = 0
		}
		if hi < lo {
			hi = lo
		}
		failAfter = lo + time.Duration(unit(splitmix64(base^0xd6e8feb86659fd93))*float64(hi-lo))
		if failAfter <= 0 {
			failAfter = 1 // "fails instantly" still needs a positive instant
		}
	}
	if p.spec.StragglerRate > 0 && p.spec.StragglerSlowdown > 1 &&
		unit(splitmix64(base^0xa5a5a5a5a5a5a5a5)) < p.spec.StragglerRate {
		slow = p.spec.StragglerSlowdown
	}
	return failAfter, slow
}

// SetFaults arms the simulator with a fault plan. Must be called before any
// Rent; passing nil disarms. VMs rented while armed receive their fate
// (failure instant, straggler slowdown) from the plan at rent time.
func (s *Sim) SetFaults(p *FaultPlan) {
	if len(s.vms) > 0 {
		panic("cloud: SetFaults after Rent")
	}
	s.faults = p
}

// Failed reports whether the VM has failed (CollectFailed observed its
// failure instant pass).
func (vm *SimVM) Failed() bool { return vm.failed }

// FailsAt returns the VM's scheduled failure instant and whether it is
// doomed at all.
func (vm *SimVM) FailsAt() (time.Duration, bool) { return vm.failAt, vm.failAt > 0 }

// Straggler returns the VM's latency multiplier (0 when healthy).
func (vm *SimVM) Straggler() float64 { return vm.slow }

// CollectFailed realises a doomed VM's failure once its instant has passed:
// work that started strictly before the failure is kept, the run in progress
// at the instant is killed, and the unstarted queue is dropped. The tags of
// the killed run and the dropped queue are appended to buf exactly once so
// the caller can re-admit them. Healthy VMs (and already-collected failures)
// return buf untouched — the check is one comparison, keeping the per-arrival
// sweep free when injection is off.
func (vm *SimVM) CollectFailed(t time.Duration, buf []int) []int {
	if vm.failed || vm.failAt == 0 || vm.failAt > t {
		return buf
	}
	vm.materialize(vm.failAt)
	vm.failed = true
	if n := len(vm.runs); n > 0 && vm.runs[n-1].End > vm.failAt {
		// This run was mid-flight at the failure instant: its work is lost.
		buf = append(buf, vm.runs[n-1].Tag)
		vm.runs = vm.runs[:n-1]
	}
	for _, q := range vm.queue {
		buf = append(buf, q.tag)
	}
	vm.queue = vm.queue[:0]
	return buf
}

// FailedVMs returns how many rented VMs have failed so far.
func (s *Sim) FailedVMs() int {
	n := 0
	for _, vm := range s.vms {
		if vm.failed {
			n++
		}
	}
	return n
}
