package cloud

import (
	"fmt"
	"sort"
	"time"
)

// PriceStep is one segment of a piecewise-constant price schedule: from
// Start (inclusive) until the next step's Start, every VM type's prices are
// scaled by Multiplier.
type PriceStep struct {
	// Start is when the step takes effect, in simulation time.
	Start time.Duration
	// Multiplier scales both the start-up fee and the per-hour processing
	// rate of every VM type while the step is in effect. Must be positive.
	Multiplier float64
}

// PriceSchedule is a spot-style time-varying price path: a piecewise-
// constant multiplier over the base VM prices (Eq. 1's f_s and f_r). The
// cost side of the scheduling objective becomes dynamic: a VM leased across
// a price step is charged per the schedule in effect over each part of its
// lease — never at a rate snapshotted when it was rented.
//
// A nil *PriceSchedule is valid everywhere and means flat base prices
// (multiplier 1 forever). A PriceSchedule is immutable once built and safe
// for concurrent use; At and EffectiveHours are allocation-free, so they may
// sit on the per-arrival serving path.
type PriceSchedule struct {
	steps []PriceStep
}

// NewPriceSchedule builds a schedule from steps ordered by Start. The first
// step must start at 0 (prices are defined from the beginning of time) and
// every multiplier must be positive.
func NewPriceSchedule(steps ...PriceStep) *PriceSchedule {
	if len(steps) == 0 {
		panic("cloud: NewPriceSchedule requires at least one step")
	}
	if steps[0].Start != 0 {
		panic(fmt.Sprintf("cloud: price schedule must start at 0, got %s", steps[0].Start))
	}
	for i, s := range steps {
		if s.Multiplier <= 0 {
			panic(fmt.Sprintf("cloud: price step %d has non-positive multiplier %g", i, s.Multiplier))
		}
		if i > 0 && s.Start <= steps[i-1].Start {
			panic(fmt.Sprintf("cloud: price steps not strictly increasing at %d (%s after %s)", i, s.Start, steps[i-1].Start))
		}
	}
	return &PriceSchedule{steps: append([]PriceStep(nil), steps...)}
}

// Spot returns a deterministic spot-style price path: n steps of the given
// period whose multipliers follow a seeded bounded random walk in
// [min, max]. The walk is a pure function of its arguments — identical
// inputs reproduce the identical schedule, so scenario runs priced by it
// are bit-reproducible. After the last step the final multiplier holds
// forever.
func Spot(seed int64, period time.Duration, n int, min, max float64) *PriceSchedule {
	if n <= 0 {
		panic("cloud: Spot requires n > 0")
	}
	if period <= 0 {
		panic("cloud: Spot requires a positive period")
	}
	if min <= 0 || max < min {
		panic(fmt.Sprintf("cloud: Spot requires 0 < min <= max, got [%g, %g]", min, max))
	}
	steps := make([]PriceStep, n)
	m := (min + max) / 2
	stride := (max - min) / 4
	for i := range steps {
		u := unit(splitmix64(uint64(seed) ^ uint64(i)*0x9e3779b97f4a7c15))
		m += stride * (2*u - 1)
		if m < min {
			m = min
		}
		if m > max {
			m = max
		}
		steps[i] = PriceStep{Start: time.Duration(i) * period, Multiplier: m}
	}
	return &PriceSchedule{steps: steps}
}

// Steps returns a copy of the schedule's steps, for inspection and tables.
func (p *PriceSchedule) Steps() []PriceStep {
	if p == nil {
		return []PriceStep{{Start: 0, Multiplier: 1}}
	}
	return append([]PriceStep(nil), p.steps...)
}

// At returns the multiplier in effect at time t. Times before the first
// step (negative t) take the first step's multiplier. Allocation-free; a
// nil schedule returns 1.
func (p *PriceSchedule) At(t time.Duration) float64 {
	if p == nil {
		return 1
	}
	// Binary search for the last step with Start <= t.
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].Start > t })
	if i == 0 {
		return p.steps[0].Multiplier
	}
	return p.steps[i-1].Multiplier
}

// EffectiveHours integrates the multiplier over [start, end) and returns the
// result in price-weighted hours: charging RatePerHour × EffectiveHours
// prices each part of the interval at the multiplier in effect there. A nil
// schedule returns the plain duration in hours.
func (p *PriceSchedule) EffectiveHours(start, end time.Duration) float64 {
	if end <= start {
		return 0
	}
	if p == nil {
		return (end - start).Hours()
	}
	total := 0.0
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].Start > start })
	if i > 0 {
		i--
	}
	for ; i < len(p.steps); i++ {
		segStart := p.steps[i].Start
		if segStart < start {
			segStart = start
		}
		segEnd := end
		if i+1 < len(p.steps) && p.steps[i+1].Start < segEnd {
			segEnd = p.steps[i+1].Start
		}
		if segEnd > segStart {
			total += (segEnd - segStart).Hours() * p.steps[i].Multiplier
		}
		if i+1 >= len(p.steps) || p.steps[i+1].Start >= end {
			break
		}
	}
	return total
}

// RunCost returns the processing fee for running on vt over [start, end)
// under the schedule: f_r integrated against the multiplier path.
func (p *PriceSchedule) RunCost(vt VMType, start, end time.Duration) float64 {
	return vt.RatePerHour * p.EffectiveHours(start, end)
}

// StartupFee returns vt's start-up fee at time at: f_s scaled by the
// multiplier in effect at the rent instant (the fee is charged once, when
// the VM is provisioned).
func (p *PriceSchedule) StartupFee(vt VMType, at time.Duration) float64 {
	return vt.StartupCost * p.At(at)
}

// SetPrices arms the simulator with a time-varying price schedule: cost
// accounting (ProvisioningCost) charges each VM per the schedule in effect
// across its whole lease. A nil schedule restores flat base prices. Call
// before accounting; the schedule does not alter execution timing, only
// money.
func (s *Sim) SetPrices(p *PriceSchedule) { s.prices = p }
