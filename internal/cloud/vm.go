// Package cloud models the IaaS substrate WiSeDB schedules onto (§2, §7.1):
// VM types with start-up and per-time-unit costs, per-(template, VM-type)
// latency prediction with optional error injection, and an event-driven
// execution simulator used to validate schedules and to drive online
// scheduling.
//
// The paper's testbed is a private cloud emulating EC2 t2.medium/t2.small
// instances running Postgres over a 10 GB TPC-H database. WiSeDB itself never
// looks at query text or machine internals — it consumes only per-template
// latency estimates and prices — so a latency-table simulator exercises the
// same decision logic (see DESIGN.md §4).
package cloud

import (
	"fmt"
	"time"

	"wisedb/internal/workload"
)

// VMType describes a rentable virtual machine configuration. Costs are in
// cents, matching the paper's cost model: renting a VM of type i costs a
// fixed start-up fee f_s^i plus f_r^i per unit of query processing time
// (Eq. 1).
type VMType struct {
	// ID is the dense index of this type within its VM-type set.
	ID int
	// Name is a human-readable label, e.g. "t2.medium".
	Name string
	// StartupCost is f_s in cents (the paper measured $0.0008).
	StartupCost float64
	// RatePerHour is f_r in cents per hour of processing time (the paper
	// used t2.medium at $0.052/hr).
	RatePerHour float64
	// StartupDelay is the wall-clock time between renting the VM and the
	// VM accepting queries. It affects online simulation, not Eq. 1.
	StartupDelay time.Duration
	// HighRAMMultiplier scales the latency of high-RAM templates on this
	// type. 1.0 means full speed; t2.small-style types use > 1.
	HighRAMMultiplier float64
	// SupportsHighRAM reports whether high-RAM templates can run at all
	// on this type. When false, supports-X is false for those templates
	// (§4.4, feature 3).
	SupportsHighRAM bool
}

// String implements fmt.Stringer.
func (v VMType) String() string {
	return fmt.Sprintf("%s(id=%d,%.4f¢/hr)", v.Name, v.ID, v.RatePerHour)
}

// RunningCost returns the cost in cents of processing for duration d on this
// VM type: f_r × l (Eq. 1).
func (v VMType) RunningCost(d time.Duration) float64 {
	return v.RatePerHour * d.Hours()
}

// Cents converts dollars to cents.
func Cents(dollars float64) float64 { return dollars * 100 }

// DefaultVMTypes returns n VM types emulating the paper's setup. The first
// type is the reference t2.medium ($0.052/hr, $0.0008 start-up). The second
// is a t2.small-style type: half the price, full speed on low-RAM templates
// and 1.7× slower on high-RAM ones (§7.2, "Multiple VM Types"). Additional
// types interpolate between the two regimes so that training-time
// experiments can scale the type count (Fig. 15).
func DefaultVMTypes(n int) []VMType {
	if n <= 0 {
		panic("cloud: DefaultVMTypes requires n > 0")
	}
	types := make([]VMType, n)
	types[0] = VMType{
		ID:                0,
		Name:              "t2.medium",
		StartupCost:       Cents(0.0008),
		RatePerHour:       Cents(0.052),
		StartupDelay:      30 * time.Second,
		HighRAMMultiplier: 1.0,
		SupportsHighRAM:   true,
	}
	if n >= 2 {
		// Half the price, full speed on low-RAM templates, but badly
		// memory-bound on high-RAM ones: 2.2x slower makes high-RAM
		// processing cost 1.1x the t2.medium price, so good strategies
		// route only low-RAM queries here (§7.2).
		types[1] = VMType{
			ID:                1,
			Name:              "t2.small",
			StartupCost:       Cents(0.0008),
			RatePerHour:       Cents(0.026),
			StartupDelay:      30 * time.Second,
			HighRAMMultiplier: 2.2,
			SupportsHighRAM:   true,
		}
	}
	for i := 2; i < n; i++ {
		frac := float64(i-1) / float64(n-1)
		types[i] = VMType{
			ID:                i,
			Name:              fmt.Sprintf("synth.%d", i),
			StartupCost:       Cents(0.0008),
			RatePerHour:       Cents(0.052) * (1 - 0.5*frac),
			StartupDelay:      30 * time.Second,
			HighRAMMultiplier: 1 + frac,
			SupportsHighRAM:   i%3 != 2,
		}
	}
	return types
}

// Latency returns the execution latency of a template on this VM type, or
// false if the type cannot run the template. Queries run in isolation (§7.1),
// so latency does not depend on co-located queries.
func (v VMType) Latency(t workload.Template) (time.Duration, bool) {
	if !t.HighRAM {
		return t.BaseLatency, true
	}
	if !v.SupportsHighRAM {
		return 0, false
	}
	return time.Duration(float64(t.BaseLatency) * v.HighRAMMultiplier), true
}
