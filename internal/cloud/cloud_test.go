package cloud

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"wisedb/internal/workload"
)

func TestDefaultVMTypes(t *testing.T) {
	types := DefaultVMTypes(2)
	medium, small := types[0], types[1]
	if medium.Name != "t2.medium" || small.Name != "t2.small" {
		t.Fatalf("unexpected names %s, %s", medium.Name, small.Name)
	}
	if medium.RatePerHour != 5.2 {
		t.Fatalf("t2.medium rate: want 5.2¢/hr ($0.052), got %g", medium.RatePerHour)
	}
	if medium.StartupCost != 0.08 {
		t.Fatalf("start-up cost: want 0.08¢ ($0.0008), got %g", medium.StartupCost)
	}
	if small.RatePerHour >= medium.RatePerHour {
		t.Fatal("t2.small must be cheaper")
	}
}

func TestRunningCost(t *testing.T) {
	vt := DefaultVMTypes(1)[0]
	if got := vt.RunningCost(time.Hour); math.Abs(got-5.2) > 1e-12 {
		t.Fatalf("1 hour: want 5.2¢, got %g", got)
	}
	if got := vt.RunningCost(30 * time.Minute); math.Abs(got-2.6) > 1e-12 {
		t.Fatalf("30 min: want 2.6¢, got %g", got)
	}
}

func TestLatencyHighRAM(t *testing.T) {
	types := DefaultVMTypes(2)
	low := workload.Template{ID: 0, BaseLatency: 2 * time.Minute, HighRAM: false}
	high := workload.Template{ID: 1, BaseLatency: 2 * time.Minute, HighRAM: true}
	if lat, ok := types[1].Latency(low); !ok || lat != 2*time.Minute {
		t.Fatalf("low-RAM on small: want full speed, got %s ok=%v", lat, ok)
	}
	want := time.Duration(types[1].HighRAMMultiplier * float64(2*time.Minute))
	if lat, ok := types[1].Latency(high); !ok || lat != want {
		t.Fatalf("high-RAM on small: want %s, got %s ok=%v", want, lat, ok)
	}
	if lat, ok := types[0].Latency(high); !ok || lat != 2*time.Minute {
		t.Fatalf("high-RAM on medium: want full speed, got %s ok=%v", lat, ok)
	}
	noHigh := types[0]
	noHigh.SupportsHighRAM = false
	if _, ok := noHigh.Latency(high); ok {
		t.Fatal("unsupported template must report ok=false")
	}
}

func TestNoisyPredictorStable(t *testing.T) {
	templates := workload.DefaultTemplates(5)
	types := DefaultVMTypes(1)
	p := NewNoisyPredictor(TablePredictor{}, 0.2, 42)
	a, _ := p.Latency(templates[2], types[0])
	b, _ := p.Latency(templates[2], types[0])
	if a != b {
		t.Fatal("noisy predictions must be stable per (template, type)")
	}
	if a == templates[2].BaseLatency {
		t.Fatal("noise should perturb the latency (sigma=0.2)")
	}
	zero := NewNoisyPredictor(TablePredictor{}, 0, 42)
	if lat, _ := zero.Latency(templates[2], types[0]); lat != templates[2].BaseLatency {
		t.Fatalf("sigma=0: want exact latency, got %s", lat)
	}
}

func TestNoisyPredictorNeverNegative(t *testing.T) {
	f := func(seed int64, sigmaRaw uint8) bool {
		sigma := float64(sigmaRaw) / 64 // up to 4x
		rng := rand.New(rand.NewSource(seed))
		lat := SampleNoisyLatency(4*time.Minute, sigma, rng)
		return lat > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClosestTemplate(t *testing.T) {
	templates := workload.DefaultTemplates(10) // 2m..6m
	ref := DefaultVMTypes(1)[0]
	if got := ClosestTemplate(2*time.Minute, templates, ref, TablePredictor{}); got != 0 {
		t.Fatalf("2m: want template 0, got %d", got)
	}
	if got := ClosestTemplate(6*time.Minute, templates, ref, TablePredictor{}); got != 9 {
		t.Fatalf("6m: want template 9, got %d", got)
	}
	if got := ClosestTemplate(4*time.Minute+2*time.Second, templates, ref, TablePredictor{}); got != 4 && got != 5 {
		t.Fatalf("4m: want a middle template, got %d", got)
	}
}

func TestSimSequentialExecution(t *testing.T) {
	sim := NewSim()
	vt := DefaultVMTypes(1)[0]
	vm := sim.Rent(vt, 0)
	vm.Enqueue(0, 0, 0, 2*time.Minute)
	vm.Enqueue(1, 1, 0, 3*time.Minute)
	runs := sim.Finish()
	if len(runs) != 2 {
		t.Fatalf("want 2 runs, got %d", len(runs))
	}
	ready := vt.StartupDelay
	if runs[0].Start != ready || runs[0].End != ready+2*time.Minute {
		t.Fatalf("run 0: got [%s,%s]", runs[0].Start, runs[0].End)
	}
	if runs[1].Start != runs[0].End || runs[1].End != runs[1].Start+3*time.Minute {
		t.Fatalf("run 1 must follow run 0: got [%s,%s]", runs[1].Start, runs[1].End)
	}
}

func TestSimRevokeUnstarted(t *testing.T) {
	sim := NewSim()
	vt := DefaultVMTypes(1)[0]
	vm := sim.Rent(vt, 0)
	vm.Enqueue(0, 0, 0, 2*time.Minute)
	vm.Enqueue(1, 0, 0, 2*time.Minute)
	vm.Enqueue(2, 0, 0, 2*time.Minute)
	// At startupDelay+1m, query 0 is running; 1 and 2 have not started.
	tags := vm.RevokeUnstarted(vt.StartupDelay + time.Minute)
	if len(tags) != 2 || tags[0] != 1 || tags[1] != 2 {
		t.Fatalf("want tags [1 2], got %v", tags)
	}
	runs := sim.Finish()
	if len(runs) != 1 || runs[0].Tag != 0 {
		t.Fatalf("only query 0 should execute, got %v", runs)
	}
}

func TestSimRevokeAtExactStartBoundary(t *testing.T) {
	sim := NewSim()
	vt := DefaultVMTypes(1)[0]
	vm := sim.Rent(vt, 0)
	vm.Enqueue(0, 0, 0, time.Minute)
	// A query whose start time equals the observation time has not
	// started and is revocable.
	tags := vm.RevokeUnstarted(vt.StartupDelay)
	if len(tags) != 1 {
		t.Fatalf("query starting exactly now must be revocable, got %v", tags)
	}
}

func TestSimBusyUntilAndNextFree(t *testing.T) {
	sim := NewSim()
	vt := DefaultVMTypes(1)[0]
	vm := sim.Rent(vt, 0)
	if free := vm.NextFree(0); free != vt.StartupDelay {
		t.Fatalf("fresh VM free at startup delay, got %s", free)
	}
	vm.Enqueue(0, 0, 0, 2*time.Minute)
	vm.Enqueue(1, 0, 0, time.Minute)
	at := vt.StartupDelay + time.Minute // query 0 running
	if busy := vm.BusyUntil(at); busy != vt.StartupDelay+3*time.Minute {
		t.Fatalf("busy until all queued work done: got %s", busy)
	}
	if free := vm.NextFree(at); free != vt.StartupDelay+2*time.Minute {
		t.Fatalf("next free ignores revocable work: got %s", free)
	}
}

// A query enqueued onto an idle VM must start at its enqueue instant, not
// retroactively at the VM's last idle moment — backdated starts produced
// negative latencies (End < Arrival) in steady-state online streams where
// VMs idle between arrivals.
func TestSimEnqueueOnIdleVMStartsAtEnqueueTime(t *testing.T) {
	sim := NewSim()
	vt := DefaultVMTypes(1)[0]
	vm := sim.Rent(vt, 0)
	vm.Enqueue(0, 0, 0, time.Minute)
	// The VM idles from startupDelay+1m until the second query arrives at
	// t=30m.
	at := 30 * time.Minute
	vm.Enqueue(1, 0, at, time.Minute)
	runs := sim.Finish()
	if len(runs) != 2 {
		t.Fatalf("want 2 runs, got %d", len(runs))
	}
	if runs[1].Start != at || runs[1].End != at+time.Minute {
		t.Fatalf("idle-VM query must run at its enqueue time [%s,%s], got [%s,%s]",
			at, at+time.Minute, runs[1].Start, runs[1].End)
	}
	// BusyUntil accounts for the idle gap too.
	vm2 := sim.Rent(vt, 0)
	vm2.Enqueue(2, 0, time.Hour, time.Minute)
	if busy := vm2.BusyUntil(0); busy != time.Hour+time.Minute {
		t.Fatalf("BusyUntil across an idle gap: want %s, got %s", time.Hour+time.Minute, busy)
	}
}

func TestSimProvisioningCost(t *testing.T) {
	sim := NewSim()
	vt := DefaultVMTypes(1)[0]
	vm := sim.Rent(vt, 0)
	vm.Enqueue(0, 0, 0, time.Hour)
	sim.Finish()
	want := vt.StartupCost + vt.RatePerHour
	if got := sim.ProvisioningCost(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("want %g, got %g", want, got)
	}
}

func TestSimRunsOrderedByCompletion(t *testing.T) {
	sim := NewSim()
	vt := DefaultVMTypes(1)[0]
	a := sim.Rent(vt, 0)
	b := sim.Rent(vt, 0)
	a.Enqueue(0, 0, 0, 3*time.Minute)
	b.Enqueue(1, 0, 0, time.Minute)
	runs := sim.Finish()
	if runs[0].Tag != 1 || runs[1].Tag != 0 {
		t.Fatalf("runs must be ordered by completion: %v", runs)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	spec := FaultSpec{
		VMFailureRate: 0.5, VMMinLifetime: time.Minute, VMMaxLifetime: 10 * time.Minute,
		StragglerRate: 0.3, StragglerSlowdown: 3,
	}
	a, b := NewFaultPlan(42, spec), NewFaultPlan(42, spec)
	anyFail, anySlow := false, false
	for i := 0; i < 200; i++ {
		fa, sa := a.draw(i)
		fb, sb := b.draw(i)
		if fa != fb || sa != sb {
			t.Fatalf("draw %d diverged: (%s,%g) vs (%s,%g)", i, fa, sa, fb, sb)
		}
		if fa > 0 {
			anyFail = true
			if fa < spec.VMMinLifetime || fa > spec.VMMaxLifetime {
				t.Fatalf("draw %d lifetime %s outside [%s,%s]", i, fa, spec.VMMinLifetime, spec.VMMaxLifetime)
			}
		}
		if sa > 0 {
			anySlow = true
			if sa != 3 {
				t.Fatalf("draw %d slowdown %g, want 3", i, sa)
			}
		}
	}
	if !anyFail || !anySlow {
		t.Fatalf("200 draws at 50%%/30%% rates produced anyFail=%v anySlow=%v", anyFail, anySlow)
	}
	other := NewFaultPlan(43, spec)
	same := true
	for i := 0; i < 200 && same; i++ {
		fa, sa := a.draw(i)
		fo, so := other.draw(i)
		same = fa == fo && sa == so
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestVMFailureRevokesAndKillsInProgress(t *testing.T) {
	vt := DefaultVMTypes(1)[0]
	vt.StartupDelay = 0
	s := NewSim()
	s.SetFaults(nil) // disarmed plan must be a no-op
	vm := s.Rent(vt, 0)
	vm.failAt = 5 * time.Minute // dooms the VM directly; plans only set this field

	// Three queries: the first completes before the failure, the second is
	// mid-flight at the instant, the third never starts.
	vm.Enqueue(1, 0, 0, 2*time.Minute)           // runs [0, 2m)
	vm.Enqueue(2, 0, time.Minute, 4*time.Minute) // runs [2m, 6m) — killed at 5m
	vm.Enqueue(3, 0, 2*time.Minute, time.Minute) // queued behind — revoked

	if got := vm.CollectFailed(4*time.Minute, nil); len(got) != 0 {
		t.Fatalf("collect before the failure instant returned %v", got)
	}
	got := vm.CollectFailed(6*time.Minute, nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("want tags [2 3] re-admitted, got %v", got)
	}
	if !vm.Failed() {
		t.Fatal("VM must be marked failed")
	}
	if again := vm.CollectFailed(7*time.Minute, nil); len(again) != 0 {
		t.Fatalf("second collect must be empty (exactly-once), got %v", again)
	}
	runs := s.Finish()
	if len(runs) != 1 || runs[0].Tag != 1 {
		t.Fatalf("only the completed run survives, got %v", runs)
	}
	if s.FailedVMs() != 1 {
		t.Fatalf("FailedVMs = %d, want 1", s.FailedVMs())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue on a failed VM must panic")
		}
	}()
	vm.Enqueue(4, 0, 7*time.Minute, time.Minute)
}

func TestStragglerStretchesLatency(t *testing.T) {
	vt := DefaultVMTypes(1)[0]
	vt.StartupDelay = 0
	s := NewSim()
	vm := s.Rent(vt, 0)
	vm.slow = 2.5
	vm.Enqueue(1, 0, 0, 2*time.Minute)
	runs := s.Finish()
	if want := 5 * time.Minute; runs[0].End != want {
		t.Fatalf("straggler run end %s, want %s", runs[0].End, want)
	}
	if vm.Straggler() != 2.5 {
		t.Fatalf("Straggler() = %g", vm.Straggler())
	}
}

func TestSimRentDrawsFromPlan(t *testing.T) {
	spec := FaultSpec{VMFailureRate: 1, VMMinLifetime: time.Minute, VMMaxLifetime: time.Minute}
	s := NewSim()
	s.SetFaults(NewFaultPlan(7, spec))
	vm := s.Rent(DefaultVMTypes(1)[0], 10*time.Minute)
	at, doomed := vm.FailsAt()
	if !doomed || at != 11*time.Minute {
		t.Fatalf("FailsAt = (%s, %v), want (11m, true)", at, doomed)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetFaults after Rent must panic")
		}
	}()
	s.SetFaults(nil)
}
