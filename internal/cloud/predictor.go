package cloud

import (
	"math/rand"
	"time"

	"wisedb/internal/workload"
)

// Predictor estimates per-template query latencies on each VM type. WiSeDB
// consumes latency estimates rather than true latencies (§2: estimates come
// from a-priori runs or prediction models such as [10, 11]); the accuracy
// experiments (Fig. 22) inject Gaussian error between the two.
type Predictor interface {
	// Latency returns the predicted latency of an instance of template t
	// on VM type v. ok is false if v cannot run t. Predictions are
	// expected to be positive; the scheduling environment clamps
	// non-positive predictions to 1ns when freezing its latency matrix.
	Latency(t workload.Template, v VMType) (lat time.Duration, ok bool)
}

// TablePredictor is the exact predictor: it reports the substrate's true
// latency table.
type TablePredictor struct{}

// Latency implements Predictor.
func (TablePredictor) Latency(t workload.Template, v VMType) (time.Duration, bool) {
	return v.Latency(t)
}

// NoisyPredictor perturbs a base predictor with multiplicative Gaussian
// noise: predicted = true × (1 + N(0, Sigma)). Sigma is the error standard
// deviation as a fraction of the true latency (Fig. 22's x axis). Each
// (template, VM type) pair receives a stable perturbation so repeated calls
// are consistent, matching a biased-but-deterministic prediction model.
type NoisyPredictor struct {
	Base  Predictor
	Sigma float64
	seed  int64
}

// NewNoisyPredictor returns a NoisyPredictor with deterministic per-pair
// noise derived from seed.
func NewNoisyPredictor(base Predictor, sigma float64, seed int64) *NoisyPredictor {
	return &NoisyPredictor{Base: base, Sigma: sigma, seed: seed}
}

// Latency implements Predictor.
func (p *NoisyPredictor) Latency(t workload.Template, v VMType) (time.Duration, bool) {
	lat, ok := p.Base.Latency(t, v)
	if !ok {
		return 0, false
	}
	rng := rand.New(rand.NewSource(p.seed ^ int64(t.ID)<<17 ^ int64(v.ID)<<3))
	factor := 1 + rng.NormFloat64()*p.Sigma
	if factor < 0.05 {
		factor = 0.05
	}
	return time.Duration(float64(lat) * factor), true
}

// SampleNoisyLatency draws a fresh noisy observation of a query's latency —
// used to model per-query (rather than per-template) prediction error when
// classifying unseen queries into templates (§6.2, Fig. 22).
func SampleNoisyLatency(trueLat time.Duration, sigma float64, rng *rand.Rand) time.Duration {
	factor := 1 + rng.NormFloat64()*sigma
	if factor < 0.05 {
		factor = 0.05
	}
	return time.Duration(float64(trueLat) * factor)
}

// ClosestTemplate returns the ID of the template whose predicted latency on
// the reference VM type is closest to the observed latency. WiSeDB treats a
// query that does not match a known template as an instance of the template
// with the closest predicted latency (§6.2).
func ClosestTemplate(observed time.Duration, templates []workload.Template, ref VMType, p Predictor) int {
	best, bestDiff := 0, time.Duration(1<<62)
	for _, t := range templates {
		lat, ok := p.Latency(t, ref)
		if !ok {
			continue
		}
		diff := lat - observed
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = t.ID, diff
		}
	}
	return best
}
