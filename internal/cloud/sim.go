package cloud

import (
	"fmt"
	"sort"
	"time"
)

// Sim is a deterministic, event-driven execution simulator for rented VMs.
// Each VM processes its queue sequentially and in isolation (§7.1). The
// simulator supports the operations online scheduling needs (§6.3): renting
// VMs mid-stream, enqueueing queries, and revoking queries that have not
// started yet when a new arrival triggers re-scheduling.
//
// Sim is not safe for concurrent use.
type Sim struct {
	vms    []*SimVM
	faults *FaultPlan
	prices *PriceSchedule
	rents  int
}

// NewSim returns an empty simulator.
func NewSim() *Sim { return &Sim{} }

// Run records one executed query: when it started and finished on its VM.
type Run struct {
	// Tag identifies the query instance within its workload.
	Tag int
	// TemplateID is the query's template.
	TemplateID int
	// Start and End are the execution bounds in simulation time.
	Start, End time.Duration
}

// queued is a query waiting in a VM's processing queue.
type queued struct {
	tag        int
	templateID int
	at         time.Duration // when the query joined the queue
	latency    time.Duration
}

// SimVM is a rented virtual machine inside a Sim.
type SimVM struct {
	// Type is the VM's type.
	Type VMType
	// RentedAt is when the VM was provisioned.
	RentedAt time.Duration
	// ReadyAt is when the VM starts accepting queries
	// (RentedAt + Type.StartupDelay).
	ReadyAt time.Duration
	runs    []Run
	queue   []queued

	// Fault-injection state (see faults.go). failAt is the scheduled
	// failure instant (0 = never), failed flips when CollectFailed observes
	// it pass, slow stretches enqueued latencies (0 = healthy).
	failAt time.Duration
	failed bool
	slow   float64
}

// Rent provisions a new VM of type vt at simulation time at and returns it.
// If the simulator carries a fault plan, the VM's fate is drawn here, keyed
// by its rent index, so identical rent sequences see identical faults.
func (s *Sim) Rent(vt VMType, at time.Duration) *SimVM {
	vm := &SimVM{Type: vt, RentedAt: at, ReadyAt: at + vt.StartupDelay}
	if failAfter, slow := s.faults.draw(s.rents); failAfter > 0 || slow > 0 {
		if failAfter > 0 {
			vm.failAt = at + failAfter
		}
		vm.slow = slow
	}
	s.rents++
	s.vms = append(s.vms, vm)
	return vm
}

// VMs returns the rented VMs in rental order.
func (s *Sim) VMs() []*SimVM { return s.vms }

// Enqueue appends a query to the VM's processing queue at simulation time
// at, with the given true execution latency. The query cannot start before
// at: an idle VM picks it up at the enqueue instant, not retroactively at
// its last idle moment. Enqueue times must be non-decreasing per VM (the
// online engine's event times are monotonic).
func (vm *SimVM) Enqueue(tag, templateID int, at, latency time.Duration) {
	if latency <= 0 {
		panic(fmt.Sprintf("cloud: Enqueue with non-positive latency %s for tag %d", latency, tag))
	}
	if n := len(vm.queue); n > 0 && at < vm.queue[n-1].at {
		panic(fmt.Sprintf("cloud: Enqueue at %s after an enqueue at %s (tag %d)", at, vm.queue[n-1].at, tag))
	}
	if vm.failed {
		panic(fmt.Sprintf("cloud: Enqueue on failed VM (tag %d)", tag))
	}
	if vm.slow > 1 {
		latency = time.Duration(float64(latency) * vm.slow)
	}
	vm.queue = append(vm.queue, queued{tag: tag, templateID: templateID, at: at, latency: latency})
}

// materialize converts queued queries whose start time is strictly before t
// into runs. A query whose start time is exactly t has not started and
// remains revocable.
func (vm *SimVM) materialize(t time.Duration) {
	for len(vm.queue) > 0 {
		start := vm.ReadyAt
		if n := len(vm.runs); n > 0 && vm.runs[n-1].End > start {
			start = vm.runs[n-1].End
		}
		if at := vm.queue[0].at; at > start {
			// The VM idled until the query arrived; execution cannot be
			// backdated to before submission.
			start = at
		}
		if start >= t {
			return
		}
		q := vm.queue[0]
		// Pop by shifting down, not by advancing the slice header: an
		// advanced header abandons the front of the backing array, and the
		// next Enqueue would regrow it — one allocation per arrival in the
		// online steady state. Queues are short (the unstarted backlog).
		copy(vm.queue, vm.queue[1:])
		vm.queue = vm.queue[:len(vm.queue)-1]
		vm.runs = append(vm.runs, Run{Tag: q.tag, TemplateID: q.templateID, Start: start, End: start + q.latency})
	}
}

// BusyUntil returns the time at which the VM becomes free, given work
// started strictly before t plus any still-queued queries. A VM with an
// empty queue returns max(ReadyAt, last run end).
func (vm *SimVM) BusyUntil(t time.Duration) time.Duration {
	vm.materialize(t)
	busy := vm.ReadyAt
	if n := len(vm.runs); n > 0 && vm.runs[n-1].End > busy {
		busy = vm.runs[n-1].End
	}
	for _, q := range vm.queue {
		if q.at > busy {
			busy = q.at
		}
		busy += q.latency
	}
	return busy
}

// NextFree returns when the VM finishes the queries that have started
// strictly before t, ignoring revocable queued work.
func (vm *SimVM) NextFree(t time.Duration) time.Duration {
	vm.materialize(t)
	free := vm.ReadyAt
	if n := len(vm.runs); n > 0 && vm.runs[n-1].End > free {
		free = vm.runs[n-1].End
	}
	return free
}

// RevokeUnstarted removes and returns the tags of queries that have not
// started executing by time t. Online scheduling calls this on each arrival
// to rebuild the batch of schedulable queries (§6.3).
func (vm *SimVM) RevokeUnstarted(t time.Duration) []int {
	return vm.RevokeUnstartedInto(t, nil)
}

// RevokeUnstartedInto is RevokeUnstarted appending into a caller-owned
// buffer: the online scheduler revokes across every VM on every arrival,
// and this form keeps that sweep allocation-free in steady state. The VM's
// queue storage is retained for reuse.
func (vm *SimVM) RevokeUnstartedInto(t time.Duration, buf []int) []int {
	vm.materialize(t)
	for _, q := range vm.queue {
		buf = append(buf, q.tag)
	}
	vm.queue = vm.queue[:0]
	return buf
}

// Finish drains all remaining queued work and returns every run across all
// VMs, ordered by completion time.
func (s *Sim) Finish() []Run {
	var all []Run
	for _, vm := range s.vms {
		vm.materialize(1<<62 - 1)
		all = append(all, vm.runs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].End != all[j].End {
			return all[i].End < all[j].End
		}
		return all[i].Tag < all[j].Tag
	})
	return all
}

// ProvisioningCost returns the Eq. 1 cost of the simulation excluding
// penalties: each VM's start-up fee plus its processing fees (f_r × executed
// latency). Call after Finish (or at any point for the cost so far).
//
// Under a time-varying price schedule (SetPrices), each VM is charged per
// the schedule in effect across its whole lease: the start-up fee at the
// rent instant's multiplier, and every run's processing fee integrated
// against the multiplier path over the run's actual execution window — a
// lease spanning a price step pays each segment at that segment's price,
// never a rate snapshotted at rent time. Still-queued (unmaterialized) work
// is estimated at its enqueue instant's multiplier; call after Finish for
// exact accounting.
func (s *Sim) ProvisioningCost() float64 {
	total := 0.0
	for _, vm := range s.vms {
		if s.prices == nil {
			total += vm.Type.StartupCost
			for _, r := range vm.runs {
				total += vm.Type.RunningCost(r.End - r.Start)
			}
			for _, q := range vm.queue {
				total += vm.Type.RunningCost(q.latency)
			}
			continue
		}
		total += s.prices.StartupFee(vm.Type, vm.RentedAt)
		for _, r := range vm.runs {
			total += s.prices.RunCost(vm.Type, r.Start, r.End)
		}
		for _, q := range vm.queue {
			total += s.prices.At(q.at) * vm.Type.RunningCost(q.latency)
		}
	}
	return total
}
