package stats

import (
	"math"
	"sort"
)

// EMD1D computes the Earth Mover's Distance between two one-dimensional
// distributions given as equal-length sample vectors (each sample carries
// mass 1/len). For one-dimensional distributions the EMD equals the L1
// distance between the sorted samples divided by the sample count, which is
// what strategy recommendation uses to compare per-template average cost
// profiles of adjacent service tiers (§6.1).
func EMD1D(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: EMD1D requires equal-length samples")
	}
	if len(a) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	total := 0.0
	for i := range as {
		total += math.Abs(as[i] - bs[i])
	}
	return total / float64(len(as))
}

// EMDHist computes the Earth Mover's Distance between two histograms over
// the same ordered bins with unit ground distance between adjacent bins:
// after normalizing each histogram to total mass 1, the EMD is the L1
// distance between their cumulative distributions. The online drift detector
// uses it to compare a stream's sliding template-arrival histogram against
// the serving model's training mix (templates are ordered by base latency,
// so bin distance tracks latency distance).
//
// Histograms must have equal length; an empty or zero-mass histogram has
// distance 0 to everything (there is no mass to move). EMDHist allocates
// nothing — it runs on the per-arrival hot path.
func EMDHist(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: EMDHist requires equal-length histograms")
	}
	sumP, sumQ := 0.0, 0.0
	for i := range p {
		sumP += p[i]
		sumQ += q[i]
	}
	if sumP <= 0 || sumQ <= 0 {
		return 0
	}
	emd, cp, cq := 0.0, 0.0, 0.0
	for i := range p {
		cp += p[i] / sumP
		cq += q[i] / sumQ
		emd += math.Abs(cp - cq)
	}
	return emd
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the minimum and maximum of xs. It panics on an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 < p <= 100) of xs using the
// nearest-rank method: the smallest value v such that at least p% of the
// samples are <= v. This is the definition the Percentile SLA uses (§2:
// "at least x% of the workload's queries must be completed within t
// seconds"). It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p <= 0 || p > 100 {
		panic("stats: Percentile requires 0 < p <= 100")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
