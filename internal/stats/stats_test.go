package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegularizedGammaPKnownValues(t *testing.T) {
	cases := []struct {
		a, x, want float64
	}{
		// P(1, x) = 1 - e^-x.
		{1, 1, 1 - math.Exp(-1)},
		{1, 2.5, 1 - math.Exp(-2.5)},
		// P(0.5, x) = erf(sqrt(x)).
		{0.5, 0.25, math.Erf(0.5)},
		{0.5, 4, math.Erf(2)},
		// Median of gamma(a,1) near a - 1/3 for larger a.
		{10, 10, 0.5420702855},
	}
	for _, c := range cases {
		got := RegularizedGammaP(c.a, c.x)
		if math.Abs(got-c.want) > 1e-8 {
			t.Errorf("P(%g,%g) = %.10f, want %.10f", c.a, c.x, got, c.want)
		}
	}
}

func TestRegularizedGammaPEdges(t *testing.T) {
	if got := RegularizedGammaP(2, 0); got != 0 {
		t.Fatalf("P(a,0) = %g, want 0", got)
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) || !math.IsNaN(RegularizedGammaP(1, -1)) {
		t.Fatal("invalid arguments must yield NaN")
	}
	// Monotone increasing in x.
	prev := 0.0
	for x := 0.1; x < 30; x += 0.5 {
		got := RegularizedGammaP(3, x)
		if got < prev {
			t.Fatalf("P(3,x) not monotone at %g", x)
		}
		prev = got
	}
	if prev < 0.999999 {
		t.Fatalf("P(3,30) should approach 1, got %g", prev)
	}
}

func TestChiSquareCDFAgainstKnownQuantiles(t *testing.T) {
	// 95th percentile of chi2 with k df (standard tables).
	cases := []struct {
		df int
		q  float64
	}{{1, 3.841}, {5, 11.070}, {9, 16.919}, {10, 18.307}}
	for _, c := range cases {
		got := ChiSquareCDF(c.q, c.df)
		if math.Abs(got-0.95) > 0.001 {
			t.Errorf("CDF(%g, df=%d) = %g, want 0.95", c.q, c.df, got)
		}
	}
}

func TestChiSquareStatistic(t *testing.T) {
	obs := []int{10, 10, 10}
	exp := []float64{10, 10, 10}
	if got := ChiSquareStatistic(obs, exp); got != 0 {
		t.Fatalf("perfect fit should be 0, got %g", got)
	}
	if got := ChiSquareStatistic([]int{5}, []float64{0}); !math.IsInf(got, 1) {
		t.Fatalf("zero expectation with observations should be +Inf, got %g", got)
	}
}

func TestUniformChiSquareConfidence(t *testing.T) {
	if got := UniformChiSquareConfidence([]int{100, 100, 100, 100}); got > 0.05 {
		t.Fatalf("uniform counts should have ~0 confidence, got %g", got)
	}
	if got := UniformChiSquareConfidence([]int{400, 0, 0, 0}); got < 0.999 {
		t.Fatalf("point mass should have ~1 confidence, got %g", got)
	}
	// Confidence grows with skew.
	rng := rand.New(rand.NewSource(1))
	prev := -1.0
	for _, skew := range []float64{0, 0.3, 0.6, 0.9} {
		counts := make([]int, 5)
		for i := 0; i < 2000; i++ {
			if rng.Float64() < skew {
				counts[0]++
			} else {
				counts[rng.Intn(5)]++
			}
		}
		got := UniformChiSquareConfidence(counts)
		if got < prev-0.01 {
			t.Fatalf("confidence not increasing with skew: %g after %g", got, prev)
		}
		prev = got
	}
}

func TestEMD1D(t *testing.T) {
	if got := EMD1D([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("identical distributions: want 0, got %g", got)
	}
	if got := EMD1D([]float64{0, 0}, []float64{1, 1}); got != 1 {
		t.Fatalf("unit shift: want 1, got %g", got)
	}
	// Order-independence.
	if EMD1D([]float64{3, 1, 2}, []float64{2, 3, 1}) != 0 {
		t.Fatal("EMD must be order-independent")
	}
}

func TestEMD1DProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.Float64()*10, rng.Float64()*10, rng.Float64()*10
		}
		dab := EMD1D(a, b)
		dba := EMD1D(b, a)
		if math.Abs(dab-dba) > 1e-12 {
			return false // symmetry
		}
		if dab < 0 {
			return false // non-negativity
		}
		// Triangle inequality.
		if EMD1D(a, c) > dab+EMD1D(b, c)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEMDHist(t *testing.T) {
	if got := EMDHist([]float64{1, 2, 3}, []float64{2, 4, 6}); got != 0 {
		t.Fatalf("proportional histograms: want 0, got %g", got)
	}
	// All mass moved one bin over: EMD = 1 (unit ground distance).
	if got := EMDHist([]float64{1, 0}, []float64{0, 1}); got != 1 {
		t.Fatalf("one-bin shift: want 1, got %g", got)
	}
	// Point mass at bin 0 vs bin k-1: EMD = k-1.
	if got := EMDHist([]float64{5, 0, 0, 0}, []float64{0, 0, 0, 2}); got != 3 {
		t.Fatalf("extreme shift over 4 bins: want 3, got %g", got)
	}
	// Zero-mass histograms carry no mass to move.
	if got := EMDHist([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-mass histogram: want 0, got %g", got)
	}
}

func TestEMDHistProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.Float64(), rng.Float64(), rng.Float64()
		}
		dab, dba := EMDHist(a, b), EMDHist(b, a)
		if math.Abs(dab-dba) > 1e-12 || dab < 0 {
			return false // symmetry, non-negativity
		}
		if EMDHist(a, c) > dab+EMDHist(b, c)+1e-9 {
			return false // triangle inequality
		}
		// Agreement with the sample-based EMD1D: a histogram of integer
		// counts is a multiset of bin indices.
		counts := make([]float64, 3)
		var sa, sb []float64
		for i := range counts {
			k := rng.Intn(4)
			counts[i] = float64(k)
			for j := 0; j < k; j++ {
				sa = append(sa, float64(i))
			}
		}
		other := make([]float64, 3)
		for i := range other {
			k := rng.Intn(4)
			other[i] = float64(k)
			for j := 0; j < k; j++ {
				sb = append(sb, float64(i))
			}
		}
		if len(sa) == len(sb) && len(sa) > 0 {
			// Equal sample counts: both normalize to unit mass, so the
			// histogram EMD must match the sample EMD over bin indices.
			if math.Abs(EMDHist(counts, other)-EMD1D(sa, sb)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 90); got != 9 {
		t.Fatalf("P90 of 1..10: want 9 (nearest rank), got %g", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("P100: want 10, got %g", got)
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Fatalf("single sample: want 7, got %g", got)
	}
}

func TestMeanStdDevMinMax(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean: want 5, got %g", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev: want 2, got %g", got)
	}
	min, max := MinMax(xs)
	if min != 2 || max != 9 {
		t.Fatalf("minmax: want 2,9 got %g,%g", min, max)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty slices should yield 0")
	}
}
