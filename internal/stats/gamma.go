// Package stats provides the small statistical substrate WiSeDB needs:
// the χ² goodness-of-fit confidence used to quantify workload skew (§7.5),
// the Earth Mover's Distance used by strategy recommendation (§6.1), and
// summary helpers used by the experiment harness.
package stats

import "math"

// RegularizedGammaP computes the regularized lower incomplete gamma
// function P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0. It follows the
// classic series/continued-fraction split (Numerical Recipes §6.2): the
// series converges quickly for x < a+1 and the continued fraction for
// x >= a+1.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// gammaPSeries evaluates P(a,x) by its power series representation.
func gammaPSeries(a, x float64) float64 {
	lgA, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgA)
}

// gammaQContinuedFraction evaluates Q(a,x) = 1 - P(a,x) by its continued
// fraction representation using Lentz's algorithm.
func gammaQContinuedFraction(a, x float64) float64 {
	lgA, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgA) * h
}

// ChiSquareCDF returns the cumulative distribution function of the χ²
// distribution with df degrees of freedom evaluated at x: the probability
// that a χ² random variable is at most x. In the skew experiments this is
// "the confidence with which the uniformity hypothesis can be rejected"
// (§7.5).
func ChiSquareCDF(x float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(float64(df)/2, x/2)
}

// ChiSquareStatistic computes Pearson's χ² test statistic for observed
// category counts against expected counts. Categories with zero expectation
// and zero observation contribute nothing; a zero expectation with a
// non-zero observation yields +Inf.
func ChiSquareStatistic(observed []int, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic("stats: observed/expected length mismatch")
	}
	stat := 0.0
	for i, o := range observed {
		e := expected[i]
		d := float64(o) - e
		if e == 0 {
			if o != 0 {
				return math.Inf(1)
			}
			continue
		}
		stat += d * d / e
	}
	return stat
}

// UniformChiSquareConfidence returns the confidence in [0,1] with which the
// hypothesis "counts were drawn uniformly" can be rejected — the skew
// measure on the x axis of Figs. 20 and 21.
func UniformChiSquareConfidence(counts []int) float64 {
	n := 0
	for _, c := range counts {
		n += c
	}
	if n == 0 || len(counts) < 2 {
		return 0
	}
	expected := make([]float64, len(counts))
	for i := range expected {
		expected[i] = float64(n) / float64(len(counts))
	}
	stat := ChiSquareStatistic(counts, expected)
	return ChiSquareCDF(stat, len(counts)-1)
}
