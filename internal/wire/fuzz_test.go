package wire_test

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"wisedb/internal/wire"
)

var update = flag.Bool("update", false, "regenerate the committed fuzz corpus")

// typedWireError reports whether err is one of the codec's typed
// failure modes.
func typedWireError(err error) bool {
	return errors.Is(err, wire.ErrTooLarge) || errors.Is(err, wire.ErrTruncated) ||
		errors.Is(err, wire.ErrCorrupt) || errors.Is(err, wire.ErrUnknownType) ||
		errors.Is(err, wire.ErrVersion)
}

// fuzzSeeds returns the seed bodies (type byte + payload, no length
// prefix — the fuzzer explores the body space Decode sees after
// ReadFrame strips and validates the prefix).
func fuzzSeeds(t testing.TB) [][]byte {
	body := func(enc []byte) []byte { return enc[4:] }
	var seeds [][]byte
	all := frames(t)
	for _, name := range []string{"hello", "welcome", "submit", "ack", "finish", "result", "error"} {
		seeds = append(seeds, body(all[name]))
	}
	submit, err := wire.AppendSubmit(nil, 3, 2_500_000, 100_000, []wire.Query{
		{Template: 4, Tag: 11}, {Template: 0, Tag: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	sb := body(submit)
	seeds = append(seeds,
		[]byte{},
		[]byte{byte(wire.TypeSubmit)},
		sb[:len(sb)/2],
		func() []byte { b := append([]byte(nil), sb...); b[12] ^= 0x80; return b }(), // arrival sign flip
		func() []byte { b := append([]byte(nil), sb...); b[21] = 0xFF; return b }(),  // count corruption
	)
	return seeds
}

// FuzzDecodeFrame pins the wire decoder's contract on hostile input,
// mirroring FuzzDecodeModel: it never panics, never allocates
// proportionally to an attacker-chosen count (every count is checked
// against the bytes present and the protocol bounds), and fails only
// with the typed errors. A body that does decode must describe a frame
// the encoders would emit: re-encoding it must succeed and decode back
// to an equivalent frame type.
//
// Run locally with: go test ./internal/wire -fuzz FuzzDecodeFrame
// CI runs it as a bounded smoke (-fuzztime 30s).
func FuzzDecodeFrame(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var fr wire.Frame
		if err := wire.Decode(body, &fr); err != nil {
			if !typedWireError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Decoded frames must re-encode: the decoder's bounds are at
		// least as strict as the encoders'.
		var enc []byte
		var err error
		switch fr.Type {
		case wire.TypeHello:
			enc, err = wire.AppendHello(nil, fr.Clock, fr.Registry, fr.Tenant)
		case wire.TypeWelcome:
			enc = wire.AppendWelcome(nil, fr.Templates, fr.MaxBatch)
		case wire.TypeSubmit:
			enc, err = wire.AppendSubmit(nil, fr.Seq, fr.ArrivalMicros, fr.DeadlineMicros, fr.Queries)
		case wire.TypeAck:
			enc = wire.AppendAck(nil, fr.Seq, fr.Accepted, fr.Shed, fr.Draining)
		case wire.TypeFinish:
			enc = wire.AppendFinish(nil)
		case wire.TypeResult:
			enc = wire.AppendResult(nil, fr.Cost, fr.Penalty, fr.Completed, fr.ShedTotal, fr.VMs, fr.Epoch, fr.Draining)
		case wire.TypeError:
			enc = wire.AppendError(nil, fr.Message)
		default:
			t.Fatalf("decode accepted unknown type %d", fr.Type)
		}
		if err != nil {
			t.Fatalf("decoded frame cannot re-encode: %v", err)
		}
		var back wire.Frame
		if err := wire.Decode(enc[4:], &back); err != nil {
			t.Fatalf("re-encoded frame fails decode: %v", err)
		}
		if back.Type != fr.Type {
			t.Fatalf("round trip changed type: %d -> %d", fr.Type, back.Type)
		}
	})
}

// TestWriteFuzzCorpus materializes the seeds as committed corpus files
// (testdata/fuzz/FuzzDecodeFrame/), so `go test -fuzz` and CI's bounded
// smoke start from real protocol inputs. Regenerated with -update.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*update {
		t.Skip("corpus regeneration runs with -update")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
		name := filepath.Join(dir, fmt.Sprintf("seed_%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
