package wire_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"wisedb/internal/wire"
)

// frames returns one valid encoded frame of every type.
func frames(t testing.TB) map[string][]byte {
	t.Helper()
	hello, err := wire.AppendHello(nil, wire.ClockVirtual, "default", "tenant-0")
	if err != nil {
		t.Fatal(err)
	}
	submit, err := wire.AppendSubmit(nil, 7, 1_000_000, 250_000, []wire.Query{
		{Template: 0, Tag: 3}, {Template: 5, Tag: 0}, {Template: 2, Tag: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{
		"hello":   hello,
		"welcome": wire.AppendWelcome(nil, 10, 256),
		"submit":  submit,
		"ack":     wire.AppendAck(nil, 7, 2, 1, true),
		"finish":  wire.AppendFinish(nil),
		"result":  wire.AppendResult(nil, 12.5, 3.25, 100, 4, 9, 42, false),
		"error":   wire.AppendError(nil, "too many connections"),
	}
}

func TestRoundTripAllFrameTypes(t *testing.T) {
	var f wire.Frame
	for name, enc := range frames(t) {
		var err error
		buf, err := readOne(enc, nil, &f)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		_ = buf
		switch name {
		case "hello":
			if f.Type != wire.TypeHello || f.Registry != "default" || f.Tenant != "tenant-0" || f.Clock != wire.ClockVirtual {
				t.Fatalf("hello mismatch: %+v", f)
			}
		case "welcome":
			if f.Type != wire.TypeWelcome || f.Templates != 10 || f.MaxBatch != 256 {
				t.Fatalf("welcome mismatch: %+v", f)
			}
		case "submit":
			if f.Type != wire.TypeSubmit || f.Seq != 7 || f.ArrivalMicros != 1_000_000 || f.DeadlineMicros != 250_000 {
				t.Fatalf("submit mismatch: %+v", f)
			}
			want := []wire.Query{{0, 3}, {5, 0}, {2, 9}}
			if len(f.Queries) != len(want) {
				t.Fatalf("submit queries: got %v", f.Queries)
			}
			for i := range want {
				if f.Queries[i] != want[i] {
					t.Fatalf("query %d: got %+v want %+v", i, f.Queries[i], want[i])
				}
			}
		case "ack":
			if f.Type != wire.TypeAck || f.Seq != 7 || f.Accepted != 2 || f.Shed != 1 || !f.Draining {
				t.Fatalf("ack mismatch: %+v", f)
			}
		case "finish":
			if f.Type != wire.TypeFinish {
				t.Fatalf("finish mismatch: %+v", f)
			}
		case "result":
			if f.Type != wire.TypeResult || f.Cost != 12.5 || f.Penalty != 3.25 ||
				f.Completed != 100 || f.ShedTotal != 4 || f.VMs != 9 || f.Epoch != 42 || f.Draining {
				t.Fatalf("result mismatch: %+v", f)
			}
		case "error":
			if f.Type != wire.TypeError || f.Message != "too many connections" {
				t.Fatalf("error mismatch: %+v", f)
			}
		}
	}
}

// readOne decodes a single encoded frame via ReadFrame.
func readOne(enc, buf []byte, f *wire.Frame) ([]byte, error) {
	return wire.ReadFrame(bytes.NewReader(enc), buf, f)
}

// The Frame and read buffer are meant to be recycled across frames:
// after a warm-up decode, further decodes of the hot-path frames
// (Submit in, Ack out) must not allocate.
func TestDecodeSubmitAllocFree(t *testing.T) {
	enc, err := wire.AppendSubmit(nil, 1, 5_000_000, 0, []wire.Query{
		{Template: 1, Tag: 0}, {Template: 0, Tag: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var f wire.Frame
	buf := make([]byte, 0, 512)
	r := bytes.NewReader(enc)
	out := make([]byte, 0, 64)
	if buf, err = wire.ReadFrame(r, buf, &f); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(enc)
		var err error
		buf, err = wire.ReadFrame(r, buf, &f)
		if err != nil {
			t.Fatal(err)
		}
		out = wire.AppendAck(out[:0], f.Seq, uint16(len(f.Queries)), 0, false)
	})
	if allocs != 0 {
		t.Fatalf("decode+ack path allocates %.1f/op, want 0", allocs)
	}
}

func TestDecodeRejectsHostileFrames(t *testing.T) {
	submit, err := wire.AppendSubmit(nil, 1, 0, 0, []wire.Query{{Template: 1, Tag: 2}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func() []byte
		want error
	}{
		{"empty body", func() []byte { return []byte{0, 0, 0, 0} }, wire.ErrTruncated},
		{"unknown type", func() []byte { return []byte{1, 0, 0, 0, 0xEE} }, wire.ErrUnknownType},
		{"oversize prefix", func() []byte {
			return []byte{0xFF, 0xFF, 0xFF, 0x7F, byte(wire.TypeFinish)}
		}, wire.ErrTooLarge},
		{"truncated submit", func() []byte {
			b := append([]byte(nil), submit...)
			b[0] -= 4 // shrink declared length below the fields present
			return b[:len(b)-4]
		}, wire.ErrTruncated},
		{"trailing garbage", func() []byte {
			b := append([]byte(nil), submit...)
			b = append(b[:len(b)], 0xAA)
			b[0] += 1
			return b
		}, wire.ErrCorrupt},
		{"bad hello version", func() []byte {
			h, _ := wire.AppendHello(nil, wire.ClockWall, "r", "t")
			h[5] = 99 // version byte
			return h
		}, wire.ErrVersion},
	}
	for _, tc := range cases {
		var f wire.Frame
		_, err := readOne(tc.mut(), nil, &f)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeSubmitBounds(t *testing.T) {
	if _, err := wire.AppendSubmit(nil, 0, 0, 0, nil); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("empty batch: got %v", err)
	}
	if _, err := wire.AppendSubmit(nil, 0, 0, 0, []wire.Query{{Template: wire.MaxTemplate, Tag: 0}}); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("template bound: got %v", err)
	}
	if _, err := wire.AppendSubmit(nil, 0, 0, 0, []wire.Query{{Template: 0, Tag: wire.MaxTag}}); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("tag bound: got %v", err)
	}
	if _, err := wire.AppendSubmit(nil, 0, -1, 0, []wire.Query{{Template: 1, Tag: 1}}); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("negative arrival: got %v", err)
	}
	// A decoded frame claiming a huge batch over a short body must fail
	// with a typed error before allocating for the claim.
	enc, err := wire.AppendSubmit(nil, 0, 0, 0, []wire.Query{{Template: 1, Tag: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Patch the count field (offset: 4 len + 1 type + 4 seq + 8 + 8 = 25).
	enc[25] = 0xFF
	enc[26] = 0x0F
	var f wire.Frame
	if _, err := readOne(enc, nil, &f); !errors.Is(err, wire.ErrTruncated) && !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("hostile count: got %v", err)
	}
}

func TestReadFramePartialStream(t *testing.T) {
	enc := wire.AppendAck(nil, 1, 1, 0, false)
	var f wire.Frame
	for cut := 1; cut < len(enc); cut++ {
		_, err := wire.ReadFrame(bytes.NewReader(enc[:cut]), nil, &f)
		if err == nil {
			t.Fatalf("cut=%d: want error", cut)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, wire.ErrTruncated) && !errors.Is(err, io.EOF) {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
	}
}

// Multiple frames back-to-back on one reader decode in sequence with a
// shared buffer, the way a connection handler consumes them.
func TestReadFrameSequence(t *testing.T) {
	var streamBuf []byte
	s1, err := wire.AppendSubmit(nil, 1, 0, 0, []wire.Query{{Template: 1, Tag: 1}})
	if err != nil {
		t.Fatal(err)
	}
	streamBuf = append(streamBuf, s1...)
	s2, err := wire.AppendSubmit(nil, 2, 10, 0, []wire.Query{{Template: 2, Tag: 2}, {Template: 3, Tag: 3}})
	if err != nil {
		t.Fatal(err)
	}
	streamBuf = append(streamBuf, s2...)
	streamBuf = append(streamBuf, wire.AppendFinish(nil)...)

	r := bytes.NewReader(streamBuf)
	var f wire.Frame
	var buf []byte
	for i, want := range []wire.Type{wire.TypeSubmit, wire.TypeSubmit, wire.TypeFinish} {
		buf, err = wire.ReadFrame(r, buf, &f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != want {
			t.Fatalf("frame %d: got type %d want %d", i, f.Type, want)
		}
	}
	if _, err := wire.ReadFrame(r, buf, &f); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}
