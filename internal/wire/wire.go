// Package wire implements the length-prefixed binary framing spoken
// between the wisedb serving daemon and its clients.
//
// Every frame on the TCP connection is
//
//	u32 bodyLen (little-endian) | u8 type | payload
//
// with bodyLen covering the type byte plus the payload. The codec is
// built for the hot arrival path: a single reused Frame struct, a
// caller-owned read buffer that is grown once and then recycled, and
// append-style encoders, so a Submit/Ack round trip performs zero
// heap allocations in steady state.
//
// The decoder mirrors internal/store's hardening contract: it never
// panics on hostile input, it fails only with the typed errors below,
// and every variable-length count is bounds-checked against both a
// protocol maximum and the bytes actually present, so a corrupt
// length field cannot drive a large allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

func toBits(f float64) uint64   { return math.Float64bits(f) }
func fromBits(b uint64) float64 { return math.Float64frombits(b) }

// Version is the protocol version carried in Hello/Welcome frames.
// There is a single supported version; mismatches fail decoding with
// ErrVersion so an old client is rejected at the handshake, not by a
// garbled stream later.
const Version = 1

// Protocol bounds. They exist so a hostile or corrupt peer cannot make
// the server allocate or index proportionally to an attacker-chosen
// number: MaxTag in particular caps the per-stream tag table the
// engine grows on first sight of a tag.
const (
	// MaxBody bounds the body (type byte + payload) of any frame.
	MaxBody = 1 << 20
	// MaxBatch bounds the number of queries in one Submit frame.
	MaxBatch = 4096
	// MaxTag bounds query tags accepted off the wire.
	MaxTag = 1 << 22
	// MaxTemplate bounds template ids accepted off the wire.
	MaxTemplate = 1 << 16
	// MaxName bounds the registry/tenant names in a Hello frame.
	MaxName = 255
	// MaxMessage bounds the message in an Error frame.
	MaxMessage = 1 << 12
)

// Frame types.
type Type uint8

const (
	// TypeHello opens a connection: version, clock mode, registry
	// and tenant names. Client -> server, first frame.
	TypeHello Type = 1
	// TypeWelcome acknowledges a Hello: version, template count and
	// the server's max batch size. Server -> client.
	TypeWelcome Type = 2
	// TypeSubmit carries a batch of arrivals with an optional
	// virtual arrival instant and per-request deadline.
	TypeSubmit Type = 3
	// TypeAck acknowledges a Submit: how many were admitted, how
	// many were shed, and whether the server is draining.
	TypeAck Type = 4
	// TypeFinish asks the server to finish the stream and report.
	TypeFinish Type = 5
	// TypeResult carries the stream's final accounting.
	TypeResult Type = 6
	// TypeError carries a fatal protocol/server error message; the
	// connection closes after it.
	TypeError Type = 7
)

// Clock modes carried in Hello. Wall mode stamps arrivals with the
// server's wall clock; virtual mode trusts the client's per-Submit
// ArrivalMicros and drives the stream's simulated clock with it, which
// is how replay tooling and the load generator compress hours of
// simulated arrivals into seconds of wire time.
const (
	ClockWall    uint8 = 0
	ClockVirtual uint8 = 1
)

// Typed decode errors. Decode and ReadFrame fail only with these
// (possibly wrapped); anything else escaping the decoder is a bug that
// FuzzDecodeFrame is there to catch.
var (
	// ErrTooLarge reports a frame whose declared body exceeds MaxBody.
	ErrTooLarge = errors.New("wire: frame exceeds size bound")
	// ErrTruncated reports a frame shorter than its fields require.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrCorrupt reports a structurally invalid frame: out-of-range
	// counts, ids beyond protocol bounds, or trailing garbage.
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrUnknownType reports an unrecognized frame type byte.
	ErrUnknownType = errors.New("wire: unknown frame type")
	// ErrVersion reports a Hello/Welcome with an unsupported version.
	ErrVersion = errors.New("wire: unsupported protocol version")
)

// Query is one arrival on the wire: a template id and a tenant tag.
type Query struct {
	Template uint32
	Tag      uint32
}

// Frame is the decoded form of any protocol frame. One Frame is meant
// to be reused across every read on a connection: Decode repopulates
// only the fields of the decoded type and recycles the Queries backing
// array, so steady-state decoding does not allocate.
type Frame struct {
	Type Type

	// Hello / Welcome.
	Version   uint8
	Clock     uint8  // Hello: ClockWall or ClockVirtual
	Registry  string // Hello
	Tenant    string // Hello
	Templates uint32 // Welcome
	MaxBatch  uint32 // Welcome

	// Submit / Ack.
	Seq            uint32
	ArrivalMicros  int64 // Submit, virtual clock mode only
	DeadlineMicros int64 // Submit: per-request placement deadline, 0 = server default
	Queries        []Query
	Accepted       uint16 // Ack
	Shed           uint16 // Ack
	Draining       bool   // Ack, Result

	// Result.
	Cost      float64
	Penalty   float64
	Completed uint32
	ShedTotal uint32
	VMs       uint32
	Epoch     uint64

	// Error.
	Message string
}

// cursor is a minimal bounds-checked little-endian reader over a frame
// body. All take methods fail with ErrTruncated once the body is
// exhausted; the error is sticky via the caller checking each step.
type cursor struct {
	buf []byte
	off int
}

func (c *cursor) remaining() int { return len(c.buf) - c.off }

func (c *cursor) u8() (uint8, error) {
	if c.remaining() < 1 {
		return 0, ErrTruncated
	}
	v := c.buf[c.off]
	c.off++
	return v, nil
}

func (c *cursor) u16() (uint16, error) {
	if c.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint16(c.buf[c.off:])
	c.off += 2
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if c.remaining() < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(c.buf[c.off:])
	c.off += 4
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.remaining() < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(c.buf[c.off:])
	c.off += 8
	return v, nil
}

func (c *cursor) i64() (int64, error) {
	v, err := c.u64()
	return int64(v), err
}

func (c *cursor) f64() (float64, error) {
	v, err := c.u64()
	return fromBits(v), err
}

// str reads a length-prefixed string whose length fits in lenBytes
// (1 or 2) and is capped at max. The length is checked against the
// remaining bytes before the string is materialized, so a corrupt
// length cannot drive an allocation larger than the frame itself.
func (c *cursor) str(lenBytes, max int) (string, error) {
	var n int
	switch lenBytes {
	case 1:
		v, err := c.u8()
		if err != nil {
			return "", err
		}
		n = int(v)
	default:
		v, err := c.u16()
		if err != nil {
			return "", err
		}
		n = int(v)
	}
	if n > max {
		return "", ErrCorrupt
	}
	if c.remaining() < n {
		return "", ErrTruncated
	}
	s := string(c.buf[c.off : c.off+n])
	c.off += n
	return s, nil
}

// done fails with ErrCorrupt if the body has trailing bytes: every
// frame must consume exactly its declared length.
func (c *cursor) done() error {
	if c.remaining() != 0 {
		return ErrCorrupt
	}
	return nil
}

// Decode parses one frame body (type byte + payload, without the u32
// length prefix) into f, reusing f's buffers. It never panics and
// fails only with the typed errors above.
func Decode(body []byte, f *Frame) error {
	if len(body) > MaxBody {
		return ErrTooLarge
	}
	if len(body) < 1 {
		return ErrTruncated
	}
	f.Type = Type(body[0])
	c := cursor{buf: body, off: 1}
	switch f.Type {
	case TypeHello:
		return decodeHello(&c, f)
	case TypeWelcome:
		return decodeWelcome(&c, f)
	case TypeSubmit:
		return decodeSubmit(&c, f)
	case TypeAck:
		return decodeAck(&c, f)
	case TypeFinish:
		return c.done()
	case TypeResult:
		return decodeResult(&c, f)
	case TypeError:
		return decodeError(&c, f)
	default:
		return ErrUnknownType
	}
}

func decodeHello(c *cursor, f *Frame) error {
	var err error
	if f.Version, err = c.u8(); err != nil {
		return err
	}
	if f.Version != Version {
		return fmt.Errorf("%w: got %d, want %d", ErrVersion, f.Version, Version)
	}
	if f.Clock, err = c.u8(); err != nil {
		return err
	}
	if f.Clock != ClockWall && f.Clock != ClockVirtual {
		return ErrCorrupt
	}
	if f.Registry, err = c.str(1, MaxName); err != nil {
		return err
	}
	if f.Tenant, err = c.str(1, MaxName); err != nil {
		return err
	}
	return c.done()
}

func decodeWelcome(c *cursor, f *Frame) error {
	var err error
	if f.Version, err = c.u8(); err != nil {
		return err
	}
	if f.Version != Version {
		return fmt.Errorf("%w: got %d, want %d", ErrVersion, f.Version, Version)
	}
	if f.Templates, err = c.u32(); err != nil {
		return err
	}
	if f.MaxBatch, err = c.u32(); err != nil {
		return err
	}
	if f.MaxBatch == 0 || f.MaxBatch > MaxBatch {
		return ErrCorrupt
	}
	return c.done()
}

func decodeSubmit(c *cursor, f *Frame) error {
	var err error
	if f.Seq, err = c.u32(); err != nil {
		return err
	}
	if f.ArrivalMicros, err = c.i64(); err != nil {
		return err
	}
	if f.ArrivalMicros < 0 {
		return ErrCorrupt
	}
	if f.DeadlineMicros, err = c.i64(); err != nil {
		return err
	}
	if f.DeadlineMicros < 0 {
		return ErrCorrupt
	}
	n, err := c.u16()
	if err != nil {
		return err
	}
	if n == 0 || int(n) > MaxBatch {
		return ErrCorrupt
	}
	if c.remaining() < int(n)*8 {
		return ErrTruncated
	}
	f.Queries = f.Queries[:0]
	for i := 0; i < int(n); i++ {
		tpl, _ := c.u32()
		tag, _ := c.u32()
		if tpl >= MaxTemplate || tag >= MaxTag {
			return ErrCorrupt
		}
		f.Queries = append(f.Queries, Query{Template: tpl, Tag: tag})
	}
	return c.done()
}

func decodeAck(c *cursor, f *Frame) error {
	var err error
	if f.Seq, err = c.u32(); err != nil {
		return err
	}
	if f.Accepted, err = c.u16(); err != nil {
		return err
	}
	if f.Shed, err = c.u16(); err != nil {
		return err
	}
	d, err := c.u8()
	if err != nil {
		return err
	}
	if d > 1 {
		return ErrCorrupt
	}
	f.Draining = d == 1
	return c.done()
}

func decodeResult(c *cursor, f *Frame) error {
	var err error
	if f.Cost, err = c.f64(); err != nil {
		return err
	}
	if f.Penalty, err = c.f64(); err != nil {
		return err
	}
	if f.Completed, err = c.u32(); err != nil {
		return err
	}
	if f.ShedTotal, err = c.u32(); err != nil {
		return err
	}
	if f.VMs, err = c.u32(); err != nil {
		return err
	}
	if f.Epoch, err = c.u64(); err != nil {
		return err
	}
	d, err := c.u8()
	if err != nil {
		return err
	}
	if d > 1 {
		return ErrCorrupt
	}
	f.Draining = d == 1
	return c.done()
}

func decodeError(c *cursor, f *Frame) error {
	var err error
	if f.Message, err = c.str(2, MaxMessage); err != nil {
		return err
	}
	return c.done()
}

// ReadFrame reads one length-prefixed frame from r into buf, decodes
// it into f, and returns the (possibly grown) buffer for reuse. The
// length prefix is validated against MaxBody before any body bytes are
// read, so a hostile prefix cannot drive a large allocation.
func ReadFrame(r io.Reader, buf []byte, f *Frame) ([]byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 0, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return buf, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxBody {
		return buf, ErrTooLarge
	}
	if n == 0 {
		return buf, ErrTruncated
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, Decode(body, f)
}

// --- Encoders -----------------------------------------------------------
//
// All encoders append a complete frame (length prefix included) to dst
// and return the extended slice, so a caller-owned buffer can be
// recycled across frames: dst = wire.AppendAck(dst[:0], ...).

// beginFrame appends the length placeholder plus the type byte and
// returns the offset of the placeholder.
func beginFrame(dst []byte, typ Type) ([]byte, int) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(typ))
	return dst, start
}

// endFrame patches the length prefix of the frame begun at start.
func endFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	dst = appendU32(dst, uint32(v))
	return appendU32(dst, uint32(v>>32))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendHello appends a Hello frame. Registry and tenant must fit in
// MaxName bytes.
func AppendHello(dst []byte, clock uint8, registry, tenant string) ([]byte, error) {
	if len(registry) > MaxName || len(tenant) > MaxName {
		return dst, fmt.Errorf("%w: name exceeds %d bytes", ErrCorrupt, MaxName)
	}
	if clock != ClockWall && clock != ClockVirtual {
		return dst, fmt.Errorf("%w: bad clock mode %d", ErrCorrupt, clock)
	}
	dst, start := beginFrame(dst, TypeHello)
	dst = append(dst, Version, clock, byte(len(registry)))
	dst = append(dst, registry...)
	dst = append(dst, byte(len(tenant)))
	dst = append(dst, tenant...)
	return endFrame(dst, start), nil
}

// AppendWelcome appends a Welcome frame.
func AppendWelcome(dst []byte, templates, maxBatch uint32) []byte {
	dst, start := beginFrame(dst, TypeWelcome)
	dst = append(dst, Version)
	dst = appendU32(dst, templates)
	dst = appendU32(dst, maxBatch)
	return endFrame(dst, start)
}

// AppendSubmit appends a Submit frame. The batch must be non-empty,
// at most MaxBatch long, and every query must respect the protocol
// bounds; violations are reported before anything is sent.
func AppendSubmit(dst []byte, seq uint32, arrivalMicros, deadlineMicros int64, queries []Query) ([]byte, error) {
	if len(queries) == 0 || len(queries) > MaxBatch {
		return dst, fmt.Errorf("%w: batch of %d (max %d)", ErrCorrupt, len(queries), MaxBatch)
	}
	if arrivalMicros < 0 || deadlineMicros < 0 {
		return dst, fmt.Errorf("%w: negative time field", ErrCorrupt)
	}
	for _, q := range queries {
		if q.Template >= MaxTemplate || q.Tag >= MaxTag {
			return dst, fmt.Errorf("%w: query (template=%d tag=%d) out of bounds", ErrCorrupt, q.Template, q.Tag)
		}
	}
	dst, start := beginFrame(dst, TypeSubmit)
	dst = appendU32(dst, seq)
	dst = appendU64(dst, uint64(arrivalMicros))
	dst = appendU64(dst, uint64(deadlineMicros))
	dst = appendU16(dst, uint16(len(queries)))
	for _, q := range queries {
		dst = appendU32(dst, q.Template)
		dst = appendU32(dst, q.Tag)
	}
	return endFrame(dst, start), nil
}

// AppendAck appends an Ack frame.
func AppendAck(dst []byte, seq uint32, accepted, shed uint16, draining bool) []byte {
	dst, start := beginFrame(dst, TypeAck)
	dst = appendU32(dst, seq)
	dst = appendU16(dst, accepted)
	dst = appendU16(dst, shed)
	dst = appendBool(dst, draining)
	return endFrame(dst, start)
}

// AppendFinish appends a Finish frame.
func AppendFinish(dst []byte) []byte {
	dst, start := beginFrame(dst, TypeFinish)
	return endFrame(dst, start)
}

// AppendResult appends a Result frame.
func AppendResult(dst []byte, cost, penalty float64, completed, shed, vms uint32, epoch uint64, draining bool) []byte {
	dst, start := beginFrame(dst, TypeResult)
	dst = appendU64(dst, toBits(cost))
	dst = appendU64(dst, toBits(penalty))
	dst = appendU32(dst, completed)
	dst = appendU32(dst, shed)
	dst = appendU32(dst, vms)
	dst = appendU64(dst, epoch)
	dst = appendBool(dst, draining)
	return endFrame(dst, start)
}

// AppendError appends an Error frame, truncating the message to
// MaxMessage bytes.
func AppendError(dst []byte, msg string) []byte {
	if len(msg) > MaxMessage {
		msg = msg[:MaxMessage]
	}
	dst, start := beginFrame(dst, TypeError)
	dst = appendU16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	return endFrame(dst, start)
}
