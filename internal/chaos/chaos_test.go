package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/store"
	"wisedb/internal/workload"
)

func chaosModel(t testing.TB) *core.Model {
	t.Helper()
	env := schedule.NewEnv(workload.DefaultTemplates(4), cloud.DefaultVMTypes(2))
	cfg := core.DefaultTrainConfig()
	cfg.NumSamples = 100
	cfg.SampleSize = 7
	cfg.Seed = 9
	m, err := core.MustNewAdvisor(env, cfg).Train(sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// shiftedWorkload builds an arrival stream whose template mix flips from
// uniform round-robin to a pure last-template skew, driving the drift
// detector over threshold repeatedly.
func shiftedWorkload(templates []workload.Template, uniform, skewed int, gap time.Duration) *workload.Workload {
	k := len(templates)
	qs := make([]workload.Query, 0, uniform+skewed)
	for i := 0; i < uniform; i++ {
		qs = append(qs, workload.Query{TemplateID: i % k, Tag: i})
	}
	for i := 0; i < skewed; i++ {
		qs = append(qs, workload.Query{TemplateID: k - 1, Tag: uniform + i})
	}
	w := &workload.Workload{Templates: templates, Queries: qs}
	return w.WithArrivals(workload.FixedDelayArrivals(uniform+skewed, gap))
}

// fingerprint flattens everything schedule-determined about a stream result.
func fingerprint(res *core.OnlineResult) string {
	return fmt.Sprintf("cost=%.6f pen=%.6f vms=%d perf=%d retrain=%d adapt=%d hits=%d drift=%v sup=%d fail=%d deg=%d shed=%d readmit=%d epoch=%d outcomes=%v",
		res.Cost, res.Penalty, res.VMsRented, len(res.Perf),
		res.Retrainings, res.Adaptations, res.CacheHits,
		res.DriftTriggerArrivals, res.DriftSuppressed, res.DriftFailures,
		res.DegradedArrivals, res.ShedArrivals, res.FaultReadmissions,
		res.FinalEpoch, res.Outcomes)
}

// The ISSUE's acceptance scenario: a chaos run that kills VMs mid-stream,
// fails the first K retrains (tripping the breaker), and injects a transient
// checkpoint write fault — and still completes every non-shed arrival
// exactly once, ends with the breaker closed and a committed model epoch,
// and is bit-identical across same-seed reruns.
func TestChaosAcceptance(t *testing.T) {
	m := chaosModel(t)
	spec := Spec{
		Seed: 42,
		VM: cloud.FaultSpec{
			VMFailureRate: 0.5,
			VMMinLifetime: time.Minute,
			VMMaxLifetime: 20 * time.Minute,
		},
		RetrainFailures:             2, // == BreakerThreshold: trips the breaker
		CheckpointTransientFailures: 1,
	}
	// 45s gaps keep real backlogs queued on the rented VMs, so a VM death
	// has in-progress and unstarted work to kill and re-admit.
	const uniform, skewed = 32, 150
	w := shiftedWorkload(m.Env().Templates, uniform, skewed, 45*time.Second)

	runOnce := func(t *testing.T) (string, core.RegistryStats) {
		t.Helper()
		opts := core.DefaultOnlineOptions()
		opts.Drift = core.DriftOptions{Window: 16, Threshold: 0.8, Synchronous: true}
		opts.Retry = core.RetryPolicy{
			BackoffBase:        -1, // isolate the breaker: no backoff windows
			BreakerThreshold:   2,
			BreakerCooldown:    2,
			CheckpointAttempts: 3,
			CheckpointBackoff:  time.Millisecond,
		}
		opts.Degrade = true
		o := core.NewOnlineScheduler(m, opts)
		o.Registry().SetRetrain(spec.Retrain(core.DriftRetrain))
		ms, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Registry().CheckpointTo(ms); err != nil {
			t.Fatal(err)
		}
		ms.SetPayloadWriter(spec.PayloadWriter())

		results, err := o.RunTenants(context.Background(), []core.Tenant{{
			ID:       core.HashTenantID("chaos-tenant"),
			Workload: w,
			Faults:   spec.VMPlan(0),
		}})
		if err != nil {
			t.Fatalf("chaos stream failed: %v", err)
		}
		o.Registry().Wait()
		res := results[0]

		// Every non-shed arrival completes exactly once (nothing sheds
		// here: MaxBacklog is off), across VM kills and epoch swaps.
		if res.ShedArrivals != 0 {
			t.Fatalf("nothing should shed with admission control off, got %d", res.ShedArrivals)
		}
		const n = uniform + skewed
		seen := make([]bool, n)
		for _, out := range res.Outcomes {
			if seen[out.Tag] {
				t.Fatalf("tag %d completed twice", out.Tag)
			}
			seen[out.Tag] = true
		}
		for tag, ok := range seen {
			if !ok {
				t.Fatalf("tag %d never completed (lost to a VM failure?)", tag)
			}
		}
		if res.FaultReadmissions == 0 {
			t.Fatal("the chaos plan never killed a VM holding work; the scenario is not exercising re-admission")
		}
		if res.DriftFailures != spec.RetrainFailures {
			t.Fatalf("want the %d injected retrain failures on the stream, got %d", spec.RetrainFailures, res.DriftFailures)
		}

		stats := o.Registry().Stats()
		rb := stats.Robustness
		if rb.Breaker != "closed" || rb.BreakerOpens != 1 || rb.BreakerCloses != 1 {
			t.Fatalf("breaker must have tripped once and recovered, got %+v", rb)
		}
		if !errors.Is(stats.LastErr, ErrInjected) {
			t.Fatalf("the last retrain error must be the injected fault, got %v", stats.LastErr)
		}
		if stats.Epoch < 1 || stats.Swaps < 1 || res.FinalEpoch < 1 {
			t.Fatalf("the post-breaker probe must have swapped a new epoch in, got %+v (stream epoch %d)", stats, res.FinalEpoch)
		}
		// The transient checkpoint fault was retried to a commit.
		if rb.CheckpointRetries != 1 || stats.CheckpointFailures != 0 {
			t.Fatalf("want 1 checkpoint retry and 0 failures, got %+v", stats)
		}
		if latest, ok := ms.LatestEpoch(); !ok || latest < 1 {
			t.Fatalf("the swapped epoch must be committed to the store, got %d (%v)", latest, ok)
		}
		return fingerprint(res), stats
	}

	fp1, _ := runOnce(t)
	fp2, _ := runOnce(t)
	if fp1 != fp2 {
		t.Fatalf("chaos run is not bit-deterministic across same-seed reruns:\nrun 1: %s\nrun 2: %s", fp1, fp2)
	}
}

// VMPlan sub-seeds per stream: distinct streams draw distinct failure
// sequences, the same stream draws the same one, and a fault-free spec
// yields no plan at all.
func TestVMPlanSubSeeding(t *testing.T) {
	spec := Spec{Seed: 7, VM: cloud.FaultSpec{VMFailureRate: 1, VMMinLifetime: time.Minute, VMMaxLifetime: time.Hour}}
	if (Spec{Seed: 7}).VMPlan(0) != nil {
		t.Fatal("a spec without VM faults must yield a nil plan")
	}
	if spec.VMPlan(0) == nil {
		t.Fatal("an armed spec must yield a plan")
	}
	fate := func(stream int) string {
		sim := cloud.NewSim()
		sim.SetFaults(spec.VMPlan(stream))
		vt := cloud.DefaultVMTypes(1)[0]
		var out string
		for i := 0; i < 3; i++ {
			vm := sim.Rent(vt, time.Duration(i)*time.Minute)
			at, fails := vm.FailsAt()
			out += fmt.Sprintf("%v/%v;", at, fails)
		}
		return out
	}
	if fate(0) != fate(0) {
		t.Fatal("the same stream index must draw the same failure sequence")
	}
	if fate(0) == fate(1) {
		t.Fatal("distinct stream indices must draw distinct failure sequences")
	}
}

// The standalone injectors count faults across concurrent callers and tag
// them with ErrInjected.
func TestStandaloneInjectors(t *testing.T) {
	inner := func(context.Context, *core.ModelEpoch, []float64) (*core.Model, error) {
		return nil, errors.New("inner reached")
	}
	f := FailFirstRetrains(2, inner)
	for i := 0; i < 2; i++ {
		if _, err := f(context.Background(), nil, nil); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: want injected fault, got %v", i, err)
		}
	}
	if _, err := f(context.Background(), nil, nil); errors.Is(err, ErrInjected) || err == nil {
		t.Fatalf("call 3 must reach inner, got %v", err)
	}

	dir := t.TempDir()
	wtr := FlakyPayloadWriter(1)
	if err := wtr(dir+"/x", []byte("a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first write must fail injected, got %v", err)
	}
	if err := wtr(dir+"/x", []byte("a")); err != nil {
		t.Fatalf("second write must land atomically, got %v", err)
	}
}
