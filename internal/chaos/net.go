package chaos

import (
	"net"
	"sync/atomic"
	"time"
)

// NetFaultSpec configures network fault injection at the serving
// daemon's listener: a fraction of accepted connections is fated to be
// dropped mid-stream (the socket dies under the peer) or stalled (the
// connection freezes long enough to trip read timeouts), after a
// deterministic number of bytes has flowed. The zero value injects
// nothing.
type NetFaultSpec struct {
	// DropRate is the probability a connection is severed mid-life.
	DropRate float64
	// StallRate is the probability a connection stalls once for
	// StallFor before resuming. Drop wins when both are drawn.
	StallRate float64
	// StallFor is the stall duration. Default 50ms.
	StallFor time.Duration
	// MinBytes and MaxBytes bound the bytes read before the fate
	// fires, so faults land mid-protocol rather than at accept time.
	// Defaults 64 and 4096.
	MinBytes, MaxBytes int
}

// Enabled reports whether the spec injects anything.
func (n NetFaultSpec) Enabled() bool { return n.DropRate > 0 || n.StallRate > 0 }

func (n NetFaultSpec) withDefaults() NetFaultSpec {
	if n.StallFor <= 0 {
		n.StallFor = 50 * time.Millisecond
	}
	if n.MinBytes <= 0 {
		n.MinBytes = 64
	}
	if n.MaxBytes < n.MinBytes {
		n.MaxBytes = n.MinBytes + 4032
	}
	return n
}

// Connection fates.
const (
	fateNone = iota
	fateDrop
	fateStall
)

// WrapListener wraps a listener so accepted connections draw
// deterministic fates from the spec, sub-seeded by accept order: the
// same Spec over the same connection sequence injects the same drops
// and stalls at the same byte offsets. Faults fire on the wrapped
// side's reads — wrap the server's listener and the server observes
// dropped and stalled clients.
func (s Spec) WrapListener(ln net.Listener) net.Listener {
	if !s.Net.Enabled() {
		return ln
	}
	return &faultListener{Listener: ln, seed: uint64(s.Seed), spec: s.Net.withDefaults()}
}

type faultListener struct {
	net.Listener
	seed uint64
	spec NetFaultSpec
	n    atomic.Uint64
}

// sub64 is the same SplitMix64-style sub-seeding the VM plans use.
func sub64(seed, idx uint64) uint64 {
	z := seed + (idx+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a draw to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return c, err
	}
	idx := l.n.Add(1) - 1
	draw := sub64(l.seed, idx)
	fate := fateNone
	switch u := unit(draw); {
	case u < l.spec.DropRate:
		fate = fateDrop
	case u < l.spec.DropRate+l.spec.StallRate:
		fate = fateStall
	}
	if fate == fateNone {
		return c, nil
	}
	span := uint64(l.spec.MaxBytes - l.spec.MinBytes + 1)
	after := l.spec.MinBytes + int(sub64(draw, 1)%span)
	return &faultConn{Conn: c, fate: fate, after: after, stall: l.spec.StallFor}, nil
}

// faultConn fires its fate once its read byte count crosses the
// threshold: a drop closes the underlying socket and surfaces the
// close on this and every later read; a stall sleeps once, then the
// connection behaves normally again.
type faultConn struct {
	net.Conn
	fate  int
	after int
	stall time.Duration
	read  int
	fired bool
}

func (c *faultConn) Read(p []byte) (int, error) {
	if !c.fired && c.read >= c.after {
		c.fired = true
		switch c.fate {
		case fateDrop:
			c.Conn.Close()
		case fateStall:
			time.Sleep(c.stall)
		}
	}
	n, err := c.Conn.Read(p)
	c.read += n
	return n, err
}
