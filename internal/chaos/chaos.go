// Package chaos is the fault-injection harness over the serving stack: one
// Spec describes a whole chaos scenario — VM failures and stragglers in the
// cloud simulator, transient retrain failures in the model registry, flaky
// payload writes in the model store — and hands out the deterministic
// injectors each layer accepts. Everything is seeded: the same Spec and seed
// produce the same faults at the same points, so a chaos run is a
// reproducible test case, not a flake generator.
package chaos

import (
	"context"
	"fmt"
	"sync/atomic"

	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/store"
)

// ErrInjected marks every fault this package injects, so tests and failure
// accounting can tell injected faults from real ones with errors.Is.
var ErrInjected = fmt.Errorf("chaos: injected fault")

// Spec describes one chaos scenario across the serving stack's failure
// domains. The zero value injects nothing.
type Spec struct {
	// Seed drives every deterministic draw derived from this Spec.
	Seed int64
	// VM configures VM failures and stragglers in the cloud simulator.
	VM cloud.FaultSpec
	// RetrainFailures fails the first N retrain attempts (N >= the
	// registry's breaker threshold trips the breaker).
	RetrainFailures int
	// CheckpointTransientFailures fails the first N model-store payload
	// writes, exercising the registry's bounded checkpoint retry.
	CheckpointTransientFailures int
	// Net configures network faults (dropped/stalled connections) at
	// the serving daemon's listener; see WrapListener.
	Net NetFaultSpec
}

// VMPlan returns the deterministic VM fault plan for one stream. Streams are
// sub-seeded from Spec.Seed by index, so a multi-tenant chaos run gives each
// tenant an independent — but still reproducible — failure sequence.
func (s Spec) VMPlan(stream int) *cloud.FaultPlan {
	if !s.VM.Enabled() {
		return nil
	}
	// SplitMix64-style sub-seeding: adjacent stream indices land far apart.
	sub := uint64(s.Seed) + uint64(stream+1)*0x9e3779b97f4a7c15
	sub ^= sub >> 30
	sub *= 0xbf58476d1ce4e5b9
	return cloud.NewFaultPlan(int64(sub), s.VM)
}

// Retrain wraps a RetrainFunc so its first Spec.RetrainFailures calls fail
// with ErrInjected and every later call delegates to inner. The counter is
// shared across concurrent retrains (single-flight or not), so exactly N
// attempts fail no matter how they interleave.
func (s Spec) Retrain(inner core.RetrainFunc) core.RetrainFunc {
	var calls atomic.Int64
	n := int64(s.RetrainFailures)
	return func(ctx context.Context, cur *core.ModelEpoch, mix []float64) (*core.Model, error) {
		if calls.Add(1) <= n {
			return nil, fmt.Errorf("%w: retrain attempt %d of %d failing", ErrInjected, calls.Load(), n)
		}
		return inner(ctx, cur, mix)
	}
}

// PayloadWriter returns a store payload writer whose first
// Spec.CheckpointTransientFailures calls fail with ErrInjected, after which
// it delegates to the store's atomic write. Install with
// ModelStore.SetPayloadWriter to exercise the checkpoint retry path.
func (s Spec) PayloadWriter() func(path string, data []byte) error {
	var calls atomic.Int64
	n := int64(s.CheckpointTransientFailures)
	return func(path string, data []byte) error {
		if calls.Add(1) <= n {
			return fmt.Errorf("%w: transient write fault %d of %d", ErrInjected, calls.Load(), n)
		}
		return store.WriteFileAtomic(path, data)
	}
}

// FailFirstRetrains wraps inner so its first k calls fail with ErrInjected.
// Concurrency-safe; standalone form of Spec.Retrain for tests that inject a
// retrain fault without a full Spec.
func FailFirstRetrains(k int, inner core.RetrainFunc) core.RetrainFunc {
	return Spec{RetrainFailures: k}.Retrain(inner)
}

// FlakyPayloadWriter fails the first k payload writes with ErrInjected, then
// writes atomically. Standalone form of Spec.PayloadWriter.
func FlakyPayloadWriter(k int) func(path string, data []byte) error {
	return Spec{CheckpointTransientFailures: k}.PayloadWriter()
}
