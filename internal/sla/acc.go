package sla

import (
	"encoding/binary"
	"sort"
	"time"
)

// Accumulator tracks the penalty of a growing schedule incrementally. The
// scheduling-graph search charges each placement edge the penalty delta
// p(R, v_s) − p(R, u_s) (Eq. 2); accumulators compute those deltas in O(1)
// or O(n) without re-deriving the whole schedule, and expose exactly the
// penalty-relevant summary of schedule history for state deduplication.
//
// Accumulators are immutable: Add returns a new accumulator.
type Accumulator interface {
	// Penalty returns p(R, S) in cents for the queries added so far.
	Penalty() float64
	// Add returns a new accumulator with one more completed query of the
	// given template and latency.
	Add(templateID int, latency time.Duration) Accumulator
	// PeekAdd returns Add(templateID, latency).Penalty() without
	// allocating the successor accumulator. Placement-edge weights and
	// the cost-of-X feature evaluate many hypothetical additions per
	// state; PeekAdd keeps them O(log n) even for distribution-based
	// goals.
	PeekAdd(templateID int, latency time.Duration) float64
	// AppendSignature appends a canonical encoding of the accumulator's
	// penalty-relevant state to buf. Two search states whose accumulators
	// produce identical signatures (and that otherwise agree) have
	// identical future costs.
	AppendSignature(buf []byte) []byte
}

// NewAccumulator returns an empty accumulator for the goal.
func NewAccumulator(g Goal) Accumulator {
	if pct, ok := g.(Percentile); ok {
		return pctAcc{goal: pct}
	}
	switch g.Class() {
	case ClassDecomposable:
		one, _ := g.(SingleQueryPenalty)
		return decompAcc{goal: g, one: one}
	case ClassMeanBased:
		mean, _ := g.(MeanPenalty)
		return meanAcc{goal: g, mean: mean}
	case ClassDistribution:
		return distAcc{goal: g}
	default:
		panic("sla: unknown goal class")
	}
}

// penaltyOne evaluates a goal's penalty for one query outcome, through the
// allocation-free SingleQueryPenalty fast path when the goal provides it.
func penaltyOne(goal Goal, one SingleQueryPenalty, templateID int, latency time.Duration) float64 {
	if one != nil {
		return one.PenaltyOne(templateID, latency)
	}
	return goal.Penalty([]QueryPerf{{TemplateID: templateID, Latency: latency}})
}

// penaltyMean evaluates a goal's penalty for a workload with the given
// count and latency sum, through the allocation-free MeanPenalty fast path
// when the goal provides it.
func penaltyMean(goal Goal, mean MeanPenalty, n int, sum time.Duration) float64 {
	if n == 0 {
		return 0
	}
	if mean != nil {
		return mean.PenaltyMean(sum / time.Duration(n))
	}
	return goal.Penalty([]QueryPerf{{TemplateID: 0, Latency: sum / time.Duration(n)}})
}

// decompAcc handles decomposable goals (PerQuery, Max): the penalty is a sum
// of independent per-query penalties, so only the running total matters and
// the deduplication signature is empty (history cannot affect future
// penalties).
type decompAcc struct {
	goal    Goal
	one     SingleQueryPenalty // non-nil fast path, resolved once
	penalty float64
}

func (a decompAcc) Penalty() float64 { return a.penalty }

func (a decompAcc) Add(templateID int, latency time.Duration) Accumulator {
	a.penalty += penaltyOne(a.goal, a.one, templateID, latency)
	return a
}

func (a decompAcc) PeekAdd(templateID int, latency time.Duration) float64 {
	return a.penalty + penaltyOne(a.goal, a.one, templateID, latency)
}

func (a decompAcc) AppendSignature(buf []byte) []byte { return buf }

// meanAcc handles the Average goal: the penalty depends only on the count
// and sum of latencies.
type meanAcc struct {
	goal Goal
	mean MeanPenalty // non-nil fast path, resolved once
	n    int
	sum  time.Duration
}

func (a meanAcc) Penalty() float64 {
	return penaltyMean(a.goal, a.mean, a.n, a.sum)
}

func (a meanAcc) Add(templateID int, latency time.Duration) Accumulator {
	a.n++
	a.sum += latency
	return a
}

func (a meanAcc) PeekAdd(templateID int, latency time.Duration) float64 {
	return penaltyMean(a.goal, a.mean, a.n+1, a.sum+latency)
}

func (a meanAcc) AppendSignature(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(a.n))
	return binary.AppendVarint(buf, int64(a.sum/time.Millisecond))
}

// pctAcc is the Percentile accumulator. The percentile penalty depends on
// the latency multiset only through (a) how many latencies meet the
// deadline and (b) the sorted latencies exceeding it: all values at or
// under the deadline are interchangeable. Collapsing them keeps Add cheap
// and — crucially — lets the A* search merge the huge families of states
// that differ only in sub-deadline latencies.
type pctAcc struct {
	goal  Percentile
	below int             // latencies <= deadline
	above []time.Duration // latencies > deadline, sorted ascending; copied on Add
}

// rank returns the 1-based rank of the goal's percentile in a workload of
// size n (nearest-rank definition, as in Percentile.Penalty).
func (a pctAcc) rank(n int) int {
	rank := int((a.goal.Percent/100)*float64(n) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

func (a pctAcc) Penalty() float64 {
	n := a.below + len(a.above)
	if n == 0 {
		return 0
	}
	rank := a.rank(n)
	if rank <= a.below {
		return 0
	}
	return ratePenalty(a.above[rank-a.below-1]-a.goal.Deadline, a.goal.Rate)
}

func (a pctAcc) Add(templateID int, latency time.Duration) Accumulator {
	if latency <= a.goal.Deadline {
		a.below++
		return a
	}
	above := make([]time.Duration, len(a.above)+1)
	i := sort.Search(len(a.above), func(i int) bool { return a.above[i] >= latency })
	copy(above, a.above[:i])
	above[i] = latency
	copy(above[i+1:], a.above[i:])
	a.above = above
	return a
}

func (a pctAcc) PeekAdd(templateID int, latency time.Duration) float64 {
	n := a.below + len(a.above) + 1
	rank := a.rank(n)
	below := a.below
	if latency <= a.goal.Deadline {
		below++
		if rank <= below {
			return 0
		}
		return ratePenalty(a.above[rank-below-1]-a.goal.Deadline, a.goal.Rate)
	}
	if rank <= below {
		return 0
	}
	idx := sort.Search(len(a.above), func(i int) bool { return a.above[i] >= latency })
	p := rank - below - 1 // index into the virtual sorted "above" with latency inserted at idx
	var at time.Duration
	switch {
	case p < idx:
		at = a.above[p]
	case p == idx:
		at = latency
	default:
		at = a.above[p-1]
	}
	return ratePenalty(at-a.goal.Deadline, a.goal.Rate)
}

func (a pctAcc) AppendSignature(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(a.below))
	for _, l := range a.above {
		buf = binary.AppendVarint(buf, int64(l/time.Millisecond))
	}
	return buf
}

// MeanState reports the query count and latency sum tracked by an Average
// goal's accumulator. ok is false for other accumulator kinds. The search
// uses it to couple its future-VM-count bound with the mean constraint.
func MeanState(acc Accumulator) (n int, sum time.Duration, ok bool) {
	a, isMean := acc.(meanAcc)
	if !isMean {
		return 0, 0, false
	}
	return a.n, a.sum, true
}

// PctState reports the deadline-meeting query count and the sorted
// violating latencies tracked by a Percentile goal's accumulator. ok is
// false for other accumulator kinds.
func PctState(acc Accumulator) (below int, above []time.Duration, ok bool) {
	a, isPct := acc.(pctAcc)
	if !isPct {
		return 0, nil, false
	}
	return a.below, a.above, true
}

// distAcc handles distribution-dependent goals other than Percentile: the
// penalty depends on the full latency multiset, kept sorted.
type distAcc struct {
	goal Goal
	lats []time.Duration // sorted ascending; shared, copied on Add
}

func (a distAcc) Penalty() float64 {
	if len(a.lats) == 0 {
		return 0
	}
	perf := make([]QueryPerf, len(a.lats))
	for i, l := range a.lats {
		perf[i] = QueryPerf{Latency: l}
	}
	return a.goal.Penalty(perf)
}

func (a distAcc) Add(templateID int, latency time.Duration) Accumulator {
	lats := make([]time.Duration, len(a.lats)+1)
	i := sort.Search(len(a.lats), func(i int) bool { return a.lats[i] >= latency })
	copy(lats, a.lats[:i])
	lats[i] = latency
	copy(lats[i+1:], a.lats[i:])
	a.lats = lats
	return a
}

func (a distAcc) PeekAdd(templateID int, latency time.Duration) float64 {
	goal, ok := a.goal.(Percentile)
	if !ok {
		return a.Add(templateID, latency).Penalty()
	}
	n := len(a.lats) + 1
	rank := int((goal.Percent/100)*float64(n) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	// Value at the rank-th position of the sorted multiset with the new
	// latency virtually inserted at index idx.
	idx := sort.Search(len(a.lats), func(i int) bool { return a.lats[i] >= latency })
	var at time.Duration
	switch {
	case rank-1 < idx:
		at = a.lats[rank-1]
	case rank-1 == idx:
		at = latency
	default:
		at = a.lats[rank-2]
	}
	return ratePenalty(overage(at, goal.Deadline), goal.Rate)
}

func (a distAcc) AppendSignature(buf []byte) []byte {
	for _, l := range a.lats {
		buf = binary.AppendVarint(buf, int64(l/time.Millisecond))
	}
	return buf
}
