package sla

import (
	"fmt"
	"sort"
	"time"

	"wisedb/internal/workload"
)

// MaxLatency is the Max goal (§2, metric 2): no query in the workload may
// exceed Deadline. The violation period of a query is the time from missing
// the deadline until completion, so the penalty is Rate cents per second of
// per-query overage, summed over queries (§7.1, metric 1).
type MaxLatency struct {
	// Deadline is the workload-wide latency bound.
	Deadline time.Duration
	// Strictest is the tightest feasible deadline (the latency of the
	// longest template), used by Tighten (§7.3).
	Strictest time.Duration
	// Rate is the penalty rate in cents per second of violation.
	Rate float64
}

// NewMaxLatency builds a Max goal for a template set: the strictest feasible
// deadline is the longest template latency on the reference VM type.
func NewMaxLatency(deadline time.Duration, templates []workload.Template, rate float64) MaxLatency {
	strictest := time.Duration(0)
	for _, t := range templates {
		if t.BaseLatency > strictest {
			strictest = t.BaseLatency
		}
	}
	return MaxLatency{Deadline: deadline, Strictest: strictest, Rate: rate}
}

// Name implements Goal.
func (g MaxLatency) Name() string { return "Max" }

// Key implements Goal.
func (g MaxLatency) Key() string {
	return fmt.Sprintf("max:%d:%d:%g", g.Deadline, g.Strictest, g.Rate)
}

// Penalty implements Goal.
func (g MaxLatency) Penalty(perf []QueryPerf) float64 {
	total := 0.0
	for _, p := range perf {
		total += ratePenalty(overage(p.Latency, g.Deadline), g.Rate)
	}
	return total
}

// PenaltyOne implements SingleQueryPenalty.
func (g MaxLatency) PenaltyOne(templateID int, latency time.Duration) float64 {
	return ratePenalty(overage(latency, g.Deadline), g.Rate)
}

// Monotonic implements Goal. Appending a query to the open VM can only add
// violations (§4.3).
func (g MaxLatency) Monotonic() bool { return true }

// Class implements Goal.
func (g MaxLatency) Class() Class { return ClassDecomposable }

// Tighten implements Goal.
func (g MaxLatency) Tighten(p float64) Goal {
	g.Deadline = tightenDeadline(g.Deadline, g.Strictest, p)
	return g
}

// Shiftable implements Goal.
func (g MaxLatency) Shiftable() bool { return true }

// Shift implements Goal: for Max the tightening function of the wait d is
// the identity (§6.3).
func (g MaxLatency) Shift(d time.Duration) Goal {
	g.Deadline -= d
	if g.Deadline < 0 {
		g.Deadline = 0
	}
	return g
}

// PerQuery is the per-query-deadline goal (§2, metric 1): queries of
// template i must finish within Deadlines[i]. The paper's experiments derive
// deadlines as a multiple of each template's latency (§7.1, metric 2).
type PerQuery struct {
	// Deadlines maps template ID to that template's latency bound.
	Deadlines []time.Duration
	// Strictest maps template ID to the tightest feasible deadline (the
	// template's own latency).
	Strictest []time.Duration
	// Rate is the penalty rate in cents per second of violation.
	Rate float64
}

// NewPerQuery builds a PerQuery goal whose deadline for each template is
// multiplier × the template's base latency (§7.1 uses multiplier 3).
func NewPerQuery(multiplier float64, templates []workload.Template, rate float64) PerQuery {
	deadlines := make([]time.Duration, len(templates))
	strictest := make([]time.Duration, len(templates))
	for i, t := range templates {
		deadlines[i] = time.Duration(multiplier * float64(t.BaseLatency))
		strictest[i] = t.BaseLatency
	}
	return PerQuery{Deadlines: deadlines, Strictest: strictest, Rate: rate}
}

// Deadline returns the deadline for template id, or the maximum deadline for
// out-of-range ids (unknown templates are matched by latency elsewhere).
func (g PerQuery) Deadline(id int) time.Duration {
	if id >= 0 && id < len(g.Deadlines) {
		return g.Deadlines[id]
	}
	max := time.Duration(0)
	for _, d := range g.Deadlines {
		if d > max {
			max = d
		}
	}
	return max
}

// Name implements Goal.
func (g PerQuery) Name() string { return "PerQuery" }

// Key implements Goal.
func (g PerQuery) Key() string {
	return fmt.Sprintf("perquery:%v:%g", g.Deadlines, g.Rate)
}

// Penalty implements Goal.
func (g PerQuery) Penalty(perf []QueryPerf) float64 {
	total := 0.0
	for _, p := range perf {
		total += ratePenalty(overage(p.Latency, g.Deadline(p.TemplateID)), g.Rate)
	}
	return total
}

// PenaltyOne implements SingleQueryPenalty.
func (g PerQuery) PenaltyOne(templateID int, latency time.Duration) float64 {
	return ratePenalty(overage(latency, g.Deadline(templateID)), g.Rate)
}

// Monotonic implements Goal.
func (g PerQuery) Monotonic() bool { return true }

// Class implements Goal.
func (g PerQuery) Class() Class { return ClassDecomposable }

// Tighten implements Goal.
func (g PerQuery) Tighten(p float64) Goal {
	deadlines := make([]time.Duration, len(g.Deadlines))
	for i := range deadlines {
		deadlines[i] = tightenDeadline(g.Deadlines[i], g.Strictest[i], p)
	}
	g.Deadlines = deadlines
	return g
}

// Shiftable implements Goal.
func (g PerQuery) Shiftable() bool { return true }

// Shift implements Goal.
func (g PerQuery) Shift(d time.Duration) Goal {
	deadlines := make([]time.Duration, len(g.Deadlines))
	for i := range deadlines {
		deadlines[i] = g.Deadlines[i] - d
		if deadlines[i] < 0 {
			deadlines[i] = 0
		}
	}
	g.Deadlines = deadlines
	return g
}

// WithExtraTemplate returns a copy of the goal extended with a deadline for
// one more template. Online scheduling introduces "new templates" whose
// latency is inflated by queue wait (§6.3); the new template keeps the
// deadline of the template it derives from, reduced by the wait already
// served.
func (g PerQuery) WithExtraTemplate(deadline, strictest time.Duration) PerQuery {
	g.Deadlines = append(append([]time.Duration(nil), g.Deadlines...), deadline)
	g.Strictest = append(append([]time.Duration(nil), g.Strictest...), strictest)
	return g
}

// Average is the average-latency goal (§2, metric 3): the mean latency of
// the workload must not exceed Deadline. Its violation period is the
// difference between the actual and desired average (§3), so the penalty is
// Rate cents per second of mean overage (§7.1, metric 3).
type Average struct {
	// Deadline is the bound on mean workload latency.
	Deadline time.Duration
	// Strictest is the tightest feasible bound (the mean template
	// latency).
	Strictest time.Duration
	// Rate is the penalty rate in cents per second of violation.
	Rate float64
}

// NewAverage builds an Average goal; the strictest feasible bound is the
// mean template latency on the reference VM type.
func NewAverage(deadline time.Duration, templates []workload.Template, rate float64) Average {
	var sum time.Duration
	for _, t := range templates {
		sum += t.BaseLatency
	}
	strictest := time.Duration(0)
	if len(templates) > 0 {
		strictest = sum / time.Duration(len(templates))
	}
	return Average{Deadline: deadline, Strictest: strictest, Rate: rate}
}

// Name implements Goal.
func (g Average) Name() string { return "Average" }

// Key implements Goal.
func (g Average) Key() string {
	return fmt.Sprintf("avg:%d:%d:%g", g.Deadline, g.Strictest, g.Rate)
}

// Penalty implements Goal.
func (g Average) Penalty(perf []QueryPerf) float64 {
	if len(perf) == 0 {
		return 0
	}
	var sum time.Duration
	for _, p := range perf {
		sum += p.Latency
	}
	avg := sum / time.Duration(len(perf))
	return ratePenalty(overage(avg, g.Deadline), g.Rate)
}

// PenaltyMean implements MeanPenalty.
func (g Average) PenaltyMean(mean time.Duration) float64 {
	return ratePenalty(overage(mean, g.Deadline), g.Rate)
}

// Monotonic implements Goal: adding a short query can lower the mean, so
// Average is not monotonically increasing (§4.3).
func (g Average) Monotonic() bool { return false }

// Class implements Goal.
func (g Average) Class() Class { return ClassMeanBased }

// Tighten implements Goal.
func (g Average) Tighten(p float64) Goal {
	g.Deadline = tightenDeadline(g.Deadline, g.Strictest, p)
	return g
}

// Shiftable implements Goal.
func (g Average) Shiftable() bool { return false }

// Shift implements Goal.
func (g Average) Shift(time.Duration) Goal { panic("sla: Average goal is not linearly shiftable") }

// Percentile is the percentile goal (§2, metric 4): at least Percent% of
// the workload's queries must finish within Deadline. The violation period
// is the overage of the Percent-th percentile latency beyond Deadline
// (§7.1, metric 4).
type Percentile struct {
	// Percent is the fraction of queries (0-100] that must meet Deadline.
	Percent float64
	// Deadline is the latency bound for the Percent-th percentile.
	Deadline time.Duration
	// Strictest is the tightest feasible bound.
	Strictest time.Duration
	// Rate is the penalty rate in cents per second of violation.
	Rate float64
}

// NewPercentile builds a Percentile goal (§7.1 uses 90% within 10 minutes).
// The strictest feasible deadline is the longest template latency.
func NewPercentile(percent float64, deadline time.Duration, templates []workload.Template, rate float64) Percentile {
	if percent <= 0 || percent > 100 {
		panic("sla: NewPercentile requires 0 < percent <= 100")
	}
	strictest := time.Duration(0)
	for _, t := range templates {
		if t.BaseLatency > strictest {
			strictest = t.BaseLatency
		}
	}
	return Percentile{Percent: percent, Deadline: deadline, Strictest: strictest, Rate: rate}
}

// Name implements Goal.
func (g Percentile) Name() string { return "Percentile" }

// Key implements Goal.
func (g Percentile) Key() string {
	return fmt.Sprintf("pct:%g:%d:%d:%g", g.Percent, g.Deadline, g.Strictest, g.Rate)
}

// Penalty implements Goal.
func (g Percentile) Penalty(perf []QueryPerf) float64 {
	if len(perf) == 0 {
		return 0
	}
	lats := make([]time.Duration, len(perf))
	for i, p := range perf {
		lats[i] = p.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rank := int((g.Percent/100)*float64(len(lats)) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(lats) {
		rank = len(lats)
	}
	return ratePenalty(overage(lats[rank-1], g.Deadline), g.Rate)
}

// Monotonic implements Goal: adding fast queries can pull the percentile
// under the deadline, so Percentile is not monotonically increasing.
func (g Percentile) Monotonic() bool { return false }

// Class implements Goal.
func (g Percentile) Class() Class { return ClassDistribution }

// Tighten implements Goal.
func (g Percentile) Tighten(p float64) Goal {
	g.Deadline = tightenDeadline(g.Deadline, g.Strictest, p)
	return g
}

// Shiftable implements Goal.
func (g Percentile) Shiftable() bool { return false }

// Shift implements Goal.
func (g Percentile) Shift(time.Duration) Goal {
	panic("sla: Percentile goal is not linearly shiftable")
}

// tightenDeadline applies the paper's tightening formula (§7.3):
// t + (g - t) × (1 - p), where t is the strictest feasible value and g the
// current one. p < 0 loosens; the result never drops below t for p <= 1.
func tightenDeadline(current, strictest time.Duration, p float64) time.Duration {
	d := time.Duration(float64(strictest) + float64(current-strictest)*(1-p))
	if d < strictest && p <= 1 {
		d = strictest
	}
	if d < 0 {
		d = 0
	}
	return d
}
