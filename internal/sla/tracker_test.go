package sla

import (
	"math/rand"
	"testing"
	"time"

	"wisedb/internal/workload"
)

// trackerGoals returns one goal per accumulator class.
func trackerGoals() map[string]Goal {
	templates := workload.DefaultTemplates(4)
	return map[string]Goal{
		"max":        NewMaxLatency(5*time.Minute, templates, DefaultPenaltyRate),
		"perquery":   NewPerQuery(1.5, templates, DefaultPenaltyRate),
		"average":    NewAverage(4*time.Minute, templates, DefaultPenaltyRate),
		"percentile": NewPercentile(75, 4*time.Minute, templates, DefaultPenaltyRate),
	}
}

// A Tracker must be observationally identical to the immutable accumulator
// for the same goal over any placement sequence: same Penalty, same PeekAdd
// for arbitrary probes, same signature bytes — across Reset reuse.
func TestTrackerMatchesAccumulator(t *testing.T) {
	for name, goal := range trackerGoals() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			tr := NewTracker(goal)
			for round := 0; round < 5; round++ {
				tr.Reset()
				acc := NewAccumulator(goal)
				var trAcc Accumulator = tr
				for step := 0; step < 40; step++ {
					tpl := rng.Intn(4)
					lat := time.Duration(rng.Intn(600)) * time.Second
					// Probe before mutating: PeekAdd must agree.
					if got, want := trAcc.PeekAdd(tpl, lat), acc.PeekAdd(tpl, lat); got != want {
						t.Fatalf("round %d step %d: PeekAdd(%d,%s) = %g, accumulator says %g", round, step, tpl, lat, got, want)
					}
					trAcc = trAcc.Add(tpl, lat)
					acc = acc.Add(tpl, lat)
					if got, want := trAcc.Penalty(), acc.Penalty(); got != want {
						t.Fatalf("round %d step %d: Penalty = %g, accumulator says %g", round, step, got, want)
					}
					got := string(trAcc.AppendSignature(nil))
					want := string(acc.AppendSignature(nil))
					if got != want {
						t.Fatalf("round %d step %d: signature %q, accumulator %q", round, step, got, want)
					}
				}
			}
		})
	}
}

// Steady-state Tracker use must not allocate for goals on the serving hot
// path (decomposable and mean-based classes; the percentile tracker only
// grows its violation buffer).
func TestTrackerAllocationFree(t *testing.T) {
	for _, name := range []string{"max", "perquery", "average"} {
		goal := trackerGoals()[name]
		t.Run(name, func(t *testing.T) {
			tr := NewTracker(goal)
			allocs := testing.AllocsPerRun(50, func() {
				tr.Reset()
				var acc Accumulator = tr
				for i := 0; i < 20; i++ {
					acc.PeekAdd(i%4, time.Duration(i)*time.Minute)
					acc = acc.Add(i%4, time.Duration(i)*time.Minute)
					acc.Penalty()
				}
			})
			if allocs > 0 {
				t.Fatalf("Tracker allocated %g times per run", allocs)
			}
		})
	}
}

// The decomposable fast path must agree with the slice-based Penalty.
func TestPenaltyOneMatchesPenalty(t *testing.T) {
	templates := workload.DefaultTemplates(4)
	goals := []interface {
		Goal
		SingleQueryPenalty
	}{
		NewMaxLatency(5*time.Minute, templates, DefaultPenaltyRate),
		NewPerQuery(1.5, templates, DefaultPenaltyRate),
	}
	rng := rand.New(rand.NewSource(5))
	for _, g := range goals {
		for i := 0; i < 200; i++ {
			tpl := rng.Intn(4)
			lat := time.Duration(rng.Intn(1200)) * time.Second
			got := g.PenaltyOne(tpl, lat)
			want := g.Penalty([]QueryPerf{{TemplateID: tpl, Latency: lat}})
			if got != want {
				t.Fatalf("%s: PenaltyOne(%d, %s) = %g, Penalty = %g", g.Name(), tpl, lat, got, want)
			}
		}
	}
}

// The mean fast path must agree with the slice-based Penalty.
func TestPenaltyMeanMatchesPenalty(t *testing.T) {
	g := NewAverage(4*time.Minute, workload.DefaultTemplates(4), DefaultPenaltyRate)
	for _, mean := range []time.Duration{0, time.Minute, 4 * time.Minute, 10 * time.Minute} {
		got := g.PenaltyMean(mean)
		want := g.Penalty([]QueryPerf{{Latency: mean}})
		if got != want {
			t.Fatalf("PenaltyMean(%s) = %g, Penalty = %g", mean, got, want)
		}
	}
}
