package sla

import "time"

// MinFinalPenalty returns an admissible lower bound on the penalty of any
// complete schedule extending a partial schedule summarized by acc, given
// that `remaining` queries are still unassigned and that the sum of their
// execution latencies is at least minFutureLat (each query's final latency
// is at least its fastest execution time; queue waits only add to it).
//
// The A* heuristic uses cost-to-go ≥ future processing cost +
// (MinFinalPenalty − acc.Penalty()); for monotonically increasing goals the
// bound equals the current penalty, recovering Eq. 3, and for Average and
// Percentile it prunes the negative-edge plateaus that the null heuristic of
// the paper leaves unexplored.
func MinFinalPenalty(g Goal, acc Accumulator, remaining int, minFutureLat time.Duration) float64 {
	switch goal := g.(type) {
	case MaxLatency, PerQuery:
		// Monotonic: the penalty never decreases (§4.3).
		return acc.Penalty()
	case Average:
		a, ok := acc.(meanAcc)
		if !ok || a.n+remaining == 0 {
			return 0
		}
		// Best case: every future query runs instantly after no wait,
		// so the final mean is at least (sum + minFutureLat) / n.
		minAvg := (a.sum + minFutureLat) / time.Duration(a.n+remaining)
		return ratePenalty(overage(minAvg, goal.Deadline), goal.Rate)
	case Percentile:
		a, ok := acc.(pctAcc)
		if !ok {
			return 0
		}
		n := a.below + len(a.above) + remaining
		if n == 0 {
			return 0
		}
		rank := a.rank(n)
		// Best case: every future query meets the deadline. The final
		// percentile then exceeds the deadline only if the violating
		// latencies already assigned reach down to the rank.
		idx := rank - a.below - remaining - 1
		if idx < 0 || idx >= len(a.above) {
			return 0
		}
		return ratePenalty(a.above[idx]-goal.Deadline, goal.Rate)
	default:
		return 0
	}
}

// FutureRoom returns, for monotonically increasing goals, the maximum
// penalty-free completion time ("room") any future placement can have, and
// the goal's penalty rate. Used by the search's VM-packing lower bound: a
// VM can absorb at most `room` of work before its last query's violation
// period starts growing. For PerQuery the loosest deadline among templates
// that still have unassigned instances is the admissible choice. ok is
// false for goals the bound does not apply to.
func FutureRoom(g Goal, unassigned []int) (room time.Duration, rate float64, ok bool) {
	switch goal := g.(type) {
	case MaxLatency:
		return goal.Deadline, goal.Rate, true
	case PerQuery:
		max := time.Duration(0)
		for t, c := range unassigned {
			if c == 0 {
				continue
			}
			if d := goal.Deadline(t); d > max {
				max = d
			}
		}
		return max, goal.Rate, true
	default:
		return 0, 0, false
	}
}
