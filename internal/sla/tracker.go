package sla

import (
	"sort"
	"time"
)

// Tracker is the mutable counterpart of Accumulator for single-owner
// serving loops. It implements Accumulator, but Add updates the receiver in
// place and returns it, so a scheduling loop that threads one Tracker
// through a sequence of placements performs zero allocations in steady
// state (internal buffers are retained across Reset). The penalty values it
// produces are bit-identical to those of the immutable accumulator for the
// same goal and placement sequence.
//
// The immutability contract of Accumulator is deliberately traded away:
// a Tracker must be owned by exactly one schedule under construction, and
// snapshots of earlier accumulator values must not be retained. The A*
// search, which branches states and so genuinely needs immutable
// accumulators, keeps using NewAccumulator; the tree-guided serving path,
// which walks a single line of states, uses NewTracker.
type Tracker struct {
	goal  Goal
	kind  Class
	pct   Percentile // valid when isPct
	one   SingleQueryPenalty
	mean  MeanPenalty
	isPct bool

	// ClassDecomposable state.
	penalty float64
	// ClassMeanBased state.
	n   int
	sum time.Duration
	// Percentile state (mirrors pctAcc).
	below int
	above []time.Duration // latencies > deadline, sorted ascending; owned
	// Generic ClassDistribution state (mirrors distAcc).
	lats []time.Duration // sorted ascending; owned
}

// NewTracker returns an empty Tracker for the goal.
func NewTracker(g Goal) *Tracker {
	tr := &Tracker{goal: g, kind: g.Class()}
	if pct, ok := g.(Percentile); ok {
		tr.pct = pct
		tr.isPct = true
	}
	tr.one, _ = g.(SingleQueryPenalty)
	tr.mean, _ = g.(MeanPenalty)
	return tr
}

// Reset empties the tracker for a fresh schedule, retaining buffer capacity.
func (tr *Tracker) Reset() {
	tr.penalty = 0
	tr.n, tr.sum = 0, 0
	tr.below = 0
	tr.above = tr.above[:0]
	tr.lats = tr.lats[:0]
}

// rank returns the 1-based nearest-rank position of the percentile in a
// workload of size n (as in pctAcc.rank).
func (tr *Tracker) rank(n int) int {
	rank := int((tr.pct.Percent/100)*float64(n) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// Penalty implements Accumulator.
func (tr *Tracker) Penalty() float64 {
	switch {
	case tr.isPct:
		n := tr.below + len(tr.above)
		if n == 0 {
			return 0
		}
		rank := tr.rank(n)
		if rank <= tr.below {
			return 0
		}
		return ratePenalty(tr.above[rank-tr.below-1]-tr.pct.Deadline, tr.pct.Rate)
	case tr.kind == ClassDecomposable:
		return tr.penalty
	case tr.kind == ClassMeanBased:
		return penaltyMean(tr.goal, tr.mean, tr.n, tr.sum)
	default:
		if len(tr.lats) == 0 {
			return 0
		}
		perf := make([]QueryPerf, len(tr.lats))
		for i, l := range tr.lats {
			perf[i] = QueryPerf{Latency: l}
		}
		return tr.goal.Penalty(perf)
	}
}

// Add implements Accumulator by mutating the receiver in place and
// returning it.
func (tr *Tracker) Add(templateID int, latency time.Duration) Accumulator {
	switch {
	case tr.isPct:
		if latency <= tr.pct.Deadline {
			tr.below++
			return tr
		}
		tr.above = insertSorted(tr.above, latency)
	case tr.kind == ClassDecomposable:
		tr.penalty += penaltyOne(tr.goal, tr.one, templateID, latency)
	case tr.kind == ClassMeanBased:
		tr.n++
		tr.sum += latency
	default:
		tr.lats = insertSorted(tr.lats, latency)
	}
	return tr
}

// insertSorted inserts v into the ascending slice in place, growing only
// when capacity is exhausted.
func insertSorted(s []time.Duration, v time.Duration) []time.Duration {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// PeekAdd implements Accumulator.
func (tr *Tracker) PeekAdd(templateID int, latency time.Duration) float64 {
	switch {
	case tr.isPct:
		// Mirrors pctAcc.PeekAdd.
		n := tr.below + len(tr.above) + 1
		rank := tr.rank(n)
		below := tr.below
		if latency <= tr.pct.Deadline {
			below++
			if rank <= below {
				return 0
			}
			return ratePenalty(tr.above[rank-below-1]-tr.pct.Deadline, tr.pct.Rate)
		}
		if rank <= below {
			return 0
		}
		idx := sort.Search(len(tr.above), func(i int) bool { return tr.above[i] >= latency })
		p := rank - below - 1
		var at time.Duration
		switch {
		case p < idx:
			at = tr.above[p]
		case p == idx:
			at = latency
		default:
			at = tr.above[p-1]
		}
		return ratePenalty(at-tr.pct.Deadline, tr.pct.Rate)
	case tr.kind == ClassDecomposable:
		return tr.penalty + penaltyOne(tr.goal, tr.one, templateID, latency)
	case tr.kind == ClassMeanBased:
		return penaltyMean(tr.goal, tr.mean, tr.n+1, tr.sum+latency)
	default:
		// Mirrors distAcc.PeekAdd's generic fallback: materialize the
		// hypothetical multiset. Non-Percentile distribution goals are
		// not on any hot path.
		perf := make([]QueryPerf, 0, len(tr.lats)+1)
		for _, l := range tr.lats {
			perf = append(perf, QueryPerf{Latency: l})
		}
		perf = append(perf, QueryPerf{Latency: latency}) // distAcc drops template IDs
		return tr.goal.Penalty(perf)
	}
}

// AppendSignature implements Accumulator with the same encoding as the
// immutable accumulator for the goal, so a serving state and a search state
// that agree otherwise produce identical signatures.
func (tr *Tracker) AppendSignature(buf []byte) []byte {
	switch {
	case tr.isPct:
		acc := pctAcc{goal: tr.pct, below: tr.below, above: tr.above}
		return acc.AppendSignature(buf)
	case tr.kind == ClassDecomposable:
		return buf
	case tr.kind == ClassMeanBased:
		acc := meanAcc{goal: tr.goal, mean: tr.mean, n: tr.n, sum: tr.sum}
		return acc.AppendSignature(buf)
	default:
		acc := distAcc{goal: tr.goal, lats: tr.lats}
		return acc.AppendSignature(buf)
	}
}
