package sla

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"wisedb/internal/workload"
)

func templates() []workload.Template { return workload.DefaultTemplates(5) }

func perf(lats ...time.Duration) []QueryPerf {
	out := make([]QueryPerf, len(lats))
	for i, l := range lats {
		out[i] = QueryPerf{TemplateID: i % 5, Latency: l}
	}
	return out
}

func TestMaxLatencyPenalty(t *testing.T) {
	g := NewMaxLatency(10*time.Minute, templates(), 1)
	if got := g.Penalty(perf(5*time.Minute, 10*time.Minute)); got != 0 {
		t.Fatalf("on-time queries: want 0, got %g", got)
	}
	// 1¢/s × 30s overage.
	if got := g.Penalty(perf(10*time.Minute + 30*time.Second)); got != 30 {
		t.Fatalf("30s overage: want 30, got %g", got)
	}
	// Overages add across queries.
	if got := g.Penalty(perf(11*time.Minute, 12*time.Minute)); got != 60+120 {
		t.Fatalf("want 180, got %g", got)
	}
}

func TestPerQueryPenaltyUsesTemplateDeadlines(t *testing.T) {
	ts := templates()
	g := NewPerQuery(3, ts, 1)
	for i, tpl := range ts {
		if got, want := g.Deadline(i), 3*tpl.BaseLatency; got != want {
			t.Fatalf("template %d deadline: want %s, got %s", i, want, got)
		}
	}
	// Template 0 (2m latency, 6m deadline) at 7m: 60s over.
	p := []QueryPerf{{TemplateID: 0, Latency: 7 * time.Minute}}
	if got := g.Penalty(p); got != 60 {
		t.Fatalf("want 60, got %g", got)
	}
	// Unknown template falls back to the loosest deadline.
	if d := g.Deadline(99); d != 3*ts[4].BaseLatency {
		t.Fatalf("unknown template deadline: got %s", d)
	}
}

func TestAveragePenalty(t *testing.T) {
	g := NewAverage(10*time.Minute, templates(), 1)
	if got := g.Penalty(perf(9*time.Minute, 11*time.Minute)); got != 0 {
		t.Fatalf("avg exactly 10m: want 0, got %g", got)
	}
	// avg = 12m -> 120s overage.
	if got := g.Penalty(perf(10*time.Minute, 14*time.Minute)); got != 120 {
		t.Fatalf("want 120, got %g", got)
	}
	if got := g.Penalty(nil); got != 0 {
		t.Fatalf("empty workload: want 0, got %g", got)
	}
}

func TestPercentilePenalty(t *testing.T) {
	g := NewPercentile(90, 10*time.Minute, templates(), 1)
	// 10 queries: rank = 9. Exactly one may exceed the deadline.
	lats := make([]time.Duration, 10)
	for i := range lats {
		lats[i] = 5 * time.Minute
	}
	lats[9] = 30 * time.Minute
	if got := g.Penalty(perf(lats...)); got != 0 {
		t.Fatalf("one violator out of 10 at 90%%: want 0, got %g", got)
	}
	lats[8] = 12 * time.Minute // second violator: the 9th latency is 12m
	if got := g.Penalty(perf(lats...)); got != 120 {
		t.Fatalf("rank-9 latency 12m: want 120, got %g", got)
	}
}

func TestMonotonicityFlags(t *testing.T) {
	ts := templates()
	for _, c := range []struct {
		g    Goal
		want bool
	}{
		{NewMaxLatency(10*time.Minute, ts, 1), true},
		{NewPerQuery(3, ts, 1), true},
		{NewAverage(10*time.Minute, ts, 1), false},
		{NewPercentile(90, 10*time.Minute, ts, 1), false},
	} {
		if c.g.Monotonic() != c.want {
			t.Errorf("%s: Monotonic() = %v, want %v", c.g.Name(), c.g.Monotonic(), c.want)
		}
	}
}

// Property (§4.3): for monotonic goals, appending a query never decreases
// the penalty of the accumulated schedule.
func TestMonotonicGoalsNeverRefund(t *testing.T) {
	ts := templates()
	goals := []Goal{NewMaxLatency(10*time.Minute, ts, 1), NewPerQuery(3, ts, 1)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, g := range goals {
			acc := NewAccumulator(g)
			prev := 0.0
			for i := 0; i < 20; i++ {
				acc = acc.Add(rng.Intn(5), time.Duration(rng.Intn(1800))*time.Second)
				if p := acc.Penalty(); p < prev-1e-9 {
					return false
				} else {
					prev = p
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every accumulator's incremental penalty matches the goal's
// batch penalty over the same outcomes, and PeekAdd agrees with Add.
func TestAccumulatorMatchesBatchPenalty(t *testing.T) {
	ts := templates()
	goals := []Goal{
		NewMaxLatency(10*time.Minute, ts, 1),
		NewPerQuery(3, ts, 1),
		NewAverage(10*time.Minute, ts, 1),
		NewPercentile(90, 10*time.Minute, ts, 1),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, g := range goals {
			acc := NewAccumulator(g)
			var batch []QueryPerf
			for i := 0; i < 15; i++ {
				tid := rng.Intn(5)
				lat := time.Duration(rng.Intn(1800)+1) * time.Second
				if peek, next := acc.PeekAdd(tid, lat), acc.Add(tid, lat); math.Abs(peek-next.Penalty()) > 1e-9 {
					return false
				} else {
					acc = next
				}
				batch = append(batch, QueryPerf{TemplateID: tid, Latency: lat})
				if math.Abs(acc.Penalty()-g.Penalty(batch)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTightenFormula(t *testing.T) {
	ts := templates()
	g := NewMaxLatency(15*time.Minute, ts, 1)
	// Strictest = longest template latency = 6m; tighten by 1/3 of the
	// 9m slack: 15 - 3 = 12m (the paper's §7.3 example).
	got := g.Tighten(1.0 / 3).(MaxLatency)
	if got.Deadline.Round(time.Second) != 12*time.Minute {
		t.Fatalf("tighten(1/3): want 12m, got %s", got.Deadline)
	}
	// p=1 reaches the strictest value.
	if full := g.Tighten(1).(MaxLatency); full.Deadline != 6*time.Minute {
		t.Fatalf("tighten(1): want 6m, got %s", full.Deadline)
	}
	// Negative p loosens.
	if loose := g.Tighten(-1).(MaxLatency); loose.Deadline != 24*time.Minute {
		t.Fatalf("tighten(-1): want 24m, got %s", loose.Deadline)
	}
}

// Property: tightening by a larger p never loosens any goal's penalty.
func TestTightenMonotoneInP(t *testing.T) {
	ts := templates()
	goals := []Goal{
		NewMaxLatency(15*time.Minute, ts, 1),
		NewPerQuery(3, ts, 1),
		NewAverage(10*time.Minute, ts, 1),
		NewPercentile(90, 10*time.Minute, ts, 1),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var batch []QueryPerf
		for i := 0; i < 12; i++ {
			batch = append(batch, QueryPerf{TemplateID: rng.Intn(5), Latency: time.Duration(rng.Intn(1800)+1) * time.Second})
		}
		for _, g := range goals {
			prev := -1.0
			for _, p := range []float64{-0.5, 0, 0.5, 0.9} {
				pen := g.Tighten(p).Penalty(batch)
				if pen < prev-1e-9 {
					return false
				}
				prev = pen
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestShift(t *testing.T) {
	ts := templates()
	max := NewMaxLatency(10*time.Minute, ts, 1)
	shifted := max.Shift(2 * time.Minute).(MaxLatency)
	if shifted.Deadline != 8*time.Minute {
		t.Fatalf("want 8m, got %s", shifted.Deadline)
	}
	// Shifting by the wait equals evaluating waited queries (§6.3): a
	// query that waited w and then ran with latency L has true latency
	// w+L; penalty under the original equals penalty of L under shift w.
	lat := 9 * time.Minute
	wait := 2 * time.Minute
	orig := max.Penalty([]QueryPerf{{Latency: lat + wait}})
	shift := shifted.Penalty([]QueryPerf{{Latency: lat}})
	if orig != shift {
		t.Fatalf("shift equivalence: %g != %g", orig, shift)
	}
	pq := NewPerQuery(3, ts, 1)
	pqs := pq.Shift(time.Minute).(PerQuery)
	for i := range ts {
		if pqs.Deadlines[i] != pq.Deadlines[i]-time.Minute {
			t.Fatal("per-template deadlines must shift uniformly")
		}
	}
	if !max.Shiftable() || !pq.Shiftable() {
		t.Fatal("Max and PerQuery are shiftable (§6.3.1)")
	}
	avg := NewAverage(10*time.Minute, ts, 1)
	pct := NewPercentile(90, 10*time.Minute, ts, 1)
	if avg.Shiftable() || pct.Shiftable() {
		t.Fatal("Average and Percentile are not linearly shiftable")
	}
}

func TestWithExtraTemplate(t *testing.T) {
	ts := templates()
	pq := NewPerQuery(3, ts, 1)
	aug := pq.WithExtraTemplate(7*time.Minute, 3*time.Minute)
	if len(aug.Deadlines) != len(ts)+1 {
		t.Fatalf("want %d deadlines, got %d", len(ts)+1, len(aug.Deadlines))
	}
	if aug.Deadline(len(ts)) != 7*time.Minute {
		t.Fatalf("extra template deadline: got %s", aug.Deadline(len(ts)))
	}
	// The original is not mutated.
	if len(pq.Deadlines) != len(ts) {
		t.Fatal("WithExtraTemplate must not mutate the receiver")
	}
}

func TestMinFinalPenaltyAdmissible(t *testing.T) {
	ts := templates()
	goals := []Goal{
		NewMaxLatency(10*time.Minute, ts, 1),
		NewPerQuery(3, ts, 1),
		NewAverage(10*time.Minute, ts, 1),
		NewPercentile(90, 10*time.Minute, ts, 1),
	}
	minLat := ts[0].BaseLatency
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, g := range goals {
			acc := NewAccumulator(g)
			n := rng.Intn(10)
			for i := 0; i < n; i++ {
				acc = acc.Add(rng.Intn(5), time.Duration(rng.Intn(1800)+1)*time.Second)
			}
			remaining := rng.Intn(6)
			bound := MinFinalPenalty(g, acc, remaining, time.Duration(remaining)*minLat)
			// Complete with `remaining` cheap queries (the best
			// case the bound assumes) and check it held.
			final := acc
			for i := 0; i < remaining; i++ {
				final = final.Add(0, minLat)
			}
			if bound > final.Penalty()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGoalKeysDistinct(t *testing.T) {
	ts := templates()
	keys := map[string]bool{}
	for _, g := range []Goal{
		NewMaxLatency(10*time.Minute, ts, 1),
		NewMaxLatency(12*time.Minute, ts, 1),
		NewPerQuery(3, ts, 1),
		NewPerQuery(2, ts, 1),
		NewAverage(10*time.Minute, ts, 1),
		NewPercentile(90, 10*time.Minute, ts, 1),
		NewPercentile(95, 10*time.Minute, ts, 1),
	} {
		if keys[g.Key()] {
			t.Fatalf("duplicate key %q", g.Key())
		}
		keys[g.Key()] = true
	}
}
