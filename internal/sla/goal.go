// Package sla implements WiSeDB's performance goals (§2) and their penalty
// functions (§3). Four goal families are supported, matching the paper:
//
//   - PerQuery: each template has its own latency deadline.
//   - Max: an upper bound on the worst query latency in the workload.
//   - Average: an upper bound on the mean query latency of the workload.
//   - Percentile: at least y% of queries must finish within x.
//
// Penalties are computed from violation periods at a fixed rate (cents per
// second of violation), which is the penalty structure the paper adopts from
// IaaS SLAs (§3) and instantiates in §7.1. The package also implements goal
// tightening (used by adaptive modeling, §5, and the strictness experiments,
// §7.2-7.3) and linear shifting (used by online scheduling, §6.3).
package sla

import (
	"time"
)

// QueryPerf is the per-query outcome a goal is evaluated against: which
// template the query belongs to and its observed (or estimated) latency,
// measured from workload submission to query completion.
type QueryPerf struct {
	TemplateID int
	Latency    time.Duration
}

// Class describes how much schedule history a goal's penalty depends on.
// The A* search uses it to choose a state-deduplication signature that is
// exact for the goal (see internal/search).
type Class int

const (
	// ClassDecomposable penalties are sums of independent per-query
	// penalties (PerQuery, Max).
	ClassDecomposable Class = iota
	// ClassMeanBased penalties depend only on the count and sum of
	// latencies (Average).
	ClassMeanBased
	// ClassDistribution penalties depend on the full latency distribution
	// (Percentile).
	ClassDistribution
)

// Goal is an application performance goal R together with its penalty
// function p(R, S). Implementations are immutable values.
type Goal interface {
	// Name returns the goal family name ("PerQuery", "Max", "Average",
	// "Percentile").
	Name() string
	// Key returns a string that uniquely identifies the goal, family and
	// parameters included. It is used to key model caches.
	Key() string
	// Penalty returns p(R, S) in cents for the given (possibly partial)
	// set of per-query outcomes.
	Penalty(perf []QueryPerf) float64
	// Monotonic reports whether the goal is monotonically increasing
	// (§4.3): appending a query to the open VM never decreases the
	// penalty. Max and PerQuery are monotonic; Average and Percentile
	// are not.
	Monotonic() bool
	// Class reports the goal's penalty-structure class.
	Class() Class
	// Tighten returns the goal tightened by fraction p of the distance
	// to its strictest feasible value, following §7.3:
	// deadline' = t + (g-t)×(1-p) where t is the strictest value and g
	// the current one. Negative p loosens the goal. p must be < 1.
	Tighten(p float64) Goal
	// Shiftable reports whether the goal is linearly shiftable (§6.3):
	// delaying all queries by d is equivalent to tightening by d.
	// Max and PerQuery are shiftable.
	Shiftable() bool
	// Shift returns the goal tightened by the wait duration d. It panics
	// if the goal is not shiftable.
	Shift(d time.Duration) Goal
}

// SingleQueryPenalty is implemented by goals whose penalty decomposes into
// independent per-query penalties (ClassDecomposable). PenaltyOne returns
// the penalty of one query outcome without the []QueryPerf allocation of
// Penalty; the serving hot path evaluates many hypothetical placements per
// scheduling step through this fast path.
type SingleQueryPenalty interface {
	// PenaltyOne returns Penalty([]QueryPerf{{TemplateID: templateID,
	// Latency: latency}}) without allocating.
	PenaltyOne(templateID int, latency time.Duration) float64
}

// MeanPenalty is implemented by goals whose penalty depends only on the
// mean latency (ClassMeanBased). PenaltyMean evaluates the penalty of a
// workload with the given mean without materializing per-query outcomes.
type MeanPenalty interface {
	// PenaltyMean returns the penalty of a workload whose mean latency is
	// mean.
	PenaltyMean(mean time.Duration) float64
}

// PenaltyHistoryFree reports whether the goal's penalty deltas are
// independent of schedule history: adding a query outcome changes the
// penalty by an amount that depends only on that outcome, never on the
// outcomes already accumulated. This is exactly ClassDecomposable
// (PerQuery, Max).
//
// The scheduling-graph search exploits it twice. First, history-free states
// can share one static accumulator — the penalty-relevant part of an edge
// weight, PeekAdd − Penalty, telescopes to the single-query penalty — so
// expanding an edge allocates nothing for penalty tracking. Second, a
// history-free accumulator appends no bytes to the state signature, so the
// canonical suffix key (unassigned counts, open-VM type, queued wait) is
// workload-independent and solved suffixes transfer across sample searches
// (the transposition cache in internal/search).
func PenaltyHistoryFree(g Goal) bool {
	return g.Class() == ClassDecomposable
}

// overage returns how far latency exceeds deadline, or zero.
func overage(latency, deadline time.Duration) time.Duration {
	if latency > deadline {
		return latency - deadline
	}
	return 0
}

// DefaultPenaltyRate is the paper's penalty rate: one cent per second of
// violation (§7.1).
const DefaultPenaltyRate = 1.0

// ratePenalty converts a violation period to cents at rate cents/second.
func ratePenalty(violation time.Duration, rate float64) float64 {
	if violation <= 0 {
		return 0
	}
	return violation.Seconds() * rate
}
