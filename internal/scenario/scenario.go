// Package scenario is the trace-driven evaluation harness: composable,
// seeded arrival-process and mix-process generators that turn a scenario
// Spec into the tenant streams the serving engine replays. Every behavior
// claim before this harness was measured on uniform or single-flip-skew
// arrivals at a fixed VM price — exactly the regime where latent simulator
// bugs hide. The catalog below (Poisson, heavy-tailed Pareto, diurnal
// sinusoid, flash-crowd bursts, correlated multi-tenant shifts, gold/bronze
// priority tiers, spot pricing) is both an evaluation suite and a directed
// bug probe: each generated trace is bit-deterministic (a pure function of
// the Spec), so any run can be replayed at any Parallelism × Shards and
// must produce identical OnlineResults.
//
// Generation is offline — it happens before serving starts, so generator
// allocations are free; the serving path's 0 allocs/arrival invariant is
// what the generated traces are used to probe, not a constraint on the
// generators themselves.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/workload"
)

// ArrivalProcess generates n arrival instants from a seeded source. The
// returned slice is in generation order, which is NOT necessarily sorted:
// burst injection (FlashCrowd) appends its spikes after later base
// arrivals, producing the ties and inversions that out-of-order production
// traces contain. Workload.WithArrivals owns the stable sort.
type ArrivalProcess interface {
	Arrivals(rng *rand.Rand, n int) []time.Duration
	Name() string
}

// Poisson is a memoryless arrival process: exponential inter-arrival gaps
// with the given mean. The classic open-system baseline.
type Poisson struct {
	// Mean is the mean inter-arrival gap (1/λ).
	Mean time.Duration
}

func (p Poisson) Name() string { return "poisson" }

func (p Poisson) Arrivals(rng *rand.Rand, n int) []time.Duration {
	out := make([]time.Duration, n)
	t := time.Duration(0)
	for i := range out {
		if i > 0 {
			t += time.Duration(rng.ExpFloat64() * float64(p.Mean))
		}
		out[i] = t
	}
	return out
}

// Pareto is a heavy-tailed arrival process: inter-arrival gaps drawn from a
// Pareto distribution with the given scale (minimum gap) and tail index
// Alpha. Small Alpha (≤ 2) produces the long quiet stretches punctuated by
// dense clusters that production traces show and exponential models miss.
type Pareto struct {
	// Scale is the minimum inter-arrival gap x_m.
	Scale time.Duration
	// Alpha is the tail index; gaps follow P(gap > x) = (Scale/x)^Alpha.
	// Must be positive. Alpha ≤ 1 has infinite mean — legal here, the
	// trace is finite.
	Alpha float64
}

func (p Pareto) Name() string { return "pareto" }

func (p Pareto) Arrivals(rng *rand.Rand, n int) []time.Duration {
	if p.Alpha <= 0 {
		panic("scenario: Pareto requires Alpha > 0")
	}
	out := make([]time.Duration, n)
	t := time.Duration(0)
	for i := range out {
		if i > 0 {
			// Inverse CDF: x_m · U^(-1/α), with U in (0, 1].
			u := 1 - rng.Float64()
			t += time.Duration(float64(p.Scale) * math.Pow(u, -1/p.Alpha))
		}
		out[i] = t
	}
	return out
}

// Diurnal is a sinusoid-modulated Poisson process: the instantaneous rate
// swings by ±Depth around its mean over each Period, modeling the
// day/night load cycle. Depth 0 degenerates to Poisson.
type Diurnal struct {
	// Mean is the mean inter-arrival gap at the cycle midpoint.
	Mean time.Duration
	// Period is the length of one day/night cycle.
	Period time.Duration
	// Depth in [0, 1) scales the swing: the instantaneous rate is
	// (1 + Depth·sin(2πt/Period)) / Mean.
	Depth float64
}

func (d Diurnal) Name() string { return "diurnal" }

func (d Diurnal) Arrivals(rng *rand.Rand, n int) []time.Duration {
	if d.Depth < 0 || d.Depth >= 1 {
		panic("scenario: Diurnal requires Depth in [0, 1)")
	}
	out := make([]time.Duration, n)
	t := time.Duration(0)
	for i := range out {
		if i > 0 {
			rate := 1 + d.Depth*math.Sin(2*math.Pi*float64(t)/float64(d.Period))
			t += time.Duration(rng.ExpFloat64() * float64(d.Mean) / rate)
		}
		out[i] = t
	}
	return out
}

// FlashCrowd injects burst spikes into a base process: every Every, Size
// arrivals land at the identical instant. The spikes are appended AFTER the
// base arrivals in generation order, so the trace carries both ties (the
// spike members) and inversions (a spike at t=30s appearing after base
// arrivals at t=5m) — the shape that flushed out Workload.WithArrivals's
// O(n²) insertion sort and exercises newArrivalQueue's unsorted path.
type FlashCrowd struct {
	// Base generates the background arrivals.
	Base ArrivalProcess
	// Every is the burst cadence: spikes land at Every, 2·Every, ….
	Every time.Duration
	// Size is the number of simultaneous arrivals per spike.
	Size int
}

func (f FlashCrowd) Name() string { return "flash-crowd" }

func (f FlashCrowd) Arrivals(rng *rand.Rand, n int) []time.Duration {
	if f.Size <= 0 || f.Every <= 0 {
		panic("scenario: FlashCrowd requires Size > 0 and Every > 0")
	}
	bursts := 0
	for burst := 1; bursts+f.Size <= n/2; burst++ {
		bursts += f.Size // cap spike volume at half the trace
	}
	base := f.Base.Arrivals(rng, n-bursts)
	out := make([]time.Duration, 0, n)
	out = append(out, base...)
	for burst := 1; len(out)+f.Size <= n; burst++ {
		at := time.Duration(burst) * f.Every
		for j := 0; j < f.Size; j++ {
			out = append(out, at)
		}
	}
	for len(out) < n { // odd remainder rides the base process's tail
		out = append(out, base[len(base)-1])
	}
	return out
}

// MixProcess yields the template mix in effect at a given instant: a weight
// vector over k templates written into buf (resized as needed). Generators
// draw each query's template from the mix at its own arrival time, which is
// how a trace carries a time-varying or shifting workload mix.
type MixProcess interface {
	WeightsAt(k int, t time.Duration, buf []float64) []float64
	Name() string
}

// StaticMix is a time-invariant mix: uniform at Skew 0, interpolating to a
// point mass on Favorite at Skew 1 (workload.SkewWeights).
type StaticMix struct {
	Skew     float64
	Favorite int
}

func (m StaticMix) Name() string { return "static" }

func (m StaticMix) WeightsAt(k int, _ time.Duration, buf []float64) []float64 {
	buf = uniformInto(k, m.Skew, buf)
	buf[m.Favorite%k] += m.Skew
	return buf
}

// DiurnalMix oscillates the favored template between Day and Night over
// each Period: Skew mass moves sinusoidally between the two favorites while
// the rest of the mix stays uniform. The time-averaged mix is symmetric in
// Day and Night — the shape that probes whether the drift detector's
// sliding window re-triggers every half-cycle on a workload whose long-run
// mix never actually changes.
type DiurnalMix struct {
	Period     time.Duration
	Skew       float64
	Day, Night int
}

func (m DiurnalMix) Name() string { return "diurnal-mix" }

func (m DiurnalMix) WeightsAt(k int, t time.Duration, buf []float64) []float64 {
	phase := (1 + math.Sin(2*math.Pi*float64(t)/float64(m.Period))) / 2
	buf = uniformInto(k, m.Skew, buf)
	buf[m.Day%k] += m.Skew * phase
	buf[m.Night%k] += m.Skew * (1 - phase)
	return buf
}

// ShiftMix flips the favored template from Before to After at instant At —
// the abrupt mix change drift detection exists to catch. Multiple tenants
// sharing one ShiftMix (same At) model a correlated, fleet-wide shift.
type ShiftMix struct {
	At            time.Duration
	Skew          float64
	Before, After int
}

func (m ShiftMix) Name() string { return "shift" }

func (m ShiftMix) WeightsAt(k int, t time.Duration, buf []float64) []float64 {
	buf = uniformInto(k, m.Skew, buf)
	if t < m.At {
		buf[m.Before%k] += m.Skew
	} else {
		buf[m.After%k] += m.Skew
	}
	return buf
}

// uniformInto fills buf with the uniform remainder (1−skew)/k of a skewed
// mix, growing it to k slots.
func uniformInto(k int, skew float64, buf []float64) []float64 {
	if skew < 0 || skew > 1 {
		panic("scenario: mix skew must be in [0, 1]")
	}
	if cap(buf) < k {
		buf = make([]float64, k)
	}
	buf = buf[:k]
	u := (1 - skew) / float64(k)
	for i := range buf {
		buf[i] = u
	}
	return buf
}

// TenantSpec is one tenant stream of a scenario: an identity, the SLA tier
// (registry) it binds to, and the arrival and mix processes that generate
// its trace.
type TenantSpec struct {
	// Name identifies the tenant; core.HashTenantID(Name) places it on
	// the shard ring. Names must be unique within a Spec.
	Name string
	// Registry is the model registry (SLA tier) the tenant's stream binds
	// to: "" for the default tier, or a named tier such as "gold" /
	// "bronze" registered on the engine (multi-registry serving).
	Registry string
	// Queries is the trace length.
	Queries int
	// Arrivals generates the tenant's arrival instants.
	Arrivals ArrivalProcess
	// Mix generates the tenant's template mix; nil means uniform.
	Mix MixProcess
}

// Spec is a complete, seeded scenario: tenants plus the price environment.
// A Spec is a pure value — Generate is deterministic in (Spec, templates),
// so committing a Spec commits the exact trace every CI run replays.
type Spec struct {
	// Name labels the scenario in tables and benchmarks.
	Name string
	// Seed feeds every tenant's generator through per-tenant SplitMix64
	// sub-seeds: tenant traces are independent, and inserting or
	// reordering tenants does not perturb other tenants' draws.
	Seed int64
	// Tenants are the scenario's streams.
	Tenants []TenantSpec
	// Prices, when non-nil, is the spot-style time-varying VM price
	// schedule the scenario serves under (OnlineOptions.Prices).
	Prices *cloud.PriceSchedule
}

// subSeed derives tenant i's rand seed from the spec seed: SplitMix64 over
// the (seed, index, name-hash) triple, so every tenant owns an independent,
// reproducible stream.
func (s *Spec) subSeed(i int) int64 {
	h := mix64(uint64(s.Seed)*0x9e3779b97f4a7c15 + uint64(i) + uint64(core.HashTenantID(s.Tenants[i].Name)))
	return int64(h &^ (1 << 63)) // non-negative, rand.NewSource takes int64
}

// mix64 is SplitMix64's finalizer: a cheap, well-dispersed 64-bit mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Generate renders the scenario into serving-ready tenants: each tenant's
// arrival instants and per-query templates are drawn from its seeded
// generators, and the trace is assembled with Workload.WithArrivals (stable
// sort — burst-injected ties keep generation order). The result feeds
// core.OnlineScheduler.RunTenants directly.
func (s *Spec) Generate(templates []workload.Template) []core.Tenant {
	tenants := make([]core.Tenant, len(s.Tenants))
	k := len(templates)
	var weights []float64
	for i, ts := range s.Tenants {
		if ts.Queries <= 0 {
			panic(fmt.Sprintf("scenario: tenant %q has no queries", ts.Name))
		}
		rng := rand.New(rand.NewSource(s.subSeed(i)))
		arrivals := ts.Arrivals.Arrivals(rng, ts.Queries)
		if len(arrivals) != ts.Queries {
			panic(fmt.Sprintf("scenario: %s generated %d arrivals for %d queries", ts.Arrivals.Name(), len(arrivals), ts.Queries))
		}
		queries := make([]workload.Query, ts.Queries)
		for j := range queries {
			tpl := j % k
			if ts.Mix != nil {
				weights = ts.Mix.WeightsAt(k, arrivals[j], weights)
				tpl = drawTemplate(weights, rng.Float64())
			} else {
				tpl = rng.Intn(k)
			}
			queries[j] = workload.Query{TemplateID: tpl, Tag: j}
		}
		w := &workload.Workload{Templates: templates, Queries: queries}
		tenants[i] = core.Tenant{
			ID:       core.HashTenantID(ts.Name),
			Registry: ts.Registry,
			Workload: w.WithArrivals(arrivals),
		}
	}
	return tenants
}

// drawTemplate maps a unit variate onto the weight vector's inverse CDF —
// the same walk workload.WeightedFromVariates uses, so identical variates
// under identical weights pick identical templates.
func drawTemplate(weights []float64, u float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := u * total
	for j, w := range weights {
		if r < w {
			return j
		}
		r -= w
	}
	return len(weights) - 1
}

// Catalog returns the standard scenario suite: one Spec per row of the
// EXPERIMENTS.md scenario table, each a seeded pure value. n is the trace
// length per tenant; gap the base mean inter-arrival gap. Every scenario in
// the catalog has a pinned bit-determinism test and runs under -race in CI
// as a probe against the serving invariants.
func Catalog(seed int64, n int, gap time.Duration) []Spec {
	return []Spec{
		{
			Name: "poisson",
			Seed: seed,
			Tenants: []TenantSpec{
				{Name: "t0", Queries: n, Arrivals: Poisson{Mean: gap}},
			},
		},
		{
			Name: "pareto",
			Seed: seed + 1,
			Tenants: []TenantSpec{
				{Name: "t0", Queries: n, Arrivals: Pareto{Scale: gap / 2, Alpha: 1.5}},
			},
		},
		{
			Name: "diurnal",
			Seed: seed + 2,
			Tenants: []TenantSpec{
				{Name: "t0", Queries: n,
					Arrivals: Diurnal{Mean: gap, Period: time.Duration(n) * gap / 4, Depth: 0.8},
					Mix:      DiurnalMix{Period: time.Duration(n) * gap / 4, Skew: 0.6, Day: 0, Night: 1}},
			},
		},
		{
			Name: "flash-crowd",
			Seed: seed + 3,
			Tenants: []TenantSpec{
				{Name: "t0", Queries: n,
					Arrivals: FlashCrowd{Base: Poisson{Mean: gap}, Every: time.Duration(n) * gap / 5, Size: 4 + n/32}},
			},
		},
		{
			Name: "tiered",
			Seed: seed + 4,
			Tenants: []TenantSpec{
				{Name: "gold-0", Registry: "gold", Queries: n, Arrivals: Poisson{Mean: gap}},
				{Name: "bronze-0", Registry: "bronze", Queries: n, Arrivals: Poisson{Mean: gap}},
				{Name: "bronze-1", Registry: "bronze", Queries: n, Arrivals: Pareto{Scale: gap / 2, Alpha: 1.8}},
			},
		},
		{
			Name: "spot",
			Seed: seed + 5,
			Tenants: []TenantSpec{
				{Name: "t0", Queries: n, Arrivals: Poisson{Mean: gap}},
			},
			Prices: cloud.Spot(seed+5, time.Duration(n)*gap/8, 16, 0.5, 2.0),
		},
		{
			Name: "mix-shift",
			Seed: seed + 6,
			Tenants: []TenantSpec{
				// Three tenants shifting their mix at the same instant: a
				// correlated, fleet-wide change, not independent noise.
				{Name: "t0", Queries: n, Arrivals: Poisson{Mean: gap},
					Mix: ShiftMix{At: time.Duration(n) * gap / 2, Skew: 0.8, Before: 0, After: 1}},
				{Name: "t1", Queries: n, Arrivals: Poisson{Mean: gap},
					Mix: ShiftMix{At: time.Duration(n) * gap / 2, Skew: 0.8, Before: 0, After: 1}},
				{Name: "t2", Queries: n, Arrivals: Poisson{Mean: gap},
					Mix: ShiftMix{At: time.Duration(n) * gap / 2, Skew: 0.8, Before: 0, After: 1}},
			},
		},
	}
}
