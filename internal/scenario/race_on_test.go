//go:build race

package scenario

// raceEnabled reports that this test binary was built with the race
// detector; allocation-count guards skip, since race instrumentation
// allocates on paths that are allocation-free in production builds.
const raceEnabled = true
