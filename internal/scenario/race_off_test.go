//go:build !race

package scenario

// raceEnabled: see race_on_test.go.
const raceEnabled = false
