package scenario

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// tierModels trains the three SLA tiers the scenario suite serves under —
// default (15m), gold (10m, tighter), bronze (25m, looser) — once per test
// binary. Training is deterministic, so every test sees identical trees.
var tierModels = sync.OnceValues(func() (map[string]*core.Model, error) {
	env := schedule.NewEnv(workload.DefaultTemplates(5), cloud.DefaultVMTypes(2))
	cfg := core.DefaultTrainConfig()
	cfg.NumSamples = 100
	cfg.SampleSize = 7
	cfg.Seed = 9
	out := map[string]*core.Model{}
	for name, deadline := range map[string]time.Duration{
		"":       15 * time.Minute,
		"gold":   10 * time.Minute,
		"bronze": 25 * time.Minute,
	} {
		m, err := core.MustNewAdvisor(env, cfg).Train(sla.NewMaxLatency(deadline, env.Templates, sla.DefaultPenaltyRate))
		if err != nil {
			return nil, err
		}
		out[name] = m
	}
	return out, nil
})

func models(t testing.TB) map[string]*core.Model {
	t.Helper()
	m, err := tierModels()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newEngine builds a serving engine for a spec: the default tier as the
// base model, gold/bronze tiers as named registries, and the spec's price
// schedule armed engine-wide.
func newEngine(t testing.TB, spec *Spec, shards int) *core.OnlineScheduler {
	t.Helper()
	ms := models(t)
	opts := core.DefaultOnlineOptions()
	opts.Shards = shards
	opts.Prices = spec.Prices
	o := core.NewOnlineScheduler(ms[""], opts)
	for _, tier := range []string{"gold", "bronze"} {
		if _, err := o.AddRegistry(tier, ms[tier]); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

// testCatalog is the catalog at the committed test scale: short traces with
// gaps wide enough that serving stays fast, tight enough that bursts queue.
func testCatalog() []Spec { return Catalog(11, 24, 5*time.Minute) }

// fingerprint renders the deterministic fields of a result — everything
// except wall-clock timings.
func fingerprint(res *core.OnlineResult) string {
	return fmt.Sprintf("cost=%.9f penalty=%.9f vms=%d arrivals=%d retrain=%d adapt=%d hits=%d drift=%d shed=%d degraded=%d epoch=%d perf=%v",
		res.Cost, res.Penalty, res.VMsRented, len(res.PerArrival),
		res.Retrainings, res.Adaptations, res.CacheHits, res.DriftTriggers,
		res.ShedArrivals, res.DegradedArrivals, res.FinalEpoch, res.Perf)
}

// Generated traces are pure functions of the Spec: regenerating yields the
// identical workloads (the committed-trace property CI replays depend on),
// arrivals come out sorted, and burst injection really produces the
// same-instant ties the engine must batch.
func TestCatalogGenerateDeterministic(t *testing.T) {
	templates := workload.DefaultTemplates(5)
	for _, spec := range testCatalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			a := spec.Generate(templates)
			b := spec.Generate(templates)
			if len(a) != len(spec.Tenants) {
				t.Fatalf("generated %d tenants, want %d", len(a), len(spec.Tenants))
			}
			ties := false
			for i := range a {
				if !reflect.DeepEqual(a[i].Workload, b[i].Workload) {
					t.Fatalf("tenant %s: regeneration changed the trace", spec.Tenants[i].Name)
				}
				qs := a[i].Workload.Queries
				if len(qs) != spec.Tenants[i].Queries {
					t.Fatalf("tenant %s: %d queries, want %d", spec.Tenants[i].Name, len(qs), spec.Tenants[i].Queries)
				}
				for j := 1; j < len(qs); j++ {
					if qs[j].Arrival < qs[j-1].Arrival {
						t.Fatalf("tenant %s: arrivals out of order at %d: %s after %s",
							spec.Tenants[i].Name, j, qs[j].Arrival, qs[j-1].Arrival)
					}
					if qs[j].Arrival == qs[j-1].Arrival {
						ties = true
					}
				}
			}
			if spec.Name == "flash-crowd" && !ties {
				t.Fatal("flash-crowd trace carries no same-instant ties; burst injection is broken")
			}
		})
	}
}

// Every catalog scenario must replay bit-identically at any engine
// concurrency: per-tenant results are compared across Shards ∈ {1, 4,
// GOMAXPROCS} (RunTenants) and, for single-tier scenarios, Parallelism ∈
// {1, 4, GOMAXPROCS} (RunStreams) — the acceptance pin for the whole
// harness, and under -race a concurrency bug probe per scenario.
func TestCatalogBitDeterminism(t *testing.T) {
	templates := workload.DefaultTemplates(5)
	gomax := runtime.GOMAXPROCS(0)
	for _, spec := range testCatalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tenants := spec.Generate(templates)
			singleTier := true
			for _, ts := range spec.Tenants {
				if ts.Registry != "" {
					singleTier = false
				}
			}
			var fingerprints [][]string
			record := func(label string, results []*core.OnlineResult, err error) {
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				fps := make([]string, len(results))
				for i, res := range results {
					fps[i] = fingerprint(res)
				}
				fingerprints = append(fingerprints, fps)
			}
			for _, shards := range []int{1, 4, gomax} {
				o := newEngine(t, &spec, shards)
				results, err := o.RunTenants(context.Background(), tenants)
				record(fmt.Sprintf("shards=%d", shards), results, err)
			}
			if singleTier {
				ws := make([]*workload.Workload, len(tenants))
				for i := range tenants {
					ws[i] = tenants[i].Workload
				}
				for _, p := range []int{1, 4, gomax} {
					o := newEngine(t, &spec, 0)
					results, err := o.RunStreams(context.Background(), ws, p)
					record(fmt.Sprintf("parallelism=%d", p), results, err)
				}
			}
			for level := 1; level < len(fingerprints); level++ {
				for i := range fingerprints[0] {
					if fingerprints[level][i] != fingerprints[0][i] {
						t.Errorf("tenant %d differs between configs:\nbaseline: %s\nconfig %d: %s",
							i, fingerprints[0][i], level, fingerprints[level][i])
					}
				}
			}
		})
	}
}

// Every admitted arrival completes exactly once in every scenario: each
// generated tag appears in exactly one outcome, nothing is shed on the
// healthy path, and the per-tenant completion count equals the trace
// length. Under -race this is the exactly-once probe the ISSUE calls for.
func TestCatalogExactlyOnce(t *testing.T) {
	templates := workload.DefaultTemplates(5)
	for _, spec := range testCatalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tenants := spec.Generate(templates)
			o := newEngine(t, &spec, 4)
			results, err := o.RunTenants(context.Background(), tenants)
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range results {
				n := spec.Tenants[i].Queries
				if res.ShedArrivals != 0 {
					t.Errorf("tenant %s shed %d arrivals on the healthy path", spec.Tenants[i].Name, res.ShedArrivals)
				}
				if len(res.Outcomes) != n {
					t.Fatalf("tenant %s completed %d of %d queries", spec.Tenants[i].Name, len(res.Outcomes), n)
				}
				seen := make([]bool, n)
				for _, out := range res.Outcomes {
					if out.Tag < 0 || out.Tag >= n {
						t.Fatalf("tenant %s: outcome for unknown tag %d", spec.Tenants[i].Name, out.Tag)
					}
					if seen[out.Tag] {
						t.Fatalf("tenant %s: tag %d completed twice", spec.Tenants[i].Name, out.Tag)
					}
					seen[out.Tag] = true
				}
			}
		})
	}
}

// The spot scenario's price schedule must actually reach lease accounting:
// the same trace served under spot prices and under flat prices reports
// different costs (the multiplier path is live), while penalties — pure
// latency, prices never alter execution timing — stay identical.
func TestSpotScenarioPricesLeases(t *testing.T) {
	templates := workload.DefaultTemplates(5)
	var spot Spec
	for _, spec := range testCatalog() {
		if spec.Name == "spot" {
			spot = spec
		}
	}
	if spot.Prices == nil {
		t.Fatal("spot scenario lost its price schedule")
	}
	tenants := spot.Generate(templates)
	priced, err := newEngine(t, &spot, 1).RunTenants(context.Background(), tenants)
	if err != nil {
		t.Fatal(err)
	}
	flat := spot
	flat.Prices = nil
	unpriced, err := newEngine(t, &flat, 1).RunTenants(context.Background(), tenants)
	if err != nil {
		t.Fatal(err)
	}
	if priced[0].Penalty != unpriced[0].Penalty {
		t.Errorf("prices changed the penalty: %g vs %g (schedules must price money, not time)",
			priced[0].Penalty, unpriced[0].Penalty)
	}
	if priced[0].Cost == unpriced[0].Cost {
		t.Errorf("spot and flat prices charged identically (%g¢); the schedule never reached lease accounting", priced[0].Cost)
	}
}

// The steady-state arrival path stays allocation-free under every
// scenario's serving-side machinery: the tenant's mix drives the drift
// observer, and the spec's spot schedule drives the per-event price lookup
// and the priced dominated-placement guard. Gaps are fixed at 7m so every
// batch takes the fresh path — the alloc invariant is a property of the
// per-arrival serving work, which is exactly what varies per scenario.
func TestScenarioArrivalAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	templates := workload.DefaultTemplates(5)
	k := len(templates)
	for _, spec := range testCatalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ms := models(t)
			opts := core.DefaultOnlineOptions()
			opts.Drift = core.DriftOptions{Window: 32} // drift observe is on the measured path
			opts.Prices = spec.Prices
			o := core.NewOnlineScheduler(ms[""], opts)
			clk := &core.SimClock{}
			s := o.NewStream(clk)
			s.Reserve(260)
			ctx := context.Background()
			mix := spec.Tenants[0].Mix
			var weights []float64
			next := 0
			submit := func() {
				at := time.Duration(next) * 7 * time.Minute
				clk.Advance(at)
				tpl := next % k
				if mix != nil {
					weights = mix.WeightsAt(k, at, weights)
					tpl = drawTemplate(weights, float64(next%7)/7)
				}
				if err := s.Submit(ctx, workload.Query{TemplateID: tpl, Tag: next}); err != nil {
					t.Fatal(err)
				}
				next++
			}
			for next < 130 {
				submit()
			}
			allocs := testing.AllocsPerRun(60, submit)
			t.Logf("%.3f allocs per arrival in steady state", allocs)
			if allocs >= 1 {
				t.Errorf("steady-state arrival allocates (%.2f allocs/arrival) under scenario %s; want 0", allocs, spec.Name)
			}
			s.Finish()
		})
	}
}

// BenchmarkScenarioArrival measures per-arrival serving cost over scenario
// traces: the flash-crowd shape (out-of-order trace, same-instant batches)
// and the spot shape (price lookup + priced guard live on every event).
// WaitResolution is raised above the stream length so every wait buckets to
// zero — the benchmark isolates the arrival machinery from model
// acquisition, matching BenchmarkOnlineArrival's method.
func BenchmarkScenarioArrival(b *testing.B) {
	ms := models(b)
	base := ms[""]
	templates := base.Env().Templates
	for _, spec := range Catalog(11, 40, 5*time.Minute) {
		if spec.Name != "poisson" && spec.Name != "flash-crowd" && spec.Name != "spot" {
			continue
		}
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			w := spec.Generate(templates)[0].Workload
			opts := core.DefaultOnlineOptions()
			opts.WaitResolution = time.Hour
			opts.Prices = spec.Prices
			b.ReportAllocs()
			b.ResetTimer()
			var arrivals int
			for i := 0; i < b.N; i++ {
				o := core.NewOnlineScheduler(base, opts)
				res, err := o.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				arrivals += len(res.PerArrival)
			}
			b.StopTimer()
			if arrivals > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(arrivals), "ns/arrival")
			}
		})
	}
}
