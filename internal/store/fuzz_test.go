package store_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"wisedb/internal/core"
	"wisedb/internal/store"
)

// typedDecodeError reports whether err is one of the decoder's typed
// failure modes.
func typedDecodeError(err error) bool {
	return errors.Is(err, store.ErrBadMagic) || errors.Is(err, store.ErrVersion) ||
		errors.Is(err, store.ErrTruncated) || errors.Is(err, store.ErrCRC) ||
		errors.Is(err, store.ErrCorrupt)
}

// FuzzDecodeModel pins the model decoder's contract on hostile input: it
// never panics, never allocates unboundedly (every count is checked
// against the bytes present — a violation shows up here as an OOM crash),
// and always returns one of the typed errors. Input that does decode must
// describe a fully usable model: re-encoding it must succeed.
//
// Run locally with: go test ./internal/store -fuzz FuzzDecodeModel
// CI runs it as a bounded smoke (-fuzztime 30s).
func FuzzDecodeModel(f *testing.F) {
	golden, err := os.ReadFile(goldenV1Path)
	if err != nil {
		f.Fatalf("golden fixture missing: %v", err)
	}
	f.Add(golden)
	if v2, err := os.ReadFile(goldenV2Path); err == nil {
		// Seed the current format too: it carries the cache section and
		// the split content/aux hashes the v1 fixture cannot exercise.
		f.Add(v2)
	}
	f.Add([]byte{})
	f.Add([]byte("WSDB"))
	f.Add([]byte("WSDBxxxxxxxxxxxxxxxxxxx"))
	for _, n := range []int{1, 11, 12, 36, len(golden) / 2, len(golden) - 1} {
		if n < len(golden) {
			f.Add(golden[:n])
		}
	}
	for _, pos := range []int{5, 9, 20, 60, 200, len(golden) / 2, len(golden) - 3} {
		bad := append([]byte(nil), golden...)
		bad[pos] ^= 0x41
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := core.DecodeModel(data)
		if err != nil {
			if !typedDecodeError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if _, err := core.EncodeModel(m); err != nil {
			t.Fatalf("decoded model cannot re-encode: %v", err)
		}
	})
}

// A payload claiming astronomically many elements must fail with a typed
// error before any allocation sized by the claim — this test completing at
// all (instead of OOMing) is the assertion, the typed error the check.
func TestDecodeModelBoundedAllocation(t *testing.T) {
	var meta store.Enc
	meta.U64(0)       // hash
	meta.Duration(0)  // training time
	meta.Int(0)       // rows
	meta.Int(0)       // cache hits
	meta.Int(0)       // cache misses
	meta.Int(1)       // num samples
	meta.Int(1)       // sample size
	meta.I64(1)       // seed
	meta.Int(0)       // parallelism
	meta.Int(0)       // max expansions
	meta.Bool(false)  // keep training data
	meta.Bool(false)  // disable cache
	meta.Int(2)       // tree min leaf
	meta.Int(0)       // tree max depth
	meta.Bool(true)   // prune
	meta.F64(0.25)    // confidence
	meta.Bool(true)   // has sample weights...
	meta.Int(1 << 50) // ...claiming 2^50 of them
	var b store.Builder
	b.AddSection(1, meta.Bytes()) // secMeta
	if _, err := core.DecodeModel(b.Bytes()); !typedDecodeError(err) {
		t.Fatalf("want typed error for absurd count, got %v", err)
	}
}

// TestWriteFuzzCorpus materializes a few interesting seeds as committed
// corpus files (testdata/fuzz/FuzzDecodeModel/), so `go test -fuzz` and
// CI's bounded smoke start from real regression inputs. Regenerated with
// -update alongside the golden fixture.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*update {
		t.Skip("corpus regeneration runs with -update")
	}
	golden, err := os.ReadFile(goldenV1Path)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeModel")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := map[string][]byte{
		"seed_valid_v1":      golden,
		"seed_truncated_mid": golden[:len(golden)/2],
		"seed_crc_flip":      func() []byte { b := append([]byte(nil), golden...); b[len(b)-9] ^= 0xFF; return b }(),
		"seed_header_only":   golden[:12],
	}
	if v2, err := os.ReadFile(goldenV2Path); err == nil {
		seeds["seed_valid_v2"] = v2
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
