package store

import (
	"encoding/binary"
	"errors"
	"testing"
)

// buildTestContainer assembles a small two-section container.
func buildTestContainer() []byte {
	var b Builder
	var e1, e2 Enc
	e1.U32(7)
	e1.String("hello")
	e1.F64(3.25)
	e2.Int(-12)
	e2.Duration(90)
	b.AddSection(1, e1.Bytes())
	b.AddSection(2, e2.Bytes())
	return b.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	data := buildTestContainer()
	c, err := ParseContainer(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Sections()); got != 2 {
		t.Fatalf("want 2 sections, got %d", got)
	}
	p, err := c.MustSection(1)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDec(p)
	if v := d.U32(); v != 7 {
		t.Errorf("U32: got %d", v)
	}
	if v := d.String(); v != "hello" {
		t.Errorf("String: got %q", v)
	}
	if v := d.F64(); v != 3.25 {
		t.Errorf("F64: got %g", v)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	p2, err := c.MustSection(2)
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDec(p2)
	if v := d2.Int(); v != -12 {
		t.Errorf("Int: got %d", v)
	}
	if v := d2.Duration(); v != 90 {
		t.Errorf("Duration: got %d", v)
	}
	if err := d2.Done(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Section(9); ok || err != nil {
		t.Errorf("missing section: ok=%v err=%v", ok, err)
	}
}

// Every way of damaging a container must map to the right typed error —
// never a panic, never success.
func TestContainerTypedErrors(t *testing.T) {
	good := buildTestContainer()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 'X'
		if _, err := ParseContainer(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
		if _, err := ParseContainer(nil); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("empty input: want ErrBadMagic, got %v", err)
		}
	})

	t.Run("unsupported version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint16(bad[4:], FormatVersion+1)
		if _, err := ParseContainer(bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("want ErrVersion, got %v", err)
		}
	})

	t.Run("truncation at every prefix", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			_, err := ParseContainer(good[:n])
			if err == nil {
				// A prefix that still parses must fail on section access.
				c, _ := ParseContainer(good[:n])
				if _, err2 := c.MustSection(1); err2 == nil {
					if _, err3 := c.MustSection(2); err3 == nil {
						t.Fatalf("prefix of %d/%d bytes decodes fully", n, len(good))
					}
				}
				continue
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
				t.Fatalf("prefix %d: untyped error %v", n, err)
			}
		}
	})

	t.Run("absurd section count does not allocate", func(t *testing.T) {
		bad := append([]byte(nil), good[:headerLen]...)
		binary.LittleEndian.PutUint32(bad[8:], 1<<31-1)
		if _, err := ParseContainer(bad); !errors.Is(err, ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})

	t.Run("payload corruption fails CRC", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0xFF
		c, err := ParseContainer(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.MustSection(2); !errors.Is(err, ErrCRC) {
			t.Fatalf("want ErrCRC, got %v", err)
		}
		// The undamaged section still reads.
		if _, err := c.MustSection(1); err != nil {
			t.Fatalf("undamaged section: %v", err)
		}
	})
}

// A corrupt element count inside a section must fail before allocating.
func TestDecCountBounded(t *testing.T) {
	var e Enc
	e.Int(1 << 40) // claims 2^40 elements
	d := NewDec(e.Bytes())
	if n := d.Count(8); n != 0 || !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("Count accepted absurd count: n=%d err=%v", n, d.Err())
	}
}

// Dec must report trailing garbage: an intact CRC over a longer-than-
// expected payload means the encoder never produced it.
func TestDecDoneRejectsTrailing(t *testing.T) {
	var e Enc
	e.U32(1)
	e.U8(0xAB)
	d := NewDec(e.Bytes())
	d.U32()
	if err := d.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on trailing bytes, got %v", err)
	}
}

// FuzzParseContainer pins the container layer's no-panic, typed-error
// contract on arbitrary input.
func FuzzParseContainer(f *testing.F) {
	f.Add(buildTestContainer())
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseContainer(data)
		if err != nil {
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		for _, s := range c.Sections() {
			if _, _, err := c.Section(s.ID); err != nil && !errors.Is(err, ErrCRC) {
				t.Fatalf("untyped section error: %v", err)
			}
		}
	})
}
