package store_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/store"
	"wisedb/internal/workload"
)

var update = flag.Bool("update", false, "regenerate golden fixtures (only when bumping the format version)")

const (
	goldenV1Path = "testdata/model_v1.wsdb"
	goldenV2Path = "testdata/model_v2.wsdb"
)

// goldenModel trains the fixture model: tiny and fully deterministic
// (training is bit-identical at any parallelism; every parameter is
// pinned). It retains training data so the fixture exercises every section
// of the format, including the adaptive-A* closed sets and — since format
// v2 — the persisted transposition cache.
func goldenModel(t testing.TB) *core.Model {
	t.Helper()
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(2))
	cfg := core.TrainConfig{
		NumSamples:       20,
		SampleSize:       4,
		Seed:             42,
		KeepTrainingData: true,
	}
	m, err := core.MustNewAdvisor(env, cfg).Train(
		sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	// TrainingTime is the one wall-clock field a model carries; pin it so
	// the fixture bytes depend only on the (deterministic) training
	// output.
	m.TrainingTime = 123 * time.Millisecond
	return m
}

// Reader compatibility with format v1: today's reader must still load the
// committed v1 fixture — breaking this breaks every model file written
// before the v2 bump. The fixture was written by the v1 encoder (single
// hash over all five payloads, no cache section) and can no longer be
// regenerated: today's trainer produces different (canonical-search) trees
// and today's writer produces v2 containers. The committed bytes ARE the
// compatibility surface; -update deliberately does not touch them.
func TestGoldenModelV1(t *testing.T) {
	golden, err := os.ReadFile(goldenV1Path)
	if err != nil {
		t.Fatalf("missing committed v1 fixture (it cannot be regenerated): %v", err)
	}
	c, err := store.ParseContainer(golden)
	if err != nil {
		t.Fatalf("today's container parser rejects the v1 fixture: %v", err)
	}
	if c.Version() != 1 {
		t.Fatalf("v1 fixture parses as version %d", c.Version())
	}
	lm, err := core.DecodeModel(golden)
	if err != nil {
		t.Fatalf("today's reader cannot load the v1 fixture: %v", err)
	}
	if lm.Tree == nil || len(lm.TrainingMix()) != 0 && len(lm.TrainingMix()) != 3 {
		t.Fatalf("v1 fixture decoded into a hollow model: %+v", lm)
	}
	// The loaded model must be fully serviceable — re-encodable (as v2;
	// the writer never emits v1) and decodable again to the same tree.
	back, err := core.EncodeModel(lm)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := store.ParseContainer(back)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Version() != store.FormatVersion {
		t.Fatalf("re-encoding a v1 model produced version %d, want %d", rc.Version(), store.FormatVersion)
	}
	lm2, err := core.DecodeModel(back)
	if err != nil {
		t.Fatalf("v1→v2 round trip does not decode: %v", err)
	}
	if lm2.Dump() != lm.Dump() {
		t.Fatal("v1→v2 round trip changed the decision tree")
	}
}

// The golden-file pin for the current format, in both directions:
//
//  1. Writer stability — encoding the fixture's model today must produce
//     the committed v2 bytes. If an intentional encoding change trips
//     this, bump store.FormatVersion, keep a reader for v2, and regenerate
//     with -update; silently shifting the meaning of version 2 is the one
//     thing a versioned format must never do.
//  2. Reader compatibility — today's reader must load the fixture and
//     reproduce it byte-exactly on re-encode.
func TestGoldenModelV2(t *testing.T) {
	m := goldenModel(t)
	data, err := core.EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenV2Path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenV2Path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes) — commit it together with the FormatVersion bump", goldenV2Path, len(data))
	}
	golden, err := os.ReadFile(goldenV2Path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}

	if !bytes.Equal(data, golden) {
		t.Fatalf("the v2 encoding drifted: encoding the fixture model produced %d bytes that differ from the committed %d-byte fixture.\n"+
			"If this change is intentional, bump store.FormatVersion (keeping a reader for v2) and regenerate with:\n"+
			"  go test ./internal/store -run TestGoldenModelV2 -update", len(data), len(golden))
	}

	lm, err := core.DecodeModel(golden)
	if err != nil {
		t.Fatalf("today's reader cannot load the v2 fixture: %v", err)
	}
	back, err := core.EncodeModel(lm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, golden) {
		t.Fatal("loading the v2 fixture and re-encoding does not reproduce it byte-exactly")
	}
	if lm.Dump() != m.Dump() {
		t.Fatal("fixture model's tree differs after loading")
	}
}

// Both fixtures must be inspectable without decoding their trees, each
// reporting its own format version and section inventory.
func TestGoldenModelInspect(t *testing.T) {
	for _, tc := range []struct {
		path     string
		version  uint16
		hasCache bool
	}{
		{goldenV1Path, 1, false},
		{goldenV2Path, 2, true},
	} {
		golden, err := os.ReadFile(tc.path)
		if err != nil {
			t.Skipf("golden fixture %s missing", tc.path)
		}
		info, err := core.InspectModel(golden)
		if err != nil {
			t.Fatal(err)
		}
		if info.FormatVersion != tc.version {
			t.Fatalf("%s: inspected version %d, want %d", tc.path, info.FormatVersion, tc.version)
		}
		if info.Config.Seed != 42 || info.Config.NumSamples != 20 || info.Config.SampleSize != 4 {
			t.Fatalf("%s: inspected provenance wrong: %+v", tc.path, info.Config)
		}
		if len(info.Templates) != 3 || len(info.VMTypes) != 2 {
			t.Fatalf("%s: inspected environment wrong: %d templates, %d VM types", tc.path, len(info.Templates), len(info.VMTypes))
		}
		if info.Goal.Name() != "Max" {
			t.Fatalf("%s: inspected goal %q", tc.path, info.Goal.Name())
		}
		if !info.HasTrainingData || info.Hash == 0 {
			t.Fatalf("%s: inspection missed sections: %+v", tc.path, info)
		}
		if info.HasSearchCache != tc.hasCache {
			t.Fatalf("%s: HasSearchCache=%v, want %v", tc.path, info.HasSearchCache, tc.hasCache)
		}
	}
}
