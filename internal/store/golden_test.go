package store_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

var update = flag.Bool("update", false, "regenerate golden fixtures (only when bumping the format version)")

const goldenPath = "testdata/model_v1.wsdb"

// goldenModel trains the fixture model: tiny and fully deterministic
// (training is bit-identical at any parallelism; every parameter is
// pinned). It retains training data so the fixture exercises every section
// of the format, including the adaptive-A* closed sets.
func goldenModel(t testing.TB) *core.Model {
	t.Helper()
	env := schedule.NewEnv(workload.DefaultTemplates(3), cloud.DefaultVMTypes(2))
	cfg := core.TrainConfig{
		NumSamples:       20,
		SampleSize:       4,
		Seed:             42,
		KeepTrainingData: true,
	}
	m, err := core.MustNewAdvisor(env, cfg).Train(
		sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate))
	if err != nil {
		t.Fatal(err)
	}
	// TrainingTime is the one wall-clock field a model carries; pin it so
	// the fixture bytes depend only on the (deterministic) training
	// output.
	m.TrainingTime = 123 * time.Millisecond
	return m
}

// The golden-file compatibility pin, in both directions:
//
//  1. Reader compatibility — today's reader must load the committed v1
//     fixture and reproduce it byte-exactly on re-encode. Breaking this
//     breaks every model file in production.
//  2. Writer stability — encoding the fixture's model today must produce
//     the committed bytes. If an intentional encoding change trips this,
//     bump store.FormatVersion, keep a reader for v1, and regenerate the
//     fixture with -update; silently shifting the meaning of version 1
//     is the one thing a versioned format must never do.
func TestGoldenModelV1(t *testing.T) {
	m := goldenModel(t)
	data, err := core.EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes) — commit it together with the FormatVersion bump", goldenPath, len(data))
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}

	if !bytes.Equal(data, golden) {
		t.Fatalf("the v1 encoding drifted: encoding the fixture model produced %d bytes that differ from the committed %d-byte fixture.\n"+
			"If this change is intentional, bump store.FormatVersion (keeping a reader for v1) and regenerate with:\n"+
			"  go test ./internal/store -run TestGoldenModelV1 -update", len(data), len(golden))
	}

	lm, err := core.DecodeModel(golden)
	if err != nil {
		t.Fatalf("today's reader cannot load the v1 fixture: %v", err)
	}
	back, err := core.EncodeModel(lm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, golden) {
		t.Fatal("loading the v1 fixture and re-encoding does not reproduce it byte-exactly")
	}
	if lm.Dump() != m.Dump() {
		t.Fatal("fixture model's tree differs after loading")
	}
}

// The fixture must also be inspectable without decoding its tree.
func TestGoldenModelInspect(t *testing.T) {
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skip("golden fixture missing")
	}
	info, err := core.InspectModel(golden)
	if err != nil {
		t.Fatal(err)
	}
	if info.Config.Seed != 42 || info.Config.NumSamples != 20 || info.Config.SampleSize != 4 {
		t.Fatalf("inspected provenance wrong: %+v", info.Config)
	}
	if len(info.Templates) != 3 || len(info.VMTypes) != 2 {
		t.Fatalf("inspected environment wrong: %d templates, %d VM types", len(info.Templates), len(info.VMTypes))
	}
	if info.Goal.Name() != "Max" {
		t.Fatalf("inspected goal %q", info.Goal.Name())
	}
	if !info.HasTrainingData || info.Hash == 0 {
		t.Fatalf("inspection missed sections: %+v", info)
	}
}
