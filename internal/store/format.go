// Package store implements WiSeDB's durable model persistence: a
// versioned, self-describing binary container format and a crash-safe,
// versioned on-disk model store.
//
// The container format is deliberately dumb — fixed-width little-endian
// fields, no compression, no reflection — so that a reader can verify it
// section by section without trusting any of it:
//
//	offset  size  field
//	0       4     magic "WSDB"
//	4       2     format version (uint16, see FormatVersion)
//	6       2     flags (uint16, reserved, zero)
//	8       4     section count (uint32)
//	12      24×n  section table: {id u32, crc32 u32, offset u64, length u64}
//	...           section payloads (anywhere after the table; the canonical
//	              writer packs them back to back in table order)
//
// Every section payload carries its own CRC32 (IEEE) in the table, so a
// reader can validate exactly the sections it touches — the `wisedb
// inspect` command reads a model's metadata and mix without ever paying for
// (or trusting) the tree section. Section IDs are assigned by the payload
// producer (internal/core for models); the container neither knows nor
// cares what a section means.
//
// Decoding is hardened for hostile input: every length and count is checked
// against the bytes actually present before any allocation sized by it, so
// a corrupt or truncated file yields a typed error (ErrBadMagic, ErrVersion,
// ErrTruncated, ErrCRC) — never a panic, and never an allocation larger
// than O(len(input)).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// Magic identifies a WiSeDB container file.
const Magic = "WSDB"

// FormatVersion is the container format version this package writes. The
// golden-file test in this package pins the byte-exact encoding of the
// current version; any change to the encoding must bump this constant
// (readers for old versions stay supported explicitly, never accidentally).
//
// Version history:
//
//	1  initial format; model content hash covers every section including
//	   retained training data
//	2  canonical-search encoding: adds the optional transposition-cache
//	   section to model files, splits the model hash into a serving-content
//	   hash (goal/env/mix/tree) and an auxiliary hash (training data +
//	   cache), and appends warm/cold sample counters to the meta section
const FormatVersion = 2

// MinFormatVersion is the oldest container version ParseContainer accepts.
const MinFormatVersion = 1

// Typed decode errors. Decoders wrap these (errors.Is matches), adding
// context about which section or field was bad.
var (
	// ErrBadMagic reports input that is not a WiSeDB container at all.
	ErrBadMagic = errors.New("store: bad magic (not a WiSeDB container)")
	// ErrVersion reports a container written by a newer (or unknown)
	// format version.
	ErrVersion = errors.New("store: unsupported format version")
	// ErrTruncated reports input that ends before a length, count, or
	// section it promised.
	ErrTruncated = errors.New("store: truncated input")
	// ErrCRC reports a section whose payload does not match its checksum.
	ErrCRC = errors.New("store: section checksum mismatch")
	// ErrCorrupt reports structurally invalid content inside a section
	// whose checksum was intact (an encoder would never produce it).
	ErrCorrupt = errors.New("store: corrupt section content")
)

const (
	headerLen       = 12
	sectionEntryLen = 24
)

// SectionInfo describes one section of a parsed container.
type SectionInfo struct {
	// ID identifies the section's meaning to the payload producer.
	ID uint32
	// Len is the payload length in bytes.
	Len int
	// CRC is the payload's CRC32 (IEEE).
	CRC uint32
}

// Builder assembles a container. Sections are written in AddSection order;
// the canonical encoding packs payloads back to back after the table.
type Builder struct {
	ids      []uint32
	payloads [][]byte
}

// AddSection appends a section. IDs may repeat in principle; readers see
// the first match, so producers should keep them unique.
func (b *Builder) AddSection(id uint32, payload []byte) {
	b.ids = append(b.ids, id)
	b.payloads = append(b.payloads, payload)
}

// Bytes serializes the container.
func (b *Builder) Bytes() []byte {
	total := headerLen + sectionEntryLen*len(b.ids)
	off := total
	for _, p := range b.payloads {
		total += len(p)
	}
	out := make([]byte, headerLen, total)
	copy(out, Magic)
	binary.LittleEndian.PutUint16(out[4:], FormatVersion)
	binary.LittleEndian.PutUint16(out[6:], 0)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(b.ids)))
	var entry [sectionEntryLen]byte
	for i, p := range b.payloads {
		binary.LittleEndian.PutUint32(entry[0:], b.ids[i])
		binary.LittleEndian.PutUint32(entry[4:], crc32.ChecksumIEEE(p))
		binary.LittleEndian.PutUint64(entry[8:], uint64(off))
		binary.LittleEndian.PutUint64(entry[16:], uint64(len(p)))
		out = append(out, entry[:]...)
		off += len(p)
	}
	for _, p := range b.payloads {
		out = append(out, p...)
	}
	return out
}

// Container is a parsed container: the section table validated against the
// input bounds, with payload checksums verified lazily per section access.
type Container struct {
	data     []byte
	version  uint16
	sections []SectionInfo
	offsets  []uint64
}

// Version returns the container's format version (between MinFormatVersion
// and FormatVersion; ParseContainer rejects anything else). Payload decoders
// branch on it to read old layouts.
func (c *Container) Version() uint16 { return c.version }

// ParseContainer validates the header and section table of data. Payload
// bytes are referenced, not copied; checksum verification happens in
// Section, so a caller that reads only some sections validates only those.
func ParseContainer(data []byte) (*Container, error) {
	if len(data) < len(Magic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadMagic, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d-byte header", ErrTruncated, len(data))
	}
	version := binary.LittleEndian.Uint16(data[4:])
	if version < MinFormatVersion || version > FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, reader supports %d..%d", ErrVersion, version, MinFormatVersion, FormatVersion)
	}
	// The count bound makes the table allocation proportional to the
	// input: a file claiming 2^31 sections but holding 50 bytes fails
	// here instead of allocating gigabytes. The comparison runs in
	// uint64 so a hostile count cannot wrap negative on 32-bit ints.
	rawCount := binary.LittleEndian.Uint32(data[8:])
	if uint64(rawCount) > uint64((len(data)-headerLen)/sectionEntryLen) {
		return nil, fmt.Errorf("%w: section table claims %d sections", ErrTruncated, rawCount)
	}
	count := int(rawCount)
	c := &Container{
		data:     data,
		version:  version,
		sections: make([]SectionInfo, count),
		offsets:  make([]uint64, count),
	}
	for i := 0; i < count; i++ {
		e := data[headerLen+i*sectionEntryLen:]
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d spans [%d,+%d) of %d bytes", ErrTruncated, i, off, length, len(data))
		}
		c.sections[i] = SectionInfo{
			ID:  binary.LittleEndian.Uint32(e[0:]),
			Len: int(length),
			CRC: binary.LittleEndian.Uint32(e[4:]),
		}
		c.offsets[i] = off
	}
	return c, nil
}

// Sections returns the section table in file order.
func (c *Container) Sections() []SectionInfo { return c.sections }

// Section returns the payload of the first section with the given id after
// verifying its checksum. The returned slice aliases the container's input.
// ok is false when no such section exists.
func (c *Container) Section(id uint32) (payload []byte, ok bool, err error) {
	for i, s := range c.sections {
		if s.ID != id {
			continue
		}
		p := c.data[c.offsets[i] : c.offsets[i]+uint64(s.Len)]
		if crc32.ChecksumIEEE(p) != s.CRC {
			return nil, true, fmt.Errorf("%w: section id %d", ErrCRC, id)
		}
		return p, true, nil
	}
	return nil, false, nil
}

// MustSection is Section for sections the format requires: a missing
// section reports ErrTruncated.
func (c *Container) MustSection(id uint32) ([]byte, error) {
	p, ok, err := c.Section(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: missing section id %d", ErrTruncated, id)
	}
	return p, nil
}

// Enc appends fixed-width little-endian fields to a section payload. The
// zero value is ready to use.
type Enc struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends a byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 bit pattern (bit-exact round trip, NaN included).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Duration appends a time.Duration as int64 nanoseconds.
func (e *Enc) Duration(v time.Duration) { e.I64(int64(v)) }

// Bytes32 appends a length-prefixed byte string.
func (e *Enc) Bytes32(v []byte) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// String appends a length-prefixed string.
func (e *Enc) String(v string) {
	e.U32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// Dec reads fixed-width little-endian fields from a section payload with a
// sticky error: after the first failure every read returns a zero value and
// Err reports the failure, so decoders can read a whole record and check
// once. Reads never allocate more than the bytes actually present.
type Dec struct {
	data []byte
	off  int
	err  error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{data: payload} }

// Err returns the first read failure, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.data) - d.off }

// Done returns d.Err, additionally failing with ErrCorrupt when unread
// bytes remain — an intact checksum with trailing garbage means the payload
// was not produced by the encoder.
func (d *Dec) Done() error {
	if d.err == nil && d.Remaining() != 0 {
		d.err = fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Remaining())
	}
	return d.err
}

// fail records the first error.
func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// take returns the next n bytes, or nil after recording ErrTruncated.
func (d *Dec) take(n int) []byte {
	if n < 0 || d.Remaining() < n {
		d.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, d.Remaining()))
		return nil
	}
	p := d.data[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads a byte.
func (d *Dec) U8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool reads a one-byte boolean; any value other than 0 or 1 is corrupt.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: boolean out of range", ErrCorrupt))
		return false
	}
}

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int64 into an int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Duration reads an int64-nanosecond duration.
func (d *Dec) Duration() time.Duration { return time.Duration(d.I64()) }

// Count reads a element count that prefixes an array of elements at least
// elemSize bytes each, verifying the payload actually holds that many
// before the caller allocates: a corrupt count can never force an
// allocation beyond O(len(payload)).
func (d *Dec) Count(elemSize int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || (elemSize > 0 && n > d.Remaining()/elemSize) {
		d.fail(fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrTruncated, n, d.Remaining()))
		return 0
	}
	return n
}

// Bytes32 reads a length-prefixed byte string, copying it out of the
// payload.
func (d *Dec) Bytes32() []byte {
	n := int(d.U32())
	p := d.take(n)
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := int(d.U32())
	p := d.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}
