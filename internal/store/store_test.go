package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// payload builds a distinguishable fake epoch payload.
func payload(epoch uint64) []byte {
	return []byte(fmt.Sprintf("model-payload-%d-%s", epoch, "xxxxxxxxxxxxxxxx"))
}

func mustCommit(t *testing.T, s *ModelStore, epoch uint64) {
	t.Helper()
	lin := Lineage{Epoch: epoch, Reason: "manual"}
	if epoch > 0 {
		lin.Parent = epoch - 1
	} else {
		lin.Reason = "base"
	}
	if err := s.Commit(payload(epoch), lin); err != nil {
		t.Fatal(err)
	}
}

func TestModelStoreCommitLatestLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty store: want ErrEmpty, got %v", err)
	}
	for e := uint64(0); e < 3; e++ {
		mustCommit(t, s, e)
	}
	lin, data, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if lin.Epoch != 2 || string(data) != string(payload(2)) {
		t.Fatalf("latest: epoch %d, %q", lin.Epoch, data)
	}
	if lin.Parent != 1 || lin.Reason != "manual" || lin.SavedAt.IsZero() {
		t.Fatalf("lineage not recorded: %+v", lin)
	}
	if _, data, err = s.Load(0); err != nil || string(data) != string(payload(0)) {
		t.Fatalf("load epoch 0: %q, %v", data, err)
	}
	if err := s.Commit(payload(2), Lineage{Epoch: 2}); err == nil {
		t.Fatal("double-commit of an epoch must error")
	}

	// Reopen: everything survives.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s2.Entries()); got != 3 {
		t.Fatalf("reopened store has %d entries, want 3", got)
	}
}

func TestModelStorePruneKeepsNewest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetKeep(2)
	for e := uint64(0); e < 5; e++ {
		mustCommit(t, s, e)
	}
	entries := s.Entries()
	if len(entries) != 2 || entries[0].Epoch != 3 || entries[1].Epoch != 4 {
		t.Fatalf("prune kept %+v, want epochs 3,4", entries)
	}
	if _, err := os.Stat(s.epochPath(0)); !os.IsNotExist(err) {
		t.Fatal("pruned epoch file still on disk")
	}
	if _, err := os.Stat(s.epochPath(4)); err != nil {
		t.Fatal("retained epoch file missing")
	}
}

// A short write to the payload file must fail the commit and leave the
// store — in memory and after reopen — on its previous committed state.
func TestModelStoreShortWriteKeepsLastGood(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, s, 0)
	// The injected writer simulates a crash mid-write: half the payload
	// lands at the *final* path (as if rename already happened against a
	// torn page, the worst case for a non-atomic writer), then the write
	// errors.
	s.SetPayloadWriter(func(path string, data []byte) error {
		os.WriteFile(path, data[:len(data)/2], 0o644)
		return errors.New("injected short write")
	})
	if err := s.Commit(payload(1), Lineage{Epoch: 1, Parent: 0, Reason: "drift"}); err == nil {
		t.Fatal("commit with failing writer must error")
	}
	s.SetPayloadWriter(nil)
	if lin, data, err := s.Latest(); err != nil || lin.Epoch != 0 || string(data) != string(payload(0)) {
		t.Fatalf("after failed commit: epoch %d err %v", lin.Epoch, err)
	}

	// Reopen: the torn epoch-1 file is an unacknowledged orphan and is
	// swept; epoch 0 still serves.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lin, data, err := s2.Latest()
	if err != nil || lin.Epoch != 0 || string(data) != string(payload(0)) {
		t.Fatalf("reopened after torn write: epoch %d err %v", lin.Epoch, err)
	}
	if _, err := os.Stat(s2.epochPath(1)); !os.IsNotExist(err) {
		t.Fatal("torn unacknowledged epoch file survived recovery")
	}
	// The store keeps working after recovery.
	mustCommit(t, s2, 1)
}

// A manifest-acknowledged file that is later truncated (bit rot, partial
// restore) must be quarantined on reopen, with Latest falling back to the
// last intact epoch.
func TestModelStoreRecoveryQuarantinesCorruptEpoch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, s, 0)
	mustCommit(t, s, 1)
	// Truncate the newest epoch file behind the manifest's back.
	if err := os.WriteFile(s.epochPath(1), payload(1)[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lin, data, err := s2.Latest()
	if err != nil || lin.Epoch != 0 || string(data) != string(payload(0)) {
		t.Fatalf("want fallback to epoch 0, got epoch %d err %v", lin.Epoch, err)
	}
	if _, err := os.Stat(s2.epochPath(1) + ".corrupt"); err != nil {
		t.Fatal("corrupt epoch was not quarantined")
	}
	// Corrupted-in-place (same size, flipped bits) is caught by CRC too.
	bad := payload(0)
	bad[0] ^= 0xFF
	if err := os.WriteFile(s2.epochPath(0), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s3.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("all epochs corrupt: want ErrEmpty, got %v", err)
	}
}

// Stray temp files from interrupted atomic writes are swept on open.
func TestModelStoreRecoverySweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, s, 0)
	tmp := filepath.Join(dir, "epoch-00000001.wsdb.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp file survived recovery")
	}
}

// The manifest's size/CRC must describe the payload exactly.
func TestModelStoreLineageIntegrityFields(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := payload(0)
	if err := s.Commit(data, Lineage{Epoch: 0, Reason: "base", ModelHash: 0xDEADBEEF}); err != nil {
		t.Fatal(err)
	}
	e := s.Entries()[0]
	if e.Size != int64(len(data)) || e.CRC != crc32.ChecksumIEEE(data) || e.ModelHash != 0xDEADBEEF {
		t.Fatalf("lineage integrity fields wrong: %+v", e)
	}
}

// Commit must fail cleanly at either write stage: a payload-stage fault
// commits nothing; a manifest-stage fault leaves only an orphan payload that
// the next Open sweeps. In both cases the store stays on its last good
// epoch.
func TestCommitFailsAtEveryWriteStage(t *testing.T) {
	boom := errors.New("injected write fault")
	for _, stage := range []string{"payload", "manifest"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			mustCommit(t, s, 0)
			switch stage {
			case "payload":
				s.SetPayloadWriter(func(string, []byte) error { return boom })
			case "manifest":
				s.SetManifestWriter(func(string, []byte) error { return boom })
			}
			if err := s.Commit(payload(1), Lineage{Epoch: 1, Parent: 0, Reason: "drift"}); !errors.Is(err, boom) {
				t.Fatalf("commit with a failing %s write: got %v", stage, err)
			}
			if epoch, ok := s.LatestEpoch(); !ok || epoch != 0 {
				t.Fatalf("store must stay on epoch 0, got %d (%v)", epoch, ok)
			}
			// A failed commit must not poison the epoch: clearing the fault
			// and retrying the same commit succeeds.
			s.SetPayloadWriter(nil)
			s.SetManifestWriter(nil)
			if err := s.Commit(payload(1), Lineage{Epoch: 1, Parent: 0, Reason: "drift"}); err != nil {
				t.Fatalf("retry after clearing the fault: %v", err)
			}
			// Reopen: recovery agrees, and no stray files remain.
			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if epoch, ok := s2.LatestEpoch(); !ok || epoch != 1 {
				t.Fatalf("reopened store: epoch %d (%v), want 1", epoch, ok)
			}
			if q := s2.Quarantined(); len(q) != 0 {
				t.Fatalf("a failed commit is not corruption; quarantine must be empty, got %v", q)
			}
		})
	}
}

// A manifest-stage fault strands the durable payload as an orphan; the next
// Open sweeps it rather than resurrecting the unacknowledged commit.
func TestManifestFaultOrphanSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, s, 0)
	boom := errors.New("injected manifest fault")
	s.SetManifestWriter(func(string, []byte) error { return boom })
	if err := s.Commit(payload(1), Lineage{Epoch: 1, Parent: 0, Reason: "drift"}); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, fmt.Sprintf(epochPattern, uint64(1)))
	if _, err := os.Stat(orphan); err != nil {
		t.Fatalf("the payload must be on disk before the manifest stage: %v", err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("Open must sweep the unacknowledged payload, got %v", err)
	}
}

// Quarantined surfaces the .corrupt files recovery sets aside.
func TestQuarantinedListing(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, s, 0)
	mustCommit(t, s, 1)
	if q := s.Quarantined(); len(q) != 0 {
		t.Fatalf("healthy store: want no quarantine, got %v", q)
	}
	// Flip a byte in epoch 1: recovery must quarantine it.
	path := filepath.Join(dir, fmt.Sprintf(epochPattern, uint64(1)))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := s2.Quarantined()
	if len(q) != 1 || q[0] != filepath.Base(path)+".corrupt" {
		t.Fatalf("want exactly the corrupted epoch quarantined, got %v", q)
	}
	if epoch, ok := s2.LatestEpoch(); !ok || epoch != 0 {
		t.Fatalf("recovery must fall back to epoch 0, got %d (%v)", epoch, ok)
	}
}
