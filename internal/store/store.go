package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Lineage records where one persisted epoch came from — the audit trail of
// the serving registry across drift retrains, manual swaps, and restarts.
type Lineage struct {
	// Epoch is the registry generation this entry persists.
	Epoch uint64 `json:"epoch"`
	// Parent is the epoch that was serving when this one was installed.
	// Epoch 0 (the base model) is its own parent.
	Parent uint64 `json:"parent"`
	// Reason records why the epoch was installed: "base" for the initial
	// checkpoint, "drift" for a drift-triggered retrain, "manual" for an
	// explicit swap.
	Reason string `json:"reason"`
	// EMD is the Earth Mover's Distance that triggered the swap, zero for
	// non-drift installs.
	EMD float64 `json:"emd,omitempty"`
	// Mix is the normalized template-arrival mix the epoch targets; warm
	// start restores it so the drift detectors compare against exactly
	// the distribution the persisted model was serving.
	Mix []float64 `json:"mix,omitempty"`
	// ModelHash is the parallelism-independent content hash of the
	// encoded model (see core's codec), for cross-restart auditing.
	ModelHash uint64 `json:"model_hash"`
	// SavedAt is the wall-clock commit time.
	SavedAt time.Time `json:"saved_at"`
	// Size and CRC describe the committed epoch file; Open uses them to
	// detect partially written or bit-rotted files.
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`

	// RetrainMS is the wall time of the retrain that produced this epoch,
	// in milliseconds; zero for non-retrain installs and for manifests
	// written before the warm-retrain format (the fields below are all
	// omitempty, so old manifests round-trip unchanged).
	RetrainMS int64 `json:"retrain_ms,omitempty"`
	// WarmSamples and ColdSamples split the retrain's sample workloads into
	// those replayed from the prior epoch's retained search data and those
	// solved fresh. Both zero for cold (or pre-warm-format) epochs.
	WarmSamples int `json:"warm_samples,omitempty"`
	ColdSamples int `json:"cold_samples,omitempty"`
	// CacheHits and CacheMisses are the retrain's transposition-cache
	// lookup counters (cross-epoch reuse shows up as a high hit rate).
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
}

// manifest is the MANIFEST file: the store's source of truth. An epoch file
// exists durably if and only if the manifest lists it — the commit protocol
// (payload file first, manifest rename second) makes every crash land on a
// prefix of the commit history.
type manifest struct {
	FormatVersion int       `json:"format_version"`
	Entries       []Lineage `json:"entries"`
}

// ErrEmpty reports a store with no recoverable epochs.
var ErrEmpty = errors.New("store: no epochs in store")

const (
	manifestName = "MANIFEST"
	epochPattern = "epoch-%08d.wsdb"
)

// ModelStore is a durable, crash-safe directory of model epochs:
//
//	<dir>/MANIFEST            JSON manifest + lineage (source of truth)
//	<dir>/epoch-00000000.wsdb container-format model payloads
//	<dir>/epoch-00000001.wsdb
//	...
//
// Commit is atomic (write-to-temp, fsync, rename, then manifest rewrite by
// the same protocol), so a crash at any instant leaves the store equal to
// some earlier committed state plus possibly an orphan payload file, which
// Open removes. Open verifies every manifest entry against its file (size
// and CRC32) and quarantines mismatches, so Latest always returns the
// newest epoch that is bit-intact on disk.
//
// A ModelStore is safe for concurrent use.
type ModelStore struct {
	dir string

	mu      sync.Mutex
	entries []Lineage
	// keep bounds the number of epochs retained on disk: each Commit
	// prunes the oldest entries beyond it, in sync with the serving
	// engine's own epoch-cache eviction (superseded epochs can never be
	// served again; the on-disk window exists for lineage and rollback,
	// not for serving). Zero keeps everything; set with SetKeep.
	keep int

	// writePayload is the fault-injection seam of the crash-safety tests:
	// it writes an epoch payload file at path. nil selects the default
	// atomic write. The manifest always uses the default path, so an
	// injected payload failure exercises exactly the "crash while writing
	// an epoch file" window.
	writePayload func(path string, data []byte) error
	// writeManifest is the same seam for the MANIFEST rewrite — the second
	// write stage of the commit protocol. An injected failure here lands in
	// the "payload durable, commit unacknowledged" window: Commit must
	// report the error, drop the entry, and leave an orphan payload for the
	// next Open to sweep.
	writeManifest func(path string, data []byte) error
}

// DefaultKeep is the number of epochs a store retains by default.
const DefaultKeep = 8

// Open opens (creating if needed) a model store at dir and runs crash
// recovery: temp files from interrupted writes are removed, manifest
// entries whose files are missing, short, or checksum-broken are dropped
// (the files quarantined with a .corrupt suffix), and payload files the
// manifest never committed are deleted.
func Open(dir string) (*ModelStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &ModelStore{dir: dir, keep: DefaultKeep}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *ModelStore) Dir() string { return s.dir }

// recover loads the manifest and reconciles it with the directory.
func (s *ModelStore) recover() error {
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	var m manifest
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &m); err != nil {
			// The manifest is renamed into place atomically, so a crash
			// cannot half-write it; an unparseable manifest is real
			// damage the operator must look at, not a recoverable state.
			return fmt.Errorf("store: MANIFEST is unreadable (not a crash artifact): %w", err)
		}
		if m.FormatVersion < MinFormatVersion || m.FormatVersion > FormatVersion {
			return fmt.Errorf("%w: MANIFEST has version %d, reader supports %d..%d", ErrVersion, m.FormatVersion, MinFormatVersion, FormatVersion)
		}
	case os.IsNotExist(err):
		m = manifest{FormatVersion: FormatVersion}
	default:
		return fmt.Errorf("store: open: %w", err)
	}

	// Keep only entries whose payload file is present and bit-intact.
	// Only *verification* failures (missing file, wrong size, bad CRC)
	// drop an entry; a read that errors for any other reason — EIO, a
	// permissions hiccup, a flaky mount — aborts Open instead, because
	// treating a transient error as corruption would let the orphan sweep
	// below delete a perfectly good epoch.
	var live []Lineage
	for _, e := range m.Entries {
		path := s.epochPath(e.Epoch)
		data, err := os.ReadFile(path)
		switch {
		case err == nil && int64(len(data)) == e.Size && crc32.ChecksumIEEE(data) == e.CRC:
			live = append(live, e)
		case err == nil:
			// Quarantine rather than delete: a manifest-listed file that
			// fails verification is evidence, not garbage.
			os.Rename(path, path+".corrupt")
		case os.IsNotExist(err):
			// The payload is gone; the entry is unrecoverable.
		default:
			return fmt.Errorf("store: open: verifying epoch %d: %w", e.Epoch, err)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Epoch < live[j].Epoch })
	s.entries = live
	if len(live) != len(m.Entries) {
		if err := s.writeManifestLocked(); err != nil {
			return err
		}
	}

	// Sweep crash artifacts: temp files from interrupted writes, and
	// epoch payloads the manifest never acknowledged (a crash between
	// payload rename and manifest rename — the commit did not happen).
	listed := map[string]bool{manifestName: true}
	for _, e := range s.entries {
		listed[filepath.Base(s.epochPath(e.Epoch))] = true
	}
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: open: %w", err)
	}
	for _, de := range dirents {
		name := de.Name()
		switch {
		case listed[name] || de.IsDir() || strings.HasSuffix(name, ".corrupt"):
			continue
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, "epoch-") && strings.HasSuffix(name, ".wsdb"):
			os.Remove(filepath.Join(s.dir, name))
		}
	}
	return nil
}

// epochPath returns the payload path for an epoch.
func (s *ModelStore) epochPath(epoch uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf(epochPattern, epoch))
}

// WriteFileAtomic durably writes data at path via the
// write-temp/fsync/rename protocol: after it returns nil the file content
// is either the old version or the complete new one at every crash instant.
func WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself. Directory fsync is best-effort: some
	// filesystems refuse it, and the rename is already atomic.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// writeManifestLocked atomically rewrites the MANIFEST from s.entries.
func (s *ModelStore) writeManifestLocked() error {
	raw, err := json.MarshalIndent(manifest{FormatVersion: FormatVersion, Entries: s.entries}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	write := s.writeManifest
	if write == nil {
		write = WriteFileAtomic
	}
	if err := write(filepath.Join(s.dir, manifestName), append(raw, '\n')); err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	return nil
}

// Commit durably stores data as the payload of lin.Epoch and appends lin to
// the manifest, then prunes epochs beyond the retention bound (SetKeep). The payload file lands
// before the manifest acknowledges it, so a crash anywhere inside Commit
// leaves the store on its previous committed state. Committing an epoch the
// store already holds is an error.
func (s *ModelStore) Commit(data []byte, lin Lineage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.Epoch == lin.Epoch {
			return fmt.Errorf("store: epoch %d is already committed", lin.Epoch)
		}
	}
	lin.Size = int64(len(data))
	lin.CRC = crc32.ChecksumIEEE(data)
	if lin.SavedAt.IsZero() {
		lin.SavedAt = time.Now().UTC()
	}
	write := s.writePayload
	if write == nil {
		write = WriteFileAtomic
	}
	path := s.epochPath(lin.Epoch)
	if err := write(path, data); err != nil {
		return fmt.Errorf("store: commit epoch %d: %w", lin.Epoch, err)
	}
	s.entries = append(s.entries, lin)
	sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].Epoch < s.entries[j].Epoch })
	if err := s.writeManifestLocked(); err != nil {
		// The payload file is an unacknowledged orphan now; the next Open
		// sweeps it.
		s.dropEntryLocked(lin.Epoch)
		return err
	}
	return s.pruneLocked()
}

// dropEntryLocked removes an entry from the in-memory manifest view.
func (s *ModelStore) dropEntryLocked(epoch uint64) {
	for i, e := range s.entries {
		if e.Epoch == epoch {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			return
		}
	}
}

// SetKeep changes the retention bound: the newest k epochs survive each
// commit's pruning pass (0 keeps everything). Safe to call while
// background checkpoints are committing.
func (s *ModelStore) SetKeep(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keep = k
}

// pruneLocked drops the oldest epochs beyond keep: manifest first (the
// commit point of the deletion), payload files second, so a crash between
// the two leaves only orphan files the next Open sweeps.
func (s *ModelStore) pruneLocked() error {
	if s.keep <= 0 || len(s.entries) <= s.keep {
		return nil
	}
	drop := append([]Lineage(nil), s.entries[:len(s.entries)-s.keep]...)
	s.entries = append(s.entries[:0], s.entries[len(drop):]...)
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	for _, e := range drop {
		os.Remove(s.epochPath(e.Epoch))
	}
	return nil
}

// Prune retains only the newest keep epochs (overriding Keep for this
// call).
func (s *ModelStore) Prune(keep int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	saved := s.keep
	s.keep = keep
	err := s.pruneLocked()
	s.keep = saved
	return err
}

// Entries returns the committed lineage, oldest first.
func (s *ModelStore) Entries() []Lineage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Lineage(nil), s.entries...)
}

// LatestEpoch returns the newest committed epoch number; ok is false for an
// empty store.
func (s *ModelStore) LatestEpoch() (epoch uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return 0, false
	}
	return s.entries[len(s.entries)-1].Epoch, true
}

// Latest returns the newest committed epoch's lineage and payload. A file
// that fails verification at read time (bit rot since Open) is quarantined
// and the next-newest epoch returned, falling back epoch by epoch;
// ErrEmpty reports a store with nothing recoverable left. Read errors that
// are not verification failures (transient I/O) surface as errors rather
// than discarding the epoch.
func (s *ModelStore) Latest() (Lineage, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.entries) > 0 {
		e := s.entries[len(s.entries)-1]
		data, err := s.loadLocked(e)
		if err == nil {
			return e, data, nil
		}
		if !isVerificationFailure(err) {
			return Lineage{}, nil, err
		}
		path := s.epochPath(e.Epoch)
		os.Rename(path, path+".corrupt")
		s.entries = s.entries[:len(s.entries)-1]
		if werr := s.writeManifestLocked(); werr != nil {
			return Lineage{}, nil, werr
		}
	}
	return Lineage{}, nil, ErrEmpty
}

// isVerificationFailure reports whether a payload load failed because the
// bytes on disk are wrong (missing, short, checksum-broken) as opposed to
// a read error that might succeed on retry.
func isVerificationFailure(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrCRC) || errors.Is(err, os.ErrNotExist)
}

// Load returns the payload of a specific committed epoch, verified against
// its manifest entry.
func (s *ModelStore) Load(epoch uint64) (Lineage, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.Epoch == epoch {
			data, err := s.loadLocked(e)
			return e, data, err
		}
	}
	return Lineage{}, nil, fmt.Errorf("store: epoch %d is not in the store", epoch)
}

// loadLocked reads and verifies one entry's payload.
func (s *ModelStore) loadLocked(e Lineage) ([]byte, error) {
	data, err := os.ReadFile(s.epochPath(e.Epoch))
	if err != nil {
		return nil, fmt.Errorf("store: epoch %d: %w", e.Epoch, err)
	}
	if int64(len(data)) != e.Size {
		return nil, fmt.Errorf("%w: epoch %d file is %d bytes, manifest says %d", ErrTruncated, e.Epoch, len(data), e.Size)
	}
	if crc32.ChecksumIEEE(data) != e.CRC {
		return nil, fmt.Errorf("%w: epoch %d", ErrCRC, e.Epoch)
	}
	return data, nil
}

// SetPayloadWriter installs a replacement for the default atomic payload
// write — the fault-injection seam of the crash-safety tests (short writes,
// mid-write kills). A nil writer restores the default.
func (s *ModelStore) SetPayloadWriter(write func(path string, data []byte) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writePayload = write
}

// SetManifestWriter installs a replacement for the default atomic MANIFEST
// write — the fault-injection seam for the second commit stage. A nil writer
// restores the default.
func (s *ModelStore) SetManifestWriter(write func(path string, data []byte) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeManifest = write
}

// Quarantined lists the .corrupt files recovery and read-time verification
// have set aside in the store directory, sorted by name. These are evidence
// of past corruption, never deleted by the store itself.
func (s *ModelStore) Quarantined() []string {
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, de := range dirents {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".corrupt") {
			out = append(out, de.Name())
		}
	}
	return out
}
