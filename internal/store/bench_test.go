package store_test

import (
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/core"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

// benchConfig is a serving-scale training configuration (what a drift
// retrain produces and the registry checkpoints).
func benchConfig() (*schedule.Env, core.TrainConfig, sla.Goal) {
	env := schedule.NewEnv(workload.DefaultTemplates(10), cloud.DefaultVMTypes(2))
	cfg := core.DefaultTrainConfig()
	cfg.NumSamples = 100
	cfg.SampleSize = 7
	cfg.Seed = 5
	goal := sla.NewMaxLatency(15*time.Minute, env.Templates, sla.DefaultPenaltyRate)
	return env, cfg, goal
}

// BenchmarkModelSaveLoad measures the checkpoint codec: encoding a trained
// model (what every hot swap pays in the background) and decoding it (what
// a warm start pays instead of retraining). bytes/model reports the
// on-disk size, training data included.
func BenchmarkModelSaveLoad(b *testing.B) {
	env, cfg, goal := benchConfig()
	m, err := core.MustNewAdvisor(env, cfg).Train(goal)
	if err != nil {
		b.Fatal(err)
	}
	data, err := core.EncodeModel(m)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("encode", func(b *testing.B) {
		b.ReportMetric(float64(len(data)), "bytes/model")
		for i := 0; i < b.N; i++ {
			if _, err := core.EncodeModel(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportMetric(float64(len(data)), "bytes/model")
		for i := 0; i < b.N; i++ {
			if _, err := core.DecodeModel(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWarmStartVsColdTrain is the startup-latency comparison behind
// EXPERIMENTS.md's persistence table: decoding a checkpointed model versus
// re-running the training searches it encodes.
func BenchmarkWarmStartVsColdTrain(b *testing.B) {
	env, cfg, goal := benchConfig()
	adv := core.MustNewAdvisor(env, cfg)
	m, err := adv.Train(goal)
	if err != nil {
		b.Fatal(err)
	}
	data, err := core.EncodeModel(m)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("warm-start", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DecodeModel(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adv.Train(goal); err != nil {
				b.Fatal(err)
			}
		}
	})
}
