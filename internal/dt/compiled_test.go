package dt

import (
	"math/rand"
	"testing"
)

// randomDataset draws a labeled dataset with clustered structure so trained
// trees have non-trivial depth.
func randomDataset(rng *rand.Rand, numFeatures, numLabels, n int) *Dataset {
	ds := &Dataset{NumLabels: numLabels}
	centers := make([][]float64, numLabels)
	for l := range centers {
		centers[l] = make([]float64, numFeatures)
		for f := range centers[l] {
			centers[l][f] = rng.Float64() * 10
		}
	}
	for i := 0; i < n; i++ {
		y := rng.Intn(numLabels)
		x := make([]float64, numFeatures)
		for f := range x {
			x[f] = centers[y][f] + rng.NormFloat64()*2
		}
		ds.Add(x, y)
	}
	return ds
}

// CompiledTree.Predict must agree with Tree.Predict on every input: the
// property is checked over randomized trees (varying size, shape, and
// pruning) and randomized query vectors, including the training rows
// themselves.
func TestCompiledTreeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		numFeatures := 1 + rng.Intn(6)
		numLabels := 2 + rng.Intn(5)
		n := 4 + rng.Intn(200)
		ds := randomDataset(rng, numFeatures, numLabels, n)
		cfg := Config{
			MinLeaf:  1 + rng.Intn(4),
			MaxDepth: rng.Intn(8), // 0 = unlimited
			Prune:    rng.Intn(2) == 0,
		}
		tree := Train(ds, cfg)
		compiled := tree.Compile()
		if got, want := compiled.NumNodes(), tree.NumNodes(); got != want {
			t.Fatalf("trial %d: compiled %d nodes, tree has %d", trial, got, want)
		}
		check := func(x []float64) {
			if got, want := compiled.Predict(x), tree.Predict(x); got != want {
				t.Fatalf("trial %d: compiled predicts %d, tree predicts %d for %v", trial, got, want, x)
			}
		}
		for _, x := range ds.X {
			check(x)
		}
		x := make([]float64, numFeatures)
		for probe := 0; probe < 100; probe++ {
			for f := range x {
				x[f] = rng.Float64()*14 - 2
			}
			check(x)
		}
	}
}

// A single-leaf tree (e.g. a pure dataset) must compile and predict.
func TestCompiledTreeSingleLeaf(t *testing.T) {
	ds := &Dataset{NumLabels: 3}
	ds.Add([]float64{1, 2}, 2)
	ds.Add([]float64{3, 4}, 2)
	compiled := Train(ds, DefaultConfig()).Compile()
	if compiled.NumNodes() != 1 {
		t.Fatalf("want 1 node, got %d", compiled.NumNodes())
	}
	if got := compiled.Predict([]float64{9, 9}); got != 2 {
		t.Fatalf("want label 2, got %d", got)
	}
}

// Predict on the compiled form must not allocate.
func TestCompiledTreePredictAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randomDataset(rng, 4, 3, 300)
	compiled := Train(ds, DefaultConfig()).Compile()
	x := []float64{1, 2, 3, 4}
	if allocs := testing.AllocsPerRun(100, func() { compiled.Predict(x) }); allocs > 0 {
		t.Fatalf("CompiledTree.Predict allocated %g times per run", allocs)
	}
}
