package dt

import (
	"fmt"
	"math"
)

// FlatTreeNode is the serializable form of one decision-tree node. A tree
// is exported as its preorder node sequence: children are implicit (the
// left subtree of an internal node starts at the next element, the right
// subtree after the left one ends), so the flat form carries no indices
// that could dangle. The training distribution (N, Errs) rides along so
// that pruning bookkeeping and Dump output survive a round trip exactly.
type FlatTreeNode struct {
	Leaf      bool
	Label     int32
	Feature   int32
	Threshold float64
	N, Errs   int32
}

// Export flattens the tree into its preorder node sequence.
func (t *Tree) Export() []FlatTreeNode {
	nodes := make([]FlatTreeNode, 0, t.NumNodes())
	return exportNode(nodes, t.Root)
}

func exportNode(nodes []FlatTreeNode, n *Node) []FlatTreeNode {
	nodes = append(nodes, FlatTreeNode{
		Leaf:      n.Leaf,
		Label:     int32(n.Label),
		Feature:   int32(n.Feature),
		Threshold: n.Threshold,
		N:         int32(n.n),
		Errs:      int32(n.errs),
	})
	if !n.Leaf {
		nodes = exportNode(nodes, n.Left)
		nodes = exportNode(nodes, n.Right)
	}
	return nodes
}

// TreeFromExport rebuilds a tree from its preorder node sequence. It
// validates the structure — the sequence must describe exactly one complete
// binary tree with in-range labels and features — so a decoder can hand it
// untrusted data: malformed input yields an error, never a panic. The walk
// is iterative (an explicit heap stack, not recursion), so a crafted deep
// left-spine tree cannot overflow the goroutine stack. The rebuilt tree is
// Predict- and Dump-identical to the exported one.
func TreeFromExport(nodes []FlatTreeNode, featureNames []string, numLabels int) (*Tree, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("dt: empty tree export")
	}
	var root *Node
	// Each stack entry is the parent-child slot the next preorder node
	// attaches to; pushing right before left makes the left subtree
	// consume the sequence first, matching Export's preorder.
	stack := make([]**Node, 0, 16)
	stack = append(stack, &root)
	pos := 0
	for len(stack) > 0 {
		if pos >= len(nodes) {
			return nil, fmt.Errorf("dt: tree export ends inside a subtree")
		}
		fn := nodes[pos]
		pos++
		n := &Node{
			Leaf:      fn.Leaf,
			Label:     int(fn.Label),
			Feature:   int(fn.Feature),
			Threshold: fn.Threshold,
			n:         int(fn.N),
			errs:      int(fn.Errs),
		}
		if n.Label < 0 || n.Label >= numLabels {
			return nil, fmt.Errorf("dt: node label %d outside [0,%d)", n.Label, numLabels)
		}
		slot := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		*slot = n
		if n.Leaf {
			continue
		}
		if n.Feature < 0 || n.Feature >= len(featureNames) {
			return nil, fmt.Errorf("dt: split feature %d outside [0,%d)", n.Feature, len(featureNames))
		}
		if math.IsNaN(n.Threshold) {
			return nil, fmt.Errorf("dt: split threshold is NaN")
		}
		stack = append(stack, &n.Right, &n.Left)
	}
	if pos != len(nodes) {
		return nil, fmt.Errorf("dt: tree export has %d trailing nodes", len(nodes)-pos)
	}
	return &Tree{Root: root, FeatureNames: featureNames, NumLabels: numLabels}, nil
}
