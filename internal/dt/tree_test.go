package dt

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func datasetFrom(x [][]float64, y []int, numLabels int) *Dataset {
	ds := &Dataset{NumLabels: numLabels}
	for i := range x {
		ds.Add(x[i], y[i])
	}
	return ds
}

// A linearly separable problem must be learned exactly.
func TestTrainSeparable(t *testing.T) {
	var x [][]float64
	var y []int
	for i := 0; i < 50; i++ {
		v := float64(i)
		x = append(x, []float64{v, -v})
		label := 0
		if v >= 25 {
			label = 1
		}
		y = append(y, label)
	}
	tree := Train(datasetFrom(x, y, 2), DefaultConfig())
	for i := range x {
		if got := tree.Predict(x[i]); got != y[i] {
			t.Fatalf("x=%v: want %d, got %d", x[i], y[i], got)
		}
	}
	if h := tree.Height(); h != 2 {
		t.Fatalf("separable problem should yield a single split, height=%d", h)
	}
}

// XOR needs two levels of splits; a single split cannot express it. Note a
// perfectly class-balanced XOR has zero information gain at the root (C4.5
// cannot split it either), so this uses sampled points whose sampling
// imbalance makes the gain positive, as in any real training set.
func TestTrainXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	var x [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		a, b := rng.Float64(), rng.Float64()
		label := 0
		if (a < 0.5) != (b < 0.5) {
			label = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, label)
	}
	tree := Train(datasetFrom(x, y, 2), Config{MinLeaf: 1, Prune: false})
	correct := 0
	for i := range x {
		if tree.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if correct < len(x)*98/100 {
		t.Fatalf("xor: %d/%d correct", correct, len(x))
	}
	if tree.Height() < 3 {
		t.Fatalf("xor requires nested splits, height=%d", tree.Height())
	}
}

// Pruning must never grow the tree and must keep training accuracy on a
// noiseless separable problem.
func TestPruneShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		v := rng.Float64()
		label := 0
		if v > 0.5 {
			label = 1
		}
		if rng.Float64() < 0.15 { // label noise to give pruning work
			label = 1 - label
		}
		x = append(x, []float64{v, rng.Float64()})
		y = append(y, label)
	}
	unpruned := Train(datasetFrom(x, y, 2), Config{MinLeaf: 2, Prune: false})
	pruned := Train(datasetFrom(x, y, 2), Config{MinLeaf: 2, Prune: true})
	if pruned.NumNodes() > unpruned.NumNodes() {
		t.Fatalf("pruned tree has %d nodes, unpruned %d", pruned.NumNodes(), unpruned.NumNodes())
	}
	// The dominant structure (the 0.5 split) must survive pruning.
	correct := 0
	for i := 0; i < 200; i++ {
		v := rng.Float64()
		want := 0
		if v > 0.5 {
			want = 1
		}
		if pruned.Predict([]float64{v, rng.Float64()}) == want {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("pruned tree generalizes poorly: %d/200", correct)
	}
}

// Training must be deterministic.
func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Intn(3))
	}
	t1 := Train(datasetFrom(x, y, 3), DefaultConfig())
	t2 := Train(datasetFrom(x, y, 3), DefaultConfig())
	if t1.Dump(labelNum) != t2.Dump(labelNum) {
		t.Fatal("two trainings on identical data produced different trees")
	}
}

func labelNum(l int) string { return fmt.Sprintf("L%d", l) }

// Property: every prediction is a valid label, and leaves always carry the
// majority class of some training subset (so predictions are labels seen in
// training).
func TestPredictAlwaysValidLabel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		labels := 2 + rng.Intn(4)
		ds := &Dataset{NumLabels: labels}
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			y := rng.Intn(labels)
			seen[y] = true
			ds.Add([]float64{rng.NormFloat64(), rng.NormFloat64()}, y)
		}
		tree := Train(ds, DefaultConfig())
		for i := 0; i < 50; i++ {
			got := tree.Predict([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
			if got < 0 || got >= labels || !seen[got] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinLeaf is respected by every internal split.
func TestMinLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ds := &Dataset{NumLabels: 2}
	for i := 0; i < 500; i++ {
		ds.Add([]float64{rng.Float64()}, rng.Intn(2))
	}
	for _, minLeaf := range []int{1, 5, 25} {
		tree := Train(ds, Config{MinLeaf: minLeaf, Prune: false})
		var check func(n *Node)
		check = func(n *Node) {
			if n.Leaf {
				if n.n < minLeaf {
					t.Fatalf("minLeaf=%d: leaf with %d instances", minLeaf, n.n)
				}
				return
			}
			check(n.Left)
			check(n.Right)
		}
		check(tree.Root)
	}
}

// MaxDepth must bound the height.
func TestMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := &Dataset{NumLabels: 2}
	for i := 0; i < 1000; i++ {
		ds.Add([]float64{rng.Float64(), rng.Float64()}, rng.Intn(2))
	}
	for _, d := range []int{1, 3, 5} {
		tree := Train(ds, Config{MinLeaf: 1, MaxDepth: d, Prune: false})
		if h := tree.Height(); h > d+1 {
			t.Fatalf("MaxDepth=%d: height %d", d, h)
		}
	}
}

// The paper's features include "infinite" costs encoded as a large
// sentinel; splits must handle them without producing NaN thresholds.
func TestLargeSentinelValues(t *testing.T) {
	const inf = 1e12
	ds := &Dataset{NumLabels: 2}
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			ds.Add([]float64{inf}, 1)
		} else {
			ds.Add([]float64{float64(i)}, 0)
		}
	}
	tree := Train(ds, DefaultConfig())
	if got := tree.Predict([]float64{inf}); got != 1 {
		t.Fatalf("want class 1 for sentinel, got %d", got)
	}
	if got := tree.Predict([]float64{5}); got != 0 {
		t.Fatalf("want class 0 for finite, got %d", got)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if !n.Leaf && (math.IsNaN(n.Threshold) || math.IsInf(n.Threshold, 0)) {
			t.Fatalf("non-finite threshold %v", n.Threshold)
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tree.Root)
}

// Single-class datasets must yield a single leaf.
func TestSingleClass(t *testing.T) {
	ds := &Dataset{NumLabels: 3}
	for i := 0; i < 10; i++ {
		ds.Add([]float64{float64(i)}, 2)
	}
	tree := Train(ds, DefaultConfig())
	if !tree.Root.Leaf || tree.Root.Label != 2 {
		t.Fatalf("want single leaf predicting 2, got %s", tree.Dump(labelNum))
	}
}

// The inverse normal CDF must roundtrip against the forward CDF.
func TestInverseNormalCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.25, 0.5, 0.75, 0.99, 0.999} {
		z := inverseNormalCDF(p)
		got := 0.5 * (1 + math.Erf(z/math.Sqrt2))
		if math.Abs(got-p) > 1e-8 {
			t.Fatalf("p=%g: forward(inverse)=%g", p, got)
		}
	}
	if z := normalUpperQuantile(0.25); math.Abs(z-0.6744897) > 1e-5 {
		t.Fatalf("upper quantile at 0.25: %g", z)
	}
}

// Pessimistic error estimates must increase with z and stay within [errs, n].
func TestPessimisticErrors(t *testing.T) {
	for _, n := range []int{1, 10, 100} {
		for errs := 0; errs <= n; errs += n/4 + 1 {
			e1 := pessimisticErrors(n, errs, 0.25)
			e2 := pessimisticErrors(n, errs, 1.5)
			if e2 < e1 {
				t.Fatalf("n=%d errs=%d: estimate decreased with z", n, errs)
			}
			if e1 < float64(errs)-1e-9 || e2 > float64(n)+1e-9 {
				t.Fatalf("n=%d errs=%d: estimates out of range: %g, %g", n, errs, e1, e2)
			}
		}
	}
}

// Ingest must be exactly Add row by row: any batch partition of the rows
// yields the same dataset and therefore the same trained tree — the
// invariant the pipelined trainer's streamed generations rely on.
func TestIngestEquivalentToAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, feats, labels := 200, 4, 5
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		row := make([]float64, feats)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
		y[i] = rng.Intn(labels)
	}
	want := datasetFrom(x, y, labels)

	for _, batch := range []int{1, 7, 32, n, n + 50} {
		got := &Dataset{NumLabels: labels}
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			got.Ingest(x[lo:hi], y[lo:hi])
		}
		if got.Len() != want.Len() {
			t.Fatalf("batch=%d: %d rows, want %d", batch, got.Len(), want.Len())
		}
		for i := range want.X {
			if want.Y[i] != got.Y[i] {
				t.Fatalf("batch=%d row %d: label %d, want %d", batch, i, got.Y[i], want.Y[i])
			}
			for j := range want.X[i] {
				if want.X[i][j] != got.X[i][j] {
					t.Fatalf("batch=%d row %d: features differ", batch, i)
				}
			}
		}
		a := Train(want, DefaultConfig())
		b := Train(got, DefaultConfig())
		name := func(l int) string { return fmt.Sprintf("L%d", l) }
		if a.Dump(name) != b.Dump(name) {
			t.Fatalf("batch=%d: trained trees differ", batch)
		}
	}
}

// Ingest must reject mismatched batches and invalid rows like Add does.
func TestIngestValidation(t *testing.T) {
	ds := &Dataset{NumLabels: 2}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("row/label mismatch", func() { ds.Ingest([][]float64{{1}}, nil) })
	ds.Ingest([][]float64{{1, 2}}, []int{0})
	mustPanic("feature width", func() { ds.Ingest([][]float64{{1}}, []int{1}) })
	mustPanic("label range", func() { ds.Ingest([][]float64{{3, 4}}, []int{2}) })
	if ds.Len() != 1 {
		t.Fatalf("dataset has %d rows, want 1", ds.Len())
	}
}
