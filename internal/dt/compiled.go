package dt

// CompiledTree is a Tree flattened into one contiguous node array for
// serving: Predict walks int32 indices through a flat slice instead of
// chasing heap pointers, so inference is branch-predictable,
// cache-friendly, and allocation-free. Nodes are laid out in preorder, so
// the left child of node i is always node i+1 — descending the
// cheap-placement side of a tree touches adjacent memory.
//
// A CompiledTree is immutable and safe for concurrent use. The node Tree it
// was compiled from stays the representation for training, pruning, and
// inspection; Compile is a pure function of the tree's structure, and
// TestCompiledTreeEquivalence pins Predict equivalence over randomized
// trees.
type CompiledTree struct {
	nodes []flatNode
}

// flatNode is one flattened decision node. feature < 0 marks a leaf, whose
// label is stored in left. Internal nodes test x[feature] < threshold and
// descend to left (always the next node in preorder) on true, right on
// false.
type flatNode struct {
	threshold float64
	feature   int32
	left      int32
	right     int32
}

// leafMarker is the feature value marking a leaf node.
const leafMarker = int32(-1)

// Compile flattens the tree into its serving form.
func (t *Tree) Compile() *CompiledTree {
	c := &CompiledTree{nodes: make([]flatNode, 0, t.NumNodes())}
	c.flatten(t.Root)
	return c
}

// flatten appends the subtree rooted at n in preorder and returns the index
// of its root.
func (c *CompiledTree) flatten(n *Node) int32 {
	idx := int32(len(c.nodes))
	if n.Leaf {
		c.nodes = append(c.nodes, flatNode{feature: leafMarker, left: int32(n.Label)})
		return idx
	}
	c.nodes = append(c.nodes, flatNode{feature: int32(n.Feature), threshold: n.Threshold})
	left := c.flatten(n.Left)
	right := c.flatten(n.Right)
	c.nodes[idx].left = left // always idx+1 by preorder, stored for clarity
	c.nodes[idx].right = right
	return idx
}

// Predict returns the class label for a feature vector. It is equivalent to
// Tree.Predict on the source tree and performs no allocations.
func (c *CompiledTree) Predict(x []float64) int {
	i := int32(0)
	for {
		n := &c.nodes[i]
		if n.feature == leafMarker {
			return int(n.left)
		}
		if x[n.feature] < n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes returns the total node count.
func (c *CompiledTree) NumNodes() int { return len(c.nodes) }
