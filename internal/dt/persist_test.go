package dt

import (
	"fmt"
	"math/rand"
	"testing"
)

// Export/TreeFromExport must round-trip randomized trained trees exactly:
// identical predictions, identical Dump (which exercises the pruning
// counts riding along).
func TestTreeExportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	name := func(l int) string { return fmt.Sprintf("L%d", l) }
	for trial := 0; trial < 20; trial++ {
		numFeatures := 2 + rng.Intn(4)
		ds := randomDataset(rng, numFeatures, 2+rng.Intn(5), 60+rng.Intn(200))
		ds.FeatureNames = make([]string, numFeatures)
		for i := range ds.FeatureNames {
			ds.FeatureNames[i] = fmt.Sprintf("f%d", i)
		}
		tree := Train(ds, DefaultConfig())
		back, err := TreeFromExport(tree.Export(), tree.FeatureNames, tree.NumLabels)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got, want := back.Dump(name), tree.Dump(name); got != want {
			t.Fatalf("trial %d: Dump differs after round trip:\n%s\nvs\n%s", trial, got, want)
		}
		for i := 0; i < 500; i++ {
			x := make([]float64, len(ds.FeatureNames))
			for j := range x {
				x[j] = rng.Float64() * 10
			}
			if back.Predict(x) != tree.Predict(x) {
				t.Fatalf("trial %d: predictions diverge on %v", trial, x)
			}
		}
	}
}

// A pathologically deep (left-spine) tree must import without touching
// the goroutine stack: model files are untrusted input, and a recursive
// importer would die with an unrecoverable stack overflow here.
func TestTreeFromExportDeepSpine(t *testing.T) {
	const depth = 500_000
	nodes := make([]FlatTreeNode, 0, 2*depth+1)
	for i := 0; i < depth; i++ {
		nodes = append(nodes, FlatTreeNode{Feature: 0, Threshold: float64(depth - i)})
	}
	for i := 0; i <= depth; i++ {
		nodes = append(nodes, FlatTreeNode{Leaf: true, Label: 1})
	}
	tree, err := TreeFromExport(nodes, []string{"f0"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0}); got != 1 {
		t.Fatalf("deep-spine predict: %d", got)
	}
}

// Malformed exports must error, not panic.
func TestTreeFromExportRejectsMalformed(t *testing.T) {
	names := []string{"f0"}
	leaf := FlatTreeNode{Leaf: true, Label: 0, N: 1}
	split := FlatTreeNode{Feature: 0, Threshold: 1}
	cases := map[string][]FlatTreeNode{
		"empty":             {},
		"dangling subtree":  {split, leaf},
		"trailing nodes":    {leaf, leaf},
		"label out of rng":  {{Leaf: true, Label: 7}},
		"feature out of r":  {{Feature: 3}, leaf, leaf},
		"negative feature":  {{Feature: -1}, leaf, leaf},
		"incomplete branch": {split},
	}
	for name, nodes := range cases {
		if _, err := TreeFromExport(nodes, names, 2); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}
